// String interner mapping names (element tags, attribute names, tuple field
// names) to dense integer symbols. All documents and queries processed by one
// Engine share one interner, so tag comparison anywhere in the pipeline is an
// integer comparison.
#ifndef XQTP_COMMON_INTERNER_H_
#define XQTP_COMMON_INTERNER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace xqtp {

/// Dense symbol id produced by StringInterner. kInvalidSymbol means "none".
using Symbol = int32_t;
inline constexpr Symbol kInvalidSymbol = -1;

/// Bidirectional name <-> Symbol map; one per Engine. The table is guarded
/// by an internal mutex, so any mix of Intern/Lookup/NameOf calls is safe
/// — but the intended discipline is stronger and phase-based: every name a
/// query or document can refer to is interned during parsing / compilation
/// / document building, and execution only ever READS (NameOf for error
/// messages; Lookup never mutates). ExecutionFreeze turns that phase
/// contract into a debug assertion, so morsel workers never contend on the
/// lock for anything but pointer-sized reads. Name storage is a deque:
/// references returned by NameOf stay valid forever even if later Intern
/// calls grow the table.
class StringInterner {
 public:
  StringInterner() = default;
  StringInterner(const StringInterner&) = delete;
  StringInterner& operator=(const StringInterner&) = delete;

  /// RAII scope asserting "no interning while executing": while an
  /// ExecutionFreeze is alive *on this thread*, Intern() debug-asserts.
  /// Engine::Execute holds one around plan evaluation (and the morsel
  /// drivers re-establish it on each worker thread), so a code path that
  /// tries to create a symbol mid-query fails fast in debug builds
  /// instead of serializing the morsel workers on the table lock. The
  /// assert is per-thread rather than engine-wide so a plan-cache miss
  /// compiling on one serving thread does not trip it while another
  /// thread executes.
  class ExecutionFreeze {
   public:
    explicit ExecutionFreeze(const StringInterner& interner)
        : interner_(interner) {
      interner_.freeze_count_.fetch_add(1, std::memory_order_relaxed);
      ++ThreadFreezeCount();
    }
    ~ExecutionFreeze() {
      interner_.freeze_count_.fetch_sub(1, std::memory_order_relaxed);
      --ThreadFreezeCount();
    }
    ExecutionFreeze(const ExecutionFreeze&) = delete;
    ExecutionFreeze& operator=(const ExecutionFreeze&) = delete;

   private:
    const StringInterner& interner_;
  };

  /// Returns the symbol for `name`, creating it on first use. Must not be
  /// called while an ExecutionFreeze is active (debug-asserted).
  Symbol Intern(std::string_view name) EXCLUDES(mu_);

  /// Returns the symbol for `name` or kInvalidSymbol if never interned.
  Symbol Lookup(std::string_view name) const EXCLUDES(mu_);

  /// Returns the name for a valid symbol. The reference is stable for the
  /// interner's lifetime (deque storage — growth never moves entries).
  const std::string& NameOf(Symbol sym) const EXCLUDES(mu_);

  size_t size() const EXCLUDES(mu_);

  /// True while any ExecutionFreeze is alive on any thread (exposed for
  /// tests; the Intern assert uses the per-thread count instead).
  bool frozen() const {
    return freeze_count_.load(std::memory_order_relaxed) > 0;
  }

  /// True while an ExecutionFreeze is alive on the calling thread.
  static bool FrozenOnThisThread() { return ThreadFreezeCount() > 0; }

 private:
  static int& ThreadFreezeCount() {
    static thread_local int count = 0;
    return count;
  }

  mutable Mutex mu_;
  std::unordered_map<std::string, Symbol> map_ GUARDED_BY(mu_);
  std::deque<std::string> names_ GUARDED_BY(mu_);
  /// Number of live ExecutionFreeze scopes. Atomic rather than
  /// GUARDED_BY(mu_): freezing is a logically-const observation concern
  /// that must not contend with the table lock, and nested freezes (engine
  /// Execute inside an analysis cross-check) must both count.
  mutable std::atomic<int> freeze_count_{0};
};

}  // namespace xqtp

#endif  // XQTP_COMMON_INTERNER_H_
