// Streaming evaluation of tree patterns — the paper's future-work item
// ("the possible use of streaming XPath algorithms").
//
// The document region under each context node is consumed as a single
// pre-order event stream (start/end element, attribute events). The
// evaluator maintains, per pattern step, a stack of open *match
// instances*; a doc node starting an event spawns an instance of step q
// for every open instance of q's parent step that it can extend along
// q's axis. Predicates cannot be decided at the start event (they need
// the node's subtree), so extraction candidates are buffered with their
// instance chain and resolved once the stream has closed every instance
// — the SPEX/XSQ-style buffering discipline.
//
// Only the downward pattern fragment is streamable; anything else falls
// back to the nested-loop evaluator, as do multi-output patterns.
#include <deque>
#include <vector>

#include "common/fault_injection.h"
#include "exec/exec_stats.h"
#include "exec/governor.h"
#include "exec/pattern_eval.h"
#include "xdm/sequence_ops.h"
#include "xml/document.h"

namespace xqtp::exec {

namespace {

using pattern::PatternNode;
using pattern::PatternNodePtr;
using pattern::TreePattern;
using xml::Node;

/// Pattern steps in pattern-tree DFS order (parents before children), so
/// that same-event matches (self / attribute axes) see their parent's
/// fresh instances.
void FlattenPattern(const PatternNode* p, const PatternNode* parent,
                    std::vector<const PatternNode*>* order,
                    std::vector<const PatternNode*>* parent_of,
                    std::vector<int>* pred_index) {
  order->push_back(p);
  parent_of->push_back(parent);
  pred_index->push_back(-1);
  const PatternNode* self = p;
  for (size_t i = 0; i < p->predicates.size(); ++i) {
    size_t at = order->size();
    FlattenPattern(p->predicates[i].get(), self, order, parent_of,
                   pred_index);
    (*pred_index)[at] = static_cast<int>(i);
  }
  if (p->next != nullptr) {
    FlattenPattern(p->next.get(), self, order, parent_of, pred_index);
  }
}

struct Instance {
  int step = -1;              ///< index into the flattened pattern
  const Node* node = nullptr;
  Instance* parent = nullptr; ///< instance of the parent pattern step
  std::vector<bool> pred_sat;
  bool next_matched = false;
  bool complete = false;      ///< set when the instance closes satisfied
};

class StreamEval {
 public:
  explicit StreamEval(const TreePattern& tp) {
    FlattenPattern(tp.root.get(), nullptr, &steps_, &parents_, &pred_idx_);
    for (size_t i = 0; i < steps_.size(); ++i) {
      for (size_t j = 0; j < steps_.size(); ++j) {
        if (parents_[i] == steps_[j]) {
          parent_step_[i] = static_cast<int>(j);
        }
      }
    }
    open_.resize(steps_.size());
    // Locate the extraction step (last main-path step).
    const PatternNode* ep = tp.ExtractionPoint();
    for (size_t i = 0; i < steps_.size(); ++i) {
      if (steps_[i] == ep) extraction_ = static_cast<int>(i);
    }
  }

  /// Streams the region rooted at `context` and collects candidate
  /// extraction nodes (resolved by Finish()).
  void Run(const Node* context) {
    context_ = context;
    // The context node opens as a virtual event around the whole region
    // scan: it can match a self / descendant-or-self root step, and —
    // under a self-like root instance — any later self-like step too
    // (e.g. the re-rooted self::t/descendant-or-self::node() patterns
    // the morsel driver builds). Its attributes are events of the
    // region as well, handled inside the start event.
    size_t n_self = StartNode(context);
    struct Frame {
      const Node* node;
      size_t n_spawned;
      bool entered;
    };
    std::vector<Frame> stack;
    for (const Node* c = context->first_child; c != nullptr;
         c = c->next_sibling) {
      stack.push_back({c, 0, false});
      while (!stack.empty()) {
        // One governor tick per stream event: a deadline or cancel
        // interrupts the scan mid-region (candidates are discarded by the
        // caller once the latched status surfaces).
        if (!gov_.Tick()) return;
        Frame& f = stack.back();
        if (!f.entered) {
          f.entered = true;
          f.n_spawned = StartNode(f.node);
          // Push children right-to-left so the leftmost pops first.
          std::vector<const Node*> kids;
          for (const Node* k = f.node->first_child; k != nullptr;
               k = k->next_sibling) {
            kids.push_back(k);
          }
          for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
            stack.push_back({*it, 0, false});
          }
        } else {
          EndNode(f.n_spawned);
          stack.pop_back();
        }
      }
    }
    EndNode(n_self);
  }

  /// The governor verdict that interrupted the stream, or OK.
  [[nodiscard]]
  const Status& status() const { return gov_.status(); }

  /// Resolves buffered candidates into output nodes, in stream order.
  std::vector<const Node*> Finish() {
    std::vector<const Node*> out;
    const Node* last = nullptr;
    for (const auto& [node, inst] : candidates_) {
      if (node == last) continue;
      bool ok = true;
      for (const Instance* i = inst; i != nullptr; i = i->parent) {
        if (!i->complete) {
          ok = false;
          break;
        }
      }
      if (ok) {
        out.push_back(node);
        last = node;
      }
    }
    return out;
  }

 private:
  /// Does `n` extend an instance of step s's parent along s's axis?
  /// Fills `bases` with the parent instances it extends (nullptr for a
  /// root-step match against the context region).
  void MatchBases(int s, const Node* n, std::vector<Instance*>* bases) {
    const PatternNode& q = *steps_[s];
    if (!xdm::MatchesTest(n, q.axis, q.test)) return;
    auto it = parent_step_.find(s);
    if (it == parent_step_.end()) {
      // Root step: relative to the context node (which is itself an
      // event of the scan — only self-like axes may match it).
      switch (q.axis) {
        case Axis::kChild:
        case Axis::kAttribute:
          if (n->parent == context_) bases->push_back(nullptr);
          break;
        case Axis::kDescendant:
          if (n != context_) bases->push_back(nullptr);
          break;
        case Axis::kDescendantOrSelf:
          bases->push_back(nullptr);  // anywhere in the region, self too
          break;
        case Axis::kSelf:
          if (n == context_) bases->push_back(nullptr);
          break;
        default:
          break;  // others unreachable in pattern grammar
      }
      return;
    }
    for (Instance* pi : open_[static_cast<size_t>(it->second)]) {
      switch (q.axis) {
        case Axis::kChild:
        case Axis::kAttribute:
          if (n->parent == pi->node) bases->push_back(pi);
          break;
        case Axis::kDescendant:
          if (pi->node != n) bases->push_back(pi);
          break;
        case Axis::kDescendantOrSelf:
          bases->push_back(pi);
          break;
        case Axis::kSelf:
          if (pi->node == n) bases->push_back(pi);
          break;
        default:
          break;
      }
    }
  }

  Instance* Spawn(int s, const Node* n, Instance* base) {
    arena_.emplace_back();
    Instance* inst = &arena_.back();
    inst->step = s;
    inst->node = n;
    inst->parent = base;
    inst->pred_sat.assign(steps_[static_cast<size_t>(s)]->predicates.size(),
                          false);
    open_[static_cast<size_t>(s)].push_back(inst);
    if (s == extraction_) candidates_.emplace_back(n, inst);
    return inst;
  }

  /// Start event: spawn instances for every step the node matches.
  /// Returns how many instances were pushed (popped by the end event).
  size_t StartNode(const Node* n) {
    CountNodesVisited(1);
    size_t spawned = 0;
    for (size_t s = 0; s < steps_.size(); ++s) {
      const PatternNode& q = *steps_[s];
      if (q.axis == Axis::kAttribute) continue;  // handled below
      std::vector<Instance*> bases;
      MatchBases(static_cast<int>(s), n, &bases);
      for (Instance* b : bases) {
        Spawn(static_cast<int>(s), n, b);
        ++spawned;
        pushed_.push_back(static_cast<int>(s));
      }
    }
    // Attribute events: attributes start and end within this event.
    StartAttributes(n);
    return spawned;
  }

  /// Attribute events for `n`: each attribute starts and ends within its
  /// owner's start event, so instances are spawned and closed in place.
  void StartAttributes(const Node* n) {
    size_t attr_marker = pushed_.size();
    for (size_t s = 0; s < steps_.size(); ++s) {
      const PatternNode& q = *steps_[s];
      if (q.axis != Axis::kAttribute) continue;
      for (const Node* a : n->attributes) {
        std::vector<Instance*> bases;
        MatchBases(static_cast<int>(s), a, &bases);
        for (Instance* b : bases) {
          Spawn(static_cast<int>(s), a, b);
          pushed_.push_back(static_cast<int>(s));
        }
      }
    }
    EndNode(pushed_.size() - attr_marker);  // attributes close immediately
  }

  /// End event: close the last `count` spawned instances, resolving their
  /// obligations and propagating satisfaction upward.
  void EndNode(size_t count) {
    for (size_t k = 0; k < count; ++k) {
      int s = pushed_.back();
      pushed_.pop_back();
      Instance* inst = open_[static_cast<size_t>(s)].back();
      open_[static_cast<size_t>(s)].pop_back();
      const PatternNode& q = *steps_[static_cast<size_t>(s)];
      bool sat = true;
      for (bool b : inst->pred_sat) sat = sat && b;
      if (q.next != nullptr && !inst->next_matched) sat = false;
      // The extraction step has no downstream obligation from `next`
      // (it IS the last main-path step) — q.next is null there anyway.
      inst->complete = sat;
      if (sat && inst->parent != nullptr) {
        int pi = pred_idx_[static_cast<size_t>(s)];
        if (pi >= 0) {
          inst->parent->pred_sat[static_cast<size_t>(pi)] = true;
        } else {
          inst->parent->next_matched = true;
        }
      }
      if (sat && inst->parent == nullptr) {
        // A complete root instance satisfies the (virtual) region root.
      }
    }
  }

  std::vector<const PatternNode*> steps_;
  std::vector<const PatternNode*> parents_;
  std::vector<int> pred_idx_;
  std::unordered_map<int, int> parent_step_;
  std::vector<std::vector<Instance*>> open_;
  std::vector<int> pushed_;  ///< LIFO of spawned instance step ids
  std::deque<Instance> arena_;
  std::vector<std::pair<const Node*, Instance*>> candidates_;
  const Node* context_ = nullptr;
  int extraction_ = -1;
  GovernorTicker gov_;
};

}  // namespace

Result<std::vector<BindingRow>> EvalPatternStream(
    const pattern::TreePattern& tp, const xdm::Sequence& context) {
  XQTP_FAULT_POINT("exec.pattern.stream");
  if (tp.root == nullptr) return std::vector<BindingRow>{};
  if (!tp.SingleOutputAtExtractionPoint() || !tp.UsesOnlyPatternAxes() ||
      tp.HasPositionalSteps()) {
    // Positional steps need per-parent counting, which the set-at-a-time
    // merges cannot express — delegate to the nested-loop evaluator.
    return EvalPatternNL(tp, context);
  }
  Symbol out = tp.OutputFields()[0];
  std::vector<BindingRow> rows;
  for (const xdm::Item& it : context) {
    if (!it.IsNode()) {
      return Status::TypeError(
          "tree pattern applied to a non-node context item");
    }
    StreamEval eval(tp);
    eval.Run(it.node());
    XQTP_RETURN_NOT_OK(eval.status());
    std::vector<const xml::Node*> nodes = eval.Finish();
    for (const xml::Node* n : nodes) {
      BindingRow row;
      row.fields.emplace_back(out, n);
      rows.push_back(std::move(row));
    }
  }
  FinalizeRows(&rows);
  return rows;
}

}  // namespace xqtp::exec
