// Public facade: the full compilation pipeline of the paper's Figure 2
// (parse -> normalize -> TPNF' rewrite -> algebraic compile -> tree-pattern
// optimization) plus execution with a chosen physical algorithm.
//
// Quickstart:
//   xqtp::engine::Engine engine;
//   auto doc = engine.LoadDocument("auction", xml_text);          // Result
//   auto q = engine.Compile("$input//person[emailaddress]/name"); // Result
//   Engine::GlobalMap globals{
//       {"input", {xdm::Item(doc.value()->root())}}};
//   auto result = engine.Execute(*q, globals,
//                                xqtp::exec::PatternAlgo::kTwig); // Result
#ifndef XQTP_ENGINE_ENGINE_H_
#define XQTP_ENGINE_ENGINE_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "algebra/compile.h"
#include "algebra/optimize.h"
#include "analysis/equiv_checker.h"
#include "analysis/plan_lint.h"
#include "common/status.h"
#include "core/normalize.h"
#include "core/rewrite.h"
#include "exec/core_interp.h"
#include "exec/evaluator.h"
#include "xml/document.h"
#include "xml/parser.h"
#include "xquery/parser.h"

namespace xqtp::engine {

struct EngineOptions {
  /// Run the static verifiers (analysis::VerifyCore after normalization
  /// and rewriting, analysis::VerifyPlan after compilation and after each
  /// optimizer round) on every query compiled through this engine. A
  /// violation surfaces as Status::Internal tagged with the pass that
  /// produced the broken tree. On by default in Debug builds.
  bool verify_plans = analysis::kVerifyByDefault;
  /// Translation-validation oracle: when analysis.check_equivalence is
  /// set, every rewrite-rule family and optimizer round is additionally
  /// validated by executing the tree before and after the rules against
  /// the witness corpus (analysis/equiv_checker.h), and the Core ->
  /// algebra compilation step is differentially checked. A divergence
  /// surfaces as Status::Internal carrying the offending rule, the
  /// minimized witness document, and both printed forms. On by default
  /// in Debug builds, like the verifiers.
  analysis::AnalysisOptions analysis;
};

struct CompileOptions {
  /// Apply the TPNF' Core rewrites (phase 2). Off = each syntactic variant
  /// keeps its own shape.
  bool rewrite = true;
  /// Apply the algebraic tree-pattern detection (rules (a)-(f)).
  /// Off = the "old engine" of Figure 4: nested maps + navigational
  /// TreeJoin.
  bool detect_tree_patterns = true;
  /// Fold constant positional predicates into pattern steps (rule (g) —
  /// the paper's future-work extension). Off by default so plans match
  /// the paper.
  bool positional_patterns = false;
  /// Merge cascades into multi-output ("generalized") patterns (rule
  /// (d') — the paper's primary future-work item). Off by default.
  bool multi_output_patterns = false;
  /// Fine-grained rewrite switches (used by the ablation benchmark).
  core::RewriteOptions rewrite_opts;
  /// Plan-level property inference (analysis/plan_props.h): prove
  /// order/distinctness/cardinality facts over the optimized plan, use
  /// them for property-justified rewrites (OptimizeOptions::
  /// infer_properties), and stamp the surviving facts as runtime-checked
  /// claims. Off = the optimizer uses only the structural rules (a)-(g).
  bool infer_properties = true;
  /// Compile-time resource limits: when either is set, Compile installs a
  /// governor for its duration and the rewriter's / optimizer's fixpoint
  /// rounds poll it — an adversarial query cannot pin the compiler any
  /// more than the evaluator. Independent of the execution-time limits in
  /// exec::EvalOptions.
  std::optional<std::chrono::steady_clock::time_point> deadline;
  std::shared_ptr<exec::CancelToken> cancel_token;
};

/// A query compiled through every phase, with the intermediate forms
/// retained for explain output and tests.
class CompiledQuery {
 public:
  const std::string& source() const { return source_; }
  const core::VarTable& vars() const { return vars_; }

  /// The normalized Core expression (the paper's Q1a-n stage).
  const core::CoreExpr& normalized() const { return *normalized_; }
  /// The Core expression after the TPNF' rewrites (the Q1-tp stage).
  const core::CoreExpr& rewritten() const { return *rewritten_; }
  /// The compiled, unoptimized algebra plan (the P1 stage).
  const algebra::Op& plan() const { return *plan_; }
  /// The final optimized plan (the P5 stage).
  const algebra::Op& optimized() const { return *optimized_; }

  /// Names of the query's free variables, to be bound at execution.
  std::vector<std::string> GlobalNames() const;

  /// Plan statistics of the optimized plan.
  algebra::PlanStats Stats() const { return algebra::ComputeStats(*optimized_); }

  /// PlanLint diagnostics over the optimized plan (analysis/plan_lint.h).
  /// Populated when the engine runs with verify_plans (debug default);
  /// findings never fail compilation.
  const std::vector<analysis::LintFinding>& lint_findings() const {
    return lint_findings_;
  }

 private:
  friend class Engine;
  std::string source_;
  core::VarTable vars_;
  core::CoreExprPtr normalized_;
  core::CoreExprPtr rewritten_;
  algebra::OpPtr plan_;
  algebra::OpPtr optimized_;
  std::vector<analysis::LintFinding> lint_findings_;
};

/// Which plan Execute runs.
enum class PlanChoice : uint8_t {
  kOptimized,     ///< the tree-pattern plan (default)
  kUnoptimized,   ///< the P1-style plan — the Figure 4 "old engine"
  kCoreInterp,    ///< direct interpretation of the rewritten Core
};

class Engine {
 public:
  Engine() = default;
  explicit Engine(const EngineOptions& options) : options_(options) {}
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Parses and registers an XML document under `name`.
  [[nodiscard]]
  Result<const xml::Document*> LoadDocument(const std::string& name,
                                            std::string_view xml_text);

  /// Registers an externally built document (e.g. from the workload
  /// generators). Takes ownership.
  const xml::Document* AddDocument(const std::string& name,
                                   std::unique_ptr<xml::Document> doc);

  /// Returns a registered document or nullptr.
  const xml::Document* FindDocument(const std::string& name) const;

  /// Compiles a query through all phases.
  [[nodiscard]]
  Result<CompiledQuery> Compile(std::string_view query,
                                const CompileOptions& opts = {});

  /// Global bindings by variable name; a document binds as its root node.
  using GlobalMap = std::map<std::string, xdm::Sequence>;

  /// Executes a compiled query. This legacy entry point is the sequential
  /// path (threads = 1), keeping per-algorithm ExecStats deterministic.
  [[nodiscard]]
  Result<xdm::Sequence> Execute(
      const CompiledQuery& q, const GlobalMap& globals,
      exec::PatternAlgo algo = exec::PatternAlgo::kNLJoin,
      PlanChoice plan = PlanChoice::kOptimized) const;

  /// Executes a compiled query with full evaluation options — notably
  /// EvalOptions::threads for the morsel-parallel driver (exec/parallel.h;
  /// 0 = one thread per hardware thread). Evaluation runs under a
  /// StringInterner::ExecutionFreeze: no name may be interned mid-query.
  [[nodiscard]]
  Result<xdm::Sequence> Execute(const CompiledQuery& q,
                                const GlobalMap& globals,
                                const exec::EvalOptions& opts,
                                PlanChoice plan = PlanChoice::kOptimized) const;

  /// One-shot convenience: compile + execute against a single document
  /// bound to every free variable of the query.
  [[nodiscard]]
  Result<xdm::Sequence> Run(std::string_view query, const xml::Document& doc,
                            exec::PatternAlgo algo = exec::PatternAlgo::kNLJoin,
                            const CompileOptions& opts = {});

  /// Multi-phase explain dump (surface / core / rewritten / plan /
  /// optimized plan), for the examples and debugging.
  std::string Explain(const CompiledQuery& q) const;

  StringInterner* interner() { return &interner_; }
  const StringInterner& interner() const { return interner_; }

 private:
  /// The engine's oracle, created on first use (witness documents parse
  /// with the engine's interner, which must exist first).
  analysis::EquivChecker* equiv_checker();

  EngineOptions options_;
  StringInterner interner_;
  std::map<std::string, std::unique_ptr<xml::Document>> docs_;
  std::unique_ptr<analysis::EquivChecker> equiv_;
  int32_t next_doc_id_ = 0;
};

}  // namespace xqtp::engine

#endif  // XQTP_ENGINE_ENGINE_H_
