#include <algorithm>

#include "exec/cost_model.h"
#include "storage/node_table.h"
#include "exec/exec_stats.h"
#include "exec/parallel.h"
#include "exec/pattern_eval.h"
#include "xdm/sequence_ops.h"
#include "xml/document.h"

namespace xqtp::exec {

const char* PatternAlgoName(PatternAlgo algo) {
  switch (algo) {
    case PatternAlgo::kNLJoin:
      return "NLJoin";
    case PatternAlgo::kStaircase:
      return "SCJoin";
    case PatternAlgo::kTwig:
      return "TwigJoin";
    case PatternAlgo::kStream:
      return "Stream";
    case PatternAlgo::kTwigStack:
      return "TwigStack";
    case PatternAlgo::kShredded:
      return "Shredded";
    case PatternAlgo::kCostBased:
      return "CostBased";
  }
  return "?";
}

bool RowLexLess(const BindingRow& a, const BindingRow& b) {
  size_t n = std::min(a.fields.size(), b.fields.size());
  for (size_t i = 0; i < n; ++i) {
    const xml::Node* na = a.fields[i].second;
    const xml::Node* nb = b.fields[i].second;
    if (na != nb) return xml::DocOrderLess(na, nb);
  }
  return a.fields.size() < b.fields.size();
}

void FinalizeRows(std::vector<BindingRow>* rows) {
  std::sort(rows->begin(), rows->end(), RowLexLess);
  rows->erase(std::unique(rows->begin(), rows->end()), rows->end());
}

namespace {

using pattern::PatternNode;
using pattern::PatternNodePtr;
using pattern::TreePattern;
using xml::Node;

/// True iff the sub-pattern rooted at `p` has a match starting from `ctx`
/// (existential check used for predicate branches). Early-exits on the
/// first match, so highly selective predicates stay cheap.
bool ExistsMatch(const Node* ctx, const PatternNode& p) {
  xdm::Sequence candidates;
  xdm::EvalAxisStep(ctx, p.axis, p.test, &candidates);
  int pos = 0;
  for (const xdm::Item& it : candidates) {
    const Node* n = it.node();
    // Positional constraint: only the position-th raw match counts.
    ++pos;
    if (p.position > 0) {
      if (pos < p.position) continue;
      if (pos > p.position) break;
    }
    bool preds_ok = true;
    for (const PatternNodePtr& pred : p.predicates) {
      if (!ExistsMatch(n, *pred)) {
        preds_ok = false;
        break;
      }
    }
    if (!preds_ok) continue;
    if (p.next == nullptr || ExistsMatch(n, *p.next)) return true;
  }
  return false;
}

/// Depth-first enumeration of main-path bindings.
void Enumerate(const Node* ctx, const PatternNode& p, BindingRow* partial,
               std::vector<BindingRow>* rows) {
  xdm::Sequence candidates;
  xdm::EvalAxisStep(ctx, p.axis, p.test, &candidates);
  int pos = 0;
  for (const xdm::Item& it : candidates) {
    const Node* n = it.node();
    ++pos;
    if (p.position > 0) {
      if (pos < p.position) continue;
      if (pos > p.position) break;
    }
    bool preds_ok = true;
    for (const PatternNodePtr& pred : p.predicates) {
      if (!ExistsMatch(n, *pred)) {
        preds_ok = false;
        break;
      }
    }
    if (!preds_ok) continue;
    bool annotated = p.output != kInvalidSymbol;
    if (annotated) partial->fields.emplace_back(p.output, n);
    if (p.next != nullptr) {
      Enumerate(n, *p.next, partial, rows);
    } else {
      rows->push_back(*partial);
    }
    if (annotated) partial->fields.pop_back();
  }
}

bool HasPredicateOutputs(const PatternNode& p) {
  for (const PatternNodePtr& pred : p.predicates) {
    // Any annotation inside a predicate branch.
    const PatternNode* n = pred.get();
    std::vector<const PatternNode*> stack{n};
    while (!stack.empty()) {
      const PatternNode* cur = stack.back();
      stack.pop_back();
      if (cur->output != kInvalidSymbol) return true;
      for (const PatternNodePtr& q : cur->predicates) stack.push_back(q.get());
      if (cur->next) stack.push_back(cur->next.get());
    }
  }
  if (p.next) return HasPredicateOutputs(*p.next);
  return false;
}

}  // namespace

Result<std::vector<BindingRow>> EvalPatternNL(const TreePattern& tp,
                                              const xdm::Sequence& context) {
  if (tp.root == nullptr) return std::vector<BindingRow>{};
  if (HasPredicateOutputs(*tp.root)) {
    return Status::NotImplemented(
        "output annotations inside predicate branches are not supported");
  }
  std::vector<BindingRow> rows;
  BindingRow partial;
  for (const xdm::Item& it : context) {
    if (!it.IsNode()) {
      return Status::TypeError(
          "tree pattern applied to a non-node context item");
    }
    Enumerate(it.node(), *tp.root, &partial, &rows);
  }
  FinalizeRows(&rows);
  return rows;
}

Result<std::vector<BindingRow>> EvalPatternSequential(
    const TreePattern& tp, const xdm::Sequence& context, PatternAlgo algo) {
  switch (algo) {
    case PatternAlgo::kNLJoin:
      return EvalPatternNL(tp, context);
    case PatternAlgo::kStaircase:
      return EvalPatternStaircase(tp, context);
    case PatternAlgo::kTwig:
      return EvalPatternTwig(tp, context);
    case PatternAlgo::kStream:
      return EvalPatternStream(tp, context);
    case PatternAlgo::kTwigStack:
      return EvalPatternTwigStack(tp, context);
    case PatternAlgo::kShredded:
      return storage::EvalPatternShredded(tp, context);
    case PatternAlgo::kCostBased:
      return EvalPatternSequential(tp, context, ChooseAlgorithm(tp, context));
  }
  return Status::Internal("unknown pattern algorithm");
}

Result<std::vector<BindingRow>> EvalPattern(const TreePattern& tp,
                                            const xdm::Sequence& context,
                                            PatternAlgo algo,
                                            const ParallelContext* par) {
  CountPatternEval();
  // Resolve the cost-based choice once, against the full context, so a
  // morselized evaluation runs ONE algorithm across all its morsels.
  if (algo == PatternAlgo::kCostBased) algo = ChooseAlgorithm(tp, context);
  if (par != nullptr) {
    Result<std::vector<BindingRow>> rows = std::vector<BindingRow>{};
    if (TryEvalPatternParallel(tp, context, algo, *par, &rows)) return rows;
  }
  return EvalPatternSequential(tp, context, algo);
}

}  // namespace xqtp::exec
