// Document: an arena of nodes plus lazily-built per-tag indexes.
#ifndef XQTP_XML_DOCUMENT_H_
#define XQTP_XML_DOCUMENT_H_

#include <deque>
#include <memory>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/interner.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "xml/node.h"

namespace xqtp::xml {

/// Structural statistics of a document, computed lazily like the tag
/// indexes (consumed by the cost model in exec/cost_model.h).
struct DocumentStats {
  int64_t node_count = 0;   ///< document + elements + text nodes
  double avg_fanout = 1.1;  ///< average children per *branching* element
  int max_depth = 1;        ///< deepest element level
};

/// Base class for lazily-attached per-document derived structures built
/// by higher layers (e.g. the relational shredding in src/storage).
class DocumentExtension {
 public:
  virtual ~DocumentExtension() = default;
};

/// An XML document. Owns its nodes (stable addresses via deque arena).
/// Build one with DocumentBuilder or xml::Parse.
class Document {
 public:
  explicit Document(StringInterner* interner) : interner_(interner) {}
  Document(const Document&) = delete;
  Document& operator=(const Document&) = delete;

  const Node* root() const { return root_; }
  Node* mutable_root() { return root_; }
  StringInterner* interner() const { return interner_; }

  /// Dense id used for cross-document ordering.
  int32_t id() const { return id_; }
  void set_id(int32_t id) { id_ = id; }

  size_t node_count() const { return arena_.size(); }

  /// All element nodes with the given tag, in document order. Built lazily
  /// on first request and cached; this is the "tag stream" consumed by the
  /// Staircase and Twig joins.
  const std::vector<const Node*>& ElementsByTag(Symbol tag) const;

  /// All element nodes in document order (the node() stream).
  const std::vector<const Node*>& AllElements() const;

  /// All text nodes in document order.
  const std::vector<const Node*>& TextNodes() const;

  /// Document, element and text nodes in document order (the node() stream
  /// of the descendant axes; attributes excluded per XPath).
  const std::vector<const Node*>& AllNodes() const;

  /// Structural statistics; computed on first use and cached.
  const DocumentStats& Stats() const;

  /// Returns the document's extension, building it with `factory` under
  /// the document lock on first use. A single extension slot exists per
  /// document (one consumer: the relational shredding); the extension's
  /// lifetime is tied to the document.
  const DocumentExtension* GetOrBuildExtension(
      DocumentExtension* (*factory)(const Document&)) const;

  /// All attribute nodes with the given name, in document order.
  const std::vector<const Node*>& AttributesByName(Symbol name) const;

 private:
  friend class DocumentBuilder;

  Node* NewNode() {
    arena_.emplace_back();
    return &arena_.back();
  }

  /// Builds/returns the element list; requires lazy_mu_ held exclusively
  /// (machine-checked: callers without the writer lock fail to compile
  /// under clang -Wthread-safety).
  const std::vector<const Node*>& AllElementsLocked() const
      REQUIRES(lazy_mu_);

  StringInterner* interner_;
  std::deque<Node> arena_;
  Node* root_ = nullptr;
  int32_t id_ = 0;

  /// Guards all lazily-built structures below. Documents are immutable
  /// after Finish(), so queries over *compiled* plans may execute
  /// concurrently; the first access to each index builds it under an
  /// exclusive lock, while already-built structures are returned under a
  /// shared lock — the hot path of the morsel workers, which only ever
  /// read pre-warmed indexes (exec/parallel.h pre-builds what a pattern
  /// needs before fanning out). (Compilation itself mutates the engine's
  /// interner and is not thread-safe — see engine.h.)
  mutable SharedMutex lazy_mu_;
  mutable std::unordered_map<Symbol, std::vector<const Node*>> tag_index_
      GUARDED_BY(lazy_mu_);
  mutable std::unordered_map<Symbol, std::vector<const Node*>> attr_index_
      GUARDED_BY(lazy_mu_);
  mutable std::vector<const Node*> all_elements_ GUARDED_BY(lazy_mu_);
  mutable bool all_elements_built_ GUARDED_BY(lazy_mu_) = false;
  mutable std::vector<const Node*> text_nodes_ GUARDED_BY(lazy_mu_);
  mutable bool text_nodes_built_ GUARDED_BY(lazy_mu_) = false;
  mutable std::vector<const Node*> all_nodes_ GUARDED_BY(lazy_mu_);
  mutable bool all_nodes_built_ GUARDED_BY(lazy_mu_) = false;
  mutable DocumentStats stats_ GUARDED_BY(lazy_mu_);
  mutable bool stats_built_ GUARDED_BY(lazy_mu_) = false;
  /// The pointer cell is guarded; the pointee is deliberately NOT
  /// PT_GUARDED_BY: an extension is immutable once published under the
  /// lock, so readers dereference it lock-free (see DESIGN.md).
  mutable std::unique_ptr<DocumentExtension> extension_ GUARDED_BY(lazy_mu_);
};

/// Incremental builder. Usage:
///   DocumentBuilder b(&interner);
///   b.StartElement("site"); b.Attribute("id", "1"); b.Text("hi");
///   b.EndElement();
///   std::unique_ptr<Document> doc = b.Finish();
/// Finish() assigns pre/post/depth numbers in one traversal.
class DocumentBuilder {
 public:
  explicit DocumentBuilder(StringInterner* interner);

  void StartElement(std::string_view tag);
  void Attribute(std::string_view name, std::string_view value);
  void Text(std::string_view text);
  void EndElement();

  /// Completes the document; the builder must be balanced (all elements
  /// closed). Invalidates the builder.
  std::unique_ptr<Document> Finish();

 private:
  void AppendChild(Node* child);

  std::unique_ptr<Document> doc_;
  std::vector<Node*> stack_;
};

}  // namespace xqtp::xml

#endif  // XQTP_XML_DOCUMENT_H_
