#!/usr/bin/env bash
# CI gate: builds the library twice and runs the full test suite under
# each configuration.
#
#  1. Release — the tier-1 configuration (ROADMAP.md): the paper's
#     benchmark numbers come from this build, so it must stay green and
#     warning-clean.
#  2. Debug + ASan/UBSan — analysis::kVerifyByDefault is on without
#     NDEBUG, so every test additionally runs the Core and plan verifiers
#     AND the translation-validation oracle (witness-corpus differential
#     execution of every rewrite checkpoint) with the sanitizers watching
#     the checkers themselves.
#  3. Release + TSan — the morsel-parallel driver's threading tests
#     (parallel_eval_test, concurrency_test) under ThreadSanitizer:
#     per-query thread pools, the shared-mutex lazy-index path, and two
#     parallel queries running concurrently.
#
# Between the build/test legs:
#  - the project lint gate (tools/lint.py): raw sync primitives outside
#    common/mutex.h, stdout printing in library code, Status APIs without
#    [[nodiscard]], include-guard naming — plus its --self-test, which
#    proves each rule still fires on a seeded violation;
#  - a clang-tidy pass (.clang-tidy profile, warnings-as-errors) over
#    src/, skipped with a notice when clang-tidy is not installed;
#  - a clang -Werror=thread-safety leg compiling the full library, so the
#    capability annotations (common/thread_annotations.h) are PROVEN, not
#    just present; skipped with a loud notice when clang++ is missing
#    (gcc cannot check them) — never silently;
#  - a bounded Release run of tools/equiv_fuzz (fixed seed) whose summary
#    line is part of the gate's output — the deep seed-matrix sweep under
#    sanitizers lives in ci/fuzz.sh;
#  - a bounded smoke run of bench_parallel that drops the perf-trajectory
#    records (--json) into BENCH_smoke.json at the repo root.
#
# Every leg owns its build directory (build-ci-release, build-ci-tsa,
# build-ci-sanitize, build-ci-tsan; ci/fuzz.sh uses build-ci-fuzz) so one
# leg's CMake cache (compiler, sanitizers, flags) can never poison
# another's.
#
# Usage: ci/check.sh [jobs]   (defaults to all cores)
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

echo "==== [lint] tools/lint.py self-test + gate ===="
python3 tools/lint.py --self-test
python3 tools/lint.py

run_config() {
  local name="$1" dir="$2"
  shift 2
  echo "==== [$name] configure ===="
  cmake -B "$dir" -S . "$@" > /dev/null
  echo "==== [$name] build ===="
  local log
  log="$(mktemp)"
  # -Wall -Wextra are always on; fail the gate on any diagnostic.
  if ! cmake --build "$dir" -j "$JOBS" 2>&1 | tee "$log"; then
    rm -f "$log"
    echo "==== [$name] BUILD FAILED ===="
    exit 1
  fi
  if grep -E "warning:|error:" "$log"; then
    rm -f "$log"
    echo "==== [$name] FAILED: compiler diagnostics above ===="
    exit 1
  fi
  rm -f "$log"
  echo "==== [$name] test ===="
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
}

run_config release build-ci-release \
  -DCMAKE_BUILD_TYPE=Release -DXQTP_WERROR=ON \
  -DCMAKE_EXPORT_COMPILE_COMMANDS=ON

echo "==== [clang-tidy] static analysis ===="
if command -v clang-tidy > /dev/null 2>&1; then
  # shellcheck disable=SC2046
  clang-tidy -p build-ci-release --quiet \
    $(find src -name '*.cc' | sort)
  echo "==== [clang-tidy] clean ===="
else
  echo "==== [clang-tidy] SKIPPED: clang-tidy not installed ===="
fi

echo "==== [thread-safety] clang -Werror=thread-safety ===="
CLANGXX=""
for c in clang++ clang++-21 clang++-20 clang++-19 clang++-18 clang++-17 \
         clang++-16 clang++-15 clang++-14; do
  if command -v "$c" > /dev/null 2>&1; then
    CLANGXX="$c"
    break
  fi
done
if [[ -n "$CLANGXX" ]]; then
  # Own build tree: a different compiler must never touch another leg's
  # CMake cache. -Wthread-safety comes from CMakeLists.txt (clang-only);
  # the explicit -Werror=thread-safety here keeps the leg meaningful even
  # without XQTP_WERROR.
  cmake -B build-ci-tsa -S . -DCMAKE_BUILD_TYPE=Release \
    -DCMAKE_CXX_COMPILER="$CLANGXX" -DXQTP_WERROR=ON \
    -DCMAKE_CXX_FLAGS="-Werror=thread-safety" > /dev/null
  cmake --build build-ci-tsa -j "$JOBS" --target xqtp
  echo "==== [thread-safety] library clean under $CLANGXX ===="
  # Negative leg: each seeded lock-discipline misuse must FAIL to compile
  # (and the positive control must pass), proving the annotations bite.
  python3 tests/thread_safety_negative.py --src src
else
  echo "==== [thread-safety] SKIPPED: no clang++ on PATH ===="
  echo "====   gcc cannot check the capability annotations; install"
  echo "====   clang to prove lock discipline (-Werror=thread-safety)."
fi

echo "==== [equiv-fuzz] bounded differential sweep (Release) ===="
build-ci-release/tools/equiv_fuzz --iters 500 --seed 1 \
  --artifacts fuzz-artifacts --quiet

echo "==== [bench-smoke] perf trajectory -> BENCH_smoke.json ===="
build-ci-release/bench/bench_parallel \
  --benchmark_min_time=0.05 --json=BENCH_smoke.json
python3 -c "import json; json.load(open('BENCH_smoke.json'))" \
  && echo "BENCH_smoke.json: valid JSON"

run_config debug-sanitize build-ci-sanitize \
  -DCMAKE_BUILD_TYPE=Debug -DXQTP_WERROR=ON \
  "-DXQTP_SANITIZE=address;undefined"

# TSan leg: Release (the pool actually spins) with only the threading
# tests — TSan and ASan cannot be combined, so this is its own tree.
echo "==== [tsan] configure ===="
cmake -B build-ci-tsan -S . -DCMAKE_BUILD_TYPE=Release \
  -DXQTP_WERROR=ON -DXQTP_SANITIZE=thread > /dev/null
echo "==== [tsan] build ===="
cmake --build build-ci-tsan -j "$JOBS" \
  --target parallel_eval_test concurrency_test
echo "==== [tsan] test ===="
ctest --test-dir build-ci-tsan --output-on-failure \
  -R '^(parallel_eval_test|concurrency_test)$'

echo "==== all checks passed ===="
