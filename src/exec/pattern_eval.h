// The physical tree-pattern algorithms behind TupleTreePattern. All three
// produce the operator semantics of Section 4.1: the distinct projected
// bindings of the pattern over the context nodes, in root-to-leaf lexical
// order (which coincides with XPath document order when the single output
// is at the extraction point).
//
//  - kNLJoin:    nested-loop navigation over first-child / next-sibling
//                cursors; touches only the reachable part of the tree.
//  - kStaircase: Staircase-join [Grust & van Keulen]: per-step scans of the
//                per-tag index with context pruning and skipping.
//  - kTwig:      holistic twig join [Bruno, Koudas & Srivastava]: one
//                merge pass per pattern edge over document-ordered tag
//                streams (bottom-up match-set computation, then a top-down
//                filtering pass).
//  - kStream:    streaming evaluation (a future-work item of the paper):
//                one pre-order scan of the context region with match-
//                instance stacks and buffered predicate resolution.
//
// The Staircase and Twig implementations handle single-output patterns
// (the only shape the optimizer emits); multi-output patterns fall back to
// the nested-loop algorithm, which enumerates full bindings.
#ifndef XQTP_EXEC_PATTERN_EVAL_H_
#define XQTP_EXEC_PATTERN_EVAL_H_

#include <vector>

#include "common/status.h"
#include "pattern/tree_pattern.h"
#include "xdm/item.h"

namespace xqtp::exec {

/// The physical algorithm used to evaluate TupleTreePattern operators.
enum class PatternAlgo : uint8_t {
  kNLJoin,
  kStaircase,
  kTwig,
  kStream,
  kTwigStack,  ///< the classic stack-based TwigStack (twig variant #2)
  kShredded,   ///< relational staircase join over the shredded node table
               ///< (storage/node_table.h — the XPath accelerator encoding)
  kCostBased,  ///< per-evaluation choice by the cost model (cost_model.h)
};

const char* PatternAlgoName(PatternAlgo algo);

/// Parallel-evaluation parameters (exec/parallel.h); EvalPattern takes an
/// optional pointer so pattern evaluation stays usable without the driver.
struct ParallelContext;

/// One projected binding: (output field, bound node) pairs in root-to-leaf
/// lexical order of the pattern's annotated steps.
struct BindingRow {
  std::vector<std::pair<Symbol, const xml::Node*>> fields;

  bool operator==(const BindingRow& other) const {
    return fields == other.fields;
  }
};

/// Evaluates `tp` over the given context nodes with the chosen algorithm.
/// `context` items must all be nodes. Returns distinct rows in lexical
/// order. With a non-null `par`, evaluations whose root fan-out crosses
/// the morsel threshold run on the parallel driver (exec/parallel.h) with
/// bit-identical results; everything else takes the sequential path.
[[nodiscard]]
Result<std::vector<BindingRow>> EvalPattern(const pattern::TreePattern& tp,
                                            const xdm::Sequence& context,
                                            PatternAlgo algo,
                                            const ParallelContext* par = nullptr);

/// The sequential dispatch behind EvalPattern: runs exactly one algorithm
/// (kCostBased resolves through the cost model first) without counting a
/// pattern evaluation. The morsel driver calls this per morsel so
/// ExecStats::pattern_evals stays exact — one count per operator
/// evaluation, however many morsels it fans out into.
[[nodiscard]]
Result<std::vector<BindingRow>> EvalPatternSequential(
    const pattern::TreePattern& tp, const xdm::Sequence& context,
    PatternAlgo algo);

/// The lexical row order of Section 4.1: document order of the bound
/// nodes, field by field in root-to-leaf order, shorter rows first on a
/// tie. FinalizeRows and the driver's morsel merge share this comparator,
/// which is what makes parallel results bit-identical.
bool RowLexLess(const BindingRow& a, const BindingRow& b);

/// Shared finalization: sorts rows lexically by document order of their
/// bound nodes and removes duplicates. Exposed for the algorithm
/// implementations and tests.
void FinalizeRows(std::vector<BindingRow>* rows);

// Individual algorithm entry points (used directly by unit tests).
[[nodiscard]]
Result<std::vector<BindingRow>> EvalPatternNL(const pattern::TreePattern& tp,
                                              const xdm::Sequence& context);
[[nodiscard]]
Result<std::vector<BindingRow>> EvalPatternStaircase(
    const pattern::TreePattern& tp, const xdm::Sequence& context);
[[nodiscard]]
Result<std::vector<BindingRow>> EvalPatternTwig(const pattern::TreePattern& tp,
                                                const xdm::Sequence& context);
[[nodiscard]]
Result<std::vector<BindingRow>> EvalPatternStream(
    const pattern::TreePattern& tp, const xdm::Sequence& context);
[[nodiscard]]
Result<std::vector<BindingRow>> EvalPatternTwigStack(
    const pattern::TreePattern& tp, const xdm::Sequence& context);

}  // namespace xqtp::exec

#endif  // XQTP_EXEC_PATTERN_EVAL_H_
