// Plan rendering in the paper's functional notation, e.g.
//   MapToItem{IN#out}
//   (TupleTreePattern
//     [IN#dot/descendant::person[child::emailaddress]/child::name{out}]
//   (MapFromItem{[dot : IN]}($d)))
#ifndef XQTP_ALGEBRA_PRINTER_H_
#define XQTP_ALGEBRA_PRINTER_H_

#include <string>

#include "algebra/ops.h"
#include "core/ast.h"

namespace xqtp::algebra {

/// Single-line rendering (used for plan-equality tests).
std::string ToString(const Op& plan, const core::VarTable& vars,
                     const StringInterner& interner);

/// Indented multi-line rendering (used by explain output and examples).
std::string ToPrettyString(const Op& plan, const core::VarTable& vars,
                           const StringInterner& interner);

}  // namespace xqtp::algebra

#endif  // XQTP_ALGEBRA_PRINTER_H_
