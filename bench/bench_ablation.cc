// Ablation study (DESIGN.md experiment E6): contribution of each rewrite
// family to plan quality and execution time. For the Q1 family and the
// Figure 4 FLWOR, each configuration disables one TPNF' rule family (or
// the algebraic detection entirely) and reports the plan statistics plus
// execution time.
#include "bench_common.h"

namespace xqtp::bench {
namespace {

struct Config {
  const char* name;
  engine::CompileOptions opts;
};

std::vector<Config> Configs() {
  std::vector<Config> configs;
  configs.push_back({"full", {}});
  {
    engine::CompileOptions o;
    o.rewrite_opts.typeswitch_rules = false;
    configs.push_back({"no-typeswitch-rules", o});
  }
  {
    engine::CompileOptions o;
    o.rewrite_opts.flwor_rules = false;
    configs.push_back({"no-flwor-rules", o});
  }
  {
    engine::CompileOptions o;
    o.rewrite_opts.ddo_removal = false;
    configs.push_back({"no-ddo-removal", o});
  }
  {
    engine::CompileOptions o;
    o.rewrite_opts.loop_split = false;
    configs.push_back({"no-loop-split", o});
  }
  {
    engine::CompileOptions o;
    o.rewrite = false;
    configs.push_back({"no-rewrites", o});
  }
  {
    engine::CompileOptions o;
    o.detect_tree_patterns = false;
    configs.push_back({"no-detection", o});
  }
  return configs;
}

struct Query {
  const char* name;
  const char* text;
};

constexpr Query kQueries[] = {
    {"Q1-flwor",
     "(for $x in $input//person[emailaddress] return $x)/name"},
    {"Fig4-flwor",
     "for $x1 in $input/site, $x2 in $x1/people, "
     "$x3 in $x2/person[emailaddress] return $x3/profile/interest"},
};

void Run(benchmark::State& state, const std::string& q,
         const engine::CompileOptions& copts) {
  engine::Engine& e = SharedEngine();
  auto cq = e.Compile(q, copts);
  if (!cq.ok()) {
    state.SkipWithError(cq.status().ToString().c_str());
    return;
  }
  algebra::PlanStats stats = cq->Stats();
  const xml::Document& doc = XmarkDoc("xmark_ablation", 0.1);
  engine::Engine::GlobalMap globals;
  for (const std::string& g : cq->GlobalNames()) {
    globals[g] = {xdm::Item(doc.root())};
  }
  for (auto _ : state) {
    auto res = e.Execute(*cq, globals, exec::PatternAlgo::kStaircase);
    if (!res.ok()) {
      state.SkipWithError(res.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(res);
  }
  state.counters["pattern_ops"] = stats.tree_pattern_ops;
  state.counters["treejoin_ops"] = stats.tree_join_ops;
  state.counters["max_steps"] = stats.max_pattern_steps;
  state.counters["ddo_ops"] = stats.ddo_ops;
}

void Register() {
  for (const Query& q : kQueries) {
    for (const Config& c : Configs()) {
      std::string name = std::string("Ablation/") + q.name + "/" + c.name;
      std::string text = q.text;
      engine::CompileOptions opts = c.opts;
      benchmark::RegisterBenchmark(
          name.c_str(),
          [text, opts](benchmark::State& s) { Run(s, text, opts); })
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace xqtp::bench

int main(int argc, char** argv) {
  xqtp::bench::Register();
  return xqtp::bench::BenchMain(argc, argv);
}
