#include "exec/evaluator.h"

#include <algorithm>
#include <functional>
#include <memory>
#include <unordered_set>

#include "analysis/plan_props.h"
#include "common/exec_stats.h"
#include "common/fault_injection.h"
#include "exec/fn_lib.h"
#include "exec/parallel.h"
#include "xdm/sequence_ops.h"
#include "xml/document.h"

namespace xqtp::exec {

namespace {

using algebra::Op;
using algebra::OpKind;
using algebra::OpPtr;
using xdm::Item;
using xdm::Sequence;

/// Approximate materialization cost of a sequence for the governor's
/// byte accountant. Items are counted at their in-vector size; string
/// payloads and node identity are shared and not re-counted. The point is
/// trapping runaway *cardinality* (cross products), not exact heap audit.
int64_t ApproxBytes(const Sequence& s) {
  return static_cast<int64_t>(s.size() * sizeof(Item));
}

/// Approximate materialization cost of a tuple: its fields vector plus
/// every field's sequence.
int64_t ApproxBytes(const Tuple& t) {
  int64_t bytes =
      static_cast<int64_t>(t.field_count() *
                           (sizeof(Symbol) + sizeof(Sequence)));
  for (const auto& [sym, seq] : t.fields()) bytes += ApproxBytes(seq);
  return bytes;
}

/// Downstream consumer of a streamed tuple-plan pipeline. Producers call
/// it once per non-empty TupleBatch, in row order; an error Status stops
/// the stream.
using BatchSink = std::function<Status(TupleBatch&&)>;

class Evaluator {
 public:
  Evaluator(const core::VarTable& vars, const Bindings& bindings,
            const EvalOptions& opts)
      : vars_(vars), bindings_(bindings), opts_(opts) {
    int threads = ThreadPool::ResolveThreads(opts.threads);
    if (threads > 1) {
      par_ = std::make_unique<ParallelContext>();
      par_->threads = threads;
      par_->min_fanout = std::max(1, opts.parallel_min_fanout);
      par_->morsels_per_thread = std::max(1, opts.parallel_morsels_per_thread);
      // The per-query pool is created on the first evaluation that
      // actually morselizes — small queries never pay the thread spawn —
      // and at the driver's clamped width, so a fan-out that feeds 3
      // threads never spawns 8 (the bench_parallel scaling cliff).
      par_->pool = [this](int desired) {
        if (pool_ == nullptr) pool_ = std::make_unique<ThreadPool>(desired);
        return pool_.get();
      };
      // Workers re-install the query's governor per morsel; the caller
      // (Evaluate) has already installed it on this thread.
      par_->governor = CurrentGovernor();
    }
  }

  Result<Sequence> Run(const Op& plan) {
    return EvalItem(plan, RowView(), nullptr);
  }

 private:
  /// Evaluates an item plan. `tuple` is the current tuple context for
  /// dependent plans (IN#field / IN as tuple) — a RowView over either a
  /// materialized Tuple (row mode; `const Tuple*` call sites convert
  /// implicitly) or one row of a TupleBatch (batch kernels); `item` is
  /// the current item for MapFromItem dependents (IN as item). When the
  /// optimizer stamped property claims on the operator, debug builds
  /// assert them against the concrete output sequence.
  Result<Sequence> EvalItem(const Op& op, RowView tuple, const Item* item) {
    if (!opts_.check_inferred_props || !op.props.Any()) {
      return EvalItemInner(op, tuple, item);
    }
    XQTP_ASSIGN_OR_RETURN(Sequence out, EvalItemInner(op, tuple, item));
    XQTP_RETURN_NOT_OK(CheckClaims(op.props, out));
    return out;
  }

  /// Asserts one operator's stamped claims on one evaluated sequence.
  static Status CheckClaims(const algebra::PropsClaims& c,
                            const Sequence& out) {
    const int64_t n = static_cast<int64_t>(out.size());
    if (n < c.card_lo || (c.card_hi >= 0 && n > c.card_hi)) {
      return Status::Internal(
          "[plan props] violated claim [claim-card]: sequence length " +
          std::to_string(n) + " outside inferred [" +
          std::to_string(c.card_lo) + ", " +
          (c.card_hi >= 0 ? std::to_string(c.card_hi) : "*") + "]");
    }
    if (c.ordered || c.dup_free) {
      // Order claims are only stamped on sequences inferred all-node (or
      // at most one item), so a non-node under the claim is itself an
      // inference bug.
      for (size_t i = 0; i + 1 < out.size(); ++i) {
        if (!out[i].IsNode() || !out[i + 1].IsNode()) {
          return Status::Internal(
              "[plan props] violated claim [claim-nodes]: atomic item in a "
              "sequence claimed ordered/duplicate-free");
        }
        const xml::Node* a = out[i].node();
        const xml::Node* b = out[i + 1].node();
        if (c.ordered && xml::DocOrderLess(b, a)) {
          return Status::Internal(
              "[plan props] violated claim [claim-ordered]: adjacent items "
              "out of document order");
        }
        if (c.ordered && c.dup_free && a == b) {
          return Status::Internal(
              "[plan props] violated claim [claim-dupfree]: adjacent "
              "duplicate nodes");
        }
      }
      if (c.dup_free && !c.ordered) {
        std::unordered_set<const xml::Node*> seen;
        for (const Item& it : out) {
          if (it.IsNode() && !seen.insert(it.node()).second) {
            return Status::Internal(
                "[plan props] violated claim [claim-dupfree]: duplicate "
                "node");
          }
        }
      }
    }
    return Status::OK();
  }

  Result<Sequence> EvalItemInner(const Op& op, RowView tuple,
                                 const Item* item) {
    // The operator boundary is the evaluator's cooperative check cadence,
    // strided: a full governor check (cancel + deadline + budget) every
    // 32nd operator evaluation. Unstrided, the check's clock read and
    // atomics cost ~10% on cheap per-tuple plans (bench_governor); the
    // stride bounds cancellation latency by 32 operator evaluations while
    // keeping the overhead under the 2% target. Plain member counter:
    // the evaluator runs on the coordinating thread only (morsel workers
    // poll through their own per-morsel GovernorTickers).
    if ((governor_tick_++ & 31u) == 0) {
      XQTP_RETURN_NOT_OK(GovernorPoll());
    }
    switch (op.kind) {
      case OpKind::kConst:
        return Sequence{op.literal};
      case OpKind::kGlobalVar: {
        auto it = bindings_.find(op.var);
        if (it == bindings_.end()) {
          return Status::InvalidArgument("unbound query global $" +
                                         vars_.NameOf(op.var));
        }
        return it->second;
      }
      case OpKind::kScopedVar: {
        auto it = scoped_.find(op.var);
        if (it == scoped_.end()) {
          return Status::Internal("unbound scoped variable $" +
                                  vars_.NameOf(op.var));
        }
        return it->second;
      }
      case OpKind::kInputItem:
        if (item == nullptr) {
          return Status::Internal("IN (item) used outside a dependent plan");
        }
        return Sequence{*item};
      case OpKind::kFieldAccess: {
        if (!tuple.valid()) {
          return Status::Internal("IN#field used outside a tuple context");
        }
        const Sequence* v = tuple.Get(op.field);
        if (v == nullptr) return Sequence{};
        return *v;
      }
      case OpKind::kTreeJoin: {
        XQTP_ASSIGN_OR_RETURN(Sequence ctx,
                              EvalItem(*op.inputs[0], tuple, item));
        Sequence out;
        out.reserve(ctx.size());
        for (const Item& it : ctx) {
          if (!it.IsNode()) {
            return Status::TypeError("path step applied to an atomic value");
          }
          xdm::EvalAxisStep(it.node(), op.axis, op.test, &out);
        }
        return out;
      }
      case OpKind::kDdo: {
        XQTP_ASSIGN_OR_RETURN(Sequence in,
                              EvalItem(*op.inputs[0], tuple, item));
        // Plans stack a Ddo on every path step. Two escapes, cheapest
        // first: the optimizer's stamped claims on the INPUT operator
        // prove the sort is the identity (plan_props inference — skips
        // even the O(n) probe), else the runtime probe catches inputs
        // that happen to be sorted (single-output patterns emit such
        // sequences by construction).
        if (analysis::ClaimsImplyDdoIdentity(op.inputs[0]->props)) return in;
        if (xdm::IsDistinctDocOrdered(in)) return in;
        return xdm::DistinctDocOrder(std::move(in));
      }
      case OpKind::kMapToItem: {
        if (opts_.tuple_exec == TupleExecMode::kRow) {
          return MapToItemRow(op, tuple);
        }
        Sequence out;
        ScopedMemoryCharge mem;
        const Op& dep = *op.dep;
        // Satellite fast path: a dependent plan that is just IN#field
        // needs no per-row evaluation at all — resolve the field symbol
        // ONCE per batch and concatenate the column's sequences. (Skipped
        // when claim checking wants to see the dep's output per row.)
        const bool field_fast =
            dep.kind == OpKind::kFieldAccess &&
            !(opts_.check_inferred_props && dep.props.Any());
        XQTP_RETURN_NOT_OK(EvalTupleBatches(
            *op.inputs[0], tuple, [&](TupleBatch&& b) -> Status {
              if (field_fast) {
                const TupleBatch::BoundColumn* col = b.Find(dep.field);
                if (col == nullptr) return Status::OK();  // absent = ()
                int64_t bytes = 0;
                for (size_t i = 0; i < b.rows(); ++i) {
                  const Sequence& v = b.Value(*col, i);
                  bytes += ApproxBytes(v);
                  out.insert(out.end(), v.begin(), v.end());
                }
                return mem.Grow(bytes);
              }
              for (size_t i = 0; i < b.rows(); ++i) {
                XQTP_ASSIGN_OR_RETURN(
                    Sequence part, EvalItem(dep, RowView(&b, i), nullptr));
                XQTP_RETURN_NOT_OK(mem.Grow(ApproxBytes(part)));
                out.insert(out.end(), part.begin(), part.end());
              }
              return Status::OK();
            }));
        return out;
      }
      case OpKind::kFnCall:
        return EvalFnCall(op, tuple, item);
      case OpKind::kCompare: {
        XQTP_ASSIGN_OR_RETURN(Sequence l, EvalItem(*op.inputs[0], tuple, item));
        XQTP_ASSIGN_OR_RETURN(Sequence r, EvalItem(*op.inputs[1], tuple, item));
        XQTP_ASSIGN_OR_RETURN(bool b, xdm::GeneralCompare(op.cmp_op, l, r));
        return Sequence{Item(b)};
      }
      case OpKind::kArith: {
        XQTP_ASSIGN_OR_RETURN(Sequence l, EvalItem(*op.inputs[0], tuple, item));
        XQTP_ASSIGN_OR_RETURN(Sequence r, EvalItem(*op.inputs[1], tuple, item));
        return xdm::EvalArith(op.arith_op, l, r);
      }
      case OpKind::kAnd:
      case OpKind::kOr: {
        XQTP_ASSIGN_OR_RETURN(Sequence l, EvalItem(*op.inputs[0], tuple, item));
        XQTP_ASSIGN_OR_RETURN(bool lb, xdm::EffectiveBooleanValue(l));
        if (op.kind == OpKind::kAnd && !lb) return Sequence{Item(false)};
        if (op.kind == OpKind::kOr && lb) return Sequence{Item(true)};
        XQTP_ASSIGN_OR_RETURN(Sequence r, EvalItem(*op.inputs[1], tuple, item));
        XQTP_ASSIGN_OR_RETURN(bool rb, xdm::EffectiveBooleanValue(r));
        return Sequence{Item(rb)};
      }
      case OpKind::kSequence: {
        Sequence out;
        ScopedMemoryCharge mem;
        for (const OpPtr& in : op.inputs) {
          XQTP_ASSIGN_OR_RETURN(Sequence part, EvalItem(*in, tuple, item));
          XQTP_RETURN_NOT_OK(mem.Grow(ApproxBytes(part)));
          out.insert(out.end(), part.begin(), part.end());
        }
        return out;
      }
      case OpKind::kIf: {
        XQTP_ASSIGN_OR_RETURN(Sequence c, EvalItem(*op.inputs[0], tuple, item));
        XQTP_ASSIGN_OR_RETURN(bool cb, xdm::EffectiveBooleanValue(c));
        return EvalItem(*op.inputs[cb ? 1 : 2], tuple, item);
      }
      case OpKind::kForEach: {
        XQTP_ASSIGN_OR_RETURN(Sequence seq,
                              EvalItem(*op.inputs[0], tuple, item));
        Sequence out;
        // The FLWOR loop is where cross products materialize: the charge
        // grows with the accumulated output, so a runaway join trips the
        // budget mid-loop instead of after exhausting the heap.
        ScopedMemoryCharge mem;
        for (size_t i = 0; i < seq.size(); ++i) {
          scoped_[op.var] = Sequence{seq[i]};
          if (op.pos_var != core::kNoVar) {
            scoped_[op.pos_var] =
                Sequence{Item(static_cast<int64_t>(i + 1))};
          }
          if (op.dep2 != nullptr) {
            XQTP_ASSIGN_OR_RETURN(Sequence cond,
                                  EvalItem(*op.dep2, tuple, item));
            XQTP_ASSIGN_OR_RETURN(bool keep,
                                  xdm::EffectiveBooleanValue(cond));
            if (!keep) continue;
          }
          XQTP_ASSIGN_OR_RETURN(Sequence part, EvalItem(*op.dep, tuple, item));
          XQTP_RETURN_NOT_OK(mem.Grow(ApproxBytes(part)));
          out.insert(out.end(), part.begin(), part.end());
        }
        scoped_.erase(op.var);
        if (op.pos_var != core::kNoVar) scoped_.erase(op.pos_var);
        return out;
      }
      case OpKind::kLetIn: {
        XQTP_ASSIGN_OR_RETURN(Sequence binding,
                              EvalItem(*op.inputs[0], tuple, item));
        scoped_[op.var] = std::move(binding);
        Result<Sequence> res = EvalItem(*op.dep, tuple, item);
        scoped_.erase(op.var);
        return res;
      }
      case OpKind::kTypeswitch: {
        XQTP_ASSIGN_OR_RETURN(Sequence input,
                              EvalItem(*op.inputs[0], tuple, item));
        bool numeric = input.size() == 1 && input[0].IsNumeric();
        core::VarId v = numeric ? op.var : op.pos_var;
        const Op& branch = numeric ? *op.dep : *op.dep2;
        scoped_[v] = std::move(input);
        Result<Sequence> res = EvalItem(branch, tuple, item);
        scoped_.erase(v);
        return res;
      }
      // Tuple plans are not item plans.
      case OpKind::kMapFromItem:
      case OpKind::kSelect:
      case OpKind::kTupleTreePattern:
      case OpKind::kInputTuple:
        return Status::Internal("tuple plan evaluated in item context");
    }
    return Status::Internal("unreachable operator kind");
  }

  Result<Sequence> EvalFnCall(const Op& op, RowView tuple, const Item* item) {
    XQTP_FAULT_POINT("exec.fn_call");
    std::vector<Sequence> args;
    args.reserve(op.inputs.size());
    for (const OpPtr& in : op.inputs) {
      XQTP_ASSIGN_OR_RETURN(Sequence a, EvalItem(*in, tuple, item));
      args.push_back(std::move(a));
    }
    return ApplyCoreFn(op.fn, args);
  }

  // ------------------------------------------------------------------
  // Columnar batch pipeline (TupleExecMode::kBatch, the default).

  /// Yields one batch downstream: counts it, gives the governor its
  /// per-BATCH poll (row-mode loops polled per row via the operator
  /// stride), and charges the batch's bytes for the duration of the
  /// downstream processing. Empty batches are dropped here so kernels
  /// never see them.
  Status Emit(const BatchSink& sink, TupleBatch&& b) {
    if (b.rows() == 0) return Status::OK();
    CountBatch();
    XQTP_RETURN_NOT_OK(GovernorPoll());
    ScopedMemoryCharge mem;
    XQTP_RETURN_NOT_OK(mem.Grow(b.ApproxBytes()));
    return sink(std::move(b));
  }

  /// Evaluates a tuple plan as a stream of TupleBatches pushed into
  /// `sink` — no intermediate TupleSeq is ever materialized. `ambient`
  /// is the enclosing tuple context for plans rooted at IN (rule (a)
  /// rewrites); inside a batch kernel it is a view of the outer batch's
  /// current row.
  Status EvalTupleBatches(const Op& op, RowView ambient,
                          const BatchSink& sink) {
    switch (op.kind) {
      case OpKind::kInputTuple: {
        if (!ambient.valid()) {
          return Status::Internal("IN (tuple) used outside a tuple context");
        }
        // Batch-backed ambient rows become a shared-column selection of
        // one — the dominant dependent-plan case copies nothing.
        return Emit(sink, ambient.ToBatch());
      }
      case OpKind::kMapFromItem: {
        XQTP_ASSIGN_OR_RETURN(Sequence items,
                              EvalItem(*op.inputs[0], ambient, nullptr));
        const Op& dep = *op.dep;
        // The normalizer's MapFromItem dependents are almost always the
        // identity (IN as item): build the column straight from the
        // input items without a per-item plan walk.
        const bool identity =
            dep.kind == OpKind::kInputItem &&
            !(opts_.check_inferred_props && dep.props.Any());
        const size_t target =
            static_cast<size_t>(std::max(1, opts_.tuple_batch_rows));
        for (size_t begin = 0; begin < items.size(); begin += target) {
          const size_t end = std::min(items.size(), begin + target);
          TupleColumn col;
          col.field = op.field;
          col.values.reserve(end - begin);
          for (size_t i = begin; i < end; ++i) {
            if (identity) {
              col.values.push_back(Sequence{items[i]});
            } else {
              XQTP_ASSIGN_OR_RETURN(Sequence v,
                                    EvalItem(dep, ambient, &items[i]));
              col.values.push_back(std::move(v));
            }
          }
          TupleBatch b(end - begin);
          b.AddOwnedColumn(std::move(col));
          CountTuplesMaterialized(static_cast<int64_t>(end - begin));
          XQTP_RETURN_NOT_OK(Emit(sink, std::move(b)));
        }
        return Status::OK();
      }
      case OpKind::kSelect: {
        return EvalTupleBatches(
            *op.inputs[0], ambient, [&](TupleBatch&& in) -> Status {
              std::vector<uint32_t> keep;
              keep.reserve(in.rows());
              for (size_t i = 0; i < in.rows(); ++i) {
                XQTP_ASSIGN_OR_RETURN(
                    Sequence pred,
                    EvalItem(*op.dep, RowView(&in, i), nullptr));
                XQTP_ASSIGN_OR_RETURN(bool k,
                                      xdm::EffectiveBooleanValue(pred));
                if (k) keep.push_back(static_cast<uint32_t>(i));
              }
              if (keep.empty()) return Status::OK();
              // All rows kept: forward the batch itself. Otherwise yield
              // a selection view — columns shared, zero sequences copied.
              if (keep.size() == in.rows()) return Emit(sink, std::move(in));
              return Emit(sink, in.SelectRows(keep));
            });
      }
      case OpKind::kTupleTreePattern: {
        if (par_ != nullptr) {
          // The wide-input morselization decision needs the total row
          // count, so the pattern is a pipeline breaker when a parallel
          // context exists — exactly like row mode, which materialized
          // its whole input too. Shared columns make the Append cheap.
          TupleBatch all;
          XQTP_RETURN_NOT_OK(EvalTupleBatches(
              *op.inputs[0], ambient, [&](TupleBatch&& b) -> Status {
                all.Append(std::move(b));
                return Status::OK();
              }));
          if (all.rows() >= static_cast<size_t>(par_->min_fanout)) {
            XQTP_ASSIGN_OR_RETURN(
                TupleBatch out,
                EvalPatternTuplesParallel(op.tp, all, opts_.algo, *par_));
            return Emit(sink, std::move(out));
          }
          return EvalPatternBatch(op, all, sink);
        }
        // No parallel context: stream batch-in, batch-out.
        return EvalTupleBatches(
            *op.inputs[0], ambient, [&](TupleBatch&& in) -> Status {
              return EvalPatternBatch(op, in, sink);
            });
      }
      default:
        return Status::Internal("item plan evaluated in tuple context");
    }
  }

  /// Sequential TupleTreePattern kernel over one input batch: the
  /// context field is resolved once per batch, each row's bindings land
  /// in a PatternBatchBuilder (single-row inputs broadcast their
  /// unmodified fields — zero replication for the dominant
  /// root-in-one-tuple plan).
  Status EvalPatternBatch(const Op& op, const TupleBatch& in,
                          const BatchSink& sink) {
    if (in.rows() == 0) return Status::OK();
    const TupleBatch::BoundColumn* ctx_col = in.Find(op.tp.input_field);
    if (ctx_col == nullptr) {
      return Status::Internal(
          "TupleTreePattern input tuple lacks the context field");
    }
    PatternBatchBuilder builder(in);
    ScopedMemoryCharge mem;
    for (size_t i = 0; i < in.rows(); ++i) {
      XQTP_ASSIGN_OR_RETURN(
          std::vector<BindingRow> rows,
          EvalPattern(op.tp, in.Value(*ctx_col, i), opts_.algo, par_.get()));
      XQTP_RETURN_NOT_OK(
          mem.Grow(static_cast<int64_t>(rows.size() * sizeof(BindingRow))));
      for (const BindingRow& row : rows) builder.Add(i, row);
    }
    if (builder.rows() == 0) return Status::OK();
    return Emit(sink, builder.Finish());
  }

  // ------------------------------------------------------------------
  // Row-at-a-time reference path (TupleExecMode::kRow). Kept verbatim as
  // the differential baseline for the cross-check oracle and bench_batch;
  // every whole-TupleSeq materialization below is intentional.

  Result<Sequence> MapToItemRow(const Op& op, RowView tuple) {
    // Recover the native Tuple (row mode never builds batches, so the
    // view is Tuple-backed or invalid — Materialize is a safety net).
    Tuple scratch;
    const Tuple* ambient = nullptr;
    if (tuple.valid()) {
      ambient = tuple.AsTuple();
      if (ambient == nullptr) {
        scratch = tuple.Materialize();
        ambient = &scratch;
      }
    }
    // lint:allow(tupleseq-materialization, reason=kRow reference path)
    XQTP_ASSIGN_OR_RETURN(TupleSeq tuples,
                          EvalTuplesRow(*op.inputs[0], ambient));
    Sequence out;
    ScopedMemoryCharge mem;
    for (const Tuple& t : tuples) {
      XQTP_ASSIGN_OR_RETURN(Sequence part, EvalItem(*op.dep, &t, nullptr));
      XQTP_RETURN_NOT_OK(mem.Grow(ApproxBytes(part)));
      out.insert(out.end(), part.begin(), part.end());
    }
    return out;
  }

  /// Evaluates a tuple plan by materializing every intermediate tuple
  /// sequence. `ambient` is the enclosing tuple for plans rooted at IN.
  // lint:allow(tupleseq-materialization, reason=kRow reference path)
  Result<TupleSeq> EvalTuplesRow(const Op& op, const Tuple* ambient) {
    switch (op.kind) {
      case OpKind::kInputTuple: {
        if (ambient == nullptr) {
          return Status::Internal("IN (tuple) used outside a tuple context");
        }
        // lint:allow(tupleseq-materialization, reason=kRow reference path)
        return TupleSeq{*ambient};
      }
      case OpKind::kMapFromItem: {
        XQTP_ASSIGN_OR_RETURN(Sequence items,
                              EvalItem(*op.inputs[0], ambient, nullptr));
        // lint:allow(tupleseq-materialization, reason=kRow reference path)
        TupleSeq out;
        out.reserve(items.size());
        ScopedMemoryCharge mem;
        for (const Item& it : items) {
          Tuple t;
          XQTP_ASSIGN_OR_RETURN(Sequence value,
                                EvalItem(*op.dep, ambient, &it));
          t.Set(op.field, std::move(value));
          XQTP_RETURN_NOT_OK(mem.Grow(ApproxBytes(t)));
          CountTuplesMaterialized(1);
          out.push_back(std::move(t));
        }
        return out;
      }
      case OpKind::kSelect: {
        // lint:allow(tupleseq-materialization, reason=kRow reference path)
        XQTP_ASSIGN_OR_RETURN(TupleSeq in, EvalTuplesRow(*op.inputs[0], ambient));
        // lint:allow(tupleseq-materialization, reason=kRow reference path)
        TupleSeq out;
        ScopedMemoryCharge mem;
        for (Tuple& t : in) {
          XQTP_ASSIGN_OR_RETURN(Sequence pred, EvalItem(*op.dep, &t, nullptr));
          XQTP_ASSIGN_OR_RETURN(bool keep, xdm::EffectiveBooleanValue(pred));
          if (!keep) continue;
          XQTP_RETURN_NOT_OK(mem.Grow(ApproxBytes(t)));
          out.push_back(std::move(t));
        }
        return out;
      }
      case OpKind::kTupleTreePattern: {
        // lint:allow(tupleseq-materialization, reason=kRow reference path)
        XQTP_ASSIGN_OR_RETURN(TupleSeq in, EvalTuplesRow(*op.inputs[0], ambient));
        // Wide tuple inputs morselize at the tuple level; the common
        // optimized plan (one tuple holding the document root) instead
        // morselizes inside EvalPattern via the root fan-out strategy.
        if (par_ != nullptr &&
            in.size() >= static_cast<size_t>(par_->min_fanout)) {
          // The morsel driver is batch-native now; bridge in and out.
          TupleBatch inb = TupleBatch::FromTuples(in);
          XQTP_ASSIGN_OR_RETURN(
              TupleBatch outb,
              EvalPatternTuplesParallel(op.tp, inb, opts_.algo, *par_));
          return outb.ToTuples();
        }
        // lint:allow(tupleseq-materialization, reason=kRow reference path)
        TupleSeq out;
        ScopedMemoryCharge mem;
        for (const Tuple& t : in) {
          const Sequence* ctx = t.Get(op.tp.input_field);
          if (ctx == nullptr) {
            return Status::Internal(
                "TupleTreePattern input tuple lacks the context field");
          }
          XQTP_ASSIGN_OR_RETURN(
              std::vector<BindingRow> rows,
              EvalPattern(op.tp, *ctx, opts_.algo, par_.get()));
          XQTP_RETURN_NOT_OK(mem.Grow(
              static_cast<int64_t>(rows.size() * sizeof(BindingRow))));
          for (const BindingRow& row : rows) {
            Tuple nt = t;
            for (const auto& [sym, node] : row.fields) {
              nt.Set(sym, Sequence{Item(node)});
            }
            CountTuplesMaterialized(1);
            out.push_back(std::move(nt));
          }
        }
        return out;
      }
      default:
        return Status::Internal("item plan evaluated in tuple context");
    }
  }

  const core::VarTable& vars_;
  const Bindings& bindings_;
  const EvalOptions& opts_;
  /// Stride counter for the operator-boundary governor check (see
  /// EvalItemInner); coordinating thread only.
  uint32_t governor_tick_ = 0;
  std::unordered_map<core::VarId, Sequence> scoped_;
  /// Parallel-evaluation parameters (null when opts_.threads resolves
  /// to 1) and the lazily-created per-query pool behind par_->pool.
  std::unique_ptr<ParallelContext> par_;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace

Result<Sequence> Evaluate(const Op& plan, const core::VarTable& vars,
                          const Bindings& bindings, const EvalOptions& opts) {
  XQTP_FAULT_POINT("exec.evaluate");
  if (!opts.HasGovernorLimits()) {
    Evaluator ev(vars, bindings, opts);
    return ev.Run(plan);
  }
  GovernorLimits limits;
  limits.deadline = opts.deadline;
  limits.memory_budget_bytes = opts.memory_budget_bytes;
  limits.cancel_token = opts.cancel_token;
  QueryGovernor governor(limits);
  ScopedGovernor install(&governor);
  Evaluator ev(vars, bindings, opts);
  Result<Sequence> res = ev.Run(plan);
  // Record the governor's telemetry whether the query completed or
  // tripped; worker-morsel checks land here too (the counters are the
  // shared governor's atomics).
  if (ExecStats* s = CurrentExecStats()) {
    s->governor_checks += governor.checks();
    if (governor.peak_bytes() > s->peak_memory_bytes) {
      s->peak_memory_bytes = governor.peak_bytes();
    }
  }
  return res;
}

}  // namespace xqtp::exec
