// Property-based tests: random documents crossed with randomly generated
// queries from the supported fragment. Invariants checked:
//  (1) every evaluation route (core interpreter / unoptimized plan /
//      optimized plan x {NL, SC, Twig}) returns the same sequence;
//  (2) path-expression results are in document order and duplicate-free;
//  (3) rewriting and optimization are deterministic.
#include <gtest/gtest.h>

#include <random>
#include <string>

#include "algebra/printer.h"
#include "engine/engine.h"
#include "workload/member_gen.h"
#include "xdm/sequence_ops.h"

namespace xqtp {
namespace {

/// Random query generator over the tree-pattern-friendly fragment plus
/// FLWOR wrappers, positional predicates and value comparisons.
class QueryGen {
 public:
  explicit QueryGen(uint64_t seed) : rng_(seed) {}

  std::string Gen() {
    std::string q = "$input";
    int steps = Rand(1, 4);
    for (int i = 0; i < steps; ++i) q += GenStep();
    if (Chance(0.3)) {
      // Wrap as FLWOR over a prefix.
      std::string inner = "$x";
      int more = Rand(0, 2);
      for (int i = 0; i < more; ++i) inner += GenStep();
      return "for $x in " + q + " return " + inner;
    }
    return q;
  }

 private:
  int Rand(int lo, int hi) {
    std::uniform_int_distribution<int> d(lo, hi);
    return d(rng_);
  }
  bool Chance(double p) {
    std::uniform_real_distribution<double> d(0, 1);
    return d(rng_) < p;
  }
  std::string Tag() {
    char buf[8];
    std::snprintf(buf, sizeof(buf), "t%02d", Rand(1, 8));
    return buf;
  }
  std::string GenStep() {
    std::string axis = Chance(0.5) ? "/" : "//";
    std::string step = axis + Tag();
    if (Chance(0.35)) {
      switch (Rand(0, 3)) {
        case 0:
          step += "[" + Tag() + "]";
          break;
        case 1:
          step += "[" + std::to_string(Rand(1, 3)) + "]";
          break;
        case 2:
          step += "[" + Tag() + "[" + Tag() + "]]";
          break;
        case 3:
          step += "[position() = " + std::to_string(Rand(1, 2)) + "]";
          break;
      }
    }
    return step;
  }
  std::mt19937_64 rng_;
};

class PropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(PropertyTest, AllRoutesAgreeOnRandomQueries) {
  uint64_t seed = static_cast<uint64_t>(GetParam());
  engine::Engine e;
  workload::MemberParams mp;
  mp.node_count = 3000;
  mp.max_depth = 6;
  mp.num_tags = 8;  // few tags -> same-name nesting is common
  mp.seed = seed;
  const xml::Document* d =
      e.AddDocument("m", workload::GenerateMember(mp, e.interner()));

  QueryGen gen(seed * 977 + 13);
  for (int i = 0; i < 25; ++i) {
    std::string q = gen.Gen();
    auto cq = e.Compile(q);
    ASSERT_TRUE(cq.ok()) << q << ": " << cq.status().ToString();
    engine::Engine::GlobalMap globals{{"input", {xdm::Item(d->root())}}};
    auto ref = e.Execute(*cq, globals, exec::PatternAlgo::kNLJoin,
                         engine::PlanChoice::kCoreInterp);
    ASSERT_TRUE(ref.ok()) << q << ": " << ref.status().ToString();
    for (auto pc : {engine::PlanChoice::kUnoptimized,
                    engine::PlanChoice::kOptimized}) {
      for (auto algo :
           {exec::PatternAlgo::kNLJoin, exec::PatternAlgo::kStaircase,
            exec::PatternAlgo::kTwig, exec::PatternAlgo::kStream,
                      exec::PatternAlgo::kTwigStack}) {
        auto res = e.Execute(*cq, globals, algo, pc);
        ASSERT_TRUE(res.ok()) << q << ": " << res.status().ToString();
        ASSERT_EQ(res->size(), ref->size())
            << q << "\nplan=" << static_cast<int>(pc) << " algo="
            << exec::PatternAlgoName(algo) << "\n"
            << e.Explain(*cq);
        for (size_t j = 0; j < res->size(); ++j) {
          ASSERT_TRUE((*res)[j] == (*ref)[j])
              << q << " item " << j << " plan=" << static_cast<int>(pc)
              << " algo=" << exec::PatternAlgoName(algo);
        }
      }
    }
  }
}

TEST_P(PropertyTest, PathResultsAreDistinctDocOrdered) {
  uint64_t seed = static_cast<uint64_t>(GetParam());
  engine::Engine e;
  workload::MemberParams mp;
  mp.node_count = 2000;
  mp.max_depth = 6;
  mp.num_tags = 8;
  mp.seed = seed + 1000;
  const xml::Document* d =
      e.AddDocument("m", workload::GenerateMember(mp, e.interner()));

  QueryGen gen(seed * 31 + 7);
  for (int i = 0; i < 25; ++i) {
    std::string q = gen.Gen();
    if (q.rfind("for ", 0) == 0) continue;  // FLWOR results may be unordered
    auto res = e.Run(q, *d, exec::PatternAlgo::kTwig);
    ASSERT_TRUE(res.ok()) << q;
    EXPECT_TRUE(xdm::IsDistinctDocOrdered(*res) || res->empty()) << q;
  }
}

TEST_P(PropertyTest, CompilationIsDeterministic) {
  uint64_t seed = static_cast<uint64_t>(GetParam());
  QueryGen gen(seed * 131 + 1);
  for (int i = 0; i < 10; ++i) {
    std::string q = gen.Gen();
    engine::Engine e1, e2;
    auto c1 = e1.Compile(q);
    auto c2 = e2.Compile(q);
    ASSERT_TRUE(c1.ok() && c2.ok()) << q;
    EXPECT_EQ(
        algebra::ToString(c1->optimized(), c1->vars(), *e1.interner()),
        algebra::ToString(c2->optimized(), c2->vars(), *e2.interner()))
        << q;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertyTest, ::testing::Range(1, 9));

}  // namespace
}  // namespace xqtp
