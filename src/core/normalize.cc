#include "core/normalize.h"

#include <unordered_map>

#include "common/fault_injection.h"

namespace xqtp::core {

namespace {

/// Norm recurses once per surface-expression nesting level (and the
/// helpers add a few frames each); a machine-generated deeply nested
/// query must fail cleanly instead of overflowing the C++ stack. The
/// cap is sized for sanitizer builds, whose redzone-fattened frames
/// overflow an 8 MiB stack at roughly double this depth.
constexpr int kMaxNormalizeDepth = 1000;

using xquery::Expr;
using xquery::ExprKind;
using xquery::FlworClause;

/// Normalization environment: surface-variable scope plus the focus
/// (context item, position, last) as Core variables.
struct Env {
  std::unordered_map<std::string, VarId> scope;
  VarId dot = kNoVar;
  VarId position = kNoVar;
  VarId last = kNoVar;
};

/// Conservative check used for the `//` simplification: returns true if the
/// predicate can never evaluate to a numeric value (so it is never a
/// positional predicate) and does not reference position()/last().
bool DefinitelyNonPositional(const Expr& pred) {
  switch (pred.kind) {
    case ExprKind::kStep:
    case ExprKind::kPath:
    case ExprKind::kRoot:
    case ExprKind::kContextItem:
      return true;
    case ExprKind::kFilter:
      return DefinitelyNonPositional(*pred.child0);
    case ExprKind::kCompare: {
      // A comparison is boolean, so non-positional — but its operands may
      // reference position()/last(), which must bind to the enclosing step.
      // That is still fine for the // simplification as long as the
      // operands don't use the context position; check recursively.
      auto no_pos_fn = [](const Expr& e, auto&& self) -> bool {
        if (e.kind == ExprKind::kFnCall &&
            (e.fn_name == "position" || e.fn_name == "fn:position" ||
             e.fn_name == "last" || e.fn_name == "fn:last")) {
          return false;
        }
        auto walk = [&](const xquery::ExprPtr& p) {
          return p == nullptr || self(*p, self);
        };
        if (!walk(e.child0) || !walk(e.child1) || !walk(e.ret)) return false;
        for (const auto& c : e.predicates) {
          if (!self(*c, self)) return false;
        }
        for (const auto& c : e.args) {
          if (!self(*c, self)) return false;
        }
        for (const auto& c : e.items) {
          if (!self(*c, self)) return false;
        }
        for (const auto& cl : e.clauses) {
          if (cl.expr && !self(*cl.expr, self)) return false;
        }
        return true;
      };
      return no_pos_fn(pred, no_pos_fn);
    }
    case ExprKind::kAnd:
    case ExprKind::kOr:
      return DefinitelyNonPositional(*pred.child0) &&
             DefinitelyNonPositional(*pred.child1);
    case ExprKind::kFnCall:
      return pred.fn_name == "fn:boolean" || pred.fn_name == "boolean" ||
             pred.fn_name == "fn:not" || pred.fn_name == "not" ||
             pred.fn_name == "fn:exists" || pred.fn_name == "exists" ||
             pred.fn_name == "fn:empty" || pred.fn_name == "empty";
    case ExprKind::kLiteral:
      return pred.literal.IsString() || pred.literal.IsBoolean();
    default:
      return false;  // conservative: variables, FLWOR, sequences
  }
}

class Normalizer {
 public:
  explicit Normalizer(VarTable* vars) : vars_(vars) {}

  Result<CoreExprPtr> Run(const Expr& e) {
    Env env;
    return Norm(e, env);
  }

 private:
  /// Builds the focus-introducing scaffold shared by the / and [] rules:
  ///   let $seq := ddo(input) return
  ///   let $last := fn:count($seq) return
  ///   for $dot at $position in $seq (where ...)? return body
  /// `make_where` and `make_body` receive the inner environment.
  template <typename WhereFn, typename BodyFn>
  Result<CoreExprPtr> FocusLoop(CoreExprPtr input, const Env& outer,
                                WhereFn make_where, BodyFn make_body) {
    VarId seq = vars_->Fresh("seq");
    VarId last = vars_->Fresh("last");
    VarId dot = vars_->Fresh("dot");
    VarId position = vars_->Fresh("position");
    Env inner = outer;
    inner.dot = dot;
    inner.position = position;
    inner.last = last;
    XQTP_ASSIGN_OR_RETURN(CoreExprPtr where, make_where(inner));
    XQTP_ASSIGN_OR_RETURN(CoreExprPtr body, make_body(inner));
    CoreExprPtr loop = MakeFor(dot, position, MakeVar(seq), std::move(where),
                               std::move(body));
    CoreExprPtr with_last = MakeLet(
        last, MakeFnCall(CoreFn::kCount, VecOf(MakeVar(seq))),
        std::move(loop));
    return MakeLet(seq, MakeDdo(std::move(input)), std::move(with_last));
  }

  static std::vector<CoreExprPtr> VecOf(CoreExprPtr a) {
    std::vector<CoreExprPtr> v;
    v.push_back(std::move(a));
    return v;
  }
  static std::vector<CoreExprPtr> VecOf(CoreExprPtr a, CoreExprPtr b) {
    std::vector<CoreExprPtr> v;
    v.push_back(std::move(a));
    v.push_back(std::move(b));
    return v;
  }

  /// [E1/E2] — the paper's rule, with the surrounding ddo.
  Result<CoreExprPtr> NormPath(const Expr& e1, const Expr& e2,
                               const Env& env) {
    XQTP_ASSIGN_OR_RETURN(CoreExprPtr input, Norm(e1, env));
    XQTP_ASSIGN_OR_RETURN(
        CoreExprPtr loop,
        FocusLoop(
            std::move(input), env,
            [](const Env&) -> Result<CoreExprPtr> {
              return CoreExprPtr(nullptr);
            },
            [&](const Env& inner) { return Norm(e2, inner); }));
    return MakeDdo(std::move(loop));
  }

  /// [E [P]] — predicate rule with the positional typeswitch.
  Result<CoreExprPtr> NormPredicate(CoreExprPtr input, const Expr& pred,
                                    const Env& env) {
    return FocusLoop(
        std::move(input), env,
        [&](const Env& inner) -> Result<CoreExprPtr> {
          XQTP_ASSIGN_OR_RETURN(CoreExprPtr p, Norm(pred, inner));
          VarId v_num = vars_->Fresh("v");
          VarId v_def = vars_->Fresh("v");
          CoreExprPtr numeric_branch = MakeCompare(
              xdm::CompareOp::kEq, MakeVar(inner.position), MakeVar(v_num));
          CoreExprPtr default_branch =
              MakeFnCall(CoreFn::kBoolean, VecOf(MakeVar(v_def)));
          return MakeTypeswitch(std::move(p), v_num,
                                std::move(numeric_branch), v_def,
                                std::move(default_branch));
        },
        [](const Env& inner) -> Result<CoreExprPtr> {
          return MakeVar(inner.dot);
        });
  }

  /// Normalizes a step's predicates (left to right) around `base`.
  Result<CoreExprPtr> NormPredicates(CoreExprPtr base,
                                     const std::vector<xquery::ExprPtr>& preds,
                                     const Env& env) {
    CoreExprPtr cur = std::move(base);
    for (const xquery::ExprPtr& p : preds) {
      XQTP_ASSIGN_OR_RETURN(cur, NormPredicate(std::move(cur), *p, env));
    }
    return cur;
  }

  Result<CoreExprPtr> NormFlwor(const Expr& e, const Env& env) {
    return NormClauses(e.clauses, 0, *e.ret, env);
  }

  Result<CoreExprPtr> NormClauses(const std::vector<FlworClause>& clauses,
                                  size_t i, const Expr& ret, const Env& env) {
    if (i == clauses.size()) return Norm(ret, env);
    const FlworClause& c = clauses[i];
    switch (c.kind) {
      case FlworClause::Kind::kFor: {
        XQTP_ASSIGN_OR_RETURN(CoreExprPtr seq, Norm(*c.expr, env));
        VarId v = vars_->Fresh(c.var);
        VarId pv = c.pos_var.empty() ? kNoVar : vars_->Fresh(c.pos_var);
        Env inner = env;
        inner.scope[c.var] = v;
        if (pv != kNoVar) inner.scope[c.pos_var] = pv;
        // A where clause directly following binds to this for.
        CoreExprPtr where;
        size_t next = i + 1;
        if (next < clauses.size() &&
            clauses[next].kind == FlworClause::Kind::kWhere &&
            next + 1 == clauses.size()) {
          XQTP_ASSIGN_OR_RETURN(CoreExprPtr cond,
                                Norm(*clauses[next].expr, inner));
          where = MakeFnCall(CoreFn::kBoolean, VecOf(std::move(cond)));
          ++next;
        }
        XQTP_ASSIGN_OR_RETURN(CoreExprPtr body,
                              NormClauses(clauses, next, ret, inner));
        return MakeFor(v, pv, std::move(seq), std::move(where),
                       std::move(body));
      }
      case FlworClause::Kind::kLet: {
        XQTP_ASSIGN_OR_RETURN(CoreExprPtr binding, Norm(*c.expr, env));
        VarId v = vars_->Fresh(c.var);
        Env inner = env;
        inner.scope[c.var] = v;
        XQTP_ASSIGN_OR_RETURN(CoreExprPtr body,
                              NormClauses(clauses, i + 1, ret, inner));
        return MakeLet(v, std::move(binding), std::move(body));
      }
      case FlworClause::Kind::kWhere: {
        // A where not folded into a for: conditional expression.
        XQTP_ASSIGN_OR_RETURN(CoreExprPtr cond, Norm(*c.expr, env));
        XQTP_ASSIGN_OR_RETURN(CoreExprPtr body,
                              NormClauses(clauses, i + 1, ret, env));
        return MakeIf(MakeFnCall(CoreFn::kBoolean, VecOf(std::move(cond))),
                      std::move(body), MakeEmpty());
      }
    }
    return Status::Internal("unreachable FLWOR clause kind");
  }

  Result<CoreExprPtr> NormFnCall(const Expr& e, const Env& env) {
    std::string name = e.fn_name;
    if (name.rfind("fn:", 0) == 0) name = name.substr(3);
    if (name == "position") {
      if (env.position == kNoVar) {
        return Status::InvalidArgument("position() used without a focus");
      }
      return MakeVar(env.position);
    }
    if (name == "last") {
      if (env.last == kNoVar) {
        return Status::InvalidArgument("last() used without a focus");
      }
      return MakeVar(env.last);
    }
    if (name == "true") return MakeLiteral(xdm::Item(true));
    if (name == "false") return MakeLiteral(xdm::Item(false));
    CoreFn fn;
    if (name == "boolean") {
      fn = CoreFn::kBoolean;
    } else if (name == "count") {
      fn = CoreFn::kCount;
    } else if (name == "not") {
      fn = CoreFn::kNot;
    } else if (name == "empty") {
      fn = CoreFn::kEmpty;
    } else if (name == "exists") {
      fn = CoreFn::kExists;
    } else if (name == "root") {
      fn = CoreFn::kRoot;
    } else if (name == "data") {
      fn = CoreFn::kData;
    } else if (name == "string") {
      fn = CoreFn::kString;
    } else if (name == "number") {
      fn = CoreFn::kNumber;
    } else if (name == "string-length") {
      fn = CoreFn::kStringLength;
    } else if (name == "concat") {
      fn = CoreFn::kConcat;
    } else if (name == "contains") {
      fn = CoreFn::kContains;
    } else if (name == "starts-with") {
      fn = CoreFn::kStartsWith;
    } else if (name == "sum") {
      fn = CoreFn::kSum;
    } else {
      return Status::NotImplemented("function " + e.fn_name +
                                    " is outside the supported fragment");
    }
    int arity = CoreFnArity(fn);
    if (arity >= 0 ? static_cast<int>(e.args.size()) != arity
                   : e.args.size() < 2) {
      return Status::InvalidArgument(
          "wrong number of arguments for " + e.fn_name + " (got " +
          std::to_string(e.args.size()) + ")");
    }
    std::vector<CoreExprPtr> args;
    for (const xquery::ExprPtr& a : e.args) {
      XQTP_ASSIGN_OR_RETURN(CoreExprPtr ca, Norm(*a, env));
      args.push_back(std::move(ca));
    }
    return MakeFnCall(fn, std::move(args));
  }

  Result<CoreExprPtr> Norm(const Expr& e, const Env& env) {
    XQTP_FAULT_POINT("core.normalize");
    if (++depth_ > kMaxNormalizeDepth) {
      return Status::ResourceExhausted(
          "query expression nesting depth " + std::to_string(depth_) +
          " exceeds the normalizer limit of " +
          std::to_string(kMaxNormalizeDepth));
    }
    struct DepthGuard {
      int* depth;
      ~DepthGuard() { --*depth; }
    } guard{&depth_};
    return NormInner(e, env);
  }

  Result<CoreExprPtr> NormInner(const Expr& e, const Env& env) {
    switch (e.kind) {
      case ExprKind::kVarRef: {
        auto it = env.scope.find(e.var_name);
        if (it != env.scope.end()) return MakeVar(it->second);
        // Free variable: a query global, bound by the engine at run time.
        return MakeVar(vars_->Global(e.var_name));
      }
      case ExprKind::kLiteral:
        return MakeLiteral(e.literal);
      case ExprKind::kContextItem: {
        VarId dot = env.dot;
        if (dot == kNoVar) dot = vars_->Global(".");
        return MakeVar(dot);
      }
      case ExprKind::kRoot: {
        VarId dot = env.dot;
        if (dot == kNoVar) dot = vars_->Global(".");
        return MakeFnCall(CoreFn::kRoot, VecOf(MakeVar(dot)));
      }
      case ExprKind::kPath: {
        const Expr& e1 = *e.child0;
        const Expr& e2 = *e.child1;
        if (!e.double_slash) return NormPath(e1, e2, env);
        // E1//E2. Footnote simplification when safe:
        //   E1//name[preds] == E1/descendant::name[preds]
        if (e2.kind == ExprKind::kStep && e2.axis == Axis::kChild) {
          bool safe = true;
          for (const xquery::ExprPtr& p : e2.predicates) {
            if (!DefinitelyNonPositional(*p)) {
              safe = false;
              break;
            }
          }
          if (safe) {
            return NormPathStepWithPreds(e1, Axis::kDescendant, e2.test,
                                         e2.predicates, env);
          }
        }
        // General expansion: E1/descendant-or-self::node()/E2.
        Expr dos(ExprKind::kStep);
        dos.axis = Axis::kDescendantOrSelf;
        dos.test = NodeTest::AnyNode();
        // [ (E1/dos::node()) / E2 ]: build the outer / over a synthetic
        // inner path. Normalize inner first.
        XQTP_ASSIGN_OR_RETURN(CoreExprPtr inner_done, NormPath(e1, dos, env));
        return NormPathPrenormalized(std::move(inner_done), e2, env);
      }
      case ExprKind::kStep: {
        if (env.dot == kNoVar) {
          return Status::InvalidArgument(
              "path step used without a context item");
        }
        CoreExprPtr base = MakeStep(env.dot, e.axis, e.test);
        if (e.predicates.empty()) return base;
        return NormPredicates(std::move(base), e.predicates, env);
      }
      case ExprKind::kFilter: {
        XQTP_ASSIGN_OR_RETURN(CoreExprPtr base, Norm(*e.child0, env));
        return NormPredicates(std::move(base), e.predicates, env);
      }
      case ExprKind::kFlwor:
        return NormFlwor(e, env);
      case ExprKind::kFnCall:
        return NormFnCall(e, env);
      case ExprKind::kCompare: {
        XQTP_ASSIGN_OR_RETURN(CoreExprPtr l, Norm(*e.child0, env));
        XQTP_ASSIGN_OR_RETURN(CoreExprPtr r, Norm(*e.child1, env));
        return MakeCompare(e.cmp_op, std::move(l), std::move(r));
      }
      case ExprKind::kArith: {
        XQTP_ASSIGN_OR_RETURN(CoreExprPtr l, Norm(*e.child0, env));
        XQTP_ASSIGN_OR_RETURN(CoreExprPtr r, Norm(*e.child1, env));
        return MakeArith(e.arith_op, std::move(l), std::move(r));
      }
      case ExprKind::kUnion: {
        // E1 | E2 == ddo((E1, E2)).
        XQTP_ASSIGN_OR_RETURN(CoreExprPtr l, Norm(*e.child0, env));
        XQTP_ASSIGN_OR_RETURN(CoreExprPtr r, Norm(*e.child1, env));
        std::vector<CoreExprPtr> parts;
        parts.push_back(std::move(l));
        parts.push_back(std::move(r));
        auto seq = std::make_unique<CoreExpr>(CoreKind::kSequence);
        seq->children = std::move(parts);
        return MakeDdo(std::move(seq));
      }
      case ExprKind::kIfExpr: {
        XQTP_ASSIGN_OR_RETURN(CoreExprPtr c, Norm(*e.child0, env));
        XQTP_ASSIGN_OR_RETURN(CoreExprPtr t, Norm(*e.child1, env));
        XQTP_ASSIGN_OR_RETURN(CoreExprPtr f, Norm(*e.ret, env));
        return MakeIf(std::move(c), std::move(t), std::move(f));
      }
      case ExprKind::kQuantified: {
        // some $x in E satisfies P  == fn:exists(for $x in E where P
        //                                        return $x)
        // every $x in E satisfies P == fn:empty(for $x in E where
        //                                       fn:not(P) return $x)
        XQTP_ASSIGN_OR_RETURN(CoreExprPtr seq, Norm(*e.child0, env));
        VarId v = vars_->Fresh(e.var_name);
        Env inner = env;
        inner.scope[e.var_name] = v;
        XQTP_ASSIGN_OR_RETURN(CoreExprPtr cond, Norm(*e.child1, inner));
        if (e.is_every) {
          cond = MakeFnCall(CoreFn::kNot, VecOf(std::move(cond)));
        }
        CoreExprPtr loop =
            MakeFor(v, kNoVar, std::move(seq), std::move(cond), MakeVar(v));
        return MakeFnCall(e.is_every ? CoreFn::kEmpty : CoreFn::kExists,
                          VecOf(std::move(loop)));
      }
      case ExprKind::kAnd: {
        XQTP_ASSIGN_OR_RETURN(CoreExprPtr l, Norm(*e.child0, env));
        XQTP_ASSIGN_OR_RETURN(CoreExprPtr r, Norm(*e.child1, env));
        return MakeAnd(std::move(l), std::move(r));
      }
      case ExprKind::kOr: {
        XQTP_ASSIGN_OR_RETURN(CoreExprPtr l, Norm(*e.child0, env));
        XQTP_ASSIGN_OR_RETURN(CoreExprPtr r, Norm(*e.child1, env));
        return MakeOr(std::move(l), std::move(r));
      }
      case ExprKind::kSequence: {
        std::vector<CoreExprPtr> items;
        for (const xquery::ExprPtr& it : e.items) {
          XQTP_ASSIGN_OR_RETURN(CoreExprPtr ci, Norm(*it, env));
          items.push_back(std::move(ci));
        }
        return MakeSequence(std::move(items));
      }
    }
    return Status::Internal("unreachable surface expression kind");
  }

  /// [E1/axis::test[preds]] with E1 already given as surface syntax; used
  /// by the // simplification to rewrite the axis without mutating the AST.
  Result<CoreExprPtr> NormPathStepWithPreds(
      const Expr& e1, Axis axis, const NodeTest& test,
      const std::vector<xquery::ExprPtr>& preds, const Env& env) {
    XQTP_ASSIGN_OR_RETURN(CoreExprPtr input, Norm(e1, env));
    XQTP_ASSIGN_OR_RETURN(
        CoreExprPtr loop,
        FocusLoop(
            std::move(input), env,
            [](const Env&) -> Result<CoreExprPtr> {
              return CoreExprPtr(nullptr);
            },
            [&](const Env& inner) -> Result<CoreExprPtr> {
              CoreExprPtr base = MakeStep(inner.dot, axis, test);
              if (preds.empty()) return base;
              return NormPredicates(std::move(base), preds, inner);
            }));
    return MakeDdo(std::move(loop));
  }

  /// [inner/E2] where `inner` is already normalized Core.
  Result<CoreExprPtr> NormPathPrenormalized(CoreExprPtr inner, const Expr& e2,
                                            const Env& env) {
    XQTP_ASSIGN_OR_RETURN(
        CoreExprPtr loop,
        FocusLoop(
            std::move(inner), env,
            [](const Env&) -> Result<CoreExprPtr> {
              return CoreExprPtr(nullptr);
            },
            [&](const Env& in) { return Norm(e2, in); }));
    return MakeDdo(std::move(loop));
  }

  VarTable* vars_;
  int depth_ = 0;  ///< current Norm recursion depth (kMaxNormalizeDepth cap)
};

}  // namespace

Result<CoreExprPtr> Normalize(const xquery::Expr& e, VarTable* vars) {
  Normalizer n(vars);
  return n.Run(e);
}

}  // namespace xqtp::core
