#include "xquery/parser.h"

#include <utility>

#include "xquery/lexer.h"

namespace xqtp::xquery {

namespace {

ExprPtr MakeExpr(ExprKind k) { return std::make_unique<Expr>(k); }

class Parser {
 public:
  Parser(std::vector<Token> tokens, StringInterner* interner)
      : tokens_(std::move(tokens)), interner_(interner) {}

  Result<ExprPtr> Run() {
    XQTP_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    if (Peek().kind != TokenKind::kEof) {
      return Err("unexpected token after end of query");
    }
    return e;
  }

 private:
  const Token& Peek(size_t off = 0) const {
    size_t i = pos_ + off;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Next() { return tokens_[pos_++]; }
  bool Accept(TokenKind k) {
    if (Peek().kind == k) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool AcceptName(std::string_view name) {
    if (Peek().kind == TokenKind::kName && Peek().text == name) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool PeekName(std::string_view name, size_t off = 0) const {
    return Peek(off).kind == TokenKind::kName && Peek(off).text == name;
  }
  Status Err(const std::string& msg) const {
    return Status::InvalidArgument("XQuery parse error at line " +
                                   std::to_string(Peek().line) + ": " + msg);
  }
  Status Expect(TokenKind k, const std::string& what) {
    if (!Accept(k)) return Err("expected " + what);
    return Status::OK();
  }

  // Expr := FLWORExpr | SequenceExpr
  Result<ExprPtr> ParseExpr() {
    XQTP_ASSIGN_OR_RETURN(ExprPtr first, ParseSingleExpr());
    if (Peek().kind != TokenKind::kComma) return first;
    auto seq = MakeExpr(ExprKind::kSequence);
    seq->items.push_back(std::move(first));
    while (Accept(TokenKind::kComma)) {
      XQTP_ASSIGN_OR_RETURN(ExprPtr e, ParseSingleExpr());
      seq->items.push_back(std::move(e));
    }
    return seq;
  }

  Result<ExprPtr> ParseSingleExpr() {
    if (PeekName("for") || PeekName("let")) return ParseFlwor();
    if (PeekName("if") && Peek(1).kind == TokenKind::kLParen) {
      return ParseIf();
    }
    if ((PeekName("some") || PeekName("every")) &&
        Peek(1).kind == TokenKind::kVariable) {
      return ParseQuantified();
    }
    return ParseOr();
  }

  // "if" "(" Expr ")" "then" ExprSingle "else" ExprSingle
  Result<ExprPtr> ParseIf() {
    ++pos_;  // "if"
    XQTP_RETURN_NOT_OK(Expect(TokenKind::kLParen, "'('"));
    auto e = MakeExpr(ExprKind::kIfExpr);
    XQTP_ASSIGN_OR_RETURN(e->child0, ParseExpr());
    XQTP_RETURN_NOT_OK(Expect(TokenKind::kRParen, "')'"));
    if (!AcceptName("then")) return Err("expected 'then'");
    XQTP_ASSIGN_OR_RETURN(e->child1, ParseSingleExpr());
    if (!AcceptName("else")) return Err("expected 'else'");
    XQTP_ASSIGN_OR_RETURN(e->ret, ParseSingleExpr());
    return e;
  }

  // ("some" | "every") "$"v "in" ExprSingle ("," "$"v "in" ...)*
  // "satisfies" ExprSingle — multiple bindings nest.
  Result<ExprPtr> ParseQuantified() {
    bool is_every = Peek().text == "every";
    ++pos_;
    struct Binding {
      std::string var;
      ExprPtr seq;
    };
    std::vector<Binding> bindings;
    for (;;) {
      if (Peek().kind != TokenKind::kVariable) {
        return Err("expected variable in quantified expression");
      }
      Binding b;
      b.var = Next().text;
      if (!AcceptName("in")) return Err("expected 'in'");
      XQTP_ASSIGN_OR_RETURN(b.seq, ParseSingleExpr());
      bindings.push_back(std::move(b));
      if (!Accept(TokenKind::kComma)) break;
    }
    if (!AcceptName("satisfies")) return Err("expected 'satisfies'");
    XQTP_ASSIGN_OR_RETURN(ExprPtr cond, ParseSingleExpr());
    for (auto it = bindings.rbegin(); it != bindings.rend(); ++it) {
      auto q = MakeExpr(ExprKind::kQuantified);
      q->is_every = is_every;
      q->var_name = std::move(it->var);
      q->child0 = std::move(it->seq);
      q->child1 = std::move(cond);
      cond = std::move(q);
    }
    return cond;
  }

  // FLWOR: (ForClause | LetClause)+ ("where" Expr)? "return" Expr
  Result<ExprPtr> ParseFlwor() {
    auto flwor = MakeExpr(ExprKind::kFlwor);
    for (;;) {
      if (AcceptName("for")) {
        XQTP_RETURN_NOT_OK(ParseForBindings(&flwor->clauses));
      } else if (AcceptName("let")) {
        XQTP_RETURN_NOT_OK(ParseLetBindings(&flwor->clauses));
      } else {
        break;
      }
    }
    if (flwor->clauses.empty()) return Err("expected 'for' or 'let'");
    if (AcceptName("where")) {
      FlworClause w;
      w.kind = FlworClause::Kind::kWhere;
      XQTP_ASSIGN_OR_RETURN(w.expr, ParseSingleExpr());
      flwor->clauses.push_back(std::move(w));
    }
    if (!AcceptName("return")) return Err("expected 'return'");
    XQTP_ASSIGN_OR_RETURN(flwor->ret, ParseSingleExpr());
    return flwor;
  }

  Status ParseForBindings(std::vector<FlworClause>* out) {
    for (;;) {
      FlworClause c;
      c.kind = FlworClause::Kind::kFor;
      if (Peek().kind != TokenKind::kVariable) {
        return Err("expected variable in for clause");
      }
      c.var = Next().text;
      if (AcceptName("at")) {
        if (Peek().kind != TokenKind::kVariable) {
          return Err("expected positional variable after 'at'");
        }
        c.pos_var = Next().text;
      }
      if (!AcceptName("in")) return Err("expected 'in'");
      XQTP_ASSIGN_OR_RETURN(c.expr, ParseSingleExpr());
      out->push_back(std::move(c));
      if (!Accept(TokenKind::kComma)) return Status::OK();
    }
  }

  Status ParseLetBindings(std::vector<FlworClause>* out) {
    for (;;) {
      FlworClause c;
      c.kind = FlworClause::Kind::kLet;
      if (Peek().kind != TokenKind::kVariable) {
        return Err("expected variable in let clause");
      }
      c.var = Next().text;
      XQTP_RETURN_NOT_OK(Expect(TokenKind::kColonEq, "':='"));
      XQTP_ASSIGN_OR_RETURN(c.expr, ParseSingleExpr());
      out->push_back(std::move(c));
      if (!Accept(TokenKind::kComma)) return Status::OK();
    }
  }

  Result<ExprPtr> ParseOr() {
    XQTP_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (PeekName("or")) {
      ++pos_;
      XQTP_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      auto e = MakeExpr(ExprKind::kOr);
      e->child0 = std::move(lhs);
      e->child1 = std::move(rhs);
      lhs = std::move(e);
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd() {
    XQTP_ASSIGN_OR_RETURN(ExprPtr lhs, ParseComparison());
    while (PeekName("and")) {
      ++pos_;
      XQTP_ASSIGN_OR_RETURN(ExprPtr rhs, ParseComparison());
      auto e = MakeExpr(ExprKind::kAnd);
      e->child0 = std::move(lhs);
      e->child1 = std::move(rhs);
      lhs = std::move(e);
    }
    return lhs;
  }

  Result<ExprPtr> ParseComparison() {
    XQTP_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());
    xdm::CompareOp op;
    switch (Peek().kind) {
      case TokenKind::kEq:
        op = xdm::CompareOp::kEq;
        break;
      case TokenKind::kNe:
        op = xdm::CompareOp::kNe;
        break;
      case TokenKind::kLt:
        op = xdm::CompareOp::kLt;
        break;
      case TokenKind::kLe:
        op = xdm::CompareOp::kLe;
        break;
      case TokenKind::kGt:
        op = xdm::CompareOp::kGt;
        break;
      case TokenKind::kGe:
        op = xdm::CompareOp::kGe;
        break;
      default:
        return lhs;
    }
    ++pos_;
    XQTP_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
    auto e = MakeExpr(ExprKind::kCompare);
    e->cmp_op = op;
    e->child0 = std::move(lhs);
    e->child1 = std::move(rhs);
    return e;
  }

  Result<ExprPtr> ParseAdditive() {
    XQTP_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
    for (;;) {
      xdm::ArithOp op;
      if (Peek().kind == TokenKind::kPlus) {
        op = xdm::ArithOp::kAdd;
      } else if (Peek().kind == TokenKind::kMinus) {
        op = xdm::ArithOp::kSub;
      } else {
        return lhs;
      }
      ++pos_;
      XQTP_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
      auto e = MakeExpr(ExprKind::kArith);
      e->arith_op = op;
      e->child0 = std::move(lhs);
      e->child1 = std::move(rhs);
      lhs = std::move(e);
    }
  }

  Result<ExprPtr> ParseMultiplicative() {
    XQTP_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnion());
    for (;;) {
      xdm::ArithOp op;
      if (Peek().kind == TokenKind::kStar) {
        op = xdm::ArithOp::kMul;
      } else if (PeekName("div")) {
        op = xdm::ArithOp::kDiv;
      } else if (PeekName("idiv")) {
        op = xdm::ArithOp::kIDiv;
      } else if (PeekName("mod")) {
        op = xdm::ArithOp::kMod;
      } else {
        return lhs;
      }
      ++pos_;
      XQTP_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnion());
      auto e = MakeExpr(ExprKind::kArith);
      e->arith_op = op;
      e->child0 = std::move(lhs);
      e->child1 = std::move(rhs);
      lhs = std::move(e);
    }
  }

  Result<ExprPtr> ParseUnion() {
    XQTP_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    while (Peek().kind == TokenKind::kBar || PeekName("union")) {
      ++pos_;
      XQTP_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
      auto e = MakeExpr(ExprKind::kUnion);
      e->child0 = std::move(lhs);
      e->child1 = std::move(rhs);
      lhs = std::move(e);
    }
    return lhs;
  }

  Result<ExprPtr> ParseUnary() {
    if (Accept(TokenKind::kMinus)) {
      // -E is 0 - E (empty operands still yield the empty sequence).
      XQTP_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
      auto zero = MakeExpr(ExprKind::kLiteral);
      zero->literal = xdm::Item(static_cast<int64_t>(0));
      auto e = MakeExpr(ExprKind::kArith);
      e->arith_op = xdm::ArithOp::kSub;
      e->child0 = std::move(zero);
      e->child1 = std::move(operand);
      return e;
    }
    if (Accept(TokenKind::kPlus)) return ParseUnary();
    return ParsePath();
  }

  // Path := ("/" RelativePath? | "//" RelativePath | RelativePath)
  Result<ExprPtr> ParsePath() {
    ExprPtr lhs;
    if (Peek().kind == TokenKind::kSlash) {
      ++pos_;
      lhs = MakeExpr(ExprKind::kRoot);
      if (!StartsStep()) return lhs;  // bare "/"
      XQTP_ASSIGN_OR_RETURN(ExprPtr rhs, ParseStepExpr());
      auto p = MakeExpr(ExprKind::kPath);
      p->child0 = std::move(lhs);
      p->child1 = std::move(rhs);
      lhs = std::move(p);
    } else if (Peek().kind == TokenKind::kSlashSlash) {
      ++pos_;
      XQTP_ASSIGN_OR_RETURN(ExprPtr rhs, ParseStepExpr());
      auto p = MakeExpr(ExprKind::kPath);
      p->child0 = MakeExpr(ExprKind::kRoot);
      p->child1 = std::move(rhs);
      p->double_slash = true;
      lhs = std::move(p);
    } else {
      XQTP_ASSIGN_OR_RETURN(lhs, ParseStepExpr());
    }
    for (;;) {
      bool dslash;
      if (Accept(TokenKind::kSlash)) {
        dslash = false;
      } else if (Accept(TokenKind::kSlashSlash)) {
        dslash = true;
      } else {
        break;
      }
      XQTP_ASSIGN_OR_RETURN(ExprPtr rhs, ParseStepExpr());
      auto p = MakeExpr(ExprKind::kPath);
      p->child0 = std::move(lhs);
      p->child1 = std::move(rhs);
      p->double_slash = dslash;
      lhs = std::move(p);
    }
    return lhs;
  }

  /// True iff the upcoming tokens can begin a path step.
  bool StartsStep() const {
    switch (Peek().kind) {
      case TokenKind::kName:
      case TokenKind::kStar:
      case TokenKind::kAt:
      case TokenKind::kDot:
      case TokenKind::kVariable:
      case TokenKind::kString:
      case TokenKind::kInteger:
      case TokenKind::kDecimal:
      case TokenKind::kLParen:
        return true;
      default:
        return false;
    }
  }

  /// Recognizes an axis keyword followed by "::".
  bool PeekAxis(Axis* axis) const {
    if (Peek().kind != TokenKind::kName ||
        Peek(1).kind != TokenKind::kAxisSep) {
      return false;
    }
    const std::string& n = Peek().text;
    if (n == "child") {
      *axis = Axis::kChild;
    } else if (n == "descendant" || n == "desc") {
      *axis = Axis::kDescendant;
    } else if (n == "descendant-or-self") {
      *axis = Axis::kDescendantOrSelf;
    } else if (n == "attribute") {
      *axis = Axis::kAttribute;
    } else if (n == "self") {
      *axis = Axis::kSelf;
    } else if (n == "parent") {
      *axis = Axis::kParent;
    } else if (n == "ancestor") {
      *axis = Axis::kAncestor;
    } else if (n == "ancestor-or-self") {
      *axis = Axis::kAncestorOrSelf;
    } else if (n == "following-sibling") {
      *axis = Axis::kFollowingSibling;
    } else if (n == "preceding-sibling") {
      *axis = Axis::kPrecedingSibling;
    } else {
      return false;
    }
    return true;
  }

  Result<NodeTest> ParseNodeTest() {
    if (Accept(TokenKind::kStar)) return NodeTest::AnyName();
    if (Peek().kind != TokenKind::kName) return Err("expected a node test");
    std::string name = Next().text;
    if (Peek().kind == TokenKind::kLParen) {
      // node() or text()
      ++pos_;
      XQTP_RETURN_NOT_OK(Expect(TokenKind::kRParen, "')'"));
      if (name == "node") return NodeTest::AnyNode();
      if (name == "text") return NodeTest::Text();
      return Err("unsupported kind test '" + name + "()'");
    }
    return NodeTest::Name(interner_->Intern(name));
  }

  // StepExpr := AxisStep Predicates* | PrimaryExpr Predicates*
  Result<ExprPtr> ParseStepExpr() {
    Axis axis;
    // Explicit axis step: axis::test
    if (PeekAxis(&axis)) {
      pos_ += 2;  // axis name + "::"
      auto step = MakeExpr(ExprKind::kStep);
      step->axis = axis;
      XQTP_ASSIGN_OR_RETURN(step->test, ParseNodeTest());
      XQTP_RETURN_NOT_OK(ParsePredicates(&step->predicates));
      return step;
    }
    // @attr abbreviation.
    if (Accept(TokenKind::kAt)) {
      auto step = MakeExpr(ExprKind::kStep);
      step->axis = Axis::kAttribute;
      XQTP_ASSIGN_OR_RETURN(step->test, ParseNodeTest());
      XQTP_RETURN_NOT_OK(ParsePredicates(&step->predicates));
      return step;
    }
    // Abbreviated child step: a name (or * / node() / text()) that is not a
    // function call.
    if ((Peek().kind == TokenKind::kName &&
         (Peek(1).kind != TokenKind::kLParen || Peek().text == "node" ||
          Peek().text == "text")) ||
        Peek().kind == TokenKind::kStar) {
      auto step = MakeExpr(ExprKind::kStep);
      step->axis = Axis::kChild;
      XQTP_ASSIGN_OR_RETURN(step->test, ParseNodeTest());
      XQTP_RETURN_NOT_OK(ParsePredicates(&step->predicates));
      return step;
    }
    // Otherwise: primary expression with optional predicates (filter expr).
    XQTP_ASSIGN_OR_RETURN(ExprPtr prim, ParsePrimary());
    if (Peek().kind == TokenKind::kLBracket) {
      auto filter = MakeExpr(ExprKind::kFilter);
      filter->child0 = std::move(prim);
      XQTP_RETURN_NOT_OK(ParsePredicates(&filter->predicates));
      return filter;
    }
    return prim;
  }

  Status ParsePredicates(std::vector<ExprPtr>* preds) {
    while (Accept(TokenKind::kLBracket)) {
      XQTP_ASSIGN_OR_RETURN(ExprPtr p, ParseExpr());
      XQTP_RETURN_NOT_OK(Expect(TokenKind::kRBracket, "']'"));
      preds->push_back(std::move(p));
    }
    return Status::OK();
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kVariable: {
        auto e = MakeExpr(ExprKind::kVarRef);
        e->var_name = Next().text;
        return e;
      }
      case TokenKind::kString: {
        auto e = MakeExpr(ExprKind::kLiteral);
        e->literal = xdm::Item(Next().text);
        return e;
      }
      case TokenKind::kInteger: {
        auto e = MakeExpr(ExprKind::kLiteral);
        e->literal = xdm::Item(Next().integer);
        return e;
      }
      case TokenKind::kDecimal: {
        auto e = MakeExpr(ExprKind::kLiteral);
        e->literal = xdm::Item(Next().decimal);
        return e;
      }
      case TokenKind::kDot: {
        ++pos_;
        return MakeExpr(ExprKind::kContextItem);
      }
      case TokenKind::kLParen: {
        ++pos_;
        if (Accept(TokenKind::kRParen)) {
          return MakeExpr(ExprKind::kSequence);  // empty sequence "()"
        }
        XQTP_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        XQTP_RETURN_NOT_OK(Expect(TokenKind::kRParen, "')'"));
        return e;
      }
      case TokenKind::kName: {
        // Function call.
        if (Peek(1).kind == TokenKind::kLParen) {
          auto e = MakeExpr(ExprKind::kFnCall);
          e->fn_name = Next().text;
          ++pos_;  // '('
          if (!Accept(TokenKind::kRParen)) {
            for (;;) {
              XQTP_ASSIGN_OR_RETURN(ExprPtr arg, ParseSingleExpr());
              e->args.push_back(std::move(arg));
              if (Accept(TokenKind::kRParen)) break;
              XQTP_RETURN_NOT_OK(Expect(TokenKind::kComma, "',' or ')'"));
            }
          }
          return e;
        }
        return Err("unexpected name '" + t.text + "'");
      }
      default:
        return Err("unexpected token");
    }
  }

  std::vector<Token> tokens_;
  StringInterner* interner_;
  size_t pos_ = 0;
};

}  // namespace

Result<ExprPtr> ParseQuery(std::string_view query, StringInterner* interner) {
  XQTP_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(query));
  Parser p(std::move(tokens), interner);
  return p.Run();
}

}  // namespace xqtp::xquery
