#include "engine/engine.h"

#include "algebra/printer.h"
#include "common/fault_injection.h"
#include "common/fingerprint.h"
#include "analysis/core_verifier.h"
#include "analysis/plan_lint.h"
#include "analysis/plan_verifier.h"
#include "core/odf.h"
#include "core/printer.h"

namespace xqtp::engine {

namespace {

// ---- CompiledQuery::MemoryUsage estimation ---------------------------------
// sizeof-based traversal of the retained forms, in the same approximate
// spirit as the governor's intermediate accounting: the LRU needs charges
// proportional to plan size, not an allocator audit.

int64_t BytesOf(const pattern::PatternNode& p) {
  int64_t bytes = static_cast<int64_t>(sizeof(pattern::PatternNode));
  bytes += static_cast<int64_t>(p.predicates.capacity() *
                                sizeof(pattern::PatternNodePtr));
  for (const pattern::PatternNodePtr& pred : p.predicates) {
    bytes += BytesOf(*pred);
  }
  if (p.next != nullptr) bytes += BytesOf(*p.next);
  return bytes;
}

int64_t BytesOf(const core::CoreExpr& e) {
  int64_t bytes = static_cast<int64_t>(sizeof(core::CoreExpr));
  bytes += static_cast<int64_t>(e.children.capacity() *
                                sizeof(core::CoreExprPtr));
  for (const core::CoreExprPtr& c : e.children) bytes += BytesOf(*c);
  if (e.where != nullptr) bytes += BytesOf(*e.where);
  return bytes;
}

int64_t BytesOf(const algebra::Op& op) {
  int64_t bytes = static_cast<int64_t>(sizeof(algebra::Op));
  bytes += static_cast<int64_t>(op.inputs.capacity() * sizeof(algebra::OpPtr));
  for (const algebra::OpPtr& in : op.inputs) bytes += BytesOf(*in);
  if (op.dep != nullptr) bytes += BytesOf(*op.dep);
  if (op.dep2 != nullptr) bytes += BytesOf(*op.dep2);
  if (op.tp.root != nullptr) bytes += BytesOf(*op.tp.root);
  return bytes;
}

int64_t EstimateMemoryUsage(const CompiledQuery& q) {
  int64_t bytes = static_cast<int64_t>(sizeof(CompiledQuery));
  bytes += static_cast<int64_t>(q.source().capacity());
  // Per-variable bookkeeping (name string + table slots), flat estimate.
  bytes += static_cast<int64_t>(q.vars().size()) * 64;
  bytes += BytesOf(q.normalized());
  bytes += BytesOf(q.rewritten());
  bytes += BytesOf(q.plan());
  bytes += BytesOf(q.optimized());
  for (const analysis::LintFinding& f : q.lint_findings()) {
    bytes += static_cast<int64_t>(sizeof(f) + f.rule.capacity() +
                                  f.detail.capacity());
  }
  return bytes;
}

/// Option bits that shape the compiled plan, packed for HashCombine.
uint64_t PlanShapeBits(const CompileOptions& opts) {
  uint64_t bits = 0;
  auto set = [&bits](bool on, int bit) {
    if (on) bits |= uint64_t{1} << bit;
  };
  set(opts.rewrite, 0);
  set(opts.detect_tree_patterns, 1);
  set(opts.positional_patterns, 2);
  set(opts.multi_output_patterns, 3);
  set(opts.infer_properties, 4);
  set(opts.rewrite_opts.typeswitch_rules, 5);
  set(opts.rewrite_opts.flwor_rules, 6);
  set(opts.rewrite_opts.ddo_removal, 7);
  set(opts.rewrite_opts.loop_split, 8);
  set(opts.rewrite_opts.unsound_ddo_strip_for_testing, 9);
  return bits;
}

}  // namespace

Result<const xml::Document*> Engine::LoadDocument(const std::string& name,
                                                  std::string_view xml_text) {
  XQTP_ASSIGN_OR_RETURN(std::unique_ptr<xml::Document> doc,
                        xml::Parse(xml_text, &interner_));
  return AddDocument(name, std::move(doc));
}

const xml::Document* Engine::AddDocument(const std::string& name,
                                         std::unique_ptr<xml::Document> doc) {
  doc->set_id(next_doc_id_++);
  const xml::Document* raw = doc.get();
  docs_[name] = std::move(doc);
  return raw;
}

const xml::Document* Engine::FindDocument(const std::string& name) const {
  auto it = docs_.find(name);
  return it == docs_.end() ? nullptr : it->second.get();
}

analysis::EquivChecker* Engine::equiv_checker() {
  if (!options_.analysis.check_equivalence) return nullptr;
  if (!equiv_) {
    equiv_ = std::make_unique<analysis::EquivChecker>(&interner_,
                                                      options_.analysis);
  }
  return equiv_.get();
}

Result<CompiledQuery> Engine::Compile(std::string_view query,
                                      const CompileOptions& opts) {
  // Compile-time governance: the rewriter and optimizer poll the ambient
  // governor once per fixpoint round (core/rewrite.cc, algebra/optimize.cc).
  exec::GovernorLimits climits;
  climits.deadline = opts.deadline;
  climits.cancel_token = opts.cancel_token;
  std::optional<exec::QueryGovernor> governor;
  std::optional<exec::ScopedGovernor> governed;
  if (climits.Any()) {
    governor.emplace(climits);
    governed.emplace(&*governor);
  }

  CompiledQuery q;
  q.source_ = std::string(query);

  XQTP_ASSIGN_OR_RETURN(xquery::ExprPtr surface,
                        xquery::ParseQuery(query, &interner_));
  XQTP_ASSIGN_OR_RETURN(q.normalized_, core::Normalize(*surface, &q.vars_));
  if (options_.verify_plans) {
    // The normalizer has no cached ODF annotations yet, so only the
    // structural invariants apply here.
    analysis::VerifyScope scope("normalize");
    scope.MarkFired();
    XQTP_RETURN_NOT_OK(analysis::VerifyCore(*q.normalized_, q.vars_));
  }

  if (opts.rewrite) {
    core::RewriteOptions ropts = opts.rewrite_opts;
    ropts.verify = options_.verify_plans;
    ropts.equiv = equiv_checker();
    XQTP_ASSIGN_OR_RETURN(
        q.rewritten_,
        core::RewriteToTPNF(core::Clone(*q.normalized_), &q.vars_, ropts));
  } else {
    q.rewritten_ = core::Clone(*q.normalized_);
    // The rewriter annotates ODF as its last step; mirror that here so
    // algebra::Compile can seed the plan-level property analysis on the
    // unrewritten pipeline too.
    core::AnnotateOdf(q.rewritten_.get(), q.vars_);
  }

  XQTP_ASSIGN_OR_RETURN(q.plan_,
                        algebra::Compile(*q.rewritten_, q.vars_, &interner_));
  if (options_.verify_plans) {
    analysis::VerifyScope scope("algebra compile");
    scope.MarkFired();
    analysis::PlanVerifyOptions vopts;
    vopts.vars = &q.vars_;
    vopts.interner = &interner_;
    XQTP_RETURN_NOT_OK(analysis::VerifyPlan(*q.plan_, vopts));
  }
  if (analysis::EquivChecker* equiv = equiv_checker()) {
    // Differential check of the compilation step itself: the compiled
    // plan must agree with the rewritten Core on the witness corpus.
    analysis::VerifyScope scope("algebra compile");
    scope.MarkFired();
    XQTP_RETURN_NOT_OK(
        equiv->CheckCoreVsPlan(*q.rewritten_, *q.plan_, q.vars_));
  }
  q.optimized_ = algebra::Clone(*q.plan_);
  algebra::OptimizeOptions oopts;
  oopts.detect_tree_patterns = opts.detect_tree_patterns;
  oopts.positional_patterns = opts.positional_patterns;
  oopts.multi_output_patterns = opts.multi_output_patterns;
  oopts.infer_properties = opts.infer_properties;
  oopts.verify = options_.verify_plans;
  oopts.vars = &q.vars_;
  oopts.equiv = equiv_checker();
  XQTP_RETURN_NOT_OK(algebra::Optimize(&q.optimized_, &interner_, oopts));
  if (options_.verify_plans && opts.infer_properties) {
    // Diagnostics only: lint findings are retained on the query (and in
    // the explain output) but never fail compilation.
    analysis::VerifyScope scope("plan lint");
    analysis::PlanLintOptions lopts;
    lopts.interner = &interner_;
    q.lint_findings_ = analysis::LintPlan(*q.optimized_, lopts);
  }
  // Final build-path stamps; the query is immutable from here on
  // (lint.py rule compiled-query-immutable).
  q.fingerprint_ = Fingerprint(query, opts);
  q.memory_bytes_ = EstimateMemoryUsage(q);
  return q;
}

uint64_t Engine::Fingerprint(std::string_view query,
                             const CompileOptions& opts) const {
  uint64_t h = HashBytes(CanonicalizeQuery(query));
  h = HashCombine(h, PlanShapeBits(opts));
  h = HashCombine(h, static_cast<uint64_t>(opts.rewrite_opts.max_rounds));
  return h;
}

Result<PlanCache::PlanPtr> Engine::CompileForCache(const std::string& query,
                                                   const CompileOptions& opts) {
  XQTP_ASSIGN_OR_RETURN(CompiledQuery q, Compile(query, opts));
  return PlanCache::PlanPtr(
      std::make_shared<const CompiledQuery>(std::move(q)));
}

Result<std::shared_ptr<const CompiledQuery>> Engine::CompileCached(
    std::string_view query, const CompileOptions& opts) {
  const uint64_t key = Fingerprint(query, opts);
  const std::string text(query);
  return plan_cache_.GetOrCompile(key, [&]() -> Result<PlanCache::PlanPtr> {
    if (options_.analysis.check_equivalence) {
      // The oracle (and its lazy creation) is single-threaded; serialize
      // whole fills while it participates in compilation.
      MutexLock lock(&compile_mu_);
      return CompileForCache(text, opts);
    }
    return CompileForCache(text, opts);
  });
}

Result<xdm::Sequence> Engine::ExecuteQuery(std::string_view query,
                                           const GlobalMap& globals,
                                           const exec::EvalOptions& eval_opts,
                                           const CompileOptions& opts) {
  XQTP_ASSIGN_OR_RETURN(std::shared_ptr<const CompiledQuery> q,
                        CompileCached(query, opts));
  return Execute(*q, globals, eval_opts);
}

bool Engine::ErasePlan(std::string_view query, const CompileOptions& opts) {
  return plan_cache_.Erase(Fingerprint(query, opts));
}

void Engine::SetOptions(const EngineOptions& options) {
  options_ = options;
  equiv_.reset();  // rebuilt lazily under the new analysis options
  plan_cache_.BumpGeneration();
}

std::vector<std::string> CompiledQuery::GlobalNames() const {
  std::vector<std::string> names;
  for (core::VarId v = 0; v < static_cast<core::VarId>(vars_.size()); ++v) {
    if (vars_.IsGlobal(v)) names.push_back(vars_.NameOf(v));
  }
  return names;
}

Result<xdm::Sequence> Engine::Execute(const CompiledQuery& q,
                                      const GlobalMap& globals,
                                      exec::PatternAlgo algo,
                                      PlanChoice plan) const {
  exec::EvalOptions opts;
  opts.algo = algo;
  opts.threads = 1;  // the legacy entry point stays sequential
  return Execute(q, globals, opts, plan);
}

Result<xdm::Sequence> Engine::Execute(const CompiledQuery& q,
                                      const GlobalMap& globals,
                                      const exec::EvalOptions& opts,
                                      PlanChoice plan) const {
  XQTP_FAULT_POINT("engine.execute");
  exec::Bindings bindings;
  for (core::VarId v = 0; v < static_cast<core::VarId>(q.vars().size());
       ++v) {
    if (!q.vars().IsGlobal(v)) continue;
    auto it = globals.find(q.vars().NameOf(v));
    if (it == globals.end()) {
      return Status::InvalidArgument("no binding provided for query global $" +
                                     q.vars().NameOf(v));
    }
    bindings[v] = it->second;
  }
  // Every name a compiled plan can mention is already interned; enforce
  // (in debug builds) that evaluation — possibly on several threads —
  // never writes to the interner.
  StringInterner::ExecutionFreeze freeze(interner_);
  switch (plan) {
    case PlanChoice::kOptimized:
      return exec::Evaluate(q.optimized(), q.vars(), bindings, opts);
    case PlanChoice::kUnoptimized:
      return exec::Evaluate(q.plan(), q.vars(), bindings, opts);
    case PlanChoice::kCoreInterp:
      return exec::EvaluateCore(q.rewritten(), q.vars(), bindings);
  }
  return Status::Internal("unknown plan choice");
}

Result<xdm::Sequence> Engine::Run(std::string_view query,
                                  const xml::Document& doc,
                                  exec::PatternAlgo algo,
                                  const CompileOptions& opts) {
  XQTP_ASSIGN_OR_RETURN(CompiledQuery q, Compile(query, opts));
  GlobalMap globals;
  for (const std::string& name : q.GlobalNames()) {
    globals[name] = xdm::Sequence{xdm::Item(doc.root())};
  }
  return Execute(q, globals, algo);
}

std::string Engine::Explain(const CompiledQuery& q) const {
  std::string out;
  out += "== query ==\n" + q.source() + "\n";
  out += "\n== normalized core ==\n";
  out += core::ToString(q.normalized(), q.vars(), interner_) + "\n";
  out += "\n== rewritten core (TPNF') ==\n";
  out += core::ToString(q.rewritten(), q.vars(), interner_) + "\n";
  out += "\n== algebra plan ==\n";
  out += algebra::ToPrettyString(q.plan(), q.vars(), interner_) + "\n";
  out += "\n== optimized plan ==\n";
  out += algebra::ToPrettyString(q.optimized(), q.vars(), interner_) + "\n";
  if (!q.lint_findings().empty()) {
    out += "\n== plan lint ==\n";
    for (const analysis::LintFinding& f : q.lint_findings()) {
      out += f.rule + ": " + f.detail + "\n";
    }
  }
  out += "\n== plan cache ==\n";
  out += "fingerprint: " + FingerprintHex(q.fingerprint()) + "\n";
  PlanCachePeek peek = plan_cache_.Peek(q.fingerprint());
  if (peek.present) {
    out += "disposition: cached (" + std::to_string(peek.hits) + " hit" +
           (peek.hits == 1 ? "" : "s") + ", " + std::to_string(peek.bytes) +
           " bytes)\n";
  } else {
    out += "disposition: not cached\n";
  }
  return out;
}

}  // namespace xqtp::engine
