#include <gtest/gtest.h>

#include "xml/document.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xqtp::xml {
namespace {

TEST(DocumentBuilder, BuildsStructure) {
  StringInterner interner;
  DocumentBuilder b(&interner);
  b.StartElement("a");
  b.StartElement("b");
  b.Text("hello");
  b.EndElement();
  b.StartElement("c");
  b.EndElement();
  b.EndElement();
  auto doc = b.Finish();

  const Node* root = doc->root();
  ASSERT_TRUE(root->IsDocument());
  const Node* a = root->first_child;
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(interner.NameOf(a->name), "a");
  const Node* bn = a->first_child;
  const Node* cn = bn->next_sibling;
  EXPECT_EQ(interner.NameOf(bn->name), "b");
  EXPECT_EQ(interner.NameOf(cn->name), "c");
  EXPECT_EQ(cn->prev_sibling, bn);
  EXPECT_EQ(bn->parent, a);
}

TEST(DocumentBuilder, PrePostEncoding) {
  StringInterner interner;
  DocumentBuilder b(&interner);
  b.StartElement("a");
  b.StartElement("b");
  b.StartElement("d");
  b.EndElement();
  b.EndElement();
  b.StartElement("c");
  b.EndElement();
  b.EndElement();
  auto doc = b.Finish();

  const Node* a = doc->root()->first_child;
  const Node* bn = a->first_child;
  const Node* d = bn->first_child;
  const Node* c = bn->next_sibling;

  // Preorder: doc(0) a(1) b(2) d(3) c(4).
  EXPECT_EQ(a->pre, 1);
  EXPECT_EQ(bn->pre, 2);
  EXPECT_EQ(d->pre, 3);
  EXPECT_EQ(c->pre, 4);
  // Region containment: ancestor test.
  EXPECT_TRUE(a->IsAncestorOf(*d));
  EXPECT_TRUE(bn->IsAncestorOf(*d));
  EXPECT_FALSE(c->IsAncestorOf(*d));
  EXPECT_FALSE(d->IsAncestorOf(*bn));
  // Depth.
  EXPECT_EQ(a->depth, 1);
  EXPECT_EQ(d->depth, 3);
}

TEST(DocumentBuilder, AttributeEncodingIsNotAncestorOfChildren) {
  StringInterner interner;
  DocumentBuilder b(&interner);
  b.StartElement("a");
  b.Attribute("id", "1");
  b.StartElement("b");
  b.EndElement();
  b.EndElement();
  auto doc = b.Finish();

  const Node* a = doc->root()->first_child;
  const Node* attr = a->attributes[0];
  const Node* bn = a->first_child;
  EXPECT_TRUE(a->IsAncestorOf(*attr));
  EXPECT_FALSE(attr->IsAncestorOf(*bn));
  EXPECT_LT(attr->pre, bn->pre);  // attributes precede children in doc order
}

TEST(Parser, ParsesElementsAttributesText) {
  StringInterner interner;
  auto res = Parse("<a id=\"1\"><b>hi &amp; bye</b><c/></a>", &interner);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  const Document& doc = **res;
  const Node* a = doc.root()->first_child;
  EXPECT_EQ(interner.NameOf(a->name), "a");
  ASSERT_EQ(a->attributes.size(), 1u);
  EXPECT_EQ(a->attributes[0]->text, "1");
  const Node* b = a->first_child;
  EXPECT_EQ(b->StringValue(), "hi & bye");
}

TEST(Parser, SkipsCommentsPIsDoctype) {
  StringInterner interner;
  auto res = Parse(
      "<?xml version=\"1.0\"?><!DOCTYPE a><!-- c --><a><!-- x --><b/></a>",
      &interner);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  const Node* a = res.value()->root()->first_child;
  EXPECT_EQ(interner.NameOf(a->name), "a");
  EXPECT_EQ(interner.NameOf(a->first_child->name), "b");
}

TEST(Parser, CdataAndNumericEntities) {
  StringInterner interner;
  auto res = Parse("<a><![CDATA[<raw>]]>&#65;</a>", &interner);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res.value()->root()->first_child->StringValue(), "<raw>A");
}

TEST(Parser, RejectsMismatchedTags) {
  StringInterner interner;
  auto res = Parse("<a><b></a></b>", &interner);
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kInvalidArgument);
}

TEST(Parser, RejectsTrailingContent) {
  StringInterner interner;
  EXPECT_FALSE(Parse("<a/><b/>", &interner).ok());
}

TEST(Serializer, RoundTrips) {
  StringInterner interner;
  std::string xml = "<a id=\"1\"><b>hi</b><c/></a>";
  auto res = Parse(xml, &interner);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(Serialize(res.value()->root()), xml);
}

TEST(TagIndex, DocumentOrderAndLazy) {
  StringInterner interner;
  auto res = Parse("<a><b/><c><b/></c><b/></a>", &interner);
  ASSERT_TRUE(res.ok());
  const Document& doc = **res;
  Symbol b = interner.Lookup("b");
  const auto& bs = doc.ElementsByTag(b);
  ASSERT_EQ(bs.size(), 3u);
  EXPECT_LT(bs[0]->pre, bs[1]->pre);
  EXPECT_LT(bs[1]->pre, bs[2]->pre);
  // Unknown tag: empty stream.
  EXPECT_TRUE(doc.ElementsByTag(interner.Intern("zzz")).empty());
}

TEST(TagIndex, AllNodesIncludesDocElementText) {
  StringInterner interner;
  auto res = Parse("<a>t<b/></a>", &interner);
  ASSERT_TRUE(res.ok());
  const auto& all = res.value()->AllNodes();
  // document, a, text, b
  ASSERT_EQ(all.size(), 4u);
  EXPECT_TRUE(all[0]->IsDocument());
  EXPECT_TRUE(all[2]->IsText());
}

TEST(StringValue, ConcatenatesDescendantText) {
  StringInterner interner;
  auto res = Parse("<a>x<b>y</b>z</a>", &interner);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.value()->root()->StringValue(), "xyz");
}

}  // namespace
}  // namespace xqtp::xml
