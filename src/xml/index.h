// Index access helpers shared by the Staircase and Twig joins: document-
// ordered tag streams with binary-searched region skipping.
#ifndef XQTP_XML_INDEX_H_
#define XQTP_XML_INDEX_H_

#include <vector>

#include "xml/document.h"
#include "xml/node.h"

namespace xqtp::xml {

/// A cursor over a per-tag stream (document-ordered vector of nodes) with
/// the skip operations the index-based joins rely on.
class TagStream {
 public:
  /// Stream of elements with tag `tag`; pass kInvalidSymbol for all
  /// elements (the node() stream).
  TagStream(const Document& doc, Symbol tag);

  bool AtEnd() const { return pos_ >= nodes_->size(); }
  const Node* Head() const { return (*nodes_)[pos_]; }
  void Advance() { ++pos_; }

  /// Positions the cursor on the first node with pre > `pre`.
  /// O(log n) binary search; this is the "skip" primitive of Staircase join.
  void SkipToPreAfter(int32_t pre);

  /// Positions the cursor on the first node inside the subtree of `anc`
  /// (i.e. the first descendant of `anc` in the stream), or past all of
  /// them if there are none before the region ends.
  void SkipIntoSubtree(const Node* anc) { SkipToPreAfter(anc->pre); }

  size_t size() const { return nodes_->size(); }
  void Reset() { pos_ = 0; }

  /// Number of nodes this stream touched since construction/Reset; used by
  /// the benchmark harness to report index work.
  size_t position() const { return pos_; }

 private:
  const std::vector<const Node*>* nodes_;
  size_t pos_ = 0;
};

}  // namespace xqtp::xml

#endif  // XQTP_XML_INDEX_H_
