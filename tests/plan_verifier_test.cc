// The analysis subsystem against deliberately corrupted trees: every
// invariant of the Core and plan verifiers must fire on a hand-built
// violation and stay silent on the legal variant it was derived from.
#include <gtest/gtest.h>

#include "algebra/ops.h"
#include "analysis/core_verifier.h"
#include "analysis/plan_verifier.h"
#include "analysis/verify_scope.h"
#include "core/ast.h"
#include "core/odf.h"
#include "engine/engine.h"
#include "pattern/tree_pattern.h"

namespace xqtp {
namespace {

using algebra::MakeOp;
using algebra::Op;
using algebra::OpKind;
using algebra::OpPtr;
using pattern::PatternNode;
using pattern::TreePattern;

void ExpectViolation(const Status& st, const char* invariant) {
  ASSERT_FALSE(st.ok()) << "expected a [" << invariant << "] violation";
  EXPECT_EQ(st.code(), StatusCode::kInternal) << st.ToString();
  EXPECT_NE(st.message().find(std::string("[") + invariant + "]"),
            std::string::npos)
      << st.message();
}

// ---- plan verifier ---------------------------------------------------------

class PlanVerifierTest : public ::testing::Test {
 protected:
  PlanVerifierTest() {
    d_ = vars_.Global("d");
    dot_ = interner_.Intern("dot");
    out_ = interner_.Intern("out");
    a_ = interner_.Intern("a");
  }

  analysis::PlanVerifyOptions Opts() {
    analysis::PlanVerifyOptions opts;
    opts.vars = &vars_;
    opts.interner = &interner_;
    return opts;
  }

  OpPtr Global() {
    OpPtr op = MakeOp(OpKind::kGlobalVar);
    op->var = d_;
    return op;
  }

  /// MapFromItem{[field : IN]}(input) — one tuple per input item.
  OpPtr FromItem(Symbol field, OpPtr input) {
    OpPtr op = MakeOp(OpKind::kMapFromItem);
    op->field = field;
    op->inputs.push_back(std::move(input));
    op->dep = MakeOp(OpKind::kInputItem);
    return op;
  }

  OpPtr ToItem(OpPtr input, OpPtr dep) {
    OpPtr op = MakeOp(OpKind::kMapToItem);
    op->inputs.push_back(std::move(input));
    op->dep = std::move(dep);
    return op;
  }

  OpPtr FieldAcc(Symbol field) {
    OpPtr op = MakeOp(OpKind::kFieldAccess);
    op->field = field;
    return op;
  }

  OpPtr Ttp(TreePattern tp, OpPtr input) {
    OpPtr op = MakeOp(OpKind::kTupleTreePattern);
    op->tp = std::move(tp);
    op->inputs.push_back(std::move(input));
    return op;
  }

  /// MapToItem{IN#out}(TTP[IN#dot/child::a{out}](MapFromItem{[dot : IN]}($d)))
  /// — the shape the optimizer produces for "$d/a".
  OpPtr LegalPlan() {
    TreePattern tp = pattern::MakeSingleStep(dot_, Axis::kChild,
                                             NodeTest::Name(a_), out_);
    return ToItem(Ttp(std::move(tp), FromItem(dot_, Global())),
                  FieldAcc(out_));
  }

  core::VarTable vars_;
  StringInterner interner_;
  core::VarId d_;
  Symbol dot_, out_, a_;
};

TEST_F(PlanVerifierTest, LegalPlanPasses) {
  OpPtr plan = LegalPlan();
  EXPECT_TRUE(analysis::VerifyPlan(*plan, Opts()).ok());
}

TEST_F(PlanVerifierTest, ReadOfUnproducedField) {
  // The extraction reads IN#bogus, but upstream only produces dot/out.
  OpPtr plan = LegalPlan();
  plan->dep->field = interner_.Intern("bogus");
  ExpectViolation(analysis::VerifyPlan(*plan, Opts()), "field-def-use");
}

TEST_F(PlanVerifierTest, PatternContextFieldUnproduced) {
  // The pattern navigates from IN#bogus, a field no operator defines.
  OpPtr plan = LegalPlan();
  plan->inputs[0]->tp.input_field = interner_.Intern("bogus");
  ExpectViolation(analysis::VerifyPlan(*plan, Opts()), "field-def-use");
}

TEST_F(PlanVerifierTest, MultiOutputRequiresOptIn) {
  // IN#dot/child::a{out}/child::a{out2}: legal only for the
  // multi-variable extension.
  OpPtr plan = LegalPlan();
  TreePattern& tp = plan->inputs[0]->tp;
  auto second = std::make_unique<PatternNode>();
  second->axis = Axis::kChild;
  second->test = NodeTest::Name(a_);
  second->output = interner_.Intern("out2");
  tp.root->next = std::move(second);
  ExpectViolation(analysis::VerifyPlan(*plan, Opts()), "single-output");

  analysis::PlanVerifyOptions multi = Opts();
  multi.allow_multi_output = true;
  // (The extraction still reads "out", which the pattern still produces.)
  EXPECT_TRUE(analysis::VerifyPlan(*plan, multi).ok());
}

TEST_F(PlanVerifierTest, NoOutputAtAll) {
  OpPtr plan = LegalPlan();
  plan->inputs[0]->tp.root->output = kInvalidSymbol;
  ExpectViolation(analysis::VerifyPlan(*plan, Opts()), "single-output");
}

TEST_F(PlanVerifierTest, UpwardAxisInPattern) {
  // parent:: is navigationally fine but outside the pattern grammar.
  OpPtr plan = LegalPlan();
  plan->inputs[0]->tp.root->axis = Axis::kParent;
  ExpectViolation(analysis::VerifyPlan(*plan, Opts()), "pattern-axis");
}

TEST_F(PlanVerifierTest, NameTestWithoutName) {
  OpPtr plan = LegalPlan();
  plan->inputs[0]->tp.root->test = NodeTest{NodeTestKind::kName,
                                            kInvalidSymbol};
  ExpectViolation(analysis::VerifyPlan(*plan, Opts()), "pattern-test");
}

TEST_F(PlanVerifierTest, PatternWithoutSteps) {
  OpPtr plan = LegalPlan();
  plan->inputs[0]->tp.root.reset();
  ExpectViolation(analysis::VerifyPlan(*plan, Opts()), "pattern-root");
}

TEST_F(PlanVerifierTest, PredicateBranchWithOutput) {
  // Predicate bindings are unobservable; an output annotation there is a
  // merge bug (AttachPredicate must clear it).
  OpPtr plan = LegalPlan();
  auto pred = std::make_unique<PatternNode>();
  pred->axis = Axis::kChild;
  pred->test = NodeTest::AnyName();
  pred->output = interner_.Intern("leak");
  plan->inputs[0]->tp.root->predicates.push_back(std::move(pred));
  ExpectViolation(analysis::VerifyPlan(*plan, Opts()), "pattern-pred-output");
}

TEST_F(PlanVerifierTest, DuplicateOutputAnnotation) {
  OpPtr plan = LegalPlan();
  TreePattern& tp = plan->inputs[0]->tp;
  auto second = std::make_unique<PatternNode>();
  second->axis = Axis::kChild;
  second->test = NodeTest::AnyName();
  second->output = out_;  // same field as the root step
  tp.root->next = std::move(second);
  analysis::PlanVerifyOptions multi = Opts();
  multi.allow_multi_output = true;
  ExpectViolation(analysis::VerifyPlan(*plan, multi), "pattern-output-dup");
}

TEST_F(PlanVerifierTest, TuplePlanAtRoot) {
  OpPtr plan = FromItem(dot_, Global());
  ExpectViolation(analysis::VerifyPlan(*plan, Opts()), "plan-sort");
}

TEST_F(PlanVerifierTest, ItemPlanWhereTupleExpected) {
  // MapToItem over a bare GlobalVar: the input edge carries the wrong sort.
  OpPtr plan = ToItem(Global(), FieldAcc(out_));
  ExpectViolation(analysis::VerifyPlan(*plan, Opts()), "plan-sort");
}

TEST_F(PlanVerifierTest, InputTupleOutsideDependentContext) {
  // IN (tuple) at the top level: there is no ambient tuple to read.
  OpPtr plan = ToItem(MakeOp(OpKind::kInputTuple), FieldAcc(out_));
  ExpectViolation(analysis::VerifyPlan(*plan, Opts()), "tuple-context");
}

TEST_F(PlanVerifierTest, FieldAccessOutsideTupleContext) {
  OpPtr plan = FieldAcc(out_);
  ExpectViolation(analysis::VerifyPlan(*plan, Opts()), "tuple-context");
}

TEST_F(PlanVerifierTest, InputItemOutsideMapFromItem) {
  // MapToItem dependents see the current tuple, never a current item.
  OpPtr plan = ToItem(FromItem(dot_, Global()), MakeOp(OpKind::kInputItem));
  ExpectViolation(analysis::VerifyPlan(*plan, Opts()), "item-context");
}

TEST_F(PlanVerifierTest, UnboundScopedVar) {
  OpPtr plan = MakeOp(OpKind::kScopedVar);
  plan->var = vars_.Fresh("x");
  ExpectViolation(analysis::VerifyPlan(*plan, Opts()), "scoped-var-scope");
}

TEST_F(PlanVerifierTest, GlobalVarReferencingLocal) {
  OpPtr plan = MakeOp(OpKind::kGlobalVar);
  plan->var = vars_.Fresh("x");  // registered, but not a global
  ExpectViolation(analysis::VerifyPlan(*plan, Opts()), "global-var");
}

TEST_F(PlanVerifierTest, FnArityMismatch) {
  OpPtr plan = MakeOp(OpKind::kFnCall);
  plan->fn = core::CoreFn::kBoolean;
  plan->inputs.push_back(Global());
  plan->inputs.push_back(Global());
  ExpectViolation(analysis::VerifyPlan(*plan, Opts()), "fn-arity");
}

TEST_F(PlanVerifierTest, IfWithTwoInputs) {
  OpPtr plan = MakeOp(OpKind::kIf);
  plan->inputs.push_back(Global());
  plan->inputs.push_back(Global());
  ExpectViolation(analysis::VerifyPlan(*plan, Opts()), "op-arity");
}

TEST_F(PlanVerifierTest, SelectWithoutPredicate) {
  OpPtr select = MakeOp(OpKind::kSelect);
  select->inputs.push_back(FromItem(dot_, Global()));
  OpPtr plan = ToItem(std::move(select), FieldAcc(dot_));
  ExpectViolation(analysis::VerifyPlan(*plan, Opts()), "dep-plan");
}

TEST_F(PlanVerifierTest, MapFromItemWithoutField) {
  OpPtr plan = LegalPlan();
  plan->inputs[0]->inputs[0]->field = kInvalidSymbol;
  ExpectViolation(analysis::VerifyPlan(*plan, Opts()), "invalid-field");
}

TEST_F(PlanVerifierTest, ViolationIsAttributedToTheActiveScope) {
  OpPtr plan = LegalPlan();
  plan->dep->field = interner_.Intern("bogus");
  analysis::VerifyScope::ClearFiredTrail();
  Status st;
  {
    analysis::VerifyScope scope("optimize rule (test)");
    scope.MarkFired();
    st = analysis::VerifyPlan(*plan, Opts());
  }
  ExpectViolation(st, "field-def-use");
  EXPECT_NE(st.message().find("[in optimize rule (test)]"), std::string::npos)
      << st.message();
  EXPECT_NE(st.message().find("[after: optimize rule (test)]"),
            std::string::npos)
      << st.message();
  analysis::VerifyScope::ClearFiredTrail();
}

TEST_F(PlanVerifierTest, SuccessfulCheckpointClearsTheTrail) {
  OpPtr plan = LegalPlan();
  {
    analysis::VerifyScope scope("optimize rule (test)");
    scope.MarkFired();
    EXPECT_TRUE(analysis::VerifyPlan(*plan, Opts()).ok());
  }
  EXPECT_EQ(analysis::VerifyScope::FiredTrail(), "");
}

// ---- core verifier ---------------------------------------------------------

class CoreVerifierTest : public ::testing::Test {
 protected:
  CoreVerifierTest() { d_ = vars_.Global("d"); }

  core::VarTable vars_;
  core::VarId d_;
};

TEST_F(CoreVerifierTest, LegalExpressionPasses) {
  core::VarId x = vars_.Fresh("x");
  core::CoreExprPtr e = core::MakeFor(
      x, core::kNoVar, core::MakeStep(d_, Axis::kDescendant, NodeTest::AnyName()),
      nullptr, core::MakeStep(x, Axis::kChild, NodeTest::AnyName()));
  EXPECT_TRUE(analysis::VerifyCore(*e, vars_).ok());
  // Annotating with freshly derived properties must stay sound.
  core::AnnotateOdf(e.get(), vars_);
  EXPECT_TRUE(analysis::VerifyCore(*e, vars_).ok());
}

TEST_F(CoreVerifierTest, UnboundVariable) {
  core::VarId x = vars_.Fresh("x");  // registered but never bound
  core::CoreExprPtr e = core::MakeVar(x);
  ExpectViolation(analysis::VerifyCore(*e, vars_), "def-before-use");
}

TEST_F(CoreVerifierTest, UnregisteredVariable) {
  core::CoreExprPtr e = core::MakeVar(999);
  ExpectViolation(analysis::VerifyCore(*e, vars_), "var-range");
}

TEST_F(CoreVerifierTest, PositionalVariableOutsideItsBinder) {
  // let $y := (for $x at $p in $d return $x) return $p — $p escapes.
  core::VarId x = vars_.Fresh("x");
  core::VarId p = vars_.Fresh("p");
  core::VarId y = vars_.Fresh("y");
  core::CoreExprPtr loop = core::MakeFor(x, p, core::MakeVar(d_), nullptr,
                                         core::MakeVar(x));
  core::CoreExprPtr e =
      core::MakeLet(y, std::move(loop), core::MakeVar(p));
  ExpectViolation(analysis::VerifyCore(*e, vars_), "def-before-use");
}

TEST_F(CoreVerifierTest, DuplicateBinder) {
  core::VarId x = vars_.Fresh("x");
  core::CoreExprPtr e = core::MakeLet(
      x, core::MakeEmpty(),
      core::MakeLet(x, core::MakeEmpty(), core::MakeVar(x)));
  ExpectViolation(analysis::VerifyCore(*e, vars_), "duplicate-binder");
}

TEST_F(CoreVerifierTest, BinderRebindsAGlobal) {
  core::CoreExprPtr e =
      core::MakeLet(d_, core::MakeEmpty(), core::MakeVar(d_));
  ExpectViolation(analysis::VerifyCore(*e, vars_), "binder-is-global");
}

TEST_F(CoreVerifierTest, PositionalBinderSameAsLoopVariable) {
  core::VarId x = vars_.Fresh("x");
  core::CoreExprPtr e =
      core::MakeFor(x, x, core::MakeVar(d_), nullptr, core::MakeVar(x));
  ExpectViolation(analysis::VerifyCore(*e, vars_), "positional-binder");
}

TEST_F(CoreVerifierTest, WhereClauseOnANonLoop) {
  core::CoreExprPtr e = core::MakeEmpty();
  e->where = core::MakeEmpty();
  ExpectViolation(analysis::VerifyCore(*e, vars_), "core-arity");
}

TEST_F(CoreVerifierTest, LetWithOneChild) {
  core::VarId x = vars_.Fresh("x");
  auto e = std::make_unique<core::CoreExpr>(core::CoreKind::kLet);
  e->var = x;
  e->children.push_back(core::MakeEmpty());
  ExpectViolation(analysis::VerifyCore(*e, vars_), "core-arity");
}

TEST_F(CoreVerifierTest, CoreFnArityMismatch) {
  std::vector<core::CoreExprPtr> args;
  args.push_back(core::MakeVar(d_));
  args.push_back(core::MakeVar(d_));
  core::CoreExprPtr e = core::MakeFnCall(core::CoreFn::kNot, std::move(args));
  ExpectViolation(analysis::VerifyCore(*e, vars_), "fn-arity");
}

TEST_F(CoreVerifierTest, TooStrongOdfAnnotation) {
  // for $x in $d/descendant::* return $x/child::* — the paper's canonical
  // non-ordered shape (Q5): bindings are ancestor-related, so the child
  // steps interleave. A cached `ordered` claim is a rewrite bug.
  core::VarId x = vars_.Fresh("x");
  core::CoreExprPtr e = core::MakeFor(
      x, core::kNoVar, core::MakeStep(d_, Axis::kDescendant, NodeTest::AnyName()),
      nullptr, core::MakeStep(x, Axis::kChild, NodeTest::AnyName()));
  ASSERT_FALSE(core::ComputeOdf(*e, vars_, {}).ordered);
  e->odf_cache = core::kOdfCachePresent | core::kOdfCacheOrdered;
  ExpectViolation(analysis::VerifyCore(*e, vars_), "odf-cache-soundness");
  // The same annotation with the claim dropped is fine.
  e->odf_cache = core::kOdfCachePresent;
  EXPECT_TRUE(analysis::VerifyCore(*e, vars_).ok());
}

// ---- engine integration ----------------------------------------------------

TEST(EngineVerifyTest, VerifiedCompilationSucceedsOnRealQueries) {
  engine::EngineOptions eopts;
  eopts.verify_plans = true;
  engine::Engine e(eopts);
  const char* queries[] = {
      "$d//person[emailaddress]/name",
      "for $p in $d//person where $p/age return $p/name",
      "fn:count($d//a[b][c])",
  };
  for (const char* q : queries) {
    auto cq = e.Compile(q);
    EXPECT_TRUE(cq.ok()) << q << ": " << cq.status().ToString();
  }
}

TEST(EngineVerifyTest, VerifiedMultiOutputCompilationSucceeds) {
  engine::EngineOptions eopts;
  eopts.verify_plans = true;
  engine::Engine e(eopts);
  engine::CompileOptions copts;
  copts.multi_output_patterns = true;
  auto cq = e.Compile("for $p in $d//person return $p/name/text()", copts);
  EXPECT_TRUE(cq.ok()) << cq.status().ToString();
}

}  // namespace
}  // namespace xqtp
