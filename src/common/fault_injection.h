// Seeded fault injection: named failure sites compiled into the library
// (Debug builds by default, any build with -DXQTP_FAULT_INJECTION=1) that
// a test can arm one at a time. An armed site returns a tagged
// Status::Internal from the exact frame the macro sits in, driving the
// error through every layer above it — the sweep test
// (tests/fault_injection_test.cc) forces a failure at every registered
// site in turn and asserts a clean Status, no leaks (ASan), no lost
// workers (TSan), and a bit-identical non-injected re-run.
//
// Usage at a site (any function returning Status or Result<T>):
//   XQTP_FAULT_POINT("exec.evaluate");
//
// Usage in a test:
//   fault::ScopedFault f("exec.evaluate");   // arms; disarms on scope exit
//   ... run a query, expect Status::Internal tagged "[fault-injection]" ...
//
// Sites fire on the nth poll after arming (n = 1 by default), so a test
// can reach deeper occurrences of a repeatedly polled site. Every
// XQTP_FAULT_POINT name must appear in the sweep test's registry —
// tools/lint.py (rule fault-site-registered) enforces it.
#ifndef XQTP_COMMON_FAULT_INJECTION_H_
#define XQTP_COMMON_FAULT_INJECTION_H_

#include <string>
#include <vector>

#include "common/status.h"

// Fault points compile in when XQTP_FAULT_INJECTION is forced on the
// command line (the TSan CI leg builds Release with it) or, by default,
// whenever NDEBUG is off.
#if !defined(XQTP_FAULT_INJECTION) && !defined(NDEBUG)
#define XQTP_FAULT_INJECTION 1
#endif

namespace xqtp::fault {

/// True when fault points are compiled into this build. Tests skip the
/// injection sweep (rather than silently passing) when this is false.
bool Enabled();

/// Arms `site`: its fire_on_nth-th poll after this call returns the
/// injected error. Only one site is armed at a time; arming replaces any
/// previous arm. Thread-safe.
void Arm(const std::string& site, int64_t fire_on_nth = 1);

/// Disarms whatever is armed. Thread-safe.
void Disarm();

/// Polls of the armed site since Arm (fired or not). 0 when the armed
/// site was never reached — how the sweep test detects a dead registry
/// entry.
int64_t ArmedPollCount();

/// Total injected failures since process start.
int64_t InjectionCount();

/// The message prefix of every injected Status, for test assertions.
inline const char* kTag() { return "[fault-injection]"; }

/// RAII arm-then-disarm, the shape every test should use so a failing
/// assertion can never leave a site armed for the next test.
class ScopedFault {
 public:
  explicit ScopedFault(const std::string& site, int64_t fire_on_nth = 1) {
    Arm(site, fire_on_nth);
  }
  ~ScopedFault() { Disarm(); }
  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;
};

/// Called by XQTP_FAULT_POINT. Returns the injected error iff `site` is
/// armed and this poll is the fire_on_nth-th. Thread-safe; near-free when
/// nothing is armed (one relaxed atomic load).
[[nodiscard]]
Status Poll(const char* site);

}  // namespace xqtp::fault

#if XQTP_FAULT_INJECTION
#define XQTP_FAULT_POINT(site) XQTP_RETURN_NOT_OK(::xqtp::fault::Poll(site))
#else
#define XQTP_FAULT_POINT(site) \
  do {                         \
  } while (false)
#endif

#endif  // XQTP_COMMON_FAULT_INJECTION_H_
