#include <gtest/gtest.h>

#include "core/typing.h"

namespace xqtp::core {
namespace {

class TypingTest : public ::testing::Test {
 protected:
  StringInterner interner_;
  VarTable vars_;
  TypeEnv env_;

  AbstractType TypeOf(const CoreExprPtr& e) {
    return InferType(*e, vars_, env_);
  }
};

TEST_F(TypingTest, Literals) {
  EXPECT_EQ(TypeOf(MakeLiteral(xdm::Item(static_cast<int64_t>(1)))),
            AbstractType::kNumeric);
  EXPECT_EQ(TypeOf(MakeLiteral(xdm::Item(1.5))), AbstractType::kNumeric);
  EXPECT_EQ(TypeOf(MakeLiteral(xdm::Item(true))), AbstractType::kBoolean);
  EXPECT_EQ(TypeOf(MakeLiteral(xdm::Item(std::string("s")))),
            AbstractType::kString);
}

TEST_F(TypingTest, StepsAndDdoAreNodes) {
  VarId dot = vars_.Fresh("dot");
  auto step = MakeStep(dot, Axis::kChild, NodeTest::AnyName());
  EXPECT_EQ(TypeOf(step), AbstractType::kNodes);
  std::vector<CoreExprPtr> args;
  auto ddo = MakeDdo(MakeStep(dot, Axis::kChild, NodeTest::AnyName()));
  EXPECT_EQ(TypeOf(ddo), AbstractType::kNodes);
}

TEST_F(TypingTest, Functions) {
  VarId dot = vars_.Fresh("dot");
  auto mk = [&](CoreFn fn) {
    std::vector<CoreExprPtr> args;
    args.push_back(MakeStep(dot, Axis::kChild, NodeTest::AnyName()));
    return MakeFnCall(fn, std::move(args));
  };
  EXPECT_EQ(TypeOf(mk(CoreFn::kCount)), AbstractType::kNumeric);
  EXPECT_EQ(TypeOf(mk(CoreFn::kBoolean)), AbstractType::kBoolean);
  EXPECT_EQ(TypeOf(mk(CoreFn::kExists)), AbstractType::kBoolean);
  EXPECT_EQ(TypeOf(mk(CoreFn::kRoot)), AbstractType::kNodes);
}

TEST_F(TypingTest, GlobalsDefaultToNodes) {
  VarId g = vars_.Global("d");
  EXPECT_EQ(TypeOf(MakeVar(g)), AbstractType::kNodes);
}

TEST_F(TypingTest, LetAndForPropagate) {
  VarId g = vars_.Global("d");
  VarId x = vars_.Fresh("x");
  // let $x := fn:count($d) return $x  : numeric
  std::vector<CoreExprPtr> args;
  args.push_back(MakeVar(g));
  auto e = MakeLet(x, MakeFnCall(CoreFn::kCount, std::move(args)), MakeVar(x));
  EXPECT_EQ(TypeOf(e), AbstractType::kNumeric);

  // for $y in $d return $y : nodes
  VarId y = vars_.Fresh("y");
  auto f = MakeFor(y, kNoVar, MakeVar(g), nullptr, MakeVar(y));
  EXPECT_EQ(InferType(*f, vars_, env_), AbstractType::kNodes);
}

TEST_F(TypingTest, PositionalVarIsNumeric) {
  VarId g = vars_.Global("d");
  VarId x = vars_.Fresh("x");
  VarId p = vars_.Fresh("p");
  auto f = MakeFor(x, p, MakeVar(g), nullptr, MakeVar(p));
  EXPECT_EQ(InferType(*f, vars_, env_), AbstractType::kNumeric);
}

TEST_F(TypingTest, CompareAndLogicAreBoolean) {
  auto c = MakeCompare(xdm::CompareOp::kEq,
                       MakeLiteral(xdm::Item(static_cast<int64_t>(1))),
                       MakeLiteral(xdm::Item(static_cast<int64_t>(2))));
  EXPECT_EQ(TypeOf(c), AbstractType::kBoolean);
  auto a = MakeAnd(MakeLiteral(xdm::Item(true)), MakeLiteral(xdm::Item(false)));
  EXPECT_EQ(TypeOf(a), AbstractType::kBoolean);
}

TEST_F(TypingTest, SequenceJoins) {
  std::vector<CoreExprPtr> items;
  items.push_back(MakeLiteral(xdm::Item(static_cast<int64_t>(1))));
  items.push_back(MakeLiteral(xdm::Item(2.0)));
  EXPECT_EQ(TypeOf(MakeSequence(std::move(items))), AbstractType::kNumeric);

  std::vector<CoreExprPtr> mixed;
  mixed.push_back(MakeLiteral(xdm::Item(static_cast<int64_t>(1))));
  mixed.push_back(MakeLiteral(xdm::Item(std::string("s"))));
  EXPECT_EQ(TypeOf(MakeSequence(std::move(mixed))), AbstractType::kUnknown);
}

TEST_F(TypingTest, DefinitelyPredicates) {
  EXPECT_TRUE(DefinitelyNotNumeric(AbstractType::kNodes));
  EXPECT_TRUE(DefinitelyNotNumeric(AbstractType::kBoolean));
  EXPECT_TRUE(DefinitelyNotNumeric(AbstractType::kString));
  EXPECT_FALSE(DefinitelyNotNumeric(AbstractType::kNumeric));
  EXPECT_FALSE(DefinitelyNotNumeric(AbstractType::kUnknown));
  EXPECT_TRUE(DefinitelyNumeric(AbstractType::kNumeric));
  EXPECT_FALSE(DefinitelyNumeric(AbstractType::kUnknown));
}

}  // namespace
}  // namespace xqtp::core
