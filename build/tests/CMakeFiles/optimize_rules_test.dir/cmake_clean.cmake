file(REMOVE_RECURSE
  "CMakeFiles/optimize_rules_test.dir/optimize_rules_test.cc.o"
  "CMakeFiles/optimize_rules_test.dir/optimize_rules_test.cc.o.d"
  "optimize_rules_test"
  "optimize_rules_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimize_rules_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
