#include "algebra/optimize.h"

#include <string>
#include <unordered_map>
#include <unordered_set>

#include "analysis/equiv_checker.h"
#include "analysis/plan_props.h"
#include "analysis/plan_verifier.h"
#include "common/fault_injection.h"
#include "exec/governor.h"

namespace xqtp::algebra {

namespace {

using FieldSet = std::unordered_set<Symbol>;

/// Over-approximation of the ambient-tuple fields a (dependent) plan may
/// read: every IN#field plus every TupleTreePattern input field.
void CollectReads(const Op& op, FieldSet* out) {
  if (op.kind == OpKind::kFieldAccess) out->insert(op.field);
  if (op.kind == OpKind::kTupleTreePattern) out->insert(op.tp.input_field);
  for (const OpPtr& in : op.inputs) CollectReads(*in, out);
  if (op.dep) CollectReads(*op.dep, out);
  if (op.dep2) CollectReads(*op.dep2, out);
}

FieldSet ReadsOf(const Op& op) {
  FieldSet s;
  CollectReads(op, &s);
  return s;
}

/// True iff every main-path step of the pattern is child-like (child /
/// attribute / self). Bindings of such a pattern from a single context
/// node live in pairwise-disjoint subtrees, so the cascaded (per-binding)
/// order equals document order and merging two patterns (rule (d)) cannot
/// change the result. Descendant steps produce ancestor-related bindings,
/// for which merging is only sound under an enclosing ddo — this is
/// exactly what distinguishes Q1a (ddo present, merge allowed) from Q5
/// (no ddo, the two patterns must stay separate).
bool MainPathChildLike(const pattern::TreePattern& tp) {
  for (const pattern::PatternNode* n = tp.root.get(); n != nullptr;
       n = n->next.get()) {
    switch (n->axis) {
      case Axis::kChild:
      case Axis::kAttribute:
      case Axis::kSelf:
        break;
      default:
        return false;
    }
  }
  return true;
}

void CollectAnnotatedSteps(pattern::PatternNode* n,
                           std::vector<pattern::PatternNode*>* out) {
  if (n == nullptr) return;
  if (n->output != kInvalidSymbol) out->push_back(n);
  for (const pattern::PatternNodePtr& p : n->predicates) {
    CollectAnnotatedSteps(p.get(), out);
  }
  CollectAnnotatedSteps(n->next.get(), out);
}

/// Restores output-field uniqueness after a pattern merge (rules (d) and
/// (d')): rule (c) canonicalizes each cascaded pattern's output to its
/// MapFromItem field, so merging often stacks two steps annotated with the
/// same name. In the cascade the deeper pattern's binding overwrote the
/// field, so the deepest annotated step keeps the public name; shallower
/// duplicates stay annotated (the multi-output enumeration semantics need
/// them) but move to reserved "%merged" names no reader can reference.
void DedupOutputFields(pattern::TreePattern* tp, StringInterner* interner) {
  std::vector<pattern::PatternNode*> annotated;
  CollectAnnotatedSteps(tp->root.get(), &annotated);
  FieldSet used;
  used.insert(tp->input_field);
  for (const pattern::PatternNode* n : annotated) used.insert(n->output);
  FieldSet seen;
  for (auto it = annotated.rbegin(); it != annotated.rend(); ++it) {
    if (seen.insert((*it)->output).second) continue;
    int k = 0;
    Symbol fresh;
    do {
      fresh = interner->Intern("%merged" + std::to_string(k++));
    } while (used.count(fresh) != 0);
    used.insert(fresh);
    (*it)->output = fresh;
  }
}

/// True iff field `f` of every tuple produced by `op` is a single item —
/// the precondition for collapsing a MapFromItem/MapToItem round trip.
bool SingletonField(const Op& op, Symbol f) {
  switch (op.kind) {
    case OpKind::kMapFromItem:
      return op.field == f && op.dep != nullptr &&
             op.dep->kind == OpKind::kInputItem;
    case OpKind::kTupleTreePattern: {
      for (Symbol s : op.tp.OutputFields()) {
        if (s == f) return true;  // pattern bindings are single nodes
      }
      return SingletonField(*op.inputs[0], f);
    }
    case OpKind::kSelect:
      return SingletonField(*op.inputs[0], f);
    default:
      return false;
  }
}

class Optimizer {
 public:
  Optimizer(StringInterner* interner, const OptimizeOptions& opts)
      : interner_(interner), opts_(opts) {}

  void RunRound(OpPtr* plan, bool* changed) {
    Rewrite(plan, FieldSet{}, /*odd_ctx=*/false, changed);
  }

 private:
  Symbol FreshField() {
    std::string name = counter_ == 0 ? "out" : "out" + std::to_string(counter_);
    ++counter_;
    return interner_->Intern(name);
  }

  /// True if `op` produces at most one tuple whose pattern-context field is
  /// a singleton — the precondition of rule (f).
  static bool ProducesAtMostOneTuple(const Op& op) {
    switch (op.kind) {
      case OpKind::kInputTuple:
        return true;
      case OpKind::kMapFromItem:
        // One tuple per item of the input; globals are singleton documents
        // by the engine binding contract, constants are single items.
        return op.inputs[0]->kind == OpKind::kGlobalVar ||
               op.inputs[0]->kind == OpKind::kConst;
      default:
        return false;
    }
  }

  /// Recognizes the shape boolean(MapToItem{IN#o}(TTP[IN#in/p{o}](IN)))
  /// required for a conjunct of rule (e). Returns the TTP operator.
  static Op* MatchPredicateTerm(Op* term, Symbol required_input) {
    if (term->kind != OpKind::kFnCall || term->fn != core::CoreFn::kBoolean ||
        term->inputs.size() != 1) {
      return nullptr;
    }
    Op* map = term->inputs[0].get();
    if (map->kind != OpKind::kMapToItem ||
        map->dep->kind != OpKind::kFieldAccess) {
      return nullptr;
    }
    Op* ttp = map->inputs[0].get();
    if (ttp->kind != OpKind::kTupleTreePattern ||
        ttp->inputs[0]->kind != OpKind::kInputTuple) {
      return nullptr;
    }
    if (ttp->tp.input_field != required_input) return nullptr;
    // The term's value is the EBV of the pattern's output bindings.
    std::vector<Symbol> outs = ttp->tp.OutputFields();
    if (outs.size() != 1 || outs[0] != map->dep->field) return nullptr;
    return ttp;
  }

  static void FlattenConjunction(Op* pred, std::vector<Op*>* terms) {
    if (pred->kind == OpKind::kAnd) {
      FlattenConjunction(pred->inputs[0].get(), terms);
      FlattenConjunction(pred->inputs[1].get(), terms);
    } else {
      terms->push_back(pred);
    }
  }

  /// One bottom-up pass. `live` holds the ambient-tuple fields that may be
  /// read by operators above `*op` in the same tuple pipeline; `odd_ctx`
  /// ("order/duplicate insensitive") is true when an enclosing operator
  /// (fs:ddo, an effective-boolean-value consumer, ...) makes the order
  /// and multiplicity of this sub-plan's result unobservable.
  void Rewrite(OpPtr* op, const FieldSet& live, bool odd_ctx, bool* changed) {
    Op& n = **op;

    // ---- recurse with the right liveness/sensitivity for each input ----
    switch (n.kind) {
      case OpKind::kMapToItem: {
        FieldSet inner = ReadsOf(*n.dep);
        Rewrite(&n.inputs[0], inner, odd_ctx, changed);
        // Rule (b) must see the TreeJoin before rule (a) (which would fire
        // during recursion into the dependent plan) consumes it.
        bool rule_b_applies = n.dep->kind == OpKind::kTreeJoin &&
                              n.dep->inputs[0]->kind == OpKind::kFieldAccess &&
                              AxisAllowedInPattern(n.dep->axis);
        if (!rule_b_applies) Rewrite(&n.dep, FieldSet{}, odd_ctx, changed);
        break;
      }
      case OpKind::kSelect: {
        FieldSet inner = live;
        FieldSet pred_reads = ReadsOf(*n.dep);
        inner.insert(pred_reads.begin(), pred_reads.end());
        Rewrite(&n.inputs[0], inner, odd_ctx, changed);
        // The predicate is consumed through its EBV: fully insensitive.
        Rewrite(&n.dep, FieldSet{}, /*odd_ctx=*/true, changed);
        break;
      }
      case OpKind::kTupleTreePattern: {
        FieldSet inner = live;
        for (Symbol s : n.tp.OutputFields()) inner.erase(s);
        inner.insert(n.tp.input_field);
        Rewrite(&n.inputs[0], inner, odd_ctx, changed);
        break;
      }
      case OpKind::kMapFromItem:
        // The input is an item plan; tuple pipelines inside it are rooted
        // at their own sources.
        Rewrite(&n.inputs[0], FieldSet{}, odd_ctx, changed);
        if (n.dep) Rewrite(&n.dep, FieldSet{}, odd_ctx, changed);
        break;
      case OpKind::kDdo:
        Rewrite(&n.inputs[0], FieldSet{}, /*odd_ctx=*/true, changed);
        break;
      case OpKind::kFnCall: {
        bool arg_insensitive = n.fn == core::CoreFn::kBoolean ||
                               n.fn == core::CoreFn::kNot ||
                               n.fn == core::CoreFn::kEmpty ||
                               n.fn == core::CoreFn::kExists;
        for (OpPtr& in : n.inputs) {
          Rewrite(&in, FieldSet{}, arg_insensitive, changed);
        }
        break;
      }
      case OpKind::kCompare:
      case OpKind::kAnd:
      case OpKind::kOr:
        // Existential / EBV consumers.
        for (OpPtr& in : n.inputs) {
          Rewrite(&in, FieldSet{}, /*odd_ctx=*/true, changed);
        }
        break;
      case OpKind::kForEach:
        Rewrite(&n.inputs[0], FieldSet{}, /*odd_ctx=*/false, changed);
        if (n.dep) Rewrite(&n.dep, FieldSet{}, odd_ctx, changed);
        if (n.dep2) Rewrite(&n.dep2, FieldSet{}, /*odd_ctx=*/true, changed);
        break;
      default:
        for (OpPtr& in : n.inputs) {
          Rewrite(&in, FieldSet{}, /*odd_ctx=*/false, changed);
        }
        if (n.dep) Rewrite(&n.dep, FieldSet{}, /*odd_ctx=*/false, changed);
        if (n.dep2) Rewrite(&n.dep2, FieldSet{}, /*odd_ctx=*/false, changed);
        break;
    }

    // ---- apply rules at this node ----
    // Rule (b): MapToItem{TreeJoin[s](IN#in)}(Op). Tried before (a).
    if (n.kind == OpKind::kMapToItem && n.dep->kind == OpKind::kTreeJoin &&
        n.dep->inputs[0]->kind == OpKind::kFieldAccess &&
        AxisAllowedInPattern(n.dep->axis)) {
      analysis::VerifyScope scope("optimize rule (b)");
      scope.MarkFired();
      Symbol in_field = n.dep->inputs[0]->field;
      Symbol out = FreshField();
      OpPtr ttp = MakeOp(OpKind::kTupleTreePattern);
      ttp->tp = pattern::MakeSingleStep(in_field, n.dep->axis, n.dep->test, out);
      ttp->inputs.push_back(std::move(n.inputs[0]));
      OpPtr access = MakeOp(OpKind::kFieldAccess);
      access->field = out;
      n.dep = std::move(access);
      n.inputs[0] = std::move(ttp);
      *changed = true;
    }

    // Rule (a): a remaining TreeJoin[s](IN#in) anywhere in a dependent
    // plan becomes MapToItem{IN#out}(TTP[IN#in/s{out}](IN)).
    if (n.kind == OpKind::kTreeJoin &&
        n.inputs[0]->kind == OpKind::kFieldAccess &&
        AxisAllowedInPattern(n.axis)) {
      analysis::VerifyScope scope("optimize rule (a)");
      scope.MarkFired();
      Symbol in_field = n.inputs[0]->field;
      Symbol out = FreshField();
      OpPtr ttp = MakeOp(OpKind::kTupleTreePattern);
      ttp->tp = pattern::MakeSingleStep(in_field, n.axis, n.test, out);
      ttp->inputs.push_back(MakeOp(OpKind::kInputTuple));
      OpPtr map = MakeOp(OpKind::kMapToItem);
      OpPtr access = MakeOp(OpKind::kFieldAccess);
      access->field = out;
      map->dep = std::move(access);
      map->inputs.push_back(std::move(ttp));
      *op = std::move(map);
      *changed = true;
      return;
    }

    // Rule (c): MapFromItem{[o1 : IN]}(MapToItem{IN#o2}(TTP[p{o2}](Op)))
    // -> TTP[p{o1}](Op).
    if (n.kind == OpKind::kMapFromItem && n.dep &&
        n.dep->kind == OpKind::kInputItem &&
        n.inputs[0]->kind == OpKind::kMapToItem) {
      Op& map = *n.inputs[0];
      if (map.dep->kind == OpKind::kFieldAccess &&
          map.inputs[0]->kind == OpKind::kTupleTreePattern) {
        Op& ttp = *map.inputs[0];
        std::vector<Symbol> outs = ttp.tp.OutputFields();
        if (outs.size() == 1 && outs[0] == map.dep->field) {
          analysis::VerifyScope scope("optimize rule (c)");
          scope.MarkFired();
          pattern::RenameOutput(&ttp.tp, outs[0], n.field);
          OpPtr repl = std::move(n.inputs[0]->inputs[0]);
          *op = std::move(repl);
          *changed = true;
          return;
        }
      }
    }

    // Clean-up (the paper's unlisted robustness rules): a
    // MapFromItem{[f : IN]}(MapToItem{IN#f}(Op)) round trip re-packages
    // each tuple's singleton field f as a fresh tuple — the identity on
    // the tuple stream (up to unobserved extra fields) whenever f is a
    // singleton in every tuple of Op. This exposes Select/TTP stacks to
    // rules (d) and (e), e.g. in the paper's Q2 plan.
    if (n.kind == OpKind::kMapFromItem && n.dep &&
        n.dep->kind == OpKind::kInputItem &&
        n.inputs[0]->kind == OpKind::kMapToItem) {
      Op& map = *n.inputs[0];
      if (map.dep->kind == OpKind::kFieldAccess &&
          map.dep->field == n.field &&
          SingletonField(*map.inputs[0], n.field)) {
        analysis::VerifyScope scope("optimize clean-up (map round-trip)");
        scope.MarkFired();
        OpPtr repl = std::move(map.inputs[0]);
        *op = std::move(repl);
        *changed = true;
        return;
      }
    }

    // Rule (d): merge consecutive TupleTreePatterns along the main path.
    // The merged operator enumerates bindings in document order of the
    // final output, while the cascade runs in inner-binding-major order —
    // the two coincide only if the inner pattern's bindings are pairwise
    // unrelated (all child-like steps), or if an enclosing ddo masks the
    // difference. Without either, the merge would incorrectly turn query
    // Q5 into Q1a.
    if (n.kind == OpKind::kTupleTreePattern &&
        n.inputs[0]->kind == OpKind::kTupleTreePattern &&
        (odd_ctx || MainPathChildLike(n.inputs[0]->tp))) {
      Op& inner = *n.inputs[0];
      if (inner.tp.SingleOutputAtExtractionPoint()) {
        Symbol inner_out = inner.tp.OutputFields()[0];
        // The inner binding disappears after the merge; that is fine if no
        // ancestor reads it, or if the outer pattern re-defines a field of
        // the same name (its outputs overwrite input fields, so readers
        // above never saw the inner binding anyway).
        bool outer_shadows = false;
        for (Symbol s : n.tp.OutputFields()) {
          if (s == inner_out) outer_shadows = true;
        }
        if (n.tp.input_field == inner_out &&
            (live.count(inner_out) == 0 || outer_shadows)) {
          analysis::VerifyScope scope("optimize rule (d)");
          scope.MarkFired();
          pattern::TreePattern merged = inner.tp.Clone();
          pattern::AppendPath(&merged, std::move(n.tp));
          DedupOutputFields(&merged, interner_);
          inner.tp = std::move(merged);
          OpPtr repl = std::move(n.inputs[0]);
          *op = std::move(repl);
          *changed = true;
          return;
        }
      }
    }

    // Rule (d') — the multi-variable extension: when (d)'s order guard
    // blocked the merge (or the intermediate binding is still read),
    // merge into a multi-output pattern instead. The inner binding stays
    // annotated, so the operator returns (inner, outer) binding pairs in
    // root-to-leaf lexical order — exactly the cascade's order and
    // multiplicity.
    if (opts_.multi_output_patterns &&
        n.kind == OpKind::kTupleTreePattern &&
        n.inputs[0]->kind == OpKind::kTupleTreePattern) {
      Op& inner = *n.inputs[0];
      const pattern::PatternNode* inner_ep = inner.tp.ExtractionPoint();
      if (inner_ep != nullptr && inner_ep->output != kInvalidSymbol &&
          !n.tp.HasPositionalSteps() && !inner.tp.HasPositionalSteps()) {
        Symbol inner_out = inner_ep->output;
        if (n.tp.input_field == inner_out) {
          analysis::VerifyScope scope("optimize rule (d')");
          scope.MarkFired();
          pattern::TreePattern merged = inner.tp.Clone();
          pattern::AppendPathKeepOutput(&merged, std::move(n.tp));
          DedupOutputFields(&merged, interner_);
          inner.tp = std::move(merged);
          OpPtr repl = std::move(n.inputs[0]);
          *op = std::move(repl);
          *changed = true;
          return;
        }
      }
    }

    // Rule (e): fold a conjunction of pure pattern-existence predicates
    // into predicate branches of the pattern below.
    if (n.kind == OpKind::kSelect &&
        n.inputs[0]->kind == OpKind::kTupleTreePattern) {
      Op& inner = *n.inputs[0];
      if (inner.tp.SingleOutputAtExtractionPoint()) {
        Symbol out = inner.tp.OutputFields()[0];
        std::vector<Op*> terms;
        FlattenConjunction(n.dep.get(), &terms);
        bool all_match = !terms.empty();
        std::vector<Op*> pred_ttps;
        for (Op* t : terms) {
          Op* ttp = MatchPredicateTerm(t, out);
          if (ttp == nullptr) {
            all_match = false;
            break;
          }
          pred_ttps.push_back(ttp);
        }
        if (all_match) {
          analysis::VerifyScope scope("optimize rule (e)");
          scope.MarkFired();
          for (Op* p : pred_ttps) {
            pattern::AttachPredicate(&inner.tp, std::move(p->tp));
          }
          OpPtr repl = std::move(n.inputs[0]);
          *op = std::move(repl);
          *changed = true;
          return;
        }
      }
    }

    // Rule (f): drop fs:ddo over a pattern whose semantics already
    // coincide with XPath (single output at the extraction point, at most
    // one input tuple).
    if (n.kind == OpKind::kDdo && n.inputs[0]->kind == OpKind::kMapToItem) {
      Op& map = *n.inputs[0];
      if (map.dep->kind == OpKind::kFieldAccess &&
          map.inputs[0]->kind == OpKind::kTupleTreePattern) {
        Op& ttp = *map.inputs[0];
        if (ttp.tp.SingleOutputAtExtractionPoint() &&
            ttp.tp.OutputFields()[0] == map.dep->field &&
            ProducesAtMostOneTuple(*ttp.inputs[0])) {
          analysis::VerifyScope scope("optimize rule (f)");
          scope.MarkFired();
          OpPtr repl = std::move(n.inputs[0]);
          *op = std::move(repl);
          *changed = true;
          return;
        }
      }
    }

    // Rule (g) — the positional extension: a positional loop that merely
    // indexes a single-step pattern's output,
    //   ForEach[$x at $p]{$x}where{$p = k}(
    //       MapToItem{IN#o}(TupleTreePattern[IN#in/step{o}](Op)))
    // becomes MapToItem{IN#o}(TupleTreePattern[IN#in/step[k]{o}](Op)).
    // The pattern must be a bare single step: the loop's position counts
    // the step's raw matches, which is what the pattern-level constraint
    // expresses.
    if (opts_.positional_patterns && n.kind == OpKind::kForEach &&
        n.pos_var != core::kNoVar && n.dep != nullptr &&
        n.dep->kind == OpKind::kScopedVar && n.dep->var == n.var &&
        n.dep2 != nullptr && n.dep2->kind == OpKind::kCompare &&
        n.dep2->cmp_op == xdm::CompareOp::kEq &&
        n.inputs[0]->kind == OpKind::kMapToItem) {
      // Extract the constant position from "$p = k" (either operand
      // order).
      const Op* lhs = n.dep2->inputs[0].get();
      const Op* rhs = n.dep2->inputs[1].get();
      if (lhs->kind != OpKind::kScopedVar) std::swap(lhs, rhs);
      int64_t k = 0;
      if (lhs->kind == OpKind::kScopedVar && lhs->var == n.pos_var &&
          rhs->kind == OpKind::kConst && rhs->literal.IsInteger() &&
          rhs->literal.integer() >= 1) {
        k = rhs->literal.integer();
      }
      Op& map = *n.inputs[0];
      if (k > 0 && map.dep->kind == OpKind::kFieldAccess &&
          map.inputs[0]->kind == OpKind::kTupleTreePattern) {
        Op& ttp = *map.inputs[0];
        std::vector<Symbol> outs = ttp.tp.OutputFields();
        if (ttp.tp.StepCount() == 1 && ttp.tp.root->position == 0 &&
            ttp.tp.root->predicates.empty() && outs.size() == 1 &&
            outs[0] == map.dep->field) {
          analysis::VerifyScope scope("optimize rule (g)");
          scope.MarkFired();
          ttp.tp.root->position = static_cast<int>(k);
          // The map now yields the position-filtered sequence — any ODF
          // seed stamped for the unfiltered value is stale.
          map.odf_seed = 0;
          OpPtr repl = std::move(n.inputs[0]);
          *op = std::move(repl);
          *changed = true;
          return;
        }
      }
    }

    // Clean-up: re-root a dependent tuple pipeline. A MapToItem whose
    // dependent plan is itself a MapToItem over a per-tuple pipeline
    // rooted at IN,
    //   MapToItem{MapToItem{d}(P(IN))}(Op)
    // evaluates P once per tuple of Op and concatenates — identical to
    // running the pipeline over Op directly:
    //   MapToItem{d}(P(Op)).
    // (TupleTreePattern and Select both process tuples independently and
    // preserve their order.) This exposes the inner pattern to rules (c)
    // and (d).
    if (n.kind == OpKind::kMapToItem && n.dep->kind == OpKind::kMapToItem) {
      // Walk the dependent pipeline down to its IN root.
      Op* bottom = n.dep.get();
      while (bottom->inputs.size() == 1 &&
             (bottom->kind == OpKind::kMapToItem ||
              bottom->kind == OpKind::kTupleTreePattern ||
              bottom->kind == OpKind::kSelect) &&
             bottom->inputs[0]->kind != OpKind::kInputTuple) {
        bottom = bottom->inputs[0].get();
      }
      bool pipeline_ok =
          bottom->inputs.size() == 1 &&
          bottom->inputs[0]->kind == OpKind::kInputTuple &&
          (bottom->kind == OpKind::kTupleTreePattern ||
           bottom->kind == OpKind::kSelect);
      if (pipeline_ok) {
        analysis::VerifyScope scope("optimize clean-up (pipeline re-root)");
        scope.MarkFired();
        // The spine moves from a per-tuple dependent position to the full
        // stream: its per-evaluation ODF seeds no longer describe it.
        for (Op* s = n.dep.get();; s = s->inputs[0].get()) {
          s->odf_seed = 0;
          if (s == bottom) break;
        }
        bottom->inputs[0] = std::move(n.inputs[0]);
        OpPtr repl = std::move(n.dep);
        *op = std::move(repl);
        *changed = true;
        return;
      }
    }

    // Clean-up: MapToItem{IN#f}(MapFromItem{[f : IN]}(itemplan)) is the
    // identity on item plans.
    if (n.kind == OpKind::kMapToItem &&
        n.dep->kind == OpKind::kFieldAccess &&
        n.inputs[0]->kind == OpKind::kMapFromItem) {
      Op& from = *n.inputs[0];
      if (from.dep && from.dep->kind == OpKind::kInputItem &&
          from.field == n.dep->field) {
        analysis::VerifyScope scope("optimize clean-up (map identity)");
        scope.MarkFired();
        OpPtr repl = std::move(from.inputs[0]);
        *op = std::move(repl);
        *changed = true;
        return;
      }
    }
  }

  StringInterner* interner_;
  const OptimizeOptions& opts_;
  int counter_ = 0;
};

/// Canonical field renaming: deterministic walk; the first distinct field
/// becomes "dot", then "out", "out1", "out2", ...
class FieldCanonicalizer {
 public:
  explicit FieldCanonicalizer(StringInterner* interner)
      : interner_(interner) {}

  void Run(Op* plan) {
    Walk(plan);
  }

 private:
  Symbol Rename(Symbol s) {
    if (s == kInvalidSymbol) return s;
    auto it = map_.find(s);
    if (it != map_.end()) return it->second;
    std::string name = next_ == 0   ? "dot"
                       : next_ == 1 ? "out"
                                    : "out" + std::to_string(next_ - 1);
    ++next_;
    Symbol fresh = interner_->Intern(name);
    map_[s] = fresh;
    return fresh;
  }

  void RenamePattern(pattern::PatternNode* n) {
    n->output = Rename(n->output);
    for (auto& p : n->predicates) RenamePattern(p.get());
    if (n->next) RenamePattern(n->next.get());
  }

  void Walk(Op* op) {
    for (OpPtr& in : op->inputs) Walk(in.get());
    if (op->kind == OpKind::kMapFromItem) op->field = Rename(op->field);
    if (op->kind == OpKind::kFieldAccess) op->field = Rename(op->field);
    if (op->kind == OpKind::kTupleTreePattern) {
      op->tp.input_field = Rename(op->tp.input_field);
      if (op->tp.root) RenamePattern(op->tp.root.get());
    }
    if (op->dep) Walk(op->dep.get());
    if (op->dep2) Walk(op->dep2.get());
  }

  StringInterner* interner_;
  std::unordered_map<Symbol, Symbol> map_;
  int next_ = 0;
};

/// Property-justified rewrites, run between structural fixpoints on a
/// fact map inferred over the whole plan (analysis/plan_props.h):
///
///  (p1) Ddo elimination — fs:ddo(Op) -> Op when the input's facts prove
///       the ddo is the identity (ordered, duplicate-free, and all-nodes
///       or at most one item). Strictly generalizes rule (f): the facts
///       prove cases (f)'s syntactic guard cannot see, e.g. descendant
///       patterns over a singleton context, or chained contexts whose
///       subtree intervals are provably disjoint.
///  (p2) annotation pruning — drop a non-extraction-point output
///       annotation no ancestor reads, when order and multiplicity
///       changes are unobservable (odd context) or provably absent: the
///       dropped binding is a fixed-distance child-like ancestor of a
///       deeper annotated binding (an inferred functional dependency), so
///       row count is preserved exactly, and a child-like main path over
///       a singleton per-tuple context keeps the projected row order.
///
/// p1 removes operators without allocating, so the fact map (keyed by
/// operator identity) stays valid across firings; a p2 firing changes the
/// pattern's row multiset, so the pass stops after it and the driver
/// re-infers on the next round.
class PropertyPass {
 public:
  explicit PropertyPass(const analysis::PlanProps& props) : props_(props) {}

  void Run(OpPtr* plan, bool* changed) {
    Rewrite(plan, FieldSet{}, /*odd_ctx=*/false, changed);
  }

 private:
  /// Recursion mirrors Optimizer::Rewrite's liveness / order-sensitivity
  /// threading exactly.
  void Rewrite(OpPtr* op, const FieldSet& live, bool odd_ctx, bool* changed) {
    if (stop_) return;
    Op& n = **op;
    switch (n.kind) {
      case OpKind::kMapToItem: {
        FieldSet inner = ReadsOf(*n.dep);
        Rewrite(&n.inputs[0], inner, odd_ctx, changed);
        Rewrite(&n.dep, FieldSet{}, odd_ctx, changed);
        break;
      }
      case OpKind::kSelect: {
        FieldSet inner = live;
        FieldSet pred_reads = ReadsOf(*n.dep);
        inner.insert(pred_reads.begin(), pred_reads.end());
        Rewrite(&n.inputs[0], inner, odd_ctx, changed);
        Rewrite(&n.dep, FieldSet{}, /*odd_ctx=*/true, changed);
        break;
      }
      case OpKind::kTupleTreePattern: {
        PruneAnnotations(&n, live, odd_ctx, changed);
        if (stop_) return;
        FieldSet inner = live;
        for (Symbol s : n.tp.OutputFields()) inner.erase(s);
        inner.insert(n.tp.input_field);
        Rewrite(&n.inputs[0], inner, odd_ctx, changed);
        break;
      }
      case OpKind::kMapFromItem:
        Rewrite(&n.inputs[0], FieldSet{}, odd_ctx, changed);
        if (n.dep) Rewrite(&n.dep, FieldSet{}, odd_ctx, changed);
        break;
      case OpKind::kDdo:
        Rewrite(&n.inputs[0], FieldSet{}, /*odd_ctx=*/true, changed);
        break;
      case OpKind::kFnCall: {
        bool arg_insensitive = n.fn == core::CoreFn::kBoolean ||
                               n.fn == core::CoreFn::kNot ||
                               n.fn == core::CoreFn::kEmpty ||
                               n.fn == core::CoreFn::kExists;
        for (OpPtr& in : n.inputs) {
          Rewrite(&in, FieldSet{}, arg_insensitive, changed);
        }
        break;
      }
      case OpKind::kCompare:
      case OpKind::kAnd:
      case OpKind::kOr:
        for (OpPtr& in : n.inputs) {
          Rewrite(&in, FieldSet{}, /*odd_ctx=*/true, changed);
        }
        break;
      case OpKind::kForEach:
        Rewrite(&n.inputs[0], FieldSet{}, /*odd_ctx=*/false, changed);
        if (n.dep) Rewrite(&n.dep, FieldSet{}, odd_ctx, changed);
        if (n.dep2) Rewrite(&n.dep2, FieldSet{}, /*odd_ctx=*/true, changed);
        break;
      default:
        for (OpPtr& in : n.inputs) {
          Rewrite(&in, FieldSet{}, /*odd_ctx=*/false, changed);
        }
        if (n.dep) Rewrite(&n.dep, FieldSet{}, /*odd_ctx=*/false, changed);
        if (n.dep2) Rewrite(&n.dep2, FieldSet{}, /*odd_ctx=*/false, changed);
        break;
    }
    if (stop_) return;

    // Rule (p1).
    if (n.kind == OpKind::kDdo) {
      const analysis::ItemProps* in = props_.Item(n.inputs[0].get());
      if (in != nullptr && analysis::ProvenDdoRedundant(*in)) {
        analysis::VerifyScope scope("optimize property rule (p1: ddo)");
        scope.MarkFired();
        OpPtr repl = std::move(n.inputs[0]);
        *op = std::move(repl);
        *changed = true;
      }
    }
  }

  /// Rule (p2) at one TupleTreePattern node.
  void PruneAnnotations(Op* n, const FieldSet& live, bool odd_ctx,
                        bool* changed) {
    std::vector<Symbol> outs = n->tp.OutputFields();
    if (outs.size() < 2) return;
    const pattern::PatternNode* ep = n->tp.ExtractionPoint();
    if (ep == nullptr || ep->output == kInvalidSymbol) return;
    const analysis::TupleProps* tprops = props_.Tuple(n);
    const analysis::TupleProps* in_props = props_.Tuple(n->inputs[0].get());
    for (Symbol a : outs) {
      if (a == ep->output || live.count(a) != 0) continue;
      bool justified = odd_ctx;
      if (!justified && tprops != nullptr && in_props != nullptr &&
          MainPathChildLike(n->tp)) {
        // FD justification: `a` must be a function of a deeper annotated
        // binding, and the child-like path over a singleton per-tuple
        // context keeps the projected rows' order and count.
        const analysis::FieldProps* cf =
            in_props->Field(n->tp.input_field);
        bool singleton_ctx = cf != nullptr && cf->value.card.hi <= 1;
        bool has_fd = false;
        for (const auto& fd : tprops->fds) {
          if (fd.first == a) has_fd = true;
        }
        justified = singleton_ctx && has_fd;
      }
      if (!justified) continue;
      analysis::VerifyScope scope(
          "optimize property rule (p2: annotation prune)");
      scope.MarkFired();
      pattern::ClearOutput(&n->tp, a);
      *changed = true;
      stop_ = true;  // row multiset changed: facts must be re-inferred
      return;
    }
  }

  const analysis::PlanProps& props_;
  bool stop_ = false;
};

}  // namespace

Status Optimize(OpPtr* plan, StringInterner* interner,
                const OptimizeOptions& opts) {
  if (!opts.detect_tree_patterns) return Status::OK();
  analysis::PlanVerifyOptions vopts;
  vopts.allow_multi_output = opts.multi_output_patterns;
  vopts.vars = opts.vars;
  vopts.interner = interner;
  Optimizer optimizer(interner, opts);
  // The translation-validation oracle needs the variable table to bind
  // globals when executing snapshots.
  bool check_equiv = opts.equiv != nullptr && opts.vars != nullptr;
  for (int round = 0; round < opts.max_rounds; ++round) {
    // Compile-time governance checkpoint, mirroring the rewriter's.
    XQTP_RETURN_NOT_OK(exec::GovernorPoll());
    XQTP_FAULT_POINT("algebra.optimize.round");
    OpPtr before = check_equiv ? Clone(**plan) : nullptr;
    bool changed = false;
    optimizer.RunRound(plan, &changed);
    // Property-justified rewrites run on structurally-quiescent rounds
    // (the fact map is keyed by operator identity, so it must be inferred
    // over the round's final shape); a firing re-enters the loop so the
    // structural rules can exploit the simplified plan.
    if (!changed && opts.infer_properties) {
      analysis::PlanProps props = analysis::InferPlanProps(**plan);
      PropertyPass pass(props);
      pass.Run(plan, &changed);
    }
    // Checkpoint: a violation here is attributed to the rules that fired
    // in this round (the VerifyScope trail).
    if (changed && opts.verify) {
      XQTP_RETURN_NOT_OK(analysis::VerifyPlan(**plan, vopts));
    }
    if (changed && check_equiv) {
      XQTP_RETURN_NOT_OK(opts.equiv->CheckPlan(*before, **plan, *opts.vars));
    }
    if (!changed) break;
  }
  {
    analysis::VerifyScope scope("optimize: field canonicalization");
    OpPtr before = check_equiv ? Clone(**plan) : nullptr;
    FieldCanonicalizer canon(interner);
    canon.Run(plan->get());
    if (opts.verify) {
      scope.MarkFired();
      XQTP_RETURN_NOT_OK(analysis::VerifyPlan(**plan, vopts));
    }
    if (check_equiv) {
      XQTP_RETURN_NOT_OK(opts.equiv->CheckPlan(*before, **plan, *opts.vars));
    }
  }
  if (opts.infer_properties) {
    // Stamp the final plan with runtime-checkable claims: in debug and
    // sanitizer builds the evaluator asserts every one of them on every
    // evaluation (exec::EvalOptions::check_inferred_props), so inference
    // bugs crash tests instead of silently justifying bad rewrites.
    analysis::AnnotatePlanProps(plan->get());
  }
  return Status::OK();
}

}  // namespace xqtp::algebra
