// Plan-cache latency trajectory (engine/plan_cache.h): what a compile
// costs when the cache cannot help ("cold": the cache is cleared before
// every request), what a warm hit costs ("warm": every request after the
// first is a fingerprint lookup), and how warm hits behave under
// contention ("concurrent-warm": 8 threads hammer the same entry; the
// record's ns is per-request across all threads). The serve-* variants
// measure the end-to-end ExecuteQuery path — compile-or-lookup plus
// execution against an XMark document — which is what an embedding
// application actually pays per request.
//
// The acceptance bar tracked in BENCH_smoke.json: warm must be >= 10x
// faster than cold for every corpus query (tools/bench_smoke.py surfaces
// the ratio; the cold row is the denominator).
//
// Each benchmark builds its own Engine (never SharedEngine) so cache
// state is owned by the benchmark: cold really refills, warm really hits.
#include "bench_common.h"

#include <thread>

#include "workload/xmark_queries.h"

namespace xqtp::bench {
namespace {

constexpr int kConcurrentThreads = 8;
/// Hits each thread performs per timed iteration; amortizes the
/// thread-spawn cost out of the per-request figure.
constexpr int kHitsPerThread = 64;

/// Compile-only corpus slice (mirrors bench_compile so cold rows here
/// line up with the per-phase rows there).
constexpr const char* kCorpusIds[] = {"XQ1", "XQ6", "XQ15"};

std::vector<workload::XmarkQuery> CorpusSlice() {
  std::vector<workload::XmarkQuery> out;
  for (const workload::XmarkQuery& q : workload::XmarkQueryCorpus()) {
    for (const char* id : kCorpusIds) {
      if (q.id == id) out.push_back(q);
    }
  }
  return out;
}

/// Serving configuration: oracles off, as in a Release embedding. The
/// debug verifiers would dominate the cold numbers and hide the cache win.
engine::EngineOptions ServingOptions() {
  engine::EngineOptions opts;
  opts.verify_plans = false;
  opts.analysis.check_equivalence = false;
  return opts;
}

void RecordRow(const std::string& id, const std::string& variant, int threads,
               double ns) {
  if (JsonPath().empty()) return;
  JsonRecord r;
  r.bench = BenchName();
  r.query = id;
  r.algo = "cache";
  r.threads = threads;
  r.variant = variant;
  r.ns = ns;
  for (JsonRecord& existing : JsonRecords()) {
    if (existing.query == r.query && existing.variant == r.variant &&
        existing.threads == r.threads) {
      existing = std::move(r);
      return;
    }
  }
  JsonRecords().push_back(std::move(r));
}

/// Cold: every request recompiles — the cache is emptied first, so
/// CompileCached takes the miss + single-flight fill path each time.
void BenchCold(benchmark::State& state, const workload::XmarkQuery& q) {
  engine::Engine e(ServingOptions());
  double total_ns = 0;
  int64_t iters = 0;
  for (auto _ : state) {
    e.ClearPlanCache();
    auto t0 = std::chrono::steady_clock::now();
    auto plan = e.CompileCached(q.text);
    auto t1 = std::chrono::steady_clock::now();
    if (!plan.ok()) {
      state.SkipWithError(plan.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(plan);
    total_ns += std::chrono::duration<double, std::nano>(t1 - t0).count();
    ++iters;
  }
  if (iters > 0) {
    RecordRow(q.id, "cold", 1, total_ns / static_cast<double>(iters));
  }
}

/// Warm: the entry is pre-filled; every timed request is a hit.
void BenchWarm(benchmark::State& state, const workload::XmarkQuery& q) {
  engine::Engine e(ServingOptions());
  auto fill = e.CompileCached(q.text);
  if (!fill.ok()) {
    state.SkipWithError(fill.status().ToString().c_str());
    return;
  }
  double total_ns = 0;
  int64_t iters = 0;
  for (auto _ : state) {
    auto t0 = std::chrono::steady_clock::now();
    auto plan = e.CompileCached(q.text);
    auto t1 = std::chrono::steady_clock::now();
    if (!plan.ok()) {
      state.SkipWithError(plan.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(plan);
    total_ns += std::chrono::duration<double, std::nano>(t1 - t0).count();
    ++iters;
  }
  if (iters > 0) {
    RecordRow(q.id, "warm", 1, total_ns / static_cast<double>(iters));
  }
}

/// Concurrent warm: kConcurrentThreads threads each perform
/// kHitsPerThread hits per timed iteration. Reported ns is per-request
/// (wall time / total requests) — under a scalable shard design it should
/// stay in the same decade as the single-threaded warm figure.
void BenchConcurrentWarm(benchmark::State& state,
                         const workload::XmarkQuery& q) {
  engine::Engine e(ServingOptions());
  auto fill = e.CompileCached(q.text);
  if (!fill.ok()) {
    state.SkipWithError(fill.status().ToString().c_str());
    return;
  }
  double total_ns = 0;
  int64_t requests = 0;
  for (auto _ : state) {
    auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    threads.reserve(kConcurrentThreads);
    for (int t = 0; t < kConcurrentThreads; ++t) {
      threads.emplace_back([&e, &q] {
        for (int i = 0; i < kHitsPerThread; ++i) {
          auto plan = e.CompileCached(q.text);
          benchmark::DoNotOptimize(plan);
        }
      });
    }
    for (std::thread& t : threads) t.join();
    auto t1 = std::chrono::steady_clock::now();
    total_ns += std::chrono::duration<double, std::nano>(t1 - t0).count();
    requests += kConcurrentThreads * kHitsPerThread;
  }
  if (requests > 0) {
    RecordRow(q.id, "concurrent-warm", kConcurrentThreads,
              total_ns / static_cast<double>(requests));
  }
}

// ---------------------------------------------------------------------------
// End-to-end serving: ExecuteQuery = CompileCached + Execute against a
// small XMark instance. serve-cold clears the cache each request (every
// request pays the full compile); serve-warm is the steady state.

constexpr const char* kServeQuery = "$input//item//location";

void BenchServe(benchmark::State& state, bool warm) {
  engine::Engine e(ServingOptions());
  const xml::Document* doc =
      e.AddDocument("xmark_cache",
                    workload::GenerateXmark({.factor = 0.1}, e.interner()));
  engine::Engine::GlobalMap globals{{"input", {xdm::Item(doc->root())}}};
  if (warm) {
    auto fill = e.CompileCached(kServeQuery);
    if (!fill.ok()) {
      state.SkipWithError(fill.status().ToString().c_str());
      return;
    }
  }
  double total_ns = 0;
  int64_t iters = 0;
  for (auto _ : state) {
    if (!warm) e.ClearPlanCache();
    auto t0 = std::chrono::steady_clock::now();
    auto res = e.ExecuteQuery(kServeQuery, globals);
    auto t1 = std::chrono::steady_clock::now();
    if (!res.ok()) {
      state.SkipWithError(res.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(res);
    total_ns += std::chrono::duration<double, std::nano>(t1 - t0).count();
    ++iters;
  }
  if (iters > 0) {
    RecordRow(kServeQuery, warm ? "serve-warm" : "serve-cold", 1,
              total_ns / static_cast<double>(iters));
  }
}

void Register() {
  static const std::vector<workload::XmarkQuery>* corpus =
      new std::vector<workload::XmarkQuery>(CorpusSlice());
  for (const workload::XmarkQuery& q : *corpus) {
    const workload::XmarkQuery* query = &q;
    benchmark::RegisterBenchmark(
        (std::string("PlanCache/") + q.id + "/cold").c_str(),
        [query](benchmark::State& s) { BenchCold(s, *query); })
        ->Unit(benchmark::kMicrosecond);
    benchmark::RegisterBenchmark(
        (std::string("PlanCache/") + q.id + "/warm").c_str(),
        [query](benchmark::State& s) { BenchWarm(s, *query); })
        ->Unit(benchmark::kMicrosecond);
    benchmark::RegisterBenchmark(
        (std::string("PlanCache/") + q.id + "/concurrent-warm").c_str(),
        [query](benchmark::State& s) { BenchConcurrentWarm(s, *query); })
        ->Unit(benchmark::kMicrosecond);
  }
  benchmark::RegisterBenchmark(
      "PlanCache/serve/cold",
      [](benchmark::State& s) { BenchServe(s, /*warm=*/false); })
      ->Unit(benchmark::kMicrosecond);
  benchmark::RegisterBenchmark(
      "PlanCache/serve/warm",
      [](benchmark::State& s) { BenchServe(s, /*warm=*/true); })
      ->Unit(benchmark::kMicrosecond);
}

}  // namespace
}  // namespace xqtp::bench

int main(int argc, char** argv) {
  xqtp::bench::Register();
  return xqtp::bench::BenchMain(argc, argv);
}
