#include "common/status.h"

namespace xqtp {

std::string Status::ToString() const {
  switch (code_) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument: " + message_;
    case StatusCode::kNotImplemented:
      return "NotImplemented: " + message_;
    case StatusCode::kTypeError:
      return "TypeError: " + message_;
    case StatusCode::kInternal:
      return "Internal: " + message_;
  }
  return "Unknown: " + message_;
}

}  // namespace xqtp
