// Core AST verifier, pass (1) of the analysis subsystem: machine-checks
// the structural invariants every Core rewrite must preserve, in the
// spirit of LLVM's module verifier. Runs after normalization and after
// each TPNF' rewrite family, so a rule that breaks an invariant is caught
// at the checkpoint right after it fires.
//
// Invariants checked (each failure is a Status::Internal naming the
// invariant in [brackets]):
//  - [core-arity]          every node has the child/where shape its kind
//                          requires (kLet has 2 children, kIf has 3, a
//                          where clause only hangs off kFor, ...)
//  - [var-range]           every VarId referenced or bound is registered
//                          in the VarTable
//  - [def-before-use]      every kVar / kStep context variable is a query
//                          global or bound by an enclosing binder; in
//                          particular a positional variable is only
//                          visible under its own `for ... at` binder
//  - [duplicate-binder]    no VarId is bound twice (binders create unique
//                          VarIds by construction — substitution safety
//                          depends on it)
//  - [binder-is-global]    a binder never rebinds a query global
//  - [positional-binder]   `for $x at $p` binds two distinct variables
//  - [fn-arity]            kFnCall argument counts match CoreFnArity
//  - [odf-cache-soundness] cached ordered/dup_free annotations
//                          (CoreExpr::odf_cache) are no stronger than a
//                          fresh derivation by core::ComputeOdf
#ifndef XQTP_ANALYSIS_CORE_VERIFIER_H_
#define XQTP_ANALYSIS_CORE_VERIFIER_H_

#include "common/status.h"
#include "core/ast.h"

namespace xqtp::analysis {

struct CoreVerifyOptions {
  /// Check cached ODF annotations against a fresh derivation. On; nodes
  /// without an annotation (odf_cache == 0) are always skipped.
  bool check_odf_cache = true;
};

/// Verifies `e` against the invariants above. OK, or Status::Internal
/// naming the violated invariant, tagged with the active VerifyScope.
[[nodiscard]]
Status VerifyCore(const core::CoreExpr& e, const core::VarTable& vars,
                  const CoreVerifyOptions& opts = {});

}  // namespace xqtp::analysis

#endif  // XQTP_ANALYSIS_CORE_VERIFIER_H_
