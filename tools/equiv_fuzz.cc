// Grammar-fuzzing driver for the translation-validation and
// cross-evaluator oracles: generates random queries from the fragment
// grammar (analysis/qgen.h), compiles each one with the per-rule
// equivalence oracle armed, and differentially executes every compiled
// query through all evaluation routes (Core interpreter, unoptimized
// plan, optimized plan x all six pattern algorithms) over the witness
// corpus. Failures are shrunk (query first, then witness document) and
// saved as replayable artifacts.
//
// Usage:
//   equiv_fuzz [--iters N] [--seed S] [--artifacts DIR] [--max-docs K]
//              [--quiet]
//   equiv_fuzz --replay FILE
//
// Exit code 0 iff no divergence was found (for --replay: iff the saved
// failure no longer reproduces). The last stdout line is always a
// machine-greppable summary:
//   equiv_fuzz: iters=... seed=... compiled=... compile_errors=...
//               divergences=... artifacts=...
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/cross_check.h"
#include "analysis/equiv_checker.h"
#include "analysis/qgen.h"
#include "analysis/witness.h"
#include "engine/engine.h"

namespace {

using namespace xqtp;  // NOLINT(google-build-using-namespace): tool main

struct Args {
  int iters = 100;
  uint64_t seed = 1;
  std::string artifacts_dir = "fuzz-artifacts";
  int max_docs = 0;  // 0 = whole corpus
  bool quiet = false;
  std::string replay;
};

/// Per-iteration derived seed; decorrelates neighbouring iterations so
/// --seed 1 and --seed 2 do not share query prefixes.
uint64_t MixSeed(uint64_t seed, int iter) {
  uint64_t z = seed * 0x9e3779b97f4a7c15ULL + static_cast<uint64_t>(iter);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

engine::EngineOptions OracleOptions(int max_docs) {
  engine::EngineOptions eopts;
  eopts.verify_plans = true;
  eopts.analysis.check_equivalence = true;
  if (max_docs > 0) eopts.analysis.max_witness_docs = max_docs;
  return eopts;
}

/// One reproducible failure: everything --replay needs.
struct Failure {
  uint64_t seed = 0;
  int iter = 0;
  std::string kind;     // "compile-oracle" | "cross-eval"
  std::string query;
  std::string witness_name;
  std::string witness_xml;  // minimized; empty for compile-oracle failures
  std::string error;
};

std::string SerializeFailure(const Failure& f) {
  std::ostringstream out;
  out << "# xqtp equiv_fuzz failure artifact\n";
  out << "seed: " << f.seed << "\n";
  out << "iter: " << f.iter << "\n";
  out << "kind: " << f.kind << "\n";
  out << "query: " << f.query << "\n";
  out << "witness: " << f.witness_name << "\n";
  out << "error: |\n";
  std::istringstream err(f.error);
  for (std::string line; std::getline(err, line);) {
    out << "  " << line << "\n";
  }
  out << "--- witness xml ---\n" << f.witness_xml << "\n";
  return out.str();
}

bool ParseFailure(const std::string& text, Failure* f) {
  std::istringstream in(text);
  std::string line;
  bool in_xml = false;
  while (std::getline(in, line)) {
    if (in_xml) {
      if (!f->witness_xml.empty()) f->witness_xml += "\n";
      f->witness_xml += line;
      continue;
    }
    if (line == "--- witness xml ---") {
      in_xml = true;
    } else if (line.rfind("seed: ", 0) == 0) {
      f->seed = std::stoull(line.substr(6));
    } else if (line.rfind("iter: ", 0) == 0) {
      f->iter = std::stoi(line.substr(6));
    } else if (line.rfind("kind: ", 0) == 0) {
      f->kind = line.substr(6);
    } else if (line.rfind("query: ", 0) == 0) {
      f->query = line.substr(7);
    } else if (line.rfind("witness: ", 0) == 0) {
      f->witness_name = line.substr(9);
    }
  }
  // Trailing newline from serialization.
  while (!f->witness_xml.empty() && f->witness_xml.back() == '\n') {
    f->witness_xml.pop_back();
  }
  return !f->query.empty();
}

std::string WriteArtifact(const Args& args, const Failure& f, int index) {
  std::string dir = args.artifacts_dir;
  std::string mkdir = "mkdir -p '" + dir + "'";
  if (std::system(mkdir.c_str()) != 0) return "";  // NOLINT(cert-env33-c)
  std::string path = dir + "/failure-" + std::to_string(f.seed) + "-" +
                     std::to_string(f.iter) + "-" + std::to_string(index) +
                     ".txt";
  std::ofstream out(path);
  if (!out) return "";
  out << SerializeFailure(f);
  return path;
}

/// Cross-checks one compiled query against one witness document; fills
/// `error` on divergence.
bool CrossCheckOnDoc(const engine::CompiledQuery& q, const xml::Document& doc,
                     std::string* error) {
  exec::Bindings bindings;
  for (core::VarId v = 0; v < static_cast<core::VarId>(q.vars().size()); ++v) {
    if (q.vars().IsGlobal(v)) bindings[v] = xdm::Sequence{xdm::Item(doc.root())};
  }
  analysis::CrossCheckInput in;
  in.reference = &q.rewritten();
  in.unoptimized = &q.plan();
  in.optimized = &q.optimized();
  Status s = analysis::CrossCheck(in, q.vars(), bindings);
  if (s.ok()) return true;
  *error = s.ToString();
  return false;
}

/// Minimizes a cross-eval failure: re-compiles the query in a scratch
/// engine and shrinks the witness while the divergence persists.
std::string ShrinkCrossEvalWitness(const std::string& query,
                                   const std::string& witness_xml,
                                   int max_docs) {
  engine::Engine eng(OracleOptions(max_docs));
  auto compiled = eng.Compile(query);
  if (!compiled.ok()) return witness_xml;
  analysis::WitnessPredicate pred = [&](const xml::Document& cand) {
    std::string err;
    return !CrossCheckOnDoc(*compiled, cand, &err);
  };
  return analysis::ShrinkWitness(witness_xml, eng.interner(), pred);
}

int RunReplay(const Args& args) {
  std::ifstream in(args.replay);
  if (!in) {
    std::fprintf(stderr, "equiv_fuzz: cannot open artifact %s\n",
                 args.replay.c_str());
    return 2;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  Failure f;
  if (!ParseFailure(buf.str(), &f)) {
    std::fprintf(stderr, "equiv_fuzz: malformed artifact %s\n",
                 args.replay.c_str());
    return 2;
  }
  std::printf("replaying %s failure: seed=%llu iter=%d\n  query: %s\n",
              f.kind.c_str(), static_cast<unsigned long long>(f.seed), f.iter,
              f.query.c_str());
  engine::Engine eng(OracleOptions(args.max_docs));
  auto compiled = eng.Compile(f.query);
  if (!compiled.ok()) {
    // The per-rule oracle fires during Compile; for compile-oracle
    // artifacts a non-OK Internal status *is* the reproduction.
    bool reproduced = compiled.status().code() == StatusCode::kInternal;
    std::printf("compile: %s\n", compiled.status().ToString().c_str());
    std::printf("verdict: %s\n",
                reproduced ? "REPRODUCED (still diverges)" : "compile error");
    return reproduced ? 1 : 0;
  }
  if (f.witness_xml.empty()) {
    std::printf("verdict: FIXED (compile oracle no longer fires)\n");
    return 0;
  }
  auto doc = xml::Parse(f.witness_xml, eng.interner());
  if (!doc.ok()) {
    std::fprintf(stderr, "equiv_fuzz: artifact witness does not parse: %s\n",
                 doc.status().ToString().c_str());
    return 2;
  }
  std::string err;
  if (CrossCheckOnDoc(*compiled, *doc.value(), &err)) {
    std::printf("verdict: FIXED (no divergence on saved witness)\n");
    return 0;
  }
  std::printf("%s\nverdict: REPRODUCED (still diverges)\n", err.c_str());
  return 1;
}

int RunFuzz(const Args& args) {
  int compiled_ok = 0;
  int compile_errors = 0;
  int divergences = 0;
  int artifacts = 0;
  for (int i = 0; i < args.iters; ++i) {
    analysis::QueryGen gen(MixSeed(args.seed, i));
    std::string query = gen.Next();
    // Fresh engine per iteration: a bounded interner and, more
    // importantly, deterministic replay (no cross-query state).
    engine::Engine eng(OracleOptions(args.max_docs));
    auto compiled = eng.Compile(query);
    if (!compiled.ok()) {
      if (compiled.status().code() == StatusCode::kInternal) {
        // The per-rule translation-validation oracle (or a verifier)
        // rejected a rewrite: that is a finding, not a generator miss.
        ++divergences;
        Failure f;
        f.seed = args.seed;
        f.iter = i;
        f.kind = "compile-oracle";
        f.query = query;
        f.error = compiled.status().ToString();
        std::string path = WriteArtifact(args, f, artifacts);
        if (!path.empty()) ++artifacts;
        if (!args.quiet) {
          std::printf("[%d] DIVERGENCE (compile oracle)\n  query: %s\n  %s\n"
                      "  artifact: %s\n",
                      i, query.c_str(), f.error.c_str(), path.c_str());
        }
      } else {
        ++compile_errors;
        if (!args.quiet) {
          std::printf("[%d] compile error: %s\n  query: %s\n", i,
                      compiled.status().ToString().c_str(), query.c_str());
        }
      }
      continue;
    }
    ++compiled_ok;
    // Differential execution over the witness corpus.
    const analysis::WitnessCorpus corpus(eng.interner());
    int limit = args.max_docs > 0 ? args.max_docs
                                  : static_cast<int>(corpus.docs().size());
    for (int d = 0; d < limit && d < static_cast<int>(corpus.docs().size());
         ++d) {
      const analysis::WitnessDoc& w = corpus.docs()[d];
      std::string err;
      if (CrossCheckOnDoc(*compiled, *w.doc, &err)) continue;
      ++divergences;
      Failure f;
      f.seed = args.seed;
      f.iter = i;
      f.kind = "cross-eval";
      f.query = query;
      f.witness_name = w.name;
      f.witness_xml = ShrinkCrossEvalWitness(query, w.xml, args.max_docs);
      f.error = err;
      std::string path = WriteArtifact(args, f, artifacts);
      if (!path.empty()) ++artifacts;
      if (!args.quiet) {
        std::printf("[%d] DIVERGENCE (cross-eval, witness %s)\n  query: %s\n"
                    "  %s\n  witness(minimized): %s\n  artifact: %s\n",
                    i, w.name.c_str(), query.c_str(), err.c_str(),
                    f.witness_xml.c_str(), path.c_str());
      }
      break;  // one witness per query is enough to report
    }
  }
  std::printf(
      "equiv_fuzz: iters=%d seed=%llu compiled=%d compile_errors=%d "
      "divergences=%d artifacts=%d\n",
      args.iters, static_cast<unsigned long long>(args.seed), compiled_ok,
      compile_errors, divergences, artifacts);
  return divergences > 0 ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (a == "--iters") {
      if (const char* v = next()) args.iters = std::atoi(v);
    } else if (a == "--seed") {
      if (const char* v = next()) args.seed = std::strtoull(v, nullptr, 10);
    } else if (a == "--artifacts") {
      if (const char* v = next()) args.artifacts_dir = v;
    } else if (a == "--max-docs") {
      if (const char* v = next()) args.max_docs = std::atoi(v);
    } else if (a == "--replay") {
      if (const char* v = next()) args.replay = v;
    } else if (a == "--quiet") {
      args.quiet = true;
    } else {
      std::fprintf(stderr,
                   "usage: equiv_fuzz [--iters N] [--seed S] [--artifacts "
                   "DIR] [--max-docs K] [--quiet] | --replay FILE\n");
      return 2;
    }
  }
  if (!args.replay.empty()) return RunReplay(args);
  return RunFuzz(args);
}
