// Algebra plan verifier, pass (2) of the analysis subsystem: checks every
// Op tree after compilation and after each optimize fixpoint round, so a
// rewrite rule that emits a malformed plan is caught at the checkpoint
// right after it fires (and attributed to it via VerifyScope).
//
// The verifier models the evaluator's contexts exactly: an item plan runs
// with an optional ambient tuple (dependent plans) and an optional current
// item (MapFromItem dependents); a tuple plan runs against the ambient
// tuple of its enclosing dependent context. Field sets are propagated
// through the pipeline the same way exec::Evaluate binds them.
//
// Invariants checked (each failure is a Status::Internal naming the
// invariant in [brackets]):
//  - [plan-sort]        tuple plans and item plans are never mixed: every
//                       input edge carries the sort its consumer expects
//                       (IsTuplePlan), and the root of a compiled query is
//                       an item plan
//  - [op-arity]         input counts per operator kind (Select has one
//                       input, If has three, ...)
//  - [dep-plan]         dependent sub-plans exist exactly where the kind
//                       calls for them (MapToItem/MapFromItem/Select/
//                       ForEach/LetIn/Typeswitch) and nowhere else
//  - [field-def-use]    no IN#field read and no TupleTreePattern context
//                       field that no upstream operator produces
//  - [tuple-context]    IN (tuple) only inside a dependent plan
//  - [item-context]     IN (item) only inside a MapFromItem dependent
//  - [invalid-field]    field symbols are valid and known to the interner
//  - [single-output]    a TupleTreePattern has exactly one output unless
//                       multi-output patterns are enabled (then: at least
//                       one, all on the main path)
//  - [pattern-root]     a TupleTreePattern has a context field and at
//                       least one step
//  - [pattern-axis]     every step (main path and predicate branches)
//                       uses an axis the pattern grammar allows
//  - [pattern-test]     node tests are internally consistent (a name test
//                       carries a name, the others do not) and positional
//                       constraints are non-negative
//  - [pattern-output-dup] no output field is annotated twice
//  - [scoped-var-scope] kScopedVar only references an enclosing ForEach/
//                       LetIn/Typeswitch binder
//  - [global-var]       kGlobalVar references a registered query global
//                       (when a VarTable is supplied)
//  - [fn-arity]         kFnCall argument counts match CoreFnArity
#ifndef XQTP_ANALYSIS_PLAN_VERIFIER_H_
#define XQTP_ANALYSIS_PLAN_VERIFIER_H_

#include "algebra/ops.h"
#include "common/status.h"

namespace xqtp::analysis {

struct PlanVerifyOptions {
  /// Allow multi-output ("generalized") tree patterns — mirror of
  /// OptimizeOptions::multi_output_patterns.
  bool allow_multi_output = false;
  /// Enables the global/scoped variable checks when supplied.
  const core::VarTable* vars = nullptr;
  /// Enables symbol-validity checks when supplied.
  const StringInterner* interner = nullptr;
};

/// Verifies `plan` (an item plan, as produced by algebra::Compile) against
/// the invariants above. OK, or Status::Internal naming the violated
/// invariant, tagged with the active VerifyScope.
[[nodiscard]]
Status VerifyPlan(const algebra::Op& plan, const PlanVerifyOptions& opts = {});

}  // namespace xqtp::analysis

#endif  // XQTP_ANALYSIS_PLAN_VERIFIER_H_
