#!/usr/bin/env bash
# Differential fuzzing gate: runs tools/equiv_fuzz — the grammar-based
# query generator driving the translation-validation and cross-evaluator
# oracles — under ASan/UBSan over a fixed seed matrix, so every run is
# reproducible and a failure is replayable with
#   tools/equiv_fuzz --replay fuzz-artifacts/failure-<seed>-<iter>-<n>.txt
#
# Wall clock is bounded by the iteration budget: one iteration compiles
# one query and executes it over the whole witness corpus along every
# route, and the budget below finishes in well under a minute per seed
# even in the sanitized Debug build.
#
# Usage: ci/fuzz.sh [iters-per-seed] [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
ITERS="${1:-400}"
JOBS="${2:-$(nproc)}"
SEEDS=(1 2 3 7 42)
# Own build tree (same config as ci/check.sh's debug-sanitize leg, but a
# separate cache): concurrent or aborted runs of one script must never
# poison the other's CMake cache.
DIR=build-ci-fuzz

echo "==== [fuzz] configure + build (Debug, ASan/UBSan) ===="
cmake -B "$DIR" -S . -DCMAKE_BUILD_TYPE=Debug -DXQTP_WERROR=ON \
  "-DXQTP_SANITIZE=address;undefined" > /dev/null
cmake --build "$DIR" --target equiv_fuzz -j "$JOBS"

status=0
for seed in "${SEEDS[@]}"; do
  echo "==== [fuzz] seed $seed, $ITERS iterations ===="
  if ! "$DIR/tools/equiv_fuzz" --iters "$ITERS" --seed "$seed" \
      --artifacts fuzz-artifacts --quiet; then
    status=1
  fi
done

if [[ $status -ne 0 ]]; then
  echo "==== [fuzz] FAILED: divergence artifacts in fuzz-artifacts/ ===="
  exit 1
fi
echo "==== [fuzz] all seeds clean ===="
