// Governor overhead: the same XMark queries with resource governance off
// (no limits set — GovernorPoll is a thread-local load and a branch) and
// on (deadline + memory budget + cancel token, none of which trip, so
// the strided polls pay full checks: one relaxed atomic load, one
// steady_clock read, one comparison, every 32nd operator boundary and
// every 1024th pattern-inner-loop iteration). The "variant" field keys
// the two configurations in the --json perf trajectory; DESIGN.md
// documents the measured delta (target: < 2%).
#include <chrono>
#include <memory>

#include "bench_common.h"
#include "exec/governor.h"

namespace xqtp::bench {
namespace {

struct GovernorQuery {
  const char* name;
  const char* query;
};

constexpr GovernorQuery kQueries[] = {
    {"XM-person-name", "$input//person[emailaddress]/name"},
    {"XM-item-location", "$input//item//location"},
    {"XM-count-interest",
     "fn:count($input//person[emailaddress]//interest)"},
};

const xml::Document& Doc() { return XmarkDoc("xmark_governor", 0.5); }

void Register() {
  for (const GovernorQuery& q : kQueries) {
    for (int threads : {1, 4}) {
      for (bool governed : {false, true}) {
        std::string name = std::string("Governor/") + q.name + "/t" +
                           std::to_string(threads) + "/" +
                           (governed ? "on" : "off");
        std::string query = q.query;
        benchmark::RegisterBenchmark(
            name.c_str(),
            [query, threads, governed](benchmark::State& state) {
              exec::EvalOptions opts;
              opts.algo = exec::PatternAlgo::kTwig;
              opts.threads = threads;
              if (governed) {
                // Generous limits that never trip: the benchmark pays
                // for the checks, not for an early return.
                opts.deadline = std::chrono::steady_clock::now() +
                                std::chrono::hours(24);
                opts.memory_budget_bytes = int64_t{1} << 40;
                opts.cancel_token = std::make_shared<exec::CancelToken>();
              }
              RunQueryBenchmark(state, query, Doc(), opts,
                                engine::PlanChoice::kOptimized, {},
                                governed ? "governor-on" : "governor-off");
              if (governed) {
                // One untimed instrumented run: how many full checks the
                // governed configuration actually pays for (attribution
                // when the overhead delta looks off).
                engine::Engine& e = SharedEngine();
                auto cq = e.Compile(query);
                if (cq.ok()) {
                  engine::Engine::GlobalMap globals;
                  for (const std::string& g : cq->GlobalNames()) {
                    globals[g] = {xdm::Item(Doc().root())};
                  }
                  ScopedExecStats scope;
                  (void)e.Execute(*cq, globals, opts);
                  state.counters["gov_checks"] = benchmark::Counter(
                      static_cast<double>(scope.stats().governor_checks));
                }
              }
            })
            ->Unit(benchmark::kMillisecond);
      }
    }
  }
}

}  // namespace
}  // namespace xqtp::bench

int main(int argc, char** argv) {
  xqtp::bench::Register();
  return xqtp::bench::BenchMain(argc, argv);
}
