file(REMOVE_RECURSE
  "libxqtp.a"
)
