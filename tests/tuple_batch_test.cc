// Columnar TupleBatch unit tests: selection-vector edge cases (empty
// batch, all-filtered, composed selections), copy-on-write column
// sharing (including concurrent readers over aliased columns — the TSan
// leg runs this binary), the row-view bridge, and the engine-level
// row-vs-batch differential with its ExecStats counters.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "engine/engine.h"
#include "exec/evaluator.h"
#include "exec/exec_stats.h"
#include "exec/tuple.h"
#include "workload/xmark_gen.h"
#include "workload/xmark_queries.h"

namespace xqtp::exec {
namespace {

using xdm::Item;
using xdm::Sequence;

Symbol Sym(uint32_t v) { return static_cast<Symbol>(v); }

/// A batch of `n` rows with one int column `field`, values 0..n-1.
TupleBatch IntBatch(Symbol field, size_t n) {
  TupleBatch b(n);
  TupleColumn col;
  col.field = field;
  for (size_t i = 0; i < n; ++i) {
    col.values.push_back(Sequence{Item(static_cast<int64_t>(i))});
  }
  b.AddOwnedColumn(std::move(col));
  return b;
}

int64_t IntAt(const TupleBatch& b, size_t row, Symbol field) {
  const Sequence* v = b.Get(row, field);
  EXPECT_NE(v, nullptr);
  EXPECT_EQ(v->size(), 1u);
  return (*v)[0].integer();
}

TEST(TupleBatchTest, EmptyBatch) {
  TupleBatch b;
  EXPECT_EQ(b.rows(), 0u);
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.Find(Sym(1)), nullptr);
  EXPECT_TRUE(b.ToTuples().empty());
  b.Flatten();  // no-op, no crash
  EXPECT_EQ(b.rows(), 0u);

  // FromTuples of no rows is the empty batch with no columns.
  TupleBatch from = TupleBatch::FromTuples({});
  EXPECT_EQ(from.rows(), 0u);
  EXPECT_EQ(from.column_count(), 0u);
}

TEST(TupleBatchTest, ZeroFieldRowsAreLegal) {
  // kInputTuple over an ambient tuple with no fields: one row, no
  // columns (the row exists; every field reads as absent).
  TupleBatch b(1);
  EXPECT_EQ(b.rows(), 1u);
  EXPECT_EQ(b.Get(0, Sym(7)), nullptr);
  TupleSeq rows = b.ToTuples();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].field_count(), 0u);
}

TEST(TupleBatchTest, SelectRowsIsZeroCopyAndComposes) {
  TupleBatch b = IntBatch(Sym(1), 8);
  const void* storage = b.columns()[0].column.get();

  TupleBatch odd = b.SelectRows({1, 3, 5, 7});
  EXPECT_EQ(odd.rows(), 4u);
  EXPECT_EQ(odd.physical_rows(), 8u);
  // The column is SHARED, not copied.
  EXPECT_EQ(odd.columns()[0].column.get(), storage);
  EXPECT_EQ(IntAt(odd, 0, Sym(1)), 1);
  EXPECT_EQ(IntAt(odd, 3, Sym(1)), 7);

  // Selecting out of a selected view composes through to physical rows.
  TupleBatch second = odd.SelectRows({0, 2});
  EXPECT_EQ(second.rows(), 2u);
  EXPECT_EQ(second.columns()[0].column.get(), storage);
  EXPECT_EQ(IntAt(second, 0, Sym(1)), 1);
  EXPECT_EQ(IntAt(second, 1, Sym(1)), 5);

  // Repeats are allowed (a view, not a set).
  TupleBatch dup = odd.SelectRows({1, 1});
  EXPECT_EQ(IntAt(dup, 0, Sym(1)), 3);
  EXPECT_EQ(IntAt(dup, 1, Sym(1)), 3);
}

TEST(TupleBatchTest, AllFilteredSelection) {
  TupleBatch b = IntBatch(Sym(1), 5);
  TupleBatch none = b.SelectRows({});
  EXPECT_EQ(none.rows(), 0u);
  EXPECT_TRUE(none.empty());
  EXPECT_EQ(none.physical_rows(), 5u);
  EXPECT_TRUE(none.ToTuples().empty());
  // Appending an all-filtered batch contributes nothing.
  TupleBatch out = IntBatch(Sym(1), 2);
  out.Append(std::move(none));
  EXPECT_EQ(out.rows(), 2u);
}

TEST(TupleBatchTest, FlattenGathersThroughSelectionAndCountsCopies) {
  ScopedExecStats scope;
  TupleBatch b = IntBatch(Sym(1), 6);
  TupleBatch view = b.SelectRows({4, 0, 2});
  view.Flatten();
  EXPECT_EQ(view.rows(), 3u);
  EXPECT_EQ(view.physical_rows(), 3u);
  EXPECT_EQ(IntAt(view, 0, Sym(1)), 4);
  EXPECT_EQ(IntAt(view, 1, Sym(1)), 0);
  EXPECT_EQ(IntAt(view, 2, Sym(1)), 2);
  // The gather deep-copied one shared column — the copy-on-write write.
  EXPECT_EQ(scope.stats().cow_column_copies, 1);
  // Original is untouched.
  EXPECT_EQ(IntAt(b, 4, Sym(1)), 4);

  // Identity batches flatten for free.
  int64_t before = scope.stats().cow_column_copies;
  b.Flatten();
  EXPECT_EQ(scope.stats().cow_column_copies, before);
}

TEST(TupleBatchTest, BroadcastColumnServesEveryRow) {
  TupleBatch b = IntBatch(Sym(1), 4);
  TupleColumn ctx;
  ctx.field = Sym(2);
  ctx.values.push_back(Sequence{Item(static_cast<int64_t>(42))});
  b.AddBroadcastColumn(MakeColumn(std::move(ctx)));
  for (size_t i = 0; i < 4; ++i) EXPECT_EQ(IntAt(b, i, Sym(2)), 42);
  // Selection vectors do not apply to broadcast columns.
  TupleBatch view = b.SelectRows({3, 1});
  EXPECT_EQ(IntAt(view, 0, Sym(2)), 42);
  EXPECT_EQ(IntAt(view, 0, Sym(1)), 3);
  // Flatten expands the broadcast into per-row storage.
  view.Flatten();
  EXPECT_EQ(view.physical_rows(), 2u);
  EXPECT_EQ(IntAt(view, 1, Sym(2)), 42);
  EXPECT_EQ(IntAt(view, 1, Sym(1)), 1);
}

TEST(TupleBatchTest, AppendMovesUniqueAndCopiesShared) {
  ScopedExecStats scope;
  TupleBatch out = IntBatch(Sym(1), 2);
  out.Append(IntBatch(Sym(1), 3));  // uniquely owned: moved, no copy
  EXPECT_EQ(out.rows(), 5u);
  EXPECT_EQ(scope.stats().cow_column_copies, 0);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(IntAt(out, 2 + i, Sym(1)), static_cast<int64_t>(i));
  }

  // A batch whose column is still shared with another batch must be
  // deep-copied on append — the alias keeps reading its own storage.
  TupleBatch base = IntBatch(Sym(1), 2);
  TupleBatch alias = base.SelectRows({0, 1});
  out.Append(std::move(alias));
  EXPECT_EQ(out.rows(), 7u);
  EXPECT_GT(scope.stats().cow_column_copies, 0);
  EXPECT_EQ(IntAt(base, 1, Sym(1)), 1);  // survivor unaffected
}

TEST(TupleBatchTest, FromTuplesToTuplesRoundTrip) {
  ScopedExecStats scope;
  TupleSeq rows;
  for (int64_t i = 0; i < 3; ++i) {
    Tuple t;
    t.Set(Sym(1), Sequence{Item(i)});
    if (i == 1) t.Set(Sym(2), Sequence{Item(i * 10)});
    rows.push_back(std::move(t));
  }
  TupleBatch b = TupleBatch::FromTuples(rows);
  EXPECT_EQ(b.rows(), 3u);
  EXPECT_EQ(b.column_count(), 2u);  // union schema, first-seen order
  EXPECT_EQ(scope.stats().tuples_materialized, 3);
  // A row missing a field reads it as the empty sequence.
  const Sequence* absent = b.Get(0, Sym(2));
  ASSERT_NE(absent, nullptr);
  EXPECT_TRUE(absent->empty());
  EXPECT_EQ(IntAt(b, 1, Sym(2)), 10);

  TupleSeq back = b.ToTuples();
  ASSERT_EQ(back.size(), 3u);
  EXPECT_EQ((*back[1].Get(Sym(1)))[0].integer(), 1);
  EXPECT_EQ((*back[1].Get(Sym(2)))[0].integer(), 10);
}

TEST(RowViewTest, BridgesTupleAndBatchRows) {
  Tuple t;
  t.Set(Sym(1), Sequence{Item(static_cast<int64_t>(5))});
  RowView from_tuple(&t);
  EXPECT_TRUE(from_tuple.valid());
  EXPECT_EQ(from_tuple.AsTuple(), &t);
  ASSERT_NE(from_tuple.Get(Sym(1)), nullptr);
  EXPECT_EQ((*from_tuple.Get(Sym(1)))[0].integer(), 5);

  TupleBatch b = IntBatch(Sym(1), 4);
  RowView from_batch(&b, 2);
  EXPECT_TRUE(from_batch.valid());
  EXPECT_EQ(from_batch.AsTuple(), nullptr);
  EXPECT_EQ((*from_batch.Get(Sym(1)))[0].integer(), 2);
  Tuple mat = from_batch.Materialize();
  EXPECT_EQ((*mat.Get(Sym(1)))[0].integer(), 2);

  // ToBatch on a batch-backed row shares the column (selection of one).
  TupleBatch one = from_batch.ToBatch();
  EXPECT_EQ(one.rows(), 1u);
  EXPECT_EQ(one.columns()[0].column.get(), b.columns()[0].column.get());
  EXPECT_EQ(IntAt(one, 0, Sym(1)), 2);

  RowView invalid;
  EXPECT_FALSE(invalid.valid());
  EXPECT_EQ(invalid.Get(Sym(1)), nullptr);
  EXPECT_EQ(invalid.ToBatch().rows(), 0u);
}

// CoW aliasing under concurrency: two threads reading sibling batches
// that share columns (one of them flattening its OWN view — a private
// mutation over shared immutable storage) must be race-free. The TSan CI
// leg runs this test; the assertions also pin down value correctness.
TEST(TupleBatchTest, ConcurrentReadersOverSharedColumns) {
  constexpr size_t kRows = 4096;
  TupleBatch base = IntBatch(Sym(1), kRows);
  std::vector<uint32_t> evens, odds;
  for (uint32_t i = 0; i < kRows; i += 2) evens.push_back(i);
  for (uint32_t i = 1; i < kRows; i += 2) odds.push_back(i);
  TupleBatch even_view = base.SelectRows(evens);
  TupleBatch odd_view = base.SelectRows(odds);

  std::thread reader([&]() {
    int64_t sum = 0;
    for (size_t round = 0; round < 4; ++round) {
      for (size_t i = 0; i < even_view.rows(); ++i) {
        sum += (*even_view.Get(i, Sym(1)))[0].integer();
      }
    }
    EXPECT_EQ(sum, 4 * static_cast<int64_t>(kRows / 2) *
                       (static_cast<int64_t>(kRows) - 2) / 2);
  });
  // Flatten mutates odd_view's own bound-column vector while reading the
  // storage it shares with even_view/base — the race TSan would catch.
  odd_view.Flatten();
  reader.join();
  EXPECT_EQ((*odd_view.Get(0, Sym(1)))[0].integer(), 1);
  EXPECT_EQ((*odd_view.Get(odd_view.rows() - 1, Sym(1)))[0].integer(),
            static_cast<int64_t>(kRows) - 1);
  // base still reads its original values through the shared storage.
  EXPECT_EQ(IntAt(base, 0, Sym(1)), 0);
  EXPECT_EQ(IntAt(base, kRows - 1, Sym(1)), static_cast<int64_t>(kRows) - 1);
}

// Engine-level differential: row and batch modes are bit-identical on
// the XMark corpus, batch boundaries included (tiny tuple_batch_rows),
// and the ExecStats counters tell the two modes apart — batches only
// count under kBatch, and the batch path materializes far fewer tuples
// than the row path on select-heavy pipelines.
class TupleExecModeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workload::XmarkParams p;
    p.factor = 0.02;
    doc_ = engine_.AddDocument("x",
                               workload::GenerateXmark(p, engine_.interner()));
    globals_ = {{"input", {xdm::Item(doc_->root())}}};
  }

  Result<Sequence> Run(const engine::CompiledQuery& cq,
                       const EvalOptions& opts, ExecStats* stats) {
    ScopedExecStats scope;
    auto res = engine_.Execute(cq, globals_, opts);
    *stats = scope.stats();
    return res;
  }

  engine::Engine engine_;
  const xml::Document* doc_;
  engine::Engine::GlobalMap globals_;
};

TEST_F(TupleExecModeTest, RowAndBatchBitIdenticalOnXmarkCorpus) {
  for (const workload::XmarkQuery& q : workload::XmarkQueryCorpus()) {
    auto cq = engine_.Compile(q.text);
    ASSERT_TRUE(cq.ok()) << q.id << ": " << cq.status().ToString();
    EvalOptions row;
    row.threads = 1;
    row.tuple_exec = TupleExecMode::kRow;
    ExecStats row_stats;
    auto ref = Run(*cq, row, &row_stats);
    ASSERT_TRUE(ref.ok()) << q.id << ": " << ref.status().ToString();
    EXPECT_EQ(row_stats.batches, 0) << q.id << ": row mode counted batches";

    for (int batch_rows : {1024, 3, 1}) {
      EvalOptions batch;
      batch.threads = 1;
      batch.tuple_batch_rows = batch_rows;
      ExecStats batch_stats;
      auto res = Run(*cq, batch, &batch_stats);
      ASSERT_TRUE(res.ok())
          << q.id << " batch_rows=" << batch_rows << ": "
          << res.status().ToString();
      ASSERT_EQ(res->size(), ref->size())
          << q.id << " batch_rows=" << batch_rows;
      for (size_t i = 0; i < res->size(); ++i) {
        ASSERT_TRUE((*res)[i] == (*ref)[i])
            << q.id << " batch_rows=" << batch_rows << " item " << i;
      }
    }
  }
}

TEST_F(TupleExecModeTest, BatchModeCountsBatchesAndMaterializesFewerTuples) {
  // A pattern pipeline with real fan-out: the row path copies the input
  // tuple once per binding row; the batch path broadcasts it.
  auto cq = engine_.Compile("$input//item//name");
  ASSERT_TRUE(cq.ok());

  EvalOptions row;
  row.threads = 1;
  row.tuple_exec = TupleExecMode::kRow;
  ExecStats row_stats;
  ASSERT_TRUE(Run(*cq, row, &row_stats).ok());

  EvalOptions batch;
  batch.threads = 1;
  ExecStats batch_stats;
  ASSERT_TRUE(Run(*cq, batch, &batch_stats).ok());

  EXPECT_EQ(row_stats.batches, 0);
  EXPECT_GT(batch_stats.batches, 0);
  EXPECT_GT(row_stats.tuples_materialized, 0);
  EXPECT_LE(batch_stats.tuples_materialized, row_stats.tuples_materialized);
  // The counters surface through the human-readable stats line.
  EXPECT_NE(batch_stats.ToString().find("batches="), std::string::npos);
  EXPECT_NE(batch_stats.ToString().find("cow_column_copies="),
            std::string::npos);
}

}  // namespace
}  // namespace xqtp::exec
