#include "workload/xmark_gen.h"

#include <random>
#include <string>

namespace xqtp::workload {

namespace {

constexpr const char* kRegions[] = {"africa",  "asia",   "australia",
                                    "europe",  "namerica", "samerica"};
constexpr const char* kInterests[] = {"sports", "music",  "travel", "books",
                                      "movies", "art",    "food",   "tech"};
constexpr const char* kCities[] = {"Antwerp", "Yorktown", "Paris", "Tokyo",
                                   "Nairobi", "Sydney"};

class Generator {
 public:
  Generator(const XmarkParams& params, StringInterner* interner)
      : rng_(params.seed), builder_(interner) {
    persons_ = std::max(10, static_cast<int>(25500 * params.factor / 10));
    items_ = std::max(12, static_cast<int>(persons_ * 4 / 5));
    open_auctions_ = std::max(6, persons_ / 2);
    closed_auctions_ = std::max(4, persons_ / 3);
    categories_ = std::max(4, persons_ / 25);
  }

  std::unique_ptr<xml::Document> Run() {
    builder_.StartElement("site");
    EmitRegions();
    EmitCategories();
    EmitPeople();
    EmitOpenAuctions();
    EmitClosedAuctions();
    builder_.EndElement();
    return builder_.Finish();
  }

 private:
  int Rand(int lo, int hi) {
    std::uniform_int_distribution<int> d(lo, hi);
    return d(rng_);
  }
  bool Chance(double p) {
    std::uniform_real_distribution<double> d(0.0, 1.0);
    return d(rng_) < p;
  }

  void Leaf(const char* tag, const std::string& text) {
    builder_.StartElement(tag);
    builder_.Text(text);
    builder_.EndElement();
  }

  void EmitRegions() {
    builder_.StartElement("regions");
    int per_region = std::max(2, items_ / 6);
    int item_id = 0;
    for (const char* region : kRegions) {
      builder_.StartElement(region);
      for (int i = 0; i < per_region; ++i) {
        builder_.StartElement("item");
        builder_.Attribute("id", "item" + std::to_string(item_id++));
        Leaf("location", kCities[Rand(0, 5)]);
        Leaf("name", "item name " + std::to_string(item_id));
        builder_.StartElement("description");
        builder_.StartElement("text");
        builder_.Text("a fine piece of merchandise, number " +
                      std::to_string(item_id));
        builder_.EndElement();
        builder_.EndElement();
        Leaf("quantity", std::to_string(Rand(1, 5)));
        if (Chance(0.6)) Leaf("payment", "Creditcard");
        if (Chance(0.4)) {
          builder_.StartElement("mailbox");
          int mails = Rand(0, 3);
          for (int m = 0; m < mails; ++m) {
            builder_.StartElement("mail");
            Leaf("from", "person" + std::to_string(Rand(0, persons_ - 1)));
            Leaf("date", "07/0" + std::to_string(Rand(1, 9)) + "/2006");
            builder_.EndElement();
          }
          builder_.EndElement();
        }
        builder_.EndElement();
      }
      builder_.EndElement();
    }
    builder_.EndElement();
  }

  void EmitCategories() {
    builder_.StartElement("categories");
    for (int c = 0; c < categories_; ++c) {
      builder_.StartElement("category");
      builder_.Attribute("id", "category" + std::to_string(c));
      Leaf("name", "category name " + std::to_string(c));
      builder_.StartElement("description");
      builder_.StartElement("text");
      builder_.Text("all sorts of things in category " + std::to_string(c));
      builder_.EndElement();
      builder_.EndElement();
      builder_.EndElement();
    }
    builder_.EndElement();
  }

  void EmitPeople() {
    builder_.StartElement("people");
    for (int p = 0; p < persons_; ++p) {
      builder_.StartElement("person");
      builder_.Attribute("id", "person" + std::to_string(p));
      Leaf("name", "Person Name " + std::to_string(p));
      // The paper's running example filters on emailaddress presence:
      // keep a realistic fraction without one.
      if (Chance(0.8)) {
        Leaf("emailaddress", "mailto:person" + std::to_string(p) +
                                 "@example.com");
      }
      if (Chance(0.3)) Leaf("phone", "+32 3 " + std::to_string(Rand(100000, 999999)));
      if (Chance(0.5)) {
        builder_.StartElement("address");
        Leaf("street", std::to_string(Rand(1, 99)) + " Main St");
        Leaf("city", kCities[Rand(0, 5)]);
        Leaf("country", "Belgium");
        Leaf("zipcode", std::to_string(Rand(1000, 9999)));
        builder_.EndElement();
      }
      if (Chance(0.25)) {
        Leaf("homepage", "http://example.com/~person" + std::to_string(p));
      }
      if (Chance(0.35)) Leaf("creditcard", "1234 5678 9012 3456");
      if (Chance(0.75)) {
        builder_.StartElement("profile");
        builder_.Attribute("income", std::to_string(Rand(10000, 99999)));
        int interests = Rand(0, 4);
        for (int i = 0; i < interests; ++i) {
          builder_.StartElement("interest");
          builder_.Attribute("category",
                             kInterests[Rand(0, 7)]);
          builder_.EndElement();
        }
        if (Chance(0.5)) Leaf("education", "Graduate School");
        Leaf("business", Chance(0.5) ? "Yes" : "No");
        if (Chance(0.6)) Leaf("age", std::to_string(Rand(18, 80)));
        builder_.EndElement();
      }
      builder_.StartElement("watches");
      int watches = Rand(0, 2);
      for (int w = 0; w < watches; ++w) {
        builder_.StartElement("watch");
        builder_.Attribute("open_auction",
                           "open_auction" +
                               std::to_string(Rand(0, open_auctions_ - 1)));
        builder_.EndElement();
      }
      builder_.EndElement();
      builder_.EndElement();
    }
    builder_.EndElement();
  }

  void EmitOpenAuctions() {
    builder_.StartElement("open_auctions");
    for (int a = 0; a < open_auctions_; ++a) {
      builder_.StartElement("open_auction");
      builder_.Attribute("id", "open_auction" + std::to_string(a));
      Leaf("initial", std::to_string(Rand(1, 200)));
      if (Chance(0.4)) Leaf("reserve", std::to_string(Rand(50, 400)));
      int bidders = Rand(0, 5);
      for (int b = 0; b < bidders; ++b) {
        builder_.StartElement("bidder");
        Leaf("date", "07/0" + std::to_string(Rand(1, 9)) + "/2006");
        builder_.StartElement("personref");
        builder_.Attribute("person",
                           "person" + std::to_string(Rand(0, persons_ - 1)));
        builder_.EndElement();
        Leaf("increase", std::to_string(Rand(1, 25)));
        builder_.EndElement();
      }
      Leaf("current", std::to_string(Rand(1, 600)));
      builder_.StartElement("itemref");
      builder_.Attribute("item", "item" + std::to_string(Rand(0, items_ - 1)));
      builder_.EndElement();
      builder_.StartElement("seller");
      builder_.Attribute("person",
                         "person" + std::to_string(Rand(0, persons_ - 1)));
      builder_.EndElement();
      Leaf("quantity", std::to_string(Rand(1, 3)));
      Leaf("type", Chance(0.5) ? "Regular" : "Featured");
      builder_.StartElement("interval");
      Leaf("start", "07/01/2006");
      Leaf("end", "08/01/2006");
      builder_.EndElement();
      builder_.EndElement();
    }
    builder_.EndElement();
  }

  void EmitClosedAuctions() {
    builder_.StartElement("closed_auctions");
    for (int a = 0; a < closed_auctions_; ++a) {
      builder_.StartElement("closed_auction");
      builder_.StartElement("seller");
      builder_.Attribute("person",
                         "person" + std::to_string(Rand(0, persons_ - 1)));
      builder_.EndElement();
      builder_.StartElement("buyer");
      builder_.Attribute("person",
                         "person" + std::to_string(Rand(0, persons_ - 1)));
      builder_.EndElement();
      builder_.StartElement("itemref");
      builder_.Attribute("item", "item" + std::to_string(Rand(0, items_ - 1)));
      builder_.EndElement();
      Leaf("price", std::to_string(Rand(1, 600)));
      Leaf("date", "07/0" + std::to_string(Rand(1, 9)) + "/2006");
      Leaf("quantity", std::to_string(Rand(1, 3)));
      Leaf("type", Chance(0.5) ? "Regular" : "Featured");
      builder_.EndElement();
    }
    builder_.EndElement();
  }

  std::mt19937_64 rng_;
  xml::DocumentBuilder builder_;
  int persons_;
  int items_;
  int open_auctions_;
  int closed_auctions_;
  int categories_;
};

}  // namespace

std::unique_ptr<xml::Document> GenerateXmark(const XmarkParams& params,
                                             StringInterner* interner) {
  Generator g(params, interner);
  return g.Run();
}

}  // namespace xqtp::workload
