// String interner mapping names (element tags, attribute names, tuple field
// names) to dense integer symbols. All documents and queries processed by one
// Engine share one interner, so tag comparison anywhere in the pipeline is an
// integer comparison.
#ifndef XQTP_COMMON_INTERNER_H_
#define XQTP_COMMON_INTERNER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace xqtp {

/// Dense symbol id produced by StringInterner. kInvalidSymbol means "none".
using Symbol = int32_t;
inline constexpr Symbol kInvalidSymbol = -1;

/// Bidirectional name <-> Symbol map. Not thread-safe; one per Engine.
class StringInterner {
 public:
  StringInterner() = default;
  StringInterner(const StringInterner&) = delete;
  StringInterner& operator=(const StringInterner&) = delete;

  /// Returns the symbol for `name`, creating it on first use.
  Symbol Intern(std::string_view name);

  /// Returns the symbol for `name` or kInvalidSymbol if never interned.
  Symbol Lookup(std::string_view name) const;

  /// Returns the name for a valid symbol.
  const std::string& NameOf(Symbol sym) const { return names_.at(sym); }

  size_t size() const { return names_.size(); }

 private:
  std::unordered_map<std::string, Symbol> map_;
  std::vector<std::string> names_;
};

}  // namespace xqtp

#endif  // XQTP_COMMON_INTERNER_H_
