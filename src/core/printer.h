// Rendering of Core expressions in the paper's style, e.g.
//   ddo(for $dot in $d return descendant::person)
// Steps print bare (without their context variable) like the paper; a
// verbose mode prints unique variable ids for debugging scope issues.
#ifndef XQTP_CORE_PRINTER_H_
#define XQTP_CORE_PRINTER_H_

#include <string>

#include "core/ast.h"

namespace xqtp::core {

struct PrintOptions {
  /// Print $name_<id> instead of $name, and the step context explicitly.
  bool verbose = false;
};

std::string ToString(const CoreExpr& e, const VarTable& vars,
                     const StringInterner& interner,
                     const PrintOptions& opts = {});

}  // namespace xqtp::core

#endif  // XQTP_CORE_PRINTER_H_
