// String interner mapping names (element tags, attribute names, tuple field
// names) to dense integer symbols. All documents and queries processed by one
// Engine share one interner, so tag comparison anywhere in the pipeline is an
// integer comparison.
#ifndef XQTP_COMMON_INTERNER_H_
#define XQTP_COMMON_INTERNER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace xqtp {

/// Dense symbol id produced by StringInterner. kInvalidSymbol means "none".
using Symbol = int32_t;
inline constexpr Symbol kInvalidSymbol = -1;

/// Bidirectional name <-> Symbol map. Not thread-safe for writers; one per
/// Engine. Every name a query or document can refer to is interned during
/// parsing / compilation / document building — execution only ever READS
/// the interner (NameOf for error messages, Lookup never mutates). That
/// contract is what makes the morsel workers of exec/parallel.h safe
/// without a lock here; ExecutionFreeze turns it into a debug assertion.
class StringInterner {
 public:
  StringInterner() = default;
  StringInterner(const StringInterner&) = delete;
  StringInterner& operator=(const StringInterner&) = delete;

  /// RAII scope asserting "no interning while executing": while any
  /// ExecutionFreeze is alive, Intern() debug-asserts. Engine::Execute
  /// holds one around plan evaluation, so a code path that tries to
  /// create a symbol mid-query (and would race concurrent readers) fails
  /// fast in debug builds instead of corrupting the map.
  class ExecutionFreeze {
   public:
    explicit ExecutionFreeze(const StringInterner& interner)
        : interner_(interner) {
      interner_.freeze_count_.fetch_add(1, std::memory_order_relaxed);
    }
    ~ExecutionFreeze() {
      interner_.freeze_count_.fetch_sub(1, std::memory_order_relaxed);
    }
    ExecutionFreeze(const ExecutionFreeze&) = delete;
    ExecutionFreeze& operator=(const ExecutionFreeze&) = delete;

   private:
    const StringInterner& interner_;
  };

  /// Returns the symbol for `name`, creating it on first use. Must not be
  /// called while an ExecutionFreeze is active (debug-asserted).
  Symbol Intern(std::string_view name);

  /// Returns the symbol for `name` or kInvalidSymbol if never interned.
  /// Read-only: safe to call concurrently while no Intern runs.
  Symbol Lookup(std::string_view name) const;

  /// Returns the name for a valid symbol. Read-only, like Lookup.
  const std::string& NameOf(Symbol sym) const { return names_.at(sym); }

  size_t size() const { return names_.size(); }

  /// True while any ExecutionFreeze is alive (exposed for tests).
  bool frozen() const {
    return freeze_count_.load(std::memory_order_relaxed) > 0;
  }

 private:
  std::unordered_map<std::string, Symbol> map_;
  std::vector<std::string> names_;
  /// Number of live ExecutionFreeze scopes. Mutable + atomic: freezing is
  /// a logically-const observation concern, and nested freezes (engine
  /// Execute inside an analysis cross-check) must both count.
  mutable std::atomic<int> freeze_count_{0};
};

}  // namespace xqtp

#endif  // XQTP_COMMON_INTERNER_H_
