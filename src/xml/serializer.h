// Serialization of nodes back to XML text (used by examples and tests).
#ifndef XQTP_XML_SERIALIZER_H_
#define XQTP_XML_SERIALIZER_H_

#include <string>

#include "xml/node.h"

namespace xqtp::xml {

/// Serializes a node (element, text, attribute, or whole document) to XML.
/// Attribute nodes serialize as name="value".
std::string Serialize(const Node* node);

/// Escapes &, <, >, " for inclusion in XML text or attribute values.
std::string EscapeText(const std::string& text);

}  // namespace xqtp::xml

#endif  // XQTP_XML_SERIALIZER_H_
