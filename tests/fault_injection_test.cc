// The fault-injection sweep (common/fault_injection.h): every registered
// site is armed in turn and the full pipeline — parse, compile, execute —
// is driven through it. Each injection must surface as a clean tagged
// Status naming its site (no crash, no leak under ASan, no stuck worker
// under TSan), and a non-injected re-run must reproduce the baseline
// result bit for bit.
//
// kRegistry below is the authoritative list of fault sites:
// tools/lint.py (rule fault-site-registered) fails the build if an
// XQTP_FAULT_POINT(...) or fault::Poll(...) name in src/ is missing here.
#include <gtest/gtest.h>

#include <string>

#include "common/fault_injection.h"
#include "engine/engine.h"
#include "exec/pattern_eval.h"

namespace xqtp {
namespace {

/// Which pipeline configuration reaches a given site: the per-algorithm
/// sites need their algorithm selected, the morsel site needs the
/// parallel driver engaged.
struct SiteConfig {
  const char* site;
  exec::PatternAlgo algo;
  int threads;
};

constexpr SiteConfig kRegistry[] = {
    // Document loading.
    {"xml.parse.element", exec::PatternAlgo::kNLJoin, 1},
    // Compilation phases.
    {"core.normalize", exec::PatternAlgo::kNLJoin, 1},
    {"core.rewrite.round", exec::PatternAlgo::kNLJoin, 1},
    {"algebra.compile", exec::PatternAlgo::kNLJoin, 1},
    {"algebra.optimize.round", exec::PatternAlgo::kNLJoin, 1},
    // Plan-cache fill boundary: the injected error must flow through the
    // single-flight error-publication path and must not be cached.
    {"engine.plan_cache.fill", exec::PatternAlgo::kNLJoin, 1},
    // Execution spine.
    {"engine.execute", exec::PatternAlgo::kNLJoin, 1},
    {"exec.evaluate", exec::PatternAlgo::kNLJoin, 1},
    {"exec.fn_call", exec::PatternAlgo::kNLJoin, 1},
    // Pattern dispatch and every physical algorithm.
    {"exec.pattern.dispatch", exec::PatternAlgo::kNLJoin, 1},
    {"exec.pattern.nl", exec::PatternAlgo::kNLJoin, 1},
    {"exec.pattern.staircase", exec::PatternAlgo::kStaircase, 1},
    {"exec.pattern.twig", exec::PatternAlgo::kTwig, 1},
    {"exec.pattern.stream", exec::PatternAlgo::kStream, 1},
    {"exec.pattern.twigstack", exec::PatternAlgo::kTwigStack, 1},
    {"storage.pattern.shredded", exec::PatternAlgo::kShredded, 1},
    // Morsel-parallel driver: a worker hits the fault mid-query and the
    // pool must still drain.
    {"exec.parallel.morsel", exec::PatternAlgo::kNLJoin, 4},
};

/// A document whose root-step fan-out (40 person elements) morselizes
/// under parallel_min_fanout = 4, so the parallel site is reachable.
std::string BuildDocumentXml() {
  std::string xml = "<site><people>";
  for (int i = 0; i < 40; ++i) {
    std::string n = std::to_string(i);
    xml += "<person><name>p" + n + "</name><emailaddress>e" + n +
           "</emailaddress></person>";
  }
  xml += "</people></site>";
  return xml;
}

/// The query reaches the function-call, pattern, and parallel sites.
constexpr const char* kQuery =
    "fn:count($input//person[emailaddress]/name)";

/// One complete pipeline run from a fresh engine, so an injection in any
/// phase — including document parsing — is exercised every sweep step.
/// The Debug-default verifiers and the translation-validation oracle are
/// off: the oracle executes witness queries during Compile, which would
/// burn the armed injection inside the oracle instead of the pipeline
/// under test.
Result<xdm::Sequence> RunPipeline(const SiteConfig& cfg) {
  engine::EngineOptions eopts;
  eopts.verify_plans = false;
  eopts.analysis.check_equivalence = false;
  engine::Engine engine(eopts);
  XQTP_ASSIGN_OR_RETURN(const xml::Document* doc,
                        engine.LoadDocument("d", BuildDocumentXml()));
  engine::Engine::GlobalMap globals{{"input", {xdm::Item(doc->root())}}};
  exec::EvalOptions opts;
  opts.algo = cfg.algo;
  opts.threads = cfg.threads;
  opts.parallel_min_fanout = 4;
  // The serving entry point: compilation goes through the plan cache, so
  // the sweep also covers the cache-fill boundary site. The engine is
  // fresh each run — every compile is a genuine fill.
  return engine.ExecuteQuery(kQuery, globals, opts);
}

TEST(FaultInjectionSweep, EverySiteFailsCleanlyAndRecovers) {
  if (!fault::Enabled()) {
    GTEST_SKIP() << "fault points compiled out (NDEBUG build without "
                    "-DXQTP_FAULT_INJECTION=ON)";
  }
  static_assert(std::size(kRegistry) >= 10,
                "the sweep must cover at least ten sites");
  for (const SiteConfig& cfg : kRegistry) {
    SCOPED_TRACE(cfg.site);

    // Baseline with nothing armed.
    auto baseline = RunPipeline(cfg);
    ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
    ASSERT_EQ(baseline->size(), 1u);  // fn:count returns one integer

    {
      fault::ScopedFault armed(cfg.site);
      auto res = RunPipeline(cfg);
      ASSERT_GT(fault::ArmedPollCount(), 0)
          << "site was never polled — dead registry entry or unreachable "
             "configuration";
      ASSERT_FALSE(res.ok()) << "armed site did not surface an error";
      const std::string msg = res.status().ToString();
      EXPECT_NE(msg.find(fault::kTag()), std::string::npos) << msg;
      EXPECT_NE(msg.find(cfg.site), std::string::npos) << msg;
    }

    // Disarmed re-run: bit-identical to the baseline.
    auto rerun = RunPipeline(cfg);
    ASSERT_TRUE(rerun.ok()) << rerun.status().ToString();
    ASSERT_EQ(rerun->size(), baseline->size());
    for (size_t i = 0; i < rerun->size(); ++i) {
      EXPECT_TRUE((*rerun)[i] == (*baseline)[i]) << "item " << i;
    }
  }
}

// Deeper occurrences: the nth-poll knob reaches a site's second firing
// opportunity (the per-tuple fn_call site polls once per evaluation).
TEST(FaultInjectionTest, FiresOnNthPoll) {
  if (!fault::Enabled()) GTEST_SKIP() << "fault points compiled out";
  SiteConfig cfg{"exec.evaluate", exec::PatternAlgo::kNLJoin, 1};
  fault::ScopedFault armed("exec.evaluate", /*fire_on_nth=*/2);
  auto res = RunPipeline(cfg);
  // The evaluate site is polled once per Evaluate entry; with a single
  // top-level evaluation the second poll never happens and the query
  // succeeds — the knob must not fire early.
  if (res.ok()) {
    EXPECT_EQ(fault::ArmedPollCount(), 1);
  } else {
    EXPECT_NE(res.status().ToString().find(fault::kTag()), std::string::npos);
  }
}

TEST(FaultInjectionTest, DisarmedPollsAreFree) {
  if (!fault::Enabled()) GTEST_SKIP() << "fault points compiled out";
  // Nothing armed: polls succeed and do not count.
  EXPECT_TRUE(fault::Poll("exec.evaluate").ok());
  EXPECT_TRUE(fault::Poll("no.such.site").ok());
}

}  // namespace
}  // namespace xqtp
