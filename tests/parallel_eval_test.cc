// The morsel-parallel driver (exec/parallel.h) must be invisible in the
// results: every algorithm, at every thread count, returns exactly the
// sequence the sequential path returns — same items, same order, same
// cardinality. parallel_min_fanout is forced down so even the small test
// document actually morselizes.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "exec/parallel.h"
#include "exec/pattern_eval.h"
#include "workload/xmark_gen.h"
#include "workload/xmark_queries.h"

namespace xqtp::exec {
namespace {

constexpr PatternAlgo kAllAlgos[] = {
    PatternAlgo::kNLJoin,    PatternAlgo::kStaircase, PatternAlgo::kTwig,
    PatternAlgo::kStream,    PatternAlgo::kTwigStack, PatternAlgo::kShredded,
};

EvalOptions ParallelOpts(PatternAlgo algo, int threads) {
  EvalOptions opts;
  opts.algo = algo;
  opts.threads = threads;
  // Small enough that the XMark corpus queries morselize on a 0.03-factor
  // document; small morsels exercise the merge on many runs.
  opts.parallel_min_fanout = 4;
  opts.parallel_morsels_per_thread = 4;
  return opts;
}

class ParallelEvalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workload::XmarkParams p;
    p.factor = 0.03;
    doc_ = engine_.AddDocument("x", workload::GenerateXmark(p, engine_.interner()));
  }

  engine::Engine engine_;
  const xml::Document* doc_;
};

// Tentpole acceptance: all six algorithms x {row, batch} execution modes
// x {1, 2, 8} threads x the XMark query corpus, bit-identical to the
// sequential row-mode result. The mode dimension pins the columnar batch
// evaluator (and its morsel driver entry) to the row-at-a-time reference,
// including a tiny-batch leg so multi-row streams cross batch boundaries.
TEST_F(ParallelEvalTest, BitIdenticalAcrossThreadsAndAlgorithms) {
  engine::Engine::GlobalMap globals{{"input", {xdm::Item(doc_->root())}}};
  for (const workload::XmarkQuery& q : workload::XmarkQueryCorpus()) {
    auto cq = engine_.Compile(q.text);
    ASSERT_TRUE(cq.ok()) << q.id << ": " << cq.status().ToString();
    for (PatternAlgo algo : kAllAlgos) {
      EvalOptions ref_opts = ParallelOpts(algo, 1);
      ref_opts.tuple_exec = TupleExecMode::kRow;
      auto ref = engine_.Execute(*cq, globals, ref_opts);
      ASSERT_TRUE(ref.ok())
          << q.id << " [" << PatternAlgoName(algo) << "] sequential: "
          << ref.status().ToString();
      for (TupleExecMode mode : {TupleExecMode::kRow, TupleExecMode::kBatch}) {
        const char* mode_name = mode == TupleExecMode::kRow ? "row" : "batch";
        for (int threads : {1, 2, 8}) {
          if (mode == TupleExecMode::kRow && threads == 1) continue;  // ref
          EvalOptions opts = ParallelOpts(algo, threads);
          opts.tuple_exec = mode;
          auto res = engine_.Execute(*cq, globals, opts);
          ASSERT_TRUE(res.ok())
              << q.id << " [" << PatternAlgoName(algo) << " " << mode_name
              << " t" << threads << "]: " << res.status().ToString();
          ASSERT_EQ(res->size(), ref->size())
              << q.id << " [" << PatternAlgoName(algo) << " " << mode_name
              << " t" << threads << "]";
          for (size_t i = 0; i < res->size(); ++i) {
            ASSERT_TRUE((*res)[i] == (*ref)[i])
                << q.id << " [" << PatternAlgoName(algo) << " " << mode_name
                << " t" << threads << "] item " << i;
          }
        }
      }
      // Tiny-batch leg: forces batch boundaries inside every multi-row
      // stream without multiplying the whole matrix.
      EvalOptions tiny = ParallelOpts(algo, 2);
      tiny.tuple_batch_rows = 3;
      auto res = engine_.Execute(*cq, globals, tiny);
      ASSERT_TRUE(res.ok())
          << q.id << " [" << PatternAlgoName(algo) << " batch_rows=3]: "
          << res.status().ToString();
      ASSERT_EQ(res->size(), ref->size())
          << q.id << " [" << PatternAlgoName(algo) << " batch_rows=3]";
      for (size_t i = 0; i < res->size(); ++i) {
        ASSERT_TRUE((*res)[i] == (*ref)[i])
            << q.id << " [" << PatternAlgoName(algo) << " batch_rows=3] item "
            << i;
      }
    }
  }
}

// The cost-based meta-algorithm resolves to a concrete algorithm before
// the driver morselizes; it must agree with itself across thread counts.
TEST_F(ParallelEvalTest, CostBasedAgreesAcrossThreads) {
  engine::Engine::GlobalMap globals{{"input", {xdm::Item(doc_->root())}}};
  auto cq = engine_.Compile("$input//person[emailaddress]//interest");
  ASSERT_TRUE(cq.ok());
  auto ref = engine_.Execute(*cq, globals,
                             ParallelOpts(PatternAlgo::kCostBased, 1));
  ASSERT_TRUE(ref.ok());
  for (int threads : {2, 8}) {
    auto res = engine_.Execute(*cq, globals,
                               ParallelOpts(PatternAlgo::kCostBased, threads));
    ASSERT_TRUE(res.ok());
    ASSERT_EQ(res->size(), ref->size());
    for (size_t i = 0; i < res->size(); ++i) {
      EXPECT_TRUE((*res)[i] == (*ref)[i]) << "item " << i;
    }
  }
}

// Empty-input edge case: a query whose context sequence is empty must
// return an empty sequence at every thread count without morselizing.
TEST_F(ParallelEvalTest, EmptyInput) {
  auto cq = engine_.Compile("$input//keyword");
  ASSERT_TRUE(cq.ok());
  engine::Engine::GlobalMap globals{{"input", {}}};
  for (PatternAlgo algo : kAllAlgos) {
    for (int threads : {1, 2, 8}) {
      auto res = engine_.Execute(*cq, globals, ParallelOpts(algo, threads));
      ASSERT_TRUE(res.ok())
          << PatternAlgoName(algo) << " t" << threads << ": "
          << res.status().ToString();
      EXPECT_TRUE(res->empty()) << PatternAlgoName(algo) << " t" << threads;
    }
  }
}

// A query matching nothing (no such tag anywhere) exercises the merge of
// all-empty morsel runs.
TEST_F(ParallelEvalTest, EmptyResultAfterMorselizing) {
  auto cq = engine_.Compile("$input//keyword/site");
  ASSERT_TRUE(cq.ok());
  engine::Engine::GlobalMap globals{{"input", {xdm::Item(doc_->root())}}};
  for (PatternAlgo algo : kAllAlgos) {
    for (int threads : {2, 8}) {
      auto res = engine_.Execute(*cq, globals, ParallelOpts(algo, threads));
      ASSERT_TRUE(res.ok()) << PatternAlgoName(algo) << " t" << threads;
      EXPECT_TRUE(res->empty()) << PatternAlgoName(algo) << " t" << threads;
    }
  }
}

// Single-morsel edge case: with the fan-out floor above the candidate
// count the driver must fall back to the plain sequential path (and still
// return identical results).
TEST_F(ParallelEvalTest, SingleMorselFallsBackToSequential) {
  auto cq = engine_.Compile("$input//person[emailaddress]/name");
  ASSERT_TRUE(cq.ok());
  engine::Engine::GlobalMap globals{{"input", {xdm::Item(doc_->root())}}};
  for (PatternAlgo algo : kAllAlgos) {
    auto ref = engine_.Execute(*cq, globals, ParallelOpts(algo, 1));
    ASSERT_TRUE(ref.ok());
    EvalOptions opts = ParallelOpts(algo, 8);
    opts.parallel_min_fanout = 1 << 30;  // never reached: one morsel max
    auto res = engine_.Execute(*cq, globals, opts);
    ASSERT_TRUE(res.ok()) << PatternAlgoName(algo);
    ASSERT_EQ(res->size(), ref->size()) << PatternAlgoName(algo);
    for (size_t i = 0; i < res->size(); ++i) {
      EXPECT_TRUE((*res)[i] == (*ref)[i])
          << PatternAlgoName(algo) << " item " << i;
    }
  }
}

// Regression: root fan-out re-roots the pattern with a self axis, a shape
// the optimizer never builds. The Stream evaluator used to miss a later
// descendant-or-self step matching the context node itself under the
// self-rooted instance (found by the equiv_fuzz oracle).
TEST(ParallelRerootTest, SelfRootedStreamKeepsContextMatches) {
  engine::Engine e;
  auto doc = e.LoadDocument("w", "<r><b><b><d/></b><a/></b></r>");
  ASSERT_TRUE(doc.ok());
  auto cq = e.Compile("$input/descendant::b/descendant-or-self::node()");
  ASSERT_TRUE(cq.ok());
  engine::Engine::GlobalMap globals{{"input", {xdm::Item((*doc)->root())}}};
  for (PatternAlgo algo : kAllAlgos) {
    auto ref = e.Execute(*cq, globals, ParallelOpts(algo, 1));
    ASSERT_TRUE(ref.ok()) << PatternAlgoName(algo);
    ASSERT_EQ(ref->size(), 4u) << PatternAlgoName(algo);  // b, b, d, a
    EvalOptions opts = ParallelOpts(algo, 2);
    opts.parallel_min_fanout = 2;
    opts.parallel_morsels_per_thread = 2;
    auto res = e.Execute(*cq, globals, opts);
    ASSERT_TRUE(res.ok()) << PatternAlgoName(algo);
    ASSERT_EQ(res->size(), ref->size()) << PatternAlgoName(algo);
    for (size_t i = 0; i < res->size(); ++i) {
      EXPECT_TRUE((*res)[i] == (*ref)[i])
          << PatternAlgoName(algo) << " item " << i;
    }
  }
}

// Regression for the BENCH_smoke.json scaling cliff ($input//item//location
// NLJoin: 528µs @2t → 618µs @4t → 717µs @8t before the clamp): the driver
// must size pool and morsels by the work actually available — one thread
// per min_fanout units — instead of the requested maximum, so an
// 8-thread request over a ~1000-candidate fan-out runs ~3 threads wide.
TEST(ThreadClampTest, EffectiveThreadsTrackAvailableMorsels) {
  // The bench shape: 1020 //item candidates, default min_fanout 256.
  EXPECT_EQ(ClampParallelThreads(1020, 8, 256), 3);
  EXPECT_EQ(ClampParallelThreads(1020, 4, 256), 3);
  EXPECT_EQ(ClampParallelThreads(1020, 2, 256), 2);
  // Plenty of units: the requested width is honored.
  EXPECT_EQ(ClampParallelThreads(8 * 256, 8, 256), 8);
  EXPECT_EQ(ClampParallelThreads(100000, 8, 256), 8);
  // The floor is 2: the min_fanout gate (not the clamp) decides whether
  // parallelism happens at all, so tiny-but-eligible fan-outs keep their
  // two-way split (the translation-validation oracle relies on this).
  EXPECT_EQ(ClampParallelThreads(4, 8, 4), 2);
  EXPECT_EQ(ClampParallelThreads(2, 2, 2), 2);
  // Sequential requests pass through untouched.
  EXPECT_EQ(ClampParallelThreads(1020, 1, 256), 1);
  EXPECT_EQ(ClampParallelThreads(1020, 0, 256), 0);
  // Degenerate min_fanout never divides by zero.
  EXPECT_EQ(ClampParallelThreads(1020, 8, 0), 8);
}

// ThreadPool plumbing: ResolveThreads maps the EvalOptions encoding to an
// actual worker count.
TEST(ThreadPoolTest, ResolveThreads) {
  EXPECT_GE(ThreadPool::ResolveThreads(0), 1);  // auto: hardware threads
  EXPECT_EQ(ThreadPool::ResolveThreads(1), 1);
  EXPECT_EQ(ThreadPool::ResolveThreads(2), 2);
  EXPECT_EQ(ThreadPool::ResolveThreads(8), 8);
}

// The pool's batch protocol: every index claimed exactly once, across
// repeated batches (generation counter resets next_ correctly).
TEST(ThreadPoolTest, RunClaimsEachIndexOnce) {
  ThreadPool pool(4);
  for (int round = 0; round < 3; ++round) {
    std::vector<std::atomic<int>> hits(97);
    for (auto& h : hits) h.store(0);
    pool.Run(static_cast<int>(hits.size()),
             [&hits](int i) { hits[static_cast<size_t>(i)].fetch_add(1); });
    for (size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "round " << round << " index " << i;
    }
  }
}

TEST(ThreadPoolTest, RunWithZeroCountIsANoOp) {
  ThreadPool pool(2);
  pool.Run(0, [](int) { FAIL() << "fn called for empty batch"; });
}

// The legacy Engine::Execute(q, globals, algo, plan) overload is
// documented as the sequential path (threads = 1): per-algorithm
// ExecStats must stay deterministic, so it must never route through the
// morsel-parallel driver — even on a query wide enough to morselize.
// ParallelEvaluationCountForTesting() increments each time a pattern is
// actually handed to a thread pool; the EvalOptions overload with
// threads=2 proves the same query DOES parallelize when asked to, so a
// regression in the counter itself cannot make this test pass vacuously.
TEST_F(ParallelEvalTest, LegacyExecuteOverloadNeverParallelizes) {
  engine::Engine::GlobalMap globals{{"input", {xdm::Item(doc_->root())}}};
  auto cq = engine_.Compile("$input//item//location");
  ASSERT_TRUE(cq.ok()) << cq.status().ToString();

  int64_t before = ParallelEvaluationCountForTesting();
  auto legacy = engine_.Execute(*cq, globals, PatternAlgo::kNLJoin);
  ASSERT_TRUE(legacy.ok()) << legacy.status().ToString();
  EXPECT_EQ(ParallelEvaluationCountForTesting(), before)
      << "legacy Execute overload routed through the parallel driver";

  // min_fanout=4 (ParallelOpts) keeps the single root tuple below the
  // tuple-morselization threshold, so the pattern parallelizes via the
  // root fan-out strategy — the path real single-document queries take.
  auto parallel =
      engine_.Execute(*cq, globals, ParallelOpts(PatternAlgo::kNLJoin, 2));
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
  EXPECT_GT(ParallelEvaluationCountForTesting(), before)
      << "control failed: threads=2 never reached the parallel driver";
  EXPECT_EQ(*legacy, *parallel);
}

}  // namespace
}  // namespace xqtp::exec
