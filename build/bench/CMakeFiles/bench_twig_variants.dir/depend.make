# Empty dependencies file for bench_twig_variants.
# This may be replaced when dependencies are built.
