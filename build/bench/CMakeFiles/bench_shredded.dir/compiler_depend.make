# Empty compiler generated dependencies file for bench_shredded.
# This may be replaced when dependencies are built.
