// Twig-variant comparison (the paper's future work: "evaluating the
// benefits of other variants of Twigjoin algorithms"): the three-phase
// merge-semijoin holistic join (TJ) vs the classic stack-based TwigStack
// (TS), with SCJoin as the reference point, on the Table 1 workload.
#include "bench_common.h"

namespace xqtp::bench {
namespace {

struct QE {
  const char* name;
  const char* query;
};

constexpr QE kQueries[] = {
    {"QE1", "$input/desc::t01[child::t02[child::t03[child::t04]]]"},
    {"QE3", "$input/desc::t01[child::t02[child::t03]/child::t04[child::t03]]"},
    {"QE4", "$input/desc::t01[desc::t02[desc::t03[desc::t04]]]"},
    {"QE6", "$input/desc::t01[desc::t02[desc::t03]/desc::t04[desc::t03]]"},
    {"deep-path", "$input//t01/t02/t03/t04"},
    {"wide-twig", "$input//t01[t02][t03][t04]"},
};

const xml::Document& Doc() {
  return MemberDoc("member_twig", 400000, 5, 100, 200);
}

void Register() {
  for (const QE& qe : kQueries) {
    for (exec::PatternAlgo algo :
         {exec::PatternAlgo::kTwig, exec::PatternAlgo::kTwigStack,
          exec::PatternAlgo::kStaircase}) {
      std::string name =
          std::string("TwigVariants/") + qe.name + "/" + AlgoTag(algo);
      std::string query = qe.query;
      benchmark::RegisterBenchmark(
          name.c_str(),
          [query, algo](benchmark::State& state) {
            RunQueryBenchmark(state, query, Doc(), algo);
          })
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace xqtp::bench

int main(int argc, char** argv) {
  xqtp::bench::Register();
  return xqtp::bench::BenchMain(argc, argv);
}
