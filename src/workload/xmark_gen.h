// XMark-style auction-site document generator. Reproduces the element
// hierarchy and fan-out of the XMark benchmark documents (site / regions /
// people / open_auctions / closed_auctions / categories) at a configurable
// scale factor — the substrate for the paper's Figure 4 and Figure 6
// experiments.
#ifndef XQTP_WORKLOAD_XMARK_GEN_H_
#define XQTP_WORKLOAD_XMARK_GEN_H_

#include <memory>

#include "xml/document.h"

namespace xqtp::workload {

struct XmarkParams {
  /// Scale factor; 1.0 gives ~2550 persons, ~2 x that many items, etc.
  /// (proportions follow XMark).
  double factor = 0.1;
  uint64_t seed = 7;
};

std::unique_ptr<xml::Document> GenerateXmark(const XmarkParams& params,
                                             StringInterner* interner);

}  // namespace xqtp::workload

#endif  // XQTP_WORKLOAD_XMARK_GEN_H_
