file(REMOVE_RECURSE
  "CMakeFiles/xqtp_shell.dir/xqtp_shell.cpp.o"
  "CMakeFiles/xqtp_shell.dir/xqtp_shell.cpp.o.d"
  "xqtp_shell"
  "xqtp_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xqtp_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
