file(REMOVE_RECURSE
  "CMakeFiles/odf_test.dir/odf_test.cc.o"
  "CMakeFiles/odf_test.dir/odf_test.cc.o.d"
  "odf_test"
  "odf_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
