#include "common/status.h"

namespace xqtp {

std::string Status::ToString() const {
  switch (code_) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument: " + message_;
    case StatusCode::kNotImplemented:
      return "NotImplemented: " + message_;
    case StatusCode::kTypeError:
      return "TypeError: " + message_;
    case StatusCode::kInternal:
      return "Internal: " + message_;
    case StatusCode::kCancelled:
      return "Cancelled: " + message_;
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded: " + message_;
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted: " + message_;
  }
  return "Unknown: " + message_;
}

}  // namespace xqtp
