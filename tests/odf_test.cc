#include <gtest/gtest.h>

#include "core/odf.h"

namespace xqtp::core {
namespace {

class OdfTest : public ::testing::Test {
 protected:
  StringInterner interner_;
  VarTable vars_;
  OdfEnv env_;

  OdfProps Props(const CoreExprPtr& e) { return ComputeOdf(*e, vars_, env_); }

  CoreExprPtr Step(VarId ctx, Axis axis) {
    return MakeStep(ctx, axis, NodeTest::AnyName());
  }
};

TEST_F(OdfTest, GlobalsAreSingletons) {
  VarId g = vars_.Global("d");
  OdfProps p = Props(MakeVar(g));
  EXPECT_TRUE(p.OrderedDupFree());
  EXPECT_TRUE(p.unrelated);
  EXPECT_EQ(p.card, Card::kOne);
}

TEST_F(OdfTest, StepsFromSingletonContext) {
  VarId g = vars_.Global("d");
  // child from a singleton: ordered, duplicate-free, unrelated.
  OdfProps child = Props(Step(g, Axis::kChild));
  EXPECT_TRUE(child.OrderedDupFree());
  EXPECT_TRUE(child.unrelated);
  // descendant from a singleton: ordered+df but RELATED (nodes nest).
  OdfProps desc = Props(Step(g, Axis::kDescendant));
  EXPECT_TRUE(desc.OrderedDupFree());
  EXPECT_FALSE(desc.unrelated);
}

TEST_F(OdfTest, DdoEstablishesOrderedDupFree) {
  VarId v = vars_.Fresh("v");  // unknown props
  OdfProps p = Props(MakeDdo(MakeVar(v)));
  EXPECT_TRUE(p.OrderedDupFree());
}

TEST_F(OdfTest, ForOverSingletonTakesBodyProps) {
  VarId g = vars_.Global("d");
  VarId x = vars_.Fresh("x");
  auto f = MakeFor(x, kNoVar, MakeVar(g), nullptr, Step(x, Axis::kDescendant));
  OdfProps p = Props(f);
  EXPECT_TRUE(p.OrderedDupFree());
  EXPECT_FALSE(p.unrelated);
}

TEST_F(OdfTest, ChildChainOverUnrelatedManyStaysOrdered) {
  // for $y in (child step over $d) return $y/child::* — the Figure 4
  // variant pattern: ordered even without any ddo.
  VarId g = vars_.Global("d");
  VarId x = vars_.Fresh("x");
  VarId y = vars_.Fresh("y");
  auto inner = MakeFor(x, kNoVar, MakeVar(g), nullptr, Step(x, Axis::kChild));
  auto outer =
      MakeFor(y, kNoVar, std::move(inner), nullptr, Step(y, Axis::kChild));
  OdfProps p = Props(outer);
  EXPECT_TRUE(p.OrderedDupFree());
  EXPECT_TRUE(p.unrelated);
}

TEST_F(OdfTest, ChildStepOverRelatedManyIsUnknown) {
  // The Q5 situation: child step iterated over a descendant result.
  VarId g = vars_.Global("d");
  VarId x = vars_.Fresh("x");
  VarId y = vars_.Fresh("y");
  auto inner =
      MakeFor(x, kNoVar, MakeVar(g), nullptr, Step(x, Axis::kDescendant));
  auto outer =
      MakeFor(y, kNoVar, std::move(inner), nullptr, Step(y, Axis::kChild));
  OdfProps p = Props(outer);
  EXPECT_FALSE(p.OrderedDupFree());
}

TEST_F(OdfTest, DescendantLastStepOverUnrelatedManyOrderedButRelated) {
  VarId g = vars_.Global("d");
  VarId x = vars_.Fresh("x");
  VarId y = vars_.Fresh("y");
  auto inner = MakeFor(x, kNoVar, MakeVar(g), nullptr, Step(x, Axis::kChild));
  auto outer = MakeFor(y, kNoVar, std::move(inner), nullptr,
                       Step(y, Axis::kDescendant));
  OdfProps p = Props(outer);
  EXPECT_TRUE(p.OrderedDupFree());
  EXPECT_FALSE(p.unrelated);
}

TEST_F(OdfTest, FilterPreservesProps) {
  VarId g = vars_.Global("d");
  VarId x = vars_.Fresh("x");
  VarId y = vars_.Fresh("y");
  auto inner =
      MakeFor(x, kNoVar, MakeVar(g), nullptr, Step(x, Axis::kDescendant));
  // for $y in <desc result> where <cond> return $y : pure filter.
  auto outer = MakeFor(y, kNoVar, std::move(inner),
                       Step(y, Axis::kChild), MakeVar(y));
  OdfProps p = Props(outer);
  EXPECT_TRUE(p.OrderedDupFree());
}

TEST_F(OdfTest, PositionalLoopBlocksChainAnalysis) {
  VarId g = vars_.Global("d");
  VarId x = vars_.Fresh("x");
  VarId y = vars_.Fresh("y");
  VarId pos = vars_.Fresh("p");
  auto inner = MakeFor(x, kNoVar, MakeVar(g), nullptr, Step(x, Axis::kChild));
  auto outer =
      MakeFor(y, pos, std::move(inner), nullptr, Step(y, Axis::kChild));
  // The positional variable makes the loop observationally different.
  OdfProps p = Props(outer);
  EXPECT_FALSE(p.OrderedDupFree());
}

TEST_F(OdfTest, SequenceConcatenationIsUnknown) {
  VarId g = vars_.Global("d");
  std::vector<CoreExprPtr> items;
  items.push_back(Step(g, Axis::kChild));
  items.push_back(Step(g, Axis::kChild));
  OdfProps p = Props(MakeSequence(std::move(items)));
  EXPECT_FALSE(p.OrderedDupFree());
}

TEST_F(OdfTest, FnCallsAreSingletons) {
  VarId g = vars_.Global("d");
  std::vector<CoreExprPtr> args;
  args.push_back(MakeVar(g));
  OdfProps p = Props(MakeFnCall(CoreFn::kCount, std::move(args)));
  EXPECT_EQ(p.card, Card::kOne);
  EXPECT_TRUE(p.OrderedDupFree());
}

}  // namespace
}  // namespace xqtp::core
