file(REMOVE_RECURSE
  "CMakeFiles/algorithm_picker.dir/algorithm_picker.cpp.o"
  "CMakeFiles/algorithm_picker.dir/algorithm_picker.cpp.o.d"
  "algorithm_picker"
  "algorithm_picker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algorithm_picker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
