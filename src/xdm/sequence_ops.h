// Operations over XDM sequences: distinct-doc-order (the `ddo` of the
// paper), effective boolean value, general comparisons, and navigational
// axis-step evaluation.
#ifndef XQTP_XDM_SEQUENCE_OPS_H_
#define XQTP_XDM_SEQUENCE_OPS_H_

#include "common/status.h"
#include "xdm/axis.h"
#include "xdm/item.h"

namespace xqtp::xdm {

/// fs:distinct-doc-order: sorts node sequences by document order and
/// removes duplicate nodes (by identity). Errors if the sequence mixes
/// nodes and atomic values (ddo is only defined on node sequences); a pure
/// atomic sequence is returned unchanged only if empty.
[[nodiscard]] Result<Sequence> DistinctDocOrder(Sequence seq);

/// True iff `seq` is already sorted in document order with no duplicate
/// nodes. Used by tests and by assertions in the evaluators.
bool IsDistinctDocOrdered(const Sequence& seq);

/// fn:boolean — the effective boolean value.
/// Rules (XPath 2.0 fragment): empty -> false; first item a node -> true;
/// singleton boolean/number/string -> the usual EBV; anything else -> error.
[[nodiscard]] Result<bool> EffectiveBooleanValue(const Sequence& seq);

/// Comparison operators for general comparisons.
enum class CompareOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CompareOpName(CompareOp op);

/// Arithmetic operators.
enum class ArithOp : uint8_t { kAdd, kSub, kMul, kDiv, kIDiv, kMod };

const char* ArithOpName(ArithOp op);

/// Binary arithmetic per XQuery: operands are atomized (nodes contribute
/// the numeric value of their string-value) and must be singletons; an
/// empty operand yields the empty sequence; idiv yields an integer.
[[nodiscard]]
Result<Sequence> EvalArith(ArithOp op, const Sequence& lhs,
                           const Sequence& rhs);

/// Atomized string value of an at-most-one-item sequence ("" if empty).
[[nodiscard]] Result<std::string> StringArg(const Sequence& seq);

/// Numeric value of an item (nodes/strings parse their text; NaN if the
/// text is not a number).
double NumericValue(const Item& item);

/// General comparison: existential over the atomized operands, with
/// untyped values coerced to the type of the other operand (numeric if the
/// other side is numeric, string otherwise).
[[nodiscard]]
Result<bool> GeneralCompare(CompareOp op, const Sequence& lhs,
                            const Sequence& rhs);

/// True iff `node` satisfies `test` when reached over `axis` (the axis
/// determines the principal node kind: attribute tests match attribute
/// nodes only on the attribute axis).
bool MatchesTest(const xml::Node* node, Axis axis, const NodeTest& test);

/// Navigational evaluation of one axis step from a single context node,
/// appending matches in document order to `out`. This is the cursor-based
/// primitive used by TreeJoin / the nested-loop pattern algorithm.
void EvalAxisStep(const xml::Node* context, Axis axis, const NodeTest& test,
                  Sequence* out);

/// fn:count.
inline int64_t Count(const Sequence& seq) {
  return static_cast<int64_t>(seq.size());
}

}  // namespace xqtp::xdm

#endif  // XQTP_XDM_SEQUENCE_OPS_H_
