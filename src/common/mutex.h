// Annotated synchronization primitives: thin wrappers over std::mutex /
// std::shared_mutex / std::condition_variable carrying the clang
// thread-safety capability attributes (common/thread_annotations.h).
//
// This header is the ONLY place in src/ allowed to name the std
// synchronization types — tools/lint.py (rule raw-sync) rejects
// std::mutex, std::lock_guard, .lock() etc. anywhere else, because a raw
// std type is invisible to the static analysis: a std::lock_guard
// acquires nothing as far as -Wthread-safety is concerned, so every
// GUARDED_BY member it protects would need an escape hatch. Keeping all
// lock traffic on these wrappers is what lets the analysis prove whole-
// program lock discipline.
//
// The wrappers add no state and no virtual dispatch; every method is a
// single inlined call on the underlying std primitive.
#ifndef XQTP_COMMON_MUTEX_H_
#define XQTP_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "common/thread_annotations.h"

namespace xqtp {

class CondVar;

/// Exclusive mutex (a "mutex" capability). Prefer the scoped MutexLock
/// over manual Lock/Unlock pairs; the manual API exists for the rare
/// acquire-here-release-there shape, which the annotations still check.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;  ///< CondVar::Wait needs the native handle
  std::mutex mu_;
};

/// Reader/writer mutex (a "shared_mutex" capability): one writer or any
/// number of readers. Scoped forms: WriterLock / ReaderLock.
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  void LockShared() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() RELEASE_SHARED() { mu_.unlock_shared(); }
  bool TryLockShared() TRY_ACQUIRE_SHARED(true) {
    return mu_.try_lock_shared();
  }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive lock on a Mutex.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() { mu_->Unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// RAII exclusive (writer) lock on a SharedMutex.
class SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~WriterLock() RELEASE() { mu_->Unlock(); }
  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// RAII shared (reader) lock on a SharedMutex.
class SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex* mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_->LockShared();
  }
  // Generic release: a scoped capability's destructor releases whatever
  // mode its constructor acquired (per the clang analysis model).
  ~ReaderLock() RELEASE() { mu_->UnlockShared(); }
  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// Condition variable usable with Mutex. Wait takes the Mutex explicitly
/// so the REQUIRES annotation can tie the wait to the lock; spurious
/// wakeups are possible, so always wait in a `while (!condition)` loop —
/// a loop (not a lambda predicate) keeps the condition's guarded reads
/// inside the annotated caller where the analysis can see the lock.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks until notified (or spuriously
  /// woken), and re-acquires `mu` before returning. The capability is
  /// held across the call from the analysis's point of view, matching
  /// the caller's view: the lock is held again when Wait returns.
  void Wait(Mutex& mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();  // ownership stays with the caller's scope
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace xqtp

#endif  // XQTP_COMMON_MUTEX_H_
