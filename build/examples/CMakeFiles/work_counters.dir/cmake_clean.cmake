file(REMOVE_RECURSE
  "CMakeFiles/work_counters.dir/work_counters.cpp.o"
  "CMakeFiles/work_counters.dir/work_counters.cpp.o.d"
  "work_counters"
  "work_counters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/work_counters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
