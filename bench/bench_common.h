// Shared helpers for the benchmark binaries: lazily-built workload
// documents and compiled-query execution wrappers.
#ifndef XQTP_BENCH_BENCH_COMMON_H_
#define XQTP_BENCH_BENCH_COMMON_H_

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/exec_stats.h"
#include "engine/engine.h"
#include "exec/parallel.h"
#include "workload/member_gen.h"
#include "workload/xmark_gen.h"

namespace xqtp::bench {

// ---------------------------------------------------------------------------
// Benchmark-JSON perf trajectory: every bench binary accepts
// --json=<path> (stripped before google-benchmark sees the argv) and, when
// given, appends one record per executed query benchmark:
//   {"bench": ..., "query": ..., "algo": ..., "threads": N,
//    "variant": ..., "ns": mean-per-iteration,
//    "nodes_visited": exact-counter}
// ci/check.sh runs a bounded smoke bench with this flag to drop
// BENCH_smoke.json at the repo root.
//
// "variant" distinguishes records that share (bench, query, algo, threads)
// but differ in compile configuration — e.g. bench_plan_props measures the
// same query with property inference on and off. Benches that don't vary
// the compile leave it empty.

struct JsonRecord {
  std::string bench;
  std::string query;
  std::string algo;
  int threads = 1;
  std::string variant;
  double ns = 0;
  int64_t nodes_visited = 0;
};

inline std::vector<JsonRecord>& JsonRecords() {
  static auto* records = new std::vector<JsonRecord>();
  return *records;
}

inline std::string& JsonPath() {
  static auto* path = new std::string();
  return *path;
}

/// Basename of the running bench binary; the "bench" field of every
/// record (the installed google-benchmark predates State::name()).
inline std::string& BenchName() {
  static auto* name = new std::string("bench");
  return *name;
}

inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

/// Removes our --json=<path> flag from argv (google-benchmark rejects
/// flags it does not know) and remembers the path.
inline void StripJsonFlag(int* argc, char** argv) {
  int w = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      JsonPath() = argv[i] + 7;
      continue;
    }
    argv[w++] = argv[i];
  }
  *argc = w;
}

inline void WriteJsonRecords() {
  if (JsonPath().empty()) return;
  std::ofstream out(JsonPath());
  out << "[\n";
  const std::vector<JsonRecord>& records = JsonRecords();
  for (size_t i = 0; i < records.size(); ++i) {
    const JsonRecord& r = records[i];
    out << "  {\"bench\": \"" << JsonEscape(r.bench) << "\", \"query\": \""
        << JsonEscape(r.query) << "\", \"algo\": \"" << JsonEscape(r.algo)
        << "\", \"threads\": " << r.threads << ", \"variant\": \""
        << JsonEscape(r.variant) << "\", \"ns\": " << r.ns
        << ", \"nodes_visited\": " << r.nodes_visited << "}"
        << (i + 1 < records.size() ? "," : "") << "\n";
  }
  out << "]\n";
}

/// Shared main body for the bench binaries: strips --json, runs the
/// registered benchmarks, writes the JSON trajectory if requested.
inline int BenchMain(int argc, char** argv) {
  if (argc > 0) {
    std::string path = argv[0];
    size_t slash = path.find_last_of('/');
    BenchName() = slash == std::string::npos ? path : path.substr(slash + 1);
  }
  StripJsonFlag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  WriteJsonRecords();
  return 0;
}

/// One engine per binary; documents and compiled queries are cached in it.
inline engine::Engine& SharedEngine() {
  static engine::Engine* e = new engine::Engine();
  return *e;
}

inline const xml::Document& MemberDoc(const std::string& name, int node_count,
                                      int max_depth, int num_tags,
                                      int plant_twigs = 0) {
  engine::Engine& e = SharedEngine();
  const xml::Document* d = e.FindDocument(name);
  if (d == nullptr) {
    workload::MemberParams p;
    p.node_count = node_count;
    p.max_depth = max_depth;
    p.num_tags = num_tags;
    p.plant_twigs = plant_twigs;
    d = e.AddDocument(name, workload::GenerateMember(p, e.interner()));
  }
  return *d;
}

inline const xml::Document& XmarkDoc(const std::string& name, double factor) {
  engine::Engine& e = SharedEngine();
  const xml::Document* d = e.FindDocument(name);
  if (d == nullptr) {
    workload::XmarkParams p;
    p.factor = factor;
    d = e.AddDocument(name, workload::GenerateXmark(p, e.interner()));
  }
  return *d;
}

/// Compiles once, executes per iteration, reports result cardinality.
/// With a JSON path set (--json=), also appends a perf-trajectory record
/// with the mean per-iteration wall time and the exact nodes_visited
/// counter of one instrumented (untimed) execution.
inline void RunQueryBenchmark(benchmark::State& state, const std::string& q,
                              const xml::Document& doc,
                              const exec::EvalOptions& opts,
                              engine::PlanChoice plan_choice =
                                  engine::PlanChoice::kOptimized,
                              const engine::CompileOptions& copts = {},
                              const std::string& variant = {}) {
  engine::Engine& e = SharedEngine();
  auto cq = e.Compile(q, copts);
  if (!cq.ok()) {
    state.SkipWithError(cq.status().ToString().c_str());
    return;
  }
  engine::Engine::GlobalMap globals;
  for (const std::string& g : cq->GlobalNames()) {
    globals[g] = {xdm::Item(doc.root())};
  }
  size_t result_size = 0;
  double total_ns = 0;
  int64_t iters = 0;
  for (auto _ : state) {
    auto t0 = std::chrono::steady_clock::now();
    auto res = e.Execute(*cq, globals, opts, plan_choice);
    auto t1 = std::chrono::steady_clock::now();
    if (!res.ok()) {
      state.SkipWithError(res.status().ToString().c_str());
      return;
    }
    total_ns += std::chrono::duration<double, std::nano>(t1 - t0).count();
    ++iters;
    result_size = res->size();
    benchmark::DoNotOptimize(res);
  }
  state.counters["results"] =
      benchmark::Counter(static_cast<double>(result_size));
  if (!JsonPath().empty() && iters > 0) {
    ScopedExecStats scope;
    (void)e.Execute(*cq, globals, opts, plan_choice);
    JsonRecord r;
    r.bench = BenchName();
    r.query = q;
    r.algo = exec::PatternAlgoName(opts.algo);
    r.threads = exec::ThreadPool::ResolveThreads(opts.threads);
    r.variant = variant;
    r.ns = total_ns / static_cast<double>(iters);
    r.nodes_visited = scope.stats().nodes_visited;
    // google-benchmark calls the function more than once (iteration
    // estimation); keep only the final, longest-running record.
    for (JsonRecord& existing : JsonRecords()) {
      if (existing.bench == r.bench && existing.query == r.query &&
          existing.algo == r.algo && existing.threads == r.threads &&
          existing.variant == r.variant) {
        existing = std::move(r);
        return;
      }
    }
    JsonRecords().push_back(std::move(r));
  }
}

/// Algorithm-only convenience used by the existing benches: the legacy
/// sequential path (threads = 1).
inline void RunQueryBenchmark(benchmark::State& state, const std::string& q,
                              const xml::Document& doc,
                              exec::PatternAlgo algo,
                              engine::PlanChoice plan_choice =
                                  engine::PlanChoice::kOptimized,
                              const engine::CompileOptions& copts = {}) {
  exec::EvalOptions opts;
  opts.algo = algo;
  opts.threads = 1;
  RunQueryBenchmark(state, q, doc, opts, plan_choice, copts);
}

inline const char* AlgoTag(exec::PatternAlgo algo) {
  switch (algo) {
    case exec::PatternAlgo::kNLJoin:
      return "NL";
    case exec::PatternAlgo::kTwig:
      return "TJ";
    case exec::PatternAlgo::kStaircase:
      return "SC";
    case exec::PatternAlgo::kStream:
      return "ST";
    case exec::PatternAlgo::kTwigStack:
      return "TS";
    case exec::PatternAlgo::kShredded:
      return "SH";
    case exec::PatternAlgo::kCostBased:
      return "CB";
  }
  return "?";
}

}  // namespace xqtp::bench

#endif  // XQTP_BENCH_BENCH_COMMON_H_
