// The Section 5.1 validation: the 20 syntactic variants of the Figure 4
// path expression all compile to the exact same optimized plan (a single
// TupleTreePattern), while the "old engine" (rewrites disabled) produces
// syntax-dependent plans.
#include <gtest/gtest.h>

#include <set>

#include "algebra/printer.h"
#include "engine/engine.h"
#include "workload/variants.h"

namespace xqtp {
namespace {

TEST(RewriteRobustness, AllVariantsProduceTheSamePlan) {
  engine::Engine e;
  std::vector<std::string> variants = workload::GeneratePathVariants(20);
  ASSERT_EQ(variants.size(), 20u);
  std::set<std::string> plans;
  for (const std::string& q : variants) {
    auto cq = e.Compile(q);
    ASSERT_TRUE(cq.ok()) << q << ": " << cq.status().ToString();
    plans.insert(algebra::ToString(cq->optimized(), cq->vars(),
                                   *e.interner()));
    algebra::PlanStats stats = cq->Stats();
    EXPECT_EQ(stats.tree_pattern_ops, 1) << q;
    EXPECT_EQ(stats.tree_join_ops, 0) << q;
    EXPECT_EQ(stats.scoped_ops, 0) << q;
  }
  EXPECT_EQ(plans.size(), 1u);
  EXPECT_EQ(*plans.begin(),
            "MapToItem{IN#out}(TupleTreePattern[IN#dot/child::site/"
            "child::people/child::person[child::emailaddress]/"
            "child::profile/child::interest{out}]"
            "(MapFromItem{[dot : IN]}($input)))");
}

TEST(RewriteRobustness, WithoutRewritesPlansDependOnSyntax) {
  engine::Engine e;
  engine::CompileOptions opts;
  opts.rewrite = false;
  std::vector<std::string> variants = workload::GeneratePathVariants(20);
  std::set<std::string> plans;
  for (const std::string& q : variants) {
    auto cq = e.Compile(q, opts);
    ASSERT_TRUE(cq.ok()) << q << ": " << cq.status().ToString();
    plans.insert(algebra::ToString(cq->optimized(), cq->vars(),
                                   *e.interner()));
  }
  // The old engine keeps one plan per syntactic family.
  EXPECT_GT(plans.size(), 5u);
}

TEST(RewriteRobustness, DescendantVariantsAlsoConverge) {
  // The Q1a/Q1b/Q1c family of the paper's Figure 1.
  engine::Engine e;
  const char* queries[] = {
      "$d//person[emailaddress]/name",
      "(for $x in $d//person[emailaddress] return $x)/name",
      "let $x := for $y in $d//person where $y/emailaddress return $y "
      "return $x/name",
  };
  std::set<std::string> plans;
  for (const char* q : queries) {
    auto cq = e.Compile(q);
    ASSERT_TRUE(cq.ok()) << q;
    plans.insert(algebra::ToString(cq->optimized(), cq->vars(),
                                   *e.interner()));
  }
  EXPECT_EQ(plans.size(), 1u);
}

TEST(RewriteRobustness, EachRuleFamilyContributes) {
  // Disabling the typeswitch or FLWOR rule family prevents full
  // convergence for the FLWOR variant of Q1.
  engine::Engine e;
  const std::string flwor =
      "(for $x in $d//person[emailaddress] return $x)/name";
  auto full = e.Compile(flwor);
  ASSERT_TRUE(full.ok());
  ASSERT_EQ(full->Stats().tree_pattern_ops, 1);

  for (int family = 0; family < 2; ++family) {
    engine::CompileOptions opts;
    switch (family) {
      case 0:
        opts.rewrite_opts.typeswitch_rules = false;
        break;
      case 1:
        opts.rewrite_opts.flwor_rules = false;
        break;
    }
    auto cq = e.Compile(flwor, opts);
    ASSERT_TRUE(cq.ok()) << family;
    algebra::PlanStats stats = cq->Stats();
    // Without the family, the single largest pattern is not detected.
    bool degraded = stats.tree_pattern_ops != 1 || stats.tree_join_ops > 0 ||
                    stats.scoped_ops > 0 || stats.max_pattern_steps < 3;
    EXPECT_TRUE(degraded) << "family " << family << " had no effect";
  }
}

TEST(RewriteRobustness, PipelineRerootingSubsumesLoopSplit) {
  // The algebraic pipeline re-rooting clean-up performs the same
  // re-nesting as the Core-level loop split, so detection stays complete
  // even with loop split disabled — extra robustness beyond the paper.
  engine::Engine e;
  engine::CompileOptions opts;
  opts.rewrite_opts.loop_split = false;
  auto cq = e.Compile("(for $x in $d//person[emailaddress] return $x)/name",
                      opts);
  ASSERT_TRUE(cq.ok());
  algebra::PlanStats stats = cq->Stats();
  EXPECT_EQ(stats.tree_pattern_ops, 1);
  EXPECT_EQ(stats.tree_join_ops, 0);
  EXPECT_EQ(stats.max_pattern_steps, 3);
}

}  // namespace
}  // namespace xqtp
