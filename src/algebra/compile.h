// Core -> algebra compilation, following the compilation scheme of [28]:
// linear for-loops over the fragment compile to the tuple operators
// (MapFromItem / Select / MapToItem with TreeJoin leaves — the paper's
// plan P1); everything else compiles to scoped item operators.
#ifndef XQTP_ALGEBRA_COMPILE_H_
#define XQTP_ALGEBRA_COMPILE_H_

#include "algebra/ops.h"
#include "common/status.h"
#include "core/ast.h"

namespace xqtp::algebra {

/// Compiles a Core expression to an (item) algebra plan.
[[nodiscard]]
Result<OpPtr> Compile(const core::CoreExpr& e, const core::VarTable& vars,
                      StringInterner* interner);

}  // namespace xqtp::algebra

#endif  // XQTP_ALGEBRA_COMPILE_H_
