// Staircase-join evaluation of tree patterns.
//
// Each main-path step is evaluated for the whole context set at once:
// the context "staircase" is pruned (contexts covered by an earlier
// context's subtree contribute nothing new on the descendant axes) and the
// per-tag index is scanned once per remaining context region, skipping
// between regions with binary search. Child and attribute steps use the
// constant-cost structure pointers of the data model, as in Galax.
// Predicate branches are existential semijoins evaluated per candidate
// node — this is exactly why the paper observes Staircase join degrading
// on heavily-branched patterns (QE3/QE6) while remaining excellent on
// linear paths.
#include <algorithm>

#include "common/fault_injection.h"
#include "exec/exec_stats.h"
#include "exec/governor.h"
#include "exec/pattern_eval.h"
#include "xdm/sequence_ops.h"
#include "xml/document.h"

namespace xqtp::exec {

namespace {

using pattern::PatternNode;
using pattern::PatternNodePtr;
using pattern::TreePattern;
using xml::Document;
using xml::Node;

/// The document-ordered stream of nodes that can match `test` on a
/// descendant-ish axis.
const std::vector<const Node*>& StreamFor(const Document& doc, Axis axis,
                                          const NodeTest& test) {
  if (axis == Axis::kAttribute) {
    static const std::vector<const Node*> kEmpty;
    if (test.kind == NodeTestKind::kName) return doc.AttributesByName(test.name);
    return kEmpty;  // @* handled navigationally
  }
  switch (test.kind) {
    case NodeTestKind::kName:
      return doc.ElementsByTag(test.name);
    case NodeTestKind::kAnyName:
      return doc.AllElements();
    case NodeTestKind::kText:
      return doc.TextNodes();
    case NodeTestKind::kAnyNode:
      return doc.AllNodes();
  }
  return doc.AllNodes();
}

/// Removes contexts that are descendants of an earlier context (staircase
/// pruning): their subtrees are covered. Input must be pre-sorted.
void PruneCovered(std::vector<const Node*>* ctx) {
  std::vector<const Node*> kept;
  kept.reserve(ctx->size());
  for (const Node* n : *ctx) {
    if (!kept.empty() && kept.back()->IsAncestorOf(*n)) continue;
    if (!kept.empty() && kept.back() == n) continue;
    kept.push_back(n);
  }
  *ctx = std::move(kept);
}

void SortDedup(std::vector<const Node*>* v) {
  std::sort(v->begin(), v->end(), xml::DocOrderLess);
  v->erase(std::unique(v->begin(), v->end()), v->end());
}

class StaircaseEval {
 public:
  /// Evaluates one axis step over the whole context set, producing a
  /// document-ordered duplicate-free result set. A positional constraint
  /// (the future-work extension) keeps only the position-th raw match per
  /// context node, which disables staircase pruning for that step (a
  /// covered context still has its own k-th match).
  std::vector<const Node*> Step(std::vector<const Node*> ctx, Axis axis,
                                const NodeTest& test, int position = 0) {
    std::vector<const Node*> out;
    if (ctx.empty() || !gov_.Tick()) return out;
    if (position > 0) {
      const Document& doc = *ctx.front()->doc;
      for (const Node* c : ctx) {
        int count = 0;
        switch (axis) {
          case Axis::kChild:
          case Axis::kDescendant:
          case Axis::kDescendantOrSelf: {
            if (axis == Axis::kDescendantOrSelf &&
                xdm::MatchesTest(c, axis, test) && ++count == position) {
              out.push_back(c);
              break;
            }
            const std::vector<const Node*>& stream =
                StreamFor(doc, axis, test);
            CountIndexSkip();
            auto it = std::upper_bound(
                stream.begin(), stream.end(), c->pre,
                [](int32_t pre, const Node* n) { return pre < n->pre; });
            for (; it != stream.end() && (*it)->post < c->post; ++it) {
              CountIndexEntries(1);
              if (axis == Axis::kChild && (*it)->parent != c) continue;
              if (++count == position) {
                out.push_back(*it);
                break;
              }
            }
            break;
          }
          default: {
            xdm::Sequence items;
            xdm::EvalAxisStep(c, axis, test, &items);
            if (static_cast<int>(items.size()) >= position) {
              out.push_back(items[static_cast<size_t>(position - 1)].node());
            }
            break;
          }
        }
      }
      SortDedup(&out);
      return out;
    }
    switch (axis) {
      case Axis::kDescendant:
      case Axis::kDescendantOrSelf: {
        PruneCovered(&ctx);
        const Document& doc = *ctx.front()->doc;
        const std::vector<const Node*>& stream = StreamFor(doc, axis, test);
        size_t pos = 0;
        for (const Node* c : ctx) {
          if (axis == Axis::kDescendantOrSelf &&
              xdm::MatchesTest(c, axis, test)) {
            out.push_back(c);
          }
          // Skip to the first stream node inside c's subtree.
          CountIndexSkip();
          auto it = std::upper_bound(
              stream.begin() + static_cast<ptrdiff_t>(pos), stream.end(),
              c->pre, [](int32_t pre, const Node* n) { return pre < n->pre; });
          pos = static_cast<size_t>(it - stream.begin());
          // Descendants of c are contiguous in preorder.
          while (pos < stream.size() && stream[pos]->post < c->post) {
            if (!gov_.Tick()) return out;
            out.push_back(stream[pos]);
            ++pos;
            CountIndexEntries(1);
          }
        }
        // Pruning guarantees disjoint regions, so `out` is sorted and
        // duplicate-free — except descendant-or-self self-hits may
        // interleave with a previous region only if regions nested, which
        // pruning rules out.
        break;
      }
      case Axis::kChild: {
        // Child is also evaluated against the index, scanning the tag
        // stream inside each context's subtree region and filtering on the
        // parent pointer — the pre/post-plane treatment of Staircase join.
        // This is why the paper's Section 5.3 observes SCJoin paying an
        // index scan per step even for child axes, while Table 1 shows
        // child and descendant variants costing about the same.
        const Document& doc = *ctx.front()->doc;
        const std::vector<const Node*>& stream = StreamFor(doc, axis, test);
        for (const Node* c : ctx) {
          CountIndexSkip();
          auto it = std::upper_bound(
              stream.begin(), stream.end(), c->pre,
              [](int32_t pre, const Node* n) { return pre < n->pre; });
          for (; it != stream.end() && (*it)->post < c->post; ++it) {
            if (!gov_.Tick()) return out;
            CountIndexEntries(1);
            if ((*it)->parent == c) out.push_back(*it);
          }
        }
        SortDedup(&out);
        break;
      }
      case Axis::kAttribute:
        for (const Node* c : ctx) {
          for (const Node* a : c->attributes) {
            if (xdm::MatchesTest(a, axis, test)) out.push_back(a);
          }
        }
        SortDedup(&out);
        break;
      case Axis::kSelf:
        for (const Node* c : ctx) {
          if (xdm::MatchesTest(c, axis, test)) out.push_back(c);
        }
        break;
      case Axis::kParent:
        for (const Node* c : ctx) {
          if (c->parent != nullptr &&
              xdm::MatchesTest(c->parent, axis, test)) {
            out.push_back(c->parent);
          }
        }
        SortDedup(&out);
        break;
      case Axis::kAncestor:
      case Axis::kAncestorOrSelf:
      case Axis::kFollowingSibling:
      case Axis::kPrecedingSibling: {
        // Non-pattern axes: navigational fallback (such steps only occur
        // in hand-built patterns; see TreePattern::UsesOnlyPatternAxes).
        xdm::Sequence items;
        for (const Node* c : ctx) xdm::EvalAxisStep(c, axis, test, &items);
        for (const xdm::Item& it : items) out.push_back(it.node());
        SortDedup(&out);
        break;
      }
    }
    return out;
  }

  /// Existential predicate check: does the sub-pattern match from `node`?
  bool Exists(const Node* node, const PatternNode& p) {
    std::vector<const Node*> cur = Step({node}, p.axis, p.test, p.position);
    return !Matches(std::move(cur), p).empty();
  }

  /// Filters `candidates` (already matching p's own step) through p's
  /// predicate branches, then follows the main path; returns the nodes of
  /// the *last* step of the sub-path that survive.
  std::vector<const Node*> Matches(std::vector<const Node*> candidates,
                                   const PatternNode& p) {
    if (!p.predicates.empty()) {
      std::vector<const Node*> kept;
      kept.reserve(candidates.size());
      for (const Node* n : candidates) {
        if (!gov_.Tick()) break;
        bool ok = true;
        for (const PatternNodePtr& pred : p.predicates) {
          if (!Exists(n, *pred)) {
            ok = false;
            break;
          }
        }
        if (ok) kept.push_back(n);
      }
      candidates = std::move(kept);
    }
    if (p.next == nullptr) return candidates;
    std::vector<const Node*> next = Step(std::move(candidates), p.next->axis,
                                         p.next->test, p.next->position);
    return Matches(std::move(next), *p.next);
  }

  /// The governor verdict that interrupted the scans, or OK. Checked by
  /// EvalPatternStaircase before the (possibly truncated) result is used.
  [[nodiscard]]
  const Status& status() const { return gov_.status(); }

 private:
  GovernorTicker gov_;
};

}  // namespace

Result<std::vector<BindingRow>> EvalPatternStaircase(
    const TreePattern& tp, const xdm::Sequence& context) {
  XQTP_FAULT_POINT("exec.pattern.staircase");
  if (tp.root == nullptr) return std::vector<BindingRow>{};
  if (!tp.SingleOutputAtExtractionPoint()) {
    // The staircase join is a set-at-a-time path algorithm; full binding
    // enumeration falls back to the nested-loop evaluator.
    return EvalPatternNL(tp, context);
  }
  std::vector<const Node*> ctx;
  ctx.reserve(context.size());
  for (const xdm::Item& it : context) {
    if (!it.IsNode()) {
      return Status::TypeError(
          "tree pattern applied to a non-node context item");
    }
    ctx.push_back(it.node());
  }
  SortDedup(&ctx);
  // The index scans work one document at a time.
  for (const Node* n : ctx) {
    if (n->doc != ctx.front()->doc) return EvalPatternNL(tp, context);
  }
  StaircaseEval eval;
  std::vector<const Node*> first = eval.Step(
      std::move(ctx), tp.root->axis, tp.root->test, tp.root->position);
  std::vector<const Node*> result = eval.Matches(std::move(first), *tp.root);
  XQTP_RETURN_NOT_OK(eval.status());
  Symbol out = tp.OutputFields()[0];
  std::vector<BindingRow> rows;
  rows.reserve(result.size());
  for (const Node* n : result) {
    BindingRow row;
    row.fields.emplace_back(out, n);
    rows.push_back(std::move(row));
  }
  // Already document-ordered and duplicate-free by construction.
  return rows;
}

}  // namespace xqtp::exec
