// Smaller units: tuples, the shared function library, the DOT exporter,
// and deep/recursive document stress for the pattern algorithms.
#include <gtest/gtest.h>

#include "algebra/dot.h"
#include "engine/engine.h"
#include "exec/fn_lib.h"
#include "exec/tuple.h"

namespace xqtp {
namespace {

TEST(TupleTest, SetGetOverwrite) {
  StringInterner in;
  exec::Tuple t;
  Symbol a = in.Intern("a"), b = in.Intern("b");
  EXPECT_EQ(t.Get(a), nullptr);
  t.Set(a, {xdm::Item(static_cast<int64_t>(1))});
  t.Set(b, {xdm::Item(static_cast<int64_t>(2))});
  ASSERT_NE(t.Get(a), nullptr);
  EXPECT_EQ((*t.Get(a))[0].integer(), 1);
  EXPECT_EQ(t.field_count(), 2u);
  // Overwrite keeps one entry.
  t.Set(a, {xdm::Item(static_cast<int64_t>(9))});
  EXPECT_EQ(t.field_count(), 2u);
  EXPECT_EQ((*t.Get(a))[0].integer(), 9);
}

TEST(FnLibTest, StringFunctions) {
  using core::CoreFn;
  using xdm::Item;
  using xdm::Sequence;
  auto call = [](CoreFn fn, std::vector<Sequence> args) {
    return exec::ApplyCoreFn(fn, args);
  };
  EXPECT_EQ((*call(CoreFn::kConcat, {{Item(std::string("a"))},
                                     {Item(std::string("b"))},
                                     {Item(std::string("c"))}}))[0]
                .str(),
            "abc");
  EXPECT_TRUE((*call(CoreFn::kContains, {{Item(std::string("hello"))},
                                         {Item(std::string("ell"))}}))[0]
                  .boolean());
  EXPECT_FALSE((*call(CoreFn::kStartsWith, {{Item(std::string("hello"))},
                                            {Item(std::string("ell"))}}))[0]
                   .boolean());
  EXPECT_EQ((*call(CoreFn::kStringLength, {{Item(std::string("abcd"))}}))[0]
                .integer(),
            4);
  // Empty-sequence arguments behave like the empty string.
  EXPECT_EQ((*call(CoreFn::kString, {{}}))[0].str(), "");
  EXPECT_TRUE((*call(CoreFn::kContains, {{Item(std::string("x"))}, {}}))[0]
                  .boolean());
  // Multi-item argument: type error.
  EXPECT_FALSE(call(CoreFn::kString,
                    {{Item(std::string("a")), Item(std::string("b"))}})
                   .ok());
}

TEST(FnLibTest, NumericFunctions) {
  using core::CoreFn;
  using xdm::Item;
  auto num = exec::ApplyCoreFn(CoreFn::kNumber, {{Item(std::string("abc"))}});
  ASSERT_TRUE(num.ok());
  EXPECT_NE((*num)[0].dbl(), (*num)[0].dbl());  // NaN
  auto sum = exec::ApplyCoreFn(
      CoreFn::kSum, {{Item(static_cast<int64_t>(1)), Item(2.5)}});
  ASSERT_TRUE(sum.ok());
  EXPECT_DOUBLE_EQ((*sum)[0].dbl(), 3.5);
  auto bad = exec::ApplyCoreFn(CoreFn::kSum, {{Item(std::string("x"))}});
  EXPECT_FALSE(bad.ok());
}

TEST(DotExportTest, RendersPlanGraph) {
  engine::Engine e;
  auto cq = e.Compile("$d//person[emailaddress]/name");
  ASSERT_TRUE(cq.ok());
  std::string dot =
      algebra::ToDot(cq->optimized(), cq->vars(), *e.interner());
  EXPECT_EQ(dot.rfind("digraph plan {", 0), 0u);
  EXPECT_NE(dot.find("TupleTreePattern"), std::string::npos);
  EXPECT_NE(dot.find("MapFromItem [dot : IN]"), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
  EXPECT_NE(dot.find("}\n"), std::string::npos);
  // No unescaped quotes inside labels.
  EXPECT_EQ(dot.find("label=\"\""), std::string::npos);
}

TEST(RecursiveDocumentStress, DeeplyNestedSameTag) {
  // a/a/a/.../a, 300 levels: recursion-sensitive algorithms must cope and
  // agree.
  std::string xml;
  for (int i = 0; i < 300; ++i) xml += "<a>";
  xml += "<b/>";
  for (int i = 0; i < 300; ++i) xml += "</a>";
  engine::Engine e;
  auto doc = e.LoadDocument("d", xml);
  ASSERT_TRUE(doc.ok());
  const char* queries[] = {
      "fn:count($d//a)", "fn:count($d//a//a)", "fn:count($d//a[a])",
      "fn:count($d//a[b])", "fn:count($d//a//b)",
  };
  for (const char* q : queries) {
    auto cq = e.Compile(q);
    ASSERT_TRUE(cq.ok()) << q;
    engine::Engine::GlobalMap globals{
        {"d", {xdm::Item(doc.value()->root())}}};
    auto ref = e.Execute(*cq, globals, exec::PatternAlgo::kNLJoin);
    ASSERT_TRUE(ref.ok()) << q;
    for (auto algo :
         {exec::PatternAlgo::kStaircase, exec::PatternAlgo::kTwig,
          exec::PatternAlgo::kTwigStack, exec::PatternAlgo::kStream,
          exec::PatternAlgo::kShredded}) {
      auto res = e.Execute(*cq, globals, algo);
      ASSERT_TRUE(res.ok()) << q << " " << exec::PatternAlgoName(algo);
      EXPECT_EQ((*res)[0].integer(), (*ref)[0].integer())
          << q << " " << exec::PatternAlgoName(algo);
    }
  }
  // Expected values by construction.
  auto count = [&](const char* q) {
    auto res = e.Run(q, *doc.value());
    return res.ok() ? (*res)[0].integer() : -1;
  };
  EXPECT_EQ(count("fn:count($d//a)"), 300);
  EXPECT_EQ(count("fn:count($d//a[a])"), 299);
  EXPECT_EQ(count("fn:count($d//a[b])"), 1);
  // 299 (a, b) embeddings exist, but the path returns the single distinct
  // b node (XPath duplicate elimination).
  EXPECT_EQ(count("fn:count($d//a//b)"), 1);
}

}  // namespace
}  // namespace xqtp
