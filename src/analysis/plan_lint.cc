#include "analysis/plan_lint.h"

#include <unordered_set>

#include "analysis/plan_props.h"
#include "core/ast.h"
#include "pattern/tree_pattern.h"

namespace xqtp::analysis {

namespace {

using algebra::Op;
using algebra::OpKind;
using algebra::OpPtr;

using FieldSet = std::unordered_set<Symbol>;

void CollectReads(const Op& op, FieldSet* out) {
  if (op.kind == OpKind::kFieldAccess) out->insert(op.field);
  if (op.kind == OpKind::kTupleTreePattern) out->insert(op.tp.input_field);
  for (const OpPtr& in : op.inputs) CollectReads(*in, out);
  if (op.dep) CollectReads(*op.dep, out);
  if (op.dep2) CollectReads(*op.dep2, out);
}

FieldSet ReadsOf(const Op& op) {
  FieldSet s;
  CollectReads(op, &s);
  return s;
}

class Linter {
 public:
  Linter(const PlanProps& props, const PlanLintOptions& opts)
      : props_(props), opts_(opts) {}

  std::vector<LintFinding> Run(const Op& plan) {
    Walk(plan, FieldSet{});
    return std::move(findings_);
  }

 private:
  std::string FieldName(Symbol s) const {
    if (opts_.interner != nullptr && s != kInvalidSymbol) {
      return opts_.interner->NameOf(s);
    }
    return "#" + std::to_string(s);
  }

  void Report(const char* rule, std::string detail) {
    findings_.push_back(LintFinding{rule, std::move(detail)});
  }

  void CheckNode(const Op& n, const FieldSet& live) {
    switch (n.kind) {
      case OpKind::kDdo: {
        const ItemProps* in = props_.Item(n.inputs[0].get());
        if (in != nullptr && ProvenDdoRedundant(*in)) {
          Report("redundant-ddo",
                 "fs:ddo input is proven ordered and duplicate-free; the "
                 "operator is the identity");
        }
        break;
      }
      case OpKind::kMapFromItem:
        if (live.count(n.field) == 0) {
          Report("dead-field", "MapFromItem binds field '" +
                                   FieldName(n.field) +
                                   "' that no downstream operator reads");
        }
        break;
      case OpKind::kSelect:
        if (n.dep && n.dep->kind == OpKind::kConst) {
          Report("const-select",
                 "Select predicate is a literal: the filter keeps or drops "
                 "every tuple");
        }
        break;
      case OpKind::kTupleTreePattern: {
        for (Symbol out : n.tp.OutputFields()) {
          if (live.count(out) == 0) {
            Report("dead-field", "pattern annotation '" + FieldName(out) +
                                     "' is never read downstream");
          }
        }
        const TupleProps* t = props_.Tuple(&n);
        const pattern::PatternNode* ep = n.tp.ExtractionPoint();
        if (t != nullptr && ep != nullptr && ep->output != kInvalidSymbol &&
            n.tp.SingleOutputAtExtractionPoint()) {
          const FieldProps* f = t->Field(ep->output);
          if (f != nullptr && f->seq_ordered && f->seq_dup_free) {
            Report("parallel-merge",
                   "pattern output '" + FieldName(ep->output) +
                       "' is proven ordered and duplicate-free across "
                       "tuples; the morsel-parallel ordered merge could be "
                       "a plain concatenation");
          }
        }
        break;
      }
      default:
        break;
    }
    // Cardinality: a proven-empty operator output means dead computation.
    const OpProps* p = props_.Lookup(&n);
    if (p != nullptr) {
      int64_t hi = p->is_tuple ? p->tuple.card.hi : p->item.card.hi;
      // Skip literal empty sequences: `()` is how the query says empty.
      if (hi == 0 && n.kind != OpKind::kSequence && n.kind != OpKind::kConst) {
        Report("card-zero", "operator output is proven empty");
      }
    }
  }

  /// Mirrors the optimizer's liveness threading (algebra/optimize.cc) so
  /// dead-field findings agree with what the rewrites consider live.
  void Walk(const Op& n, const FieldSet& live) {
    CheckNode(n, live);
    switch (n.kind) {
      case OpKind::kMapToItem:
        Walk(*n.inputs[0], ReadsOf(*n.dep));
        Walk(*n.dep, FieldSet{});
        break;
      case OpKind::kSelect: {
        FieldSet inner = live;
        FieldSet pred_reads = ReadsOf(*n.dep);
        inner.insert(pred_reads.begin(), pred_reads.end());
        Walk(*n.inputs[0], inner);
        Walk(*n.dep, FieldSet{});
        break;
      }
      case OpKind::kTupleTreePattern: {
        FieldSet inner = live;
        for (Symbol s : n.tp.OutputFields()) inner.erase(s);
        inner.insert(n.tp.input_field);
        Walk(*n.inputs[0], inner);
        break;
      }
      default:
        for (const OpPtr& in : n.inputs) Walk(*in, FieldSet{});
        if (n.dep) Walk(*n.dep, FieldSet{});
        if (n.dep2) Walk(*n.dep2, FieldSet{});
        break;
    }
  }

  const PlanProps& props_;
  const PlanLintOptions& opts_;
  std::vector<LintFinding> findings_;
};

}  // namespace

std::vector<LintFinding> LintPlan(const algebra::Op& plan,
                                  const PlanLintOptions& opts) {
  PlanProps props = InferPlanProps(plan);
  Linter linter(props, opts);
  return linter.Run(plan);
}

}  // namespace xqtp::analysis
