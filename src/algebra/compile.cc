#include "algebra/compile.h"

#include <unordered_map>
#include <unordered_set>

#include "common/fault_injection.h"
#include "core/typing.h"

namespace xqtp::algebra {

namespace {

using core::CoreExpr;
using core::CoreExprPtr;
using core::CoreKind;
using core::VarId;

/// How a Core variable is accessed from the plan being built.
struct Access {
  enum class Kind : uint8_t { kGlobal, kTupleField, kScoped } kind;
  Symbol field = kInvalidSymbol;  // kTupleField
};

using AccessEnv = std::unordered_map<VarId, Access>;

/// Collects the free variables of `e` (VarIds are unique, so any variable
/// that is referenced but not bound inside `e` is free).
void CollectVars(const CoreExpr& e, std::unordered_set<VarId>* refs,
                 std::unordered_set<VarId>* bound) {
  switch (e.kind) {
    case CoreKind::kVar:
      refs->insert(e.var);
      break;
    case CoreKind::kStep:
      refs->insert(e.var);
      break;
    case CoreKind::kLet:
      bound->insert(e.var);
      break;
    case CoreKind::kFor:
      bound->insert(e.var);
      if (e.pos_var != core::kNoVar) bound->insert(e.pos_var);
      break;
    case CoreKind::kTypeswitch:
      bound->insert(e.case_var);
      bound->insert(e.default_var);
      break;
    default:
      break;
  }
  for (const CoreExprPtr& c : e.children) CollectVars(*c, refs, bound);
  if (e.where) CollectVars(*e.where, refs, bound);
}

class Compiler {
 public:
  Compiler(const core::VarTable& vars, StringInterner* interner)
      : vars_(vars), interner_(interner),
        dot_field_(interner->Intern("dot")) {}

  Result<OpPtr> Run(const CoreExpr& e) {
    AccessEnv env;
    return CompileExpr(e, env);
  }

 private:
  /// True iff every free variable of a for's body/where other than the
  /// loop variable is a global — the "linear" case that compiles to the
  /// paper's tuple-operator form.
  bool IsLinearFor(const CoreExpr& f, const AccessEnv& env) const {
    if (f.pos_var != core::kNoVar) return false;
    std::unordered_set<VarId> refs;
    std::unordered_set<VarId> bound;
    CollectVars(*f.children[1], &refs, &bound);
    if (f.where) CollectVars(*f.where, &refs, &bound);
    for (VarId v : refs) {
      if (v == f.var || bound.count(v) > 0) continue;
      auto it = env.find(v);
      if (it != env.end() && it->second.kind != Access::Kind::kGlobal) {
        return false;
      }
      if (it == env.end() && !vars_.IsGlobal(v)) return false;
    }
    return true;
  }

  Result<OpPtr> CompileVar(VarId v, const AccessEnv& env) {
    auto it = env.find(v);
    if (it != env.end()) {
      switch (it->second.kind) {
        case Access::Kind::kTupleField: {
          OpPtr op = MakeOp(OpKind::kFieldAccess);
          op->field = it->second.field;
          return op;
        }
        case Access::Kind::kScoped: {
          OpPtr op = MakeOp(OpKind::kScopedVar);
          op->var = v;
          return op;
        }
        case Access::Kind::kGlobal:
          break;
      }
    }
    if (!vars_.IsGlobal(v)) {
      return Status::Internal("unbound variable $" + vars_.NameOf(v) +
                              " during compilation");
    }
    OpPtr op = MakeOp(OpKind::kGlobalVar);
    op->var = v;
    return op;
  }

  /// Compiles `for $x in seq (where w)? return body` in the linear case:
  ///   MapToItem{body'}((Select{w'})? (MapFromItem{[dot : IN]}(seq')))
  Result<OpPtr> CompileLinearFor(const CoreExpr& f, const AccessEnv& env) {
    XQTP_ASSIGN_OR_RETURN(OpPtr seq, CompileExpr(*f.children[0], env));

    OpPtr from = MakeOp(OpKind::kMapFromItem);
    from->field = dot_field_;
    from->dep = MakeOp(OpKind::kInputItem);
    from->inputs.push_back(std::move(seq));

    AccessEnv inner = env;
    inner[f.var] = Access{Access::Kind::kTupleField, dot_field_};

    OpPtr tuples = std::move(from);
    if (f.where) {
      XQTP_ASSIGN_OR_RETURN(OpPtr pred, CompileExpr(*f.where, inner));
      // The paper's plans wrap non-boolean predicates in fn:boolean
      // (plan P1) but compile comparisons bare (the Q2 plan).
      core::TypeEnv tenv;
      if (core::InferType(*f.where, vars_, tenv) !=
          core::AbstractType::kBoolean) {
        OpPtr wrapped = MakeOp(OpKind::kFnCall);
        wrapped->fn = core::CoreFn::kBoolean;
        wrapped->inputs.push_back(std::move(pred));
        pred = std::move(wrapped);
      }
      OpPtr select = MakeOp(OpKind::kSelect);
      select->dep = std::move(pred);
      select->inputs.push_back(std::move(tuples));
      tuples = std::move(select);
    }

    XQTP_ASSIGN_OR_RETURN(OpPtr body, CompileExpr(*f.children[1], inner));
    OpPtr to = MakeOp(OpKind::kMapToItem);
    to->dep = std::move(body);
    to->inputs.push_back(std::move(tuples));
    return to;
  }

  Result<OpPtr> CompileExpr(const CoreExpr& e, const AccessEnv& env) {
    XQTP_ASSIGN_OR_RETURN(OpPtr op, CompileExprInner(e, env));
    // Carry the Core ODF annotation across compilation: the emitted
    // operator computes exactly this expression's value in the matching
    // evaluation context, so the cached ordered/dup_free bits seed the
    // plan-level property analysis (analysis/plan_props.h). Unannotated
    // trees leave the seed at zero — no information, never wrong.
    op->odf_seed = e.odf_cache;
    return op;
  }

  Result<OpPtr> CompileExprInner(const CoreExpr& e, const AccessEnv& env) {
    switch (e.kind) {
      case CoreKind::kVar:
        return CompileVar(e.var, env);
      case CoreKind::kLiteral: {
        OpPtr op = MakeOp(OpKind::kConst);
        op->literal = e.literal;
        return op;
      }
      case CoreKind::kSequence: {
        OpPtr op = MakeOp(OpKind::kSequence);
        for (const CoreExprPtr& c : e.children) {
          XQTP_ASSIGN_OR_RETURN(OpPtr in, CompileExpr(*c, env));
          op->inputs.push_back(std::move(in));
        }
        return op;
      }
      case CoreKind::kStep: {
        XQTP_ASSIGN_OR_RETURN(OpPtr ctx, CompileVar(e.var, env));
        OpPtr op = MakeOp(OpKind::kTreeJoin);
        op->axis = e.axis;
        op->test = e.test;
        op->inputs.push_back(std::move(ctx));
        return op;
      }
      case CoreKind::kDdo: {
        XQTP_ASSIGN_OR_RETURN(OpPtr in, CompileExpr(*e.children[0], env));
        OpPtr op = MakeOp(OpKind::kDdo);
        op->inputs.push_back(std::move(in));
        return op;
      }
      case CoreKind::kFnCall: {
        OpPtr op = MakeOp(OpKind::kFnCall);
        op->fn = e.fn;
        for (const CoreExprPtr& c : e.children) {
          XQTP_ASSIGN_OR_RETURN(OpPtr in, CompileExpr(*c, env));
          op->inputs.push_back(std::move(in));
        }
        return op;
      }
      case CoreKind::kCompare: {
        OpPtr op = MakeOp(OpKind::kCompare);
        op->cmp_op = e.cmp_op;
        for (const CoreExprPtr& c : e.children) {
          XQTP_ASSIGN_OR_RETURN(OpPtr in, CompileExpr(*c, env));
          op->inputs.push_back(std::move(in));
        }
        return op;
      }
      case CoreKind::kArith: {
        OpPtr op = MakeOp(OpKind::kArith);
        op->arith_op = e.arith_op;
        for (const CoreExprPtr& c : e.children) {
          XQTP_ASSIGN_OR_RETURN(OpPtr in, CompileExpr(*c, env));
          op->inputs.push_back(std::move(in));
        }
        return op;
      }
      case CoreKind::kAnd:
      case CoreKind::kOr: {
        OpPtr op = MakeOp(e.kind == CoreKind::kAnd ? OpKind::kAnd
                                                   : OpKind::kOr);
        for (const CoreExprPtr& c : e.children) {
          XQTP_ASSIGN_OR_RETURN(OpPtr in, CompileExpr(*c, env));
          op->inputs.push_back(std::move(in));
        }
        return op;
      }
      case CoreKind::kIf: {
        OpPtr op = MakeOp(OpKind::kIf);
        for (const CoreExprPtr& c : e.children) {
          XQTP_ASSIGN_OR_RETURN(OpPtr in, CompileExpr(*c, env));
          op->inputs.push_back(std::move(in));
        }
        return op;
      }
      case CoreKind::kFor: {
        if (IsLinearFor(e, env)) return CompileLinearFor(e, env);
        // Out-of-fragment: scoped iteration.
        XQTP_ASSIGN_OR_RETURN(OpPtr seq, CompileExpr(*e.children[0], env));
        OpPtr op = MakeOp(OpKind::kForEach);
        op->var = e.var;
        op->pos_var = e.pos_var;
        op->inputs.push_back(std::move(seq));
        AccessEnv inner = env;
        inner[e.var] = Access{Access::Kind::kScoped, kInvalidSymbol};
        if (e.pos_var != core::kNoVar) {
          inner[e.pos_var] = Access{Access::Kind::kScoped, kInvalidSymbol};
        }
        if (e.where) {
          XQTP_ASSIGN_OR_RETURN(op->dep2, CompileExpr(*e.where, inner));
        }
        XQTP_ASSIGN_OR_RETURN(op->dep, CompileExpr(*e.children[1], inner));
        return op;
      }
      case CoreKind::kLet: {
        XQTP_ASSIGN_OR_RETURN(OpPtr binding, CompileExpr(*e.children[0], env));
        OpPtr op = MakeOp(OpKind::kLetIn);
        op->var = e.var;
        op->inputs.push_back(std::move(binding));
        AccessEnv inner = env;
        inner[e.var] = Access{Access::Kind::kScoped, kInvalidSymbol};
        XQTP_ASSIGN_OR_RETURN(op->dep, CompileExpr(*e.children[1], inner));
        return op;
      }
      case CoreKind::kTypeswitch: {
        XQTP_ASSIGN_OR_RETURN(OpPtr input, CompileExpr(*e.children[0], env));
        OpPtr op = MakeOp(OpKind::kTypeswitch);
        op->var = e.case_var;
        op->pos_var = e.default_var;
        op->inputs.push_back(std::move(input));
        AccessEnv inner = env;
        inner[e.case_var] = Access{Access::Kind::kScoped, kInvalidSymbol};
        inner[e.default_var] = Access{Access::Kind::kScoped, kInvalidSymbol};
        XQTP_ASSIGN_OR_RETURN(op->dep, CompileExpr(*e.children[1], inner));
        XQTP_ASSIGN_OR_RETURN(op->dep2, CompileExpr(*e.children[2], inner));
        return op;
      }
    }
    return Status::Internal("unreachable core kind in compilation");
  }

  const core::VarTable& vars_;
  StringInterner* interner_;
  Symbol dot_field_;
};

}  // namespace

Result<OpPtr> Compile(const core::CoreExpr& e, const core::VarTable& vars,
                      StringInterner* interner) {
  XQTP_FAULT_POINT("algebra.compile");
  Compiler c(vars, interner);
  return c.Run(e);
}

}  // namespace xqtp::algebra
