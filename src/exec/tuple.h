// Tuples flowing through the tuple algebra, in two physical shapes:
//
//  - Tuple / TupleSeq: one row as an ordered field -> sequence map. Plans
//    manipulate a handful of fields, so a small vector wins over a hash
//    map. This is the row-at-a-time representation, kept as the
//    differential reference (exec::TupleExecMode::kRow) and as the bridge
//    type for code that needs one materialized row.
//
//  - TupleBatch: ~1024 rows in structure-of-arrays layout — one
//    TupleColumn (a vector of sequences) per field, columns shared
//    copy-on-write across operators via shared_ptr<const TupleColumn>,
//    plus a selection vector so Select filters WITHOUT copying a single
//    sequence and a per-column broadcast flag so a pattern that expands
//    one input tuple into thousands of binding rows replicates the input
//    fields by reference, not by value. The batch evaluator
//    (exec/evaluator.cc) streams these between pipeline-able operators
//    instead of materializing whole TupleSeq intermediates.
//
// Thread-safety: a TupleBatch is immutable through the shared columns
// (shared_ptr<const ...>), so any number of threads may read one batch —
// or sibling batches sharing columns — concurrently. Mutating calls
// (Flatten / Append / Add*Column) require exclusive ownership of the
// TupleBatch object itself, like any value type.
#ifndef XQTP_EXEC_TUPLE_H_
#define XQTP_EXEC_TUPLE_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/interner.h"
#include "xdm/item.h"

namespace xqtp::exec {

/// One algebra tuple (row representation).
class Tuple {
 public:
  Tuple() = default;

  /// Sets (or overwrites) a field. The incoming sequence is moved into
  /// place on both the insert and the overwrite path — Set never copies.
  void Set(Symbol field, xdm::Sequence value);

  /// Returns the field's value, or nullptr if absent.
  const xdm::Sequence* Get(Symbol field) const;

  bool Has(Symbol field) const { return Get(field) != nullptr; }
  size_t field_count() const { return fields_.size(); }

  const std::vector<std::pair<Symbol, xdm::Sequence>>& fields() const {
    return fields_;
  }

 private:
  std::vector<std::pair<Symbol, xdm::Sequence>> fields_;
};

using TupleSeq = std::vector<Tuple>;

/// One column of a TupleBatch: a field symbol plus one sequence per
/// physical row. Immutable once wrapped in a TupleColumnPtr; batches
/// share columns by reference.
struct TupleColumn {
  Symbol field = kInvalidSymbol;
  std::vector<xdm::Sequence> values;
};

using TupleColumnPtr = std::shared_ptr<const TupleColumn>;

/// The one way to wrap a column for sharing. The object is allocated
/// non-const (then viewed const), so a sole owner may legally reopen it
/// to move values out (TupleBatch::Append's steal path).
inline TupleColumnPtr MakeColumn(TupleColumn col) {
  return std::make_shared<TupleColumn>(std::move(col));
}

/// A batch of tuples in columnar (structure-of-arrays) layout.
///
/// Logical vs physical rows: columns store `physical_rows()` sequences;
/// an optional selection vector maps the batch's `rows()` LOGICAL rows to
/// physical indices (absent = identity). A broadcast column holds exactly
/// one physical value served to every logical row — the zero-copy
/// replication used when a tree pattern fans one input tuple out into
/// many binding rows.
class TupleBatch {
 public:
  struct BoundColumn {
    TupleColumnPtr column;
    /// One physical value (values[0]) serves every logical row; the
    /// selection vector does not apply to this column.
    bool broadcast = false;
  };

  TupleBatch() = default;
  /// A batch of `physical_rows` rows with no columns yet (a tuple with
  /// zero fields is legal — kInputTuple over an empty ambient tuple).
  explicit TupleBatch(size_t physical_rows) : physical_rows_(physical_rows) {}

  /// Bridges a materialized row sequence into columnar layout (counts
  /// ExecStats::tuples_materialized once per row).
  static TupleBatch FromTuples(const TupleSeq& tuples);

  /// Logical row count (selection applied).
  size_t rows() const { return sel_ ? sel_->size() : physical_rows_; }
  size_t physical_rows() const { return physical_rows_; }
  bool empty() const { return rows() == 0; }
  size_t column_count() const { return columns_.size(); }
  const std::vector<BoundColumn>& columns() const { return columns_; }

  /// Physical index of logical row `i` (broadcast columns ignore it).
  uint32_t physical(size_t i) const {
    return sel_ ? (*sel_)[i] : static_cast<uint32_t>(i);
  }

  /// The column bound to `field`, or nullptr. Resolve once per batch —
  /// this is the per-batch symbol lookup that replaces the per-row
  /// Tuple::Get scan.
  const BoundColumn* Find(Symbol field) const;

  /// The sequence `column` holds for logical row `i`.
  const xdm::Sequence& Value(const BoundColumn& column, size_t i) const {
    return column.broadcast ? column.column->values[0]
                            : column.column->values[physical(i)];
  }

  /// The field's sequence at logical row `i`, or nullptr if the field is
  /// absent (an absent field reads as the empty sequence).
  const xdm::Sequence* Get(size_t i, Symbol field) const;

  /// Appends a column owned by this batch (values.size() must equal
  /// physical_rows(), asserted in debug builds).
  void AddOwnedColumn(TupleColumn column);
  /// Appends a column shared with another batch (same length contract).
  void AddSharedColumn(TupleColumnPtr column);
  /// Appends a single-value column broadcast to every logical row.
  void AddBroadcastColumn(TupleColumnPtr column);

  /// A filtered view of this batch: `keep` lists LOGICAL row indices (in
  /// order, possibly with repeats). Every column is shared — this is the
  /// zero-copy Select. The result's selection composes with this batch's.
  [[nodiscard]]
  TupleBatch SelectRows(const std::vector<uint32_t>& keep) const;

  /// Materializes one logical row as a Tuple — the row bridge for code
  /// that needs a real Tuple (counts ExecStats::tuples_materialized).
  Tuple MaterializeRow(size_t i) const;
  /// Materializes every logical row (bridge out of the batch world).
  TupleSeq ToTuples() const;

  /// Rewrites the batch to identity selection with fully owned, non-
  /// broadcast columns, gathering through the selection vector. Each
  /// column that had to be deep-copied (it was shared, filtered, or
  /// broadcast) counts one ExecStats::cow_column_copies.
  void Flatten();

  /// Appends `other`'s rows to this batch. Schemas must match (same
  /// fields in the same column order). Both batches are flattened first;
  /// `other`'s sequences are moved, not copied, when uniquely owned.
  void Append(TupleBatch&& other);

  /// Approximate heap footprint for the governor's byte accountant:
  /// per-row sequence items at sizeof(Item), broadcast columns counted
  /// once, plus the selection vector. Shared columns are counted by
  /// every sharing batch (conservative, like the rest of the accounting).
  int64_t ApproxBytes() const;

 private:
  /// Moves (sole owner) or copies (shared — counts one cow_column_copies)
  /// a flat column's values into `into`, then releases `from`.
  static void MoveColumnValues(BoundColumn& from, TupleColumn* into);

  size_t physical_rows_ = 0;
  std::vector<BoundColumn> columns_;
  /// Logical -> physical row map; null = identity over physical rows.
  std::shared_ptr<const std::vector<uint32_t>> sel_;
};

/// Read-only view of one logical tuple: either a materialized Tuple or
/// one row of a TupleBatch. This is what dependent item plans see as IN —
/// EvalItem call sites written against `const Tuple*` keep working
/// through the implicit conversion; batch kernels pass (batch, row)
/// without materializing anything.
class RowView {
 public:
  RowView() = default;
  // NOLINTNEXTLINE(google-explicit-constructor): the row bridge is
  // intentionally implicit so `const Tuple*` call sites compile unchanged.
  RowView(const Tuple* tuple) : tuple_(tuple) {}
  RowView(const TupleBatch* batch, size_t row) : batch_(batch), row_(row) {}

  /// False when there is no tuple context at all (the old nullptr).
  bool valid() const { return tuple_ != nullptr || batch_ != nullptr; }

  /// The field's sequence, or nullptr if absent.
  const xdm::Sequence* Get(Symbol field) const {
    if (tuple_ != nullptr) return tuple_->Get(field);
    if (batch_ != nullptr) return batch_->Get(row_, field);
    return nullptr;
  }

  /// Materializes the viewed row as a Tuple (the bridge for row-mode
  /// code; counts ExecStats::tuples_materialized when it copies).
  Tuple Materialize() const;

  /// The wrapped Tuple, or nullptr when the view is batch-backed (or
  /// invalid). Row-mode code uses this to recover its native shape
  /// without a copy.
  const Tuple* AsTuple() const { return tuple_; }

  /// A one-row TupleBatch viewing this row. Batch-backed rows share the
  /// batch's columns (zero copy — a selection of one); Tuple-backed rows
  /// build owned single-value columns (counts one tuples_materialized).
  /// An invalid view yields the empty batch.
  TupleBatch ToBatch() const;

 private:
  const Tuple* tuple_ = nullptr;
  const TupleBatch* batch_ = nullptr;
  size_t row_ = 0;
};

}  // namespace xqtp::exec

#endif  // XQTP_EXEC_TUPLE_H_
