#include "common/fingerprint.h"

#include <cctype>

namespace xqtp {

namespace {

constexpr uint64_t kFnvPrime = 1099511628211ull;

/// Conservative superset of the lexer's name/number characters: if two of
/// these touch, removing the whitespace between them would fuse tokens
/// ("a - b" is arithmetic, "a-b" is one name), so the canonicalizer keeps
/// one separating space there and nowhere else.
bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
         c == '-' || c == '.' || c == ':' || c == '$';
}

}  // namespace

uint64_t HashBytes(std::string_view bytes, uint64_t h) {
  for (char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  return h;
}

uint64_t HashCombine(uint64_t h, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    h ^= value & 0xff;
    h *= kFnvPrime;
    value >>= 8;
  }
  return h;
}

std::string CanonicalizeQuery(std::string_view query) {
  std::string out;
  out.reserve(query.size());
  bool pending_ws = false;
  size_t i = 0;
  const size_t n = query.size();
  while (i < n) {
    char c = query[i];
    // Nestable XQuery comment — a separator, like whitespace.
    if (c == '(' && i + 1 < n && query[i + 1] == ':') {
      int depth = 1;
      i += 2;
      while (i < n && depth > 0) {
        if (query[i] == '(' && i + 1 < n && query[i + 1] == ':') {
          ++depth;
          i += 2;
        } else if (query[i] == ':' && i + 1 < n && query[i + 1] == ')') {
          --depth;
          i += 2;
        } else {
          ++i;
        }
      }
      pending_ws = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      pending_ws = true;
      ++i;
      continue;
    }
    if (pending_ws) {
      if (!out.empty() && IsNameChar(out.back()) && IsNameChar(c)) {
        out += ' ';
      }
      pending_ws = false;
    }
    if (c == '"' || c == '\'') {
      // String literal: verbatim through the matching quote (the lexer
      // has no escapes in this fragment).
      const char quote = c;
      out += c;
      ++i;
      while (i < n && query[i] != quote) out += query[i++];
      if (i < n) {
        out += quote;
        ++i;
      }
      continue;
    }
    out += c;
    ++i;
  }
  return out;
}

std::string FingerprintHex(uint64_t fp) {
  static const char* kDigits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<size_t>(i)] = kDigits[fp & 0xf];
    fp >>= 4;
  }
  return out;
}

}  // namespace xqtp
