#include "algebra/ops.h"

#include <algorithm>

namespace xqtp::algebra {

bool IsTuplePlan(OpKind kind) {
  switch (kind) {
    case OpKind::kMapFromItem:
    case OpKind::kSelect:
    case OpKind::kTupleTreePattern:
    case OpKind::kInputTuple:
      return true;
    default:
      return false;
  }
}

OpPtr MakeOp(OpKind k) { return std::make_unique<Op>(k); }

OpPtr Clone(const Op& op) {
  OpPtr c = MakeOp(op.kind);
  for (const OpPtr& in : op.inputs) c->inputs.push_back(Clone(*in));
  if (op.dep) c->dep = Clone(*op.dep);
  if (op.dep2) c->dep2 = Clone(*op.dep2);
  c->field = op.field;
  c->tp = op.tp.Clone();
  c->axis = op.axis;
  c->test = op.test;
  c->literal = op.literal;
  c->var = op.var;
  c->pos_var = op.pos_var;
  c->fn = op.fn;
  c->cmp_op = op.cmp_op;
  c->arith_op = op.arith_op;
  c->odf_seed = op.odf_seed;
  c->props = op.props;
  return c;
}

namespace {

void Walk(const Op& op, PlanStats* stats) {
  switch (op.kind) {
    case OpKind::kTupleTreePattern:
      ++stats->tree_pattern_ops;
      stats->max_pattern_steps =
          std::max(stats->max_pattern_steps, op.tp.StepCount());
      break;
    case OpKind::kTreeJoin:
      ++stats->tree_join_ops;
      break;
    case OpKind::kMapToItem:
    case OpKind::kMapFromItem:
      ++stats->map_ops;
      break;
    case OpKind::kForEach:
    case OpKind::kLetIn:
      ++stats->scoped_ops;
      break;
    case OpKind::kDdo:
      ++stats->ddo_ops;
      break;
    default:
      break;
  }
  for (const OpPtr& in : op.inputs) Walk(*in, stats);
  if (op.dep) Walk(*op.dep, stats);
  if (op.dep2) Walk(*op.dep2, stats);
}

}  // namespace

PlanStats ComputeStats(const Op& plan) {
  PlanStats stats;
  Walk(plan, &stats);
  return stats;
}

}  // namespace xqtp::algebra
