# Empty compiler generated dependencies file for xqtp.
# This may be replaced when dependencies are built.
