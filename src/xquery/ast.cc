#include "xquery/ast.h"

namespace xqtp::xquery {

namespace {

void Print(const Expr& e, const StringInterner& in, std::string* out);

void PrintPredicates(const std::vector<ExprPtr>& preds,
                     const StringInterner& in, std::string* out) {
  for (const ExprPtr& p : preds) {
    *out += '[';
    Print(*p, in, out);
    *out += ']';
  }
}

void Print(const Expr& e, const StringInterner& in, std::string* out) {
  switch (e.kind) {
    case ExprKind::kVarRef:
      *out += '$';
      *out += e.var_name;
      break;
    case ExprKind::kLiteral:
      if (e.literal.IsString()) {
        *out += '"';
        *out += e.literal.str();
        *out += '"';
      } else {
        *out += e.literal.StringValue();
      }
      break;
    case ExprKind::kContextItem:
      *out += '.';
      break;
    case ExprKind::kRoot:
      *out += "fn:root(.)";
      break;
    case ExprKind::kPath:
      Print(*e.child0, in, out);
      *out += e.double_slash ? "//" : "/";
      Print(*e.child1, in, out);
      break;
    case ExprKind::kStep:
      *out += StepToString(e.axis, e.test, in);
      PrintPredicates(e.predicates, in, out);
      break;
    case ExprKind::kFilter:
      *out += '(';
      Print(*e.child0, in, out);
      *out += ')';
      PrintPredicates(e.predicates, in, out);
      break;
    case ExprKind::kFlwor:
      for (const FlworClause& c : e.clauses) {
        switch (c.kind) {
          case FlworClause::Kind::kFor:
            *out += "for $" + c.var;
            if (!c.pos_var.empty()) *out += " at $" + c.pos_var;
            *out += " in ";
            Print(*c.expr, in, out);
            *out += ' ';
            break;
          case FlworClause::Kind::kLet:
            *out += "let $" + c.var + " := ";
            Print(*c.expr, in, out);
            *out += ' ';
            break;
          case FlworClause::Kind::kWhere:
            *out += "where ";
            Print(*c.expr, in, out);
            *out += ' ';
            break;
        }
      }
      *out += "return ";
      Print(*e.ret, in, out);
      break;
    case ExprKind::kFnCall: {
      *out += e.fn_name;
      *out += '(';
      bool first = true;
      for (const ExprPtr& a : e.args) {
        if (!first) *out += ", ";
        first = false;
        Print(*a, in, out);
      }
      *out += ')';
      break;
    }
    case ExprKind::kCompare:
      Print(*e.child0, in, out);
      *out += ' ';
      *out += xdm::CompareOpName(e.cmp_op);
      *out += ' ';
      Print(*e.child1, in, out);
      break;
    case ExprKind::kArith:
      Print(*e.child0, in, out);
      *out += ' ';
      *out += xdm::ArithOpName(e.arith_op);
      *out += ' ';
      Print(*e.child1, in, out);
      break;
    case ExprKind::kUnion:
      Print(*e.child0, in, out);
      *out += " | ";
      Print(*e.child1, in, out);
      break;
    case ExprKind::kIfExpr:
      *out += "if (";
      Print(*e.child0, in, out);
      *out += ") then ";
      Print(*e.child1, in, out);
      *out += " else ";
      Print(*e.ret, in, out);
      break;
    case ExprKind::kQuantified:
      *out += e.is_every ? "every $" : "some $";
      *out += e.var_name;
      *out += " in ";
      Print(*e.child0, in, out);
      *out += " satisfies ";
      Print(*e.child1, in, out);
      break;
    case ExprKind::kAnd:
      Print(*e.child0, in, out);
      *out += " and ";
      Print(*e.child1, in, out);
      break;
    case ExprKind::kOr:
      Print(*e.child0, in, out);
      *out += " or ";
      Print(*e.child1, in, out);
      break;
    case ExprKind::kSequence: {
      *out += '(';
      bool first = true;
      for (const ExprPtr& i : e.items) {
        if (!first) *out += ", ";
        first = false;
        Print(*i, in, out);
      }
      *out += ')';
      break;
    }
  }
}

}  // namespace

std::string ToString(const Expr& e, const StringInterner& interner) {
  std::string out;
  Print(e, interner, &out);
  return out;
}

}  // namespace xqtp::xquery
