file(REMOVE_RECURSE
  "CMakeFiles/exec_stats_test.dir/exec_stats_test.cc.o"
  "CMakeFiles/exec_stats_test.dir/exec_stats_test.cc.o.d"
  "exec_stats_test"
  "exec_stats_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exec_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
