#include "pattern/tree_pattern.h"

#include <algorithm>

namespace xqtp::pattern {

namespace {

PatternNodePtr CloneNode(const PatternNode& n) {
  auto c = std::make_unique<PatternNode>();
  c->axis = n.axis;
  c->test = n.test;
  c->output = n.output;
  c->position = n.position;
  for (const PatternNodePtr& p : n.predicates) {
    c->predicates.push_back(CloneNode(*p));
  }
  if (n.next) c->next = CloneNode(*n.next);
  return c;
}

void CollectOutputs(const PatternNode& n, std::vector<Symbol>* out) {
  if (n.output != kInvalidSymbol) out->push_back(n.output);
  for (const PatternNodePtr& p : n.predicates) CollectOutputs(*p, out);
  if (n.next) CollectOutputs(*n.next, out);
}

bool RenameIn(PatternNode* n, Symbol from, Symbol to) {
  if (n->output == from) {
    n->output = to;
    return true;
  }
  for (PatternNodePtr& p : n->predicates) {
    if (RenameIn(p.get(), from, to)) return true;
  }
  if (n->next) return RenameIn(n->next.get(), from, to);
  return false;
}

bool ClearIn(PatternNode* n, Symbol field) {
  if (n->output == field) {
    n->output = kInvalidSymbol;
    return true;
  }
  for (PatternNodePtr& p : n->predicates) {
    if (ClearIn(p.get(), field)) return true;
  }
  if (n->next) return ClearIn(n->next.get(), field);
  return false;
}

int CountSteps(const PatternNode& n) {
  int c = 1;
  for (const PatternNodePtr& p : n.predicates) c += CountSteps(*p);
  if (n.next) c += CountSteps(*n.next);
  return c;
}

int Branching(const PatternNode& n) {
  int b = static_cast<int>(n.predicates.size());
  for (const PatternNodePtr& p : n.predicates) b = std::max(b, Branching(*p));
  if (n.next) b = std::max(b, Branching(*n.next));
  return b;
}

void PrintNode(const PatternNode& n, const StringInterner& in,
               std::string* out) {
  *out += StepToString(n.axis, n.test, in);
  if (n.position > 0) {
    *out += '[';
    *out += std::to_string(n.position);
    *out += ']';
  }
  if (n.output != kInvalidSymbol) {
    *out += '{';
    *out += in.NameOf(n.output);
    *out += '}';
  }
  for (const PatternNodePtr& p : n.predicates) {
    *out += '[';
    PrintNode(*p, in, out);
    *out += ']';
  }
  if (n.next) {
    *out += '/';
    PrintNode(*n.next, in, out);
  }
}

}  // namespace

TreePattern TreePattern::Clone() const {
  TreePattern c;
  c.input_field = input_field;
  if (root) c.root = CloneNode(*root);
  return c;
}

PatternNode* TreePattern::ExtractionPoint() {
  PatternNode* n = root.get();
  if (n == nullptr) return nullptr;
  while (n->next) n = n->next.get();
  return n;
}

const PatternNode* TreePattern::ExtractionPoint() const {
  return const_cast<TreePattern*>(this)->ExtractionPoint();
}

std::vector<Symbol> TreePattern::OutputFields() const {
  std::vector<Symbol> out;
  if (root) CollectOutputs(*root, &out);
  return out;
}

bool TreePattern::SingleOutputAtExtractionPoint() const {
  std::vector<Symbol> outs = OutputFields();
  if (outs.size() != 1) return false;
  const PatternNode* ep = ExtractionPoint();
  return ep != nullptr && ep->output == outs[0];
}

int TreePattern::StepCount() const { return root ? CountSteps(*root) : 0; }

namespace {

bool AxesOk(const PatternNode& n) {
  if (!AxisAllowedInPattern(n.axis)) return false;
  for (const PatternNodePtr& p : n.predicates) {
    if (!AxesOk(*p)) return false;
  }
  return n.next == nullptr || AxesOk(*n.next);
}

}  // namespace

bool TreePattern::UsesOnlyPatternAxes() const {
  return root == nullptr || AxesOk(*root);
}

namespace {

bool AnyPositional(const PatternNode& n) {
  if (n.position > 0) return true;
  for (const PatternNodePtr& p : n.predicates) {
    if (AnyPositional(*p)) return true;
  }
  return n.next != nullptr && AnyPositional(*n.next);
}

}  // namespace

bool TreePattern::HasPositionalSteps() const {
  return root != nullptr && AnyPositional(*root);
}

int TreePattern::MaxBranching() const { return root ? Branching(*root) : 0; }

std::string TreePattern::ToString(const StringInterner& interner) const {
  std::string out = "IN#";
  out += interner.NameOf(input_field);
  if (root) {
    out += '/';
    PrintNode(*root, interner, &out);
  }
  return out;
}

bool Equal(const PatternNode& a, const PatternNode& b) {
  if (a.axis != b.axis || !(a.test == b.test) || a.output != b.output ||
      a.position != b.position) {
    return false;
  }
  if (a.predicates.size() != b.predicates.size()) return false;
  for (size_t i = 0; i < a.predicates.size(); ++i) {
    if (!Equal(*a.predicates[i], *b.predicates[i])) return false;
  }
  if ((a.next == nullptr) != (b.next == nullptr)) return false;
  if (a.next && !Equal(*a.next, *b.next)) return false;
  return true;
}

bool Equal(const TreePattern& a, const TreePattern& b) {
  if (a.input_field != b.input_field) return false;
  if ((a.root == nullptr) != (b.root == nullptr)) return false;
  return a.root == nullptr || Equal(*a.root, *b.root);
}

TreePattern MakeSingleStep(Symbol input_field, Axis axis, const NodeTest& test,
                           Symbol output) {
  TreePattern tp;
  tp.input_field = input_field;
  tp.root = std::make_unique<PatternNode>();
  tp.root->axis = axis;
  tp.root->test = test;
  tp.root->output = output;
  return tp;
}

bool RenameOutput(TreePattern* tp, Symbol from, Symbol to) {
  return tp->root != nullptr && RenameIn(tp->root.get(), from, to);
}

bool ClearOutput(TreePattern* tp, Symbol field) {
  return tp->root != nullptr && ClearIn(tp->root.get(), field);
}

void AppendPath(TreePattern* tp, TreePattern suffix) {
  PatternNode* ep = tp->ExtractionPoint();
  if (ep == nullptr || suffix.root == nullptr) return;
  ep->output = kInvalidSymbol;  // the intermediate binding is dropped
  ep->next = std::move(suffix.root);
}

void AppendPathKeepOutput(TreePattern* tp, TreePattern suffix) {
  PatternNode* ep = tp->ExtractionPoint();
  if (ep == nullptr || suffix.root == nullptr) return;
  ep->next = std::move(suffix.root);
}

namespace {

void ClearAllOutputs(PatternNode* n) {
  n->output = kInvalidSymbol;
  for (PatternNodePtr& p : n->predicates) ClearAllOutputs(p.get());
  if (n->next) ClearAllOutputs(n->next.get());
}

}  // namespace

void AttachPredicate(TreePattern* tp, TreePattern pred) {
  PatternNode* ep = tp->ExtractionPoint();
  if (ep == nullptr || pred.root == nullptr) return;
  // Outputs inside a predicate branch are unobservable after the merge.
  ClearAllOutputs(pred.root.get());
  ep->predicates.push_back(std::move(pred.root));
}

}  // namespace xqtp::pattern
