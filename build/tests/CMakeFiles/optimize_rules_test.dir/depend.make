# Empty dependencies file for optimize_rules_test.
# This may be replaced when dependencies are built.
