// Evaluator tests: every compiled query is checked through all plan
// choices (core interpreter, unoptimized P1-style plan, optimized plan)
// and all three pattern algorithms, against hand-computed expectations.
#include <gtest/gtest.h>

#include "engine/engine.h"
#include "xml/serializer.h"

namespace xqtp::exec {
namespace {

class EvaluatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto doc = engine_.LoadDocument(
        "d",
        "<site><people>"
        "<person><name>Ann</name><emailaddress>a@x</emailaddress></person>"
        "<person><name>Bob</name></person>"
        "<person><name>Cid</name><emailaddress>c@x</emailaddress>"
        "<profile><interest category=\"art\"/>"
        "<interest category=\"tech\"/></profile></person>"
        "</people></site>");
    ASSERT_TRUE(doc.ok()) << doc.status().ToString();
    doc_ = doc.value();
  }

  /// Evaluates through every route and asserts all agree; returns the
  /// string values of the result.
  std::vector<std::string> EvalAllRoutes(const std::string& q) {
    auto cq = engine_.Compile(q);
    EXPECT_TRUE(cq.ok()) << q << ": " << cq.status().ToString();
    if (!cq.ok()) return {};
    engine::Engine::GlobalMap globals;
    for (const std::string& g : cq->GlobalNames()) {
      globals[g] = {xdm::Item(doc_->root())};
    }
    std::vector<std::string> reference;
    bool first = true;
    for (auto pc : {engine::PlanChoice::kCoreInterp,
                    engine::PlanChoice::kUnoptimized,
                    engine::PlanChoice::kOptimized}) {
      for (auto algo : {PatternAlgo::kNLJoin, PatternAlgo::kStaircase,
                        PatternAlgo::kTwig, PatternAlgo::kStream,
                        PatternAlgo::kTwigStack}) {
        auto res = engine_.Execute(*cq, globals, algo, pc);
        EXPECT_TRUE(res.ok())
            << q << " [" << PatternAlgoName(algo) << "]: "
            << res.status().ToString();
        if (!res.ok()) continue;
        std::vector<std::string> values;
        for (const xdm::Item& it : *res) values.push_back(it.StringValue());
        if (first) {
          reference = values;
          first = false;
        } else {
          EXPECT_EQ(values, reference)
              << q << " route disagreement [" << static_cast<int>(pc) << "/"
              << PatternAlgoName(algo) << "]";
        }
        if (pc == engine::PlanChoice::kCoreInterp) break;  // algo-agnostic
      }
    }
    return reference;
  }

  engine::Engine engine_;
  const xml::Document* doc_;
};

TEST_F(EvaluatorTest, SimplePath) {
  EXPECT_EQ(EvalAllRoutes("$d/site/people/person/name"),
            (std::vector<std::string>{"Ann", "Bob", "Cid"}));
}

TEST_F(EvaluatorTest, DescendantWithPredicate) {
  EXPECT_EQ(EvalAllRoutes("$d//person[emailaddress]/name"),
            (std::vector<std::string>{"Ann", "Cid"}));
}

TEST_F(EvaluatorTest, ValuePredicate) {
  EXPECT_EQ(EvalAllRoutes("$d//person[name = \"Cid\"]/emailaddress"),
            (std::vector<std::string>{"c@x"}));
}

TEST_F(EvaluatorTest, PositionalPredicate) {
  EXPECT_EQ(EvalAllRoutes("$d//person[1]/name"),
            (std::vector<std::string>{"Ann"}));
  EXPECT_EQ(EvalAllRoutes("$d//person[3]/name"),
            (std::vector<std::string>{"Cid"}));
  EXPECT_EQ(EvalAllRoutes("$d//person[position() = last()]/name"),
            (std::vector<std::string>{"Cid"}));
}

TEST_F(EvaluatorTest, PositionalAfterValuePredicate) {
  // Q4-style: positional applies to the filtered sequence.
  EXPECT_EQ(EvalAllRoutes("$d//person[emailaddress][2]/name"),
            (std::vector<std::string>{"Cid"}));
}

TEST_F(EvaluatorTest, AttributeSteps) {
  EXPECT_EQ(EvalAllRoutes("$d//interest/@category"),
            (std::vector<std::string>{"art", "tech"}));
  EXPECT_EQ(EvalAllRoutes("$d//profile[interest]/parent::person/name"),
            (std::vector<std::string>{"Cid"}));
}

TEST_F(EvaluatorTest, FlworForms) {
  EXPECT_EQ(EvalAllRoutes(
                "for $p in $d//person where $p/emailaddress return $p/name"),
            (std::vector<std::string>{"Ann", "Cid"}));
  EXPECT_EQ(EvalAllRoutes("let $ps := $d//person return $ps[2]/name"),
            (std::vector<std::string>{"Bob"}));
}

TEST_F(EvaluatorTest, PositionalForVariable) {
  EXPECT_EQ(EvalAllRoutes(
                "for $p at $i in $d//person where $i = 2 return $p/name"),
            (std::vector<std::string>{"Bob"}));
}

TEST_F(EvaluatorTest, FunctionsAndLogic) {
  EXPECT_EQ(EvalAllRoutes("fn:count($d//person)"),
            (std::vector<std::string>{"3"}));
  EXPECT_EQ(EvalAllRoutes("fn:exists($d//person[name = \"Zed\"])"),
            (std::vector<std::string>{"false"}));
  EXPECT_EQ(EvalAllRoutes("fn:boolean($d//emailaddress)"),
            (std::vector<std::string>{"true"}));
  EXPECT_EQ(EvalAllRoutes(
                "for $p in $d//person where $p/emailaddress and "
                "$p/profile return $p/name"),
            (std::vector<std::string>{"Cid"}));
  EXPECT_EQ(EvalAllRoutes(
                "for $p in $d//person where $p/emailaddress or "
                "$p/profile return $p/name"),
            (std::vector<std::string>{"Ann", "Cid"}));
}

TEST_F(EvaluatorTest, WildcardSteps) {
  EXPECT_EQ(EvalAllRoutes("fn:count($d/site/*)"),
            (std::vector<std::string>{"1"}));
  EXPECT_EQ(EvalAllRoutes("fn:count($d//person/*)"),
            (std::vector<std::string>{"6"}));
}

TEST_F(EvaluatorTest, EmptyResults) {
  EXPECT_TRUE(EvalAllRoutes("$d//nonexistent").empty());
  EXPECT_TRUE(EvalAllRoutes("$d//person[name = \"Zed\"]/name").empty());
}

TEST_F(EvaluatorTest, SequencesAndLiterals) {
  EXPECT_EQ(EvalAllRoutes("(1, 2, 3)"),
            (std::vector<std::string>{"1", "2", "3"}));
  EXPECT_EQ(EvalAllRoutes("\"hello\""),
            (std::vector<std::string>{"hello"}));
}

TEST_F(EvaluatorTest, UnboundGlobalFails) {
  auto cq = engine_.Compile("$missing/a");
  ASSERT_TRUE(cq.ok());
  auto res = engine_.Execute(*cq, {}, PatternAlgo::kNLJoin);
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace xqtp::exec
