// Algorithm picker: demonstrates the paper's Section 5 conclusion — there
// is no single best tree-pattern algorithm. For a set of query/document
// archetypes, times all three algorithms and reports the winner together
// with the heuristic the measurements support.
//
//   $ ./build/examples/algorithm_picker
#include <chrono>
#include <cstdio>
#include <string>

#include "engine/engine.h"
#include "workload/member_gen.h"

namespace {

double TimeMs(xqtp::engine::Engine* engine,
              const xqtp::engine::CompiledQuery& cq,
              const xqtp::engine::Engine::GlobalMap& globals,
              xqtp::exec::PatternAlgo algo, int reps) {
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < reps; ++i) {
    auto res = engine->Execute(cq, globals, algo);
    if (!res.ok()) return -1;
  }
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
             .count() /
         reps;
}

struct Archetype {
  const char* description;
  const char* heuristic;
  const char* query;
  bool deep_doc;
};

constexpr Archetype kArchetypes[] = {
    {"simple rooted path (QE1-like)",
     "SC and TJ are close; NL loses badly on rooted patterns",
     "$input/desc::t01[child::t02[child::t03[child::t04]]]", false},
    {"branchy descendant twig (QE6-like)",
     "TJ stays well-behaved where SC's per-candidate probes degrade",
     "$input/desc::t01[desc::t02[desc::t03]/desc::t04[desc::t03]]", false},
    {"positional step outside the fragment (QE2-like)",
     "patterns embedded in maps: index algorithms pay per-step scans",
     "$input/desc::t01/child::t02[1]/child::t03[child::t04]", false},
    {"highly selective positional chain (Section 5.3)",
     "NL only touches the first-child chain; SC/TJ scan the index per step",
     "$input/t1[1]/t1[1]/t1[1]/t1[1]/t1[1]/t1[1]/t1[1]/t1[1]/t1[1]/t1[1]",
     true},
};

}  // namespace

int main() {
  xqtp::engine::Engine engine;

  xqtp::workload::MemberParams wide;
  wide.node_count = 150000;
  wide.max_depth = 5;
  wide.num_tags = 100;
  wide.plant_twigs = 75;
  const xqtp::xml::Document* wide_doc = engine.AddDocument(
      "wide", xqtp::workload::GenerateMember(wide, engine.interner()));

  xqtp::workload::MemberParams deep;
  deep.node_count = 50000;
  deep.max_depth = 15;
  deep.num_tags = 1;
  const xqtp::xml::Document* deep_doc = engine.AddDocument(
      "deep", xqtp::workload::GenerateMember(deep, engine.interner()));

  std::printf("%-52s %9s %9s %9s %9s %9s   winner\n", "archetype",
              "NL (ms)", "SC (ms)", "TJ (ms)", "ST (ms)", "CB (ms)");
  for (const Archetype& a : kArchetypes) {
    auto cq = engine.Compile(a.query);
    if (!cq.ok()) {
      std::printf("%-52s compile error: %s\n", a.description,
                  cq.status().ToString().c_str());
      continue;
    }
    const xqtp::xml::Document* doc = a.deep_doc ? deep_doc : wide_doc;
    xqtp::engine::Engine::GlobalMap globals{
        {"input", {xqtp::xdm::Item(doc->root())}}};
    double nl = TimeMs(&engine, *cq, globals, xqtp::exec::PatternAlgo::kNLJoin, 5);
    double sc =
        TimeMs(&engine, *cq, globals, xqtp::exec::PatternAlgo::kStaircase, 5);
    double tj = TimeMs(&engine, *cq, globals, xqtp::exec::PatternAlgo::kTwig, 5);
    double st = TimeMs(&engine, *cq, globals, xqtp::exec::PatternAlgo::kStream, 5);
    double cb =
        TimeMs(&engine, *cq, globals, xqtp::exec::PatternAlgo::kCostBased, 5);
    const char* winner = (nl <= sc && nl <= tj) ? "NLJoin"
                         : (sc <= tj)           ? "SCJoin"
                                                : "TwigJoin";
    std::printf("%-52s %9.3f %9.3f %9.3f %9.3f %9.3f   %s\n", a.description,
                nl, sc, tj, st, cb, winner);
    std::printf("    -> %s\n", a.heuristic);
  }
  std::printf(
      "\nConclusion (paper Section 5): no single algorithm dominates — a "
      "cost model is needed.\n");
  return 0;
}
