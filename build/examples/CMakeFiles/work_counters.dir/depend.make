# Empty dependencies file for work_counters.
# This may be replaced when dependencies are built.
