// Tests for the extended XQuery fragment: arithmetic, conditionals,
// quantified expressions, union, string/number functions, and the
// additional navigational axes. Every query is cross-checked through all
// evaluation routes.
#include <gtest/gtest.h>

#include "engine/engine.h"

namespace xqtp {
namespace {

class FragmentTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto doc = engine_.LoadDocument(
        "d",
        "<inventory>"
        "<item><name>apple</name><price>3</price><qty>10</qty></item>"
        "<item><name>pear</name><price>5</price><qty>4</qty></item>"
        "<item><name>plum</name><price>2</price></item>"
        "</inventory>");
    ASSERT_TRUE(doc.ok()) << doc.status().ToString();
    doc_ = doc.value();
  }

  std::vector<std::string> Eval(const std::string& q) {
    auto cq = engine_.Compile(q);
    EXPECT_TRUE(cq.ok()) << q << ": " << cq.status().ToString();
    if (!cq.ok()) return {};
    engine::Engine::GlobalMap globals{{"d", {xdm::Item(doc_->root())}}};
    std::vector<std::string> reference;
    bool first = true;
    for (auto pc : {engine::PlanChoice::kCoreInterp,
                    engine::PlanChoice::kUnoptimized,
                    engine::PlanChoice::kOptimized}) {
      for (auto algo : {exec::PatternAlgo::kNLJoin,
                        exec::PatternAlgo::kStaircase,
                        exec::PatternAlgo::kTwig,
                        exec::PatternAlgo::kStream,
                        exec::PatternAlgo::kTwigStack}) {
        auto res = engine_.Execute(*cq, globals, algo, pc);
        EXPECT_TRUE(res.ok()) << q << ": " << res.status().ToString();
        if (!res.ok()) continue;
        std::vector<std::string> values;
        for (const xdm::Item& it : *res) values.push_back(it.StringValue());
        if (first) {
          reference = values;
          first = false;
        } else {
          EXPECT_EQ(values, reference) << q;
        }
        if (pc == engine::PlanChoice::kCoreInterp) break;
      }
    }
    return reference;
  }

  std::string One(const std::string& q) {
    std::vector<std::string> v = Eval(q);
    EXPECT_EQ(v.size(), 1u) << q;
    return v.empty() ? "" : v[0];
  }

  engine::Engine engine_;
  const xml::Document* doc_;
};

TEST_F(FragmentTest, Arithmetic) {
  EXPECT_EQ(One("1 + 2 * 3"), "7");
  EXPECT_EQ(One("(1 + 2) * 3"), "9");
  EXPECT_EQ(One("7 mod 3"), "1");
  EXPECT_EQ(One("7 idiv 2"), "3");
  EXPECT_EQ(One("7 div 2"), "3.5");
  EXPECT_EQ(One("-3 + 5"), "2");
  EXPECT_EQ(One("1 - -1"), "2");
}

TEST_F(FragmentTest, ArithmeticOverNodeValues) {
  // price values coerce to numbers.
  EXPECT_EQ(One("fn:sum($d//price) + 0"), "10");
  EXPECT_EQ(One("fn:count($d//item) * 2"), "6");
}

TEST_F(FragmentTest, ArithmeticEmptyAndErrors) {
  EXPECT_TRUE(Eval("$d//nope + 1").empty());
  auto cq = engine_.Compile("1 div 0");
  ASSERT_TRUE(cq.ok());
  auto res = engine_.Execute(*cq, {}, exec::PatternAlgo::kNLJoin);
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kTypeError);
}

TEST_F(FragmentTest, Conditionals) {
  EXPECT_EQ(One("if ($d//item[name = \"pear\"]) then \"yes\" else \"no\""),
            "yes");
  EXPECT_EQ(One("if ($d//item[name = \"kiwi\"]) then \"yes\" else \"no\""),
            "no");
  // Conditionals nest in FLWOR returns.
  EXPECT_EQ(Eval("for $i in $d//item return "
                 "if ($i/qty) then $i/name else \"out-of-stock\""),
            (std::vector<std::string>{"apple", "pear", "out-of-stock"}));
}

TEST_F(FragmentTest, QuantifiedExpressions) {
  EXPECT_EQ(One("some $i in $d//item satisfies $i/price = 5"), "true");
  EXPECT_EQ(One("some $i in $d//item satisfies $i/price = 9"), "false");
  EXPECT_EQ(One("every $i in $d//item satisfies $i/price"), "true");
  EXPECT_EQ(One("every $i in $d//item satisfies $i/qty"), "false");
  // Multiple bindings nest.
  EXPECT_EQ(One("some $i in $d//item, $p in $i/price satisfies $p = 2"),
            "true");
  // Quantifiers over the empty sequence.
  EXPECT_EQ(One("some $i in $d//nope satisfies $i"), "false");
  EXPECT_EQ(One("every $i in $d//nope satisfies $i"), "true");
}

TEST_F(FragmentTest, UnionIsDistinctDocOrdered) {
  std::vector<std::string> v =
      Eval("$d//item[1]/name | $d//price | $d//item[1]/name");
  // names/prices interleave in document order; duplicates collapse.
  EXPECT_EQ(v, (std::vector<std::string>{"apple", "3", "5", "2"}));
}

TEST_F(FragmentTest, StringFunctions) {
  EXPECT_EQ(One("fn:string($d//item[1]/name)"), "apple");
  EXPECT_EQ(One("fn:string($d//nope)"), "");
  EXPECT_EQ(One("fn:string-length($d//item[1]/name)"), "5");
  EXPECT_EQ(One("fn:concat(\"a\", \"b\", \"c\")"), "abc");
  EXPECT_EQ(One("fn:contains($d//item[1]/name, \"ppl\")"), "true");
  EXPECT_EQ(One("fn:starts-with($d//item[2]/name, \"pe\")"), "true");
  EXPECT_EQ(One("fn:starts-with($d//item[2]/name, \"ap\")"), "false");
}

TEST_F(FragmentTest, NumberFunctions) {
  EXPECT_EQ(One("fn:number($d//item[1]/price)"), "3");
  EXPECT_EQ(One("fn:sum($d//price)"), "10");
  EXPECT_EQ(One("fn:sum($d//nope)"), "0");
}

TEST_F(FragmentTest, StringPredicates) {
  EXPECT_EQ(Eval("$d//item[starts-with(name, \"p\")]/name"),
            (std::vector<std::string>{"pear", "plum"}));
  EXPECT_EQ(Eval("$d//item[contains(name, \"ea\")]/name"),
            (std::vector<std::string>{"pear"}));
}

TEST_F(FragmentTest, UpwardAndSidewaysAxes) {
  EXPECT_EQ(Eval("$d//price/parent::item/name"),
            (std::vector<std::string>{"apple", "pear", "plum"}));
  EXPECT_EQ(Eval("$d//qty/ancestor::item/name"),
            (std::vector<std::string>{"apple", "pear"}));
  // two qty, their two items, and the shared inventory element.
  EXPECT_EQ(One("fn:count($d//qty/ancestor-or-self::*)"), "5");
  EXPECT_EQ(Eval("$d//item/name/following-sibling::price"),
            (std::vector<std::string>{"3", "5", "2"}));
  EXPECT_EQ(Eval("$d//item/qty/preceding-sibling::name"),
            (std::vector<std::string>{"apple", "pear"}));
}

TEST_F(FragmentTest, UpwardAxesStayOutOfPatterns) {
  auto cq = engine_.Compile("$d//qty/ancestor::item/name");
  ASSERT_TRUE(cq.ok());
  // Patterns cover the downward part only; the ancestor step remains a
  // navigational TreeJoin.
  EXPECT_GE(cq->Stats().tree_join_ops, 1);
}

TEST_F(FragmentTest, MixedExpressions) {
  EXPECT_EQ(One("fn:count($d//item[price > 2]) + fn:count($d//qty)"), "4");
  EXPECT_EQ(Eval("for $i in $d//item where $i/price * 2 > 5 "
                 "return $i/name"),
            (std::vector<std::string>{"apple", "pear"}));
  EXPECT_EQ(One("fn:sum(for $i in $d//item return "
                "fn:number($i/price) * (if ($i/qty) then "
                "fn:number($i/qty) else 0))"),
            "50");
}

}  // namespace
}  // namespace xqtp
