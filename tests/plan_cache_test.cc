// Plan-cache suite (engine/plan_cache.h, common/fingerprint.h): canonical
// fingerprinting, LRU byte accounting, single-flight stampede protection,
// verify-at-fill, and an 8-thread hammer mixing hits, misses, erases, and
// clears. The hammer and the stampede test are the TSan targets: ci/check.sh
// runs this binary in the thread-sanitizer leg.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "analysis/verify_scope.h"
#include "common/fingerprint.h"
#include "engine/engine.h"
#include "engine/plan_cache.h"

namespace xqtp {
namespace {

using engine::CompileOptions;
using engine::CompiledQuery;
using engine::Engine;
using engine::EngineOptions;
using engine::PlanCache;
using engine::PlanCacheConfig;
using engine::PlanCachePeek;
using engine::PlanCacheStats;

std::string BuildDocumentXml() {
  std::string xml = "<site><people>";
  for (int i = 0; i < 24; ++i) {
    std::string n = std::to_string(i);
    xml += "<person><name>p" + n + "</name><emailaddress>e" + n +
           "</emailaddress></person>";
  }
  xml += "</people></site>";
  return xml;
}

/// A serving-style engine: verification off so a concurrent hammer
/// compiles at Release speed and without the oracle's fill serialization.
EngineOptions ServingOptions() {
  EngineOptions opts;
  opts.verify_plans = false;
  opts.analysis.check_equivalence = false;
  return opts;
}

// ---- fingerprint canonicalization ------------------------------------------

TEST(Fingerprint, WhitespaceAndCommentVariantsCollide) {
  Engine e(ServingOptions());
  const uint64_t base = e.Fingerprint("$input//person[emailaddress]/name");
  EXPECT_EQ(e.Fingerprint("$input // person[ emailaddress ] / name"), base);
  EXPECT_EQ(e.Fingerprint("  $input//person[emailaddress]/name  "), base);
  EXPECT_EQ(e.Fingerprint("(: v2 :) $input//person[emailaddress]/name"), base);
  EXPECT_EQ(
      e.Fingerprint("$input//person[(: nested (: ! :) :)emailaddress]/name"),
      base);
  EXPECT_EQ(e.Fingerprint("$input//person\n\t[emailaddress]\n/name"), base);
}

TEST(Fingerprint, DistinctQueriesAndTokenFusionStayDistinct) {
  Engine e(ServingOptions());
  EXPECT_NE(e.Fingerprint("$input//person/name"),
            e.Fingerprint("$input//person/age"));
  // Collapsing "a - b" into "a-b" would fuse two tokens into one name;
  // the canonicalizer must keep those distinct.
  EXPECT_NE(e.Fingerprint("1 - 1"), e.Fingerprint("1 -1"));
  // Whitespace inside string literals is significant.
  EXPECT_NE(e.Fingerprint("\"a  b\""), e.Fingerprint("\"a b\""));
}

TEST(Fingerprint, PlanShapingOptionsDiscriminate) {
  Engine e(ServingOptions());
  const char* q = "$input//person[emailaddress]/name";
  CompileOptions plain;
  CompileOptions old_engine;
  old_engine.detect_tree_patterns = false;
  CompileOptions no_rewrite;
  no_rewrite.rewrite = false;
  CompileOptions no_props;
  no_props.infer_properties = false;
  CompileOptions no_ddo;
  no_ddo.rewrite_opts.ddo_removal = false;
  const uint64_t base = e.Fingerprint(q, plain);
  EXPECT_NE(e.Fingerprint(q, old_engine), base);
  EXPECT_NE(e.Fingerprint(q, no_rewrite), base);
  EXPECT_NE(e.Fingerprint(q, no_props), base);
  EXPECT_NE(e.Fingerprint(q, no_ddo), base);
}

TEST(Fingerprint, CompileLimitsDoNotShapeTheKey) {
  Engine e(ServingOptions());
  const char* q = "$input//person/name";
  CompileOptions with_deadline;
  with_deadline.deadline =
      std::chrono::steady_clock::now() + std::chrono::hours(1);
  EXPECT_EQ(e.Fingerprint(q, with_deadline), e.Fingerprint(q));
}

// ---- engine-level caching ---------------------------------------------------

TEST(PlanCacheEngine, VariantsShareOneEntryAndCompileOnce) {
  Engine e(ServingOptions());
  auto a = e.CompileCached("$input//person[emailaddress]/name");
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  auto b = e.CompileCached("$input // person[ emailaddress ] / name");
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  auto c = e.CompileCached("(: retry :) $input//person[emailaddress]/name");
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  EXPECT_EQ(a->get(), b->get());  // the same immutable plan object
  EXPECT_EQ(a->get(), c->get());
  PlanCacheStats stats = e.plan_cache_stats();
  EXPECT_EQ(stats.fills, 1);
  EXPECT_EQ(stats.hits, 2);
  EXPECT_EQ(stats.entries, 1);
  EXPECT_GT(stats.bytes, 0);
  EXPECT_EQ(stats.bytes, (*a)->MemoryUsage());
}

TEST(PlanCacheEngine, OptionsSplitEntries) {
  Engine e(ServingOptions());
  const char* q = "$input//person[emailaddress]/name";
  CompileOptions old_engine;
  old_engine.detect_tree_patterns = false;
  auto tp = e.CompileCached(q);
  auto legacy = e.CompileCached(q, old_engine);
  ASSERT_TRUE(tp.ok() && legacy.ok());
  EXPECT_NE(tp->get(), legacy->get());
  EXPECT_NE((*tp)->fingerprint(), (*legacy)->fingerprint());
  EXPECT_GT((*tp)->Stats().tree_pattern_ops, 0);
  EXPECT_EQ((*legacy)->Stats().tree_pattern_ops, 0);
  EXPECT_EQ(e.plan_cache_stats().entries, 2);
}

TEST(PlanCacheEngine, EraseAndClearInvalidate) {
  Engine e(ServingOptions());
  const char* q = "$input//person/name";
  ASSERT_TRUE(e.CompileCached(q).ok());
  EXPECT_TRUE(e.ErasePlan(q));
  EXPECT_FALSE(e.ErasePlan(q));  // already gone
  ASSERT_TRUE(e.CompileCached(q).ok());
  EXPECT_EQ(e.plan_cache_stats().fills, 2);
  e.ClearPlanCache();
  EXPECT_EQ(e.plan_cache_stats().entries, 0);
  ASSERT_TRUE(e.CompileCached(q).ok());
  EXPECT_EQ(e.plan_cache_stats().fills, 3);
}

TEST(PlanCacheEngine, SetOptionsBumpsGenerationAndRecompiles) {
  Engine e(ServingOptions());
  const char* q = "$input//person/name";
  ASSERT_TRUE(e.CompileCached(q).ok());
  const uint64_t gen = e.plan_cache_stats().generation;
  EngineOptions fresh = ServingOptions();
  e.SetOptions(fresh);
  EXPECT_EQ(e.plan_cache_stats().generation, gen + 1);
  // The stale entry is treated as a miss and replaced by a new fill.
  ASSERT_TRUE(e.CompileCached(q).ok());
  EXPECT_EQ(e.plan_cache_stats().fills, 2);
  // ... and the refreshed entry serves hits again.
  ASSERT_TRUE(e.CompileCached(q).ok());
  EXPECT_EQ(e.plan_cache_stats().fills, 2);
}

TEST(PlanCacheEngine, CompileErrorsPropagateAndAreNotCached) {
  Engine e(ServingOptions());
  auto bad = e.CompileCached("$input//person[");
  EXPECT_FALSE(bad.ok());
  PlanCacheStats stats = e.plan_cache_stats();
  EXPECT_EQ(stats.fill_errors, 1);
  EXPECT_EQ(stats.entries, 0);
  // The error is re-derived per attempt, never served from the cache.
  EXPECT_FALSE(e.CompileCached("$input//person[").ok());
  EXPECT_EQ(e.plan_cache_stats().fill_errors, 2);
}

TEST(PlanCacheEngine, VerifyRunsAtFillNotPerHit) {
  EngineOptions opts;
  opts.verify_plans = true;  // static verifiers on, oracle off (fast)
  opts.analysis.check_equivalence = false;
  Engine e(opts);
  ASSERT_TRUE(e.CompileCached("$input//person[emailaddress]/name").ok());
  const int64_t after_fill = analysis::VerifyScope::ActivationCountForTesting();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(e.CompileCached("$input//person[emailaddress]/name").ok());
  }
  EXPECT_EQ(analysis::VerifyScope::ActivationCountForTesting(), after_fill)
      << "a warm hit re-opened a verification scope";
}

TEST(PlanCacheEngine, ExecuteQueryServesAndExplainShowsDisposition) {
  Engine e(ServingOptions());
  auto doc = e.LoadDocument("d", BuildDocumentXml());
  ASSERT_TRUE(doc.ok());
  Engine::GlobalMap globals{{"input", {xdm::Item((*doc)->root())}}};
  auto cold = e.ExecuteQuery("$input//person[emailaddress]/name", globals);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_EQ(cold->size(), 24u);
  auto warm = e.ExecuteQuery("$input // person[emailaddress] / name", globals);
  ASSERT_TRUE(warm.ok());
  ASSERT_EQ(warm->size(), cold->size());
  for (size_t i = 0; i < warm->size(); ++i) {
    EXPECT_TRUE((*warm)[i] == (*cold)[i]) << "item " << i;
  }
  PlanCacheStats stats = e.plan_cache_stats();
  EXPECT_EQ(stats.fills, 1);
  EXPECT_EQ(stats.hits, 1);

  auto cq = e.CompileCached("$input//person[emailaddress]/name");
  ASSERT_TRUE(cq.ok());
  std::string explain = e.Explain(**cq);
  EXPECT_NE(explain.find("== plan cache =="), std::string::npos);
  EXPECT_NE(explain.find(FingerprintHex((*cq)->fingerprint())),
            std::string::npos);
  EXPECT_NE(explain.find("disposition: cached"), std::string::npos);
}

// ---- LRU byte accounting (direct PlanCache, keys pinned to one shard) ------

/// Compiles a real query and rewraps it so direct PlanCache tests charge
/// realistic, nonzero MemoryUsage() bytes.
std::shared_ptr<const CompiledQuery> CompilePlan(Engine* e,
                                                 const std::string& q) {
  auto r = e->Compile(q);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::make_shared<const CompiledQuery>(std::move(*r));
}

TEST(PlanCacheLru, EvictsLeastRecentlyUsedWithinByteBudget) {
  Engine e(ServingOptions());
  std::shared_ptr<const CompiledQuery> plan =
      CompilePlan(&e, "$input//person[emailaddress]/name");
  const int64_t m = plan->MemoryUsage();
  ASSERT_GT(m, 0);

  // Shard 0 (keys 0, 16, 32 — all ≡ 0 mod 16) holds exactly two plans.
  PlanCacheConfig config;
  config.capacity_bytes = (2 * m + m / 2) * engine::kPlanCacheShards;
  PlanCache cache(config);
  auto build = [&]() -> Result<PlanCache::PlanPtr> { return plan; };
  ASSERT_TRUE(cache.GetOrCompile(0, build).ok());
  ASSERT_TRUE(cache.GetOrCompile(16, build).ok());
  // Touch key 0: key 16 becomes the LRU victim.
  ASSERT_TRUE(cache.GetOrCompile(0, build).ok());
  ASSERT_TRUE(cache.GetOrCompile(32, build).ok());
  EXPECT_TRUE(cache.Peek(0).present);
  EXPECT_FALSE(cache.Peek(16).present);
  EXPECT_TRUE(cache.Peek(32).present);
  PlanCacheStats stats = cache.Snapshot();
  EXPECT_EQ(stats.evictions, 1);
  EXPECT_EQ(stats.entries, 2);
  EXPECT_EQ(stats.bytes, 2 * m);
  ASSERT_EQ(stats.shards.size(),
            static_cast<size_t>(engine::kPlanCacheShards));
  EXPECT_EQ(stats.shards[0].entries, 2);
}

TEST(PlanCacheLru, OversizedPlansAreServedButNotCached) {
  Engine e(ServingOptions());
  std::shared_ptr<const CompiledQuery> plan =
      CompilePlan(&e, "$input//person/name");
  PlanCacheConfig config;
  config.capacity_bytes =
      (plan->MemoryUsage() / 2) * engine::kPlanCacheShards;
  PlanCache cache(config);
  auto got = cache.GetOrCompile(7, [&]() -> Result<PlanCache::PlanPtr> {
    return plan;
  });
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->get(), plan.get());
  EXPECT_FALSE(cache.Peek(7).present);
  EXPECT_EQ(cache.Snapshot().bytes, 0);
}

TEST(PlanCacheLru, NonPositiveCapacityDisablesCaching) {
  Engine e(ServingOptions());
  std::shared_ptr<const CompiledQuery> plan =
      CompilePlan(&e, "$input//person/name");
  PlanCacheConfig config;
  config.capacity_bytes = 0;
  PlanCache cache(config);
  int builds = 0;
  auto build = [&]() -> Result<PlanCache::PlanPtr> {
    ++builds;
    return plan;
  };
  ASSERT_TRUE(cache.GetOrCompile(3, build).ok());
  ASSERT_TRUE(cache.GetOrCompile(3, build).ok());
  EXPECT_EQ(builds, 2);  // every lookup compiles ...
  EXPECT_EQ(cache.Snapshot().entries, 0);  // ... and nothing is retained
}

// ---- single flight ----------------------------------------------------------

TEST(PlanCacheSingleFlight, ConcurrentMissesCompileOnce) {
  Engine e(ServingOptions());
  std::shared_ptr<const CompiledQuery> plan =
      CompilePlan(&e, "$input//person/name");
  PlanCache cache;
  std::atomic<int> builds{0};
  std::atomic<int> ready{0};
  constexpr int kThreads = 8;
  std::vector<PlanCache::PlanPtr> got(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) std::this_thread::yield();
      auto r = cache.GetOrCompile(42, [&]() -> Result<PlanCache::PlanPtr> {
        builds.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        return plan;
      });
      ASSERT_TRUE(r.ok());
      got[static_cast<size_t>(t)] = *r;
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(builds.load(), 1) << "single flight failed: stampede compiled";
  for (const PlanCache::PlanPtr& p : got) EXPECT_EQ(p.get(), plan.get());
  PlanCacheStats stats = cache.Snapshot();
  EXPECT_EQ(stats.fills, 1);
  // Every thread that did not fill either waited on the in-flight latch
  // or arrived after publication and hit.
  EXPECT_EQ(stats.hits + stats.single_flight_waits, kThreads - 1);
}

TEST(PlanCacheSingleFlight, ErrorsReachEveryWaiterAndAreNotCached) {
  PlanCache cache;
  std::atomic<int> builds{0};
  std::atomic<int> ready{0};
  constexpr int kThreads = 4;
  std::vector<Status> got(kThreads, Status::OK());
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) std::this_thread::yield();
      auto r = cache.GetOrCompile(9, [&]() -> Result<PlanCache::PlanPtr> {
        builds.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        return Status::InvalidArgument("synthetic compile failure");
      });
      got[static_cast<size_t>(t)] = r.status();
    });
  }
  for (std::thread& t : threads) t.join();
  // Concurrent callers share one failed fill; arrivals after publication
  // retry (errors are never cached), so builds ∈ [1, kThreads].
  EXPECT_GE(builds.load(), 1);
  for (const Status& s : got) {
    EXPECT_FALSE(s.ok());
    EXPECT_NE(s.ToString().find("synthetic compile failure"),
              std::string::npos);
  }
  EXPECT_FALSE(cache.Peek(9).present);
  EXPECT_EQ(cache.Snapshot().fill_errors, cache.Snapshot().fills);
}

// ---- the hammer -------------------------------------------------------------

// 8 threads × {hit, miss, erase, clear} over 4 keys. The invariants
// asserted afterwards: every call returned a structurally valid shared
// plan for its key (fingerprint matches), and the exactly-one-compile
// guarantee held during the initial stampede phase. TSan-clean is the
// real assertion; ci/check.sh runs this under -fsanitize=thread.
TEST(PlanCacheHammer, ConcurrentHitMissEraseClear) {
  Engine e(ServingOptions());
  const std::vector<std::string> queries = {
      "$input//person[emailaddress]/name",
      "$input//person/name",
      "$input//people/person/emailaddress",
      "$input//person",
  };

  // Phase 1: pure stampede — 8 threads race all 4 keys cold. Exactly one
  // compilation per key.
  {
    std::atomic<int> ready{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t) {
      threads.emplace_back([&] {
        ready.fetch_add(1);
        while (ready.load() < 8) std::this_thread::yield();
        for (const std::string& q : queries) {
          auto r = e.CompileCached(q);
          ASSERT_TRUE(r.ok()) << r.status().ToString();
        }
      });
    }
    for (std::thread& t : threads) t.join();
    PlanCacheStats stats = e.plan_cache_stats();
    EXPECT_EQ(stats.fills, static_cast<int64_t>(queries.size()))
        << "stampede recompiled a key";
    EXPECT_EQ(stats.entries, static_cast<int64_t>(queries.size()));
  }

  // Phase 2: mixed operations. Thread t's role rotates per iteration so
  // every combination of {hit, erase, clear, recompile} interleaves.
  {
    std::atomic<int> ready{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t) {
      threads.emplace_back([&, t] {
        ready.fetch_add(1);
        while (ready.load() < 8) std::this_thread::yield();
        for (int i = 0; i < 25; ++i) {
          const std::string& q = queries[static_cast<size_t>((t + i) % 4)];
          switch ((t + i) % 4) {
            case 0:
              e.ErasePlan(q);
              break;
            case 1:
              if (i % 10 == 0) e.ClearPlanCache();
              break;
            default: {
              auto r = e.CompileCached(q);
              ASSERT_TRUE(r.ok()) << r.status().ToString();
              EXPECT_EQ((*r)->fingerprint(), e.Fingerprint(q));
              break;
            }
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();
  }
  PlanCacheStats stats = e.plan_cache_stats();
  EXPECT_EQ(stats.fill_errors, 0);
  EXPECT_GT(stats.hits, 0);
  // Erase/Clear force refills but never a wrong plan: re-derive each key
  // once more and check the cached entry agrees with a fresh compile.
  for (const std::string& q : queries) {
    auto cached = e.CompileCached(q);
    ASSERT_TRUE(cached.ok());
    auto fresh = e.Compile(q);
    ASSERT_TRUE(fresh.ok());
    EXPECT_EQ((*cached)->fingerprint(), fresh->fingerprint());
    EXPECT_EQ((*cached)->Stats().tree_pattern_ops,
              fresh->Stats().tree_pattern_ops);
  }
}

}  // namespace
}  // namespace xqtp
