// Paper walkthrough: reproduces, stage by stage, the compilation story of
// Section 2 of "Put a Tree Pattern in Your Algebra" for the running
// example Q1a — the normalized Core (Q1a-n), the TPNF' form (Q1-tp), the
// compiled plan (P1), and the optimized plan (P5) — then shows the plans
// the paper gives for Q2 and the treatment of Q3 and Q5.
//
//   $ ./build/examples/paper_walkthrough
#include <cstdio>

#include "algebra/printer.h"
#include "core/printer.h"
#include "engine/engine.h"

namespace {

void Stage(const char* title, const std::string& body) {
  std::printf("---- %s ----\n%s\n\n", title, body.c_str());
}

}  // namespace

int main() {
  xqtp::engine::Engine engine;

  std::printf("== Q1a: $d//person[emailaddress]/name ==\n\n");
  auto q1a = engine.Compile("$d//person[emailaddress]/name");
  if (!q1a.ok()) {
    std::fprintf(stderr, "%s\n", q1a.status().ToString().c_str());
    return 1;
  }
  Stage("normalization (the paper's Q1a-n)",
        xqtp::core::ToString(q1a->normalized(), q1a->vars(),
                             *engine.interner()));
  Stage("TPNF' rewriting (the paper's Q1-tp)",
        xqtp::core::ToString(q1a->rewritten(), q1a->vars(),
                             *engine.interner()));
  Stage("algebraic compilation (the paper's P1)",
        xqtp::algebra::ToPrettyString(q1a->plan(), q1a->vars(),
                                      *engine.interner()));
  Stage("tree-pattern detection (the paper's P5)",
        xqtp::algebra::ToPrettyString(q1a->optimized(), q1a->vars(),
                                      *engine.interner()));

  std::printf("== Q1b and Q1c reach the same plan ==\n\n");
  const char* variants[] = {
      "(for $x in $d//person[emailaddress] return $x)/name",
      "let $x := for $y in $d//person where $y/emailaddress return $y "
      "return $x/name",
  };
  for (const char* v : variants) {
    auto cq = engine.Compile(v);
    if (!cq.ok()) continue;
    std::printf("%s\n  -> %s\n\n", v,
                xqtp::algebra::ToString(cq->optimized(), cq->vars(),
                                        *engine.interner())
                    .c_str());
  }

  std::printf(
      "== Q2: two patterns connected by a selection on the name ==\n\n");
  auto q2 = engine.Compile("$d//person[name = \"John\"]/emailaddress");
  if (q2.ok()) {
    Stage("optimized plan",
          xqtp::algebra::ToPrettyString(q2->optimized(), q2->vars(),
                                        *engine.interner()));
  }

  std::printf("== Q3: the positional predicate stays outside ==\n\n");
  auto q3 = engine.Compile("$d//person[1]/name");
  if (q3.ok()) {
    Stage("rewritten core (note the loop-split guard)",
          xqtp::core::ToString(q3->rewritten(), q3->vars(),
                               *engine.interner()));
    Stage("optimized plan (patterns embedded in maps)",
          xqtp::algebra::ToPrettyString(q3->optimized(), q3->vars(),
                                        *engine.interner()));
  }
  std::printf("(with CompileOptions::positional_patterns the same query\n"
              "folds into a single pattern — the paper's future work)\n\n");

  std::printf("== Q5: NOT equivalent to Q1a — the patterns stay split ==\n\n");
  auto q5 =
      engine.Compile("for $x in $d//person[emailaddress] return $x/name");
  if (q5.ok()) {
    Stage("optimized plan (two cascaded patterns, no surrounding ddo)",
          xqtp::algebra::ToPrettyString(q5->optimized(), q5->vars(),
                                        *engine.interner()));
  }
  return 0;
}
