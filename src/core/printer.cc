#include "core/printer.h"

namespace xqtp::core {

namespace {

class Printer {
 public:
  Printer(const VarTable& vars, const StringInterner& interner,
          const PrintOptions& opts)
      : vars_(vars), interner_(interner), opts_(opts) {}

  std::string Render(const CoreExpr& e) {
    Print(e);
    return std::move(out_);
  }

 private:
  void Var(VarId v) {
    out_ += '$';
    out_ += vars_.NameOf(v);
    if (opts_.verbose) out_ += "_" + std::to_string(v);
  }

  void Print(const CoreExpr& e) {
    switch (e.kind) {
      case CoreKind::kVar:
        Var(e.var);
        break;
      case CoreKind::kLiteral:
        if (e.literal.IsString()) {
          out_ += '"' + e.literal.str() + '"';
        } else {
          out_ += e.literal.StringValue();
        }
        break;
      case CoreKind::kSequence: {
        out_ += '(';
        bool first = true;
        for (const CoreExprPtr& c : e.children) {
          if (!first) out_ += ", ";
          first = false;
          Print(*c);
        }
        out_ += ')';
        break;
      }
      case CoreKind::kLet:
        out_ += "let ";
        Var(e.var);
        out_ += " := ";
        MaybeParen(*e.children[0]);
        out_ += " return ";
        Print(*e.children[1]);
        break;
      case CoreKind::kFor:
        out_ += "for ";
        Var(e.var);
        if (e.pos_var != kNoVar) {
          out_ += " at ";
          Var(e.pos_var);
        }
        out_ += " in ";
        MaybeParen(*e.children[0]);
        if (e.where) {
          out_ += " where ";
          MaybeParen(*e.where);
        }
        out_ += " return ";
        Print(*e.children[1]);
        break;
      case CoreKind::kIf:
        out_ += "if (";
        Print(*e.children[0]);
        out_ += ") then ";
        Print(*e.children[1]);
        out_ += " else ";
        Print(*e.children[2]);
        break;
      case CoreKind::kStep:
        if (opts_.verbose) {
          Var(e.var);
          out_ += '/';
        }
        out_ += StepToString(e.axis, e.test, interner_);
        break;
      case CoreKind::kDdo:
        out_ += "ddo(";
        Print(*e.children[0]);
        out_ += ')';
        break;
      case CoreKind::kFnCall: {
        out_ += CoreFnName(e.fn);
        out_ += '(';
        bool first = true;
        for (const CoreExprPtr& c : e.children) {
          if (!first) out_ += ", ";
          first = false;
          Print(*c);
        }
        out_ += ')';
        break;
      }
      case CoreKind::kTypeswitch:
        out_ += "typeswitch (";
        Print(*e.children[0]);
        out_ += ") case ";
        Var(e.case_var);
        out_ += " as numeric() return ";
        Print(*e.children[1]);
        out_ += " default ";
        Var(e.default_var);
        out_ += " return ";
        Print(*e.children[2]);
        break;
      case CoreKind::kCompare:
        MaybeParen(*e.children[0]);
        out_ += ' ';
        out_ += xdm::CompareOpName(e.cmp_op);
        out_ += ' ';
        MaybeParen(*e.children[1]);
        break;
      case CoreKind::kArith:
        MaybeParen(*e.children[0]);
        out_ += ' ';
        out_ += xdm::ArithOpName(e.arith_op);
        out_ += ' ';
        MaybeParen(*e.children[1]);
        break;
      case CoreKind::kAnd:
        MaybeParen(*e.children[0]);
        out_ += " and ";
        MaybeParen(*e.children[1]);
        break;
      case CoreKind::kOr:
        MaybeParen(*e.children[0]);
        out_ += " or ";
        MaybeParen(*e.children[1]);
        break;
    }
  }

  /// Parenthesizes binder expressions inside operators for readability.
  void MaybeParen(const CoreExpr& e) {
    bool paren = e.kind == CoreKind::kLet || e.kind == CoreKind::kFor ||
                 e.kind == CoreKind::kIf || e.kind == CoreKind::kTypeswitch ||
                 e.kind == CoreKind::kAnd || e.kind == CoreKind::kOr ||
                 e.kind == CoreKind::kCompare || e.kind == CoreKind::kArith;
    if (paren) out_ += '(';
    Print(e);
    if (paren) out_ += ')';
  }

  const VarTable& vars_;
  const StringInterner& interner_;
  const PrintOptions& opts_;
  std::string out_;
};

}  // namespace

std::string ToString(const CoreExpr& e, const VarTable& vars,
                     const StringInterner& interner,
                     const PrintOptions& opts) {
  Printer p(vars, interner, opts);
  return p.Render(e);
}

}  // namespace xqtp::core
