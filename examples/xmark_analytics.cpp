// XMark analytics: generates an auction-site document and runs a small
// analytic workload over it — the kind of data-intensive XML application
// the paper's introduction motivates. Prints results plus wall-clock time
// per algorithm.
//
//   $ ./build/examples/xmark_analytics [scale-factor]
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "engine/engine.h"
#include "workload/xmark_gen.h"

namespace {

struct Report {
  const char* label;
  const char* query;
};

constexpr Report kWorkload[] = {
    {"persons", "fn:count($input/site/people/person)"},
    {"reachable persons (have an email address)",
     "fn:count($input//person[emailaddress])"},
    {"interests of reachable persons",
     "fn:count($input/site/people/person[emailaddress]/profile/interest)"},
    {"bidders across open auctions",
     "fn:count($input/site/open_auctions/open_auction/bidder)"},
    {"auctions that already have bidders",
     "fn:count($input//open_auction[bidder])"},
    {"items with a mailbox that received mail",
     "fn:count($input//item[mailbox[mail]])"},
    {"first bidder increase of the first auction",
     "$input//open_auction[1]/bidder[1]/increase"},
    {"closed-auction prices named exactly 100",
     "fn:count($input//closed_auction[price = \"100\"])"},
};

}  // namespace

int main(int argc, char** argv) {
  double factor = argc > 1 ? std::atof(argv[1]) : 0.2;
  xqtp::engine::Engine engine;

  std::printf("generating XMark document (factor %.2f)...\n", factor);
  xqtp::workload::XmarkParams params;
  params.factor = factor;
  const xqtp::xml::Document* doc = engine.AddDocument(
      "auction", xqtp::workload::GenerateXmark(params, engine.interner()));
  std::printf("document: %zu nodes\n\n", doc->node_count());

  for (const Report& r : kWorkload) {
    std::printf("%s\n  %s\n", r.label, r.query);
    auto cq = engine.Compile(r.query);
    if (!cq.ok()) {
      std::printf("  compile error: %s\n", cq.status().ToString().c_str());
      continue;
    }
    xqtp::engine::Engine::GlobalMap globals{
        {"input", {xqtp::xdm::Item(doc->root())}}};
    for (auto algo : {xqtp::exec::PatternAlgo::kNLJoin,
                      xqtp::exec::PatternAlgo::kStaircase,
                      xqtp::exec::PatternAlgo::kTwig}) {
      auto start = std::chrono::steady_clock::now();
      auto res = engine.Execute(*cq, globals, algo);
      auto elapsed = std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start);
      if (!res.ok()) {
        std::printf("  %-8s error: %s\n", xqtp::exec::PatternAlgoName(algo),
                    res.status().ToString().c_str());
        continue;
      }
      std::string value =
          res->empty() ? "()" : (*res)[0].StringValue().substr(0, 40);
      std::printf("  %-8s %8.3f ms   -> %s%s\n",
                  xqtp::exec::PatternAlgoName(algo), elapsed.count(),
                  value.c_str(), res->size() > 1 ? " ..." : "");
    }
    std::printf("\n");
  }
  return 0;
}
