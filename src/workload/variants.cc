#include "workload/variants.h"

#include <utility>

namespace xqtp::workload {

namespace {

/// The Figure 4 path, as five segments (the third carries the predicate).
constexpr const char* kSteps[] = {"site", "people", "person", "profile",
                                  "interest"};
constexpr int kNumSegments = 5;
constexpr int kPersonSegment = 2;

/// Builds one variant. `splits` is a bitmask over gap positions: bit i set
/// means a new for-binding starts after segment i. `pred_as_where`
/// replaces the [emailaddress] predicate with a where clause right after
/// the binding that ends at person (requires bit kPersonSegment set).
std::string BuildVariant(unsigned splits, bool pred_as_where) {
  // Group the segments between split points.
  std::vector<std::pair<int, int>> groups;  // [first, last] segment
  int start = 0;
  for (int seg = 0; seg < kNumSegments; ++seg) {
    bool split_after = (splits & (1u << seg)) != 0 && seg + 1 < kNumSegments;
    if (split_after || seg + 1 == kNumSegments) {
      groups.emplace_back(start, seg);
      start = seg + 1;
    }
  }

  auto group_path = [&](const std::string& base, int first, int last) {
    std::string p = base;
    for (int seg = first; seg <= last; ++seg) {
      p += "/";
      p += kSteps[seg];
      if (seg == kPersonSegment && !pred_as_where) p += "[emailaddress]";
    }
    return p;
  };

  if (groups.size() == 1) return group_path("$input", 0, kNumSegments - 1);

  std::string out;
  std::string base = "$input";
  int var_no = 0;
  bool in_for_list = false;
  for (size_t g = 0; g + 1 < groups.size(); ++g) {
    ++var_no;
    std::string var = "$x" + std::to_string(var_no);
    out += in_for_list ? ", " : "for ";
    in_for_list = true;
    out += var + " in " + group_path(base, groups[g].first, groups[g].second);
    base = var;
    if (pred_as_where && groups[g].second == kPersonSegment) {
      // Close this FLWOR's clause list with the where; any remaining
      // bindings go into a nested FLWOR in the return.
      out += " where " + var + "/emailaddress return ";
      in_for_list = false;
    } else if (g + 2 == groups.size()) {
      out += " return ";
      in_for_list = false;
    }
  }
  if (in_for_list) out += " return ";
  out += group_path(base, groups.back().first, groups.back().second);
  return out;
}

}  // namespace

std::vector<std::string> GeneratePathVariants(int count) {
  std::vector<std::string> variants;
  // Plain path first, then all 15 split combinations, then where-clause
  // forms for the splits that isolate the person step.
  variants.push_back(BuildVariant(0, false));
  for (unsigned splits = 1;
       splits < 16 && static_cast<int>(variants.size()) < count; ++splits) {
    variants.push_back(BuildVariant(splits, false));
  }
  for (unsigned splits = 1;
       splits < 16 && static_cast<int>(variants.size()) < count; ++splits) {
    if ((splits & (1u << kPersonSegment)) == 0) continue;
    variants.push_back(BuildVariant(splits, true));
  }
  if (static_cast<int>(variants.size()) > count) {
    variants.resize(static_cast<size_t>(count));
  }
  return variants;
}

}  // namespace xqtp::workload
