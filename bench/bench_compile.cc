// Per-phase compile microbenchmark over the XMark query corpus: how long
// each stage of the Figure 2 pipeline — parse, normalize, TPNF' rewrite,
// algebra compile, optimize — takes per query, plus the whole pipeline
// ("full"). These are the costs the plan cache (engine/plan_cache.h)
// amortizes away on a warm hit; the per-phase rows make future compile
// regressions visible in BENCH_smoke.json (variant = phase name).
#include "bench_common.h"

#include "workload/xmark_queries.h"

namespace xqtp::bench {
namespace {

/// The corpus slice the smoke run times: structurally diverse queries,
/// from a one-step path to nested FLWOR. (The full corpus would multiply
/// smoke-bench wall time without adding phase-cost variety.)
constexpr const char* kCorpusIds[] = {"XQ1", "XQ2", "XQ6", "XQ15", "XQ19"};

std::vector<workload::XmarkQuery> CorpusSlice() {
  std::vector<workload::XmarkQuery> out;
  for (const workload::XmarkQuery& q : workload::XmarkQueryCorpus()) {
    for (const char* id : kCorpusIds) {
      if (q.id == id) out.push_back(q);
    }
  }
  return out;
}

/// Emits one JSON trajectory row for a compile-phase timing (no execution,
/// so algo is a placeholder and nodes_visited stays 0).
void RecordPhase(const std::string& id, const std::string& phase, double ns) {
  if (JsonPath().empty()) return;
  JsonRecord r;
  r.bench = BenchName();
  r.query = id;
  r.algo = "compile";
  r.threads = 1;
  r.variant = phase;
  r.ns = ns;
  for (JsonRecord& existing : JsonRecords()) {
    if (existing.query == r.query && existing.variant == r.variant) {
      existing = std::move(r);
      return;
    }
  }
  JsonRecords().push_back(std::move(r));
}

/// Runs `fn` once per iteration under manual wall-clock timing and records
/// the mean. `fn` must consume-and-discard its result via DoNotOptimize.
template <typename Fn>
void TimePhase(benchmark::State& state, const std::string& id,
               const std::string& phase, Fn&& fn) {
  double total_ns = 0;
  int64_t iters = 0;
  for (auto _ : state) {
    auto t0 = std::chrono::steady_clock::now();
    fn();
    auto t1 = std::chrono::steady_clock::now();
    total_ns += std::chrono::duration<double, std::nano>(t1 - t0).count();
    ++iters;
  }
  if (iters > 0) RecordPhase(id, phase, total_ns / static_cast<double>(iters));
}

// Each phase benchmark precomputes every earlier stage once, then times
// only its own stage (plus the input clone it must make, for the phases
// that consume their input — noted per phase). Verification is off: the
// bench measures the production pipeline, not the debug oracles.

void BenchParse(benchmark::State& state, const workload::XmarkQuery& q) {
  engine::Engine& e = SharedEngine();
  TimePhase(state, q.id, "parse", [&] {
    auto surface = xquery::ParseQuery(q.text, e.interner());
    if (!surface.ok()) state.SkipWithError("parse failed");
    benchmark::DoNotOptimize(surface);
  });
}

void BenchNormalize(benchmark::State& state, const workload::XmarkQuery& q) {
  engine::Engine& e = SharedEngine();
  auto surface = xquery::ParseQuery(q.text, e.interner());
  if (!surface.ok()) {
    state.SkipWithError(surface.status().ToString().c_str());
    return;
  }
  TimePhase(state, q.id, "normalize", [&] {
    core::VarTable vars;
    auto normalized = core::Normalize(**surface, &vars);
    if (!normalized.ok()) state.SkipWithError("normalize failed");
    benchmark::DoNotOptimize(normalized);
  });
}

void BenchRewrite(benchmark::State& state, const workload::XmarkQuery& q) {
  engine::Engine& e = SharedEngine();
  auto surface = xquery::ParseQuery(q.text, e.interner());
  if (!surface.ok()) {
    state.SkipWithError(surface.status().ToString().c_str());
    return;
  }
  core::VarTable vars;
  auto normalized = core::Normalize(**surface, &vars);
  if (!normalized.ok()) {
    state.SkipWithError(normalized.status().ToString().c_str());
    return;
  }
  core::RewriteOptions ropts;
  ropts.verify = false;
  // Includes one Clone of the normalized tree per iteration — the rewrite
  // consumes its input, exactly as in Engine::Compile.
  TimePhase(state, q.id, "rewrite", [&] {
    core::VarTable vars_copy = vars;
    auto rewritten =
        core::RewriteToTPNF(core::Clone(**normalized), &vars_copy, ropts);
    if (!rewritten.ok()) state.SkipWithError("rewrite failed");
    benchmark::DoNotOptimize(rewritten);
  });
}

void BenchAlgebraCompile(benchmark::State& state,
                         const workload::XmarkQuery& q) {
  engine::Engine& e = SharedEngine();
  auto surface = xquery::ParseQuery(q.text, e.interner());
  if (!surface.ok()) {
    state.SkipWithError(surface.status().ToString().c_str());
    return;
  }
  core::VarTable vars;
  auto normalized = core::Normalize(**surface, &vars);
  if (!normalized.ok()) {
    state.SkipWithError(normalized.status().ToString().c_str());
    return;
  }
  core::RewriteOptions ropts;
  ropts.verify = false;
  auto rewritten =
      core::RewriteToTPNF(core::Clone(**normalized), &vars, ropts);
  if (!rewritten.ok()) {
    state.SkipWithError(rewritten.status().ToString().c_str());
    return;
  }
  TimePhase(state, q.id, "compile", [&] {
    auto plan = algebra::Compile(**rewritten, vars, e.interner());
    if (!plan.ok()) state.SkipWithError("compile failed");
    benchmark::DoNotOptimize(plan);
  });
}

void BenchOptimize(benchmark::State& state, const workload::XmarkQuery& q) {
  engine::Engine& e = SharedEngine();
  auto surface = xquery::ParseQuery(q.text, e.interner());
  if (!surface.ok()) {
    state.SkipWithError(surface.status().ToString().c_str());
    return;
  }
  core::VarTable vars;
  auto normalized = core::Normalize(**surface, &vars);
  if (!normalized.ok()) {
    state.SkipWithError(normalized.status().ToString().c_str());
    return;
  }
  core::RewriteOptions ropts;
  ropts.verify = false;
  auto rewritten =
      core::RewriteToTPNF(core::Clone(**normalized), &vars, ropts);
  if (!rewritten.ok()) {
    state.SkipWithError(rewritten.status().ToString().c_str());
    return;
  }
  auto plan = algebra::Compile(**rewritten, vars, e.interner());
  if (!plan.ok()) {
    state.SkipWithError(plan.status().ToString().c_str());
    return;
  }
  algebra::OptimizeOptions oopts;
  oopts.verify = false;
  oopts.vars = &vars;
  // Includes one plan Clone per iteration — Optimize rewrites in place.
  TimePhase(state, q.id, "optimize", [&] {
    algebra::OpPtr work = algebra::Clone(**plan);
    auto st = algebra::Optimize(&work, e.interner(), oopts);
    if (!st.ok()) state.SkipWithError("optimize failed");
    benchmark::DoNotOptimize(work);
  });
}

void BenchFullPipeline(benchmark::State& state,
                       const workload::XmarkQuery& q) {
  engine::EngineOptions eopts;
  eopts.verify_plans = false;
  eopts.analysis.check_equivalence = false;
  engine::Engine e(eopts);
  TimePhase(state, q.id, "full", [&] {
    auto cq = e.Compile(q.text);
    if (!cq.ok()) state.SkipWithError("full compile failed");
    benchmark::DoNotOptimize(cq);
  });
}

void Register() {
  using PhaseFn = void (*)(benchmark::State&, const workload::XmarkQuery&);
  struct Phase {
    const char* name;
    PhaseFn fn;
  };
  constexpr Phase kPhases[] = {
      {"parse", &BenchParse},           {"normalize", &BenchNormalize},
      {"rewrite", &BenchRewrite},       {"compile", &BenchAlgebraCompile},
      {"optimize", &BenchOptimize},     {"full", &BenchFullPipeline},
  };
  static const std::vector<workload::XmarkQuery>* corpus =
      new std::vector<workload::XmarkQuery>(CorpusSlice());
  for (const workload::XmarkQuery& q : *corpus) {
    for (const Phase& phase : kPhases) {
      std::string name =
          std::string("Compile/") + q.id + "/" + phase.name;
      const workload::XmarkQuery* query = &q;
      PhaseFn fn = phase.fn;
      benchmark::RegisterBenchmark(
          name.c_str(),
          [query, fn](benchmark::State& state) { fn(state, *query); })
          ->Unit(benchmark::kMicrosecond);
    }
  }
}

}  // namespace
}  // namespace xqtp::bench

int main(int argc, char** argv) {
  xqtp::bench::Register();
  return xqtp::bench::BenchMain(argc, argv);
}
