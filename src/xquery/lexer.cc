#include "xquery/lexer.h"

#include <cctype>

namespace xqtp::xquery {

namespace {

bool IsNameStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsNameChar(char c) {
  return IsNameStart(c) || std::isdigit(static_cast<unsigned char>(c)) ||
         c == '-' || c == '.';
}

}  // namespace

Result<std::vector<Token>> Lex(std::string_view in) {
  std::vector<Token> out;
  size_t i = 0;
  int line = 1;
  auto err = [&](const std::string& msg) {
    return Status::InvalidArgument("XQuery lex error at line " +
                                   std::to_string(line) + ": " + msg);
  };
  auto push = [&](TokenKind k) {
    Token t;
    t.kind = k;
    t.line = line;
    out.push_back(std::move(t));
  };
  while (i < in.size()) {
    char c = in[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // XQuery comment: (: ... :), nestable.
    if (c == '(' && i + 1 < in.size() && in[i + 1] == ':') {
      int depth = 1;
      i += 2;
      while (i < in.size() && depth > 0) {
        if (in[i] == '\n') ++line;
        if (in[i] == '(' && i + 1 < in.size() && in[i + 1] == ':') {
          ++depth;
          i += 2;
        } else if (in[i] == ':' && i + 1 < in.size() && in[i + 1] == ')') {
          --depth;
          i += 2;
        } else {
          ++i;
        }
      }
      if (depth > 0) return err("unterminated comment");
      continue;
    }
    switch (c) {
      case '/':
        if (i + 1 < in.size() && in[i + 1] == '/') {
          push(TokenKind::kSlashSlash);
          i += 2;
        } else {
          push(TokenKind::kSlash);
          ++i;
        }
        continue;
      case '[':
        push(TokenKind::kLBracket);
        ++i;
        continue;
      case ']':
        push(TokenKind::kRBracket);
        ++i;
        continue;
      case '(':
        push(TokenKind::kLParen);
        ++i;
        continue;
      case ')':
        push(TokenKind::kRParen);
        ++i;
        continue;
      case ',':
        push(TokenKind::kComma);
        ++i;
        continue;
      case '@':
        push(TokenKind::kAt);
        ++i;
        continue;
      case '.':
        push(TokenKind::kDot);
        ++i;
        continue;
      case '*':
        push(TokenKind::kStar);
        ++i;
        continue;
      case '+':
        push(TokenKind::kPlus);
        ++i;
        continue;
      case '-':
        push(TokenKind::kMinus);
        ++i;
        continue;
      case '|':
        push(TokenKind::kBar);
        ++i;
        continue;
      case '=':
        push(TokenKind::kEq);
        ++i;
        continue;
      case '!':
        if (i + 1 < in.size() && in[i + 1] == '=') {
          push(TokenKind::kNe);
          i += 2;
          continue;
        }
        return err("unexpected '!'");
      case '<':
        if (i + 1 < in.size() && in[i + 1] == '=') {
          push(TokenKind::kLe);
          i += 2;
        } else {
          push(TokenKind::kLt);
          ++i;
        }
        continue;
      case '>':
        if (i + 1 < in.size() && in[i + 1] == '=') {
          push(TokenKind::kGe);
          i += 2;
        } else {
          push(TokenKind::kGt);
          ++i;
        }
        continue;
      case ':':
        if (i + 1 < in.size() && in[i + 1] == '=') {
          push(TokenKind::kColonEq);
          i += 2;
          continue;
        }
        if (i + 1 < in.size() && in[i + 1] == ':') {
          push(TokenKind::kAxisSep);
          i += 2;
          continue;
        }
        return err("unexpected ':'");
      case '$': {
        ++i;
        if (i >= in.size() || !IsNameStart(in[i])) {
          return err("expected variable name after '$'");
        }
        Token t;
        t.kind = TokenKind::kVariable;
        t.line = line;
        while (i < in.size() && IsNameChar(in[i])) t.text.push_back(in[i++]);
        out.push_back(std::move(t));
        continue;
      }
      case '"':
      case '\'': {
        char quote = c;
        ++i;
        Token t;
        t.kind = TokenKind::kString;
        t.line = line;
        while (i < in.size() && in[i] != quote) {
          if (in[i] == '\n') ++line;
          t.text.push_back(in[i++]);
        }
        if (i >= in.size()) return err("unterminated string literal");
        ++i;
        out.push_back(std::move(t));
        continue;
      }
      default:
        break;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      while (i < in.size() && std::isdigit(static_cast<unsigned char>(in[i])))
        ++i;
      bool is_decimal = false;
      if (i + 1 < in.size() && in[i] == '.' &&
          std::isdigit(static_cast<unsigned char>(in[i + 1]))) {
        is_decimal = true;
        ++i;
        while (i < in.size() &&
               std::isdigit(static_cast<unsigned char>(in[i])))
          ++i;
      }
      Token t;
      t.line = line;
      std::string num(in.substr(start, i - start));
      if (is_decimal) {
        t.kind = TokenKind::kDecimal;
        t.decimal = std::stod(num);
      } else {
        t.kind = TokenKind::kInteger;
        t.integer = std::stoll(num);
      }
      out.push_back(std::move(t));
      continue;
    }
    if (IsNameStart(c)) {
      Token t;
      t.kind = TokenKind::kName;
      t.line = line;
      while (i < in.size() && IsNameChar(in[i])) t.text.push_back(in[i++]);
      // Prefixed name: name ':' name (but not '::' which is an axis sep).
      if (i + 1 < in.size() && in[i] == ':' && in[i + 1] != ':' &&
          IsNameStart(in[i + 1])) {
        t.text.push_back(in[i++]);
        while (i < in.size() && IsNameChar(in[i])) t.text.push_back(in[i++]);
      }
      out.push_back(std::move(t));
      continue;
    }
    return err(std::string("unexpected character '") + c + "'");
  }
  Token eof;
  eof.kind = TokenKind::kEof;
  eof.line = line;
  out.push_back(eof);
  return out;
}

}  // namespace xqtp::xquery
