# Empty dependencies file for algorithm_picker.
# This may be replaced when dependencies are built.
