#include "exec/fn_lib.h"

#include <cmath>

#include "xdm/sequence_ops.h"
#include "xml/document.h"

namespace xqtp::exec {

using xdm::Item;
using xdm::Sequence;

Result<Sequence> ApplyCoreFn(core::CoreFn fn,
                             const std::vector<Sequence>& args) {
  switch (fn) {
    case core::CoreFn::kBoolean: {
      XQTP_ASSIGN_OR_RETURN(bool b, xdm::EffectiveBooleanValue(args[0]));
      return Sequence{Item(b)};
    }
    case core::CoreFn::kNot: {
      XQTP_ASSIGN_OR_RETURN(bool b, xdm::EffectiveBooleanValue(args[0]));
      return Sequence{Item(!b)};
    }
    case core::CoreFn::kCount:
      return Sequence{Item(xdm::Count(args[0]))};
    case core::CoreFn::kEmpty:
      return Sequence{Item(args[0].empty())};
    case core::CoreFn::kExists:
      return Sequence{Item(!args[0].empty())};
    case core::CoreFn::kRoot: {
      Sequence out;
      for (const Item& it : args[0]) {
        if (!it.IsNode()) {
          return Status::TypeError("fn:root applied to an atomic value");
        }
        const xml::Node* n = it.node();
        while (n->parent != nullptr) n = n->parent;
        out.push_back(Item(n));
      }
      return out;
    }
    case core::CoreFn::kData: {
      Sequence out;
      for (const Item& it : args[0]) out.push_back(Item(it.StringValue()));
      return out;
    }
    case core::CoreFn::kString: {
      XQTP_ASSIGN_OR_RETURN(std::string s, xdm::StringArg(args[0]));
      return Sequence{Item(std::move(s))};
    }
    case core::CoreFn::kNumber: {
      if (args[0].empty()) {
        return Sequence{Item(std::numeric_limits<double>::quiet_NaN())};
      }
      if (args[0].size() > 1) {
        return Status::TypeError("fn:number of a multi-item sequence");
      }
      return Sequence{Item(xdm::NumericValue(args[0][0]))};
    }
    case core::CoreFn::kStringLength: {
      XQTP_ASSIGN_OR_RETURN(std::string s, xdm::StringArg(args[0]));
      return Sequence{Item(static_cast<int64_t>(s.size()))};
    }
    case core::CoreFn::kConcat: {
      std::string out;
      for (const Sequence& a : args) {
        XQTP_ASSIGN_OR_RETURN(std::string part, xdm::StringArg(a));
        out += part;
      }
      return Sequence{Item(std::move(out))};
    }
    case core::CoreFn::kContains: {
      XQTP_ASSIGN_OR_RETURN(std::string hay, xdm::StringArg(args[0]));
      XQTP_ASSIGN_OR_RETURN(std::string needle, xdm::StringArg(args[1]));
      return Sequence{Item(hay.find(needle) != std::string::npos)};
    }
    case core::CoreFn::kStartsWith: {
      XQTP_ASSIGN_OR_RETURN(std::string s, xdm::StringArg(args[0]));
      XQTP_ASSIGN_OR_RETURN(std::string prefix, xdm::StringArg(args[1]));
      return Sequence{Item(s.rfind(prefix, 0) == 0)};
    }
    case core::CoreFn::kSum: {
      double total = 0;
      bool integral = true;
      int64_t itotal = 0;
      for (const Item& it : args[0]) {
        double v = xdm::NumericValue(it);
        if (std::isnan(v)) {
          return Status::TypeError("fn:sum over a non-numeric value");
        }
        total += v;
        if (it.IsInteger()) {
          itotal += it.integer();
        } else {
          integral = false;
        }
      }
      if (integral) return Sequence{Item(itotal)};
      return Sequence{Item(total)};
    }
  }
  return Status::Internal("unreachable core function");
}

}  // namespace xqtp::exec
