#include <gtest/gtest.h>

#include "xdm/sequence_ops.h"
#include "xml/parser.h"

namespace xqtp::xdm {
namespace {

class XdmTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto res = xml::Parse(
        "<a><b1><c/></b1><b2 id=\"7\">42</b2><b1><c/><c/></b1></a>",
        &interner_);
    ASSERT_TRUE(res.ok()) << res.status().ToString();
    doc_ = std::move(res).value();
  }

  const xml::Node* Root() const { return doc_->root()->first_child; }

  StringInterner interner_;
  std::unique_ptr<xml::Document> doc_;
};

TEST_F(XdmTest, DistinctDocOrderSortsAndDedupes) {
  const xml::Node* a = Root();
  const xml::Node* b1 = a->first_child;
  const xml::Node* b2 = b1->next_sibling;
  Sequence seq{Item(b2), Item(b1), Item(b2), Item(a)};
  auto res = DistinctDocOrder(std::move(seq));
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res->size(), 3u);
  EXPECT_EQ((*res)[0].node(), a);
  EXPECT_EQ((*res)[1].node(), b1);
  EXPECT_EQ((*res)[2].node(), b2);
  EXPECT_TRUE(IsDistinctDocOrdered(*res));
}

TEST_F(XdmTest, DistinctDocOrderAtomicSequences) {
  // Pure atomic sequences pass through unchanged (XQuery path semantics
  // for paths ending in an atomizing step)...
  Sequence atomics{Item(static_cast<int64_t>(2)), Item(static_cast<int64_t>(1))};
  auto res = DistinctDocOrder(std::move(atomics));
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res->size(), 2u);
  EXPECT_EQ((*res)[0].integer(), 2);
  // ...but mixing nodes and atomics is a type error.
  Sequence mixed{Item(static_cast<int64_t>(1)), Item(Root())};
  EXPECT_FALSE(DistinctDocOrder(std::move(mixed)).ok());
}

TEST_F(XdmTest, EffectiveBooleanValue) {
  EXPECT_FALSE(EffectiveBooleanValue({}).value());
  EXPECT_TRUE(EffectiveBooleanValue({Item(Root())}).value());
  EXPECT_FALSE(EffectiveBooleanValue({Item(false)}).value());
  EXPECT_TRUE(EffectiveBooleanValue({Item(static_cast<int64_t>(3))}).value());
  EXPECT_FALSE(EffectiveBooleanValue({Item(std::string())}).value());
  EXPECT_TRUE(EffectiveBooleanValue({Item(std::string("x"))}).value());
  // Multi-item atomic sequence: type error.
  EXPECT_FALSE(
      EffectiveBooleanValue({Item(true), Item(false)}).ok());
}

TEST_F(XdmTest, GeneralCompareExistential) {
  const xml::Node* a = Root();
  const xml::Node* b2 = a->first_child->next_sibling;
  // b2 string-value is "42": numeric coercion against a number.
  Sequence nodes{Item(b2)};
  Sequence num{Item(static_cast<int64_t>(42))};
  EXPECT_TRUE(GeneralCompare(CompareOp::kEq, nodes, num).value());
  EXPECT_FALSE(GeneralCompare(CompareOp::kNe, nodes, num).value());
  EXPECT_TRUE(GeneralCompare(CompareOp::kGe, nodes, num).value());
  // String comparison.
  Sequence s{Item(std::string("42"))};
  EXPECT_TRUE(GeneralCompare(CompareOp::kEq, nodes, s).value());
  // Existential semantics: any pair matching suffices.
  Sequence many{Item(std::string("1")), Item(std::string("42"))};
  EXPECT_TRUE(GeneralCompare(CompareOp::kEq, many, s).value());
  // Empty operand: always false.
  EXPECT_FALSE(GeneralCompare(CompareOp::kEq, {}, s).value());
}

TEST_F(XdmTest, AxisSteps) {
  const xml::Node* a = Root();
  Symbol b1 = interner_.Lookup("b1");
  Symbol c = interner_.Lookup("c");

  Sequence out;
  EvalAxisStep(a, Axis::kChild, NodeTest::Name(b1), &out);
  EXPECT_EQ(out.size(), 2u);

  out.clear();
  EvalAxisStep(a, Axis::kDescendant, NodeTest::Name(c), &out);
  EXPECT_EQ(out.size(), 3u);

  out.clear();
  EvalAxisStep(a, Axis::kDescendantOrSelf, NodeTest::AnyNode(), &out);
  // self + 6 descendant elements + 1 text node = 8
  EXPECT_EQ(out.size(), 8u);

  out.clear();
  const xml::Node* b2 = a->first_child->next_sibling;
  EvalAxisStep(b2, Axis::kAttribute, NodeTest::Name(interner_.Lookup("id")),
               &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].node()->text, "7");

  out.clear();
  EvalAxisStep(b2, Axis::kParent, NodeTest::AnyName(), &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].node(), a);

  out.clear();
  EvalAxisStep(b2, Axis::kSelf, NodeTest::Name(b1), &out);
  EXPECT_TRUE(out.empty());
}

TEST_F(XdmTest, AxisStepsReturnDocOrder) {
  const xml::Node* a = Root();
  Sequence out;
  EvalAxisStep(a, Axis::kDescendant, NodeTest::AnyName(), &out);
  EXPECT_TRUE(IsDistinctDocOrdered(out));
}

TEST_F(XdmTest, ItemStringValue) {
  EXPECT_EQ(Item(static_cast<int64_t>(5)).StringValue(), "5");
  EXPECT_EQ(Item(2.5).StringValue(), "2.5");
  EXPECT_EQ(Item(2.0).StringValue(), "2");
  EXPECT_EQ(Item(true).StringValue(), "true");
  EXPECT_EQ(Item(std::string("s")).StringValue(), "s");
}

}  // namespace
}  // namespace xqtp::xdm
