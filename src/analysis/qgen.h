// Grammar-based random query generation over the paper's path/FLWOR/
// predicate fragment, used to drive the translation-validation and
// cross-evaluator oracles (tools/equiv_fuzz). Queries are generated from
// the same grammar the parser accepts — paths with child/descendant/
// attribute steps, existence/positional/value predicates, FLWOR wrappers
// with where clauses and positional variables, and the Core function
// library — over the witness corpus's tag alphabet, so generated queries
// both compile and actually match witness documents.
//
// Generation is seeded and byte-deterministic across platforms (no
// std::uniform_int_distribution): artifact replay depends on
// QueryGen(seed).Next() returning the same text forever.
#ifndef XQTP_ANALYSIS_QGEN_H_
#define XQTP_ANALYSIS_QGEN_H_

#include <cstdint>
#include <string>

namespace xqtp::analysis {

struct QGenOptions {
  int max_steps = 4;        ///< main-path steps per path expression
  int max_pred_depth = 2;   ///< nesting depth of predicate paths
  bool flwor = true;        ///< wrap paths in for/let/where forms
  bool positional = true;   ///< emit [k], [position() = k], "at $p"
  bool value_preds = true;  ///< emit value comparisons and fn calls
};

/// Deterministic query stream for one seed.
class QueryGen {
 public:
  explicit QueryGen(uint64_t seed, const QGenOptions& opts = {});

  /// The next random query (always syntactically valid for the fragment).
  std::string Next();

 private:
  uint64_t NextRand();
  int Range(int lo, int hi);
  bool Chance(int percent);

  std::string Tag();
  std::string GenStep(int pred_depth);
  std::string GenPredicate(int pred_depth);
  std::string GenRelPath(int steps, int pred_depth);
  std::string GenPath();
  std::string GenQuery();

  QGenOptions opts_;
  uint64_t state_;
  int var_counter_ = 0;
};

}  // namespace xqtp::analysis

#endif  // XQTP_ANALYSIS_QGEN_H_
