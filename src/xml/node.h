// XDM node tree. Nodes are arena-allocated inside a Document and carry a
// pre/post/level document-order encoding, which is what the Staircase and
// Twig join algorithms operate on.
#ifndef XQTP_XML_NODE_H_
#define XQTP_XML_NODE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/interner.h"

namespace xqtp::xml {

class Document;

/// The node kinds in our XDM fragment.
enum class NodeKind : uint8_t {
  kDocument,
  kElement,
  kAttribute,
  kText,
};

/// One node in a document tree.
///
/// Structure pointers (parent / first_child / next_sibling / ...) support
/// cursor-style navigation, used by the nested-loop pattern evaluator.
/// The (pre, post, depth) region encoding supports the index-based
/// algorithms: `a` is an ancestor of `d` iff
/// `a.pre < d.pre && d.post < a.post`.
struct Node {
  NodeKind kind = NodeKind::kElement;
  /// Interned tag / attribute name; kInvalidSymbol for document and text.
  Symbol name = kInvalidSymbol;
  /// Preorder rank in the document; the document node has pre == 0.
  /// Attributes are numbered after their owner element, before its children.
  int32_t pre = 0;
  /// Postorder rank in the document.
  int32_t post = 0;
  /// Distance from the document node (which has depth 0).
  int32_t depth = 0;

  Node* parent = nullptr;
  Node* first_child = nullptr;
  Node* last_child = nullptr;
  Node* prev_sibling = nullptr;
  Node* next_sibling = nullptr;

  /// Attribute nodes of an element (not part of the child list).
  std::vector<Node*> attributes;

  /// Character content for text nodes; attribute value for attributes.
  std::string text;

  /// Owning document (set by DocumentBuilder).
  const Document* doc = nullptr;

  bool IsElement() const { return kind == NodeKind::kElement; }
  bool IsAttribute() const { return kind == NodeKind::kAttribute; }
  bool IsText() const { return kind == NodeKind::kText; }
  bool IsDocument() const { return kind == NodeKind::kDocument; }

  /// True iff `this` is a proper ancestor of `other` (same document).
  bool IsAncestorOf(const Node& other) const {
    return pre < other.pre && other.post < post;
  }

  /// Concatenation of all descendant text (the XPath string-value).
  std::string StringValue() const;
};

/// Total document order across documents: (document id, pre).
/// Returns true iff `a` strictly precedes `b`.
bool DocOrderLess(const Node* a, const Node* b);

}  // namespace xqtp::xml

#endif  // XQTP_XML_NODE_H_
