#include <gtest/gtest.h>

#include "algebra/compile.h"
#include "algebra/printer.h"
#include "analysis/plan_verifier.h"
#include "core/normalize.h"
#include "core/rewrite.h"
#include "xquery/parser.h"

namespace xqtp::algebra {
namespace {

class CompileTest : public ::testing::Test {
 protected:
  std::string Plan(const std::string& q) {
    auto surface = xquery::ParseQuery(q, &interner_);
    EXPECT_TRUE(surface.ok()) << surface.status().ToString();
    vars_ = core::VarTable();
    auto c = core::Normalize(**surface, &vars_);
    EXPECT_TRUE(c.ok()) << c.status().ToString();
    core::RewriteOptions ropts;
    ropts.verify = true;  // the Core verifier runs even in Release builds
    auto r = core::RewriteToTPNF(std::move(c).value(), &vars_, ropts);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    auto plan = Compile(**r, vars_, &interner_);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    plan_ = std::move(plan).value();
    analysis::PlanVerifyOptions vopts;
    vopts.vars = &vars_;
    vopts.interner = &interner_;
    Status verified = analysis::VerifyPlan(*plan_, vopts);
    EXPECT_TRUE(verified.ok()) << verified.ToString();
    return ToString(*plan_, vars_, interner_);
  }

  StringInterner interner_;
  core::VarTable vars_;
  OpPtr plan_;
};

TEST_F(CompileTest, Q1aCompilesToP1) {
  // The paper's plan P1, exactly.
  EXPECT_EQ(Plan("$d//person[emailaddress]/name"),
            "fs:ddo(MapToItem{TreeJoin[child::name](IN#dot)}"
            "(MapFromItem{[dot : IN]}"
            "(MapToItem{IN#dot}"
            "(Select{fn:boolean(TreeJoin[child::emailaddress](IN#dot))}"
            "(MapFromItem{[dot : IN]}"
            "(MapToItem{TreeJoin[descendant::person](IN#dot)}"
            "(MapFromItem{[dot : IN]}($d))))))))");
}

TEST_F(CompileTest, ComparisonSelectsCompileBare) {
  // Boolean-typed predicates are not wrapped in fn:boolean (the paper's
  // Q2 plan prints Select{TreeJoin[child::name](IN#dot)="John"}).
  std::string p = Plan("$d//person[name = \"John\"]");
  EXPECT_NE(p.find("Select{TreeJoin[child::name](IN#dot)=\"John\"}"),
            std::string::npos)
      << p;
}

TEST_F(CompileTest, PositionalLoopCompilesToForEach) {
  std::string p = Plan("$d//person[1]");
  EXPECT_NE(p.find("ForEach[$dot at $position]"), std::string::npos) << p;
}

TEST_F(CompileTest, LinearForUsesTupleOperators) {
  std::string p = Plan("for $x in $d/a return $x/b");
  EXPECT_NE(p.find("MapFromItem{[dot : IN]}"), std::string::npos) << p;
  EXPECT_EQ(p.find("ForEach"), std::string::npos) << p;
}

TEST_F(CompileTest, GlobalsCompileToLeaves) {
  std::string p = Plan("$d/a");
  EXPECT_NE(p.find("($d)"), std::string::npos) << p;
}

TEST_F(CompileTest, StatsCountOperators) {
  Plan("$d//person[emailaddress]/name");
  PlanStats stats = ComputeStats(*plan_);
  EXPECT_EQ(stats.tree_pattern_ops, 0);
  EXPECT_EQ(stats.tree_join_ops, 3);
  EXPECT_GE(stats.map_ops, 5);
  EXPECT_EQ(stats.ddo_ops, 1);
}

TEST_F(CompileTest, SequenceAndLiterals) {
  std::string p = Plan("(1, \"two\", 3.5)");
  EXPECT_NE(p.find("Sequence"), std::string::npos) << p;
  EXPECT_NE(p.find("\"two\""), std::string::npos) << p;
}

}  // namespace
}  // namespace xqtp::algebra
