// End-to-end: the paper's query corpus evaluated on generated workloads,
// with result equality asserted across the core interpreter, the
// unoptimized plan, and the optimized plan under all three pattern
// algorithms.
#include <gtest/gtest.h>

#include "engine/engine.h"
#include "workload/member_gen.h"
#include "workload/xmark_gen.h"

namespace xqtp {
namespace {

/// All evaluation routes agree on `q` over `doc`.
void ExpectAllRoutesAgree(engine::Engine* e, const xml::Document& doc,
                          const std::string& q) {
  auto cq = e->Compile(q);
  ASSERT_TRUE(cq.ok()) << q << ": " << cq.status().ToString();
  engine::Engine::GlobalMap globals;
  for (const std::string& g : cq->GlobalNames()) {
    globals[g] = {xdm::Item(doc.root())};
  }
  auto ref = e->Execute(*cq, globals, exec::PatternAlgo::kNLJoin,
                        engine::PlanChoice::kCoreInterp);
  ASSERT_TRUE(ref.ok()) << q << ": " << ref.status().ToString();
  for (auto pc :
       {engine::PlanChoice::kUnoptimized, engine::PlanChoice::kOptimized}) {
    for (auto algo : {exec::PatternAlgo::kNLJoin, exec::PatternAlgo::kStaircase,
                      exec::PatternAlgo::kTwig, exec::PatternAlgo::kStream,
                      exec::PatternAlgo::kTwigStack,
                      exec::PatternAlgo::kShredded}) {
      auto res = e->Execute(*cq, globals, algo, pc);
      ASSERT_TRUE(res.ok()) << q << ": " << res.status().ToString();
      ASSERT_EQ(res->size(), ref->size())
          << q << " [" << exec::PatternAlgoName(algo) << "]";
      for (size_t i = 0; i < res->size(); ++i) {
        EXPECT_TRUE((*res)[i] == (*ref)[i])
            << q << " item " << i << " [" << exec::PatternAlgoName(algo)
            << "]";
      }
    }
  }
}

TEST(EndToEnd, PaperFigure1QueriesOnXmark) {
  engine::Engine e;
  workload::XmarkParams p;
  p.factor = 0.02;
  const xml::Document* d =
      e.AddDocument("x", workload::GenerateXmark(p, e.interner()));
  const char* queries[] = {
      // Q1a / Q1b / Q1c
      "$d//person[emailaddress]/name",
      "(for $x in $d//person[emailaddress] return $x)/name",
      "let $x := for $y in $d//person where $y/emailaddress return $y "
      "return $x/name",
      // Q2, Q3, Q4
      "$d//person[name = \"Person Name 3\"]/emailaddress",
      "$d//person[1]/name",
      "$d//person[name = \"Person Name 3\"]/emailaddress[1]",
      // Q5
      "for $x in $d//person[emailaddress] return $x/name",
      // Figure 4 path
      "$d/site/people/person[emailaddress]/profile/interest",
  };
  for (const char* q : queries) ExpectAllRoutesAgree(&e, *d, q);
}

TEST(EndToEnd, QEQueriesOnMember) {
  engine::Engine e;
  workload::MemberParams p;
  p.node_count = 20000;
  p.max_depth = 4;
  p.num_tags = 100;
  const xml::Document* d =
      e.AddDocument("m", workload::GenerateMember(p, e.interner()));
  const char* queries[] = {
      "$input/desc::t01[child::t02[child::t03[child::t04]]]",
      "$input/desc::t01/child::t02[1]/child::t03[child::t04]",
      "$input/desc::t01[child::t02[child::t03]/child::t04[child::t03]]",
      "$input/desc::t01[desc::t02[desc::t03[desc::t04]]]",
      "$input/desc::t01/desc::t02[1]/desc::t03[desc::t04]",
      "$input/desc::t01[desc::t02[desc::t03]/desc::t04[desc::t03]]",
  };
  for (const char* q : queries) ExpectAllRoutesAgree(&e, *d, q);
}

TEST(EndToEnd, SelectivePositionalChainOnDeepDocument) {
  engine::Engine e;
  workload::MemberParams p;
  p.node_count = 5000;
  p.max_depth = 15;
  p.num_tags = 1;
  const xml::Document* d =
      e.AddDocument("deep", workload::GenerateMember(p, e.interner()));
  std::string q = "$input";
  for (int k = 0; k < 10; ++k) q += "/t1[1]";
  ExpectAllRoutesAgree(&e, *d, q);
}

TEST(EndToEnd, NestedElementsOrderSemantics) {
  // Same-name nesting: the case separating Q1a from Q5.
  engine::Engine e;
  auto doc = e.LoadDocument(
      "d",
      "<doc><person><emailaddress/>"
      "<person><emailaddress/><name>inner</name></person>"
      "<name>outer</name></person></doc>");
  ASSERT_TRUE(doc.ok());
  ExpectAllRoutesAgree(&e, *doc.value(), "$d//person[emailaddress]/name");
  ExpectAllRoutesAgree(&e, *doc.value(),
                       "for $x in $d//person[emailaddress] return $x/name");
  // And the two must differ from each other in order.
  auto q1a = e.Run("$d//person[emailaddress]/name", *doc.value());
  auto q5 = e.Run("for $x in $d//person[emailaddress] return $x/name",
                  *doc.value());
  ASSERT_TRUE(q1a.ok() && q5.ok());
  ASSERT_EQ(q1a->size(), 2u);
  ASSERT_EQ(q5->size(), 2u);
  EXPECT_EQ((*q1a)[0].StringValue(), "inner");
  EXPECT_EQ((*q5)[0].StringValue(), "outer");
}

TEST(EndToEnd, DescendantVersionsOfXmarkPaths) {
  // Figure 6: child paths vs descendant paths must return the same nodes
  // on XMark-shaped data.
  engine::Engine e;
  workload::XmarkParams p;
  p.factor = 0.02;
  const xml::Document* d =
      e.AddDocument("x", workload::GenerateXmark(p, e.interner()));
  std::pair<const char*, const char*> pairs[] = {
      {"$input/site/people/person/name", "$input//person//name"},
      {"$input/site/open_auctions/open_auction/bidder/increase",
       "$input//open_auction//increase"},
      {"$input/site/closed_auctions/closed_auction/price",
       "$input//closed_auction//price"},
      {"$input/site/regions/*/item/location", "$input//item//location"},
  };
  for (const auto& [child_q, desc_q] : pairs) {
    ExpectAllRoutesAgree(&e, *d, child_q);
    ExpectAllRoutesAgree(&e, *d, desc_q);
    auto a = e.Run(child_q, *d);
    auto b = e.Run(desc_q, *d);
    ASSERT_TRUE(a.ok() && b.ok());
    ASSERT_FALSE(a->empty());
    ASSERT_EQ(a->size(), b->size()) << child_q;
    for (size_t i = 0; i < a->size(); ++i) {
      EXPECT_TRUE((*a)[i] == (*b)[i]) << child_q << " item " << i;
    }
  }
}

}  // namespace
}  // namespace xqtp
