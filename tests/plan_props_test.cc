// Plan-level property inference (analysis/plan_props.h) and its three
// consumers: the property-justified optimizer rules, the evaluator's
// runtime claim checks, and the PlanLint diagnostics. Mirrors
// plan_verifier_test.cc: every check must fire on a deliberately seeded
// bug and stay silent on the legal variant it was derived from.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "algebra/compile.h"
#include "algebra/ops.h"
#include "algebra/optimize.h"
#include "analysis/plan_lint.h"
#include "analysis/plan_props.h"
#include "engine/engine.h"
#include "exec/evaluator.h"
#include "pattern/tree_pattern.h"
#include "xml/parser.h"

namespace xqtp {
namespace {

using algebra::MakeOp;
using algebra::Op;
using algebra::OpKind;
using algebra::OpPtr;
using analysis::CardRange;
using analysis::ItemProps;
using analysis::kCardTop;
using pattern::TreePattern;
using xdm::Item;
using xdm::Sequence;

// ---- the cardinality lattice ----------------------------------------------

TEST(CardRangeTest, SaturatingArithmetic) {
  CardRange a{2, 3};
  CardRange b{1, 4};
  EXPECT_EQ(a.Plus(b), (CardRange{3, 7}));
  EXPECT_EQ(a.Times(b), (CardRange{2, 12}));
  EXPECT_EQ(a.Union(b), (CardRange{1, 4}));
  EXPECT_EQ(a.Plus(CardRange::Top()).hi, kCardTop);
  EXPECT_EQ(a.Times(CardRange::Top()).hi, kCardTop);
  // Multiplying by a proven-empty range collapses to empty.
  EXPECT_EQ(CardRange::Top().Times(CardRange::Exactly(0)),
            CardRange::Exactly(0));
  EXPECT_TRUE(CardRange::Top().IsTop());
  EXPECT_TRUE(CardRange::Exactly(0).Empty());
  EXPECT_TRUE((CardRange{1, 5}).Contains(3));
  EXPECT_FALSE((CardRange{1, 5}).Contains(0));
}

TEST(CardRangeTest, ProvenDdoRedundant) {
  ItemProps nodes = ItemProps::SingletonNode();
  EXPECT_TRUE(analysis::ProvenDdoRedundant(nodes));
  // Ordered+dup-free but possibly mixed: Ddo may still type-error, so it
  // is not redundant unless at most one item survives.
  ItemProps mixed = ItemProps::SingletonNode();
  mixed.nodes_only = false;
  mixed.card = CardRange{0, 5};
  EXPECT_FALSE(analysis::ProvenDdoRedundant(mixed));
  mixed.card = CardRange{0, 1};
  EXPECT_TRUE(analysis::ProvenDdoRedundant(mixed));
  ItemProps unordered = ItemProps::SingletonNode();
  unordered.ordered = false;
  unordered.card = CardRange{0, 5};
  EXPECT_FALSE(analysis::ProvenDdoRedundant(unordered));
}

// ---- plan builders (the optimizer's canonical shapes) ----------------------

class PlanPropsTest : public ::testing::Test {
 protected:
  PlanPropsTest() {
    d_ = vars_.Global("d");
    dot_ = interner_.Intern("dot");
    out_ = interner_.Intern("out");
    out2_ = interner_.Intern("out2");
    a_ = interner_.Intern("a");
    b_ = interner_.Intern("b");
  }

  OpPtr Global() {
    OpPtr op = MakeOp(OpKind::kGlobalVar);
    op->var = d_;
    return op;
  }

  OpPtr FromItem(Symbol field, OpPtr input) {
    OpPtr op = MakeOp(OpKind::kMapFromItem);
    op->field = field;
    op->inputs.push_back(std::move(input));
    op->dep = MakeOp(OpKind::kInputItem);
    return op;
  }

  OpPtr ToItem(OpPtr input, OpPtr dep) {
    OpPtr op = MakeOp(OpKind::kMapToItem);
    op->inputs.push_back(std::move(input));
    op->dep = std::move(dep);
    return op;
  }

  OpPtr FieldAcc(Symbol field) {
    OpPtr op = MakeOp(OpKind::kFieldAccess);
    op->field = field;
    return op;
  }

  OpPtr Ttp(TreePattern tp, OpPtr input) {
    OpPtr op = MakeOp(OpKind::kTupleTreePattern);
    op->tp = std::move(tp);
    op->inputs.push_back(std::move(input));
    return op;
  }

  OpPtr Ddo(OpPtr input) {
    OpPtr op = MakeOp(OpKind::kDdo);
    op->inputs.push_back(std::move(input));
    return op;
  }

  /// MapToItem{IN#out}(TTP[IN#dot/child::a{out}](MapFromItem{[dot:IN]}($d)))
  OpPtr LegalPlan() {
    TreePattern tp = pattern::MakeSingleStep(dot_, Axis::kChild,
                                             NodeTest::Name(a_), out_);
    return ToItem(Ttp(std::move(tp), FromItem(dot_, Global())),
                  FieldAcc(out_));
  }

  core::VarTable vars_;
  StringInterner interner_;
  core::VarId d_;
  Symbol dot_, out_, out2_, a_, b_;
};

TEST_F(PlanPropsTest, GlobalIsAtMostOneNode) {
  OpPtr plan = Global();
  analysis::PlanProps props = analysis::InferPlanProps(*plan);
  const ItemProps* p = props.Item(plan.get());
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(p->ordered);
  EXPECT_TRUE(p->dup_free);
  EXPECT_TRUE(p->nodes_only);
  // The public Execute accepts empty bindings, so the lower bound is 0.
  EXPECT_EQ(p->card, (CardRange{0, 1}));
}

TEST_F(PlanPropsTest, SingleOutputPatternStreamIsOrdered) {
  OpPtr plan = LegalPlan();
  analysis::PlanProps props = analysis::InferPlanProps(*plan);
  const analysis::TupleProps* t = props.Tuple(plan->inputs[0].get());
  ASSERT_NE(t, nullptr);
  const analysis::FieldProps* f = t->Field(out_);
  ASSERT_NE(f, nullptr);
  // One node per row, and — because the context is at most one node — the
  // concatenation across rows is in document order without duplicates.
  EXPECT_EQ(f->value.card, CardRange::Exactly(1));
  EXPECT_TRUE(f->seq_ordered);
  EXPECT_TRUE(f->seq_dup_free);
  // So the whole extraction is proven ordered and duplicate-free.
  const ItemProps* top = props.Item(plan.get());
  ASSERT_NE(top, nullptr);
  EXPECT_TRUE(analysis::ProvenDdoRedundant(*top));
}

TEST_F(PlanPropsTest, ChildChainYieldsFunctionalDependency) {
  // IN#dot/child::a{out}/child::b{out2}: out is the parent of out2 at a
  // fixed child distance, so out is functionally dependent on out2.
  TreePattern tp = pattern::MakeSingleStep(dot_, Axis::kChild,
                                           NodeTest::Name(a_), out_);
  auto second = std::make_unique<pattern::PatternNode>();
  second->axis = Axis::kChild;
  second->test = NodeTest::Name(b_);
  second->output = out2_;
  tp.root->next = std::move(second);
  OpPtr plan = Ttp(std::move(tp), FromItem(dot_, Global()));
  analysis::PlanProps props = analysis::InferPlanProps(*plan);
  const analysis::TupleProps* t = props.Tuple(plan.get());
  ASSERT_NE(t, nullptr);
  bool found = false;
  for (const auto& fd : t->fds) {
    if (fd.first == out_ && fd.second == out2_) found = true;
  }
  EXPECT_TRUE(found) << "expected FD (out <- out2)";
}

TEST_F(PlanPropsTest, DescendantGapBlocksFunctionalDependency) {
  // IN#dot/descendant::a{out}/descendant::b{out2}: a result node for out2
  // does not determine which `a` ancestor produced it.
  TreePattern tp = pattern::MakeSingleStep(dot_, Axis::kDescendant,
                                           NodeTest::Name(a_), out_);
  auto second = std::make_unique<pattern::PatternNode>();
  second->axis = Axis::kDescendant;
  second->test = NodeTest::Name(b_);
  second->output = out2_;
  tp.root->next = std::move(second);
  OpPtr plan = Ttp(std::move(tp), FromItem(dot_, Global()));
  analysis::PlanProps props = analysis::InferPlanProps(*plan);
  const analysis::TupleProps* t = props.Tuple(plan.get());
  ASSERT_NE(t, nullptr);
  for (const auto& fd : t->fds) {
    EXPECT_FALSE(fd.first == out_ && fd.second == out2_)
        << "descendant gap must not produce an FD";
  }
}

TEST_F(PlanPropsTest, StampedClaimsSurviveOnlyWhenCheckable) {
  OpPtr plan = LegalPlan();
  analysis::AnnotatePlanProps(plan.get());
  // The extraction's output is all nodes: order claims are stamped.
  EXPECT_TRUE(plan->props.ordered);
  EXPECT_TRUE(plan->props.dup_free);
  analysis::ClearPlanProps(plan.get());
  EXPECT_FALSE(plan->props.Any());
}

// ---- runtime claim checks: every seeded lie must be caught -----------------

class RuntimeClaimsTest : public PlanPropsTest {
 protected:
  void SetUp() override {
    auto doc = xml::Parse("<r><a/><a/><b/></r>", &interner_);
    ASSERT_TRUE(doc.ok());
    doc_ = std::move(doc).value();
    const xml::Node* r = doc_->root()->first_child;
    first_a_ = r->first_child;
    second_a_ = first_a_->next_sibling;
    b_node_ = second_a_->next_sibling;
  }

  /// Evaluates $d (with the given binding) under a stamped claim.
  Status RunWithClaim(const algebra::PropsClaims& claim,
                      const Sequence& binding) {
    OpPtr plan = Global();
    plan->props = claim;
    exec::Bindings bindings;
    bindings[d_] = binding;
    exec::EvalOptions opts;
    opts.check_inferred_props = true;
    return exec::Evaluate(*plan, vars_, bindings, opts).status();
  }

  static algebra::PropsClaims Claim(bool ordered, bool dup_free, int64_t lo,
                                    int64_t hi) {
    algebra::PropsClaims c;
    c.ordered = ordered;
    c.dup_free = dup_free;
    c.card_lo = lo;
    c.card_hi = hi;
    return c;
  }

  std::unique_ptr<xml::Document> doc_;
  const xml::Node* first_a_ = nullptr;
  const xml::Node* second_a_ = nullptr;
  const xml::Node* b_node_ = nullptr;
};

void ExpectClaimViolation(const Status& st, const char* tag) {
  ASSERT_FALSE(st.ok()) << "expected a [" << tag << "] violation";
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  EXPECT_NE(st.message().find("[plan props]"), std::string::npos)
      << st.message();
  EXPECT_NE(st.message().find(std::string("[") + tag + "]"),
            std::string::npos)
      << st.message();
}

TEST_F(RuntimeClaimsTest, TrueClaimsPass) {
  EXPECT_TRUE(RunWithClaim(Claim(true, true, 0, 3),
                           {Item(first_a_), Item(second_a_), Item(b_node_)})
                  .ok());
  EXPECT_TRUE(RunWithClaim(Claim(true, true, 0, -1), {}).ok());
}

TEST_F(RuntimeClaimsTest, SeededOutOfOrderIsCaught) {
  EXPECT_TRUE(
      RunWithClaim(Claim(false, false, 0, -1),
                   {Item(b_node_), Item(first_a_)})
          .ok());  // without the claim, nothing to violate
  ExpectClaimViolation(RunWithClaim(Claim(true, false, 0, -1),
                                    {Item(b_node_), Item(first_a_)}),
                       "claim-ordered");
}

TEST_F(RuntimeClaimsTest, SeededAdjacentDuplicateIsCaught) {
  ExpectClaimViolation(RunWithClaim(Claim(true, true, 0, -1),
                                    {Item(first_a_), Item(first_a_)}),
                       "claim-dupfree");
}

TEST_F(RuntimeClaimsTest, SeededNonAdjacentDuplicateIsCaught) {
  // dup_free without ordered takes the set-based path.
  ExpectClaimViolation(
      RunWithClaim(Claim(false, true, 0, -1),
                   {Item(first_a_), Item(b_node_), Item(first_a_)}),
      "claim-dupfree");
}

TEST_F(RuntimeClaimsTest, SeededCardUpperBoundIsCaught) {
  ExpectClaimViolation(RunWithClaim(Claim(false, false, 0, 1),
                                    {Item(first_a_), Item(second_a_)}),
                       "claim-card");
}

TEST_F(RuntimeClaimsTest, SeededCardLowerBoundIsCaught) {
  ExpectClaimViolation(RunWithClaim(Claim(false, false, 1, -1), {}),
                       "claim-card");
}

TEST_F(RuntimeClaimsTest, SeededAtomicUnderOrderClaimIsCaught) {
  ExpectClaimViolation(
      RunWithClaim(Claim(true, false, 0, -1),
                   {Item(int64_t{1}), Item(int64_t{2})}),
      "claim-nodes");
}

TEST_F(RuntimeClaimsTest, ChecksCanBeDisabled) {
  algebra::PropsClaims lie = Claim(false, false, 5, 5);
  OpPtr plan = Global();
  plan->props = lie;
  exec::Bindings bindings;
  bindings[d_] = Sequence{Item(first_a_)};
  exec::EvalOptions opts;
  opts.check_inferred_props = false;
  EXPECT_TRUE(exec::Evaluate(*plan, vars_, bindings, opts).ok());
}

// ---- PlanLint: every seeded pathology must be reported ---------------------

class PlanLintTest : public PlanPropsTest {
 protected:
  std::vector<std::string> Rules(const Op& plan) {
    analysis::PlanLintOptions opts;
    opts.interner = &interner_;
    std::vector<std::string> rules;
    for (const analysis::LintFinding& f : analysis::LintPlan(plan, opts)) {
      rules.push_back(f.rule);
    }
    return rules;
  }

  static bool Has(const std::vector<std::string>& rules, const char* rule) {
    for (const std::string& r : rules) {
      if (r == rule) return true;
    }
    return false;
  }
};

TEST_F(PlanLintTest, CleanPlanHasNoDefectFindings) {
  OpPtr plan = LegalPlan();
  std::vector<std::string> rules = Rules(*plan);
  EXPECT_FALSE(Has(rules, "redundant-ddo"));
  EXPECT_FALSE(Has(rules, "dead-field"));
  EXPECT_FALSE(Has(rules, "const-select"));
  EXPECT_FALSE(Has(rules, "card-zero"));
}

TEST_F(PlanLintTest, SeededRedundantDdoIsReported) {
  // fs:ddo over a proven at-most-one-node sequence.
  OpPtr plan = Ddo(Global());
  EXPECT_TRUE(Has(Rules(*plan), "redundant-ddo"));
}

TEST_F(PlanLintTest, SeededDeadMapFromItemFieldIsReported) {
  // The extraction ignores the tuples entirely: field dot is dead.
  OpPtr constant = MakeOp(OpKind::kConst);
  constant->literal = Item(int64_t{7});
  OpPtr plan = ToItem(FromItem(dot_, Global()), std::move(constant));
  EXPECT_TRUE(Has(Rules(*plan), "dead-field"));
}

TEST_F(PlanLintTest, SeededDeadPatternAnnotationIsReported) {
  // The pattern binds `out` but the extraction reads a constant.
  TreePattern tp = pattern::MakeSingleStep(dot_, Axis::kChild,
                                           NodeTest::Name(a_), out_);
  OpPtr constant = MakeOp(OpKind::kConst);
  constant->literal = Item(int64_t{7});
  OpPtr plan = ToItem(Ttp(std::move(tp), FromItem(dot_, Global())),
                      std::move(constant));
  EXPECT_TRUE(Has(Rules(*plan), "dead-field"));
}

TEST_F(PlanLintTest, SeededConstSelectIsReported) {
  OpPtr pred = MakeOp(OpKind::kConst);
  pred->literal = Item(true);
  OpPtr select = MakeOp(OpKind::kSelect);
  select->dep = std::move(pred);
  select->inputs.push_back(FromItem(dot_, Global()));
  OpPtr plan = ToItem(std::move(select), FieldAcc(dot_));
  EXPECT_TRUE(Has(Rules(*plan), "const-select"));
}

TEST_F(PlanLintTest, SeededProvenEmptyOutputIsReported) {
  // IN#out is never produced: MapFromItem's tuples carry only dot, and
  // the field list is complete, so the access is proven empty.
  OpPtr plan = ToItem(FromItem(dot_, Global()), FieldAcc(out_));
  EXPECT_TRUE(Has(Rules(*plan), "card-zero"));
}

TEST_F(PlanLintTest, ParallelMergeFindingOnOrderedPatternStream) {
  OpPtr plan = LegalPlan();
  EXPECT_TRUE(Has(Rules(*plan), "parallel-merge"));
}

// ---- property-justified optimizer rules ------------------------------------

class PropertyRulesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto doc = engine_.LoadDocument(
        "d",
        "<site><regions><namerica><item id=\"i1\"><location>US</location>"
        "</item><item id=\"i2\"><location>DE</location></item></namerica>"
        "</regions><people><person><name>n1</name></person></people>"
        "</site>");
    ASSERT_TRUE(doc.ok());
    doc_ = doc.value();
  }

  engine::Engine engine_;
  const xml::Document* doc_ = nullptr;
};

TEST_F(PropertyRulesTest, ProvenRedundantDdoIsEliminated) {
  // Without the TPNF' Core rewrites, compiled plans keep Ddo operators
  // the structural rule (f) cannot remove; the property pass proves them
  // redundant. Both plans must agree bit-for-bit, sequentially and
  // morsel-parallel (the compile-time translation-validation oracle has
  // already cross-checked every firing in debug builds).
  for (const char* query :
       {"$input//location", "$input//item/location", "$input//person[name]"}) {
    engine::CompileOptions base;
    base.rewrite = false;
    base.infer_properties = false;
    auto plain = engine_.Compile(query, base);
    ASSERT_TRUE(plain.ok()) << plain.status().ToString();

    engine::CompileOptions inferred = base;
    inferred.infer_properties = true;
    auto opt = engine_.Compile(query, inferred);
    ASSERT_TRUE(opt.ok()) << opt.status().ToString();

    EXPECT_LT(opt->Stats().ddo_ops, plain->Stats().ddo_ops) << query;

    engine::Engine::GlobalMap globals{
        {"input", {xdm::Item(doc_->root())}}};
    for (int threads : {1, 2}) {
      exec::EvalOptions eopts;
      eopts.threads = threads;
      eopts.parallel_min_fanout = 1;
      auto want = engine_.Execute(*plain, globals, eopts);
      auto got = engine_.Execute(*opt, globals, eopts);
      ASSERT_TRUE(want.ok()) << query << ": " << want.status().ToString();
      ASSERT_TRUE(got.ok()) << query << ": " << got.status().ToString();
      EXPECT_EQ(*want, *got) << query << " at threads=" << threads;
    }
  }
}

TEST_F(PropertyRulesTest, InferencePreservesDefaultPipeline) {
  // With the full rewrite pipeline, rule (f) already removes the Ddo; the
  // property pass must change nothing and results must stay identical.
  engine::CompileOptions off;
  off.infer_properties = false;
  auto plain = engine_.Compile("$input//item[location]", off);
  auto opt = engine_.Compile("$input//item[location]");
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(opt.ok());
  EXPECT_EQ(plain->Stats().ddo_ops, opt->Stats().ddo_ops);
  engine::Engine::GlobalMap globals{{"input", {xdm::Item(doc_->root())}}};
  auto want = engine_.Execute(*plain, globals);
  auto got = engine_.Execute(*opt, globals);
  ASSERT_TRUE(want.ok());
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*want, *got);
}

TEST_F(PropertyRulesTest, DeadAnnotationIsPrunedUnderFd) {
  // IN#dot/child::regions{out}/child::namerica{out2} with only out2 read:
  // the child-like chain over a singleton context gives out <- out2, so
  // the unread intermediate annotation is pruned (rule p2).
  core::VarTable vars;
  core::VarId d = vars.Global("d");
  StringInterner interner;
  Symbol dot = interner.Intern("dot");
  Symbol out = interner.Intern("out");
  Symbol out2 = interner.Intern("out2");
  TreePattern tp = pattern::MakeSingleStep(
      dot, Axis::kChild, NodeTest::Name(interner.Intern("regions")), out);
  auto second = std::make_unique<pattern::PatternNode>();
  second->axis = Axis::kChild;
  second->test = NodeTest::Name(interner.Intern("namerica"));
  second->output = out2;
  tp.root->next = std::move(second);

  OpPtr global = MakeOp(OpKind::kGlobalVar);
  global->var = d;
  OpPtr from = MakeOp(OpKind::kMapFromItem);
  from->field = dot;
  from->dep = MakeOp(OpKind::kInputItem);
  from->inputs.push_back(std::move(global));
  OpPtr ttp = MakeOp(OpKind::kTupleTreePattern);
  ttp->tp = std::move(tp);
  ttp->inputs.push_back(std::move(from));
  OpPtr plan = MakeOp(OpKind::kMapToItem);
  OpPtr acc = MakeOp(OpKind::kFieldAccess);
  acc->field = out2;
  plan->dep = std::move(acc);
  plan->inputs.push_back(std::move(ttp));

  algebra::OptimizeOptions oopts;
  oopts.multi_output_patterns = true;
  oopts.vars = &vars;
  ASSERT_TRUE(algebra::Optimize(&plan, &interner, oopts).ok());
  // Find the surviving pattern: exactly one output should remain.
  const Op* ttp_op = plan.get();
  while (ttp_op != nullptr && ttp_op->kind != OpKind::kTupleTreePattern) {
    ttp_op = ttp_op->inputs.empty() ? nullptr : ttp_op->inputs[0].get();
  }
  ASSERT_NE(ttp_op, nullptr);
  EXPECT_EQ(ttp_op->tp.OutputFields().size(), 1u);
}

}  // namespace
}  // namespace xqtp
