// Work-counter tests: the counters make the paper's Section 5 cost
// arguments observable and assertable.
#include <gtest/gtest.h>

#include "engine/engine.h"
#include "exec/exec_stats.h"
#include "workload/member_gen.h"

namespace xqtp::exec {
namespace {

class ExecStatsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workload::MemberParams deep;
    deep.node_count = 20000;
    deep.max_depth = 15;
    deep.num_tags = 1;
    deep_ = engine_.AddDocument(
        "deep", workload::GenerateMember(deep, engine_.interner()));
  }

  ExecStats Measure(const std::string& q, PatternAlgo algo) {
    auto cq = engine_.Compile(q);
    EXPECT_TRUE(cq.ok()) << q;
    engine::Engine::GlobalMap globals{{"input", {xdm::Item(deep_->root())}}};
    ScopedExecStats scope;
    auto res = engine_.Execute(*cq, globals, algo);
    EXPECT_TRUE(res.ok()) << q;
    return scope.stats();
  }

  engine::Engine engine_;
  const xml::Document* deep_;
};

TEST_F(ExecStatsTest, CollectionIsOffByDefault) {
  EXPECT_EQ(CurrentExecStats(), nullptr);
  {
    ScopedExecStats scope;
    EXPECT_NE(CurrentExecStats(), nullptr);
    CountNodesVisited(5);
    EXPECT_EQ(scope.stats().nodes_visited, 5);
  }
  EXPECT_EQ(CurrentExecStats(), nullptr);
  CountNodesVisited(10);  // no-op, no crash
}

TEST_F(ExecStatsTest, ScopesNestWithoutLeaking) {
  ScopedExecStats outer;
  CountIndexEntries(3);
  {
    ScopedExecStats inner;
    CountIndexEntries(7);
    EXPECT_EQ(inner.stats().index_entries_scanned, 7);
  }
  EXPECT_EQ(outer.stats().index_entries_scanned, 3);
}

TEST_F(ExecStatsTest, AddIsAdditiveExceptPeakMemoryWhichIsHighWater) {
  // The morsel driver merges worker-scope counters with Add(): work
  // counters and governor checks sum, but peak_memory_bytes tracks one
  // shared accountant's high-water mark, so it merges by maximum.
  ExecStats a;
  a.nodes_visited = 10;
  a.governor_checks = 4;
  a.peak_memory_bytes = 1000;
  ExecStats b;
  b.nodes_visited = 5;
  b.governor_checks = 3;
  b.peak_memory_bytes = 700;
  a.Add(b);
  EXPECT_EQ(a.nodes_visited, 15);
  EXPECT_EQ(a.governor_checks, 7);
  EXPECT_EQ(a.peak_memory_bytes, 1000);  // max, not 1700
  b.peak_memory_bytes = 2000;
  a.Add(b);
  EXPECT_EQ(a.peak_memory_bytes, 2000);
  EXPECT_NE(a.ToString().find("governor_checks=10"), std::string::npos);
  EXPECT_NE(a.ToString().find("peak_memory_bytes=2000"), std::string::npos);
}

TEST_F(ExecStatsTest, Section53WorkAsymmetry) {
  // The paper's explanation of the (/t1[1])^k result, in counters: the
  // nested-loop join touches a tiny part of the tree; the staircase join
  // scans index windows per step.
  std::string q = "$input/t1[1]/t1[1]/t1[1]/t1[1]/t1[1]";
  ExecStats nl = Measure(q, PatternAlgo::kNLJoin);
  ExecStats sc = Measure(q, PatternAlgo::kStaircase);
  EXPECT_GT(nl.nodes_visited, 0);
  EXPECT_LT(nl.nodes_visited, 200);  // first-child chain neighbourhood
  EXPECT_GT(sc.index_entries_scanned, 1000);  // window scans per step
  EXPECT_GT(sc.index_entries_scanned, nl.nodes_visited * 10);
}

TEST_F(ExecStatsTest, IndexAlgorithmsSkipRatherThanTraverse) {
  ExecStats sc = Measure("$input//t1[t1[t1]]", PatternAlgo::kStaircase);
  EXPECT_GT(sc.index_skips, 0);
  EXPECT_GT(sc.index_entries_scanned, 0);
  // The nested-loop evaluator on the same query touches every node it
  // traverses instead.
  ExecStats nl = Measure("$input//t1[t1[t1]]", PatternAlgo::kNLJoin);
  EXPECT_GT(nl.nodes_visited, 10000);
  EXPECT_EQ(nl.index_entries_scanned, 0);
}

TEST_F(ExecStatsTest, StreamingVisitsTheRegionOnce) {
  ExecStats st = Measure("$input//t1[t1]", PatternAlgo::kStream);
  // One start event per element in the region (19999 non-root elements),
  // counted once despite pattern-instance fan-out.
  EXPECT_GE(st.nodes_visited, 19000);
  EXPECT_LE(st.nodes_visited, 21000);
}

TEST_F(ExecStatsTest, PatternEvalsCounted) {
  ExecStats s = Measure("$input//t1", PatternAlgo::kNLJoin);
  EXPECT_EQ(s.pattern_evals, 1);  // a single TupleTreePattern evaluation
  EXPECT_NE(s.ToString().find("pattern_evals=1"), std::string::npos);
}

}  // namespace
}  // namespace xqtp::exec
