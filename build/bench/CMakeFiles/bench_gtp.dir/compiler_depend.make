# Empty compiler generated dependencies file for bench_gtp.
# This may be replaced when dependencies are built.
