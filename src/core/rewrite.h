// The paper's second compilation phase: rewriting normalized Core
// expressions into TPNF' so that syntactically different but equivalent
// queries reach the algebraic compiler in one canonical form.
//
// Rule families (Section 3 of the paper), each independently switchable so
// the ablation benchmark can measure their contribution:
//  - Type rewritings: eliminate / bypass the typeswitch produced by
//    predicate normalization, using static types.
//  - FLWOR rewritings: dead-let elimination, single-use variable inlining,
//    unused positional-variable removal.
//  - Document order rewritings: remove ddo calls whose input is provably
//    ordered and duplicate-free, or whose context is insensitive to order
//    and duplicates (an enclosing ddo re-establishes both).
//  - Loop split: re-nests for-loops to hoist iteration out of predicate
//    evaluation; blocked when a positional variable is in use.
#ifndef XQTP_CORE_REWRITE_H_
#define XQTP_CORE_REWRITE_H_

#include "analysis/verify_scope.h"
#include "common/status.h"
#include "core/ast.h"

namespace xqtp::analysis {
class EquivChecker;
}  // namespace xqtp::analysis

namespace xqtp::core {

struct RewriteOptions {
  bool typeswitch_rules = true;
  bool flwor_rules = true;
  bool ddo_removal = true;
  bool loop_split = true;
  /// Fixpoint bound; the rule system terminates far earlier in practice.
  int max_rounds = 64;
  /// Run analysis::VerifyCore after every rule family that changed the
  /// tree, and annotate + re-verify ODF properties at the end, so a rule
  /// that breaks scoping or caches an unsound annotation is pinpointed.
  /// On by default in Debug builds.
  bool verify = analysis::kVerifyByDefault;
  /// Translation-validation oracle (analysis/equiv_checker.h): when set,
  /// the expression is snapshotted before each rule family and both forms
  /// are executed against the witness corpus after the family fired; a
  /// semantic divergence aborts the rewrite with the offending rule, the
  /// minimized witness document, and both printed forms. Non-owning.
  analysis::EquivChecker* equiv = nullptr;
  /// Test-only hook for the oracle's own tests: adds an intentionally
  /// unsound rule family ("unsound ddo strip") that removes *every*
  /// fs:ddo call unconditionally — a plausible-looking rewrite that
  /// breaks document order and duplicate elimination. Never enabled by
  /// the engine; tests/equiv_checker_test.cc proves the oracle detects
  /// it and shrinks the witness.
  bool unsound_ddo_strip_for_testing = false;
};

/// Rewrites `e` to TPNF'. Always terminates (bounded rounds); each round
/// applies every enabled rule family once, bottom-up.
[[nodiscard]]
Result<CoreExprPtr> RewriteToTPNF(CoreExprPtr e, VarTable* vars,
                                  const RewriteOptions& opts = {});

}  // namespace xqtp::core

#endif  // XQTP_CORE_REWRITE_H_
