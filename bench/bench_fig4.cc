// Figure 4 of the paper: a path expression written as a FLWOR, evaluated
// with and without the rewrites, over growing XMark documents.
//
//  - "OldEngine": tree-pattern detection disabled; the plan keeps nested
//    maps with navigational TreeJoins (syntax-dependent plans).
//  - "NL/TJ/SC": the rewritten engine; the FLWOR collapses to one
//    TupleTreePattern executed by the chosen algorithm.
//
// Expected shape: the rewritten engine wins and scales better; the old
// engine's slope is steeper.
#include "bench_common.h"

namespace xqtp::bench {
namespace {

// The Section 5.1 FLWOR form of the Figure 4 path.
constexpr const char* kFlworQuery =
    "for $x1 in $input/site, "
    "    $x2 in $x1/people, "
    "    $x3 in $x2/person[emailaddress] "
    "return $x3/profile/interest";

struct Scale {
  const char* label;
  double factor;
};

constexpr Scale kScales[] = {
    {"xs", 0.02}, {"s", 0.04}, {"m", 0.08}, {"l", 0.16}, {"xl", 0.32},
};

void Register() {
  for (const Scale& scale : kScales) {
    const Scale* sp = &scale;
    // Old engine: no TPNF' rewrites and no TupleTreePattern detection —
    // the plan keeps the full normalization output (per-step ddo calls,
    // focus bookkeeping, typeswitches) evaluated navigationally.
    benchmark::RegisterBenchmark(
        (std::string("Fig4/OldEngine/") + scale.label).c_str(),
        [sp](benchmark::State& state) {
          engine::CompileOptions copts;
          copts.rewrite = false;
          copts.detect_tree_patterns = false;
          RunQueryBenchmark(state, kFlworQuery,
                            XmarkDoc(std::string("xmark_") + sp->label,
                                     sp->factor),
                            exec::PatternAlgo::kNLJoin,
                            engine::PlanChoice::kOptimized, copts);
        })
        ->Unit(benchmark::kMillisecond);
    for (exec::PatternAlgo algo :
         {exec::PatternAlgo::kNLJoin, exec::PatternAlgo::kTwig,
          exec::PatternAlgo::kStaircase}) {
      benchmark::RegisterBenchmark(
          (std::string("Fig4/Rewritten-") + AlgoTag(algo) + "/" +
           scale.label)
              .c_str(),
          [sp, algo](benchmark::State& state) {
            RunQueryBenchmark(state, kFlworQuery,
                              XmarkDoc(std::string("xmark_") + sp->label,
                                       sp->factor),
                              algo);
          })
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace xqtp::bench

int main(int argc, char** argv) {
  xqtp::bench::Register();
  return xqtp::bench::BenchMain(argc, argv);
}
