# Empty compiler generated dependencies file for xmark_analytics.
# This may be replaced when dependencies are built.
