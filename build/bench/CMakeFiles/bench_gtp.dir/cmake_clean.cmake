file(REMOVE_RECURSE
  "CMakeFiles/bench_gtp.dir/bench_gtp.cc.o"
  "CMakeFiles/bench_gtp.dir/bench_gtp.cc.o.d"
  "bench_gtp"
  "bench_gtp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gtp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
