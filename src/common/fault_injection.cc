#include "common/fault_injection.h"

#include <atomic>

#include "common/mutex.h"

namespace xqtp::fault {

namespace {

// Fast-path gate: Poll sits on hot evaluation paths, so the disarmed case
// must cost one relaxed load and nothing else. The slow path (anything is
// armed) takes the mutex for the string compare and counter update.
std::atomic<bool> g_armed{false};
std::atomic<int64_t> g_injections{0};

Mutex g_mu;
std::string* g_site GUARDED_BY(g_mu) = nullptr;
int64_t g_fire_on_nth GUARDED_BY(g_mu) = 1;
int64_t g_polls GUARDED_BY(g_mu) = 0;

}  // namespace

bool Enabled() {
#if XQTP_FAULT_INJECTION
  return true;
#else
  return false;
#endif
}

void Arm(const std::string& site, int64_t fire_on_nth) {
  MutexLock lock(&g_mu);
  if (g_site == nullptr) g_site = new std::string();
  *g_site = site;
  g_fire_on_nth = fire_on_nth < 1 ? 1 : fire_on_nth;
  g_polls = 0;
  g_armed.store(true, std::memory_order_release);
}

void Disarm() {
  MutexLock lock(&g_mu);
  if (g_site != nullptr) g_site->clear();
  g_armed.store(false, std::memory_order_release);
}

int64_t ArmedPollCount() {
  MutexLock lock(&g_mu);
  return g_polls;
}

int64_t InjectionCount() {
  return g_injections.load(std::memory_order_relaxed);
}

Status Poll(const char* site) {
  if (!g_armed.load(std::memory_order_acquire)) return Status::OK();
  MutexLock lock(&g_mu);
  if (g_site == nullptr || *g_site != site) return Status::OK();
  if (++g_polls != g_fire_on_nth) return Status::OK();
  g_injections.fetch_add(1, std::memory_order_relaxed);
  return Status::Internal(std::string(kTag()) + " injected failure at " +
                          site);
}

}  // namespace xqtp::fault
