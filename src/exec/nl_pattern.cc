// Nested-loop pattern evaluation: depth-first navigation over
// first-child / next-sibling cursors. The recursive enumeration is the
// library's most open-ended loop (fan-out is data-dependent and
// unbounded), so it carries a strided governor poll: a deadline or an
// external cancel interrupts the traversal mid-enumeration, surfacing
// from EvalPatternNL as the governor's Status.
#include "common/fault_injection.h"
#include "exec/exec_stats.h"
#include "exec/governor.h"
#include "exec/pattern_eval.h"
#include "xdm/sequence_ops.h"
#include "xml/document.h"

namespace xqtp::exec {

namespace {

using pattern::PatternNode;
using pattern::PatternNodePtr;
using pattern::TreePattern;
using xml::Node;

/// True iff the sub-pattern rooted at `p` has a match starting from `ctx`
/// (existential check used for predicate branches). Early-exits on the
/// first match, so highly selective predicates stay cheap. A tripped
/// governor also returns false — the latched ticker status makes the
/// caller discard the bogus partial answer.
bool ExistsMatch(const Node* ctx, const PatternNode& p,
                 GovernorTicker* gov) {
  xdm::Sequence candidates;
  xdm::EvalAxisStep(ctx, p.axis, p.test, &candidates);
  int pos = 0;
  for (const xdm::Item& it : candidates) {
    if (!gov->Tick()) return false;
    const Node* n = it.node();
    // Positional constraint: only the position-th raw match counts.
    ++pos;
    if (p.position > 0) {
      if (pos < p.position) continue;
      if (pos > p.position) break;
    }
    bool preds_ok = true;
    for (const PatternNodePtr& pred : p.predicates) {
      if (!ExistsMatch(n, *pred, gov)) {
        preds_ok = false;
        break;
      }
    }
    if (!preds_ok) continue;
    if (p.next == nullptr || ExistsMatch(n, *p.next, gov)) return true;
  }
  return false;
}

/// Depth-first enumeration of main-path bindings.
void Enumerate(const Node* ctx, const PatternNode& p, BindingRow* partial,
               std::vector<BindingRow>* rows, GovernorTicker* gov) {
  xdm::Sequence candidates;
  xdm::EvalAxisStep(ctx, p.axis, p.test, &candidates);
  int pos = 0;
  for (const xdm::Item& it : candidates) {
    if (!gov->Tick()) return;
    const Node* n = it.node();
    ++pos;
    if (p.position > 0) {
      if (pos < p.position) continue;
      if (pos > p.position) break;
    }
    bool preds_ok = true;
    for (const PatternNodePtr& pred : p.predicates) {
      if (!ExistsMatch(n, *pred, gov)) {
        preds_ok = false;
        break;
      }
    }
    if (!preds_ok) continue;
    bool annotated = p.output != kInvalidSymbol;
    if (annotated) partial->fields.emplace_back(p.output, n);
    if (p.next != nullptr) {
      Enumerate(n, *p.next, partial, rows, gov);
    } else {
      rows->push_back(*partial);
    }
    if (annotated) partial->fields.pop_back();
  }
}

bool HasPredicateOutputs(const PatternNode& p) {
  for (const PatternNodePtr& pred : p.predicates) {
    // Any annotation inside a predicate branch.
    const PatternNode* n = pred.get();
    std::vector<const PatternNode*> stack{n};
    while (!stack.empty()) {
      const PatternNode* cur = stack.back();
      stack.pop_back();
      if (cur->output != kInvalidSymbol) return true;
      for (const PatternNodePtr& q : cur->predicates) stack.push_back(q.get());
      if (cur->next) stack.push_back(cur->next.get());
    }
  }
  if (p.next) return HasPredicateOutputs(*p.next);
  return false;
}

}  // namespace

Result<std::vector<BindingRow>> EvalPatternNL(const TreePattern& tp,
                                              const xdm::Sequence& context) {
  XQTP_FAULT_POINT("exec.pattern.nl");
  if (tp.root == nullptr) return std::vector<BindingRow>{};
  if (HasPredicateOutputs(*tp.root)) {
    return Status::NotImplemented(
        "output annotations inside predicate branches are not supported");
  }
  GovernorTicker gov;
  std::vector<BindingRow> rows;
  BindingRow partial;
  for (const xdm::Item& it : context) {
    if (!it.IsNode()) {
      return Status::TypeError(
          "tree pattern applied to a non-node context item");
    }
    Enumerate(it.node(), *tp.root, &partial, &rows, &gov);
    if (!gov.status().ok()) return gov.status();
  }
  FinalizeRows(&rows);
  return rows;
}

}  // namespace xqtp::exec
