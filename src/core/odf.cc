#include "core/odf.h"

namespace xqtp::core {

namespace {

/// Classification of a for-body as a "downward chain" from the loop
/// variable, used to propagate order properties through iteration over a
/// many-node sequence.
enum class ChainKind : uint8_t {
  kNotChain,   ///< not a downward chain; no guarantees
  kIdentity,   ///< the loop variable itself (a pure filter)
  kUnrelated,  ///< chain of child/attribute/self steps: output unrelated
  kRelated,    ///< ends in a descendant step: output may be related
};

ChainKind Compose(ChainKind outer, ChainKind inner) {
  if (outer == ChainKind::kNotChain || inner == ChainKind::kNotChain) {
    return ChainKind::kNotChain;
  }
  if (inner == ChainKind::kIdentity) return outer;
  if (outer == ChainKind::kIdentity) return inner;
  if (outer == ChainKind::kUnrelated) return inner;
  // outer kRelated composed with a real step: children/descendants of
  // related nodes interleave — no order guarantee (query Q5).
  return ChainKind::kNotChain;
}

/// Is `e` a downward chain rooted at variable `x`?
ChainKind ClassifyChain(const CoreExpr& e, VarId x) {
  switch (e.kind) {
    case CoreKind::kVar:
      return e.var == x ? ChainKind::kIdentity : ChainKind::kNotChain;
    case CoreKind::kStep:
      if (e.var != x) return ChainKind::kNotChain;
      switch (e.axis) {
        case Axis::kChild:
        case Axis::kAttribute:
        case Axis::kSelf:
          return ChainKind::kUnrelated;
        case Axis::kDescendant:
        case Axis::kDescendantOrSelf:
          return ChainKind::kRelated;
        case Axis::kParent:
        case Axis::kAncestor:
        case Axis::kAncestorOrSelf:
        case Axis::kFollowingSibling:
        case Axis::kPrecedingSibling:
          return ChainKind::kNotChain;
      }
      return ChainKind::kNotChain;
    case CoreKind::kDdo:
      // ddo over a chain is the chain itself (already ordered/df) —
      // classification passes through.
      return ClassifyChain(*e.children[0], x);
    case CoreKind::kFor: {
      // A positional loop is observationally different; a where clause is
      // just a filter and preserves every chain property.
      if (e.pos_var != kNoVar) return ChainKind::kNotChain;
      ChainKind outer = ClassifyChain(*e.children[0], x);
      ChainKind inner = ClassifyChain(*e.children[1], e.var);
      return Compose(outer, inner);
    }
    default:
      return ChainKind::kNotChain;
  }
}

OdfProps Compute(const CoreExpr& e, const VarTable& vars, OdfEnv* env) {
  switch (e.kind) {
    case CoreKind::kVar: {
      auto it = env->find(e.var);
      if (it != env->end()) return it->second;
      // Globals are bound to singleton document nodes by contract.
      if (vars.IsGlobal(e.var)) return OdfProps::Singleton();
      return OdfProps::Unknown();
    }
    case CoreKind::kLiteral:
      return OdfProps::Singleton();
    case CoreKind::kSequence: {
      if (e.children.empty()) return {true, true, true, Card::kZeroOrOne};
      if (e.children.size() == 1) return Compute(*e.children[0], vars, env);
      for (const CoreExprPtr& c : e.children) Compute(*c, vars, env);
      return OdfProps::Unknown();
    }
    case CoreKind::kLet: {
      OdfProps bp = Compute(*e.children[0], vars, env);
      (*env)[e.var] = bp;
      return Compute(*e.children[1], vars, env);
    }
    case CoreKind::kFor: {
      OdfProps sp = Compute(*e.children[0], vars, env);
      // The loop variable is a single item from the sequence.
      (*env)[e.var] = OdfProps::Singleton();
      if (e.pos_var != kNoVar) (*env)[e.pos_var] = OdfProps::Singleton();
      if (e.where) Compute(*e.where, vars, env);
      OdfProps bp = Compute(*e.children[1], vars, env);
      // Pure filter: a subsequence keeps order, distinctness and
      // unrelatedness.
      if (e.children[1]->kind == CoreKind::kVar &&
          e.children[1]->var == e.var) {
        OdfProps out = sp;
        if (out.card == Card::kOne) out.card = Card::kZeroOrOne;
        return out;
      }
      switch (sp.card) {
        case Card::kOne:
          return bp;
        case Card::kZeroOrOne: {
          OdfProps out = bp;
          if (out.card == Card::kOne) out.card = Card::kZeroOrOne;
          return out;
        }
        case Card::kMany: {
          // Iteration over many nodes: per-binding results of a downward
          // chain live in disjoint subtrees when the iterator is
          // *unrelated*, so the concatenation stays ordered and
          // duplicate-free (Hidders et al. [19]).
          if (sp.OrderedDupFree() && sp.unrelated && e.pos_var == kNoVar) {
            ChainKind kind = ClassifyChain(*e.children[1], e.var);
            switch (kind) {
              case ChainKind::kIdentity:
                return sp;  // handled above, but keep for where-filters
              case ChainKind::kUnrelated:
                return {true, true, true, Card::kMany};
              case ChainKind::kRelated:
                return {true, true, false, Card::kMany};
              case ChainKind::kNotChain:
                break;
            }
          }
          return OdfProps::Unknown();
        }
      }
      return OdfProps::Unknown();
    }
    case CoreKind::kIf: {
      Compute(*e.children[0], vars, env);
      OdfProps a = Compute(*e.children[1], vars, env);
      OdfProps b = Compute(*e.children[2], vars, env);
      OdfProps out;
      out.ordered = a.ordered && b.ordered;
      out.dup_free = a.dup_free && b.dup_free;
      out.unrelated = a.unrelated && b.unrelated;
      out.card = Card::kMany;
      if (a.card != Card::kMany && b.card != Card::kMany) {
        out.card = (a.card == Card::kOne && b.card == Card::kOne)
                       ? Card::kOne
                       : Card::kZeroOrOne;
      }
      return out;
    }
    case CoreKind::kStep: {
      auto it = env->find(e.var);
      OdfProps ctx = it != env->end()
                         ? it->second
                         : (vars.IsGlobal(e.var) ? OdfProps::Singleton()
                                                 : OdfProps::Unknown());
      // A single axis step from a *single* context node always yields a
      // document-ordered duplicate-free sequence; only the vertical axes
      // keep the result unrelated.
      if (ctx.card != Card::kMany) {
        OdfProps out{true, true, true, Card::kMany};
        switch (e.axis) {
          case Axis::kChild:
          case Axis::kAttribute:
          case Axis::kFollowingSibling:
          case Axis::kPrecedingSibling:
            break;  // siblings/children of one node are unrelated
          case Axis::kDescendant:
          case Axis::kDescendantOrSelf:
          case Axis::kAncestor:
          case Axis::kAncestorOrSelf:
            out.unrelated = false;  // vertically related nodes
            break;
          case Axis::kSelf:
          case Axis::kParent:
            out.card = Card::kZeroOrOne;
            break;
        }
        return out;
      }
      return OdfProps::Unknown();
    }
    case CoreKind::kDdo: {
      OdfProps in = Compute(*e.children[0], vars, env);
      return {true, true, in.unrelated, in.card};
    }
    case CoreKind::kFnCall:
      for (const CoreExprPtr& c : e.children) Compute(*c, vars, env);
      switch (e.fn) {
        case CoreFn::kBoolean:
        case CoreFn::kCount:
        case CoreFn::kNot:
        case CoreFn::kEmpty:
        case CoreFn::kExists:
        case CoreFn::kData:
        case CoreFn::kString:
        case CoreFn::kNumber:
        case CoreFn::kStringLength:
        case CoreFn::kConcat:
        case CoreFn::kContains:
        case CoreFn::kStartsWith:
        case CoreFn::kSum:
          return OdfProps::Singleton();
        case CoreFn::kRoot:
          return {true, true, true, Card::kZeroOrOne};
      }
      return OdfProps::Unknown();
    case CoreKind::kTypeswitch: {
      OdfProps it = Compute(*e.children[0], vars, env);
      (*env)[e.case_var] = it;
      (*env)[e.default_var] = it;
      OdfProps a = Compute(*e.children[1], vars, env);
      OdfProps b = Compute(*e.children[2], vars, env);
      return {a.ordered && b.ordered, a.dup_free && b.dup_free,
              a.unrelated && b.unrelated, Card::kMany};
    }
    case CoreKind::kCompare:
    case CoreKind::kAnd:
    case CoreKind::kOr:
      for (const CoreExprPtr& c : e.children) Compute(*c, vars, env);
      return OdfProps::Singleton();
    case CoreKind::kArith: {
      for (const CoreExprPtr& c : e.children) Compute(*c, vars, env);
      // Arithmetic yields at most one item (empty if an operand is empty).
      return {true, true, true, Card::kZeroOrOne};
    }
  }
  return OdfProps::Unknown();
}

}  // namespace

OdfProps ComputeOdf(const CoreExpr& e, const VarTable& vars,
                    const OdfEnv& env) {
  OdfEnv scratch = env;
  return Compute(e, vars, &scratch);
}

uint8_t PackOdfCache(const OdfProps& p) {
  uint8_t bits = kOdfCachePresent;
  if (p.ordered) bits |= kOdfCacheOrdered;
  if (p.dup_free) bits |= kOdfCacheDupFree;
  return bits;
}

namespace {

/// Bottom-up annotation walk. Because VarIds are unique, entries for
/// variables that left scope are unreachable and need not be removed, so
/// one growing environment serves the whole tree.
void Annotate(CoreExpr* e, const VarTable& vars, OdfEnv* env) {
  // The node's own properties are derived under the environment at its
  // scope entry — before the binders of its children extend it.
  e->odf_cache = PackOdfCache(ComputeOdf(*e, vars, *env));
  switch (e->kind) {
    case CoreKind::kLet: {
      Annotate(e->children[0].get(), vars, env);
      (*env)[e->var] = ComputeOdf(*e->children[0], vars, *env);
      Annotate(e->children[1].get(), vars, env);
      return;
    }
    case CoreKind::kFor: {
      Annotate(e->children[0].get(), vars, env);
      (*env)[e->var] = OdfProps::Singleton();
      if (e->pos_var != kNoVar) (*env)[e->pos_var] = OdfProps::Singleton();
      if (e->where) Annotate(e->where.get(), vars, env);
      Annotate(e->children[1].get(), vars, env);
      return;
    }
    case CoreKind::kTypeswitch: {
      Annotate(e->children[0].get(), vars, env);
      OdfProps it = ComputeOdf(*e->children[0], vars, *env);
      (*env)[e->case_var] = it;
      (*env)[e->default_var] = it;
      Annotate(e->children[1].get(), vars, env);
      Annotate(e->children[2].get(), vars, env);
      return;
    }
    default:
      for (CoreExprPtr& c : e->children) Annotate(c.get(), vars, env);
      if (e->where) Annotate(e->where.get(), vars, env);
      return;
  }
}

}  // namespace

void AnnotateOdf(CoreExpr* e, const VarTable& vars) {
  OdfEnv env;
  Annotate(e, vars, &env);
}

}  // namespace xqtp::core
