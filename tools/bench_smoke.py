#!/usr/bin/env python3
"""Merge per-binary bench --json outputs into BENCH_smoke.json and report
a warn-only per-record delta against the committed baseline.

Usage:
  bench_smoke.py --out BENCH_smoke.json [--baseline OLD.json] IN.json...

Each input is the JSON array a bench binary writes with --json=<path>
(see bench/bench_common.h). Records are keyed by
(bench, query, algo, threads, variant); the merge sorts by that key so
BENCH_smoke.json diffs are stable across runs. When a baseline is given
(ci/check.sh passes the committed BENCH_smoke.json), every key present in
both is compared on mean-ns and a delta table is printed. The delta is
WARN-ONLY: smoke timings on shared CI machines are too noisy to gate on,
the table exists so a perf cliff is visible in the log, not to fail it.
Exit is non-zero only for malformed inputs.
"""

import argparse
import json
import sys


def key(r):
    return (
        r.get("bench", ""),
        r.get("query", ""),
        r.get("algo", ""),
        r.get("threads", 1),
        r.get("variant", ""),
    )


def load(path):
    with open(path) as f:
        records = json.load(f)
    if not isinstance(records, list):
        raise ValueError(f"{path}: expected a JSON array of records")
    return records


def main(argv):
    ap = argparse.ArgumentParser()
    ap.add_argument("--out", required=True)
    ap.add_argument("--baseline")
    ap.add_argument("inputs", nargs="+")
    args = ap.parse_args(argv)

    merged = {}
    for path in args.inputs:
        for r in load(path):
            merged[key(r)] = r  # later inputs win on key collision
    records = [merged[k] for k in sorted(merged)]
    with open(args.out, "w") as f:
        json.dump(records, f, indent=2)
        f.write("\n")
    print(f"bench_smoke: wrote {len(records)} records to {args.out}")

    if args.baseline:
        try:
            base = {key(r): r for r in load(args.baseline)}
        except (OSError, ValueError) as e:
            print(f"bench_smoke: no usable baseline ({e}); skipping delta")
            return 0
        rows = []
        for k, r in merged.items():
            old = base.get(k)
            if old is None or not old.get("ns"):
                continue
            delta = (r["ns"] - old["ns"]) / old["ns"] * 100.0
            rows.append((delta, k))
        if not rows:
            print("bench_smoke: no overlapping baseline records; no delta")
            return 0
        rows.sort(reverse=True)
        print("bench_smoke: mean-ns delta vs baseline (warn-only):")
        for delta, k in rows:
            bench, query, algo, threads, variant = k
            tag = f"{bench}/{query}/{algo}/t{threads}"
            if variant:
                tag += f"/{variant}"
            marker = "  ** regression? **" if delta > 25.0 else ""
            print(f"  {delta:+7.1f}%  {tag}{marker}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
