#include <gtest/gtest.h>

#include "core/normalize.h"
#include "core/printer.h"
#include "xquery/parser.h"

namespace xqtp::core {
namespace {

class NormalizeTest : public ::testing::Test {
 protected:
  std::string Norm(const std::string& q) {
    auto surface = xquery::ParseQuery(q, &interner_);
    EXPECT_TRUE(surface.ok()) << surface.status().ToString();
    if (!surface.ok()) return "";
    vars_ = VarTable();
    auto core = Normalize(**surface, &vars_);
    EXPECT_TRUE(core.ok()) << core.status().ToString();
    if (!core.ok()) return "";
    root_ = std::move(core).value();
    return ToString(*root_, vars_, interner_);
  }

  StringInterner interner_;
  VarTable vars_;
  CoreExprPtr root_;
};

TEST_F(NormalizeTest, PathIntroducesFocusAndDdo) {
  std::string s = Norm("$d/person");
  // The paper's / rule: ddo(let $seq := ddo(E1) return let $last :=
  // fn:count($seq) return for $dot at $position in $seq return E2).
  EXPECT_EQ(s,
            "ddo(let $seq := ddo($d) return let $last := fn:count($seq) "
            "return for $dot at $position in $seq return child::person)");
}

TEST_F(NormalizeTest, PredicateIntroducesTypeswitch) {
  std::string s = Norm("$d/person[emailaddress]");
  // The predicate rule produces the positional typeswitch of Q1a-n.
  EXPECT_NE(s.find("typeswitch (child::emailaddress) case $v as numeric() "
                   "return $position = $v default $v return fn:boolean($v)"),
            std::string::npos)
      << s;
  EXPECT_NE(s.find("for $dot at $position in $seq where"), std::string::npos);
}

TEST_F(NormalizeTest, DoubleSlashSimplifiedForNonPositionalPredicate) {
  // The footnote simplification: $d//person[emailaddress] uses
  // descendant::person directly.
  std::string s = Norm("$d//person[emailaddress]");
  EXPECT_NE(s.find("descendant::person"), std::string::npos);
  EXPECT_EQ(s.find("descendant-or-self"), std::string::npos);
}

TEST_F(NormalizeTest, DoubleSlashExpandedForPositionalPredicate) {
  // The paper's positional example: $d//person[1] must go through
  // descendant-or-self::node()/child::person to keep positions correct.
  std::string s = Norm("$d//person[1]");
  EXPECT_NE(s.find("descendant-or-self::node()"), std::string::npos);
  EXPECT_NE(s.find("child::person"), std::string::npos);
}

TEST_F(NormalizeTest, DoubleSlashExpandedForPositionFunction) {
  std::string s = Norm("$d//person[position() = 1]");
  EXPECT_NE(s.find("descendant-or-self::node()"), std::string::npos);
}

TEST_F(NormalizeTest, FlworForWhere) {
  std::string s = Norm("for $x in $d/a where $x/b return $x");
  EXPECT_NE(s.find("for $x in"), std::string::npos);
  // The where condition is normalized with the EBV wrapper.
  EXPECT_NE(s.find("where fn:boolean("), std::string::npos);
}

TEST_F(NormalizeTest, FlworLet) {
  std::string s = Norm("let $x := $d/a return $x");
  EXPECT_NE(s.find("let $x :="), std::string::npos);
}

TEST_F(NormalizeTest, PositionLastResolveToFocusVariables) {
  std::string s = Norm("$d/a[position() = last()]");
  EXPECT_NE(s.find("$position = $last"), std::string::npos);
}

TEST_F(NormalizeTest, PositionOutsideFocusFails) {
  auto surface = xquery::ParseQuery("position()", &interner_);
  ASSERT_TRUE(surface.ok());
  VarTable vars;
  auto core = Normalize(**surface, &vars);
  EXPECT_FALSE(core.ok());
}

TEST_F(NormalizeTest, FreeVariablesBecomeGlobals) {
  Norm("$doc/a");
  EXPECT_NE(vars_.FindGlobal("doc"), kNoVar);
  EXPECT_EQ(vars_.FindGlobal("nope"), kNoVar);
}

TEST_F(NormalizeTest, UniqueBindersDespiteSharedNames) {
  Norm("$d/a/b/c");
  // Three focus loops all display "$dot" but have distinct VarIds —
  // count the binders.
  int dot_binders = 0;
  std::vector<const CoreExpr*> stack{root_.get()};
  while (!stack.empty()) {
    const CoreExpr* e = stack.back();
    stack.pop_back();
    if (e->kind == CoreKind::kFor && vars_.NameOf(e->var) == "dot") {
      ++dot_binders;
    }
    for (const CoreExprPtr& c : e->children) stack.push_back(c.get());
    if (e->where) stack.push_back(e->where.get());
  }
  EXPECT_EQ(dot_binders, 3);
}

TEST_F(NormalizeTest, UnsupportedFunctionRejected) {
  auto surface = xquery::ParseQuery("fn:string-join($d/a)", &interner_);
  ASSERT_TRUE(surface.ok());
  VarTable vars;
  auto core = Normalize(**surface, &vars);
  EXPECT_FALSE(core.ok());
  EXPECT_EQ(core.status().code(), StatusCode::kNotImplemented);
}

TEST_F(NormalizeTest, ComparisonsAndLogic) {
  std::string s = Norm("$d/a = \"x\" and $d/b");
  EXPECT_NE(s.find("and"), std::string::npos);
  EXPECT_NE(s.find("= \"x\""), std::string::npos);
}

TEST_F(NormalizeTest, MultiplePredicatesFoldLeftToRight) {
  std::string s = Norm("$d/a[b][c]");
  // Both predicates produce their own focus loop; the [c] loop consumes
  // the [b]-filtered sequence.
  size_t first = s.find("child::b");
  size_t second = s.find("child::c");
  EXPECT_NE(first, std::string::npos);
  EXPECT_NE(second, std::string::npos);
}

TEST_F(NormalizeTest, AlphaEqualNormalization) {
  auto s1 = xquery::ParseQuery("$d/a/b", &interner_);
  auto s2 = xquery::ParseQuery("$d/a/b", &interner_);
  VarTable v1, v2;
  auto c1 = Normalize(**s1, &v1);
  auto c2 = Normalize(**s2, &v2);
  ASSERT_TRUE(c1.ok() && c2.ok());
  EXPECT_TRUE(AlphaEqual(**c1, **c2));
}

}  // namespace
}  // namespace xqtp::core
