// Work counters: makes the paper's Section 5 cost arguments observable.
// For each algorithm, prints how many tree nodes were visited and how
// many index entries were scanned for two contrasting workloads:
//  - the Section 5.3 selective chain (NL touches almost nothing),
//  - a rooted descendant twig (the index algorithms touch only the
//    relevant streams, NL traverses the world).
//
//   $ ./build/examples/work_counters
#include <cstdio>

#include "engine/engine.h"
#include "exec/exec_stats.h"
#include "workload/member_gen.h"

int main() {
  using xqtp::exec::PatternAlgo;
  xqtp::engine::Engine engine;

  xqtp::workload::MemberParams wide;
  wide.node_count = 150000;
  wide.max_depth = 5;
  wide.num_tags = 100;
  wide.plant_twigs = 75;
  const xqtp::xml::Document* wide_doc = engine.AddDocument(
      "wide", xqtp::workload::GenerateMember(wide, engine.interner()));

  xqtp::workload::MemberParams deep;
  deep.node_count = 50000;
  deep.max_depth = 15;
  deep.num_tags = 1;
  const xqtp::xml::Document* deep_doc = engine.AddDocument(
      "deep", xqtp::workload::GenerateMember(deep, engine.interner()));

  struct Case {
    const char* name;
    const char* query;
    const xqtp::xml::Document* doc;
  };
  Case cases[] = {
      {"Section 5.3 selective chain (/t1[1])^10",
       "$input/t1[1]/t1[1]/t1[1]/t1[1]/t1[1]/t1[1]/t1[1]/t1[1]/t1[1]/t1[1]",
       deep_doc},
      {"rooted descendant twig (QE4)",
       "$input/desc::t01[desc::t02[desc::t03[desc::t04]]]", wide_doc},
  };

  for (const Case& c : cases) {
    std::printf("%s\n  %s\n", c.name, c.query);
    auto cq = engine.Compile(c.query);
    if (!cq.ok()) {
      std::printf("  compile error: %s\n", cq.status().ToString().c_str());
      continue;
    }
    xqtp::engine::Engine::GlobalMap globals{
        {"input", {xqtp::xdm::Item(c.doc->root())}}};
    std::printf("  %-10s %15s %15s %12s\n", "algorithm", "nodes visited",
                "index entries", "index skips");
    for (PatternAlgo algo : {PatternAlgo::kNLJoin, PatternAlgo::kStaircase,
                             PatternAlgo::kTwig, PatternAlgo::kStream}) {
      xqtp::exec::ScopedExecStats scope;
      auto res = engine.Execute(*cq, globals, algo);
      if (!res.ok()) {
        std::printf("  %-10s error: %s\n", PatternAlgoName(algo),
                    res.status().ToString().c_str());
        continue;
      }
      const xqtp::exec::ExecStats& s = scope.stats();
      std::printf("  %-10s %15lld %15lld %12lld   (%zu results)\n",
                  PatternAlgoName(algo),
                  static_cast<long long>(s.nodes_visited),
                  static_cast<long long>(s.index_entries_scanned),
                  static_cast<long long>(s.index_skips), res->size());
    }
    std::printf("\n");
  }
  std::printf(
      "Reading: the nested-loop join's cost follows nodes visited; the\n"
      "index joins' cost follows index entries scanned — exactly the\n"
      "asymmetry behind the paper's Section 5.3 and Table 1 results.\n");
  return 0;
}
