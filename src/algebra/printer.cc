#include "algebra/printer.h"

namespace xqtp::algebra {

namespace {

class Printer {
 public:
  Printer(const core::VarTable& vars, const StringInterner& interner,
          bool pretty)
      : vars_(vars), interner_(interner), pretty_(pretty) {}

  std::string Render(const Op& op) {
    Print(op, 0);
    return std::move(out_);
  }

 private:
  void Newline(int indent) {
    if (!pretty_) return;
    out_ += '\n';
    out_.append(static_cast<size_t>(indent) * 2, ' ');
  }

  void PrintName(const Op& op) {
    switch (op.kind) {
      case OpKind::kMapFromItem:
        out_ += "MapFromItem";
        break;
      case OpKind::kMapToItem:
        out_ += "MapToItem";
        break;
      case OpKind::kSelect:
        out_ += "Select";
        break;
      case OpKind::kTupleTreePattern:
        out_ += "TupleTreePattern";
        break;
      case OpKind::kTreeJoin:
        out_ += "TreeJoin";
        break;
      case OpKind::kDdo:
        out_ += "fs:ddo";
        break;
      case OpKind::kForEach:
        out_ += "ForEach";
        break;
      case OpKind::kLetIn:
        out_ += "LetIn";
        break;
      case OpKind::kTypeswitch:
        out_ += "Typeswitch";
        break;
      case OpKind::kIf:
        out_ += "If";
        break;
      case OpKind::kSequence:
        out_ += "Sequence";
        break;
      case OpKind::kFnCall:
        out_ += core::CoreFnName(op.fn);
        break;
      default:
        break;
    }
  }

  void Print(const Op& op, int indent) {
    switch (op.kind) {
      case OpKind::kConst:
        if (op.literal.IsString()) {
          out_ += '"' + op.literal.str() + '"';
        } else {
          out_ += op.literal.StringValue();
        }
        return;
      case OpKind::kGlobalVar:
      case OpKind::kScopedVar:
        out_ += '$';
        out_ += vars_.NameOf(op.var);
        return;
      case OpKind::kInputItem:
        out_ += "IN";
        return;
      case OpKind::kInputTuple:
        out_ += "IN";
        return;
      case OpKind::kFieldAccess:
        out_ += "IN#";
        out_ += interner_.NameOf(op.field);
        return;
      case OpKind::kCompare:
        Print(*op.inputs[0], indent);
        out_ += xdm::CompareOpName(op.cmp_op);
        Print(*op.inputs[1], indent);
        return;
      case OpKind::kArith:
        Print(*op.inputs[0], indent);
        out_ += xdm::ArithOpName(op.arith_op);
        Print(*op.inputs[1], indent);
        return;
      case OpKind::kAnd:
        Print(*op.inputs[0], indent);
        out_ += " and ";
        Print(*op.inputs[1], indent);
        return;
      case OpKind::kOr:
        Print(*op.inputs[0], indent);
        out_ += " or ";
        Print(*op.inputs[1], indent);
        return;
      default:
        break;
    }

    PrintName(op);
    // Bracket parameter: tree pattern or navigational step.
    if (op.kind == OpKind::kTupleTreePattern) {
      out_ += '[';
      out_ += op.tp.ToString(interner_);
      out_ += ']';
    } else if (op.kind == OpKind::kTreeJoin) {
      out_ += '[';
      out_ += StepToString(op.axis, op.test, interner_);
      out_ += ']';
    } else if (op.kind == OpKind::kForEach) {
      out_ += "[$" + vars_.NameOf(op.var);
      if (op.pos_var != core::kNoVar) {
        out_ += " at $" + vars_.NameOf(op.pos_var);
      }
      out_ += ']';
    } else if (op.kind == OpKind::kLetIn) {
      out_ += "[$" + vars_.NameOf(op.var) + ']';
    }
    // Dependent sub-plans in curly braces.
    if (op.kind == OpKind::kMapFromItem) {
      out_ += "{[";
      out_ += interner_.NameOf(op.field);
      out_ += " : ";
      Print(*op.dep, indent);
      out_ += "]}";
    } else if (op.dep != nullptr) {
      out_ += '{';
      Print(*op.dep, indent + 1);
      out_ += '}';
      if (op.dep2 != nullptr) {
        out_ += (op.kind == OpKind::kForEach) ? "where{" : "{";
        Print(*op.dep2, indent + 1);
        out_ += '}';
      }
    }
    // Independent inputs.
    out_ += '(';
    if (!op.inputs.empty()) {
      Newline(indent + 1);
      bool first = true;
      for (const OpPtr& in : op.inputs) {
        if (!first) out_ += ", ";
        first = false;
        Print(*in, indent + 1);
      }
    }
    out_ += ')';
  }

  const core::VarTable& vars_;
  const StringInterner& interner_;
  bool pretty_;
  std::string out_;
};

}  // namespace

std::string ToString(const Op& plan, const core::VarTable& vars,
                     const StringInterner& interner) {
  Printer p(vars, interner, /*pretty=*/false);
  return p.Render(plan);
}

std::string ToPrettyString(const Op& plan, const core::VarTable& vars,
                           const StringInterner& interner) {
  Printer p(vars, interner, /*pretty=*/true);
  return p.Render(plan);
}

}  // namespace xqtp::algebra
