// XPath axes and node tests, shared by every pipeline stage (surface AST,
// core AST, tree patterns, algebra, evaluators).
#ifndef XQTP_XDM_AXIS_H_
#define XQTP_XDM_AXIS_H_

#include <cstdint>
#include <string>

#include "common/interner.h"

namespace xqtp {

/// The axes in the supported XPath fragment. Tree patterns only ever use
/// the downward axes (child / descendant / descendant-or-self / attribute /
/// self); the upward and sideways axes are supported navigationally but
/// are never part of a pattern.
enum class Axis : uint8_t {
  kChild,
  kDescendant,
  kDescendantOrSelf,
  kAttribute,
  kSelf,
  kParent,
  kAncestor,
  kAncestorOrSelf,
  kFollowingSibling,
  kPrecedingSibling,
};

/// True for axes that may appear inside a TreePattern.
bool AxisAllowedInPattern(Axis axis);

/// Axis name as written in XPath ("child", "descendant-or-self", ...).
const char* AxisName(Axis axis);

/// Kinds of node tests in the fragment.
enum class NodeTestKind : uint8_t {
  kName,      ///< element (or attribute, on the attribute axis) name test
  kAnyName,   ///< "*"
  kAnyNode,   ///< "node()"
  kText,      ///< "text()"
};

/// A node test: kind plus the interned name for kName.
struct NodeTest {
  NodeTestKind kind = NodeTestKind::kAnyNode;
  Symbol name = kInvalidSymbol;

  static NodeTest Name(Symbol s) { return {NodeTestKind::kName, s}; }
  static NodeTest AnyName() { return {NodeTestKind::kAnyName, kInvalidSymbol}; }
  static NodeTest AnyNode() { return {NodeTestKind::kAnyNode, kInvalidSymbol}; }
  static NodeTest Text() { return {NodeTestKind::kText, kInvalidSymbol}; }

  bool operator==(const NodeTest& other) const {
    return kind == other.kind && name == other.name;
  }

  /// Rendering as written in XPath, e.g. "person", "*", "node()".
  std::string ToString(const StringInterner& interner) const;
};

/// "axis::test" rendering, abbreviating nothing (tests compare against the
/// explicit form the paper prints, e.g. "descendant::person").
std::string StepToString(Axis axis, const NodeTest& test,
                         const StringInterner& interner);

}  // namespace xqtp

#endif  // XQTP_XDM_AXIS_H_
