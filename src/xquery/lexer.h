// Lexer for the XQuery fragment.
#ifndef XQTP_XQUERY_LEXER_H_
#define XQTP_XQUERY_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace xqtp::xquery {

enum class TokenKind : uint8_t {
  kEof,
  kName,        ///< NCName or prefixed name (fn:count)
  kVariable,    ///< $name (value excludes the '$')
  kString,      ///< string literal, value is the unescaped content
  kInteger,
  kDecimal,
  kSlash,       ///< /
  kSlashSlash,  ///< //
  kLBracket,
  kRBracket,
  kLParen,
  kRParen,
  kComma,
  kAt,          ///< @
  kDot,         ///< .
  kColonEq,     ///< :=
  kAxisSep,     ///< ::
  kStar,
  kPlus,
  kMinus,
  kBar,         ///< | (union)
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
};

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;   ///< for names / variables / strings
  int64_t integer = 0;
  double decimal = 0;
  int line = 1;
};

/// Tokenizes the whole input. XQuery comments `(: ... :)` are skipped.
[[nodiscard]] Result<std::vector<Token>> Lex(std::string_view input);

}  // namespace xqtp::xquery

#endif  // XQTP_XQUERY_LEXER_H_
