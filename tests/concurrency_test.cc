// Concurrency contract tests: compilation is single-threaded (it mutates
// the engine's interner), but compiled queries may execute concurrently
// against shared documents — the lazily-built per-tag indexes and
// statistics are built under a lock.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "engine/engine.h"
#include "workload/member_gen.h"

namespace xqtp {
namespace {

TEST(ConcurrencyTest, ParallelExecutionOverColdIndexes) {
  engine::Engine e;
  workload::MemberParams p;
  p.node_count = 30000;
  p.max_depth = 5;
  p.num_tags = 100;
  p.plant_twigs = 15;
  const xml::Document* d =
      e.AddDocument("m", workload::GenerateMember(p, e.interner()));

  // Compile everything up front (single-threaded phase).
  const char* queries[] = {
      "$input//t01[t02]/t03",
      "$input/desc::t04[desc::t03]",
      "fn:count($input//t02)",
      "$input//t01[1]/t02",
      "for $x in $input//t01 where $x/t02 return $x/t02/t03",
  };
  std::vector<engine::CompiledQuery> compiled;
  for (const char* q : queries) {
    auto cq = e.Compile(q);
    ASSERT_TRUE(cq.ok()) << q;
    compiled.push_back(std::move(cq).value());
  }

  // Reference results, computed before going parallel.
  engine::Engine::GlobalMap globals{{"input", {xdm::Item(d->root())}}};
  std::vector<size_t> expected;
  for (const engine::CompiledQuery& cq : compiled) {
    auto res = e.Execute(cq, globals, exec::PatternAlgo::kNLJoin);
    ASSERT_TRUE(res.ok());
    expected.push_back(res->size());
  }

  // Fresh document with cold indexes, then hammer it from many threads
  // with the index-based algorithms (first accesses race to build).
  const xml::Document* cold =
      e.AddDocument("cold", workload::GenerateMember(p, e.interner()));
  engine::Engine::GlobalMap cold_globals{
      {"input", {xdm::Item(cold->root())}}};

  std::atomic<int> failures{0};
  auto worker = [&](int tid) {
    for (int round = 0; round < 8; ++round) {
      size_t qi = static_cast<size_t>((tid + round) % 5);
      exec::PatternAlgo algo =
          (tid + round) % 2 == 0 ? exec::PatternAlgo::kStaircase
                                 : exec::PatternAlgo::kTwig;
      auto res = e.Execute(compiled[qi], cold_globals, algo);
      if (!res.ok() || res->size() != expected[qi]) {
        // Same generator parameters and seed -> same document shape, so
        // the cold document must give the same cardinalities.
        ++failures;
      }
    }
  };
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) threads.emplace_back(worker, t);
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

// Two morsel-parallel queries executing concurrently: each Execute spins
// up its own per-query pool (threads = 2), so four workers total hammer
// the same document's indexes while both drivers merge morsel runs.
TEST(ConcurrencyTest, TwoMorselParallelQueriesConcurrently) {
  engine::Engine e;
  workload::MemberParams p;
  p.node_count = 30000;
  p.max_depth = 5;
  p.num_tags = 100;
  p.plant_twigs = 15;
  const xml::Document* d =
      e.AddDocument("m", workload::GenerateMember(p, e.interner()));

  auto q1 = e.Compile("$input//t01[t02]/t03");
  auto q2 = e.Compile("$input/desc::t04[desc::t03]");
  ASSERT_TRUE(q1.ok());
  ASSERT_TRUE(q2.ok());
  engine::Engine::GlobalMap globals{{"input", {xdm::Item(d->root())}}};

  exec::EvalOptions opts;
  opts.threads = 2;
  opts.parallel_min_fanout = 4;

  // Sequential references.
  exec::EvalOptions seq = opts;
  seq.threads = 1;
  auto r1 = e.Execute(*q1, globals, seq);
  auto r2 = e.Execute(*q2, globals, seq);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());

  std::atomic<int> failures{0};
  auto worker = [&](const engine::CompiledQuery& cq, size_t expected) {
    for (int round = 0; round < 8; ++round) {
      auto res = e.Execute(cq, globals, opts);
      if (!res.ok() || res->size() != expected) ++failures;
    }
  };
  std::thread t1(worker, std::cref(*q1), r1->size());
  std::thread t2(worker, std::cref(*q2), r2->size());
  t1.join();
  t2.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(ConcurrencyTest, ParallelStatsAndIndexAccess) {
  engine::Engine e;
  workload::MemberParams p;
  p.node_count = 20000;
  p.max_depth = 6;
  p.num_tags = 50;
  const xml::Document* d =
      e.AddDocument("m", workload::GenerateMember(p, e.interner()));

  std::atomic<int> failures{0};
  auto worker = [&] {
    const auto& stats = d->Stats();
    if (stats.node_count < 20000) ++failures;
    for (int t = 1; t <= 50; ++t) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "t%02d", t);
      Symbol s = e.interner()->Lookup(buf);
      if (s == kInvalidSymbol) continue;
      const auto& stream = d->ElementsByTag(s);
      // Document order invariant must hold regardless of which thread
      // built the index.
      for (size_t i = 0; i + 1 < stream.size(); ++i) {
        if (stream[i]->pre >= stream[i + 1]->pre) ++failures;
      }
    }
  };
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) threads.emplace_back(worker);
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace xqtp
