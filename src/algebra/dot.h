// Graphviz (DOT) rendering of algebra plans, for documentation and
// debugging: one box per operator, solid edges for independent inputs,
// dashed edges for dependent sub-plans.
#ifndef XQTP_ALGEBRA_DOT_H_
#define XQTP_ALGEBRA_DOT_H_

#include <string>

#include "algebra/ops.h"
#include "core/ast.h"

namespace xqtp::algebra {

/// Renders the plan as a DOT digraph. Pipe into `dot -Tsvg` to visualize.
std::string ToDot(const Op& plan, const core::VarTable& vars,
                  const StringInterner& interner);

}  // namespace xqtp::algebra

#endif  // XQTP_ALGEBRA_DOT_H_
