// Query resource governance (exec/governor.h): deadlines, cooperative
// cancellation, and memory budgets must interrupt a running query at the
// next check — at 1 thread and under the morsel-parallel driver — leave
// the engine reusable afterward, and record their telemetry in ExecStats.
// The recursion-depth bounds (XML parser, normalizer, rewriter) ride
// along: adversarial nesting returns kResourceExhausted, never a stack
// overflow.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/exec_stats.h"
#include "core/ast.h"
#include "core/rewrite.h"
#include "engine/engine.h"
#include "exec/governor.h"
#include "exec/pattern_eval.h"
#include "workload/xmark_gen.h"
#include "xml/parser.h"

namespace xqtp::exec {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

constexpr PatternAlgo kAllAlgos[] = {
    PatternAlgo::kNLJoin,    PatternAlgo::kStaircase, PatternAlgo::kTwig,
    PatternAlgo::kStream,    PatternAlgo::kTwigStack, PatternAlgo::kShredded,
};

/// A quadratic self-join over the XMark people: each of the ~N^2 loop
/// iterations evaluates tree patterns, so at factor 0.2 (~500 persons,
/// ~250k iterations) it runs for hundreds of milliseconds even in a
/// Release build — long enough that a 10ms deadline or a mid-query
/// cancel always lands while it is working, at any thread count.
constexpr const char* kHeavyQuery =
    "for $a in $input//person, $b in $input//person "
    "where $a/name = $b/name return $a/emailaddress";

/// A cross product whose output grows quadratically: ~N^2 materialized
/// items blow through a 1 MiB accounted-byte budget early in the loop.
constexpr const char* kCrossProductQuery =
    "for $a in $input//item, $b in $input//item return $b";

class GovernorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workload::XmarkParams p;
    p.factor = 0.2;
    doc_ = engine_.AddDocument("x",
                               workload::GenerateXmark(p, engine_.interner()));
    globals_ = {{"input", {xdm::Item(doc_->root())}}};
  }

  static EvalOptions Opts(PatternAlgo algo, int threads) {
    EvalOptions opts;
    opts.algo = algo;
    opts.threads = threads;
    opts.parallel_min_fanout = 4;  // morselize even small fan-outs
    return opts;
  }

  engine::Engine engine_;
  const xml::Document* doc_;
  engine::Engine::GlobalMap globals_;
};

TEST_F(GovernorTest, DeadlineExceededAtOneAndEightThreads) {
  auto cq = engine_.Compile(kHeavyQuery);
  ASSERT_TRUE(cq.ok()) << cq.status().ToString();
  for (int threads : {1, 8}) {
    EvalOptions opts = Opts(PatternAlgo::kNLJoin, threads);
    opts.deadline = steady_clock::now() + milliseconds(10);
    auto res = engine_.Execute(*cq, globals_, opts);
    ASSERT_FALSE(res.ok()) << "threads=" << threads;
    EXPECT_EQ(res.status().code(), StatusCode::kDeadlineExceeded)
        << "threads=" << threads << ": " << res.status().ToString();
  }
}

TEST_F(GovernorTest, ExpiredDeadlineTripsBeforeAnyWork) {
  auto cq = engine_.Compile("$input//person[emailaddress]/name");
  ASSERT_TRUE(cq.ok());
  EvalOptions opts = Opts(PatternAlgo::kTwig, 1);
  opts.deadline = steady_clock::now() - milliseconds(1);
  ScopedExecStats scope;
  auto res = engine_.Execute(*cq, globals_, opts);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kDeadlineExceeded);
  // The verdict surfaced at the first checks, not after deep evaluation.
  EXPECT_GT(scope.stats().governor_checks, 0);
  EXPECT_LT(scope.stats().governor_checks, 100);
}

TEST_F(GovernorTest, PreCancelledTokenTripsWithinBoundedChecks) {
  auto cq = engine_.Compile(kHeavyQuery);
  ASSERT_TRUE(cq.ok());
  auto token = std::make_shared<CancelToken>();
  token->Cancel();
  EvalOptions opts = Opts(PatternAlgo::kNLJoin, 1);
  opts.cancel_token = token;
  ScopedExecStats scope;
  auto res = engine_.Execute(*cq, globals_, opts);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kCancelled);
  EXPECT_GT(scope.stats().governor_checks, 0);
  EXPECT_LT(scope.stats().governor_checks, 100);
}

// The cancellation race: a separate thread cancels mid-query, for every
// pattern algorithm at 1, 2, and 8 threads. The query must return
// kCancelled (the heavy query cannot finish first), the worker pool must
// drain cleanly, and the engine must run a normal query afterward.
TEST_F(GovernorTest, CrossThreadCancelMidQuery) {
  auto cq = engine_.Compile(kHeavyQuery);
  ASSERT_TRUE(cq.ok());
  auto sanity = engine_.Compile("fn:count($input//person[emailaddress])");
  ASSERT_TRUE(sanity.ok());
  for (PatternAlgo algo : kAllAlgos) {
    for (int threads : {1, 2, 8}) {
      auto token = std::make_shared<CancelToken>();
      EvalOptions opts = Opts(algo, threads);
      opts.cancel_token = token;
      std::thread canceller([token] {
        std::this_thread::sleep_for(milliseconds(10));
        token->Cancel();
      });
      auto res = engine_.Execute(*cq, globals_, opts);
      canceller.join();
      ASSERT_FALSE(res.ok())
          << PatternAlgoName(algo) << " t" << threads
          << ": heavy query finished before the cancel landed";
      EXPECT_EQ(res.status().code(), StatusCode::kCancelled)
          << PatternAlgoName(algo) << " t" << threads << ": "
          << res.status().ToString();
      // Reusable afterward: same engine, fresh options, normal query.
      auto after = engine_.Execute(*sanity, globals_, Opts(algo, threads));
      ASSERT_TRUE(after.ok())
          << PatternAlgoName(algo) << " t" << threads << ": "
          << after.status().ToString();
    }
  }
}

TEST_F(GovernorTest, MemoryBudgetTripsOnCrossProduct) {
  auto cq = engine_.Compile(kCrossProductQuery);
  ASSERT_TRUE(cq.ok()) << cq.status().ToString();
  EvalOptions opts = Opts(PatternAlgo::kNLJoin, 1);
  opts.memory_budget_bytes = 1 << 20;  // 1 MiB
  ScopedExecStats scope;
  auto res = engine_.Execute(*cq, globals_, opts);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kResourceExhausted)
      << res.status().ToString();
  // The high-water mark was recorded and is near the budget (the trip
  // happens at the first charge crossing it).
  EXPECT_GT(scope.stats().peak_memory_bytes, 0);
}

TEST_F(GovernorTest, WithinBudgetQuerySucceedsAndRecordsStats) {
  auto cq = engine_.Compile("$input//person[emailaddress]/name");
  ASSERT_TRUE(cq.ok());
  auto ref = engine_.Execute(*cq, globals_, Opts(PatternAlgo::kTwig, 1));
  ASSERT_TRUE(ref.ok());
  EvalOptions opts = Opts(PatternAlgo::kTwig, 1);
  opts.deadline = steady_clock::now() + std::chrono::hours(1);
  opts.memory_budget_bytes = 1LL << 30;
  ScopedExecStats scope;
  auto res = engine_.Execute(*cq, globals_, opts);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  // Governed and ungoverned runs agree bit for bit.
  ASSERT_EQ(res->size(), ref->size());
  for (size_t i = 0; i < res->size(); ++i) {
    EXPECT_TRUE((*res)[i] == (*ref)[i]) << "item " << i;
  }
  EXPECT_GT(scope.stats().governor_checks, 0);
  EXPECT_GT(scope.stats().peak_memory_bytes, 0);
}

TEST_F(GovernorTest, CancelledParallelRunLeavesPoolReusable) {
  auto cq = engine_.Compile(kHeavyQuery);
  ASSERT_TRUE(cq.ok());
  auto token = std::make_shared<CancelToken>();
  token->Cancel();
  EvalOptions opts = Opts(PatternAlgo::kStaircase, 4);
  opts.cancel_token = token;
  auto res = engine_.Execute(*cq, globals_, opts);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kCancelled);
  // A parallel query right after must morselize and succeed.
  auto cq2 = engine_.Compile("$input//person[emailaddress]//interest");
  ASSERT_TRUE(cq2.ok());
  auto after = engine_.Execute(*cq2, globals_, Opts(PatternAlgo::kStaircase, 4));
  ASSERT_TRUE(after.ok()) << after.status().ToString();
}

TEST_F(GovernorTest, CompileTimeDeadline) {
  engine::CompileOptions copts;
  copts.deadline = steady_clock::now() - milliseconds(1);
  auto cq = engine_.Compile(kHeavyQuery, copts);
  ASSERT_FALSE(cq.ok());
  EXPECT_EQ(cq.status().code(), StatusCode::kDeadlineExceeded)
      << cq.status().ToString();
}

// ---- Recursion-depth bounds (satellite) ------------------------------------

TEST(DepthBoundsTest, XmlParserRejectsPathologicalNesting) {
  std::string open, close;
  for (int i = 0; i < 1100; ++i) {
    open += "<a>";
    close += "</a>";
  }
  StringInterner interner;
  auto doc = xml::Parse(open + close, &interner);
  ASSERT_FALSE(doc.ok());
  EXPECT_EQ(doc.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(doc.status().ToString().find("depth"), std::string::npos)
      << doc.status().ToString();
}

TEST(DepthBoundsTest, XmlParserAcceptsReasonableNesting) {
  std::string open, close;
  for (int i = 0; i < 500; ++i) {
    open += "<a>";
    close += "</a>";
  }
  StringInterner interner;
  auto doc = xml::Parse(open + close, &interner);
  EXPECT_TRUE(doc.ok()) << doc.status().ToString();
}

TEST(DepthBoundsTest, NormalizerRejectsDeepExpressionNesting) {
  // A 1101-term additive chain: the surface parser builds it iteratively
  // (left-deep AST, O(1) parser stack), so the normalizer's recursion is
  // the first place the 1000-level cap can and must fire.
  std::string query = "1";
  for (int i = 0; i < 1100; ++i) query += " + 1";
  engine::Engine engine;
  auto cq = engine.Compile(query);
  ASSERT_FALSE(cq.ok());
  EXPECT_EQ(cq.status().code(), StatusCode::kResourceExhausted)
      << cq.status().ToString();
  EXPECT_NE(cq.status().ToString().find("depth"), std::string::npos);
}

TEST(DepthBoundsTest, RewriterRejectsDeepCoreTrees) {
  // Build a 2600-deep Core let-chain iteratively (no recursion in the
  // test either) and hand it straight to the rewriter.
  core::VarTable vars;
  core::VarId v = vars.Fresh("x");
  core::CoreExprPtr e = core::MakeVar(v);
  for (int i = 0; i < 2600; ++i) {
    e = core::MakeLet(v, core::MakeLiteral(xdm::Item(int64_t{1})),
                      std::move(e));
  }
  core::RewriteOptions ropts;
  ropts.verify = false;  // the verifier recurses; the bound must fire first
  auto res = core::RewriteToTPNF(std::move(e), &vars, ropts);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kResourceExhausted)
      << res.status().ToString();
}

}  // namespace
}  // namespace xqtp::exec
