#include "algebra/dot.h"

#include "algebra/printer.h"

namespace xqtp::algebra {

namespace {

std::string EscapeDot(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

class DotWriter {
 public:
  DotWriter(const core::VarTable& vars, const StringInterner& interner)
      : vars_(vars), interner_(interner) {}

  std::string Render(const Op& plan) {
    out_ += "digraph plan {\n";
    out_ += "  rankdir=BT;\n";
    out_ += "  node [shape=box, fontname=\"monospace\", fontsize=10];\n";
    Visit(plan);
    out_ += "}\n";
    return std::move(out_);
  }

 private:
  std::string Label(const Op& op) {
    switch (op.kind) {
      case OpKind::kTupleTreePattern:
        return "TupleTreePattern\\n" + EscapeDot(op.tp.ToString(interner_));
      case OpKind::kTreeJoin:
        return "TreeJoin\\n" +
               EscapeDot(StepToString(op.axis, op.test, interner_));
      case OpKind::kMapFromItem:
        return "MapFromItem [" + interner_.NameOf(op.field) + " : IN]";
      case OpKind::kMapToItem:
        return "MapToItem";
      case OpKind::kSelect:
        return "Select";
      case OpKind::kDdo:
        return "fs:ddo";
      case OpKind::kFieldAccess:
        return "IN#" + interner_.NameOf(op.field);
      case OpKind::kInputItem:
      case OpKind::kInputTuple:
        return "IN";
      case OpKind::kGlobalVar:
      case OpKind::kScopedVar:
        return "$" + vars_.NameOf(op.var);
      case OpKind::kConst:
        return EscapeDot(op.literal.StringValue());
      case OpKind::kFnCall:
        return core::CoreFnName(op.fn);
      case OpKind::kCompare:
        return std::string("Compare ") + xdm::CompareOpName(op.cmp_op);
      case OpKind::kArith:
        return std::string("Arith ") + xdm::ArithOpName(op.arith_op);
      case OpKind::kAnd:
        return "and";
      case OpKind::kOr:
        return "or";
      case OpKind::kSequence:
        return "Sequence";
      case OpKind::kIf:
        return "If";
      case OpKind::kForEach:
        return "ForEach $" + vars_.NameOf(op.var) +
               (op.pos_var != core::kNoVar
                    ? " at $" + vars_.NameOf(op.pos_var)
                    : "");
      case OpKind::kLetIn:
        return "LetIn $" + vars_.NameOf(op.var);
      case OpKind::kTypeswitch:
        return "Typeswitch";
    }
    return "?";
  }

  int Visit(const Op& op) {
    int id = next_id_++;
    out_ += "  n" + std::to_string(id) + " [label=\"" + Label(op) + "\"";
    if (op.kind == OpKind::kTupleTreePattern) {
      out_ += ", style=filled, fillcolor=\"#cde3f6\"";
    } else if (op.kind == OpKind::kTreeJoin) {
      out_ += ", style=filled, fillcolor=\"#f6e3cd\"";
    }
    out_ += "];\n";
    for (const OpPtr& in : op.inputs) {
      int child = Visit(*in);
      out_ += "  n" + std::to_string(child) + " -> n" + std::to_string(id) +
              ";\n";
    }
    if (op.dep) {
      int child = Visit(*op.dep);
      out_ += "  n" + std::to_string(child) + " -> n" + std::to_string(id) +
              " [style=dashed, label=\"dep\"];\n";
    }
    if (op.dep2) {
      int child = Visit(*op.dep2);
      out_ += "  n" + std::to_string(child) + " -> n" + std::to_string(id) +
              " [style=dashed, label=\"where\"];\n";
    }
    return id;
  }

  const core::VarTable& vars_;
  const StringInterner& interner_;
  std::string out_;
  int next_id_ = 0;
};

}  // namespace

std::string ToDot(const Op& plan, const core::VarTable& vars,
                  const StringInterner& interner) {
  DotWriter w(vars, interner);
  return w.Render(plan);
}

}  // namespace xqtp::algebra
