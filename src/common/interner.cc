#include "common/interner.h"

#include <cassert>

namespace xqtp {

Symbol StringInterner::Intern(std::string_view name) {
  assert(!FrozenOnThisThread() &&
         "StringInterner::Intern called during execution (an "
         "ExecutionFreeze is active on this thread) — all names must be "
         "interned during parse/compile/document build");
  MutexLock lock(&mu_);
  auto it = map_.find(std::string(name));
  if (it != map_.end()) return it->second;
  Symbol sym = static_cast<Symbol>(names_.size());
  names_.emplace_back(name);
  map_.emplace(names_.back(), sym);
  return sym;
}

Symbol StringInterner::Lookup(std::string_view name) const {
  MutexLock lock(&mu_);
  auto it = map_.find(std::string(name));
  return it == map_.end() ? kInvalidSymbol : it->second;
}

const std::string& StringInterner::NameOf(Symbol sym) const {
  MutexLock lock(&mu_);
  return names_.at(static_cast<size_t>(sym));
}

size_t StringInterner::size() const {
  MutexLock lock(&mu_);
  return names_.size();
}

}  // namespace xqtp
