// Plan explorer: shows how the compiler treats the paper's Figure 1
// queries (or a query passed on the command line) — which parts become
// TupleTreePattern operators and which operators must remain.
//
//   $ ./build/examples/plan_explorer                 # the Figure 1 corpus
//   $ ./build/examples/plan_explorer '$d//a[b]/c'    # your own query
#include <cstdio>

#include "engine/engine.h"

namespace {

constexpr const char* kFigure1[] = {
    // Q1a, Q1b, Q1c: one tree pattern, three syntaxes.
    "$d//person[emailaddress]/name",
    "(for $x in $d//person[emailaddress] return $x)/name",
    "let $x := for $y in $d//person where $y/emailaddress return $y "
    "return $x/name",
    // Q2: two tree patterns connected by a selection on the name value.
    "$d//person[name = \"John\"]/emailaddress",
    // Q3, Q4: positional predicates need special treatment.
    "$d//person[1]/name",
    "$d//person[name = \"John\"]/emailaddress[1]",
    // Q5: NOT equivalent to Q1a — two patterns composed through a map.
    "for $x in $d//person[emailaddress] return $x/name",
};

void Explore(xqtp::engine::Engine* engine, const char* query) {
  std::printf("======================================================\n");
  auto cq = engine->Compile(query);
  if (!cq.ok()) {
    std::printf("query: %s\ncompile error: %s\n", query,
                cq.status().ToString().c_str());
    return;
  }
  std::printf("%s", engine->Explain(*cq).c_str());
  xqtp::algebra::PlanStats stats = cq->Stats();
  std::printf(
      "\nplan stats: %d TupleTreePattern op(s), largest pattern %d step(s), "
      "%d navigational TreeJoin(s), %d scoped map(s), %d ddo(s)\n\n",
      stats.tree_pattern_ops, stats.max_pattern_steps, stats.tree_join_ops,
      stats.scoped_ops, stats.ddo_ops);
}

}  // namespace

int main(int argc, char** argv) {
  xqtp::engine::Engine engine;
  if (argc > 1) {
    for (int i = 1; i < argc; ++i) Explore(&engine, argv[i]);
    return 0;
  }
  std::printf("The Figure 1 corpus of \"Put a Tree Pattern in Your "
              "Algebra\":\n\n");
  for (const char* q : kFigure1) Explore(&engine, q);
  return 0;
}
