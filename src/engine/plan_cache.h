// Sharded compiled-plan cache with single-flight compilation.
//
// The ROADMAP north-star is serving heavy repeated traffic: the same
// pattern queries arrive millions of times, and for small/indexed queries
// the parse -> normalize -> TPNF' rewrite -> compile -> optimize pipeline
// dominates served latency. The cache amortizes that pipeline — in the
// spirit of Pathfinder-style relational XQuery compilers and native XML
// engines (PAPERS.md) — behind a canonical fingerprint (see
// common/fingerprint.h and Engine::Fingerprint): whitespace/comment-
// insensitive query text plus every CompileOptions field that affects
// plan shape. Verification and translation validation (PRs 1-5) run once,
// at fill; a hit returns the already-verified immutable plan.
//
// Design:
//  - 16 shards, one common::Mutex each (thread-safety annotated), keyed
//    by the fingerprint's low bits: concurrent serving threads touching
//    different queries rarely contend on a lock.
//  - values are std::shared_ptr<const CompiledQuery>: a hit is safe to
//    execute on any number of threads while eviction or Clear() drops the
//    cache's reference (executions keep theirs alive). CompiledQuery is
//    immutable after build — tools/lint.py (rule compiled-query-immutable)
//    keeps its internals writable only by the build path.
//  - SINGLE-FLIGHT fills: N concurrent misses on one key compile once.
//    The first miss claims an in-flight latch and compiles outside the
//    shard lock; the other N-1 block on the latch's CondVar and receive
//    the published plan (or the compile error — errors are never cached).
//    This is the stampede protection a cold restart under heavy repeated
//    traffic needs: without it, every worker recompiles the same hot
//    query simultaneously.
//  - byte-accounted LRU per shard: each entry is charged its
//    CompiledQuery::MemoryUsage(); inserting past the shard's budget
//    (capacity_bytes / 16) evicts least-recently-used entries. A plan
//    larger than a whole shard budget is returned but not cached.
//  - explicit invalidation: Erase(key), Clear(), and BumpGeneration()
//    (used when EngineOptions change): entries stamped with an older
//    generation are treated as misses and dropped lazily.
#ifndef XQTP_ENGINE_PLAN_CACHE_H_
#define XQTP_ENGINE_PLAN_CACHE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace xqtp::engine {

class CompiledQuery;

inline constexpr int kPlanCacheShards = 16;

struct PlanCacheConfig {
  /// Total byte budget across all shards (each shard gets 1/16th).
  /// <= 0 disables caching: every GetOrCompile compiles (still
  /// single-flight deduplicated while concurrent).
  int64_t capacity_bytes = 64ll << 20;
};

/// Point-in-time snapshot of the cache counters (Engine::PlanCacheStats).
struct PlanCacheStats {
  int64_t hits = 0;
  int64_t misses = 0;               ///< lookups that had to compile or wait
  int64_t fills = 0;                ///< compilations actually executed
  int64_t fill_errors = 0;          ///< fills whose compilation failed
  int64_t evictions = 0;            ///< LRU evictions (not Erase/Clear)
  int64_t single_flight_waits = 0;  ///< misses served by another thread's fill
  int64_t entries = 0;
  int64_t bytes = 0;
  int64_t capacity_bytes = 0;
  uint64_t generation = 0;
  struct Shard {
    int64_t entries = 0;
    int64_t bytes = 0;
  };
  std::vector<Shard> shards;  ///< per-shard occupancy, kPlanCacheShards wide
};

/// What Explain reports about a key without touching LRU order.
struct PlanCachePeek {
  bool present = false;
  int64_t hits = 0;   ///< hits served by the present entry
  int64_t bytes = 0;  ///< the entry's accounted size
};

class PlanCache {
 public:
  using PlanPtr = std::shared_ptr<const CompiledQuery>;
  /// Compiles one plan; invoked outside any shard lock. Must be safe to
  /// call concurrently for *different* keys (the engine serializes the
  /// analysis oracle itself when it is enabled).
  using BuildFn = std::function<Result<PlanPtr>()>;

  explicit PlanCache(const PlanCacheConfig& config = {});
  ~PlanCache();
  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Returns the cached plan for `key`, or compiles it via `build` with
  /// single-flight deduplication: concurrent callers of one key run
  /// `build` exactly once and all receive its outcome. Compile errors
  /// propagate to every waiter and are not cached.
  [[nodiscard]]
  Result<PlanPtr> GetOrCompile(uint64_t key, const BuildFn& build);

  /// Drops one key's entry (an in-flight fill for it is unaffected and
  /// will re-insert). Returns true when an entry was present.
  bool Erase(uint64_t key);

  /// Drops every cached entry.
  void Clear();

  /// Invalidates all current entries lazily: they remain until looked up
  /// or evicted, but any lookup treats them as misses. Used when
  /// EngineOptions change out from under compiled plans.
  void BumpGeneration();

  PlanCacheStats Snapshot() const;

  /// Read-only probe for Explain: no LRU touch, no stat changes.
  PlanCachePeek Peek(uint64_t key) const;

 private:
  struct InFlight {
    /// All fields are guarded by the owning shard's mutex (a dynamic
    /// association the static annotations cannot express).
    bool done = false;
    Result<PlanPtr> outcome{Status::Internal("plan-cache fill pending")};
    int64_t waiters = 0;
    CondVar cv;
  };

  struct Entry {
    PlanPtr plan;
    int64_t bytes = 0;
    int64_t hits = 0;
    uint64_t generation = 0;
    std::list<uint64_t>::iterator lru_it;
  };

  struct Shard {
    mutable Mutex mu;
    std::unordered_map<uint64_t, Entry> entries GUARDED_BY(mu);
    /// Front = most recently used; keys mirror `entries`.
    std::list<uint64_t> lru GUARDED_BY(mu);
    std::unordered_map<uint64_t, std::shared_ptr<InFlight>> inflight
        GUARDED_BY(mu);
    int64_t bytes GUARDED_BY(mu) = 0;
    int64_t hits GUARDED_BY(mu) = 0;
    int64_t misses GUARDED_BY(mu) = 0;
    int64_t fills GUARDED_BY(mu) = 0;
    int64_t fill_errors GUARDED_BY(mu) = 0;
    int64_t evictions GUARDED_BY(mu) = 0;
    int64_t single_flight_waits GUARDED_BY(mu) = 0;
  };

  Shard& ShardFor(uint64_t key) {
    return shards_[key % static_cast<uint64_t>(kPlanCacheShards)];
  }

  /// Inserts (or replaces) `key` under the shard's byte budget, evicting
  /// LRU entries as needed. Oversized plans are skipped.
  void Insert(Shard& s, uint64_t key, PlanPtr plan, int64_t bytes)
      REQUIRES(s.mu);

  const int64_t shard_capacity_;
  std::atomic<uint64_t> generation_{0};
  std::vector<Shard> shards_;
};

}  // namespace xqtp::engine

#endif  // XQTP_ENGINE_PLAN_CACHE_H_
