// Execution work counters: how much of the document / index an algorithm
// actually touched. The paper's Section 5 arguments are all about this
// quantity ("NLJoin visits a very limited portion of the tree", "SCJoins
// and TwigJoins scan the index once for each step") — the counters make
// them observable.
//
// Collection is opt-in and scoped:
//   xqtp::ScopedExecStats scope;
//   ... evaluate ...
//   scope.stats().index_entries_scanned ...
#ifndef XQTP_COMMON_EXEC_STATS_H_
#define XQTP_COMMON_EXEC_STATS_H_

#include <cstdint>
#include <string>

namespace xqtp {

struct ExecStats {
  /// Tree nodes touched by cursor navigation (NL) or stream events
  /// (streaming evaluation).
  int64_t nodes_visited = 0;
  /// Per-tag index entries scanned by the Staircase / Twig merges.
  int64_t index_entries_scanned = 0;
  /// Binary searches (skips) into index streams.
  int64_t index_skips = 0;
  /// TupleTreePattern evaluations (one per input tuple per operator).
  int64_t pattern_evals = 0;
  /// Cooperative governor checks performed (exec/governor.h): deadline /
  /// cancellation / budget polls at operator boundaries, inner-loop
  /// strides, and morsel boundaries. Zero when no governor was active.
  int64_t governor_checks = 0;
  /// High-water mark of bytes accounted against the governor's memory
  /// budget during the execution. Zero when no governor was active.
  int64_t peak_memory_bytes = 0;
  /// TupleBatches produced by the columnar evaluator (exec/tuple.h):
  /// one per batch yielded by an operator kernel, including zero-copy
  /// selection views. Zero under row-at-a-time execution.
  int64_t batches = 0;
  /// Tuples physically written — rows whose field sequences were copied
  /// or built, whether into a Tuple (row mode, row bridge) or into fresh
  /// batch columns. Rows passed along by column sharing do not count;
  /// the batch/row gap in this counter is the point of the layout.
  int64_t tuples_materialized = 0;
  /// Shared / filtered / broadcast columns deep-copied because a
  /// consumer needed flat owned storage (TupleBatch::Flatten — the
  /// copy-on-write "write"). One count per column gathered.
  int64_t cow_column_copies = 0;

  /// Adds another collector's counters into this one. The morsel driver
  /// (exec/parallel.h) gives each worker morsel its own scope and merges
  /// the slots into the calling scope on join, so the counters stay exact
  /// under parallel execution. peak_memory_bytes merges by maximum — it
  /// is a high-water mark of one shared accountant, not additive work.
  void Add(const ExecStats& other) {
    nodes_visited += other.nodes_visited;
    index_entries_scanned += other.index_entries_scanned;
    index_skips += other.index_skips;
    pattern_evals += other.pattern_evals;
    governor_checks += other.governor_checks;
    if (other.peak_memory_bytes > peak_memory_bytes) {
      peak_memory_bytes = other.peak_memory_bytes;
    }
    batches += other.batches;
    tuples_materialized += other.tuples_materialized;
    cow_column_copies += other.cow_column_copies;
  }

  std::string ToString() const;
};

/// The collector for the current scope, or nullptr when collection is off.
ExecStats* CurrentExecStats();

/// RAII enabling of collection. Scopes nest; inner scopes shadow outer
/// ones (the inner scope's counters are NOT added to the outer scope).
class ScopedExecStats {
 public:
  ScopedExecStats();
  ~ScopedExecStats();
  ScopedExecStats(const ScopedExecStats&) = delete;
  ScopedExecStats& operator=(const ScopedExecStats&) = delete;

  const ExecStats& stats() const { return stats_; }

 private:
  ExecStats stats_;
  ExecStats* previous_;
};

/// Counting helpers (no-ops when collection is off).
inline void CountNodesVisited(int64_t n) {
  if (ExecStats* s = CurrentExecStats()) s->nodes_visited += n;
}
inline void CountIndexEntries(int64_t n) {
  if (ExecStats* s = CurrentExecStats()) s->index_entries_scanned += n;
}
inline void CountIndexSkip() {
  if (ExecStats* s = CurrentExecStats()) ++s->index_skips;
}
inline void CountPatternEval() {
  if (ExecStats* s = CurrentExecStats()) ++s->pattern_evals;
}
inline void CountBatch() {
  if (ExecStats* s = CurrentExecStats()) ++s->batches;
}
inline void CountTuplesMaterialized(int64_t n) {
  if (ExecStats* s = CurrentExecStats()) s->tuples_materialized += n;
}
inline void CountCowColumnCopies(int64_t n) {
  if (ExecStats* s = CurrentExecStats()) s->cow_column_copies += n;
}

}  // namespace xqtp

#endif  // XQTP_COMMON_EXEC_STATS_H_
