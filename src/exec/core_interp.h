// Direct interpreter for Core expressions — the semantics reference the
// tests compare every compiled/optimized plan against.
#ifndef XQTP_EXEC_CORE_INTERP_H_
#define XQTP_EXEC_CORE_INTERP_H_

#include "common/status.h"
#include "core/ast.h"
#include "exec/evaluator.h"

namespace xqtp::exec {

/// Evaluates a Core expression under global bindings.
[[nodiscard]]
Result<xdm::Sequence> EvaluateCore(const core::CoreExpr& e,
                                   const core::VarTable& vars,
                                   const Bindings& bindings);

}  // namespace xqtp::exec

#endif  // XQTP_EXEC_CORE_INTERP_H_
