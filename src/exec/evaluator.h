// Evaluation of algebra plans. Tuple operators are evaluated set-at-a-time
// (materialized tuple sequences); TupleTreePattern dispatches to the
// configured physical algorithm (NLJoin / Staircase / Twig).
#ifndef XQTP_EXEC_EVALUATOR_H_
#define XQTP_EXEC_EVALUATOR_H_

#include <unordered_map>

#include "algebra/ops.h"
#include "common/status.h"
#include "core/ast.h"
#include "exec/pattern_eval.h"
#include "exec/tuple.h"

namespace xqtp::exec {

struct EvalOptions {
  PatternAlgo algo = PatternAlgo::kNLJoin;
};

/// Values for the query's global variables.
using Bindings = std::unordered_map<core::VarId, xdm::Sequence>;

/// Evaluates a compiled (item) plan against global bindings.
Result<xdm::Sequence> Evaluate(const algebra::Op& plan,
                               const core::VarTable& vars,
                               const Bindings& bindings,
                               const EvalOptions& opts = {});

}  // namespace xqtp::exec

#endif  // XQTP_EXEC_EVALUATOR_H_
