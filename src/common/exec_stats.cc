#include "common/exec_stats.h"

namespace xqtp {

namespace {
thread_local ExecStats* g_current = nullptr;
}  // namespace

std::string ExecStats::ToString() const {
  return "nodes_visited=" + std::to_string(nodes_visited) +
         " index_entries=" + std::to_string(index_entries_scanned) +
         " index_skips=" + std::to_string(index_skips) +
         " pattern_evals=" + std::to_string(pattern_evals) +
         " governor_checks=" + std::to_string(governor_checks) +
         " peak_memory_bytes=" + std::to_string(peak_memory_bytes) +
         " batches=" + std::to_string(batches) +
         " tuples_materialized=" + std::to_string(tuples_materialized) +
         " cow_column_copies=" + std::to_string(cow_column_copies);
}

ExecStats* CurrentExecStats() { return g_current; }

ScopedExecStats::ScopedExecStats() : previous_(g_current) {
  g_current = &stats_;
}

ScopedExecStats::~ScopedExecStats() { g_current = previous_; }

}  // namespace xqtp
