#include "exec/governor.h"

#include <string>

namespace xqtp::exec {

namespace {
thread_local QueryGovernor* g_current = nullptr;
}  // namespace

QueryGovernor* CurrentGovernor() { return g_current; }

ScopedGovernor::ScopedGovernor(QueryGovernor* governor)
    : previous_(g_current) {
  g_current = governor;
}

ScopedGovernor::~ScopedGovernor() { g_current = previous_; }

Status QueryGovernor::Trip(Status s) {
  // First trip wins: a deadline expiring while a cancel unwinds must not
  // flip the query's verdict between checks.
  int expected = 0;
  tripped_.compare_exchange_strong(expected, static_cast<int>(s.code()),
                                   std::memory_order_relaxed);
  StatusCode code = static_cast<StatusCode>(
      tripped_.load(std::memory_order_relaxed));
  if (code == s.code()) return s;
  switch (code) {
    case StatusCode::kCancelled:
      return Status::Cancelled("query cancelled");
    case StatusCode::kDeadlineExceeded:
      return Status::DeadlineExceeded("query deadline exceeded");
    default:
      return Status::ResourceExhausted("query memory budget exceeded");
  }
}

Status QueryGovernor::Check() {
  checks_.fetch_add(1, std::memory_order_relaxed);
  int tripped = tripped_.load(std::memory_order_relaxed);
  if (tripped != 0) return Trip(Status::OK());
  if (limits_.cancel_token != nullptr && limits_.cancel_token->cancelled()) {
    return Trip(Status::Cancelled("query cancelled"));
  }
  if (limits_.deadline.has_value() &&
      std::chrono::steady_clock::now() >= *limits_.deadline) {
    return Trip(Status::DeadlineExceeded("query deadline exceeded"));
  }
  if (limits_.memory_budget_bytes > 0 &&
      accounted_.load(std::memory_order_relaxed) >
          limits_.memory_budget_bytes) {
    return Trip(Status::ResourceExhausted(
        "query memory budget exceeded: " +
        std::to_string(accounted_.load(std::memory_order_relaxed)) +
        " bytes accounted against a budget of " +
        std::to_string(limits_.memory_budget_bytes)));
  }
  return Status::OK();
}

Status QueryGovernor::Charge(int64_t bytes) {
  int64_t now = accounted_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  // Lock-free high-water mark.
  int64_t peak = peak_.load(std::memory_order_relaxed);
  while (now > peak &&
         !peak_.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
  }
  if (limits_.memory_budget_bytes > 0 && now > limits_.memory_budget_bytes) {
    return Trip(Status::ResourceExhausted(
        "query memory budget exceeded: " + std::to_string(now) +
        " bytes accounted against a budget of " +
        std::to_string(limits_.memory_budget_bytes)));
  }
  return Status::OK();
}

}  // namespace xqtp::exec
