# Empty dependencies file for xqtp_shell.
# This may be replaced when dependencies are built.
