// Shared helpers for the benchmark binaries: lazily-built workload
// documents and compiled-query execution wrappers.
#ifndef XQTP_BENCH_BENCH_COMMON_H_
#define XQTP_BENCH_BENCH_COMMON_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "engine/engine.h"
#include "workload/member_gen.h"
#include "workload/xmark_gen.h"

namespace xqtp::bench {

/// One engine per binary; documents and compiled queries are cached in it.
inline engine::Engine& SharedEngine() {
  static engine::Engine* e = new engine::Engine();
  return *e;
}

inline const xml::Document& MemberDoc(const std::string& name, int node_count,
                                      int max_depth, int num_tags,
                                      int plant_twigs = 0) {
  engine::Engine& e = SharedEngine();
  const xml::Document* d = e.FindDocument(name);
  if (d == nullptr) {
    workload::MemberParams p;
    p.node_count = node_count;
    p.max_depth = max_depth;
    p.num_tags = num_tags;
    p.plant_twigs = plant_twigs;
    d = e.AddDocument(name, workload::GenerateMember(p, e.interner()));
  }
  return *d;
}

inline const xml::Document& XmarkDoc(const std::string& name, double factor) {
  engine::Engine& e = SharedEngine();
  const xml::Document* d = e.FindDocument(name);
  if (d == nullptr) {
    workload::XmarkParams p;
    p.factor = factor;
    d = e.AddDocument(name, workload::GenerateXmark(p, e.interner()));
  }
  return *d;
}

/// Compiles once, executes per iteration, reports result cardinality.
inline void RunQueryBenchmark(benchmark::State& state, const std::string& q,
                              const xml::Document& doc,
                              exec::PatternAlgo algo,
                              engine::PlanChoice plan_choice =
                                  engine::PlanChoice::kOptimized,
                              const engine::CompileOptions& copts = {}) {
  engine::Engine& e = SharedEngine();
  auto cq = e.Compile(q, copts);
  if (!cq.ok()) {
    state.SkipWithError(cq.status().ToString().c_str());
    return;
  }
  engine::Engine::GlobalMap globals;
  for (const std::string& g : cq->GlobalNames()) {
    globals[g] = {xdm::Item(doc.root())};
  }
  size_t result_size = 0;
  for (auto _ : state) {
    auto res = e.Execute(*cq, globals, algo, plan_choice);
    if (!res.ok()) {
      state.SkipWithError(res.status().ToString().c_str());
      return;
    }
    result_size = res->size();
    benchmark::DoNotOptimize(res);
  }
  state.counters["results"] =
      benchmark::Counter(static_cast<double>(result_size));
}

inline const char* AlgoTag(exec::PatternAlgo algo) {
  switch (algo) {
    case exec::PatternAlgo::kNLJoin:
      return "NL";
    case exec::PatternAlgo::kTwig:
      return "TJ";
    case exec::PatternAlgo::kStaircase:
      return "SC";
    case exec::PatternAlgo::kStream:
      return "ST";
    case exec::PatternAlgo::kTwigStack:
      return "TS";
    case exec::PatternAlgo::kShredded:
      return "SH";
    case exec::PatternAlgo::kCostBased:
      return "CB";
  }
  return "?";
}

}  // namespace xqtp::bench

#endif  // XQTP_BENCH_BENCH_COMMON_H_
