// Holistic twig-join evaluation of tree patterns.
//
// The algorithm processes every pattern edge with ordered merges over
// document-ordered streams — no per-node index probes — which is the
// holistic property of TwigJoin [4]: per evaluation, each stream is
// scanned once per pattern edge, with binary-searched skipping into the
// context subtrees (so a TupleTreePattern embedded in a map, evaluated
// once per tuple, only touches the tuple's region of the index).
//
// Three phases per evaluation:
//   1. top-down candidate generation: cand(q) = stream(q) restricted to
//      nodes reachable from the parent step's candidates via q's axis;
//   2. bottom-up refinement: drop candidates that do not satisfy the
//      predicate branches / main-path continuation (structural merge
//      semijoins);
//   3. a final top-down reachability pass over the refined sets, which
//      yields the extraction set directly in document order.
#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/fault_injection.h"
#include "exec/exec_stats.h"
#include "exec/governor.h"
#include "exec/pattern_eval.h"
#include "xdm/sequence_ops.h"
#include "xml/document.h"

namespace xqtp::exec {

namespace {

using pattern::PatternNode;
using pattern::PatternNodePtr;
using pattern::TreePattern;
using xml::Document;
using xml::Node;

using NodeVec = std::vector<const Node*>;

const NodeVec& StreamFor(const Document& doc, Axis axis,
                         const NodeTest& test) {
  static const NodeVec kEmpty;
  if (axis == Axis::kAttribute) {
    if (test.kind == NodeTestKind::kName) {
      return doc.AttributesByName(test.name);
    }
    return kEmpty;
  }
  switch (test.kind) {
    case NodeTestKind::kName:
      return doc.ElementsByTag(test.name);
    case NodeTestKind::kAnyName:
      return doc.AllElements();
    case NodeTestKind::kText:
      return doc.TextNodes();
    case NodeTestKind::kAnyNode:
      return doc.AllNodes();
  }
  return doc.AllNodes();
}

/// Removes nodes covered by an earlier node's subtree (input pre-sorted).
NodeVec PruneCovered(const NodeVec& v) {
  NodeVec kept;
  kept.reserve(v.size());
  for (const Node* n : v) {
    if (!kept.empty() && (kept.back() == n || kept.back()->IsAncestorOf(*n))) {
      continue;
    }
    kept.push_back(n);
  }
  return kept;
}

/// The part of `stream` lying inside the subtrees of `roots` (pre-sorted,
/// need not be disjoint — covered roots are pruned first). One binary
/// search plus a contiguous scan per disjoint region.
NodeVec WindowIntoSubtrees(const NodeVec& stream, const NodeVec& roots) {
  NodeVec out;
  size_t pos = 0;
  // The contiguous region scans are the twig join's hot loop; a tripped
  // governor truncates them and EvalPatternTwig's final poll surfaces the
  // latched verdict, discarding the partial sets.
  GovernorTicker gov;
  for (const Node* r : PruneCovered(roots)) {
    CountIndexSkip();
    auto it = std::upper_bound(
        stream.begin() + static_cast<ptrdiff_t>(pos), stream.end(), r->pre,
        [](int32_t pre, const Node* n) { return pre < n->pre; });
    pos = static_cast<size_t>(it - stream.begin());
    while (pos < stream.size() && stream[pos]->post < r->post) {
      if (!gov.Tick()) return out;
      out.push_back(stream[pos]);
      ++pos;
      CountIndexEntries(1);
    }
  }
  return out;
}

/// Keep a in A iff some d in D lies below a along `axis` (both sorted).
NodeVec SemijoinDown(const NodeVec& a_vec, const NodeVec& d_vec, Axis axis) {
  NodeVec out;
  switch (axis) {
    case Axis::kChild:
    case Axis::kAttribute: {
      std::unordered_set<const Node*> parents;
      parents.reserve(d_vec.size());
      for (const Node* d : d_vec) {
        if (d->parent != nullptr) parents.insert(d->parent);
      }
      for (const Node* a : a_vec) {
        if (parents.count(a) > 0) out.push_back(a);
      }
      break;
    }
    case Axis::kDescendant:
    case Axis::kDescendantOrSelf: {
      std::unordered_set<const Node*> selves;
      if (axis == Axis::kDescendantOrSelf) {
        selves.insert(d_vec.begin(), d_vec.end());
      }
      for (const Node* a : a_vec) {
        if (axis == Axis::kDescendantOrSelf && selves.count(a) > 0) {
          out.push_back(a);
          continue;
        }
        // Descendants of `a` are contiguous in preorder: the first stream
        // node after a.pre is inside a's subtree iff any descendant is.
        auto it = std::upper_bound(
            d_vec.begin(), d_vec.end(), a->pre,
            [](int32_t pre, const Node* n) { return pre < n->pre; });
        if (it != d_vec.end() && (*it)->post < a->post) out.push_back(a);
      }
      break;
    }
    case Axis::kSelf: {
      std::unordered_set<const Node*> set(d_vec.begin(), d_vec.end());
      for (const Node* a : a_vec) {
        if (set.count(a) > 0) out.push_back(a);
      }
      break;
    }
    case Axis::kParent: {
      std::unordered_set<const Node*> set(d_vec.begin(), d_vec.end());
      for (const Node* a : a_vec) {
        if (a->parent != nullptr && set.count(a->parent) > 0) {
          out.push_back(a);
        }
      }
      break;
    }
    case Axis::kAncestor:
    case Axis::kAncestorOrSelf:
    case Axis::kFollowingSibling:
    case Axis::kPrecedingSibling:
      // Non-pattern axes never reach the twig join (NL fallback).
      break;
  }
  return out;
}

/// Nodes matching `test` reachable from some node of `ctx` along `axis`,
/// computed with subtree windowing over the per-tag stream (document
/// order preserved). Self-membership tests use the node test directly, so
/// the cost is bounded by the windows, never the whole stream.
NodeVec ReachableVia(const Document& doc, Axis axis, const NodeTest& test,
                     const NodeVec& ctx) {
  const NodeVec& stream = StreamFor(doc, axis, test);
  switch (axis) {
    case Axis::kDescendant:
      return WindowIntoSubtrees(stream, ctx);
    case Axis::kDescendantOrSelf: {
      NodeVec window = WindowIntoSubtrees(stream, ctx);
      NodeVec selves;
      for (const Node* c : ctx) {
        if (xdm::MatchesTest(c, axis, test)) selves.push_back(c);
      }
      if (selves.empty()) return window;
      NodeVec merged;
      merged.reserve(window.size() + selves.size());
      std::merge(window.begin(), window.end(), selves.begin(), selves.end(),
                 std::back_inserter(merged), xml::DocOrderLess);
      merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
      return merged;
    }
    case Axis::kChild:
    case Axis::kAttribute: {
      NodeVec window = WindowIntoSubtrees(stream, ctx);
      std::unordered_set<const Node*> parents(ctx.begin(), ctx.end());
      NodeVec out;
      out.reserve(window.size());
      for (const Node* d : window) {
        if (d->parent != nullptr && parents.count(d->parent) > 0) {
          out.push_back(d);
        }
      }
      return out;
    }
    case Axis::kSelf: {
      NodeVec out;
      for (const Node* c : ctx) {
        if (xdm::MatchesTest(c, axis, test)) out.push_back(c);
      }
      return out;
    }
    case Axis::kParent: {
      NodeVec out;
      for (const Node* c : ctx) {
        if (c->parent != nullptr && xdm::MatchesTest(c->parent, axis, test)) {
          out.push_back(c->parent);
        }
      }
      std::sort(out.begin(), out.end(), xml::DocOrderLess);
      out.erase(std::unique(out.begin(), out.end()), out.end());
      return out;
    }
    case Axis::kAncestor:
    case Axis::kAncestorOrSelf:
    case Axis::kFollowingSibling:
    case Axis::kPrecedingSibling:
      break;  // non-pattern axes never reach the twig join (NL fallback)
  }
  return {};
}

/// Phase-3 variant of ReachableVia operating on an already-refined
/// candidate vector (small, hashable) instead of a whole stream.
NodeVec SemijoinUpWithin(const NodeVec& candidates, const NodeVec& ctx,
                         Axis axis) {
  switch (axis) {
    case Axis::kDescendant:
      return WindowIntoSubtrees(candidates, ctx);
    case Axis::kDescendantOrSelf: {
      NodeVec window = WindowIntoSubtrees(candidates, ctx);
      std::unordered_set<const Node*> cand(candidates.begin(),
                                           candidates.end());
      NodeVec selves;
      for (const Node* c : ctx) {
        if (cand.count(c) > 0) selves.push_back(c);
      }
      if (selves.empty()) return window;
      NodeVec merged;
      merged.reserve(window.size() + selves.size());
      std::merge(window.begin(), window.end(), selves.begin(), selves.end(),
                 std::back_inserter(merged), xml::DocOrderLess);
      merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
      return merged;
    }
    case Axis::kChild:
    case Axis::kAttribute: {
      std::unordered_set<const Node*> parents(ctx.begin(), ctx.end());
      NodeVec out;
      for (const Node* d : candidates) {
        if (d->parent != nullptr && parents.count(d->parent) > 0) {
          out.push_back(d);
        }
      }
      return out;
    }
    case Axis::kSelf: {
      std::unordered_set<const Node*> cand(candidates.begin(),
                                           candidates.end());
      NodeVec out;
      for (const Node* c : ctx) {
        if (cand.count(c) > 0) out.push_back(c);
      }
      return out;
    }
    case Axis::kParent: {
      std::unordered_set<const Node*> cand(candidates.begin(),
                                           candidates.end());
      NodeVec out;
      for (const Node* c : ctx) {
        if (c->parent != nullptr && cand.count(c->parent) > 0) {
          out.push_back(c->parent);
        }
      }
      std::sort(out.begin(), out.end(), xml::DocOrderLess);
      out.erase(std::unique(out.begin(), out.end()), out.end());
      return out;
    }
    case Axis::kAncestor:
    case Axis::kAncestorOrSelf:
    case Axis::kFollowingSibling:
    case Axis::kPrecedingSibling:
      break;  // non-pattern axes never reach the twig join (NL fallback)
  }
  return {};
}

class TwigEval {
 public:
  explicit TwigEval(const Document& doc) : doc_(doc) {}

  /// Phase 1+2 for the sub-twig rooted at `p` with context candidates
  /// `ctx`: computes (and memoizes) the refined match set of every node
  /// in the sub-twig.
  const NodeVec& ComputeSets(const PatternNode& p, const NodeVec& ctx) {
    NodeVec m = ReachableVia(doc_, p.axis, p.test, ctx);
    for (const PatternNodePtr& pred : p.predicates) {
      if (m.empty()) break;
      const NodeVec& pm = ComputeSets(*pred, m);
      m = SemijoinDown(m, pm, pred->axis);
    }
    if (p.next != nullptr && !m.empty()) {
      const NodeVec& nm = ComputeSets(*p.next, m);
      m = SemijoinDown(m, nm, p.next->axis);
    }
    return sets_[&p] = std::move(m);
  }

  const NodeVec& SetOf(const PatternNode& p) const { return sets_.at(&p); }

 private:
  const Document& doc_;
  std::unordered_map<const PatternNode*, NodeVec> sets_;
};

}  // namespace

Result<std::vector<BindingRow>> EvalPatternTwig(const TreePattern& tp,
                                                const xdm::Sequence& context) {
  XQTP_FAULT_POINT("exec.pattern.twig");
  if (tp.root == nullptr) return std::vector<BindingRow>{};
  if (!tp.SingleOutputAtExtractionPoint() || !tp.UsesOnlyPatternAxes() ||
      tp.HasPositionalSteps()) {
    // Positional steps need per-parent counting, which the set-at-a-time
    // merges cannot express — delegate to the nested-loop evaluator.
    return EvalPatternNL(tp, context);
  }
  NodeVec ctx;
  ctx.reserve(context.size());
  for (const xdm::Item& it : context) {
    if (!it.IsNode()) {
      return Status::TypeError(
          "tree pattern applied to a non-node context item");
    }
    ctx.push_back(it.node());
  }
  if (ctx.empty()) return std::vector<BindingRow>{};
  std::sort(ctx.begin(), ctx.end(), xml::DocOrderLess);
  ctx.erase(std::unique(ctx.begin(), ctx.end()), ctx.end());
  // The stream-based merge works one document at a time.
  for (const Node* n : ctx) {
    if (n->doc != ctx.front()->doc) return EvalPatternNL(tp, context);
  }

  TwigEval eval(*ctx.front()->doc);
  eval.ComputeSets(*tp.root, ctx);

  // Phase 3: final top-down reachability over the refined main-path sets.
  std::vector<const PatternNode*> path;
  for (const PatternNode* p = tp.root.get(); p != nullptr;
       p = p->next.get()) {
    path.push_back(p);
  }
  NodeVec reach = eval.SetOf(*path[0]);
  for (size_t i = 1; i < path.size() && !reach.empty(); ++i) {
    reach = SemijoinUpWithin(eval.SetOf(*path[i]), reach, path[i]->axis);
  }
  // Surface a mid-merge trip (sticky in the governor) before the possibly
  // truncated sets become a result.
  XQTP_RETURN_NOT_OK(GovernorPoll());

  Symbol out = tp.OutputFields()[0];
  std::vector<BindingRow> rows;
  rows.reserve(reach.size());
  for (const Node* n : reach) {
    BindingRow row;
    row.fields.emplace_back(out, n);
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace xqtp::exec
