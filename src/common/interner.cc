#include "common/interner.h"

#include <cassert>

namespace xqtp {

Symbol StringInterner::Intern(std::string_view name) {
  assert(!frozen() &&
         "StringInterner::Intern called during execution (an "
         "ExecutionFreeze is active) — all names must be interned during "
         "parse/compile/document build");
  auto it = map_.find(std::string(name));
  if (it != map_.end()) return it->second;
  Symbol sym = static_cast<Symbol>(names_.size());
  names_.emplace_back(name);
  map_.emplace(names_.back(), sym);
  return sym;
}

Symbol StringInterner::Lookup(std::string_view name) const {
  auto it = map_.find(std::string(name));
  return it == map_.end() ? kInvalidSymbol : it->second;
}

}  // namespace xqtp
