// Minimal static typing for Core expressions — just enough to drive the
// paper's typeswitch rewriting rules ("remove case clauses which are sure
// to be unused" / "bypass the typeswitch in case one clause is sure to be
// used") for the numeric() case produced by predicate normalization.
#ifndef XQTP_CORE_TYPING_H_
#define XQTP_CORE_TYPING_H_

#include <unordered_map>

#include "core/ast.h"

namespace xqtp::core {

/// Variable typing environment.
using TypeEnv = std::unordered_map<VarId, AbstractType>;

/// Infers the item type of `e` under `env`. Variables absent from `env`
/// resolve through the VarTable global declarations (globals default to
/// kNodes per the engine binding contract).
AbstractType InferType(const CoreExpr& e, const VarTable& vars,
                       const TypeEnv& env);

/// True iff a value of type `t` can never be numeric.
bool DefinitelyNotNumeric(AbstractType t);

/// True iff a value of type `t` is always numeric.
bool DefinitelyNumeric(AbstractType t);

}  // namespace xqtp::core

#endif  // XQTP_CORE_TYPING_H_
