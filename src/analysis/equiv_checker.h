// Translation validation for the rewrite pipeline, in the spirit of
// Pnueli/Siegel/Singerman's translation validation and LLVM's Alive2:
// instead of proving each rewrite rule correct once and for all (the TPNF
// technical report's completeness proof), validate every *application* of
// a rule by executing the expression/plan before and after the rule fired
// against a corpus of small witness documents (analysis/witness.h) and
// comparing the results item-for-item.
//
// The checker hooks into the same VerifyScope checkpoints as the
// structural verifiers (core/rewrite.cc per rule family, algebra/
// optimize.cc per fixpoint round), so a divergence is attributed to the
// exact rule that introduced it. The report carries the offending rule
// (via VerifyScope::Tag), the *minimized* witness document (witness
// shrinker), and both printed forms.
#ifndef XQTP_ANALYSIS_EQUIV_CHECKER_H_
#define XQTP_ANALYSIS_EQUIV_CHECKER_H_

#include <string>

#include "algebra/ops.h"
#include "analysis/verify_scope.h"
#include "analysis/witness.h"
#include "common/status.h"
#include "core/ast.h"

namespace xqtp::analysis {

/// Knobs for the analysis subsystem's dynamic checks. The structural
/// verifiers keep their own switches (EngineOptions::verify_plans,
/// RewriteOptions::verify, OptimizeOptions::verify); this struct governs
/// the translation-validation oracle layered on top of them.
struct AnalysisOptions {
  /// Execute before/after forms on the witness corpus at every rewrite
  /// and optimizer checkpoint. On by default in Debug builds (the CI
  /// Debug/ASan leg); the Release CI leg instead runs the bounded
  /// tools/equiv_fuzz sweep.
  bool check_equivalence = kVerifyByDefault;
  /// Cap on witness documents consulted per check (0 = whole corpus).
  int max_witness_docs = 0;
  /// Predicate-evaluation budget for minimizing a diverging witness.
  int shrink_budget = 400;
};

/// The oracle. One per Engine: witness documents are parsed with the
/// engine's interner so tag Symbols line up with compiled queries.
/// Not thread-safe (compilation itself is single-threaded per engine).
class EquivChecker {
 public:
  explicit EquivChecker(StringInterner* interner,
                        const AnalysisOptions& opts = {});

  /// Validates one Core rewrite step: `before` and `after` must evaluate
  /// to the same sequence on every witness document (both failing with an
  /// error also counts as agreement — rewrites may legally reword
  /// errors). Returns Internal, tagged with the active VerifyScope, on
  /// the first divergence.
  [[nodiscard]]
  Status CheckCore(const core::CoreExpr& before, const core::CoreExpr& after,
                   const core::VarTable& vars);

  /// Validates one algebraic rewrite round (plans evaluated with the
  /// nested-loop pattern algorithm; cross-algorithm agreement is the
  /// separate cross_check.h oracle).
  [[nodiscard]]
  Status CheckPlan(const algebra::Op& before, const algebra::Op& after,
                   const core::VarTable& vars);

  /// Validates the Core -> algebra compilation step itself.
  [[nodiscard]]
  Status CheckCoreVsPlan(const core::CoreExpr& core_form,
                         const algebra::Op& plan, const core::VarTable& vars);

  const WitnessCorpus& corpus() const { return corpus_; }
  StringInterner* interner() const { return interner_; }

 private:
  StringInterner* interner_;
  AnalysisOptions opts_;
  WitnessCorpus corpus_;
};

}  // namespace xqtp::analysis

#endif  // XQTP_ANALYSIS_EQUIV_CHECKER_H_
