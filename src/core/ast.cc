#include "core/ast.h"

#include <unordered_map>

namespace xqtp::core {

VarId VarTable::Fresh(std::string name) {
  VarId v = static_cast<VarId>(names_.size());
  names_.push_back(std::move(name));
  is_global_.push_back(false);
  global_types_.push_back(AbstractType::kUnknown);
  return v;
}

VarId VarTable::Global(const std::string& name, AbstractType type) {
  VarId existing = FindGlobal(name);
  if (existing != kNoVar) return existing;
  VarId v = static_cast<VarId>(names_.size());
  names_.push_back(name);
  is_global_.push_back(true);
  global_types_.push_back(type);
  globals_.push_back(v);
  return v;
}

VarId VarTable::FindGlobal(const std::string& name) const {
  for (VarId v : globals_) {
    if (names_[v] == name) return v;
  }
  return kNoVar;
}

const char* CoreFnName(CoreFn fn) {
  switch (fn) {
    case CoreFn::kBoolean:
      return "fn:boolean";
    case CoreFn::kCount:
      return "fn:count";
    case CoreFn::kNot:
      return "fn:not";
    case CoreFn::kEmpty:
      return "fn:empty";
    case CoreFn::kExists:
      return "fn:exists";
    case CoreFn::kRoot:
      return "fn:root";
    case CoreFn::kData:
      return "fn:data";
    case CoreFn::kString:
      return "fn:string";
    case CoreFn::kNumber:
      return "fn:number";
    case CoreFn::kStringLength:
      return "fn:string-length";
    case CoreFn::kConcat:
      return "fn:concat";
    case CoreFn::kContains:
      return "fn:contains";
    case CoreFn::kStartsWith:
      return "fn:starts-with";
    case CoreFn::kSum:
      return "fn:sum";
  }
  return "?";
}

int CoreFnArity(CoreFn fn) {
  switch (fn) {
    case CoreFn::kContains:
    case CoreFn::kStartsWith:
      return 2;
    case CoreFn::kConcat:
      return -1;
    default:
      return 1;
  }
}

CoreExprPtr MakeVar(VarId v) {
  auto e = std::make_unique<CoreExpr>(CoreKind::kVar);
  e->var = v;
  return e;
}

CoreExprPtr MakeLiteral(xdm::Item item) {
  auto e = std::make_unique<CoreExpr>(CoreKind::kLiteral);
  e->literal = std::move(item);
  return e;
}

CoreExprPtr MakeEmpty() {
  return std::make_unique<CoreExpr>(CoreKind::kSequence);
}

CoreExprPtr MakeSequence(std::vector<CoreExprPtr> items) {
  if (items.size() == 1) return std::move(items[0]);
  auto e = std::make_unique<CoreExpr>(CoreKind::kSequence);
  e->children = std::move(items);
  return e;
}

CoreExprPtr MakeLet(VarId v, CoreExprPtr binding, CoreExprPtr body) {
  auto e = std::make_unique<CoreExpr>(CoreKind::kLet);
  e->var = v;
  e->children.push_back(std::move(binding));
  e->children.push_back(std::move(body));
  return e;
}

CoreExprPtr MakeFor(VarId v, VarId pos, CoreExprPtr seq, CoreExprPtr where,
                    CoreExprPtr body) {
  auto e = std::make_unique<CoreExpr>(CoreKind::kFor);
  e->var = v;
  e->pos_var = pos;
  e->children.push_back(std::move(seq));
  e->children.push_back(std::move(body));
  e->where = std::move(where);
  return e;
}

CoreExprPtr MakeIf(CoreExprPtr cond, CoreExprPtr then_e, CoreExprPtr else_e) {
  auto e = std::make_unique<CoreExpr>(CoreKind::kIf);
  e->children.push_back(std::move(cond));
  e->children.push_back(std::move(then_e));
  e->children.push_back(std::move(else_e));
  return e;
}

CoreExprPtr MakeStep(VarId ctx, Axis axis, NodeTest test) {
  auto e = std::make_unique<CoreExpr>(CoreKind::kStep);
  e->var = ctx;
  e->axis = axis;
  e->test = test;
  return e;
}

CoreExprPtr MakeDdo(CoreExprPtr arg) {
  if (arg->kind == CoreKind::kDdo) return arg;
  auto e = std::make_unique<CoreExpr>(CoreKind::kDdo);
  e->children.push_back(std::move(arg));
  return e;
}

CoreExprPtr MakeFnCall(CoreFn fn, std::vector<CoreExprPtr> args) {
  auto e = std::make_unique<CoreExpr>(CoreKind::kFnCall);
  e->fn = fn;
  e->children = std::move(args);
  return e;
}

CoreExprPtr MakeTypeswitch(CoreExprPtr input, VarId case_var,
                           CoreExprPtr case_body, VarId default_var,
                           CoreExprPtr default_body) {
  auto e = std::make_unique<CoreExpr>(CoreKind::kTypeswitch);
  e->case_var = case_var;
  e->default_var = default_var;
  e->children.push_back(std::move(input));
  e->children.push_back(std::move(case_body));
  e->children.push_back(std::move(default_body));
  return e;
}

CoreExprPtr MakeCompare(xdm::CompareOp op, CoreExprPtr lhs, CoreExprPtr rhs) {
  auto e = std::make_unique<CoreExpr>(CoreKind::kCompare);
  e->cmp_op = op;
  e->children.push_back(std::move(lhs));
  e->children.push_back(std::move(rhs));
  return e;
}

CoreExprPtr MakeArith(xdm::ArithOp op, CoreExprPtr lhs, CoreExprPtr rhs) {
  auto e = std::make_unique<CoreExpr>(CoreKind::kArith);
  e->arith_op = op;
  e->children.push_back(std::move(lhs));
  e->children.push_back(std::move(rhs));
  return e;
}

CoreExprPtr MakeAnd(CoreExprPtr lhs, CoreExprPtr rhs) {
  auto e = std::make_unique<CoreExpr>(CoreKind::kAnd);
  e->children.push_back(std::move(lhs));
  e->children.push_back(std::move(rhs));
  return e;
}

CoreExprPtr MakeOr(CoreExprPtr lhs, CoreExprPtr rhs) {
  auto e = std::make_unique<CoreExpr>(CoreKind::kOr);
  e->children.push_back(std::move(lhs));
  e->children.push_back(std::move(rhs));
  return e;
}

CoreExprPtr Clone(const CoreExpr& e) {
  auto c = std::make_unique<CoreExpr>(e.kind);
  c->var = e.var;
  c->pos_var = e.pos_var;
  c->case_var = e.case_var;
  c->default_var = e.default_var;
  c->literal = e.literal;
  c->axis = e.axis;
  c->test = e.test;
  c->fn = e.fn;
  c->cmp_op = e.cmp_op;
  c->arith_op = e.arith_op;
  c->odf_cache = e.odf_cache;
  c->children.reserve(e.children.size());
  for (const CoreExprPtr& ch : e.children) c->children.push_back(Clone(*ch));
  if (e.where) c->where = Clone(*e.where);
  return c;
}

int CountUses(const CoreExpr& e, VarId v) {
  int n = 0;
  if (e.kind == CoreKind::kVar && e.var == v) ++n;
  if (e.kind == CoreKind::kStep && e.var == v) ++n;
  for (const CoreExprPtr& ch : e.children) n += CountUses(*ch, v);
  if (e.where) n += CountUses(*e.where, v);
  return n;
}

void Substitute(CoreExpr* e, VarId v, const CoreExpr& replacement) {
  if (e->kind == CoreKind::kVar && e->var == v) {
    *e = std::move(*Clone(replacement));
    return;
  }
  // A step whose context variable is v: substitution is only defined when
  // the replacement is itself a variable (rebinding the context); the
  // rewriter guarantees this by only inlining variables into step contexts.
  if (e->kind == CoreKind::kStep && e->var == v) {
    if (replacement.kind == CoreKind::kVar) {
      e->var = replacement.var;
    }
    // Otherwise leave untouched; caller checks StepContextsSubstitutable.
  }
  for (CoreExprPtr& ch : e->children) Substitute(ch.get(), v, replacement);
  if (e->where) Substitute(e->where.get(), v, replacement);
}

namespace {

bool AlphaEqualImpl(const CoreExpr& a, const CoreExpr& b,
                    std::unordered_map<VarId, VarId>* map) {
  if (a.kind != b.kind) return false;
  auto vars_equal = [&](VarId va, VarId vb) {
    if (va == kNoVar || vb == kNoVar) return va == vb;
    auto it = map->find(va);
    if (it != map->end()) return it->second == vb;
    return va == vb;
  };
  auto bind = [&](VarId va, VarId vb) {
    if (va != kNoVar) (*map)[va] = vb;
  };
  switch (a.kind) {
    case CoreKind::kVar:
    case CoreKind::kStep:
      if (!vars_equal(a.var, b.var)) return false;
      if (a.kind == CoreKind::kStep &&
          (a.axis != b.axis || !(a.test == b.test))) {
        return false;
      }
      break;
    case CoreKind::kLiteral:
      if (!(a.literal == b.literal)) return false;
      break;
    case CoreKind::kLet:
      bind(a.var, b.var);
      break;
    case CoreKind::kFor:
      bind(a.var, b.var);
      bind(a.pos_var, b.pos_var);
      if ((a.pos_var == kNoVar) != (b.pos_var == kNoVar)) return false;
      if ((a.where == nullptr) != (b.where == nullptr)) return false;
      break;
    case CoreKind::kTypeswitch:
      bind(a.case_var, b.case_var);
      bind(a.default_var, b.default_var);
      break;
    case CoreKind::kFnCall:
      if (a.fn != b.fn) return false;
      break;
    case CoreKind::kCompare:
      if (a.cmp_op != b.cmp_op) return false;
      break;
    case CoreKind::kArith:
      if (a.arith_op != b.arith_op) return false;
      break;
    default:
      break;
  }
  if (a.children.size() != b.children.size()) return false;
  for (size_t i = 0; i < a.children.size(); ++i) {
    if (!AlphaEqualImpl(*a.children[i], *b.children[i], map)) return false;
  }
  if (a.where && !AlphaEqualImpl(*a.where, *b.where, map)) return false;
  return true;
}

}  // namespace

bool AlphaEqual(const CoreExpr& a, const CoreExpr& b) {
  std::unordered_map<VarId, VarId> map;
  return AlphaEqualImpl(a, b, &map);
}

}  // namespace xqtp::core
