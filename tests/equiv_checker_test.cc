// Tests for the translation-validation subsystem: witness corpus shape,
// witness shrinking, deterministic query generation, the cross-evaluator
// oracle, and — end to end — that an intentionally unsound rewrite rule
// is detected at its checkpoint and reported with a minimized witness.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "analysis/cross_check.h"
#include "analysis/equiv_checker.h"
#include "analysis/qgen.h"
#include "analysis/witness.h"
#include "engine/engine.h"
#include "xml/parser.h"

namespace xqtp {
namespace {

TEST(WitnessCorpus, CoversAdversarialShapes) {
  StringInterner interner;
  analysis::WitnessCorpus corpus(&interner);
  ASSERT_GE(corpus.docs().size(), 10u);
  std::set<std::string> names;
  bool has_empty = false;
  for (const analysis::WitnessDoc& w : corpus.docs()) {
    EXPECT_TRUE(names.insert(w.name).second) << "duplicate name " << w.name;
    ASSERT_NE(w.doc, nullptr) << w.name;
    // Every witness is rooted at <r> so /r and // entry points both work.
    const xml::Node* root_elem = w.doc->root()->first_child;
    ASSERT_NE(root_elem, nullptr) << w.name;
    EXPECT_EQ(root_elem->name, interner.Intern("r")) << w.name;
    if (root_elem->first_child == nullptr) has_empty = true;
  }
  EXPECT_TRUE(has_empty);  // the empty-match document
  for (const char* name :
       {"recursion", "dup-siblings", "mixed-content", "positional"}) {
    EXPECT_TRUE(names.count(name)) << name;
  }
}

TEST(WitnessShrink, MinimizesUnderPredicate) {
  StringInterner interner;
  const std::string input =
      "<r><a id=\"1\"><b/><c/></a><d><e/><e/></d><c/></r>";
  // "Divergence": the document contains a b element. The minimal such
  // document over this input is <r> with b hoisted to the top.
  analysis::WitnessPredicate pred = [&](const xml::Document& d) {
    return !d.ElementsByTag(interner.Intern("b")).empty();
  };
  std::string shrunk = analysis::ShrinkWitness(input, &interner, pred);
  EXPECT_LT(shrunk.size(), input.size());
  EXPECT_NE(shrunk.find("<b"), std::string::npos);
  EXPECT_EQ(shrunk.find("<c"), std::string::npos);
  EXPECT_EQ(shrunk.find("<d"), std::string::npos);
  EXPECT_EQ(shrunk.find("id="), std::string::npos);
  auto reparsed = xml::Parse(shrunk, &interner);
  ASSERT_TRUE(reparsed.ok()) << shrunk;
  EXPECT_TRUE(pred(*reparsed.value()));
}

TEST(QueryGen, DeterministicPerSeed) {
  analysis::QueryGen a(42), b(42), c(7);
  bool differs_from_other_seed = false;
  for (int i = 0; i < 100; ++i) {
    std::string qa = a.Next();
    EXPECT_EQ(qa, b.Next()) << "seed 42 diverged at query " << i;
    if (qa != c.Next()) differs_from_other_seed = true;
  }
  EXPECT_TRUE(differs_from_other_seed);
}

TEST(QueryGen, GeneratedQueriesCompile) {
  engine::Engine eng;
  analysis::QueryGen gen(1);
  for (int i = 0; i < 50; ++i) {
    std::string q = gen.Next();
    auto compiled = eng.Compile(q);
    EXPECT_TRUE(compiled.ok())
        << "query " << i << ": " << q << "\n"
        << compiled.status().ToString();
  }
}

TEST(CrossCheck, AllAlgorithmsAgreeOnWitnessCorpus) {
  ASSERT_EQ(analysis::CrossCheckAlgos().size(), 6u);
  StringInterner interner;
  analysis::WitnessCorpus corpus(&interner);
  // descendant::a[child::b] — a predicate twig, the shape where holistic
  // and binary algorithms historically diverge.
  pattern::TreePattern tp = pattern::MakeSingleStep(
      interner.Intern("dot"), Axis::kDescendant,
      NodeTest::Name(interner.Intern("a")), interner.Intern("out"));
  pattern::AttachPredicate(
      &tp, pattern::MakeSingleStep(kInvalidSymbol, Axis::kChild,
                                   NodeTest::Name(interner.Intern("b")),
                                   kInvalidSymbol));
  for (const analysis::WitnessDoc& w : corpus.docs()) {
    Status s = analysis::CrossCheckPattern(
        tp, {xdm::Item(w.doc->root())}, interner);
    EXPECT_TRUE(s.ok()) << w.name << ": " << s.ToString();
  }
}

TEST(EquivChecker, AcceptsSoundPipeline) {
  engine::EngineOptions opts;
  opts.analysis.check_equivalence = true;
  engine::Engine eng(opts);
  for (const char* q : {
           "$input//a[b]/c",
           "for $v in $input/r/a where exists($v/b) return $v/c",
           "$input/r/a[position() = 2]",
           "count($input//b)",
           // NaN on every witness without a z element: fn:number of an
           // empty sequence must agree with itself (NaN != NaN in IEEE).
           "fn:number($input//z[1]/b)",
       }) {
    auto compiled = eng.Compile(q);
    EXPECT_TRUE(compiled.ok()) << q << "\n" << compiled.status().ToString();
  }
}

TEST(EquivChecker, DetectsUnsoundRewriteAndShrinksWitness) {
  engine::EngineOptions opts;
  opts.analysis.check_equivalence = true;
  engine::Engine eng(opts);

  engine::CompileOptions copts;
  copts.rewrite_opts.unsound_ddo_strip_for_testing = true;
  // //a//b reaches the same b through several a bindings: dropping the
  // fs:ddo wrappers yields duplicates, which the oracle must observe on
  // at least one witness (the recursive same-tag document).
  auto compiled = eng.Compile("$input//a//b", copts);
  ASSERT_FALSE(compiled.ok());
  const Status& s = compiled.status();
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  std::string msg = s.ToString();
  EXPECT_NE(msg.find("translation validation"), std::string::npos) << msg;
  // Attributed to the rule family that fired (VerifyScope tagging).
  EXPECT_NE(msg.find("unsound ddo strip"), std::string::npos) << msg;

  // The reported witness must be minimized: still parseable, and
  // strictly smaller than the corpus document it came from.
  auto field = [&](const std::string& key) {
    size_t at = msg.find(key);
    EXPECT_NE(at, std::string::npos) << msg;
    if (at == std::string::npos) return std::string();
    at += key.size();
    return msg.substr(at, msg.find('\n', at) - at);
  };
  std::string witness_name = field("witness: ");
  std::string minimized = field("witness(minimized): ");
  ASSERT_FALSE(minimized.empty());
  StringInterner scratch;
  EXPECT_TRUE(xml::Parse(minimized, &scratch).ok()) << minimized;
  analysis::WitnessCorpus corpus(&scratch);
  for (const analysis::WitnessDoc& w : corpus.docs()) {
    if (w.name == witness_name) {
      EXPECT_LT(minimized.size(), w.xml.size());
    }
  }

  // Negative control: the same engine accepts the query once the broken
  // rule is off.
  auto sound = eng.Compile("$input//a//b");
  EXPECT_TRUE(sound.ok()) << sound.status().ToString();
}

}  // namespace
}  // namespace xqtp
