// Recursive-descent parser for the XQuery fragment.
#ifndef XQTP_XQUERY_PARSER_H_
#define XQTP_XQUERY_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "xquery/ast.h"

namespace xqtp::xquery {

/// Parses a query. Names (tags, attribute names) are interned in
/// `interner` so they can be compared against document tags downstream.
[[nodiscard]]
Result<ExprPtr> ParseQuery(std::string_view query, StringInterner* interner);

}  // namespace xqtp::xquery

#endif  // XQTP_XQUERY_PARSER_H_
