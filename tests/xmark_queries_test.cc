// The adapted XMark corpus: every query compiles, runs on the generated
// auction document, and agrees across all plan choices and algorithms.
#include <gtest/gtest.h>

#include "engine/engine.h"
#include "workload/xmark_gen.h"
#include "workload/xmark_queries.h"

namespace xqtp::workload {
namespace {

class XmarkQueriesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    XmarkParams p;
    p.factor = 0.03;
    doc_ = engine_.AddDocument("x", GenerateXmark(p, engine_.interner()));
  }

  engine::Engine engine_;
  const xml::Document* doc_;
};

TEST_F(XmarkQueriesTest, CorpusIsNonTrivial) {
  EXPECT_GE(XmarkQueryCorpus().size(), 14u);
}

TEST_F(XmarkQueriesTest, AllQueriesCompile) {
  for (const XmarkQuery& q : XmarkQueryCorpus()) {
    auto cq = engine_.Compile(q.text);
    EXPECT_TRUE(cq.ok()) << q.id << ": " << cq.status().ToString();
  }
}

TEST_F(XmarkQueriesTest, AllRoutesAgreeOnEveryQuery) {
  for (const XmarkQuery& q : XmarkQueryCorpus()) {
    auto cq = engine_.Compile(q.text);
    ASSERT_TRUE(cq.ok()) << q.id;
    engine::Engine::GlobalMap globals{{"input", {xdm::Item(doc_->root())}}};
    auto ref = engine_.Execute(*cq, globals, exec::PatternAlgo::kNLJoin,
                               engine::PlanChoice::kCoreInterp);
    ASSERT_TRUE(ref.ok()) << q.id << ": " << ref.status().ToString();
    for (auto pc : {engine::PlanChoice::kUnoptimized,
                    engine::PlanChoice::kOptimized}) {
      for (auto algo :
           {exec::PatternAlgo::kNLJoin, exec::PatternAlgo::kStaircase,
            exec::PatternAlgo::kTwig, exec::PatternAlgo::kStream,
            exec::PatternAlgo::kTwigStack, exec::PatternAlgo::kShredded,
            exec::PatternAlgo::kCostBased}) {
        auto res = engine_.Execute(*cq, globals, algo, pc);
        ASSERT_TRUE(res.ok()) << q.id << ": " << res.status().ToString();
        ASSERT_EQ(res->size(), ref->size())
            << q.id << " [" << exec::PatternAlgoName(algo) << "]";
        for (size_t i = 0; i < res->size(); ++i) {
          EXPECT_TRUE((*res)[i] == (*ref)[i]) << q.id << " item " << i;
        }
      }
    }
  }
}

TEST_F(XmarkQueriesTest, PathQueriesDetectPatterns) {
  // The pure-path corpus members become TupleTreePattern plans.
  for (const char* id : {"XQ1", "XQ13", "XQ15", "XQ19"}) {
    for (const XmarkQuery& q : XmarkQueryCorpus()) {
      if (q.id != id) continue;
      auto cq = engine_.Compile(q.text);
      ASSERT_TRUE(cq.ok()) << id;
      EXPECT_GE(cq->Stats().tree_pattern_ops, 1) << id;
      EXPECT_EQ(cq->Stats().tree_join_ops, 0) << id;
    }
  }
}

TEST_F(XmarkQueriesTest, ResultsAreNonEmptyWhereExpected) {
  engine::Engine::GlobalMap globals{{"input", {xdm::Item(doc_->root())}}};
  for (const XmarkQuery& q : XmarkQueryCorpus()) {
    auto cq = engine_.Compile(q.text);
    ASSERT_TRUE(cq.ok()) << q.id;
    auto res = engine_.Execute(*cq, globals, exec::PatternAlgo::kStaircase);
    ASSERT_TRUE(res.ok()) << q.id;
    // Counting queries return a number; the others should find data on a
    // factor-0.03 document (XQ3/XQ14 depend on random content, so allow
    // empty there).
    if (q.id != "XQ3" && q.id != "XQ14") {
      EXPECT_FALSE(res->empty()) << q.id;
    }
  }
}

}  // namespace
}  // namespace xqtp::workload
