// Classic TwigStack evaluation of tree patterns [Bruno, Koudas &
// Srivastava, SIGMOD'02] — the second twig-join variant (the paper's
// future work mentions "evaluating the benefits of other variants of
// Twigjoin algorithms"; exec/twig_pattern.cc implements a three-phase
// merge-semijoin holistic join, this file the original stack-based
// algorithm).
//
// One cursor per pattern node over its document-ordered tag stream;
// getNext() returns the next stream head that is guaranteed (for
// descendant edges) to participate in a solution, skipping heads whose
// subtrees cannot contain the other branches' heads. Stack elements
// record the chain of open ancestors; leaf events mark root-to-leaf path
// solutions. A final merge keeps the extraction bindings whose chains are
// marked by every pattern leaf (child edges are verified with parent
// pointers during the merge).
#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/fault_injection.h"
#include "exec/exec_stats.h"
#include "exec/governor.h"
#include "exec/pattern_eval.h"
#include "xdm/sequence_ops.h"
#include "xml/document.h"

namespace xqtp::exec {

namespace {

using pattern::PatternNode;
using pattern::PatternNodePtr;
using pattern::TreePattern;
using xml::Document;
using xml::Node;

using NodeVec = std::vector<const Node*>;

constexpr int32_t kInfinity = INT32_MAX;

const NodeVec& StreamFor(const Document& doc, const PatternNode& q) {
  static const NodeVec kEmpty;
  if (q.axis == Axis::kAttribute) {
    if (q.test.kind == NodeTestKind::kName) {
      return doc.AttributesByName(q.test.name);
    }
    return kEmpty;
  }
  switch (q.test.kind) {
    case NodeTestKind::kName:
      return doc.ElementsByTag(q.test.name);
    case NodeTestKind::kAnyName:
      return doc.AllElements();
    case NodeTestKind::kText:
      return doc.TextNodes();
    case NodeTestKind::kAnyNode:
      return doc.AllNodes();
  }
  return doc.AllNodes();
}

/// Flattened pattern: nodes in DFS order, with parent indices, the set of
/// leaves, and per-node leaf masks.
struct FlatPattern {
  std::vector<const PatternNode*> nodes;
  std::vector<int> parent;            ///< -1 for the root
  std::vector<std::vector<int>> children;
  std::vector<int> main_path;         ///< indices along root->extraction
  std::vector<uint32_t> leaves_under; ///< leaf bitmask of each subtree
  int leaf_count = 0;
  std::vector<int> leaf_id;           ///< per node: its leaf id or -1
};

void Flatten(const PatternNode* p, int parent, FlatPattern* fp) {
  int id = static_cast<int>(fp->nodes.size());
  fp->nodes.push_back(p);
  fp->parent.push_back(parent);
  fp->children.emplace_back();
  fp->leaf_id.push_back(-1);
  if (parent >= 0) fp->children[static_cast<size_t>(parent)].push_back(id);
  for (const PatternNodePtr& pred : p->predicates) {
    Flatten(pred.get(), id, fp);
  }
  if (p->next != nullptr) Flatten(p->next.get(), id, fp);
}

FlatPattern MakeFlat(const TreePattern& tp) {
  FlatPattern fp;
  Flatten(tp.root.get(), -1, &fp);
  size_t n = fp.nodes.size();
  fp.leaves_under.assign(n, 0);
  for (size_t i = 0; i < n; ++i) {
    if (fp.children[i].empty()) {
      fp.leaf_id[i] = fp.leaf_count++;
    }
  }
  // Masks bottom-up (children have larger DFS ids).
  for (size_t i = n; i-- > 0;) {
    if (fp.leaf_id[i] >= 0) {
      fp.leaves_under[i] = 1u << fp.leaf_id[i];
    }
    for (int c : fp.children[i]) {
      fp.leaves_under[i] |= fp.leaves_under[static_cast<size_t>(c)];
    }
  }
  for (const PatternNode* p = tp.root.get(); p != nullptr;
       p = p->next.get()) {
    for (size_t i = 0; i < n; ++i) {
      if (fp.nodes[i] == p) fp.main_path.push_back(static_cast<int>(i));
    }
  }
  return fp;
}

/// One (possibly popped) stack element, kept in a per-pattern-node arena
/// so path solutions survive pops.
struct Element {
  const Node* node = nullptr;
  int parent_top = -1;  ///< arena index in the parent node's arena
  int below = -1;       ///< arena index of the element below in the stack
  uint32_t mark = 0;    ///< leaves whose path solutions include this element
  int8_t valid_memo = -1;  ///< merge memo: -1 unknown, 0 invalid, 1 valid
};

class TwigStack {
 public:
  TwigStack(const TreePattern& tp, const Document& doc, NodeVec root_stream)
      : fp_(MakeFlat(tp)), root_stream_(std::move(root_stream)) {
    size_t n = fp_.nodes.size();
    streams_.resize(n);
    cursor_.assign(n, 0);
    arena_.resize(n);
    stack_top_.assign(n, -1);
    for (size_t i = 0; i < n; ++i) {
      streams_[i] = i == 0 ? &root_stream_ : &StreamFor(doc, *fp_.nodes[i]);
    }
  }

  /// Runs the join; returns the extraction bindings in document order.
  /// A tripped governor abandons the merge — the caller's poll surfaces
  /// the latched verdict and the truncated result is discarded.
  NodeVec Run() {
    GovernorTicker gov;
    for (;;) {
      if (!gov.Tick()) return {};
      int q = GetNext(0);
      if (HeadPre(q) == kInfinity) break;
      const Node* v = Head(q);
      int parent = fp_.parent[static_cast<size_t>(q)];
      if (parent >= 0) CleanStack(parent, v);
      if (parent < 0 || stack_top_[static_cast<size_t>(parent)] >= 0) {
        CleanStack(q, v);
        Push(q, v);
        if (fp_.leaf_id[static_cast<size_t>(q)] >= 0) {
          MarkPathSolutions(q);
          Pop(q);
        }
      }
      Advance(q);
    }
    return Merge();
  }

 private:
  const Node* Head(int q) const {
    size_t c = cursor_[static_cast<size_t>(q)];
    const NodeVec& s = *streams_[static_cast<size_t>(q)];
    return c < s.size() ? s[c] : nullptr;
  }
  int32_t HeadPre(int q) const {
    const Node* n = Head(q);
    return n == nullptr ? kInfinity : n->pre;
  }
  int32_t HeadPost(int q) const {
    const Node* n = Head(q);
    return n == nullptr ? kInfinity : n->post;
  }
  void Advance(int q) {
    ++cursor_[static_cast<size_t>(q)];
    CountIndexEntries(1);
  }

  /// The classic getNext: returns a pattern node whose head is the next
  /// to process; skips heads that cannot cover the children's heads.
  int GetNext(int q) {
    if (fp_.children[static_cast<size_t>(q)].empty()) return q;
    int nmin = -1, nmax = -1;
    for (int qi : fp_.children[static_cast<size_t>(q)]) {
      int ni = GetNext(qi);
      if (ni != qi) return ni;
      if (nmin < 0 || HeadPre(qi) < HeadPre(nmin)) nmin = qi;
      if (nmax < 0 || HeadPre(qi) > HeadPre(nmax)) nmax = qi;
    }
    // Skip q's heads whose subtrees end strictly before nmax's head
    // starts (pre < pre AND post < post means disjoint-and-before in the
    // rank encoding): such heads cannot have all child heads below them.
    while (HeadPre(q) < HeadPre(nmax) && HeadPost(q) < HeadPost(nmax)) {
      Advance(q);
    }
    // Tie goes to q: with descendant-or-self edges a child step's stream
    // can head the very node q is about to push (self edge), and q's
    // element must be on the stack before the child's is chained to it.
    if (HeadPre(q) <= HeadPre(nmin)) return q;
    return nmin;
  }

  /// Pops elements whose subtree ends before `v` starts (not ancestors).
  void CleanStack(int q, const Node* v) {
    while (stack_top_[static_cast<size_t>(q)] >= 0) {
      const Element& top =
          arena_[static_cast<size_t>(q)]
                [static_cast<size_t>(stack_top_[static_cast<size_t>(q)])];
      // Keep ancestors-or-self: equal post means v is the same node (a
      // self edge under descendant-or-self), which must stay chainable.
      if (top.node->post >= v->post) break;
      Pop(q);
    }
  }

  void Push(int q, const Node* v) {
    Element e;
    e.node = v;
    int parent = fp_.parent[static_cast<size_t>(q)];
    e.parent_top = parent < 0 ? -1 : stack_top_[static_cast<size_t>(parent)];
    e.below = stack_top_[static_cast<size_t>(q)];
    arena_[static_cast<size_t>(q)].push_back(e);
    stack_top_[static_cast<size_t>(q)] =
        static_cast<int>(arena_[static_cast<size_t>(q)].size()) - 1;
  }

  void Pop(int q) {
    int top = stack_top_[static_cast<size_t>(q)];
    stack_top_[static_cast<size_t>(q)] =
        arena_[static_cast<size_t>(q)][static_cast<size_t>(top)].below;
  }

  /// Is `parent_elem_node` a valid step-parent of `elem_node` along the
  /// axis of pattern node q? The stack chains already guarantee
  /// containment (ancestor-or-self), so only the axis-specific part needs
  /// checking.
  bool EdgeOk(int q, const Node* elem_node,
              const Node* parent_elem_node) const {
    switch (fp_.nodes[static_cast<size_t>(q)]->axis) {
      case Axis::kChild:
      case Axis::kAttribute:
        return elem_node->parent == parent_elem_node;
      case Axis::kDescendant:
        return parent_elem_node != elem_node;  // proper ancestor
      case Axis::kSelf:
        return parent_elem_node == elem_node;
      default:
        return true;  // descendant-or-self
    }
  }

  /// A leaf was pushed: mark its ancestor closure with the leaf bit (the
  /// compact encoding of all root-to-leaf path solutions), following only
  /// axis-consistent edges.
  void MarkPathSolutions(int leaf) {
    uint32_t bit = 1u << fp_.leaf_id[static_cast<size_t>(leaf)];
    MarkUp(leaf, stack_top_[static_cast<size_t>(leaf)], bit);
  }

  void MarkUp(int q, int elem_idx, uint32_t bit) {
    Element& e =
        arena_[static_cast<size_t>(q)][static_cast<size_t>(elem_idx)];
    if ((e.mark & bit) != 0) return;  // propagation already done for bit
    e.mark |= bit;
    int parent = fp_.parent[static_cast<size_t>(q)];
    if (parent < 0) return;
    for (int idx = e.parent_top; idx >= 0;
         idx = arena_[static_cast<size_t>(parent)][static_cast<size_t>(idx)]
                   .below) {
      const Element& pe =
          arena_[static_cast<size_t>(parent)][static_cast<size_t>(idx)];
      if (EdgeOk(q, e.node, pe.node)) MarkUp(parent, idx, bit);
    }
  }

  /// True iff element `e` of pattern node `q` is marked by every leaf of
  /// q's subtree (it roots a complete sub-twig match).
  bool FullyMarked(int q, const Element& e) const {
    uint32_t need = fp_.leaves_under[static_cast<size_t>(q)];
    return (e.mark & need) == need;
  }

  /// Merge: extraction bindings with a fully-marked, edge-consistent
  /// chain to the root.
  NodeVec Merge() {
    int depth = static_cast<int>(fp_.main_path.size());
    NodeVec out;
    int ext = fp_.main_path[static_cast<size_t>(depth - 1)];
    auto& ext_arena = arena_[static_cast<size_t>(ext)];
    for (size_t i = 0; i < ext_arena.size(); ++i) {
      if (Valid(depth - 1, static_cast<int>(i))) {
        out.push_back(ext_arena[i].node);
      }
    }
    std::sort(out.begin(), out.end(), xml::DocOrderLess);
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
  }

  bool Valid(int level, int elem_idx) {
    int q = fp_.main_path[static_cast<size_t>(level)];
    Element& e = arena_[static_cast<size_t>(q)][static_cast<size_t>(elem_idx)];
    if (e.valid_memo >= 0) return e.valid_memo == 1;
    e.valid_memo = 0;
    if (!FullyMarked(q, e)) return false;
    if (level == 0) {
      e.valid_memo = 1;
      return true;
    }
    // Any ancestor in the parent chain that is itself valid and satisfies
    // the step's axis.
    int parent_q = fp_.main_path[static_cast<size_t>(level - 1)];
    for (int anc = e.parent_top; anc >= 0;
         anc = arena_[static_cast<size_t>(parent_q)][static_cast<size_t>(anc)]
                   .below) {
      const Element& pe =
          arena_[static_cast<size_t>(parent_q)][static_cast<size_t>(anc)];
      if (!EdgeOk(q, e.node, pe.node)) continue;
      if (Valid(level - 1, anc)) {
        e.valid_memo = 1;
        return true;
      }
    }
    return false;
  }

  FlatPattern fp_;
  NodeVec root_stream_;
  std::vector<const NodeVec*> streams_;
  std::vector<size_t> cursor_;
  std::vector<std::vector<Element>> arena_;
  std::vector<int> stack_top_;
};

/// Root stream: stream of the root step, restricted to nodes reachable
/// from the contexts along the root step's axis.
NodeVec RootStream(const Document& doc, const PatternNode& root,
                   const NodeVec& ctx) {
  const NodeVec& stream = StreamFor(doc, root);
  NodeVec out;
  switch (root.axis) {
    case Axis::kChild:
    case Axis::kAttribute: {
      for (const Node* c : ctx) {
        if (root.axis == Axis::kChild) {
          for (const Node* k = c->first_child; k != nullptr;
               k = k->next_sibling) {
            if (xdm::MatchesTest(k, root.axis, root.test)) out.push_back(k);
          }
        } else {
          for (const Node* a : c->attributes) {
            if (xdm::MatchesTest(a, root.axis, root.test)) out.push_back(a);
          }
        }
      }
      std::sort(out.begin(), out.end(), xml::DocOrderLess);
      out.erase(std::unique(out.begin(), out.end()), out.end());
      return out;
    }
    case Axis::kDescendant:
    case Axis::kDescendantOrSelf: {
      size_t pos = 0;
      for (const Node* c : ctx) {
        if (root.axis == Axis::kDescendantOrSelf &&
            xdm::MatchesTest(c, root.axis, root.test)) {
          out.push_back(c);
        }
        CountIndexSkip();
        auto it = std::upper_bound(
            stream.begin() + static_cast<ptrdiff_t>(pos), stream.end(),
            c->pre, [](int32_t pre, const Node* n) { return pre < n->pre; });
        pos = static_cast<size_t>(it - stream.begin());
        while (pos < stream.size() && stream[pos]->post < c->post) {
          out.push_back(stream[pos]);
          ++pos;
        }
      }
      std::sort(out.begin(), out.end(), xml::DocOrderLess);
      out.erase(std::unique(out.begin(), out.end()), out.end());
      return out;
    }
    case Axis::kSelf:
      for (const Node* c : ctx) {
        if (xdm::MatchesTest(c, root.axis, root.test)) out.push_back(c);
      }
      return out;
    default:
      return out;  // guarded by UsesOnlyPatternAxes
  }
}

}  // namespace

Result<std::vector<BindingRow>> EvalPatternTwigStack(
    const TreePattern& tp, const xdm::Sequence& context) {
  XQTP_FAULT_POINT("exec.pattern.twigstack");
  if (tp.root == nullptr) return std::vector<BindingRow>{};
  if (!tp.SingleOutputAtExtractionPoint() || !tp.UsesOnlyPatternAxes() ||
      tp.HasPositionalSteps() || tp.StepCount() > 32) {
    // (StepCount bounds the leaf count for the 32-bit mark bitmask.)
    return EvalPatternNL(tp, context);
  }
  NodeVec ctx;
  ctx.reserve(context.size());
  for (const xdm::Item& it : context) {
    if (!it.IsNode()) {
      return Status::TypeError(
          "tree pattern applied to a non-node context item");
    }
    ctx.push_back(it.node());
  }
  if (ctx.empty()) return std::vector<BindingRow>{};
  std::sort(ctx.begin(), ctx.end(), xml::DocOrderLess);
  ctx.erase(std::unique(ctx.begin(), ctx.end()), ctx.end());
  for (const Node* n : ctx) {
    if (n->doc != ctx.front()->doc) return EvalPatternNL(tp, context);
  }
  const Document& doc = *ctx.front()->doc;

  TwigStack join(tp, doc, RootStream(doc, *tp.root, ctx));
  NodeVec result = join.Run();
  XQTP_RETURN_NOT_OK(GovernorPoll());

  Symbol out = tp.OutputFields()[0];
  std::vector<BindingRow> rows;
  rows.reserve(result.size());
  for (const Node* n : result) {
    BindingRow row;
    row.fields.emplace_back(out, n);
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace xqtp::exec
