// Status / Result edge cases: code + message round-trips, the propagation
// macros, and Result with move-only and implicitly-converting payloads.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace xqtp {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.message(), "");
  EXPECT_EQ(st.ToString(), "OK");
  EXPECT_EQ(Status::OK().ToString(), "OK");
}

TEST(StatusTest, FactoriesSetCodeAndMessage) {
  struct Case {
    Status st;
    StatusCode code;
    const char* rendered;
  };
  const Case cases[] = {
      {Status::InvalidArgument("bad query"), StatusCode::kInvalidArgument,
       "InvalidArgument: bad query"},
      {Status::NotImplemented("following axis"), StatusCode::kNotImplemented,
       "NotImplemented: following axis"},
      {Status::TypeError("not a node"), StatusCode::kTypeError,
       "TypeError: not a node"},
      {Status::Internal("broken plan"), StatusCode::kInternal,
       "Internal: broken plan"},
      {Status::Cancelled("caller gave up"), StatusCode::kCancelled,
       "Cancelled: caller gave up"},
      {Status::DeadlineExceeded("10ms elapsed"),
       StatusCode::kDeadlineExceeded, "DeadlineExceeded: 10ms elapsed"},
      {Status::ResourceExhausted("budget blown"),
       StatusCode::kResourceExhausted, "ResourceExhausted: budget blown"},
  };
  for (const Case& c : cases) {
    EXPECT_FALSE(c.st.ok());
    EXPECT_EQ(c.st.code(), c.code);
    EXPECT_EQ(c.st.ToString(), c.rendered);
  }
}

TEST(StatusTest, EmptyMessageStillRenders) {
  Status st = Status::Internal("");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.ToString(), "Internal: ");
}

TEST(StatusTest, CopySemantics) {
  Status st = Status::TypeError("original");
  Status copy = st;
  EXPECT_EQ(copy.code(), StatusCode::kTypeError);
  EXPECT_EQ(copy.message(), "original");
  EXPECT_EQ(st.message(), "original");
}

TEST(StatusTest, ReturnNotOkPropagates) {
  auto fails = [] { return Status::Internal("inner"); };
  auto outer = [&]() -> Status {
    XQTP_RETURN_NOT_OK(fails());
    return Status::OK();
  };
  Status st = outer();
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.message(), "inner");
}

TEST(StatusTest, ReturnNotOkFallsThroughOnOk) {
  bool reached = false;
  auto outer = [&]() -> Status {
    XQTP_RETURN_NOT_OK(Status::OK());
    reached = true;
    return Status::OK();
  };
  EXPECT_TRUE(outer().ok());
  EXPECT_TRUE(reached);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.status().ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::InvalidArgument("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.status().message(), "nope");
}

TEST(ResultTest, ImplicitConversionFromValueAndStatus) {
  auto make = [](bool fail) -> Result<std::string> {
    if (fail) return Status::TypeError("fail");
    return std::string("value");
  };
  EXPECT_TRUE(make(false).ok());
  EXPECT_EQ(*make(false), "value");
  EXPECT_FALSE(make(true).ok());
}

TEST(ResultTest, MoveOnlyPayload) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(**r, 7);
  // Rvalue value() moves the payload out.
  std::unique_ptr<int> taken = std::move(r).value();
  ASSERT_NE(taken, nullptr);
  EXPECT_EQ(*taken, 7);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 3u);
  r->push_back(4);
  EXPECT_EQ(r->size(), 4u);
}

TEST(ResultTest, AssignOrReturnPropagatesError) {
  auto inner = [](bool fail) -> Result<int> {
    if (fail) return Status::Internal("inner failed");
    return 5;
  };
  auto outer = [&](bool fail) -> Result<int> {
    XQTP_ASSIGN_OR_RETURN(int v, inner(fail));
    return v + 1;
  };
  auto ok = outer(false);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 6);
  auto err = outer(true);
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().message(), "inner failed");
}

TEST(ResultTest, AssignOrReturnMovesMoveOnlyValues) {
  auto inner = []() -> Result<std::unique_ptr<int>> {
    return std::make_unique<int>(9);
  };
  auto outer = [&]() -> Result<int> {
    XQTP_ASSIGN_OR_RETURN(std::unique_ptr<int> p, inner());
    return *p;
  };
  auto r = outer();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 9);
}

TEST(ResultTest, AssignOrReturnToExistingLvalue) {
  auto inner = []() -> Result<int> { return 3; };
  auto outer = [&]() -> Status {
    int v = 0;
    XQTP_ASSIGN_OR_RETURN(v, inner());
    return v == 3 ? Status::OK() : Status::Internal("bad value");
  };
  EXPECT_TRUE(outer().ok());
}

// Macro hygiene: the temporary's name carries __COUNTER__, so two
// expansions on ONE line (e.g. from another macro's expansion) must
// compile — with the old __LINE__ scheme they collided.
TEST(ResultTest, AssignOrReturnTwiceOnOneLine) {
  auto inner = [](int x) -> Result<int> { return x; };
  auto outer = [&]() -> Result<int> {
    // clang-format off
    XQTP_ASSIGN_OR_RETURN(int a, inner(1)); XQTP_ASSIGN_OR_RETURN(int b, inner(2));
    // clang-format on
    return a + b;
  };
  auto r = outer();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 3);
}

// Nested use inside an if body whose condition came from another
// expansion must not shadow the outer temporary (this file compiles
// under -Wshadow -Werror in the CI thread-safety leg).
TEST(ResultTest, AssignOrReturnNestedInIfBody) {
  auto inner = [](int x) -> Result<int> { return x; };
  auto outer = [&]() -> Result<int> {
    XQTP_ASSIGN_OR_RETURN(int a, inner(10));
    if (a > 5) {
      XQTP_ASSIGN_OR_RETURN(int b, inner(a));
      XQTP_ASSIGN_OR_RETURN(int c, inner(b + 1));
      return c;
    }
    return a;
  };
  auto r = outer();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 11);
}

}  // namespace
}  // namespace xqtp
