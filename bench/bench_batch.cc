// Columnar-batch-execution payoff: the same XMark pipeline queries through
// the row-at-a-time reference path (TupleExecMode::kRow) and the columnar
// batch evaluator (kBatch, the default) at threads=1 — the perf claim the
// batch tentpole makes is a >= 1.5x throughput win on at least one of
// these, from eliminated per-row Tuple materialization (the pattern's
// input fields become broadcast columns; kMapToItem concatenates a
// field's column directly). Both modes run the same pattern algorithm
// (staircase — cheap enough that the pattern evaluation doesn't drown the
// tuple layer this bench exists to measure; under NLJoin the join
// dominates and compresses the row/batch gap). A threads=2 batch leg
// rides along to show the morsel driver composes with batches. Before any timing, main() verifies
// both modes are bit-identical on every benched query and that the batch
// path materializes no more tuples than the row path. Run with
// --json=<path> for perf-trajectory records; modes are distinguished by
// the record's "variant" field (row / batch).
#include <cstdio>

#include "bench_common.h"

namespace xqtp::bench {
namespace {

// XMark pipeline queries (from workload/xmark_queries.cc): a positional
// select, a deep child chain, and a descendant-axis double step.
constexpr struct {
  const char* id;
  const char* text;
} kQueries[] = {
    {"XQ1", "$input/site/people/person[1]/name"},
    {"XQ15", "$input/site/open_auctions/open_auction/bidder/date"},
    {"XQ19", "$input//item//name"},
};

constexpr struct {
  const char* tag;
  exec::TupleExecMode mode;
} kModes[] = {{"row", exec::TupleExecMode::kRow},
              {"batch", exec::TupleExecMode::kBatch}};

const xml::Document& Doc() { return XmarkDoc("xmark_batch", 0.5); }

exec::EvalOptions ModeOpts(exec::TupleExecMode mode, int threads) {
  exec::EvalOptions opts;
  opts.algo = exec::PatternAlgo::kStaircase;
  opts.threads = threads;
  opts.tuple_exec = mode;
  // Time the execution paths, not the debug-build claim assertions.
  opts.check_inferred_props = false;
  return opts;
}

// Proves the equivalence + materialization story before anything is
// timed: per query, row and batch results bit-identical at threads=1,
// and the batch path materializes no more tuples than the row path.
bool VerifyModes() {
  engine::Engine& e = SharedEngine();
  const xml::Document& doc = Doc();
  for (const auto& q : kQueries) {
    auto cq = e.Compile(q.text);
    if (!cq.ok()) {
      std::fprintf(stderr, "bench_batch: compile failed for %s\n", q.id);
      return false;
    }
    engine::Engine::GlobalMap globals{{"input", {xdm::Item(doc.root())}}};
    ExecStats stats[2];
    xdm::Sequence results[2];
    for (int m = 0; m < 2; ++m) {
      ScopedExecStats scope;
      auto res = e.Execute(*cq, globals, ModeOpts(kModes[m].mode, 1));
      stats[m] = scope.stats();
      if (!res.ok()) {
        std::fprintf(stderr, "bench_batch: %s failed for %s: %s\n",
                     kModes[m].tag, q.id, res.status().ToString().c_str());
        return false;
      }
      results[m] = std::move(*res);
    }
    if (results[0] != results[1]) {
      std::fprintf(stderr, "bench_batch: row/batch DIVERGENCE for %s\n", q.id);
      return false;
    }
    std::fprintf(stderr,
                 "bench_batch: %-5s tuples_materialized row=%lld batch=%lld "
                 "batches=%lld\n",
                 q.id, static_cast<long long>(stats[0].tuples_materialized),
                 static_cast<long long>(stats[1].tuples_materialized),
                 static_cast<long long>(stats[1].batches));
    if (stats[1].tuples_materialized > stats[0].tuples_materialized) {
      std::fprintf(stderr,
                   "bench_batch: batch mode materialized MORE tuples than "
                   "row mode for %s\n",
                   q.id);
      return false;
    }
  }
  return true;
}

void Register() {
  for (const auto& query : kQueries) {
    for (const auto& mode : kModes) {
      std::string name =
          std::string("Batch/") + query.id + "/" + mode.tag + "/t1";
      std::string q = query.text;
      exec::TupleExecMode m = mode.mode;
      std::string tag = mode.tag;
      benchmark::RegisterBenchmark(
          name.c_str(),
          [q, m, tag](benchmark::State& state) {
            RunQueryBenchmark(state, q, Doc(), ModeOpts(m, 1),
                              engine::PlanChoice::kOptimized, {}, tag);
          })
          ->Unit(benchmark::kMillisecond);
    }
    // Batch + morsel driver: the columnar pipeline feeding / draining
    // EvalPatternTuplesParallel.
    std::string name = std::string("Batch/") + query.id + "/batch/t2";
    std::string q = query.text;
    benchmark::RegisterBenchmark(
        name.c_str(),
        [q](benchmark::State& state) {
          exec::EvalOptions opts = ModeOpts(exec::TupleExecMode::kBatch, 2);
          opts.parallel_min_fanout = 64;
          RunQueryBenchmark(state, q, Doc(), opts,
                            engine::PlanChoice::kOptimized, {}, "batch");
        })
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace xqtp::bench

int main(int argc, char** argv) {
  if (!xqtp::bench::VerifyModes()) return 1;
  xqtp::bench::Register();
  return xqtp::bench::BenchMain(argc, argv);
}
