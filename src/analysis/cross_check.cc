#include "analysis/cross_check.h"

#include <cmath>
#include <string>
#include <utility>

#include "exec/core_interp.h"
#include "exec/parallel.h"

namespace xqtp::analysis {

bool ItemsAgree(const xdm::Item& a, const xdm::Item& b) {
  if (a.IsDouble() && b.IsDouble() && std::isnan(a.dbl()) &&
      std::isnan(b.dbl())) {
    return true;
  }
  return a == b;
}

namespace {

bool SameRows(const std::vector<exec::BindingRow>& a,
              const std::vector<exec::BindingRow>& b, size_t* first_diff) {
  size_t n = a.size() < b.size() ? a.size() : b.size();
  for (size_t i = 0; i < n; ++i) {
    if (!(a[i] == b[i])) {
      *first_diff = i;
      return false;
    }
  }
  if (a.size() != b.size()) {
    *first_diff = n;
    return false;
  }
  return true;
}

std::string RenderRow(const exec::BindingRow& row,
                      const StringInterner& interner) {
  std::string out = "[";
  for (size_t i = 0; i < row.fields.size(); ++i) {
    if (i > 0) out += ", ";
    out += interner.NameOf(row.fields[i].first) + ": ";
    const xml::Node* n = row.fields[i].second;
    if (n == nullptr) {
      out += "null";
    } else if (n->name != kInvalidSymbol) {
      out += interner.NameOf(n->name) + "[pre=" + std::to_string(n->pre) + "]";
    } else {
      out += "node[pre=" + std::to_string(n->pre) + "]";
    }
  }
  return out + "]";
}

bool AgreeSeq(const Result<xdm::Sequence>& a, const Result<xdm::Sequence>& b) {
  if (!a.ok() || !b.ok()) return !a.ok() && !b.ok();
  if (a.value().size() != b.value().size()) return false;
  for (size_t i = 0; i < a.value().size(); ++i) {
    if (!ItemsAgree(a.value()[i], b.value()[i])) return false;
  }
  return true;
}

std::string RenderSeqBrief(const Result<xdm::Sequence>& r) {
  if (!r.ok()) return "<error: " + r.status().ToString() + ">";
  std::string out = "len=" + std::to_string(r.value().size()) + " (";
  size_t n = r.value().size() < 8 ? r.value().size() : 8;
  for (size_t i = 0; i < n; ++i) {
    if (i > 0) out += ", ";
    const xdm::Item& item = r.value()[i];
    out += item.IsNode() ? "pre=" + std::to_string(item.node()->pre)
                         : item.StringValue();
  }
  if (n < r.value().size()) out += ", ...";
  return out + ")";
}

bool PlanHasPattern(const algebra::Op& op) {
  return algebra::ComputeStats(op).tree_pattern_ops > 0;
}

/// Parallel-evaluation parameters for the oracle legs: a tiny forced
/// fan-out so even small witness inputs morselize, exercising the
/// driver's partitioning and order-preserving merge on every iteration.
/// The two-thread pool is shared across all checks and intentionally
/// leaked (it must outlive any static-destruction order).
const exec::ParallelContext& OracleParallelContext() {
  static exec::ThreadPool* pool = new exec::ThreadPool(2);
  static const exec::ParallelContext par = [] {
    exec::ParallelContext p;
    p.pool = [](int) { return pool; };
    p.threads = 2;
    p.min_fanout = 2;
    p.morsels_per_thread = 2;
    return p;
  }();
  return par;
}

}  // namespace

const std::vector<exec::PatternAlgo>& CrossCheckAlgos() {
  static const std::vector<exec::PatternAlgo> kAlgos = {
      exec::PatternAlgo::kNLJoin,    exec::PatternAlgo::kStaircase,
      exec::PatternAlgo::kTwig,      exec::PatternAlgo::kStream,
      exec::PatternAlgo::kTwigStack, exec::PatternAlgo::kShredded,
  };
  return kAlgos;
}

Status CrossCheckPattern(const pattern::TreePattern& tp,
                         const xdm::Sequence& context,
                         const StringInterner& interner) {
  auto reference = exec::EvalPattern(tp, context, exec::PatternAlgo::kNLJoin);
  XQTP_RETURN_NOT_OK(reference.status());
  for (exec::PatternAlgo algo : CrossCheckAlgos()) {
    // Sequential leg (the reference itself for NLJoin), then a parallel
    // leg driving the same algorithm through the morsel driver — both
    // must be bit-identical to the nested-loop reference.
    for (int leg = 0; leg < 2; ++leg) {
      bool parallel = leg == 1;
      if (!parallel && algo == exec::PatternAlgo::kNLJoin) continue;
      auto rows = exec::EvalPattern(
          tp, context, algo, parallel ? &OracleParallelContext() : nullptr);
      std::string leg_name =
          std::string(exec::PatternAlgoName(algo)) + (parallel ? "+morsel" : "");
      if (!rows.ok()) {
        return Status::Internal(
            std::string("cross-check: ") + leg_name +
            " failed where NLJoin succeeded on " + tp.ToString(interner) +
            ": " + rows.status().ToString());
      }
      size_t diff = 0;
      if (!SameRows(reference.value(), rows.value(), &diff)) {
        std::string msg = std::string("cross-check: ") + leg_name +
                          " diverges from NLJoin";
        msg += "\n  pattern: " + tp.ToString(interner);
        msg += "\n  row " + std::to_string(diff) + ": NLJoin=" +
               (diff < reference.value().size()
                    ? RenderRow(reference.value()[diff], interner)
                    : std::string("<absent>")) +
               " vs " + leg_name + "=" +
               (diff < rows.value().size()
                    ? RenderRow(rows.value()[diff], interner)
                    : std::string("<absent>"));
        msg += "\n  rows: NLJoin=" + std::to_string(reference.value().size()) +
               " " + leg_name + "=" + std::to_string(rows.value().size());
        return Status::Internal(std::move(msg));
      }
    }
  }
  return Status::OK();
}

Status CrossCheck(const CrossCheckInput& in, const core::VarTable& vars,
                  const exec::Bindings& bindings) {
  if (in.optimized == nullptr) {
    return Status::InvalidArgument("cross-check: optimized plan required");
  }
  struct Route {
    std::string name;
    Result<xdm::Sequence> result;
  };
  std::vector<Route> routes;
  if (in.reference != nullptr) {
    routes.push_back(
        {"core-interp", exec::EvaluateCore(*in.reference, vars, bindings)});
  }
  if (in.unoptimized != nullptr) {
    routes.push_back({"plan(unoptimized, NLJoin)",
                      exec::Evaluate(*in.unoptimized, vars, bindings, {})});
  }
  bool has_pattern = PlanHasPattern(*in.optimized);
  {
    // Batch-vs-row differential legs: the same optimized plan through the
    // row-at-a-time reference path, and through the batch pipeline with a
    // tiny batch size so every multi-row stream crosses batch boundaries.
    // Both must be bit-identical to the default (batch, 1024-row) route
    // below — this is the oracle leg that guards the columnar evaluator.
    exec::EvalOptions ropts;
    ropts.threads = 1;
    ropts.tuple_exec = exec::TupleExecMode::kRow;
    routes.push_back({"plan(optimized, NLJoin, row)",
                      exec::Evaluate(*in.optimized, vars, bindings, ropts)});
    exec::EvalOptions bopts;
    bopts.threads = 1;
    bopts.tuple_batch_rows = 2;
    routes.push_back({"plan(optimized, NLJoin, batch_rows=2)",
                      exec::Evaluate(*in.optimized, vars, bindings, bopts)});
  }
  for (exec::PatternAlgo algo : CrossCheckAlgos()) {
    exec::EvalOptions opts;
    opts.algo = algo;
    opts.threads = 1;
    routes.push_back(
        {std::string("plan(optimized, ") + exec::PatternAlgoName(algo) + ")",
         exec::Evaluate(*in.optimized, vars, bindings, opts)});
    if (has_pattern) {
      // Parallel leg: the same plan through the morsel driver with a
      // forced fan-out, validating partitioning + merge per iteration.
      exec::EvalOptions popts = opts;
      popts.threads = 2;
      popts.parallel_min_fanout = 2;
      popts.parallel_morsels_per_thread = 2;
      routes.push_back({std::string("plan(optimized, ") +
                            exec::PatternAlgoName(algo) + ", threads=2)",
                        exec::Evaluate(*in.optimized, vars, bindings, popts)});
      // Row-mode parallel leg: the morsel driver reached through the
      // row-path bridge (TupleSeq -> batch -> driver -> TupleSeq).
      exec::EvalOptions rpopts = popts;
      rpopts.tuple_exec = exec::TupleExecMode::kRow;
      routes.push_back({std::string("plan(optimized, ") +
                            exec::PatternAlgoName(algo) +
                            ", threads=2, row)",
                        exec::Evaluate(*in.optimized, vars, bindings,
                                       rpopts)});
    }
    // Without a TupleTreePattern every algorithm takes the same code
    // path; one evaluation suffices.
    if (!has_pattern) break;
  }
  for (size_t i = 1; i < routes.size(); ++i) {
    if (AgreeSeq(routes[0].result, routes[i].result)) continue;
    std::string msg = "cross-check: route '" + routes[i].name +
                      "' diverges from '" + routes[0].name + "'";
    msg += "\n  " + routes[0].name + ": " + RenderSeqBrief(routes[0].result);
    msg += "\n  " + routes[i].name + ": " + RenderSeqBrief(routes[i].result);
    return Status::Internal(std::move(msg));
  }
  return Status::OK();
}

}  // namespace xqtp::analysis
