// Shared tree-pattern machinery: the algorithm dispatch behind
// TupleTreePattern (EvalPattern / EvalPatternSequential), the lexical row
// order every algorithm finalizes into, and the governance boundary — a
// cooperative governor check guards every pattern evaluation, and the
// individual algorithms poll on a stride inside their inner loops
// (GovernorTicker), so a deadline or external cancel interrupts even one
// huge pattern operator mid-scan instead of waiting for it to finish.
#include "exec/pattern_eval.h"

#include <algorithm>

#include "common/fault_injection.h"
#include "exec/cost_model.h"
#include "exec/exec_stats.h"
#include "exec/governor.h"
#include "exec/parallel.h"
#include "storage/node_table.h"
#include "xml/document.h"

namespace xqtp::exec {

using pattern::TreePattern;

const char* PatternAlgoName(PatternAlgo algo) {
  switch (algo) {
    case PatternAlgo::kNLJoin:
      return "NLJoin";
    case PatternAlgo::kStaircase:
      return "SCJoin";
    case PatternAlgo::kTwig:
      return "TwigJoin";
    case PatternAlgo::kStream:
      return "Stream";
    case PatternAlgo::kTwigStack:
      return "TwigStack";
    case PatternAlgo::kShredded:
      return "Shredded";
    case PatternAlgo::kCostBased:
      return "CostBased";
  }
  return "?";
}

bool RowLexLess(const BindingRow& a, const BindingRow& b) {
  size_t n = std::min(a.fields.size(), b.fields.size());
  for (size_t i = 0; i < n; ++i) {
    const xml::Node* na = a.fields[i].second;
    const xml::Node* nb = b.fields[i].second;
    if (na != nb) return xml::DocOrderLess(na, nb);
  }
  return a.fields.size() < b.fields.size();
}

void FinalizeRows(std::vector<BindingRow>* rows) {
  std::sort(rows->begin(), rows->end(), RowLexLess);
  rows->erase(std::unique(rows->begin(), rows->end()), rows->end());
}

Result<std::vector<BindingRow>> EvalPatternSequential(
    const TreePattern& tp, const xdm::Sequence& context, PatternAlgo algo) {
  // Every pattern evaluation — morsel or whole — crosses a governance
  // boundary here; the algorithms' inner loops add strided polls on top.
  XQTP_RETURN_NOT_OK(GovernorPoll());
  XQTP_FAULT_POINT("exec.pattern.dispatch");
  switch (algo) {
    case PatternAlgo::kNLJoin:
      return EvalPatternNL(tp, context);
    case PatternAlgo::kStaircase:
      return EvalPatternStaircase(tp, context);
    case PatternAlgo::kTwig:
      return EvalPatternTwig(tp, context);
    case PatternAlgo::kStream:
      return EvalPatternStream(tp, context);
    case PatternAlgo::kTwigStack:
      return EvalPatternTwigStack(tp, context);
    case PatternAlgo::kShredded:
      return storage::EvalPatternShredded(tp, context);
    case PatternAlgo::kCostBased:
      return EvalPatternSequential(tp, context, ChooseAlgorithm(tp, context));
  }
  return Status::Internal("unknown pattern algorithm");
}

Result<std::vector<BindingRow>> EvalPattern(const TreePattern& tp,
                                            const xdm::Sequence& context,
                                            PatternAlgo algo,
                                            const ParallelContext* par) {
  CountPatternEval();
  // Resolve the cost-based choice once, against the full context, so a
  // morselized evaluation runs ONE algorithm across all its morsels.
  if (algo == PatternAlgo::kCostBased) algo = ChooseAlgorithm(tp, context);
  if (par != nullptr) {
    Result<std::vector<BindingRow>> rows = std::vector<BindingRow>{};
    if (TryEvalPatternParallel(tp, context, algo, *par, &rows)) return rows;
  }
  return EvalPatternSequential(tp, context, algo);
}

}  // namespace xqtp::exec
