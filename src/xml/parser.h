// Hand-written, non-validating XML parser for the fragment needed by the
// workloads: elements, attributes, character data, entity references for
// &lt; &gt; &amp; &quot; &apos;, comments and processing instructions
// (skipped). No DTDs, namespaces are kept as part of the name.
#ifndef XQTP_XML_PARSER_H_
#define XQTP_XML_PARSER_H_

#include <memory>
#include <string_view>

#include "common/status.h"
#include "xml/document.h"

namespace xqtp::xml {

/// Parses `input` into a Document whose names are interned in `interner`.
[[nodiscard]]
Result<std::unique_ptr<Document>> Parse(std::string_view input,
                                        StringInterner* interner);

}  // namespace xqtp::xml

#endif  // XQTP_XML_PARSER_H_
