#!/usr/bin/env python3
"""Compile-time negative tests for the thread-safety annotations.

Each NEGATIVE fixture below misuses the annotated lock wrappers
(common/mutex.h) in a way that clang's -Werror=thread-safety must reject:
reading a GUARDED_BY member without the lock, locking the wrong mutex,
calling a REQUIRES function without holding the capability, and leaking a
manually acquired lock. The POSITIVE control uses the wrappers correctly
and must compile cleanly — which also proves the macros are not inert
no-ops under the clang being used.

If no clang++ with -Wthread-safety support is available the script exits
77, which ctest reports as SKIPPED (tests/CMakeLists.txt sets
SKIP_RETURN_CODE 77) — visible, never a silent pass.

Registered by CMake behind XQTP_THREAD_SAFETY_NEGATIVE_TESTS (default ON).
Stdlib only.
"""

import argparse
import os
import shutil
import subprocess
import sys
import tempfile

COMMON = """
#include "common/mutex.h"
#include "common/thread_annotations.h"
using xqtp::CondVar;
using xqtp::Mutex;
using xqtp::MutexLock;
using xqtp::ReaderLock;
using xqtp::SharedMutex;
using xqtp::WriterLock;
"""

POSITIVE_CONTROL = COMMON + """
class Counter {
 public:
  int Get() const {
    MutexLock lock(&mu_);
    return v_;
  }
  void Bump() {
    MutexLock lock(&mu_);
    ++v_;
  }
  int GetShared() const {
    ReaderLock lock(&smu_);
    return w_;
  }
  void SetShared(int w) {
    WriterLock lock(&smu_);
    w_ = w;
  }
  void WaitNonZero() {
    MutexLock lock(&mu_);
    while (v_ == 0) cv_.Wait(mu_);
  }
 private:
  int Unsafe() REQUIRES(mu_) { return v_; }
  mutable Mutex mu_;
  CondVar cv_;
  int v_ GUARDED_BY(mu_) = 0;
  mutable SharedMutex smu_;
  int w_ GUARDED_BY(smu_) = 0;
};
int main() { Counter c; c.Bump(); return c.Get() + c.GetShared(); }
"""

NEGATIVES = {
    "guarded-read-without-lock": COMMON + """
class C {
 public:
  int Get() const { return v_; }  // BAD: v_ is GUARDED_BY(mu_), no lock
 private:
  mutable Mutex mu_;
  int v_ GUARDED_BY(mu_) = 0;
};
int main() { return C().Get(); }
""",
    "wrong-mutex-held": COMMON + """
class C {
 public:
  int Get() const {
    MutexLock lock(&other_mu_);  // BAD: locks the wrong mutex
    return v_;
  }
 private:
  mutable Mutex mu_;
  mutable Mutex other_mu_;
  int v_ GUARDED_BY(mu_) = 0;
};
int main() { return C().Get(); }
""",
    "requires-called-without-lock": COMMON + """
class C {
 public:
  int Get() const { return Locked(); }  // BAD: REQUIRES(mu_) not held
 private:
  int Locked() const REQUIRES(mu_) { return v_; }
  mutable Mutex mu_;
  int v_ GUARDED_BY(mu_) = 0;
};
int main() { return C().Get(); }
""",
    "lock-leaked-at-return": COMMON + """
class C {
 public:
  void Acquire() { mu_.Lock(); }  // BAD: still held at end of function
 private:
  Mutex mu_;
};
int main() { C c; c.Acquire(); return 0; }
""",
    "shared-lock-for-write": COMMON + """
class C {
 public:
  void Set(int v) {
    ReaderLock lock(&smu_);  // BAD: writing under a shared lock
    v_ = v;
  }
 private:
  SharedMutex smu_;
  int v_ GUARDED_BY(smu_) = 0;
};
int main() { C c; c.Set(1); return 0; }
""",
}

FLAGS = ["-std=c++20", "-fsyntax-only", "-Wthread-safety",
         "-Werror=thread-safety"]


def find_clang():
    candidates = [os.environ.get("CLANGXX", "")]
    candidates += ["clang++"] + [f"clang++-{v}" for v in range(21, 11, -1)]
    for c in candidates:
        if c and shutil.which(c):
            return shutil.which(c)
    return None


def compile_snippet(clangxx, src_dir, workdir, name, code):
    path = os.path.join(workdir, name + ".cc")
    with open(path, "w", encoding="utf-8") as f:
        f.write(code)
    proc = subprocess.run([clangxx, *FLAGS, "-I", src_dir, path],
                          capture_output=True, text=True)
    return proc.returncode, proc.stderr


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--src", required=True, help="path to the src/ tree")
    args = ap.parse_args()

    clangxx = find_clang()
    if clangxx is None:
        print("SKIP: no clang++ on PATH — thread-safety negative tests "
              "need clang (gcc has no -Wthread-safety). Install clang or "
              "set CLANGXX to run them.")
        return 77

    with tempfile.TemporaryDirectory(prefix="xqtp-tsa-") as tmp:
        # Positive control first: must compile, proving the toolchain
        # understands the annotations AND the macros are not inert.
        rc, err = compile_snippet(clangxx, args.src, tmp, "positive",
                                  POSITIVE_CONTROL)
        if rc != 0:
            if "unknown warning option" in err or "unsupported option" in err:
                print(f"SKIP: {clangxx} does not support -Wthread-safety:\n"
                      f"{err}")
                return 77
            print(f"FAIL: positive control did not compile under {clangxx}"
                  f" -Werror=thread-safety:\n{err}")
            return 1

        failures = []
        for name, code in sorted(NEGATIVES.items()):
            rc, err = compile_snippet(clangxx, args.src, tmp, name, code)
            if rc == 0:
                failures.append(f"{name}: compiled cleanly — the misuse was "
                                "NOT diagnosed (inert annotation?)")
            elif "thread-safety" not in err and "thread safety" not in err:
                failures.append(f"{name}: failed for the wrong reason "
                                f"(not a thread-safety diagnostic):\n{err}")
            else:
                print(f"OK: {name}: rejected as expected")
        if failures:
            print("thread_safety_negative_test FAILED:")
            for f in failures:
                print(f"  {f}")
            return 1
    print(f"OK: positive control compiled, {len(NEGATIVES)} misuses "
          f"rejected by {clangxx} -Werror=thread-safety")
    return 0


if __name__ == "__main__":
    sys.exit(main())
