#include "analysis/plan_verifier.h"

#include <string>
#include <unordered_set>

#include "analysis/verify_scope.h"

namespace xqtp::analysis {

namespace {

using algebra::Op;
using algebra::OpKind;
using algebra::OpPtr;
using core::VarId;
using pattern::PatternNode;
using pattern::PatternNodePtr;
using pattern::TreePattern;

using FieldSet = std::unordered_set<Symbol>;

const char* OpName(OpKind kind) {
  switch (kind) {
    case OpKind::kMapFromItem: return "MapFromItem";
    case OpKind::kSelect: return "Select";
    case OpKind::kTupleTreePattern: return "TupleTreePattern";
    case OpKind::kInputTuple: return "IN(tuple)";
    case OpKind::kMapToItem: return "MapToItem";
    case OpKind::kTreeJoin: return "TreeJoin";
    case OpKind::kDdo: return "ddo";
    case OpKind::kConst: return "Const";
    case OpKind::kGlobalVar: return "GlobalVar";
    case OpKind::kInputItem: return "IN(item)";
    case OpKind::kFieldAccess: return "IN#field";
    case OpKind::kFnCall: return "FnCall";
    case OpKind::kCompare: return "Compare";
    case OpKind::kArith: return "Arith";
    case OpKind::kAnd: return "And";
    case OpKind::kOr: return "Or";
    case OpKind::kSequence: return "Sequence";
    case OpKind::kIf: return "If";
    case OpKind::kForEach: return "ForEach";
    case OpKind::kLetIn: return "LetIn";
    case OpKind::kScopedVar: return "ScopedVar";
    case OpKind::kTypeswitch: return "Typeswitch";
  }
  return "?";
}

Status Violation(const char* invariant, const std::string& detail) {
  return VerifyScope::Tag(Status::Internal(
      std::string("plan verifier: [") + invariant + "] " + detail));
}

/// The evaluation context of an item plan: the ambient tuple's fields when
/// inside a dependent plan, and whether a current item (IN as item) is
/// available (MapFromItem dependents only).
struct ItemCtx {
  const FieldSet* ambient = nullptr;
  bool has_item = false;
};

class PlanVerifier {
 public:
  explicit PlanVerifier(const PlanVerifyOptions& opts) : opts_(opts) {}

  Status Run(const Op& plan) {
    if (algebra::IsTuplePlan(plan.kind)) {
      return Violation("plan-sort",
                       std::string(OpName(plan.kind)) +
                           " at the plan root: a compiled query is an item "
                           "plan");
    }
    return CheckItem(plan, ItemCtx{});
  }

 private:
  std::string FieldName(Symbol s) const {
    if (opts_.interner != nullptr && s >= 0 &&
        s < static_cast<Symbol>(opts_.interner->size())) {
      return opts_.interner->NameOf(s);
    }
    return "#" + std::to_string(s);
  }

  std::string VarName(VarId v) const {
    if (opts_.vars != nullptr && v >= 0 &&
        v < static_cast<VarId>(opts_.vars->size())) {
      return "$" + opts_.vars->NameOf(v);
    }
    return "$#" + std::to_string(v);
  }

  Status CheckField(Symbol s, const char* where) const {
    if (s == kInvalidSymbol) {
      return Violation("invalid-field",
                       std::string(where) + " carries no field symbol");
    }
    if (opts_.interner != nullptr &&
        (s < 0 || s >= static_cast<Symbol>(opts_.interner->size()))) {
      return Violation("invalid-field",
                       std::string(where) + " field symbol " +
                           std::to_string(s) + " is unknown to the interner");
    }
    return Status::OK();
  }

  Status CheckArity(const Op& op, size_t inputs) const {
    if (op.inputs.size() != inputs) {
      return Violation("op-arity", std::string(OpName(op.kind)) + " expects " +
                                       std::to_string(inputs) +
                                       " inputs, has " +
                                       std::to_string(op.inputs.size()));
    }
    return Status::OK();
  }

  /// dep / dep2 presence per operator kind.
  Status CheckDeps(const Op& op) const {
    bool want_dep = op.kind == OpKind::kMapFromItem ||
                    op.kind == OpKind::kMapToItem ||
                    op.kind == OpKind::kSelect ||
                    op.kind == OpKind::kForEach ||
                    op.kind == OpKind::kLetIn ||
                    op.kind == OpKind::kTypeswitch;
    if (want_dep != (op.dep != nullptr)) {
      return Violation("dep-plan",
                       std::string(OpName(op.kind)) +
                           (want_dep ? " requires a dependent plan"
                                     : " must not carry a dependent plan"));
    }
    bool may_dep2 =
        op.kind == OpKind::kForEach || op.kind == OpKind::kTypeswitch;
    if (op.dep2 != nullptr && !may_dep2) {
      return Violation("dep-plan", std::string(OpName(op.kind)) +
                                       " must not carry a second dependent "
                                       "plan");
    }
    if (op.kind == OpKind::kTypeswitch && op.dep2 == nullptr) {
      return Violation("dep-plan", "Typeswitch requires a default branch");
    }
    return Status::OK();
  }

  Status CheckNodeTest(const NodeTest& test, const char* where) const {
    if (test.kind == NodeTestKind::kName) {
      if (test.name == kInvalidSymbol) {
        return Violation("pattern-test", std::string(where) +
                                             " name test carries no name");
      }
      if (opts_.interner != nullptr &&
          (test.name < 0 ||
           test.name >= static_cast<Symbol>(opts_.interner->size()))) {
        return Violation("pattern-test",
                         std::string(where) + " name test symbol " +
                             std::to_string(test.name) +
                             " is unknown to the interner");
      }
    } else if (test.name != kInvalidSymbol) {
      return Violation("pattern-test",
                       std::string(where) +
                           " non-name test carries a stray name symbol");
    }
    return Status::OK();
  }

  Status CheckPatternNode(const PatternNode& n, bool in_predicate,
                          FieldSet* outputs) const {
    if (!AxisAllowedInPattern(n.axis)) {
      return Violation("pattern-axis",
                       std::string(AxisName(n.axis)) +
                           " axis is not in the pattern grammar (downward "
                           "axes only)");
    }
    XQTP_RETURN_NOT_OK(CheckNodeTest(n.test, "pattern step"));
    if (n.position < 0) {
      return Violation("pattern-test",
                       "pattern step carries a negative positional "
                       "constraint");
    }
    if (n.output != kInvalidSymbol) {
      if (in_predicate) {
        return Violation("pattern-pred-output",
                         "predicate branch annotates output field " +
                             FieldName(n.output) +
                             " (predicate bindings are unobservable)");
      }
      XQTP_RETURN_NOT_OK(CheckField(n.output, "pattern output"));
      if (!outputs->insert(n.output).second) {
        return Violation("pattern-output-dup",
                         "output field " + FieldName(n.output) +
                             " is annotated on more than one step");
      }
    }
    for (const PatternNodePtr& p : n.predicates) {
      XQTP_RETURN_NOT_OK(CheckPatternNode(*p, /*in_predicate=*/true, outputs));
    }
    if (n.next) {
      XQTP_RETURN_NOT_OK(CheckPatternNode(*n.next, in_predicate, outputs));
    }
    return Status::OK();
  }

  Status CheckPattern(const TreePattern& tp) const {
    if (tp.root == nullptr) {
      return Violation("pattern-root", "TupleTreePattern has no steps");
    }
    XQTP_RETURN_NOT_OK(CheckField(tp.input_field, "pattern context"));
    FieldSet outputs;
    XQTP_RETURN_NOT_OK(
        CheckPatternNode(*tp.root, /*in_predicate=*/false, &outputs));
    if (outputs.empty()) {
      return Violation("single-output",
                       "TupleTreePattern annotates no output field");
    }
    if (outputs.size() > 1 && !opts_.allow_multi_output) {
      return Violation("single-output",
                       "TupleTreePattern annotates " +
                           std::to_string(outputs.size()) +
                           " output fields but multi-output patterns are "
                           "disabled");
    }
    return Status::OK();
  }

  /// Verifies a tuple plan evaluated against ambient tuple fields
  /// `ambient` (nullptr outside any dependent context) and computes the
  /// field set of the tuples it produces.
  Status CheckTuple(const Op& op, const FieldSet* ambient, FieldSet* produced) {
    XQTP_RETURN_NOT_OK(CheckDeps(op));
    switch (op.kind) {
      case OpKind::kInputTuple:
        XQTP_RETURN_NOT_OK(CheckArity(op, 0));
        if (ambient == nullptr) {
          return Violation("tuple-context",
                           "IN (tuple) used outside a dependent plan");
        }
        *produced = *ambient;
        return Status::OK();
      case OpKind::kMapFromItem: {
        XQTP_RETURN_NOT_OK(CheckArity(op, 1));
        XQTP_RETURN_NOT_OK(CheckField(op.field, "MapFromItem"));
        // The item input runs in the enclosing context, without a current
        // item; the dependent plan sees the enclosing tuple plus the
        // current item (exec::Evaluator::EvalTuples).
        XQTP_RETURN_NOT_OK(
            CheckItem(*op.inputs[0], ItemCtx{ambient, /*has_item=*/false}));
        XQTP_RETURN_NOT_OK(
            CheckItem(*op.dep, ItemCtx{ambient, /*has_item=*/true}));
        produced->clear();
        produced->insert(op.field);
        return Status::OK();
      }
      case OpKind::kSelect: {
        XQTP_RETURN_NOT_OK(CheckArity(op, 1));
        FieldSet in;
        XQTP_RETURN_NOT_OK(CheckTuple(*op.inputs[0], ambient, &in));
        XQTP_RETURN_NOT_OK(
            CheckItem(*op.dep, ItemCtx{&in, /*has_item=*/false}));
        *produced = std::move(in);
        return Status::OK();
      }
      case OpKind::kTupleTreePattern: {
        XQTP_RETURN_NOT_OK(CheckArity(op, 1));
        XQTP_RETURN_NOT_OK(CheckPattern(op.tp));
        FieldSet in;
        XQTP_RETURN_NOT_OK(CheckTuple(*op.inputs[0], ambient, &in));
        if (in.count(op.tp.input_field) == 0) {
          return Violation("field-def-use",
                           "TupleTreePattern context field " +
                               FieldName(op.tp.input_field) +
                               " is produced by no upstream operator");
        }
        for (Symbol s : op.tp.OutputFields()) in.insert(s);
        *produced = std::move(in);
        return Status::OK();
      }
      default:
        return Violation("plan-sort", std::string(OpName(op.kind)) +
                                          " used where a tuple plan is "
                                          "expected");
    }
  }

  Status CheckItem(const Op& op, ItemCtx ctx) {
    if (algebra::IsTuplePlan(op.kind)) {
      return Violation("plan-sort", std::string(OpName(op.kind)) +
                                        " used where an item plan is "
                                        "expected");
    }
    XQTP_RETURN_NOT_OK(CheckDeps(op));
    switch (op.kind) {
      case OpKind::kConst:
        return CheckArity(op, 0);
      case OpKind::kGlobalVar: {
        XQTP_RETURN_NOT_OK(CheckArity(op, 0));
        if (op.var == core::kNoVar) {
          return Violation("global-var", "GlobalVar carries no variable");
        }
        if (opts_.vars != nullptr) {
          if (op.var < 0 ||
              op.var >= static_cast<VarId>(opts_.vars->size())) {
            return Violation("global-var",
                             "GlobalVar id " + std::to_string(op.var) +
                                 " is not registered in the VarTable");
          }
          if (!opts_.vars->IsGlobal(op.var)) {
            return Violation("global-var",
                             VarName(op.var) + " is not a query global");
          }
        }
        return Status::OK();
      }
      case OpKind::kInputItem:
        XQTP_RETURN_NOT_OK(CheckArity(op, 0));
        if (!ctx.has_item) {
          return Violation("item-context",
                           "IN (item) used outside a MapFromItem dependent "
                           "plan");
        }
        return Status::OK();
      case OpKind::kFieldAccess: {
        XQTP_RETURN_NOT_OK(CheckArity(op, 0));
        XQTP_RETURN_NOT_OK(CheckField(op.field, "IN#field"));
        if (ctx.ambient == nullptr) {
          return Violation("tuple-context",
                           "IN#" + FieldName(op.field) +
                               " used outside a tuple context");
        }
        if (ctx.ambient->count(op.field) == 0) {
          return Violation("field-def-use",
                           "IN#" + FieldName(op.field) +
                               " reads a field produced by no upstream "
                               "operator");
        }
        return Status::OK();
      }
      case OpKind::kTreeJoin:
        XQTP_RETURN_NOT_OK(CheckArity(op, 1));
        XQTP_RETURN_NOT_OK(CheckNodeTest(op.test, "TreeJoin"));
        return CheckItem(*op.inputs[0], ctx);
      case OpKind::kDdo:
        XQTP_RETURN_NOT_OK(CheckArity(op, 1));
        return CheckItem(*op.inputs[0], ctx);
      case OpKind::kMapToItem: {
        XQTP_RETURN_NOT_OK(CheckArity(op, 1));
        FieldSet fields;
        XQTP_RETURN_NOT_OK(CheckTuple(*op.inputs[0], ctx.ambient, &fields));
        // Per-tuple dependents see that tuple only — no current item.
        return CheckItem(*op.dep, ItemCtx{&fields, /*has_item=*/false});
      }
      case OpKind::kFnCall: {
        int arity = core::CoreFnArity(op.fn);
        int have = static_cast<int>(op.inputs.size());
        if ((arity >= 0 && have != arity) || (arity < 0 && have < 2)) {
          return Violation(
              "fn-arity", std::string(core::CoreFnName(op.fn)) + " expects " +
                              (arity >= 0 ? std::to_string(arity)
                                          : std::string("at least 2")) +
                              " arguments, has " + std::to_string(have));
        }
        for (const OpPtr& in : op.inputs) {
          XQTP_RETURN_NOT_OK(CheckItem(*in, ctx));
        }
        return Status::OK();
      }
      case OpKind::kCompare:
      case OpKind::kArith:
      case OpKind::kAnd:
      case OpKind::kOr:
        XQTP_RETURN_NOT_OK(CheckArity(op, 2));
        for (const OpPtr& in : op.inputs) {
          XQTP_RETURN_NOT_OK(CheckItem(*in, ctx));
        }
        return Status::OK();
      case OpKind::kSequence:
        for (const OpPtr& in : op.inputs) {
          XQTP_RETURN_NOT_OK(CheckItem(*in, ctx));
        }
        return Status::OK();
      case OpKind::kIf:
        XQTP_RETURN_NOT_OK(CheckArity(op, 3));
        for (const OpPtr& in : op.inputs) {
          XQTP_RETURN_NOT_OK(CheckItem(*in, ctx));
        }
        return Status::OK();
      case OpKind::kForEach: {
        XQTP_RETURN_NOT_OK(CheckArity(op, 1));
        XQTP_RETURN_NOT_OK(CheckItem(*op.inputs[0], ctx));
        if (op.var == core::kNoVar) {
          return Violation("scoped-var-scope",
                           "ForEach carries no loop variable");
        }
        if (op.pos_var == op.var) {
          return Violation("scoped-var-scope",
                           "ForEach binds the same variable as both item "
                           "and position");
        }
        scoped_.insert(op.var);
        if (op.pos_var != core::kNoVar) scoped_.insert(op.pos_var);
        Status st = op.dep2 != nullptr ? CheckItem(*op.dep2, ctx)
                                       : Status::OK();
        if (st.ok()) st = CheckItem(*op.dep, ctx);
        scoped_.erase(op.var);
        if (op.pos_var != core::kNoVar) scoped_.erase(op.pos_var);
        return st;
      }
      case OpKind::kLetIn: {
        XQTP_RETURN_NOT_OK(CheckArity(op, 1));
        XQTP_RETURN_NOT_OK(CheckItem(*op.inputs[0], ctx));
        if (op.var == core::kNoVar) {
          return Violation("scoped-var-scope",
                           "LetIn carries no variable");
        }
        scoped_.insert(op.var);
        Status st = CheckItem(*op.dep, ctx);
        scoped_.erase(op.var);
        return st;
      }
      case OpKind::kTypeswitch: {
        XQTP_RETURN_NOT_OK(CheckArity(op, 1));
        XQTP_RETURN_NOT_OK(CheckItem(*op.inputs[0], ctx));
        if (op.var == core::kNoVar || op.pos_var == core::kNoVar) {
          return Violation("scoped-var-scope",
                           "Typeswitch requires both a case and a default "
                           "binder");
        }
        scoped_.insert(op.var);
        Status st = CheckItem(*op.dep, ctx);
        scoped_.erase(op.var);
        if (st.ok()) {
          scoped_.insert(op.pos_var);
          st = CheckItem(*op.dep2, ctx);
          scoped_.erase(op.pos_var);
        }
        return st;
      }
      case OpKind::kScopedVar:
        XQTP_RETURN_NOT_OK(CheckArity(op, 0));
        if (scoped_.count(op.var) == 0) {
          return Violation("scoped-var-scope",
                           "ScopedVar " + VarName(op.var) +
                               " references no enclosing ForEach/LetIn/"
                               "Typeswitch binder");
        }
        return Status::OK();
      case OpKind::kMapFromItem:
      case OpKind::kSelect:
      case OpKind::kTupleTreePattern:
      case OpKind::kInputTuple:
        break;  // unreachable: rejected by the IsTuplePlan guard above
    }
    return Violation("plan-sort", "unknown operator kind");
  }

  const PlanVerifyOptions& opts_;
  std::unordered_set<VarId> scoped_;
};

}  // namespace

Status VerifyPlan(const algebra::Op& plan, const PlanVerifyOptions& opts) {
  PlanVerifier verifier(opts);
  Status st = verifier.Run(plan);
  if (st.ok()) VerifyScope::ClearFiredTrail();
  return st;
}

}  // namespace xqtp::analysis
