#include <gtest/gtest.h>

#include "common/interner.h"
#include "common/status.h"

namespace xqtp {
namespace {

TEST(Interner, DenseStableSymbols) {
  StringInterner in;
  Symbol a = in.Intern("alpha");
  Symbol b = in.Intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(in.Intern("alpha"), a);
  EXPECT_EQ(in.NameOf(a), "alpha");
  EXPECT_EQ(in.NameOf(b), "beta");
  EXPECT_EQ(in.size(), 2u);
}

TEST(Interner, LookupWithoutInterning) {
  StringInterner in;
  EXPECT_EQ(in.Lookup("nope"), kInvalidSymbol);
  Symbol a = in.Intern("yes");
  EXPECT_EQ(in.Lookup("yes"), a);
  EXPECT_EQ(in.size(), 1u);
}

// The execution-freeze contract (read-only interner during Execute): the
// morsel-parallel driver reads symbol streams from worker threads without
// locking, which is only safe because nothing interns mid-query.
TEST(Interner, ExecutionFreezeNests) {
  StringInterner in;
  Symbol a = in.Intern("before");
  EXPECT_FALSE(in.frozen());
  {
    StringInterner::ExecutionFreeze outer(in);
    EXPECT_TRUE(in.frozen());
    {
      StringInterner::ExecutionFreeze inner(in);
      EXPECT_TRUE(in.frozen());
      // Read paths stay available under the freeze.
      EXPECT_EQ(in.Lookup("before"), a);
      EXPECT_EQ(in.NameOf(a), "before");
    }
    EXPECT_TRUE(in.frozen());
  }
  EXPECT_FALSE(in.frozen());
  EXPECT_NE(in.Intern("after"), a);
}

#ifndef NDEBUG
TEST(InternerDeathTest, InternDuringExecutionAsserts) {
  StringInterner in;
  StringInterner::ExecutionFreeze freeze(in);
  EXPECT_DEATH(in.Intern("mid-query"), "during execution");
}
#endif

TEST(Status, CodesAndMessages) {
  Status ok = Status::OK();
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.ToString(), "OK");
  Status bad = Status::InvalidArgument("oops");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(bad.ToString(), "InvalidArgument: oops");
}

TEST(Result, ValueAndError) {
  Result<int> good(7);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 7);
  Result<int> bad(Status::TypeError("t"));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kTypeError);
}

TEST(Result, AssignOrReturnPropagates) {
  auto inner = [](bool fail) -> Result<int> {
    if (fail) return Status::Internal("x");
    return 5;
  };
  auto outer = [&](bool fail) -> Result<int> {
    XQTP_ASSIGN_OR_RETURN(int v, inner(fail));
    return v + 1;
  };
  EXPECT_EQ(*outer(false), 6);
  EXPECT_FALSE(outer(true).ok());
}

}  // namespace
}  // namespace xqtp
