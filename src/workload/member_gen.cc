#include "workload/member_gen.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <random>
#include <vector>

namespace xqtp::workload {

namespace {

/// Average bytes per element when serialized: "<t042></t042>" ~ 13 bytes
/// plus tree overhead.
constexpr size_t kBytesPerElement = 14;

/// Branching factor b so that a complete b-ary tree with `levels` levels
/// has about `total` nodes (1 + b + b^2 + ... + b^(levels-1) = total).
double SolveBranching(int total, int levels) {
  if (levels <= 1) return 1.0;
  double lo = 1.0001, hi = static_cast<double>(total);
  for (int it = 0; it < 64; ++it) {
    double mid = 0.5 * (lo + hi);
    double sum = 0, pow = 1;
    for (int k = 0; k < levels; ++k) {
      sum += pow;
      pow *= mid;
      if (sum > total) break;
    }
    (sum > total ? hi : lo) = mid;
  }
  return 0.5 * (lo + hi);
}

struct Shape {
  int tag = 1;
  int depth = 1;
  std::vector<int> children;
};

}  // namespace

size_t ApproxSerializedBytes(int node_count) {
  return static_cast<size_t>(node_count) * kBytesPerElement;
}

int NodeCountForBytes(size_t bytes) {
  return static_cast<int>(bytes / kBytesPerElement);
}

std::unique_ptr<xml::Document> GenerateMember(const MemberParams& params,
                                              StringInterner* interner) {
  std::mt19937_64 rng(params.seed);
  std::uniform_int_distribution<int> tag_dist(1, params.num_tags);

  // Level-structured tree: level sizes follow a geometric progression so
  // the document is as wide as its depth bound allows (the shape of the
  // MemBeR documents: exact depth, uniform tags). Each node's parent is a
  // uniformly random node of the previous level; the first node of every
  // level chains to the previous level's first node, guaranteeing a
  // first-child spine of full depth (Section 5.3's (/t1[1])^k walks it).
  int depth = std::max(1, params.max_depth);
  int n = std::max(1, params.node_count);
  double b = SolveBranching(n, depth);
  std::vector<int> level_size(static_cast<size_t>(depth));
  level_size[0] = 1;
  int used = 1;
  for (int k = 1; k < depth; ++k) {
    double ideal = level_size[static_cast<size_t>(k - 1)] * b;
    int sz = std::max(1, static_cast<int>(std::lround(ideal)));
    sz = std::min(sz, n - used);
    level_size[static_cast<size_t>(k)] = sz;
    used += sz;
    if (used >= n) {
      for (int j = k + 1; j < depth; ++j) level_size[static_cast<size_t>(j)] = 0;
      break;
    }
  }
  // Put any remainder on the last non-empty level.
  for (int k = depth - 1; k >= 0 && used < n; --k) {
    if (level_size[static_cast<size_t>(k)] > 0) {
      level_size[static_cast<size_t>(k)] += n - used;
      used = n;
    }
  }

  std::vector<Shape> nodes(static_cast<size_t>(n));
  std::vector<std::vector<int>> levels(static_cast<size_t>(depth));
  int next = 0;
  for (int k = 0; k < depth; ++k) {
    for (int i = 0; i < level_size[static_cast<size_t>(k)]; ++i) {
      int id = next++;
      nodes[static_cast<size_t>(id)].tag = tag_dist(rng);
      nodes[static_cast<size_t>(id)].depth = k + 1;
      levels[static_cast<size_t>(k)].push_back(id);
      if (k == 0) continue;
      const std::vector<int>& parents = levels[static_cast<size_t>(k - 1)];
      int parent;
      if (i == 0) {
        parent = parents.front();  // the spine
      } else {
        std::uniform_int_distribution<size_t> pick(0, parents.size() - 1);
        parent = parents[pick(rng)];
      }
      nodes[static_cast<size_t>(parent)].children.push_back(id);
    }
  }

  // Plant twig instances so the QE workload queries have matches: a chain
  // t01/t02/t03/t04 and the QE3 shape t01[t02[t03]/t04[t03]], rooted at
  // random nodes with enough depth budget below them.
  if (params.plant_twigs > 0 && params.num_tags >= 4 && depth >= 4) {
    auto first_child = [&](int id) -> int {
      return nodes[static_cast<size_t>(id)].children.empty()
                 ? -1
                 : nodes[static_cast<size_t>(id)].children.front();
    };
    auto second_child = [&](int id) -> int {
      return nodes[static_cast<size_t>(id)].children.size() < 2
                 ? -1
                 : nodes[static_cast<size_t>(id)].children[1];
    };
    // Candidate roots: nodes whose level leaves 3 more levels below.
    std::vector<int> candidates;
    for (int k = 1; k + 3 < depth; ++k) {
      for (int id : levels[static_cast<size_t>(k)]) candidates.push_back(id);
    }
    if (!candidates.empty()) {
      std::uniform_int_distribution<size_t> pick(0, candidates.size() - 1);
      for (int p = 0; p < params.plant_twigs; ++p) {
        int n1 = candidates[pick(rng)];
        int n2 = first_child(n1);
        int n3 = n2 < 0 ? -1 : first_child(n2);
        int n4 = n3 < 0 ? -1 : first_child(n3);
        if (n2 < 0 || n3 < 0 || n4 < 0) continue;
        nodes[static_cast<size_t>(n1)].tag = 1;
        nodes[static_cast<size_t>(n2)].tag = 2;
        nodes[static_cast<size_t>(n3)].tag = 3;
        nodes[static_cast<size_t>(n4)].tag = 4;
        // QE3's second branch: t02 also gets a t04 child with a t03 child
        // (t01[t02[t03]/t04[t03]]).
        int m2 = second_child(n2);
        int m3 = m2 < 0 ? -1 : first_child(m2);
        if (m2 >= 0 && m3 >= 0) {
          nodes[static_cast<size_t>(m2)].tag = 4;
          nodes[static_cast<size_t>(m3)].tag = 3;
        }
      }
    }
  }

  xml::DocumentBuilder builder(interner);
  char tag_name[16];
  // Tag naming follows the paper: "t01".."t100" for the Table 1 documents,
  // "t1" for the single-tag deep document of Section 5.3.
  const char* fmt = params.num_tags >= 10 ? "t%02d" : "t%d";
  struct Frame {
    int node;
    size_t next_child;
  };
  std::vector<Frame> stack;
  auto open = [&](int id) {
    std::snprintf(tag_name, sizeof(tag_name), fmt,
                  nodes[static_cast<size_t>(id)].tag);
    builder.StartElement(tag_name);
    stack.push_back({id, 0});
  };
  open(0);
  while (!stack.empty()) {
    Frame& f = stack.back();
    Shape& s = nodes[static_cast<size_t>(f.node)];
    if (f.next_child < s.children.size()) {
      int child = s.children[f.next_child++];
      open(child);
    } else {
      builder.EndElement();
      stack.pop_back();
    }
  }
  return builder.Finish();
}

}  // namespace xqtp::workload
