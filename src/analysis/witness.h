// Witness documents for the translation-validation oracle
// (analysis/equiv_checker.h): a cached corpus of small XML documents on
// which a "before" and an "after" form of a rewrite are both executed —
// a rewrite is flagged as unsound as soon as the two forms disagree on
// any witness. The corpus mixes curated adversarial documents (recursive
// same-tag nesting, duplicate siblings, mixed content, empty matches,
// positional runs) with deterministically generated random trees, all
// over one small tag alphabet shared with the query generator
// (analysis/qgen.h) so generated queries actually hit the documents.
//
// Also hosts the witness *shrinker*: greedy structural minimization of a
// diverging document under a caller-supplied divergence predicate, so a
// reported counterexample is small enough to debug by eye.
#ifndef XQTP_ANALYSIS_WITNESS_H_
#define XQTP_ANALYSIS_WITNESS_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/interner.h"
#include "xml/document.h"

namespace xqtp::analysis {

/// One document of the witness corpus.
struct WitnessDoc {
  std::string name;  ///< stable id, e.g. "dup-siblings" or "gen-30"
  std::string xml;   ///< source text (serialized into failure artifacts)
  std::unique_ptr<xml::Document> doc;
};

/// The witness corpus. Documents are parsed once with the engine's
/// interner (tag Symbols must match the compiled query's) and cached for
/// the checker's lifetime. Every document is rooted at <r> so paths
/// starting with /r and descendant steps both find context nodes.
class WitnessCorpus {
 public:
  explicit WitnessCorpus(StringInterner* interner);

  const std::vector<WitnessDoc>& docs() const { return docs_; }

  /// The element-tag alphabet used by the corpus and by qgen.
  static const std::vector<std::string>& TagAlphabet();

 private:
  void Add(std::string name, std::string xml, StringInterner* interner);

  std::vector<WitnessDoc> docs_;
};

/// True iff the document still exhibits the divergence being minimized.
using WitnessPredicate = std::function<bool(const xml::Document&)>;

/// Greedily minimizes `xml_text` while `pred` stays true: repeatedly tries
/// deleting subtrees, hoisting an element's children into its place, and
/// dropping attributes, keeping every edit that preserves the divergence.
/// `max_checks` bounds the number of predicate evaluations. Returns the
/// serialized minimal document (the input text if nothing could be
/// removed). The caller must ensure `pred` holds on the input.
std::string ShrinkWitness(const std::string& xml_text,
                          StringInterner* interner,
                          const WitnessPredicate& pred, int max_checks = 400);

}  // namespace xqtp::analysis

#endif  // XQTP_ANALYSIS_WITNESS_H_
