#include <gtest/gtest.h>

#include "engine/engine.h"

namespace xqtp::engine {
namespace {

TEST(EngineTest, LoadAndFindDocument) {
  Engine e;
  auto doc = e.LoadDocument("d", "<a><b/></a>");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(e.FindDocument("d"), doc.value());
  EXPECT_EQ(e.FindDocument("x"), nullptr);
}

TEST(EngineTest, LoadRejectsBadXml) {
  Engine e;
  EXPECT_FALSE(e.LoadDocument("d", "<a><b></a>").ok());
}

TEST(EngineTest, DocumentsGetDistinctIds) {
  Engine e;
  auto d1 = e.LoadDocument("d1", "<a/>");
  auto d2 = e.LoadDocument("d2", "<a/>");
  ASSERT_TRUE(d1.ok() && d2.ok());
  EXPECT_NE(d1.value()->id(), d2.value()->id());
}

TEST(EngineTest, CompileExposesAllPhases) {
  Engine e;
  auto cq = e.Compile("$d//person[emailaddress]/name");
  ASSERT_TRUE(cq.ok()) << cq.status().ToString();
  EXPECT_EQ(cq->source(), "$d//person[emailaddress]/name");
  // Normalized form still has the typeswitch; rewritten form does not.
  std::string explain = e.Explain(*cq);
  EXPECT_NE(explain.find("typeswitch"), std::string::npos);
  EXPECT_NE(explain.find("TupleTreePattern"), std::string::npos);
  EXPECT_NE(explain.find("== optimized plan =="), std::string::npos);
}

TEST(EngineTest, GlobalNames) {
  Engine e;
  auto cq = e.Compile("for $x in $a/p return $b/q");
  ASSERT_TRUE(cq.ok());
  std::vector<std::string> names = cq->GlobalNames();
  EXPECT_EQ(names, (std::vector<std::string>{"a", "b"}));
}

TEST(EngineTest, RunConvenience) {
  Engine e;
  auto doc = e.LoadDocument("d", "<r><p><q>hi</q></p></r>");
  ASSERT_TRUE(doc.ok());
  auto res = e.Run("$d/r/p/q", *doc.value());
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  ASSERT_EQ(res->size(), 1u);
  EXPECT_EQ((*res)[0].StringValue(), "hi");
}

TEST(EngineTest, CompileOptionsDisableRewrite) {
  Engine e;
  CompileOptions opts;
  opts.rewrite = false;
  auto cq = e.Compile("$d//person[emailaddress]/name", opts);
  ASSERT_TRUE(cq.ok());
  // Without the rewrite phase the typeswitch survives into the plan side
  // (compiled via the scoped Typeswitch operator).
  algebra::PlanStats stats = cq->Stats();
  EXPECT_EQ(stats.tree_pattern_ops, 0);
}

TEST(EngineTest, OldEngineModeKeepsTreeJoins) {
  Engine e;
  CompileOptions opts;
  opts.detect_tree_patterns = false;
  auto cq = e.Compile("$d//person[emailaddress]/name", opts);
  ASSERT_TRUE(cq.ok());
  algebra::PlanStats stats = cq->Stats();
  EXPECT_EQ(stats.tree_pattern_ops, 0);
  EXPECT_EQ(stats.tree_join_ops, 3);
}

TEST(EngineTest, StatsForDetectedPattern) {
  Engine e;
  auto cq = e.Compile("$d//person[emailaddress]/name");
  ASSERT_TRUE(cq.ok());
  algebra::PlanStats stats = cq->Stats();
  EXPECT_EQ(stats.tree_pattern_ops, 1);
  EXPECT_EQ(stats.tree_join_ops, 0);
  EXPECT_EQ(stats.max_pattern_steps, 3);
  EXPECT_EQ(stats.ddo_ops, 0);
}

TEST(EngineTest, ExecuteAgainstTwoDocuments) {
  Engine e;
  auto d1 = e.LoadDocument("d1", "<r><x>1</x></r>");
  auto d2 = e.LoadDocument("d2", "<r><x>2</x></r>");
  ASSERT_TRUE(d1.ok() && d2.ok());
  auto cq = e.Compile("($a/r/x, $b/r/x)");
  ASSERT_TRUE(cq.ok());
  Engine::GlobalMap globals{
      {"a", {xdm::Item(d1.value()->root())}},
      {"b", {xdm::Item(d2.value()->root())}},
  };
  auto res = e.Execute(*cq, globals);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  ASSERT_EQ(res->size(), 2u);
  EXPECT_EQ((*res)[0].StringValue(), "1");
  EXPECT_EQ((*res)[1].StringValue(), "2");
}

TEST(EngineTest, CompileErrorsPropagate) {
  Engine e;
  EXPECT_FALSE(e.Compile("for $x in").ok());
  EXPECT_FALSE(e.Compile("fn:unknown-function($d)").ok());
}

}  // namespace
}  // namespace xqtp::engine
