// Query resource governance: a per-execution QueryGovernor holding a
// monotonic deadline, an externally triggerable cancellation token, and a
// byte-accounted memory budget, checked COOPERATIVELY — on a stride at
// operator boundaries in the evaluator, once per TupleBatch (not per
// row) in the columnar tuple pipeline, on a stride inside the
// pattern-evaluation inner loops, per morsel in the parallel driver,
// and once per fixpoint round in the rewriter/optimizer so compilation
// of adversarial queries is bounded too. There is no preemption: a
// check is one relaxed atomic load (cancel), one clock read (deadline),
// and one comparison (budget), and the strides keep the total governed
// overhead under 2% (bench_governor measures it).
//
// Propagation is ambient, like ExecStats: Evaluate installs a
// ScopedGovernor for the calling thread, the morsel driver installs one
// per worker morsel, and deep code polls the thread-local current
// governor without any signature changes. No governor installed = every
// poll is a no-op (the bench's "governor-off" configuration).
#ifndef XQTP_EXEC_GOVERNOR_H_
#define XQTP_EXEC_GOVERNOR_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>

#include "common/status.h"

namespace xqtp::exec {

/// Externally triggerable cancellation: the client keeps a shared_ptr,
/// hands it to EvalOptions::cancel_token, and may call Cancel() from any
/// thread at any time — the running query observes it at its next
/// governor check and unwinds with Status::Cancelled.
class CancelToken {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Resource limits for one query execution. All limits are optional and
/// independent; an unset limit is never checked.
struct GovernorLimits {
  /// Monotonic deadline; the query returns kDeadlineExceeded at the first
  /// check past it.
  std::optional<std::chrono::steady_clock::time_point> deadline;
  /// Accounted-byte budget for materialized intermediate results
  /// (<= 0 = unlimited); exceeding it returns kResourceExhausted.
  int64_t memory_budget_bytes = 0;
  /// External cancellation (may be null).
  std::shared_ptr<CancelToken> cancel_token;

  bool Any() const {
    return deadline.has_value() || memory_budget_bytes > 0 ||
           cancel_token != nullptr;
  }
};

/// One query's resource accountant. Shared by the coordinating thread and
/// every worker morsel; all members are thread-safe. Lives on the
/// Evaluate frame, strictly outliving the pool workers that poll it.
class QueryGovernor {
 public:
  explicit QueryGovernor(const GovernorLimits& limits) : limits_(limits) {}
  QueryGovernor(const QueryGovernor&) = delete;
  QueryGovernor& operator=(const QueryGovernor&) = delete;

  /// One cooperative check: cancellation, then deadline, then budget.
  /// Named error Status on the first tripped limit; the first trip is
  /// sticky, so every later check returns the same verdict and unwinding
  /// code cannot accidentally "un-cancel" a query.
  [[nodiscard]]
  Status Check();

  /// Accounts `bytes` of materialized intermediate state (negative =
  /// release). Returns kResourceExhausted when the budget is exceeded.
  [[nodiscard]]
  Status Charge(int64_t bytes);

  /// Releases previously charged bytes without a budget check (unwind
  /// paths release past the tripped limit).
  void Release(int64_t bytes) {
    accounted_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  int64_t checks() const { return checks_.load(std::memory_order_relaxed); }
  int64_t accounted_bytes() const {
    return accounted_.load(std::memory_order_relaxed);
  }
  int64_t peak_bytes() const {
    return peak_.load(std::memory_order_relaxed);
  }

 private:
  [[nodiscard]]
  Status Trip(Status s);

  const GovernorLimits limits_;
  std::atomic<int64_t> checks_{0};
  std::atomic<int64_t> accounted_{0};
  std::atomic<int64_t> peak_{0};
  /// 0 = not tripped; otherwise the StatusCode of the first trip. The
  /// message is rebuilt from the limits (cheaper than a guarded string).
  std::atomic<int> tripped_{0};
};

/// The governor observed by ambient polls on this thread, or nullptr.
QueryGovernor* CurrentGovernor();

/// RAII installation of the ambient governor, mirroring ScopedExecStats:
/// Evaluate installs one on the coordinating thread, the morsel driver
/// installs one per worker morsel. Scopes nest and restore on exit.
class ScopedGovernor {
 public:
  explicit ScopedGovernor(QueryGovernor* governor);
  ~ScopedGovernor();
  ScopedGovernor(const ScopedGovernor&) = delete;
  ScopedGovernor& operator=(const ScopedGovernor&) = delete;

 private:
  QueryGovernor* previous_;
};

/// One ambient check: no-op (OK) without an installed governor. The
/// operator-boundary and per-round call sites use this directly.
[[nodiscard]]
inline Status GovernorPoll() {
  QueryGovernor* g = CurrentGovernor();
  if (g == nullptr) return Status::OK();
  return g->Check();
}

/// Strided ambient poll for tight loops (pattern-evaluation inner loops):
/// Tick() is a branch and an increment on all but every kStride-th call,
/// where it runs one governor check. The first failure latches; the loop
/// breaks on false and the caller surfaces status(). Constructed once per
/// loop nest so the thread-local lookup happens once, not per iteration.
class GovernorTicker {
 public:
  GovernorTicker() : governor_(CurrentGovernor()) {}

  /// Returns false once the governor has tripped (loops should bail out).
  /// The stride branch comes first so the common path is one increment
  /// and one mask; a tripped ticker is therefore observed within kStride
  /// iterations, not instantly — the bailout bound, not a correctness
  /// window, since the verdict is latched in status_.
  bool Tick() {
    if (governor_ == nullptr) return true;
    if ((++count_ & (kStride - 1)) != 0) return true;
    if (!status_.ok()) return false;
    status_ = governor_->Check();
    return status_.ok();
  }

  /// The first non-OK check result, or OK. Callers return this after a
  /// bailed-out loop.
  [[nodiscard]]
  const Status& status() const { return status_; }

 private:
  static constexpr uint32_t kStride = 1024;
  QueryGovernor* governor_;
  uint32_t count_ = 0;
  Status status_;
};

/// Scoped byte accounting against the ambient governor: Grow charges,
/// the destructor releases everything still charged — so a query that
/// trips any limit mid-accumulation unwinds back to zero accounted bytes
/// and the governor can be reused (no partial-result leak in the
/// accountant). The columnar tuple pipeline charges once per produced
/// TupleBatch (TupleBatch::ApproxBytes); row-mode loops charge per
/// materialized tuple/sequence. Charges are batched locally and flushed to the shared
/// accountant every kFlushBytes (per-part charges in the evaluator's
/// accumulation loops would otherwise pay an atomic RMW per tuple —
/// measurable on cheap plans, see bench_governor). The accounting
/// granularity is therefore kFlushBytes per live scope; budgets are
/// megabyte-scale, so the undercount is noise. No-op without an
/// installed governor.
class ScopedMemoryCharge {
 public:
  ScopedMemoryCharge() : governor_(CurrentGovernor()) {}
  ~ScopedMemoryCharge() {
    if (governor_ != nullptr && charged_ > 0) governor_->Release(charged_);
  }
  ScopedMemoryCharge(const ScopedMemoryCharge&) = delete;
  ScopedMemoryCharge& operator=(const ScopedMemoryCharge&) = delete;

  /// Accounts `bytes` more; kResourceExhausted when the flushed total
  /// exceeds the budget.
  [[nodiscard]]
  Status Grow(int64_t bytes) {
    if (governor_ == nullptr || bytes <= 0) return Status::OK();
    pending_ += bytes;
    if (pending_ < kFlushBytes) return Status::OK();
    int64_t flush = pending_;
    pending_ = 0;
    charged_ += flush;
    return governor_->Charge(flush);
  }

 private:
  static constexpr int64_t kFlushBytes = 4096;
  QueryGovernor* governor_;
  int64_t charged_ = 0;   // flushed to the governor; released in dtor
  int64_t pending_ = 0;   // accumulated locally, below the flush threshold
};

}  // namespace xqtp::exec

#endif  // XQTP_EXEC_GOVERNOR_H_
