#include <gtest/gtest.h>

#include <set>

#include "engine/engine.h"
#include "workload/member_gen.h"
#include "workload/variants.h"
#include "workload/xmark_gen.h"

namespace xqtp::workload {
namespace {

TEST(MemberGen, RespectsNodeCountAndDepth) {
  StringInterner in;
  MemberParams p;
  p.node_count = 5000;
  p.max_depth = 4;
  p.num_tags = 100;
  auto doc = GenerateMember(p, &in);
  // node_count elements + 1 document node.
  EXPECT_EQ(doc->node_count(), 5001u);
  int max_depth = 0;
  for (const xml::Node* n : doc->AllElements()) {
    max_depth = std::max(max_depth, n->depth);
  }
  EXPECT_LE(max_depth, 4);
  EXPECT_GE(max_depth, 3);  // the tree should actually use its depth
}

TEST(MemberGen, UniformTagsAllUsed) {
  StringInterner in;
  MemberParams p;
  p.node_count = 20000;
  p.num_tags = 100;
  auto doc = GenerateMember(p, &in);
  // With 20000 uniform draws over 100 tags, each tag appears.
  for (int t = 1; t <= 100; ++t) {
    char buf[8];
    std::snprintf(buf, sizeof(buf), "t%02d", t);
    Symbol s = in.Lookup(buf);
    ASSERT_NE(s, kInvalidSymbol) << buf;
    EXPECT_FALSE(doc->ElementsByTag(s).empty()) << buf;
  }
}

TEST(MemberGen, SingleTagDeepDocument) {
  StringInterner in;
  MemberParams p;
  p.node_count = 50000;
  p.max_depth = 15;
  p.num_tags = 1;
  auto doc = GenerateMember(p, &in);
  Symbol t1 = in.Lookup("t1");
  ASSERT_NE(t1, kInvalidSymbol);
  EXPECT_EQ(doc->ElementsByTag(t1).size(), 50000u);
  int max_depth = 0;
  for (const xml::Node* n : doc->AllElements()) {
    max_depth = std::max(max_depth, n->depth);
  }
  EXPECT_EQ(max_depth, 15);
}

TEST(MemberGen, Deterministic) {
  StringInterner in1, in2;
  MemberParams p;
  p.node_count = 1000;
  auto d1 = GenerateMember(p, &in1);
  auto d2 = GenerateMember(p, &in2);
  ASSERT_EQ(d1->AllElements().size(), d2->AllElements().size());
  for (size_t i = 0; i < d1->AllElements().size(); ++i) {
    EXPECT_EQ(in1.NameOf(d1->AllElements()[i]->name),
              in2.NameOf(d2->AllElements()[i]->name));
  }
}

TEST(MemberGen, SizeEstimation) {
  int nodes = NodeCountForBytes(2100 * 1024);
  EXPECT_GT(nodes, 100000);
  size_t bytes = ApproxSerializedBytes(nodes);
  EXPECT_NEAR(static_cast<double>(bytes), 2100 * 1024.0, 64.0);
}

TEST(XmarkGen, StructureMatchesSchema) {
  engine::Engine e;
  XmarkParams p;
  p.factor = 0.05;
  const xml::Document* d =
      e.AddDocument("x", GenerateXmark(p, e.interner()));

  auto count = [&](const std::string& q) -> int64_t {
    auto res = e.Run("fn:count(" + q + ")", *d);
    EXPECT_TRUE(res.ok()) << q << ": " << res.status().ToString();
    return res.ok() ? (*res)[0].integer() : -1;
  };
  int64_t persons = count("$input/site/people/person");
  EXPECT_GT(persons, 50);
  // ~80% of persons have an emailaddress.
  int64_t with_email = count("$input/site/people/person[emailaddress]");
  EXPECT_GT(with_email, persons / 2);
  EXPECT_LT(with_email, persons);
  EXPECT_GT(count("$input/site/regions/*/item"), 0);
  EXPECT_GT(count("$input/site/open_auctions/open_auction"), 0);
  EXPECT_GT(count("$input/site/closed_auctions/closed_auction/price"), 0);
  EXPECT_GT(count("$input/site/people/person/profile/interest"), 0);
  // name elements appear under person, item and category only — never
  // nested within one another (keeps child->descendant rewrites
  // semantics-preserving for Figure 6).
  int64_t names = count("$input//name");
  int64_t name_in_name = count("$input//name//name");
  EXPECT_GT(names, 0);
  EXPECT_EQ(name_in_name, 0);
}

TEST(Variants, TwentyDistinctVariants) {
  std::vector<std::string> v = GeneratePathVariants(20);
  ASSERT_EQ(v.size(), 20u);
  std::set<std::string> distinct(v.begin(), v.end());
  EXPECT_EQ(distinct.size(), 20u);
  // First is the plain path.
  EXPECT_EQ(v[0],
            "$input/site/people/person[emailaddress]/profile/interest");
  // Some variant uses a where clause.
  bool has_where = false;
  for (const std::string& q : v) {
    if (q.find("where") != std::string::npos) has_where = true;
  }
  EXPECT_TRUE(has_where);
}

TEST(Variants, AllParseAndEvaluateEqually) {
  engine::Engine e;
  XmarkParams p;
  p.factor = 0.02;
  const xml::Document* d = e.AddDocument("x", GenerateXmark(p, e.interner()));
  std::vector<std::string> variants = GeneratePathVariants(20);
  auto reference = e.Run(variants[0], *d);
  ASSERT_TRUE(reference.ok());
  ASSERT_FALSE(reference->empty());
  for (const std::string& q : variants) {
    auto res = e.Run(q, *d);
    ASSERT_TRUE(res.ok()) << q << ": " << res.status().ToString();
    ASSERT_EQ(res->size(), reference->size()) << q;
    for (size_t i = 0; i < res->size(); ++i) {
      EXPECT_TRUE((*res)[i] == (*reference)[i]) << q << " item " << i;
    }
  }
}

}  // namespace
}  // namespace xqtp::workload
