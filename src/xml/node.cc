#include "xml/node.h"

#include "xml/document.h"

namespace xqtp::xml {

namespace {

void CollectText(const Node* n, std::string* out) {
  if (n->IsText()) {
    out->append(n->text);
    return;
  }
  if (n->IsAttribute()) {
    out->append(n->text);
    return;
  }
  for (const Node* c = n->first_child; c != nullptr; c = c->next_sibling) {
    CollectText(c, out);
  }
}

}  // namespace

std::string Node::StringValue() const {
  std::string out;
  CollectText(this, &out);
  return out;
}

bool DocOrderLess(const Node* a, const Node* b) {
  if (a->doc != b->doc) return a->doc->id() < b->doc->id();
  return a->pre < b->pre;
}

}  // namespace xqtp::xml
