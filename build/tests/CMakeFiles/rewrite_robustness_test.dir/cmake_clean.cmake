file(REMOVE_RECURSE
  "CMakeFiles/rewrite_robustness_test.dir/rewrite_robustness_test.cc.o"
  "CMakeFiles/rewrite_robustness_test.dir/rewrite_robustness_test.cc.o.d"
  "rewrite_robustness_test"
  "rewrite_robustness_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rewrite_robustness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
