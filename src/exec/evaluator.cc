#include "exec/evaluator.h"

#include <memory>
#include <unordered_set>

#include "common/exec_stats.h"
#include "common/fault_injection.h"
#include "exec/fn_lib.h"
#include "exec/parallel.h"
#include "xdm/sequence_ops.h"
#include "xml/document.h"

namespace xqtp::exec {

namespace {

using algebra::Op;
using algebra::OpKind;
using algebra::OpPtr;
using xdm::Item;
using xdm::Sequence;

/// Approximate materialization cost of a sequence for the governor's
/// byte accountant. Items are counted at their in-vector size; string
/// payloads and node identity are shared and not re-counted. The point is
/// trapping runaway *cardinality* (cross products), not exact heap audit.
int64_t ApproxBytes(const Sequence& s) {
  return static_cast<int64_t>(s.size() * sizeof(Item));
}

/// Approximate materialization cost of a tuple: its fields vector plus
/// every field's sequence.
int64_t ApproxBytes(const Tuple& t) {
  int64_t bytes =
      static_cast<int64_t>(t.field_count() *
                           (sizeof(Symbol) + sizeof(Sequence)));
  for (const auto& [sym, seq] : t.fields()) bytes += ApproxBytes(seq);
  return bytes;
}

class Evaluator {
 public:
  Evaluator(const core::VarTable& vars, const Bindings& bindings,
            const EvalOptions& opts)
      : vars_(vars), bindings_(bindings), opts_(opts) {
    int threads = ThreadPool::ResolveThreads(opts.threads);
    if (threads > 1) {
      par_ = std::make_unique<ParallelContext>();
      par_->threads = threads;
      par_->min_fanout = std::max(1, opts.parallel_min_fanout);
      par_->morsels_per_thread = std::max(1, opts.parallel_morsels_per_thread);
      // The per-query pool is created on the first evaluation that
      // actually morselizes — small queries never pay the thread spawn —
      // and at the driver's clamped width, so a fan-out that feeds 3
      // threads never spawns 8 (the bench_parallel scaling cliff).
      par_->pool = [this](int desired) {
        if (pool_ == nullptr) pool_ = std::make_unique<ThreadPool>(desired);
        return pool_.get();
      };
      // Workers re-install the query's governor per morsel; the caller
      // (Evaluate) has already installed it on this thread.
      par_->governor = CurrentGovernor();
    }
  }

  Result<Sequence> Run(const Op& plan) {
    return EvalItem(plan, nullptr, nullptr);
  }

 private:
  /// Evaluates an item plan. `tuple` is the current tuple for dependent
  /// plans (IN#field / IN as tuple); `item` is the current item for
  /// MapFromItem dependents (IN as item). When the optimizer stamped
  /// property claims on the operator, debug builds assert them against
  /// the concrete output sequence.
  Result<Sequence> EvalItem(const Op& op, const Tuple* tuple,
                            const Item* item) {
    if (!opts_.check_inferred_props || !op.props.Any()) {
      return EvalItemInner(op, tuple, item);
    }
    XQTP_ASSIGN_OR_RETURN(Sequence out, EvalItemInner(op, tuple, item));
    XQTP_RETURN_NOT_OK(CheckClaims(op.props, out));
    return out;
  }

  /// Asserts one operator's stamped claims on one evaluated sequence.
  static Status CheckClaims(const algebra::PropsClaims& c,
                            const Sequence& out) {
    const int64_t n = static_cast<int64_t>(out.size());
    if (n < c.card_lo || (c.card_hi >= 0 && n > c.card_hi)) {
      return Status::Internal(
          "[plan props] violated claim [claim-card]: sequence length " +
          std::to_string(n) + " outside inferred [" +
          std::to_string(c.card_lo) + ", " +
          (c.card_hi >= 0 ? std::to_string(c.card_hi) : "*") + "]");
    }
    if (c.ordered || c.dup_free) {
      // Order claims are only stamped on sequences inferred all-node (or
      // at most one item), so a non-node under the claim is itself an
      // inference bug.
      for (size_t i = 0; i + 1 < out.size(); ++i) {
        if (!out[i].IsNode() || !out[i + 1].IsNode()) {
          return Status::Internal(
              "[plan props] violated claim [claim-nodes]: atomic item in a "
              "sequence claimed ordered/duplicate-free");
        }
        const xml::Node* a = out[i].node();
        const xml::Node* b = out[i + 1].node();
        if (c.ordered && xml::DocOrderLess(b, a)) {
          return Status::Internal(
              "[plan props] violated claim [claim-ordered]: adjacent items "
              "out of document order");
        }
        if (c.ordered && c.dup_free && a == b) {
          return Status::Internal(
              "[plan props] violated claim [claim-dupfree]: adjacent "
              "duplicate nodes");
        }
      }
      if (c.dup_free && !c.ordered) {
        std::unordered_set<const xml::Node*> seen;
        for (const Item& it : out) {
          if (it.IsNode() && !seen.insert(it.node()).second) {
            return Status::Internal(
                "[plan props] violated claim [claim-dupfree]: duplicate "
                "node");
          }
        }
      }
    }
    return Status::OK();
  }

  Result<Sequence> EvalItemInner(const Op& op, const Tuple* tuple,
                                 const Item* item) {
    // The operator boundary is the evaluator's cooperative check cadence,
    // strided: a full governor check (cancel + deadline + budget) every
    // 32nd operator evaluation. Unstrided, the check's clock read and
    // atomics cost ~10% on cheap per-tuple plans (bench_governor); the
    // stride bounds cancellation latency by 32 operator evaluations while
    // keeping the overhead under the 2% target. Plain member counter:
    // the evaluator runs on the coordinating thread only (morsel workers
    // poll through their own per-morsel GovernorTickers).
    if ((governor_tick_++ & 31u) == 0) {
      XQTP_RETURN_NOT_OK(GovernorPoll());
    }
    switch (op.kind) {
      case OpKind::kConst:
        return Sequence{op.literal};
      case OpKind::kGlobalVar: {
        auto it = bindings_.find(op.var);
        if (it == bindings_.end()) {
          return Status::InvalidArgument("unbound query global $" +
                                         vars_.NameOf(op.var));
        }
        return it->second;
      }
      case OpKind::kScopedVar: {
        auto it = scoped_.find(op.var);
        if (it == scoped_.end()) {
          return Status::Internal("unbound scoped variable $" +
                                  vars_.NameOf(op.var));
        }
        return it->second;
      }
      case OpKind::kInputItem:
        if (item == nullptr) {
          return Status::Internal("IN (item) used outside a dependent plan");
        }
        return Sequence{*item};
      case OpKind::kFieldAccess: {
        if (tuple == nullptr) {
          return Status::Internal("IN#field used outside a tuple context");
        }
        const Sequence* v = tuple->Get(op.field);
        if (v == nullptr) return Sequence{};
        return *v;
      }
      case OpKind::kTreeJoin: {
        XQTP_ASSIGN_OR_RETURN(Sequence ctx,
                              EvalItem(*op.inputs[0], tuple, item));
        Sequence out;
        out.reserve(ctx.size());
        for (const Item& it : ctx) {
          if (!it.IsNode()) {
            return Status::TypeError("path step applied to an atomic value");
          }
          xdm::EvalAxisStep(it.node(), op.axis, op.test, &out);
        }
        return out;
      }
      case OpKind::kDdo: {
        XQTP_ASSIGN_OR_RETURN(Sequence in,
                              EvalItem(*op.inputs[0], tuple, item));
        // Plans stack a Ddo on every path step; when the input is already
        // distinct and document-ordered (single-output patterns emit such
        // sequences by construction), skip the re-sort.
        if (xdm::IsDistinctDocOrdered(in)) return in;
        return xdm::DistinctDocOrder(std::move(in));
      }
      case OpKind::kMapToItem: {
        XQTP_ASSIGN_OR_RETURN(TupleSeq tuples,
                              EvalTuples(*op.inputs[0], tuple));
        Sequence out;
        ScopedMemoryCharge mem;
        for (const Tuple& t : tuples) {
          XQTP_ASSIGN_OR_RETURN(Sequence part, EvalItem(*op.dep, &t, nullptr));
          XQTP_RETURN_NOT_OK(mem.Grow(ApproxBytes(part)));
          out.insert(out.end(), part.begin(), part.end());
        }
        return out;
      }
      case OpKind::kFnCall:
        return EvalFnCall(op, tuple, item);
      case OpKind::kCompare: {
        XQTP_ASSIGN_OR_RETURN(Sequence l, EvalItem(*op.inputs[0], tuple, item));
        XQTP_ASSIGN_OR_RETURN(Sequence r, EvalItem(*op.inputs[1], tuple, item));
        XQTP_ASSIGN_OR_RETURN(bool b, xdm::GeneralCompare(op.cmp_op, l, r));
        return Sequence{Item(b)};
      }
      case OpKind::kArith: {
        XQTP_ASSIGN_OR_RETURN(Sequence l, EvalItem(*op.inputs[0], tuple, item));
        XQTP_ASSIGN_OR_RETURN(Sequence r, EvalItem(*op.inputs[1], tuple, item));
        return xdm::EvalArith(op.arith_op, l, r);
      }
      case OpKind::kAnd:
      case OpKind::kOr: {
        XQTP_ASSIGN_OR_RETURN(Sequence l, EvalItem(*op.inputs[0], tuple, item));
        XQTP_ASSIGN_OR_RETURN(bool lb, xdm::EffectiveBooleanValue(l));
        if (op.kind == OpKind::kAnd && !lb) return Sequence{Item(false)};
        if (op.kind == OpKind::kOr && lb) return Sequence{Item(true)};
        XQTP_ASSIGN_OR_RETURN(Sequence r, EvalItem(*op.inputs[1], tuple, item));
        XQTP_ASSIGN_OR_RETURN(bool rb, xdm::EffectiveBooleanValue(r));
        return Sequence{Item(rb)};
      }
      case OpKind::kSequence: {
        Sequence out;
        ScopedMemoryCharge mem;
        for (const OpPtr& in : op.inputs) {
          XQTP_ASSIGN_OR_RETURN(Sequence part, EvalItem(*in, tuple, item));
          XQTP_RETURN_NOT_OK(mem.Grow(ApproxBytes(part)));
          out.insert(out.end(), part.begin(), part.end());
        }
        return out;
      }
      case OpKind::kIf: {
        XQTP_ASSIGN_OR_RETURN(Sequence c, EvalItem(*op.inputs[0], tuple, item));
        XQTP_ASSIGN_OR_RETURN(bool cb, xdm::EffectiveBooleanValue(c));
        return EvalItem(*op.inputs[cb ? 1 : 2], tuple, item);
      }
      case OpKind::kForEach: {
        XQTP_ASSIGN_OR_RETURN(Sequence seq,
                              EvalItem(*op.inputs[0], tuple, item));
        Sequence out;
        // The FLWOR loop is where cross products materialize: the charge
        // grows with the accumulated output, so a runaway join trips the
        // budget mid-loop instead of after exhausting the heap.
        ScopedMemoryCharge mem;
        for (size_t i = 0; i < seq.size(); ++i) {
          scoped_[op.var] = Sequence{seq[i]};
          if (op.pos_var != core::kNoVar) {
            scoped_[op.pos_var] =
                Sequence{Item(static_cast<int64_t>(i + 1))};
          }
          if (op.dep2 != nullptr) {
            XQTP_ASSIGN_OR_RETURN(Sequence cond,
                                  EvalItem(*op.dep2, tuple, item));
            XQTP_ASSIGN_OR_RETURN(bool keep,
                                  xdm::EffectiveBooleanValue(cond));
            if (!keep) continue;
          }
          XQTP_ASSIGN_OR_RETURN(Sequence part, EvalItem(*op.dep, tuple, item));
          XQTP_RETURN_NOT_OK(mem.Grow(ApproxBytes(part)));
          out.insert(out.end(), part.begin(), part.end());
        }
        scoped_.erase(op.var);
        if (op.pos_var != core::kNoVar) scoped_.erase(op.pos_var);
        return out;
      }
      case OpKind::kLetIn: {
        XQTP_ASSIGN_OR_RETURN(Sequence binding,
                              EvalItem(*op.inputs[0], tuple, item));
        scoped_[op.var] = std::move(binding);
        Result<Sequence> res = EvalItem(*op.dep, tuple, item);
        scoped_.erase(op.var);
        return res;
      }
      case OpKind::kTypeswitch: {
        XQTP_ASSIGN_OR_RETURN(Sequence input,
                              EvalItem(*op.inputs[0], tuple, item));
        bool numeric = input.size() == 1 && input[0].IsNumeric();
        core::VarId v = numeric ? op.var : op.pos_var;
        const Op& branch = numeric ? *op.dep : *op.dep2;
        scoped_[v] = std::move(input);
        Result<Sequence> res = EvalItem(branch, tuple, item);
        scoped_.erase(v);
        return res;
      }
      // Tuple plans are not item plans.
      case OpKind::kMapFromItem:
      case OpKind::kSelect:
      case OpKind::kTupleTreePattern:
      case OpKind::kInputTuple:
        return Status::Internal("tuple plan evaluated in item context");
    }
    return Status::Internal("unreachable operator kind");
  }

  Result<Sequence> EvalFnCall(const Op& op, const Tuple* tuple,
                              const Item* item) {
    XQTP_FAULT_POINT("exec.fn_call");
    std::vector<Sequence> args;
    args.reserve(op.inputs.size());
    for (const OpPtr& in : op.inputs) {
      XQTP_ASSIGN_OR_RETURN(Sequence a, EvalItem(*in, tuple, item));
      args.push_back(std::move(a));
    }
    return ApplyCoreFn(op.fn, args);
  }

  /// Evaluates a tuple plan. `ambient` is the enclosing tuple for plans
  /// rooted at IN (rule (a) rewrites).
  Result<TupleSeq> EvalTuples(const Op& op, const Tuple* ambient) {
    switch (op.kind) {
      case OpKind::kInputTuple: {
        if (ambient == nullptr) {
          return Status::Internal("IN (tuple) used outside a tuple context");
        }
        return TupleSeq{*ambient};
      }
      case OpKind::kMapFromItem: {
        XQTP_ASSIGN_OR_RETURN(Sequence items,
                              EvalItem(*op.inputs[0], ambient, nullptr));
        TupleSeq out;
        out.reserve(items.size());
        ScopedMemoryCharge mem;
        for (const Item& it : items) {
          Tuple t;
          XQTP_ASSIGN_OR_RETURN(Sequence value,
                                EvalItem(*op.dep, ambient, &it));
          t.Set(op.field, std::move(value));
          XQTP_RETURN_NOT_OK(mem.Grow(ApproxBytes(t)));
          out.push_back(std::move(t));
        }
        return out;
      }
      case OpKind::kSelect: {
        XQTP_ASSIGN_OR_RETURN(TupleSeq in, EvalTuples(*op.inputs[0], ambient));
        TupleSeq out;
        ScopedMemoryCharge mem;
        for (Tuple& t : in) {
          XQTP_ASSIGN_OR_RETURN(Sequence pred, EvalItem(*op.dep, &t, nullptr));
          XQTP_ASSIGN_OR_RETURN(bool keep, xdm::EffectiveBooleanValue(pred));
          if (!keep) continue;
          XQTP_RETURN_NOT_OK(mem.Grow(ApproxBytes(t)));
          out.push_back(std::move(t));
        }
        return out;
      }
      case OpKind::kTupleTreePattern: {
        XQTP_ASSIGN_OR_RETURN(TupleSeq in, EvalTuples(*op.inputs[0], ambient));
        // Wide tuple inputs morselize at the tuple level; the common
        // optimized plan (one tuple holding the document root) instead
        // morselizes inside EvalPattern via the root fan-out strategy.
        if (par_ != nullptr &&
            in.size() >= static_cast<size_t>(par_->min_fanout)) {
          return EvalPatternTuplesParallel(op.tp, in, opts_.algo, *par_);
        }
        TupleSeq out;
        ScopedMemoryCharge mem;
        for (const Tuple& t : in) {
          const Sequence* ctx = t.Get(op.tp.input_field);
          if (ctx == nullptr) {
            return Status::Internal(
                "TupleTreePattern input tuple lacks the context field");
          }
          XQTP_ASSIGN_OR_RETURN(
              std::vector<BindingRow> rows,
              EvalPattern(op.tp, *ctx, opts_.algo, par_.get()));
          XQTP_RETURN_NOT_OK(mem.Grow(
              static_cast<int64_t>(rows.size() * sizeof(BindingRow))));
          for (const BindingRow& row : rows) {
            Tuple nt = t;
            for (const auto& [sym, node] : row.fields) {
              nt.Set(sym, Sequence{Item(node)});
            }
            out.push_back(std::move(nt));
          }
        }
        return out;
      }
      default:
        return Status::Internal("item plan evaluated in tuple context");
    }
  }

  const core::VarTable& vars_;
  const Bindings& bindings_;
  const EvalOptions& opts_;
  /// Stride counter for the operator-boundary governor check (see
  /// EvalItemInner); coordinating thread only.
  uint32_t governor_tick_ = 0;
  std::unordered_map<core::VarId, Sequence> scoped_;
  /// Parallel-evaluation parameters (null when opts_.threads resolves
  /// to 1) and the lazily-created per-query pool behind par_->pool.
  std::unique_ptr<ParallelContext> par_;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace

Result<Sequence> Evaluate(const Op& plan, const core::VarTable& vars,
                          const Bindings& bindings, const EvalOptions& opts) {
  XQTP_FAULT_POINT("exec.evaluate");
  if (!opts.HasGovernorLimits()) {
    Evaluator ev(vars, bindings, opts);
    return ev.Run(plan);
  }
  GovernorLimits limits;
  limits.deadline = opts.deadline;
  limits.memory_budget_bytes = opts.memory_budget_bytes;
  limits.cancel_token = opts.cancel_token;
  QueryGovernor governor(limits);
  ScopedGovernor install(&governor);
  Evaluator ev(vars, bindings, opts);
  Result<Sequence> res = ev.Run(plan);
  // Record the governor's telemetry whether the query completed or
  // tripped; worker-morsel checks land here too (the counters are the
  // shared governor's atomics).
  if (ExecStats* s = CurrentExecStats()) {
    s->governor_checks += governor.checks();
    if (governor.peak_bytes() > s->peak_memory_bytes) {
      s->peak_memory_bytes = governor.peak_bytes();
    }
  }
  return res;
}

}  // namespace xqtp::exec
