// XQuery Core: the normalization target of the W3C Formal Semantics
// fragment used by the paper. Every binder introduces a *unique* VarId, so
// substitution is capture-safe by construction even though the printed form
// reuses names like $dot, exactly as the paper does.
#ifndef XQTP_CORE_AST_H_
#define XQTP_CORE_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "common/interner.h"
#include "xdm/axis.h"
#include "xdm/item.h"
#include "xdm/sequence_ops.h"

namespace xqtp::core {

/// Unique variable identifier. Globals (free variables of the query, e.g.
/// $d or $input) are VarIds registered before normalization starts.
using VarId = int32_t;
inline constexpr VarId kNoVar = -1;

/// Coarse static types, sufficient to drive the paper's typeswitch rules.
enum class AbstractType : uint8_t {
  kNumeric,
  kBoolean,
  kString,
  kNodes,
  kUnknown,
};

/// Registry of variables: display name + static type for globals.
class VarTable {
 public:
  /// Creates a fresh variable (a binder occurrence).
  VarId Fresh(std::string name);

  /// Registers (or returns) a global by name. Globals are assumed to be
  /// bound to singleton node sequences (documents) unless another type is
  /// declared — this is the engine's binding contract.
  VarId Global(const std::string& name, AbstractType type = AbstractType::kNodes);

  const std::string& NameOf(VarId v) const { return names_.at(v); }
  bool IsGlobal(VarId v) const { return is_global_.at(v); }
  AbstractType GlobalType(VarId v) const { return global_types_.at(v); }

  /// Returns the VarId of a global by name, or kNoVar.
  VarId FindGlobal(const std::string& name) const;

  size_t size() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
  std::vector<bool> is_global_;
  std::vector<AbstractType> global_types_;
  std::vector<VarId> globals_;
};

enum class CoreKind : uint8_t {
  kVar,
  kLiteral,
  kSequence,    ///< concatenation; zero children is the empty sequence ()
  kLet,         ///< let $var := children[0] return children[1]
  kFor,         ///< for $var (at $pos_var)? in children[0] (where `where`)? return children[1]
  kIf,          ///< if (children[0]) then children[1] else children[2]
  kStep,        ///< axis::test applied to the context variable `var`
  kDdo,         ///< fs:distinct-doc-order(children[0])
  kFnCall,      ///< fn (children = args)
  kTypeswitch,  ///< typeswitch(children[0]) case numeric() as $case_var
                ///<   return children[1] default $default_var return children[2]
  kCompare,     ///< children[0] op children[1]
  kArith,       ///< children[0] op children[1]
  kAnd,
  kOr,
};

/// Built-in functions in the Core fragment.
enum class CoreFn : uint8_t {
  kBoolean,       ///< fn:boolean — effective boolean value
  kCount,         ///< fn:count
  kNot,           ///< fn:not
  kEmpty,         ///< fn:empty
  kExists,        ///< fn:exists
  kRoot,          ///< fn:root — the document node above the argument node
  kData,          ///< fn:data — atomization (string-value of nodes)
  kString,        ///< fn:string — string value ("" for the empty sequence)
  kNumber,        ///< fn:number — numeric value (NaN if not a number)
  kStringLength,  ///< fn:string-length
  kConcat,        ///< fn:concat (two or more arguments)
  kContains,      ///< fn:contains(haystack, needle)
  kStartsWith,    ///< fn:starts-with(string, prefix)
  kSum,           ///< fn:sum (0 for the empty sequence)
};

/// Expected argument count for a Core function (-1 = variadic, >= 2).
int CoreFnArity(CoreFn fn);

const char* CoreFnName(CoreFn fn);

struct CoreExpr;
using CoreExprPtr = std::unique_ptr<CoreExpr>;

/// One Core expression. The active fields depend on `kind` (see CoreKind).
struct CoreExpr {
  CoreKind kind;

  VarId var = kNoVar;          ///< kVar: the variable; kLet/kFor: the binder;
                               ///< kStep: the context variable
  VarId pos_var = kNoVar;      ///< kFor: "at $pos" binder (kNoVar if absent)
  VarId case_var = kNoVar;     ///< kTypeswitch: numeric-case binder
  VarId default_var = kNoVar;  ///< kTypeswitch: default-case binder

  xdm::Item literal;           ///< kLiteral

  Axis axis = Axis::kChild;    ///< kStep
  NodeTest test;               ///< kStep

  CoreFn fn = CoreFn::kBoolean;          ///< kFnCall
  xdm::CompareOp cmp_op = xdm::CompareOp::kEq;  ///< kCompare
  xdm::ArithOp arith_op = xdm::ArithOp::kAdd;   ///< kArith

  std::vector<CoreExprPtr> children;
  CoreExprPtr where;           ///< kFor: optional where condition

  /// Cached ODF annotation bits (kOdfCache* in core/odf.h): bit 0 marks
  /// the annotation present, bits 1/2 cache the derived ordered /
  /// dup_free properties. Filled by AnnotateOdf after the TPNF' rewrite;
  /// analysis::VerifyCore re-derives both properties from scratch and
  /// rejects any cached annotation stronger than the fresh derivation.
  uint8_t odf_cache = 0;

  explicit CoreExpr(CoreKind k) : kind(k) {}
};

// ---- constructors ----------------------------------------------------------

CoreExprPtr MakeVar(VarId v);
CoreExprPtr MakeLiteral(xdm::Item item);
CoreExprPtr MakeEmpty();
CoreExprPtr MakeSequence(std::vector<CoreExprPtr> items);
CoreExprPtr MakeLet(VarId v, CoreExprPtr binding, CoreExprPtr body);
CoreExprPtr MakeFor(VarId v, VarId pos, CoreExprPtr seq, CoreExprPtr where,
                    CoreExprPtr body);
CoreExprPtr MakeIf(CoreExprPtr cond, CoreExprPtr then_e, CoreExprPtr else_e);
CoreExprPtr MakeStep(VarId ctx, Axis axis, NodeTest test);
/// Collapses ddo(ddo(x)) to ddo(x).
CoreExprPtr MakeDdo(CoreExprPtr arg);
CoreExprPtr MakeFnCall(CoreFn fn, std::vector<CoreExprPtr> args);
CoreExprPtr MakeTypeswitch(CoreExprPtr input, VarId case_var,
                           CoreExprPtr case_body, VarId default_var,
                           CoreExprPtr default_body);
CoreExprPtr MakeCompare(xdm::CompareOp op, CoreExprPtr lhs, CoreExprPtr rhs);
CoreExprPtr MakeArith(xdm::ArithOp op, CoreExprPtr lhs, CoreExprPtr rhs);
CoreExprPtr MakeAnd(CoreExprPtr lhs, CoreExprPtr rhs);
CoreExprPtr MakeOr(CoreExprPtr lhs, CoreExprPtr rhs);

// ---- utilities -------------------------------------------------------------

/// Deep copy.
CoreExprPtr Clone(const CoreExpr& e);

/// Number of free occurrences of `v` in `e`. Because VarIds are unique,
/// no shadowing is possible and this is a plain structural count.
int CountUses(const CoreExpr& e, VarId v);

/// True iff `v` occurs free in `e`.
inline bool Uses(const CoreExpr& e, VarId v) { return CountUses(e, v) > 0; }

/// Replaces every occurrence of variable `v` in `e` with a clone of
/// `replacement`. Capture-safe thanks to unique VarIds.
void Substitute(CoreExpr* e, VarId v, const CoreExpr& replacement);

/// Structural equality up to alpha-renaming of binders.
bool AlphaEqual(const CoreExpr& a, const CoreExpr& b);

}  // namespace xqtp::core

#endif  // XQTP_CORE_AST_H_
