// XDM items and sequences. An item is a node reference or an atomic value
// (integer, double, boolean, string); a sequence is a flat, ordered list of
// items — the result type of every XQuery expression.
#ifndef XQTP_XDM_ITEM_H_
#define XQTP_XDM_ITEM_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "xml/node.h"

namespace xqtp::xdm {

/// A single XDM item.
class Item {
 public:
  Item() : value_(false) {}
  explicit Item(const xml::Node* node) : value_(node) {}
  explicit Item(int64_t i) : value_(i) {}
  explicit Item(double d) : value_(d) {}
  explicit Item(bool b) : value_(b) {}
  explicit Item(std::string s) : value_(std::move(s)) {}

  bool IsNode() const {
    return std::holds_alternative<const xml::Node*>(value_);
  }
  bool IsInteger() const { return std::holds_alternative<int64_t>(value_); }
  bool IsDouble() const { return std::holds_alternative<double>(value_); }
  bool IsNumeric() const { return IsInteger() || IsDouble(); }
  bool IsBoolean() const { return std::holds_alternative<bool>(value_); }
  bool IsString() const { return std::holds_alternative<std::string>(value_); }

  const xml::Node* node() const { return std::get<const xml::Node*>(value_); }
  int64_t integer() const { return std::get<int64_t>(value_); }
  double dbl() const { return std::get<double>(value_); }
  bool boolean() const { return std::get<bool>(value_); }
  const std::string& str() const { return std::get<std::string>(value_); }

  /// Numeric value with integer promotion; requires IsNumeric().
  double AsDouble() const { return IsInteger() ? static_cast<double>(integer()) : dbl(); }

  /// The typed-value string of the item (node string-value for nodes).
  std::string StringValue() const;

  /// Structural equality (node identity for nodes, value for atomics;
  /// no numeric promotion). Used by tests.
  bool operator==(const Item& other) const { return value_ == other.value_; }

 private:
  std::variant<const xml::Node*, int64_t, double, bool, std::string> value_;
};

using Sequence = std::vector<Item>;

}  // namespace xqtp::xdm

#endif  // XQTP_XDM_ITEM_H_
