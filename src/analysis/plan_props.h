// Plan-level property inference, pass (3) of the analysis subsystem: a
// bottom-up abstract interpretation over algebra::Op trees that proves,
// per operator output,
//  (a) document-order facts — ordered / duplicate-free / unrelated,
//      mirroring core::OdfProps but at the tuple-algebra level, per tuple
//      field and per item sequence;
//  (b) cardinality intervals [lo, hi] with a saturating top;
//  (c) key / functional-dependency facts between tuple fields (which
//      fields are injective images of which).
//
// The lattice is seeded across algebra::Compile from the Core ODF
// analysis (Op::odf_seed carries the source expression's cached
// ordered/dup_free bits), because the algebra cannot locally re-derive
// what the Core analysis knew about variable bindings.
//
// Facts for operators inside dependent plans ({...} sub-plans) are
// *per-evaluation* facts: they describe one evaluation of the operator
// against one ambient tuple / current item, exactly the granularity at
// which the evaluator can check them (exec::EvalOptions::
// check_inferred_props asserts every stamped claim on every evaluation,
// so an inference bug becomes a failing test under the sanitizer CI
// legs, not a silent wrong plan).
//
// Consumers:
//  - algebra/optimize.cc: property-justified rewrites (drop a Ddo whose
//    input is proven ordered+duplicate-free, prune dead pattern
//    annotations justified by the FD facts), each guarded by the
//    existing translation-validation checkpoints;
//  - exec/cost_model.cc: interval arithmetic replacing ad-hoc clamping;
//  - analysis/plan_lint.*: diagnostics for statically-detectable
//    pathologies the rewrites could not remove.
#ifndef XQTP_ANALYSIS_PLAN_PROPS_H_
#define XQTP_ANALYSIS_PLAN_PROPS_H_

#include <cstdint>
#include <limits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "algebra/ops.h"

namespace xqtp::analysis {

/// Saturating top of the cardinality lattice.
inline constexpr int64_t kCardTop = std::numeric_limits<int64_t>::max();

/// A cardinality interval [lo, hi]; [0, kCardTop] is ⊤.
struct CardRange {
  int64_t lo = 0;
  int64_t hi = kCardTop;

  static CardRange Exactly(int64_t n) { return {n, n}; }
  static CardRange AtMost(int64_t n) { return {0, n}; }
  static CardRange Top() { return {0, kCardTop}; }

  bool IsTop() const { return lo == 0 && hi == kCardTop; }
  bool Empty() const { return hi == 0; }
  bool Contains(int64_t n) const { return lo <= n && n <= hi; }

  CardRange Plus(const CardRange& o) const;   ///< saturating sum
  CardRange Times(const CardRange& o) const;  ///< saturating product
  CardRange Union(const CardRange& o) const;  ///< interval hull

  bool operator==(const CardRange& o) const {
    return lo == o.lo && hi == o.hi;
  }
};

/// Facts about one item sequence (an item plan's output, or the sequence
/// bound to a tuple field). ordered / dup_free / unrelated mirror
/// core::OdfProps; nodes_only additionally records that every item is a
/// node — required before an order fact is runtime-checkable (and before
/// removing a Ddo, which type-errors on mixed sequences).
struct ItemProps {
  bool ordered = false;    ///< in document order (non-decreasing)
  bool dup_free = false;   ///< no node occurs twice
  bool unrelated = false;  ///< no two distinct nodes are ancestor-related
  bool nodes_only = false; ///< every item is a node
  CardRange card = CardRange::Top();

  bool OrderedDupFree() const { return ordered && dup_free; }

  static ItemProps Unknown() { return {}; }
  static ItemProps SingletonNode() {
    return {true, true, true, true, CardRange::Exactly(1)};
  }
  static ItemProps SingletonAtomic() {
    return {true, true, true, false, CardRange::Exactly(1)};
  }
};

/// Facts about one tuple field. `value` describes the sequence bound in a
/// single tuple; the seq_* bits describe the *concatenation* of the
/// field's values across the whole tuple stream — the sequence
/// MapToItem{IN#f} would produce.
struct FieldProps {
  ItemProps value;
  bool seq_ordered = false;
  bool seq_dup_free = false;
  bool seq_unrelated = false;
};

/// Facts about a tuple plan's output stream.
struct TupleProps {
  CardRange card = CardRange::Top();  ///< number of tuples
  std::unordered_map<Symbol, FieldProps> fields;
  /// True when `fields` lists every field the tuples can carry (an
  /// absent field then reads as the empty sequence).
  bool fields_complete = false;
  /// Functional dependencies (dependent, determinant): in every tuple
  /// the dependent field's value is a function of the determinant's
  /// (e.g. a pattern binding at a fixed child-distance above another).
  std::vector<std::pair<Symbol, Symbol>> fds;

  const FieldProps* Field(Symbol s) const;
  /// A field is a key when its per-tuple value is a singleton and its
  /// cross-tuple concatenation is duplicate-free: the field's value
  /// identifies the tuple injectively.
  bool IsKeyField(Symbol s) const;
};

/// Facts for one operator (item- or tuple-sorted).
struct OpProps {
  bool is_tuple = false;
  ItemProps item;    ///< valid when !is_tuple
  TupleProps tuple;  ///< valid when is_tuple
};

struct PlanPropsOptions {
  /// Reserved for global typing refinements; unused today.
  const core::VarTable* vars = nullptr;
};

/// The inference result, keyed by operator identity. Valid until the
/// plan is structurally modified; removing an operator from the plan
/// only invalidates that operator's own entry (surviving operators keep
/// their addresses — OpPtr moves do not relocate the pointee).
class PlanProps {
 public:
  const OpProps* Lookup(const algebra::Op* op) const;
  /// Item-plan facts, or nullptr if unknown / not an item plan.
  const ItemProps* Item(const algebra::Op* op) const;
  /// Tuple-plan facts, or nullptr if unknown / not a tuple plan.
  const TupleProps* Tuple(const algebra::Op* op) const;

  std::unordered_map<const algebra::Op*, OpProps> by_op;
};

/// Runs the abstract interpretation over `plan` (item or tuple sorted).
PlanProps InferPlanProps(const algebra::Op& plan,
                         const PlanPropsOptions& opts = {});

/// True when `p` proves a Ddo over a sequence with these facts is the
/// identity: already ordered and duplicate-free, and either all nodes
/// (no type-error path) or at most one item (Ddo returns length-<=1
/// sequences unchanged).
bool ProvenDdoRedundant(const ItemProps& p);

/// True when an operator's STAMPED claims alone prove fs:ddo over its
/// output is the identity, so the evaluator may skip even the O(n)
/// IsDistinctDocOrdered probe. Sound because AnnotatePlanProps only
/// stamps ordered/dup_free when the sequence is proven all-node or at
/// most one item — both domains on which Ddo returns its input
/// unchanged. False for unstamped operators (claims default to absent).
bool ClaimsImplyDdoIdentity(const algebra::PropsClaims& claims);

/// Infers and stamps runtime-checkable claims (algebra::Op::props) onto
/// every item plan whose facts are non-trivial. Order claims are only
/// stamped when the evaluator can decide them (all-nodes or at most one
/// item — the IsDistinctDocOrdered probe's domain).
void AnnotatePlanProps(algebra::Op* plan, const PlanPropsOptions& opts = {});

/// Removes every stamped claim from `plan`.
void ClearPlanProps(algebra::Op* plan);

}  // namespace xqtp::analysis

#endif  // XQTP_ANALYSIS_PLAN_PROPS_H_
