file(REMOVE_RECURSE
  "CMakeFiles/pattern_eval_test.dir/pattern_eval_test.cc.o"
  "CMakeFiles/pattern_eval_test.dir/pattern_eval_test.cc.o.d"
  "pattern_eval_test"
  "pattern_eval_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pattern_eval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
