// Benchmark for the positional tree-pattern extension (future work
// realized): compares the paper-mode plans (positional loops embedded in
// maps) against plans with positional predicates folded into the
// patterns, on the positional workloads of the paper's evaluation (QE2,
// QE5, and the Section 5.3 selective chain).
#include "bench_common.h"

namespace xqtp::bench {
namespace {

struct Workload {
  const char* name;
  const char* query;
  bool deep_doc;
};

constexpr Workload kWorkloads[] = {
    {"QE2", "$input/desc::t01/child::t02[1]/child::t03[child::t04]", false},
    {"QE5", "$input/desc::t01/desc::t02[1]/desc::t03[desc::t04]", false},
    {"selective-k10",
     "$input/t1[1]/t1[1]/t1[1]/t1[1]/t1[1]/t1[1]/t1[1]/t1[1]/t1[1]/t1[1]",
     true},
};

const xml::Document& DocFor(const Workload& w) {
  if (w.deep_doc) return MemberDoc("member_deep_pos", 50000, 15, 1);
  return MemberDoc("member_wide_pos", 150000, 5, 100, 75);
}

void Register() {
  for (const Workload& w : kWorkloads) {
    for (bool folded : {false, true}) {
      for (exec::PatternAlgo algo :
           {exec::PatternAlgo::kNLJoin, exec::PatternAlgo::kStaircase,
            exec::PatternAlgo::kTwig}) {
        std::string name = std::string("Positional/") + w.name +
                           (folded ? "/folded/" : "/paper/") + AlgoTag(algo);
        std::string query = w.query;
        const Workload* wp = &w;
        benchmark::RegisterBenchmark(
            name.c_str(),
            [query, algo, wp, folded](benchmark::State& state) {
              engine::CompileOptions copts;
              copts.positional_patterns = folded;
              RunQueryBenchmark(state, query, DocFor(*wp), algo,
                                engine::PlanChoice::kOptimized, copts);
            })
            ->Unit(benchmark::kMillisecond);
      }
    }
  }
}

}  // namespace
}  // namespace xqtp::bench

int main(int argc, char** argv) {
  xqtp::bench::Register();
  return xqtp::bench::BenchMain(argc, argv);
}
