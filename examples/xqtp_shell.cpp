// xqtp_shell: an interactive query shell over the engine — load documents,
// run queries, switch algorithms, inspect plans.
//
//   $ ./build/examples/xqtp_shell [file.xml]
//
// Commands:
//   \load <name> <file>   load an XML file as document <name>
//   \gen member <nodes> <depth> <tags>    generate a MemBeR document
//   \gen xmark <factor>                   generate an XMark document
//   \doc <name>           bind query globals to document <name>
//   \algo nl|sc|tj|st|cb  switch the tree-pattern algorithm
//   \explain <query>      show every compilation phase
//   \plan <query>         show the optimized plan only
//   \quit                 exit
// Anything else is compiled and executed as a query.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "algebra/printer.h"
#include "engine/engine.h"
#include "workload/member_gen.h"
#include "workload/xmark_gen.h"
#include "xml/serializer.h"

namespace {

using xqtp::engine::Engine;

struct ShellState {
  Engine engine;
  const xqtp::xml::Document* current = nullptr;
  std::string current_name;
  xqtp::exec::PatternAlgo algo = xqtp::exec::PatternAlgo::kCostBased;
};

bool LoadFile(ShellState* st, const std::string& name,
              const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::printf("cannot open %s\n", path.c_str());
    return false;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  auto doc = st->engine.LoadDocument(name, buf.str());
  if (!doc.ok()) {
    std::printf("%s\n", doc.status().ToString().c_str());
    return false;
  }
  st->current = doc.value();
  st->current_name = name;
  std::printf("loaded %s: %zu nodes\n", name.c_str(),
              st->current->node_count());
  return true;
}

void RunQuery(ShellState* st, const std::string& query) {
  auto cq = st->engine.Compile(query);
  if (!cq.ok()) {
    std::printf("%s\n", cq.status().ToString().c_str());
    return;
  }
  Engine::GlobalMap globals;
  for (const std::string& g : cq->GlobalNames()) {
    if (st->current == nullptr) {
      std::printf("no document loaded for $%s (use \\load or \\gen)\n",
                  g.c_str());
      return;
    }
    globals[g] = {xqtp::xdm::Item(st->current->root())};
  }
  auto res = st->engine.Execute(*cq, globals, st->algo);
  if (!res.ok()) {
    std::printf("%s\n", res.status().ToString().c_str());
    return;
  }
  size_t shown = 0;
  for (const xqtp::xdm::Item& item : *res) {
    if (shown++ == 20) {
      std::printf("... (%zu items total)\n", res->size());
      break;
    }
    if (item.IsNode()) {
      std::string xml = xqtp::xml::Serialize(item.node());
      if (xml.size() > 120) xml = xml.substr(0, 117) + "...";
      std::printf("%s\n", xml.c_str());
    } else {
      std::printf("%s\n", item.StringValue().c_str());
    }
  }
  if (res->empty()) std::printf("()\n");
  std::printf("-- %zu item(s), algorithm %s\n", res->size(),
              xqtp::exec::PatternAlgoName(st->algo));
}

void Dispatch(ShellState* st, const std::string& line) {
  std::istringstream iss(line);
  std::string cmd;
  iss >> cmd;
  if (cmd == "\\load") {
    std::string name, path;
    iss >> name >> path;
    LoadFile(st, name, path);
  } else if (cmd == "\\gen") {
    std::string kind;
    iss >> kind;
    if (kind == "member") {
      xqtp::workload::MemberParams p;
      iss >> p.node_count >> p.max_depth >> p.num_tags;
      st->current = st->engine.AddDocument(
          "member",
          xqtp::workload::GenerateMember(p, st->engine.interner()));
      st->current_name = "member";
      std::printf("generated member: %zu nodes\n",
                  st->current->node_count());
    } else if (kind == "xmark") {
      xqtp::workload::XmarkParams p;
      iss >> p.factor;
      st->current = st->engine.AddDocument(
          "xmark", xqtp::workload::GenerateXmark(p, st->engine.interner()));
      st->current_name = "xmark";
      std::printf("generated xmark: %zu nodes\n", st->current->node_count());
    } else {
      std::printf("usage: \\gen member <nodes> <depth> <tags> | "
                  "\\gen xmark <factor>\n");
    }
  } else if (cmd == "\\doc") {
    std::string name;
    iss >> name;
    const xqtp::xml::Document* d = st->engine.FindDocument(name);
    if (d == nullptr) {
      std::printf("no document named %s\n", name.c_str());
    } else {
      st->current = d;
      st->current_name = name;
    }
  } else if (cmd == "\\algo") {
    std::string a;
    iss >> a;
    if (a == "nl") {
      st->algo = xqtp::exec::PatternAlgo::kNLJoin;
    } else if (a == "sc") {
      st->algo = xqtp::exec::PatternAlgo::kStaircase;
    } else if (a == "tj") {
      st->algo = xqtp::exec::PatternAlgo::kTwig;
    } else if (a == "st") {
      st->algo = xqtp::exec::PatternAlgo::kStream;
    } else if (a == "cb") {
      st->algo = xqtp::exec::PatternAlgo::kCostBased;
    } else {
      std::printf("usage: \\algo nl|sc|tj|st|cb\n");
      return;
    }
    std::printf("algorithm: %s\n", xqtp::exec::PatternAlgoName(st->algo));
  } else if (cmd == "\\explain" || cmd == "\\plan") {
    std::string rest;
    std::getline(iss, rest);
    auto cq = st->engine.Compile(rest);
    if (!cq.ok()) {
      std::printf("%s\n", cq.status().ToString().c_str());
      return;
    }
    if (cmd == "\\explain") {
      std::printf("%s\n", st->engine.Explain(*cq).c_str());
    } else {
      std::printf("%s\n",
                  xqtp::algebra::ToPrettyString(cq->optimized(), cq->vars(),
                                                *st->engine.interner())
                      .c_str());
    }
  } else if (cmd == "\\help") {
    std::printf(
        "\\load <name> <file> | \\gen member <n> <d> <t> | \\gen xmark <f> "
        "| \\doc <name> | \\algo nl|sc|tj|st|cb | \\explain <q> | "
        "\\plan <q> | \\quit\n");
  } else {
    RunQuery(st, line);
  }
}

}  // namespace

int main(int argc, char** argv) {
  ShellState st;
  if (argc > 1) LoadFile(&st, "input", argv[1]);
  std::printf("xqtp shell — \\help for commands, \\quit to exit\n");
  std::string line;
  while (true) {
    std::printf("xqtp> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (line.empty()) continue;
    if (line == "\\quit" || line == "\\q") break;
    Dispatch(&st, line);
  }
  return 0;
}
