// Plan lint: read-only diagnostics over optimized algebra plans, driven
// by the property inference of analysis/plan_props.h. The linter reports
// statically-detectable pathologies that the property-justified rewrites
// could not (or were configured not to) remove:
//
//   redundant-ddo   a Ddo whose input is proven ordered and
//                   duplicate-free is still present in the plan
//   dead-field      a tuple field is defined (MapFromItem binding or
//                   pattern annotation) but never read downstream
//   parallel-merge  a pattern's cross-tuple output is proven ordered and
//                   duplicate-free, so the morsel-parallel driver's
//                   ordered K-way merge is unnecessary — concatenating
//                   the workers' outputs would already be correct
//   const-select    a Select whose predicate is a literal (keeps or
//                   drops every tuple)
//   card-zero       an operator whose output is proven empty
//
// Lint never fails compilation: the engine runs it inside a VerifyScope
// after optimization (debug builds by default) and surfaces the findings
// through CompiledQuery / Explain.
#ifndef XQTP_ANALYSIS_PLAN_LINT_H_
#define XQTP_ANALYSIS_PLAN_LINT_H_

#include <string>
#include <vector>

#include "algebra/ops.h"

namespace xqtp::analysis {

struct LintFinding {
  std::string rule;    ///< stable rule id, e.g. "redundant-ddo"
  std::string detail;  ///< human-readable one-liner
};

struct PlanLintOptions {
  /// Used to render field names in findings; "#<id>" without it.
  const StringInterner* interner = nullptr;
};

/// Infers plan properties and returns every finding, in plan walk order.
std::vector<LintFinding> LintPlan(const algebra::Op& plan,
                                  const PlanLintOptions& opts = {});

}  // namespace xqtp::analysis

#endif  // XQTP_ANALYSIS_PLAN_LINT_H_
