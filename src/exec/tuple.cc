#include "exec/tuple.h"

#include <cassert>

#include "common/exec_stats.h"

namespace xqtp::exec {

void Tuple::Set(Symbol field, xdm::Sequence value) {
  for (auto& [f, v] : fields_) {
    if (f == field) {
      v = std::move(value);
      return;
    }
  }
  fields_.emplace_back(field, std::move(value));
}

const xdm::Sequence* Tuple::Get(Symbol field) const {
  for (const auto& [f, v] : fields_) {
    if (f == field) return &v;
  }
  return nullptr;
}

TupleBatch TupleBatch::FromTuples(const TupleSeq& tuples) {
  TupleBatch batch(tuples.size());
  if (tuples.empty()) return batch;
  // The schema is the union of fields across rows, in first-seen order;
  // a row missing a field contributes the empty sequence (Tuple::Get of
  // an absent field and an empty field are both "()" to every consumer).
  std::vector<Symbol> schema;
  for (const Tuple& t : tuples) {
    for (const auto& [sym, seq] : t.fields()) {
      bool known = false;
      for (Symbol s : schema) known = known || s == sym;
      if (!known) schema.push_back(sym);
    }
  }
  for (Symbol sym : schema) {
    TupleColumn col;
    col.field = sym;
    col.values.reserve(tuples.size());
    for (const Tuple& t : tuples) {
      const xdm::Sequence* v = t.Get(sym);
      col.values.push_back(v != nullptr ? *v : xdm::Sequence{});
    }
    batch.AddOwnedColumn(std::move(col));
  }
  CountTuplesMaterialized(static_cast<int64_t>(tuples.size()));
  return batch;
}

const TupleBatch::BoundColumn* TupleBatch::Find(Symbol field) const {
  for (const BoundColumn& c : columns_) {
    if (c.column->field == field) return &c;
  }
  return nullptr;
}

const xdm::Sequence* TupleBatch::Get(size_t i, Symbol field) const {
  const BoundColumn* c = Find(field);
  return c != nullptr ? &Value(*c, i) : nullptr;
}

void TupleBatch::AddOwnedColumn(TupleColumn column) {
  assert(column.values.size() == physical_rows_);
  columns_.push_back(
      BoundColumn{MakeColumn(std::move(column)), /*broadcast=*/false});
}

void TupleBatch::AddSharedColumn(TupleColumnPtr column) {
  assert(column != nullptr && column->values.size() == physical_rows_);
  columns_.push_back(BoundColumn{std::move(column), /*broadcast=*/false});
}

void TupleBatch::AddBroadcastColumn(TupleColumnPtr column) {
  assert(column != nullptr && column->values.size() == 1);
  columns_.push_back(BoundColumn{std::move(column), /*broadcast=*/true});
}

TupleBatch TupleBatch::SelectRows(const std::vector<uint32_t>& keep) const {
  TupleBatch out(physical_rows_);
  out.columns_ = columns_;
  auto sel = std::make_shared<std::vector<uint32_t>>();
  sel->reserve(keep.size());
  for (uint32_t logical : keep) sel->push_back(physical(logical));
  out.sel_ = std::move(sel);
  return out;
}

Tuple TupleBatch::MaterializeRow(size_t i) const {
  Tuple t;
  for (const BoundColumn& c : columns_) t.Set(c.column->field, Value(c, i));
  CountTuplesMaterialized(1);
  return t;
}

TupleSeq TupleBatch::ToTuples() const {
  TupleSeq out;
  const size_t n = rows();
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(MaterializeRow(i));
  return out;
}

void TupleBatch::Flatten() {
  const bool identity = sel_ == nullptr;
  bool any_broadcast = false;
  for (const BoundColumn& c : columns_) any_broadcast |= c.broadcast;
  if (identity && !any_broadcast) return;

  const size_t n = rows();
  int64_t copies = 0;
  for (BoundColumn& c : columns_) {
    TupleColumn gathered;
    gathered.field = c.column->field;
    gathered.values.reserve(n);
    for (size_t i = 0; i < n; ++i) gathered.values.push_back(Value(c, i));
    c.column = MakeColumn(std::move(gathered));
    c.broadcast = false;
    ++copies;
  }
  CountCowColumnCopies(copies);
  physical_rows_ = n;
  sel_.reset();
}

void TupleBatch::Append(TupleBatch&& other) {
  if (other.rows() == 0) return;
  if (rows() == 0 && columns_.empty()) {
    *this = std::move(other);
    return;
  }
  Flatten();
  other.Flatten();
  assert(columns_.size() == other.columns_.size());
  const size_t added = other.physical_rows_;
  for (size_t c = 0; c < columns_.size(); ++c) {
    assert(columns_[c].column->field == other.columns_[c].column->field);
    TupleColumn merged;
    merged.field = columns_[c].column->field;
    merged.values.reserve(physical_rows_ + added);
    MoveColumnValues(columns_[c], &merged);
    MoveColumnValues(other.columns_[c], &merged);
    columns_[c].column = MakeColumn(std::move(merged));
  }
  physical_rows_ += added;
  other = TupleBatch();
}

void TupleBatch::MoveColumnValues(BoundColumn& from, TupleColumn* into) {
  if (from.column.use_count() == 1) {
    // Sole owner: steal the values. Legal because MakeColumn allocates
    // the object non-const; only the pointer's view is const.
    auto* mut = const_cast<TupleColumn*>(from.column.get());
    for (xdm::Sequence& v : mut->values) into->values.push_back(std::move(v));
  } else {
    for (const xdm::Sequence& v : from.column->values) {
      into->values.push_back(v);
    }
    CountCowColumnCopies(1);
  }
  from.column.reset();
}

int64_t TupleBatch::ApproxBytes() const {
  int64_t bytes = 0;
  for (const BoundColumn& c : columns_) {
    if (c.broadcast) {
      bytes += static_cast<int64_t>(c.column->values[0].size() *
                                    sizeof(xdm::Item));
      continue;
    }
    bytes += static_cast<int64_t>(c.column->values.size() *
                                  sizeof(xdm::Sequence));
    for (const xdm::Sequence& v : c.column->values) {
      bytes += static_cast<int64_t>(v.size() * sizeof(xdm::Item));
    }
  }
  if (sel_) bytes += static_cast<int64_t>(sel_->size() * sizeof(uint32_t));
  return bytes;
}

TupleBatch RowView::ToBatch() const {
  if (batch_ != nullptr) {
    return batch_->SelectRows({static_cast<uint32_t>(row_)});
  }
  TupleBatch b(tuple_ != nullptr ? 1 : 0);
  if (tuple_ != nullptr) {
    for (const auto& [sym, seq] : tuple_->fields()) {
      TupleColumn col;
      col.field = sym;
      col.values.push_back(seq);
      b.AddOwnedColumn(std::move(col));
    }
    CountTuplesMaterialized(1);
  }
  return b;
}

Tuple RowView::Materialize() const {
  if (tuple_ != nullptr) {
    CountTuplesMaterialized(1);
    return *tuple_;
  }
  if (batch_ != nullptr) return batch_->MaterializeRow(row_);
  return Tuple{};
}

}  // namespace xqtp::exec
