file(REMOVE_RECURSE
  "CMakeFiles/algebra_compile_test.dir/algebra_compile_test.cc.o"
  "CMakeFiles/algebra_compile_test.dir/algebra_compile_test.cc.o.d"
  "algebra_compile_test"
  "algebra_compile_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algebra_compile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
