// Algebraic tree-pattern detection: the rewrite rules of the paper's
// Figure 3, applied to a fixpoint so the largest tree patterns are found.
//
//  (a) TreeJoin[s](IN#in)                -> MapToItem{IN#out}(
//                                             TupleTreePattern[IN#in/s{out}](IN))
//  (b) MapToItem{TreeJoin[s](IN#in)}(Op) -> MapToItem{IN#out}(
//                                             TupleTreePattern[IN#in/s{out}](Op))
//  (c) MapFromItem{[o1 : IN]}(MapToItem{IN#o2}(TTP[p{o2}](Op)))
//                                        -> TTP[p{o1}](Op)
//  (d) TTP[IN#o1/p2{o2}](TTP[IN#in/p1/s{o1}](Op))
//                                        -> TTP[IN#in/p1/s/p2{o2}](Op)
//  (e) Select{boolean(MapToItem{IN#oK}(TTP[IN#o/predK{oK}](IN))) and ...}
//            (TTP[IN#in/s{o}](Op))       -> TTP[IN#in/s[pred1]..[predN]{o}](Op)
//  (f) fs:ddo(MapToItem{IN#o}(TTP[p{o}](Op)))
//                                        -> MapToItem{IN#o}(TTP[p{o}](Op))
//      when the single output is at the extraction point and the input
//      produces at most one tuple (so the operator's output is already in
//      document order and duplicate-free).
// plus clean-up rules (MapToItem/MapFromItem round-trip elimination).
#ifndef XQTP_ALGEBRA_OPTIMIZE_H_
#define XQTP_ALGEBRA_OPTIMIZE_H_

#include "algebra/ops.h"
#include "analysis/verify_scope.h"
#include "common/status.h"

namespace xqtp::analysis {
class EquivChecker;
}  // namespace xqtp::analysis

namespace xqtp::algebra {

struct OptimizeOptions {
  /// Master switch; off reproduces the "old engine" (nested maps +
  /// navigational TreeJoin) used as the baseline in Figure 4.
  bool detect_tree_patterns = true;
  /// The multi-variable extension (the paper's primary future-work item):
  /// when rule (d)'s order guard blocks a merge, merge anyway into a
  /// multi-output ("generalized") pattern that keeps the intermediate
  /// binding annotated — the Section 4.1 lexical-order semantics make the
  /// merged operator equivalent to the cascade. Multi-output patterns
  /// are evaluated by binding enumeration (the nested-loop algorithm).
  bool multi_output_patterns = false;
  /// The paper's future-work extension: fold constant positional
  /// predicates ("[k]") into pattern steps (rule (g)), so positional
  /// queries like Q3 compile to a single TupleTreePattern instead of a
  /// pattern embedded in maps. Off by default to reproduce the paper's
  /// plan shapes.
  bool positional_patterns = false;
  int max_rounds = 64;
  /// Property-justified rewrites (analysis/plan_props.h): after each
  /// structural fixpoint, infer order/distinctness/cardinality facts over
  /// the plan and (p1) drop Ddo operators whose input is proven ordered
  /// and duplicate-free, (p2) prune unread non-extraction-point pattern
  /// annotations whose removal the facts justify (order-insensitive
  /// context, or a functional dependency on a deeper binding). Each
  /// firing passes the same VerifyPlan / translation-validation
  /// checkpoints as the structural rules, and the final plan is stamped
  /// with runtime-checkable claims (Op::props) asserted by the evaluator
  /// in debug builds.
  bool infer_properties = true;
  /// Run analysis::VerifyPlan after every fixpoint round that changed the
  /// plan (and after field canonicalization); a violation is attributed
  /// to the rules that fired in that round. On by default in Debug
  /// builds.
  bool verify = analysis::kVerifyByDefault;
  /// Enables the verifier's global-variable checks when supplied.
  const core::VarTable* vars = nullptr;
  /// Translation-validation oracle (analysis/equiv_checker.h): when set
  /// together with `vars`, the plan is snapshotted before each fixpoint
  /// round and both forms are executed against the witness corpus after a
  /// round changed the plan; a semantic divergence aborts optimization
  /// with the fired rules, the minimized witness, and both printed plans.
  /// Non-owning.
  analysis::EquivChecker* equiv = nullptr;
};

/// Rewrites `plan` in place. Field names are canonicalized afterwards
/// (first field becomes "dot", then "out", "out1", ...) so that
/// syntactic query variants yield byte-identical plans.
[[nodiscard]]
Status Optimize(OpPtr* plan, StringInterner* interner,
                const OptimizeOptions& opts = {});

}  // namespace xqtp::algebra

#endif  // XQTP_ALGEBRA_OPTIMIZE_H_
