#include "workload/xmark_queries.h"

namespace xqtp::workload {

const std::vector<XmarkQuery>& XmarkQueryCorpus() {
  static const std::vector<XmarkQuery>* corpus = new std::vector<XmarkQuery>{
      {"XQ1", "name of the person with a given id (here: by position)",
       "$input/site/people/person[1]/name"},
      {"XQ2", "initial increases of all open auctions",
       "for $b in $input/site/open_auctions/open_auction "
       "return $b/bidder[1]/increase"},
      {"XQ3",
       "auctions whose current price is at least twice the initial price",
       "for $a in $input/site/open_auctions/open_auction "
       "where $a/current > $a/initial + $a/initial return $a/current"},
      {"XQ4", "auctions that have at least one bidder",
       "fn:count($input//open_auction[bidder])"},
      {"XQ5", "closed auctions with a price of at least 40",
       "fn:count($input/site/closed_auctions/closed_auction"
       "[price >= 40])"},
      {"XQ6", "items listed in all regions",
       "fn:count($input/site/regions/*/item)"},
      {"XQ7", "pieces of promotional data (mails) in the site",
       "fn:count($input/site/regions/*/item/mailbox/mail)"},
      {"XQ8", "people with an email address and at least one interest",
       "fn:count($input/site/people/person[emailaddress]"
       "[profile/interest])"},
      {"XQ13", "names of items in a region, with their descriptions",
       "$input/site/regions/*/item/name"},
      {"XQ14", "names of items whose description mentions a keyword",
       "for $i in $input/site/regions/*/item "
       "where fn:contains($i/description, \"merchandise\") "
       "return $i/name"},
      {"XQ15", "deeply nested data: bidder dates of open auctions",
       "$input/site/open_auctions/open_auction/bidder/date"},
      {"XQ17", "people without a homepage",
       "fn:count(for $p in $input/site/people/person "
       "where fn:empty($p/homepage) return $p)"},
      {"XQ19", "names of items, via the descendant axis",
       "$input//item//name"},
      {"XQ20", "grouping: count of persons by income presence",
       "(fn:count($input//person[profile/@income]), "
       "fn:count($input//person[fn:empty(profile/@income)]))"},
  };
  return *corpus;
}

}  // namespace xqtp::workload
