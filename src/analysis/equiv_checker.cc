#include "analysis/equiv_checker.h"

#include <functional>
#include <utility>

#include "algebra/printer.h"
#include "analysis/cross_check.h"
#include "core/printer.h"
#include "exec/core_interp.h"
#include "exec/evaluator.h"
#include "xml/parser.h"

namespace xqtp::analysis {

namespace {

/// Binds every query global to the witness document's root, the engine's
/// binding contract (globals are singleton documents).
exec::Bindings BindGlobals(const core::VarTable& vars,
                           const xml::Document& doc) {
  exec::Bindings b;
  for (core::VarId v = 0; v < static_cast<core::VarId>(vars.size()); ++v) {
    if (vars.IsGlobal(v)) b[v] = xdm::Sequence{xdm::Item(doc.root())};
  }
  return b;
}

/// Agreement between two evaluation outcomes: equal sequences, or both
/// erroring (rewrites may reword error messages but must not turn a
/// failing query into a succeeding one or vice versa).
bool Agree(const Result<xdm::Sequence>& a, const Result<xdm::Sequence>& b) {
  if (!a.ok() || !b.ok()) return !a.ok() && !b.ok();
  if (a.value().size() != b.value().size()) return false;
  for (size_t i = 0; i < a.value().size(); ++i) {
    if (!ItemsAgree(a.value()[i], b.value()[i])) return false;
  }
  return true;
}

std::string RenderOutcome(const Result<xdm::Sequence>& r,
                          const StringInterner& interner) {
  if (!r.ok()) return "<error: " + r.status().ToString() + ">";
  std::string out = "(";
  for (size_t i = 0; i < r.value().size(); ++i) {
    if (i > 0) out += ", ";
    const xdm::Item& item = r.value()[i];
    if (item.IsNode()) {
      const xml::Node* n = item.node();
      if (n->IsDocument()) {
        out += "doc()";
      } else if (n->name != kInvalidSymbol) {
        out += (n->IsAttribute() ? "@" : "") + interner.NameOf(n->name) +
               "[pre=" + std::to_string(n->pre) + "]";
      } else {
        out += "text[pre=" + std::to_string(n->pre) + "]\"" + n->text + "\"";
      }
    } else {
      out += item.StringValue();
    }
  }
  return out + ")";
}

/// Evaluation routine for one side of a check: a Core expression or an
/// algebra plan, uniformly.
using EvalFn =
    std::function<Result<xdm::Sequence>(const xml::Document&)>;

struct CheckSubject {
  EvalFn eval;
  std::string printed;  ///< for the divergence report
  const char* label;    ///< "before" / "after" / "core" / "plan"
};

}  // namespace

EquivChecker::EquivChecker(StringInterner* interner,
                           const AnalysisOptions& opts)
    : interner_(interner), opts_(opts), corpus_(interner) {}

namespace {

Status RunCheck(const CheckSubject& lhs, const CheckSubject& rhs,
                const WitnessCorpus& corpus, StringInterner* interner,
                const AnalysisOptions& opts) {
  int limit = opts.max_witness_docs > 0
                  ? opts.max_witness_docs
                  : static_cast<int>(corpus.docs().size());
  for (int i = 0; i < limit && i < static_cast<int>(corpus.docs().size());
       ++i) {
    const WitnessDoc& w = corpus.docs()[i];
    Result<xdm::Sequence> rl = lhs.eval(*w.doc);
    Result<xdm::Sequence> rr = rhs.eval(*w.doc);
    if (Agree(rl, rr)) continue;

    // Divergence: minimize the witness before reporting. The predicate
    // re-runs both sides on each candidate document.
    WitnessPredicate pred = [&](const xml::Document& cand) {
      return !Agree(lhs.eval(cand), rhs.eval(cand));
    };
    std::string minimized =
        ShrinkWitness(w.xml, interner, pred, opts.shrink_budget);
    // Re-evaluate on the minimized witness so the reported outcomes match
    // the reported document.
    auto mdoc = xml::Parse(minimized, interner);
    std::string lhs_out = RenderOutcome(rl, *interner);
    std::string rhs_out = RenderOutcome(rr, *interner);
    if (mdoc.ok()) {
      lhs_out = RenderOutcome(lhs.eval(*mdoc.value()), *interner);
      rhs_out = RenderOutcome(rhs.eval(*mdoc.value()), *interner);
    }
    std::string msg = "translation validation: rewrite changed semantics";
    msg += "\n  witness: " + w.name;
    msg += "\n  witness(minimized): " + minimized;
    msg += "\n  ";
    msg += lhs.label;
    msg += " result: " + lhs_out;
    msg += "\n  ";
    msg += rhs.label;
    msg += " result: " + rhs_out;
    msg += "\n  ";
    msg += lhs.label;
    msg += ":\n" + lhs.printed;
    msg += "\n  ";
    msg += rhs.label;
    msg += ":\n" + rhs.printed;
    return VerifyScope::Tag(Status::Internal(std::move(msg)));
  }
  return Status::OK();
}

}  // namespace

Status EquivChecker::CheckCore(const core::CoreExpr& before,
                               const core::CoreExpr& after,
                               const core::VarTable& vars) {
  CheckSubject lhs{[&](const xml::Document& d) {
                     return exec::EvaluateCore(before, vars,
                                               BindGlobals(vars, d));
                   },
                   core::ToString(before, vars, *interner_), "before"};
  CheckSubject rhs{[&](const xml::Document& d) {
                     return exec::EvaluateCore(after, vars,
                                               BindGlobals(vars, d));
                   },
                   core::ToString(after, vars, *interner_), "after"};
  return RunCheck(lhs, rhs, corpus_, interner_, opts_);
}

Status EquivChecker::CheckPlan(const algebra::Op& before,
                               const algebra::Op& after,
                               const core::VarTable& vars) {
  exec::EvalOptions eopts;  // nested-loop: the reference algorithm
  CheckSubject lhs{[&](const xml::Document& d) {
                     return exec::Evaluate(before, vars, BindGlobals(vars, d),
                                           eopts);
                   },
                   algebra::ToPrettyString(before, vars, *interner_),
                   "before"};
  CheckSubject rhs{[&](const xml::Document& d) {
                     return exec::Evaluate(after, vars, BindGlobals(vars, d),
                                           eopts);
                   },
                   algebra::ToPrettyString(after, vars, *interner_), "after"};
  return RunCheck(lhs, rhs, corpus_, interner_, opts_);
}

Status EquivChecker::CheckCoreVsPlan(const core::CoreExpr& core_form,
                                     const algebra::Op& plan,
                                     const core::VarTable& vars) {
  exec::EvalOptions eopts;
  CheckSubject lhs{[&](const xml::Document& d) {
                     return exec::EvaluateCore(core_form, vars,
                                               BindGlobals(vars, d));
                   },
                   core::ToString(core_form, vars, *interner_), "core"};
  CheckSubject rhs{[&](const xml::Document& d) {
                     return exec::Evaluate(plan, vars, BindGlobals(vars, d),
                                           eopts);
                   },
                   algebra::ToPrettyString(plan, vars, *interner_), "plan"};
  return RunCheck(lhs, rhs, corpus_, interner_, opts_);
}

}  // namespace xqtp::analysis
