// Table 1 of the paper: queries QE1..QE6 (Figure 5) evaluated with all
// three pattern algorithms (NL / TJ / SC) on MemBeR documents of depth 4
// with 100 uniformly distributed tags, at the paper's five sizes
// (2.1 / 4.3 / 6.5 / 8.7 / 11 MB).
//
// Expected shape (paper Section 5.2): NL never wins on these rooted
// patterns; SC and TJ trade places — SC leads on the simpler patterns,
// TJ on the descendant-heavy branchy ones.
#include "bench_common.h"

namespace xqtp::bench {
namespace {

struct QE {
  const char* name;
  const char* query;
};

constexpr QE kQueries[] = {
    {"QE1", "$input/desc::t01[child::t02[child::t03[child::t04]]]"},
    {"QE2", "$input/desc::t01/child::t02[1]/child::t03[child::t04]"},
    {"QE3", "$input/desc::t01[child::t02[child::t03]/child::t04[child::t03]]"},
    {"QE4", "$input/desc::t01[desc::t02[desc::t03[desc::t04]]]"},
    {"QE5", "$input/desc::t01/desc::t02[1]/desc::t03[desc::t04]"},
    {"QE6", "$input/desc::t01[desc::t02[desc::t03]/desc::t04[desc::t03]]"},
};

struct Size {
  const char* label;
  size_t bytes;
};

constexpr Size kSizes[] = {
    {"2.1MB", 2202009}, {"4.3MB", 4509716}, {"6.5MB", 6815744},
    {"8.7MB", 9122611}, {"11MB", 11534336},
};

const xml::Document& DocFor(const Size& s) {
  int nodes = workload::NodeCountForBytes(s.bytes);
  // "depth 4" in the paper counts levels below the root element; planted
  // twig instances give the QE queries matches on the otherwise uniform
  // document (see DESIGN.md).
  return MemberDoc(std::string("member_") + s.label, nodes, /*max_depth=*/5,
                   /*num_tags=*/100, /*plant_twigs=*/nodes / 2000);
}

void Register() {
  for (const QE& qe : kQueries) {
    for (const Size& size : kSizes) {
      for (exec::PatternAlgo algo :
           {exec::PatternAlgo::kNLJoin, exec::PatternAlgo::kTwig,
            exec::PatternAlgo::kStaircase}) {
        std::string name = std::string("Table1/") + qe.name + "/" +
                           AlgoTag(algo) + "/" + size.label;
        std::string query = qe.query;
        const Size* sp = &size;
        benchmark::RegisterBenchmark(
            name.c_str(),
            [query, algo, sp](benchmark::State& state) {
              RunQueryBenchmark(state, query, DocFor(*sp), algo);
            })
            ->Unit(benchmark::kMillisecond);
      }
    }
  }
}

}  // namespace
}  // namespace xqtp::bench

int main(int argc, char** argv) {
  xqtp::bench::Register();
  return xqtp::bench::BenchMain(argc, argv);
}
