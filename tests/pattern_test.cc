#include <gtest/gtest.h>

#include "pattern/tree_pattern.h"

namespace xqtp::pattern {
namespace {

class PatternTest : public ::testing::Test {
 protected:
  StringInterner in_;
  Symbol dot_ = in_.Intern("dot");
  Symbol out_ = in_.Intern("out");
  Symbol out2_ = in_.Intern("out2");
  Symbol person_ = in_.Intern("person");
  Symbol name_ = in_.Intern("name");
  Symbol email_ = in_.Intern("emailaddress");
};

TEST_F(PatternTest, SingleStepToString) {
  TreePattern tp = MakeSingleStep(dot_, Axis::kDescendant,
                                  NodeTest::Name(person_), out_);
  EXPECT_EQ(tp.ToString(in_), "IN#dot/descendant::person{out}");
  EXPECT_EQ(tp.StepCount(), 1);
  EXPECT_TRUE(tp.SingleOutputAtExtractionPoint());
}

TEST_F(PatternTest, AppendPathMergesMainPath) {
  TreePattern tp = MakeSingleStep(dot_, Axis::kDescendant,
                                  NodeTest::Name(person_), out_);
  TreePattern suffix =
      MakeSingleStep(out_, Axis::kChild, NodeTest::Name(name_), out2_);
  AppendPath(&tp, std::move(suffix));
  EXPECT_EQ(tp.ToString(in_),
            "IN#dot/descendant::person/child::name{out2}");
  EXPECT_EQ(tp.StepCount(), 2);
  std::vector<Symbol> outs = tp.OutputFields();
  ASSERT_EQ(outs.size(), 1u);
  EXPECT_EQ(outs[0], out2_);
}

TEST_F(PatternTest, AttachPredicateClearsPredicateOutputs) {
  TreePattern tp = MakeSingleStep(dot_, Axis::kDescendant,
                                  NodeTest::Name(person_), out_);
  TreePattern pred =
      MakeSingleStep(out_, Axis::kChild, NodeTest::Name(email_), out2_);
  AttachPredicate(&tp, std::move(pred));
  EXPECT_EQ(tp.ToString(in_),
            "IN#dot/descendant::person{out}[child::emailaddress]");
  EXPECT_TRUE(tp.SingleOutputAtExtractionPoint());
  EXPECT_EQ(tp.MaxBranching(), 1);
}

TEST_F(PatternTest, PaperGrammarExample) {
  // IN#x/descendant::a/child::c{y}[attribute::id]/child::d{z}
  Symbol x = in_.Intern("x"), y = in_.Intern("y"), z = in_.Intern("z");
  TreePattern tp = MakeSingleStep(x, Axis::kDescendant,
                                  NodeTest::Name(in_.Intern("a")),
                                  kInvalidSymbol);
  TreePattern c = MakeSingleStep(kInvalidSymbol, Axis::kChild,
                                 NodeTest::Name(in_.Intern("c")), y);
  AppendPath(&tp, std::move(c));
  TreePattern id = MakeSingleStep(kInvalidSymbol, Axis::kAttribute,
                                  NodeTest::Name(in_.Intern("id")),
                                  kInvalidSymbol);
  AttachPredicate(&tp, std::move(id));
  TreePattern d = MakeSingleStep(kInvalidSymbol, Axis::kChild,
                                 NodeTest::Name(in_.Intern("d")), z);
  AppendPath(&tp, std::move(d));
  EXPECT_EQ(
      tp.ToString(in_),
      "IN#x/descendant::a/child::c[attribute::id]/child::d{z}");
  // After AppendPath the intermediate {y} annotation is cleared, so the
  // pattern has a single output at the extraction point.
  EXPECT_TRUE(tp.SingleOutputAtExtractionPoint());
  EXPECT_EQ(tp.StepCount(), 4);
}

TEST_F(PatternTest, RenameAndClearOutput) {
  TreePattern tp = MakeSingleStep(dot_, Axis::kChild,
                                  NodeTest::Name(name_), out_);
  EXPECT_TRUE(RenameOutput(&tp, out_, out2_));
  EXPECT_EQ(tp.OutputFields()[0], out2_);
  EXPECT_FALSE(RenameOutput(&tp, out_, out2_));  // out_ no longer present
  EXPECT_TRUE(ClearOutput(&tp, out2_));
  EXPECT_TRUE(tp.OutputFields().empty());
  EXPECT_FALSE(tp.SingleOutputAtExtractionPoint());
}

TEST_F(PatternTest, CloneAndEqual) {
  TreePattern tp = MakeSingleStep(dot_, Axis::kDescendant,
                                  NodeTest::Name(person_), out_);
  AttachPredicate(&tp, MakeSingleStep(out_, Axis::kChild,
                                      NodeTest::Name(email_),
                                      kInvalidSymbol));
  TreePattern copy = tp.Clone();
  EXPECT_TRUE(Equal(tp, copy));
  copy.root->axis = Axis::kChild;
  EXPECT_FALSE(Equal(tp, copy));
}

TEST_F(PatternTest, WildcardAndNodeTests) {
  TreePattern tp = MakeSingleStep(dot_, Axis::kDescendantOrSelf,
                                  NodeTest::AnyNode(), kInvalidSymbol);
  TreePattern next =
      MakeSingleStep(kInvalidSymbol, Axis::kChild, NodeTest::AnyName(), out_);
  AppendPath(&tp, std::move(next));
  EXPECT_EQ(tp.ToString(in_),
            "IN#dot/descendant-or-self::node()/child::*{out}");
}

}  // namespace
}  // namespace xqtp::pattern
