// Plan-property-inference payoff: the same XMark queries compiled with
// the TPNF' Core rewrites disabled (rewrite=false), with and without the
// property pass (CompileOptions::infer_properties). Without the rewrites,
// rule (f) never fires and compiled plans keep Ddo operators; the property
// pass proves them redundant from the inferred order/distinctness facts
// and removes them. Before registering any timing, main() verifies the
// claim the bench exists to demonstrate: at least one query loses a Ddo,
// and for every query both plans agree bit-for-bit at threads 1 and 2
// (the compile-time translation-validation oracle has already checked
// each firing in debug builds). Run with --json=<path> for the perf
// trajectory records; the two compiles are distinguished by the record's
// "variant" field (infer-off / infer-on).
#include <cstdio>

#include "bench_common.h"

namespace xqtp::bench {
namespace {

// Queries whose unrewritten plans keep structural-rule-proof Ddo ops.
constexpr const char* kQueries[] = {
    "$input//location",
    "$input//item/location",
    "$input//person[name]",
};

constexpr struct {
  const char* tag;
  bool infer;
} kVariants[] = {{"infer-off", false}, {"infer-on", true}};

const xml::Document& Doc() { return XmarkDoc("xmark_props", 0.25); }

engine::CompileOptions Opts(bool infer) {
  engine::CompileOptions copts;
  copts.rewrite = false;
  copts.infer_properties = infer;
  return copts;
}

// Proves the elimination + equivalence story before anything is timed.
// Returns false (after printing why to stderr) if no query loses a Ddo
// or any query's two plans disagree.
bool VerifyElimination() {
  engine::Engine& e = SharedEngine();
  const xml::Document& doc = Doc();
  int eliminated_queries = 0;
  for (const char* query : kQueries) {
    auto plain = e.Compile(query, Opts(false));
    auto opt = e.Compile(query, Opts(true));
    if (!plain.ok() || !opt.ok()) {
      std::fprintf(stderr, "bench_plan_props: compile failed for %s\n", query);
      return false;
    }
    int before = plain->Stats().ddo_ops;
    int after = opt->Stats().ddo_ops;
    if (after < before) ++eliminated_queries;
    std::fprintf(stderr, "bench_plan_props: %-24s ddo %d -> %d\n", query,
                 before, after);
    engine::Engine::GlobalMap globals{{"input", {xdm::Item(doc.root())}}};
    for (int threads : {1, 2}) {
      exec::EvalOptions eopts;
      eopts.threads = threads;
      eopts.parallel_min_fanout = 1;
      auto want = e.Execute(*plain, globals, eopts);
      auto got = e.Execute(*opt, globals, eopts);
      if (!want.ok() || !got.ok() || *want != *got) {
        std::fprintf(stderr,
                     "bench_plan_props: DIVERGENCE for %s at threads=%d\n",
                     query, threads);
        return false;
      }
    }
  }
  if (eliminated_queries == 0) {
    std::fprintf(stderr,
                 "bench_plan_props: property pass eliminated no Ddo ops\n");
    return false;
  }
  return true;
}

void Register() {
  for (const char* query : kQueries) {
    for (const auto& variant : kVariants) {
      std::string name = std::string("PlanProps/") + query + "/" + variant.tag;
      std::string q = query;
      bool infer = variant.infer;
      std::string tag = variant.tag;
      benchmark::RegisterBenchmark(
          name.c_str(),
          [q, infer, tag](benchmark::State& state) {
            exec::EvalOptions eopts;
            eopts.algo = exec::PatternAlgo::kNLJoin;
            // Time the plan difference, not the debug-build claim
            // assertions (VerifyElimination above already ran with them).
            eopts.check_inferred_props = false;
            RunQueryBenchmark(state, q, Doc(), eopts,
                              engine::PlanChoice::kOptimized, Opts(infer),
                              tag);
          })
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace xqtp::bench

int main(int argc, char** argv) {
  if (!xqtp::bench::VerifyElimination()) return 1;
  xqtp::bench::Register();
  return xqtp::bench::BenchMain(argc, argv);
}
