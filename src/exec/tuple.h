// Tuples flowing through the tuple algebra: ordered field -> sequence maps.
// Plans manipulate a handful of fields, so a small sorted vector wins over a
// hash map.
#ifndef XQTP_EXEC_TUPLE_H_
#define XQTP_EXEC_TUPLE_H_

#include <utility>
#include <vector>

#include "common/interner.h"
#include "xdm/item.h"

namespace xqtp::exec {

/// One algebra tuple.
class Tuple {
 public:
  Tuple() = default;

  /// Sets (or overwrites) a field.
  void Set(Symbol field, xdm::Sequence value);

  /// Returns the field's value, or nullptr if absent.
  const xdm::Sequence* Get(Symbol field) const;

  bool Has(Symbol field) const { return Get(field) != nullptr; }
  size_t field_count() const { return fields_.size(); }

  const std::vector<std::pair<Symbol, xdm::Sequence>>& fields() const {
    return fields_;
  }

 private:
  std::vector<std::pair<Symbol, xdm::Sequence>> fields_;
};

using TupleSeq = std::vector<Tuple>;

}  // namespace xqtp::exec

#endif  // XQTP_EXEC_TUPLE_H_
