#include <gtest/gtest.h>

#include "engine/engine.h"
#include "exec/cost_model.h"
#include "workload/member_gen.h"

namespace xqtp::exec {
namespace {

using pattern::MakeSingleStep;
using pattern::TreePattern;

class CostModelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workload::MemberParams wide;
    wide.node_count = 50000;
    wide.max_depth = 5;
    wide.num_tags = 100;
    wide.plant_twigs = 25;
    wide_ = engine_.AddDocument(
        "wide", workload::GenerateMember(wide, engine_.interner()));

    workload::MemberParams deep;
    deep.node_count = 20000;
    deep.max_depth = 15;
    deep.num_tags = 1;
    deep_ = engine_.AddDocument(
        "deep", workload::GenerateMember(deep, engine_.interner()));
  }

  Symbol Tag(const char* t) { return engine_.interner()->Intern(t); }

  engine::Engine engine_;
  const xml::Document* wide_;
  const xml::Document* deep_;
};

TEST_F(CostModelTest, StatsAreSane) {
  const DocStats& s = StatsFor(*wide_);
  EXPECT_GT(s.node_count, 50000);
  EXPECT_GT(s.avg_fanout, 2.0);
  EXPECT_EQ(s.max_depth, 5);
  // Cached: same object.
  EXPECT_EQ(&StatsFor(*wide_), &s);
}

TEST_F(CostModelTest, IndexAlgorithmsWinOnRootedDescendantPatterns) {
  TreePattern tp = MakeSingleStep(Tag("dot"), Axis::kDescendant,
                                  NodeTest::Name(Tag("t01")), Tag("out"));
  xdm::Sequence ctx{xdm::Item(wide_->root())};
  double nl = EstimateCost(tp, ctx, PatternAlgo::kNLJoin);
  double sc = EstimateCost(tp, ctx, PatternAlgo::kStaircase);
  double tj = EstimateCost(tp, ctx, PatternAlgo::kTwig);
  EXPECT_LT(sc, nl);
  EXPECT_LT(tj, nl);
  PatternAlgo choice = ChooseAlgorithm(tp, ctx);
  EXPECT_NE(choice, PatternAlgo::kNLJoin);
}

TEST_F(CostModelTest, TwigWinsOnBranchyPatterns) {
  // t01[t02[t03]][t04] with descendant edges: heavy predicate probing for
  // the staircase join.
  TreePattern tp = MakeSingleStep(Tag("dot"), Axis::kDescendant,
                                  NodeTest::Name(Tag("t01")), Tag("out"));
  TreePattern p1 = MakeSingleStep(kInvalidSymbol, Axis::kDescendant,
                                  NodeTest::Name(Tag("t02")), kInvalidSymbol);
  pattern::AppendPath(&p1, MakeSingleStep(kInvalidSymbol, Axis::kDescendant,
                                          NodeTest::Name(Tag("t03")),
                                          kInvalidSymbol));
  pattern::AttachPredicate(&tp, std::move(p1));
  pattern::AttachPredicate(
      &tp, MakeSingleStep(kInvalidSymbol, Axis::kDescendant,
                          NodeTest::Name(Tag("t04")), kInvalidSymbol));
  xdm::Sequence ctx{xdm::Item(wide_->root())};
  double sc = EstimateCost(tp, ctx, PatternAlgo::kStaircase);
  double tj = EstimateCost(tp, ctx, PatternAlgo::kTwig);
  EXPECT_LT(tj, sc);
  EXPECT_EQ(ChooseAlgorithm(tp, ctx), PatternAlgo::kTwig);
}

TEST_F(CostModelTest, NestedLoopWinsOnDeepSelectiveContexts) {
  // A single child step from one deep context node: the Section 5.3
  // situation — the index algorithms would scan the t1 stream.
  const xml::Node* deep_node = deep_->root()->first_child;
  for (int i = 0; i < 8 && deep_node->first_child != nullptr; ++i) {
    deep_node = deep_node->first_child;
  }
  TreePattern tp = MakeSingleStep(Tag("dot"), Axis::kChild,
                                  NodeTest::Name(Tag("t1")), Tag("out"));
  xdm::Sequence ctx{xdm::Item(deep_node)};
  double nl = EstimateCost(tp, ctx, PatternAlgo::kNLJoin);
  double sc = EstimateCost(tp, ctx, PatternAlgo::kStaircase);
  double tj = EstimateCost(tp, ctx, PatternAlgo::kTwig);
  EXPECT_LT(nl, sc);
  EXPECT_LT(nl, tj);
  EXPECT_EQ(ChooseAlgorithm(tp, ctx), PatternAlgo::kNLJoin);
}

TEST_F(CostModelTest, CostBasedEvaluationIsCorrect) {
  const char* queries[] = {
      "$input/desc::t01[child::t02[child::t03[child::t04]]]",
      "$input/desc::t01[desc::t02]/child::t03",
      "$input/t1[1]/t1[1]/t1[1]",
  };
  for (const char* q : queries) {
    auto cq = engine_.Compile(q);
    ASSERT_TRUE(cq.ok()) << q;
    const xml::Document* d =
        std::string(q).find("t1[1]") != std::string::npos ? deep_ : wide_;
    engine::Engine::GlobalMap globals{{"input", {xdm::Item(d->root())}}};
    auto ref = engine_.Execute(*cq, globals, PatternAlgo::kNLJoin);
    auto cb = engine_.Execute(*cq, globals, PatternAlgo::kCostBased);
    ASSERT_TRUE(ref.ok() && cb.ok()) << q;
    ASSERT_EQ(ref->size(), cb->size()) << q;
    for (size_t i = 0; i < ref->size(); ++i) {
      EXPECT_TRUE((*ref)[i] == (*cb)[i]) << q << " item " << i;
    }
  }
}

TEST_F(CostModelTest, EmptyContextCostsNothing) {
  TreePattern tp = MakeSingleStep(Tag("dot"), Axis::kChild,
                                  NodeTest::AnyName(), Tag("out"));
  EXPECT_EQ(EstimateCost(tp, {}, PatternAlgo::kNLJoin), 0);
  // Choice still returns a valid algorithm.
  PatternAlgo choice = ChooseAlgorithm(tp, {});
  EXPECT_TRUE(choice == PatternAlgo::kNLJoin ||
              choice == PatternAlgo::kStaircase ||
              choice == PatternAlgo::kTwig);
}

}  // namespace
}  // namespace xqtp::exec
