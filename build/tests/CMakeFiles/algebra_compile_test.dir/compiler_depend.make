# Empty compiler generated dependencies file for algebra_compile_test.
# This may be replaced when dependencies are built.
