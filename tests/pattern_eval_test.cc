// Unit tests for the three physical tree-pattern algorithms, each checked
// against the same expectations and against each other.
#include <gtest/gtest.h>

#include "exec/pattern_eval.h"
#include "xdm/sequence_ops.h"
#include "xml/parser.h"

namespace xqtp::exec {
namespace {

using pattern::MakeSingleStep;
using pattern::TreePattern;

class PatternEvalTest : public ::testing::TestWithParam<PatternAlgo> {
 protected:
  void SetUp() override {
    auto res = xml::Parse(
        "<r>"
        "<a><c id=\"1\"><d/><d/></c></a>"
        "<a><c/></a>"
        "<a><c id=\"4\"><d/></c><c id=\"6\"/></a>"
        "<b><a><c id=\"9\"><d/></c></a></b>"
        "</r>",
        &interner_);
    ASSERT_TRUE(res.ok()) << res.status().ToString();
    doc_ = std::move(res).value();
    dot_ = interner_.Intern("dot");
    out_ = interner_.Intern("out");
  }

  xdm::Sequence RootCtx() { return {xdm::Item(doc_->root())}; }

  std::vector<BindingRow> Eval(const TreePattern& tp,
                               const xdm::Sequence& ctx) {
    auto res = EvalPattern(tp, ctx, GetParam());
    EXPECT_TRUE(res.ok()) << res.status().ToString();
    return res.ok() ? *res : std::vector<BindingRow>{};
  }

  StringInterner interner_;
  std::unique_ptr<xml::Document> doc_;
  Symbol dot_, out_;
};

TEST_P(PatternEvalTest, SingleDescendantStep) {
  TreePattern tp = MakeSingleStep(
      dot_, Axis::kDescendant, NodeTest::Name(interner_.Intern("a")), out_);
  auto rows = Eval(tp, RootCtx());
  EXPECT_EQ(rows.size(), 4u);
  // Document order.
  for (size_t i = 0; i + 1 < rows.size(); ++i) {
    EXPECT_LT(rows[i].fields[0].second->pre, rows[i + 1].fields[0].second->pre);
  }
}

TEST_P(PatternEvalTest, PathWithPredicate) {
  // descendant::a/child::c[child::d]
  TreePattern tp = MakeSingleStep(
      dot_, Axis::kDescendant, NodeTest::Name(interner_.Intern("a")),
      kInvalidSymbol);
  pattern::AppendPath(
      &tp, MakeSingleStep(kInvalidSymbol, Axis::kChild,
                          NodeTest::Name(interner_.Intern("c")), out_));
  pattern::AttachPredicate(
      &tp, MakeSingleStep(kInvalidSymbol, Axis::kChild,
                          NodeTest::Name(interner_.Intern("d")),
                          kInvalidSymbol));
  auto rows = Eval(tp, RootCtx());
  // c nodes with a d child: id=1, id=4, id=9.
  ASSERT_EQ(rows.size(), 3u);
  for (const BindingRow& r : rows) {
    EXPECT_FALSE(r.fields[0].second->attributes.empty());
  }
}

TEST_P(PatternEvalTest, AttributePredicate) {
  // descendant::c[attribute::id]
  TreePattern tp = MakeSingleStep(
      dot_, Axis::kDescendant, NodeTest::Name(interner_.Intern("c")), out_);
  pattern::AttachPredicate(
      &tp, MakeSingleStep(kInvalidSymbol, Axis::kAttribute,
                          NodeTest::Name(interner_.Intern("id")),
                          kInvalidSymbol));
  auto rows = Eval(tp, RootCtx());
  EXPECT_EQ(rows.size(), 4u);  // ids 1, 4, 6, 9
}

TEST_P(PatternEvalTest, AttributeExtraction) {
  // descendant::c/attribute::id
  TreePattern tp = MakeSingleStep(
      dot_, Axis::kDescendant, NodeTest::Name(interner_.Intern("c")),
      kInvalidSymbol);
  pattern::AppendPath(
      &tp, MakeSingleStep(kInvalidSymbol, Axis::kAttribute,
                          NodeTest::Name(interner_.Intern("id")), out_));
  auto rows = Eval(tp, RootCtx());
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0].fields[0].second->text, "1");
  EXPECT_EQ(rows[3].fields[0].second->text, "9");
}

TEST_P(PatternEvalTest, DescendantDescendantDedupes) {
  // r//b? No: descendant::a/descendant::d — the nested a (under b) makes
  // one d reachable via one a only; but descendant::*/descendant::d can
  // reach nodes through several bindings and must still emit each d once.
  TreePattern tp = MakeSingleStep(dot_, Axis::kDescendant,
                                  NodeTest::AnyName(), kInvalidSymbol);
  pattern::AppendPath(
      &tp, MakeSingleStep(kInvalidSymbol, Axis::kDescendant,
                          NodeTest::Name(interner_.Intern("d")), out_));
  auto rows = Eval(tp, RootCtx());
  EXPECT_EQ(rows.size(), 4u);  // four distinct d elements
  for (size_t i = 0; i + 1 < rows.size(); ++i) {
    EXPECT_LT(rows[i].fields[0].second->pre, rows[i + 1].fields[0].second->pre);
  }
}

TEST_P(PatternEvalTest, EmptyContext) {
  TreePattern tp = MakeSingleStep(dot_, Axis::kChild, NodeTest::AnyName(),
                                  out_);
  auto rows = Eval(tp, {});
  EXPECT_TRUE(rows.empty());
}

TEST_P(PatternEvalTest, NoMatches) {
  TreePattern tp = MakeSingleStep(
      dot_, Axis::kDescendant, NodeTest::Name(interner_.Intern("zzz")), out_);
  auto rows = Eval(tp, RootCtx());
  EXPECT_TRUE(rows.empty());
}

TEST_P(PatternEvalTest, DescendantOrSelfNodeChain) {
  // descendant-or-self::node()/child::a — the expansion of //a.
  TreePattern tp = MakeSingleStep(dot_, Axis::kDescendantOrSelf,
                                  NodeTest::AnyNode(), kInvalidSymbol);
  pattern::AppendPath(
      &tp, MakeSingleStep(kInvalidSymbol, Axis::kChild,
                          NodeTest::Name(interner_.Intern("a")), out_));
  auto rows = Eval(tp, RootCtx());
  EXPECT_EQ(rows.size(), 4u);
}

TEST_P(PatternEvalTest, MultipleContextNodes) {
  // Context: all a elements; pattern child::c.
  const auto& as = doc_->ElementsByTag(interner_.Intern("a"));
  xdm::Sequence ctx;
  for (const xml::Node* n : as) ctx.push_back(xdm::Item(n));
  TreePattern tp = MakeSingleStep(
      dot_, Axis::kChild, NodeTest::Name(interner_.Intern("c")), out_);
  auto rows = Eval(tp, ctx);
  EXPECT_EQ(rows.size(), 5u);
}

TEST_P(PatternEvalTest, DescendantOrSelfTiesWithParentStep) {
  // child::r/descendant-or-self::node() — the // expansion applied right
  // after an exact step. The r element heads BOTH steps' streams at once;
  // regression: TwigStack broke the tie toward the child step, never
  // stacked r, and lost every binding (including the self match).
  StringInterner in2;
  auto res = xml::Parse("<r><d/><d/></r>", &in2);
  ASSERT_TRUE(res.ok());
  TreePattern tp = MakeSingleStep(in2.Intern("dot"), Axis::kChild,
                                  NodeTest::Name(in2.Intern("r")),
                                  kInvalidSymbol);
  pattern::AppendPath(
      &tp, MakeSingleStep(kInvalidSymbol, Axis::kDescendantOrSelf,
                          NodeTest::AnyNode(), in2.Intern("out")));
  auto rows = EvalPattern(tp, {xdm::Item(res.value()->root())}, GetParam());
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), 3u);  // r itself plus its two d children
  EXPECT_EQ((*rows)[0].fields[0].second->name, in2.Intern("r"));
}

TEST_P(PatternEvalTest, RootAttributeStep) {
  // A bare attribute::id step against element contexts; regression: the
  // streaming evaluator emitted attribute events only while visiting
  // descendants, so the context node's own attributes never matched.
  const auto& cs = doc_->ElementsByTag(interner_.Intern("c"));
  xdm::Sequence ctx;
  for (const xml::Node* n : cs) ctx.push_back(xdm::Item(n));
  TreePattern tp = MakeSingleStep(
      dot_, Axis::kAttribute, NodeTest::Name(interner_.Intern("id")), out_);
  auto rows = Eval(tp, ctx);
  ASSERT_EQ(rows.size(), 4u);  // ids 1, 4, 6, 9
  EXPECT_EQ(rows[0].fields[0].second->text, "1");
  EXPECT_EQ(rows[3].fields[0].second->text, "9");
}

TEST_P(PatternEvalTest, AncestorRelatedContextsDuplicateSiblings) {
  // Contexts where one node contains another (document node and its r
  // child) over duplicate siblings: each d must come out exactly once,
  // and a test that matches nothing must stay empty — for every
  // algorithm, since these are the shapes the cross-evaluator oracle
  // compares.
  StringInterner in2;
  auto res = xml::Parse("<r><d/><d/></r>", &in2);
  ASSERT_TRUE(res.ok());
  const xml::Node* r = res.value()->root()->first_child;
  xdm::Sequence ctx{xdm::Item(res.value()->root()), xdm::Item(r)};
  TreePattern tp = MakeSingleStep(in2.Intern("dot"), Axis::kChild,
                                  NodeTest::Name(in2.Intern("d")),
                                  in2.Intern("out"));
  auto rows = EvalPattern(tp, ctx, GetParam());
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->size(), 2u);

  TreePattern none = MakeSingleStep(in2.Intern("dot"), Axis::kChild,
                                    NodeTest::Name(in2.Intern("e")),
                                    in2.Intern("out"));
  auto empty_rows = EvalPattern(none, ctx, GetParam());
  ASSERT_TRUE(empty_rows.ok()) << empty_rows.status().ToString();
  EXPECT_TRUE(empty_rows->empty());
}

TEST_P(PatternEvalTest, NonNodeContextIsError) {
  TreePattern tp = MakeSingleStep(dot_, Axis::kChild, NodeTest::AnyName(),
                                  out_);
  auto res = EvalPattern(tp, {xdm::Item(static_cast<int64_t>(1))}, GetParam());
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kTypeError);
}

TEST_P(PatternEvalTest, TextNodeTest) {
  StringInterner in2;
  auto res = xml::Parse("<r><a>x</a><a><b>y</b></a></r>", &in2);
  ASSERT_TRUE(res.ok());
  TreePattern tp = MakeSingleStep(in2.Intern("dot"), Axis::kDescendant,
                                  NodeTest::Text(), in2.Intern("out"));
  auto rows_res = EvalPattern(tp, {xdm::Item(res.value()->root())}, GetParam());
  ASSERT_TRUE(rows_res.ok()) << rows_res.status().ToString();
  EXPECT_EQ(rows_res->size(), 2u);
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, PatternEvalTest,
                         ::testing::Values(PatternAlgo::kNLJoin,
                                           PatternAlgo::kStaircase,
                                           PatternAlgo::kTwig,
                                           PatternAlgo::kStream,
                                           PatternAlgo::kTwigStack,
                                           PatternAlgo::kShredded),
                         [](const auto& info) {
                           return PatternAlgoName(info.param);
                         });

// Multi-output binding enumeration (Section 4.1 example) — evaluated by
// the nested-loop algorithm (Staircase/Twig delegate to it).
TEST(PatternBindings, PaperSection41Example) {
  StringInterner in;
  auto res = xml::Parse(
      "<x1><a><c id=\"1\"><d id=\"2\"/><d id=\"3\"/></c></a></x1>", &in);
  ASSERT_TRUE(res.ok());
  // IN#x/descendant::a/child::c{y}[@id]/child::d{z}
  TreePattern tp = MakeSingleStep(in.Intern("x"), Axis::kDescendant,
                                  NodeTest::Name(in.Intern("a")),
                                  kInvalidSymbol);
  auto* step_a = tp.ExtractionPoint();
  step_a->next = std::make_unique<pattern::PatternNode>();
  step_a->next->axis = Axis::kChild;
  step_a->next->test = NodeTest::Name(in.Intern("c"));
  step_a->next->output = in.Intern("y");
  auto pred = std::make_unique<pattern::PatternNode>();
  pred->axis = Axis::kAttribute;
  pred->test = NodeTest::Name(in.Intern("id"));
  step_a->next->predicates.push_back(std::move(pred));
  step_a->next->next = std::make_unique<pattern::PatternNode>();
  step_a->next->next->axis = Axis::kChild;
  step_a->next->next->test = NodeTest::Name(in.Intern("d"));
  step_a->next->next->output = in.Intern("z");

  EXPECT_FALSE(tp.SingleOutputAtExtractionPoint());  // two outputs
  for (PatternAlgo algo : {PatternAlgo::kNLJoin, PatternAlgo::kStaircase,
                           PatternAlgo::kTwig, PatternAlgo::kStream,
                           PatternAlgo::kTwigStack,
                           PatternAlgo::kShredded}) {
    auto rows = EvalPattern(tp, {xdm::Item(res.value()->root())}, algo);
    ASSERT_TRUE(rows.ok());
    // One tuple per (c, d) binding: (c1, d2), (c1, d3).
    ASSERT_EQ(rows->size(), 2u) << PatternAlgoName(algo);
    EXPECT_EQ((*rows)[0].fields.size(), 2u);
    EXPECT_EQ((*rows)[0].fields[0].second->attributes[0]->text, "1");
    EXPECT_EQ((*rows)[0].fields[1].second->attributes[0]->text, "2");
    EXPECT_EQ((*rows)[1].fields[1].second->attributes[0]->text, "3");
  }
}

// ---- the IsDistinctDocOrdered probe ----------------------------------------
// The fast path every Ddo evaluation (and the plan-property claim checker)
// rests on: true must mean a Ddo is the identity.

class DistinctDocOrderedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto res = xml::Parse("<r><a/><b><c/></b><d/></r>", &interner_);
    ASSERT_TRUE(res.ok());
    doc_ = std::move(res).value();
    const xml::Node* r = doc_->root()->first_child;
    a_ = r->first_child;
    b_ = a_->next_sibling;
    c_ = b_->first_child;
    d_ = b_->next_sibling;
  }

  StringInterner interner_;
  std::unique_ptr<xml::Document> doc_;
  const xml::Node* a_ = nullptr;
  const xml::Node* b_ = nullptr;
  const xml::Node* c_ = nullptr;
  const xml::Node* d_ = nullptr;
};

TEST_F(DistinctDocOrderedTest, OrderedDistinctNodesPass) {
  xdm::Sequence s{xdm::Item(a_), xdm::Item(b_), xdm::Item(c_), xdm::Item(d_)};
  EXPECT_TRUE(xdm::IsDistinctDocOrdered(s));
}

TEST_F(DistinctDocOrderedTest, LengthAtMostOneAlwaysPasses) {
  // Any sequence of length <= 1 is trivially distinct and ordered — even
  // an atomic, which a Ddo returns unchanged.
  EXPECT_TRUE(xdm::IsDistinctDocOrdered({}));
  EXPECT_TRUE(xdm::IsDistinctDocOrdered({xdm::Item(c_)}));
  EXPECT_TRUE(xdm::IsDistinctDocOrdered({xdm::Item(int64_t{42})}));
}

TEST_F(DistinctDocOrderedTest, OutOfOrderFails) {
  EXPECT_FALSE(xdm::IsDistinctDocOrdered({xdm::Item(d_), xdm::Item(a_)}));
}

TEST_F(DistinctDocOrderedTest, DuplicateFails) {
  EXPECT_FALSE(xdm::IsDistinctDocOrdered({xdm::Item(a_), xdm::Item(a_)}));
}

TEST_F(DistinctDocOrderedTest, AtomicAmongNodesFails) {
  // A multi-item sequence containing any non-node is not doc-ordered
  // (Ddo on it either type-errors or re-sorts; the fast path must not
  // claim it).
  EXPECT_FALSE(
      xdm::IsDistinctDocOrdered({xdm::Item(a_), xdm::Item(int64_t{1})}));
  EXPECT_FALSE(
      xdm::IsDistinctDocOrdered({xdm::Item(int64_t{1}), xdm::Item(b_)}));
}

TEST_F(DistinctDocOrderedTest, PostDdoSequencesPass) {
  // DistinctDocOrder's output must satisfy the probe, whatever the input
  // permutation or duplication.
  auto sorted = xdm::DistinctDocOrder(
      {xdm::Item(d_), xdm::Item(a_), xdm::Item(c_), xdm::Item(a_),
       xdm::Item(b_)});
  ASSERT_TRUE(sorted.ok());
  EXPECT_TRUE(xdm::IsDistinctDocOrdered(*sorted));
  EXPECT_EQ(sorted->size(), 4u);
  // Ancestor/descendant pairs are distinct nodes: both survive, in order.
  auto pair = xdm::DistinctDocOrder({xdm::Item(c_), xdm::Item(b_)});
  ASSERT_TRUE(pair.ok());
  EXPECT_TRUE(xdm::IsDistinctDocOrdered(*pair));
  EXPECT_EQ(pair->size(), 2u);
  EXPECT_EQ((*pair)[0].node(), b_);
}

}  // namespace
}  // namespace xqtp::exec
