// Shared implementation of the Core built-in functions, used by both the
// algebra-plan evaluator and the Core interpreter.
#ifndef XQTP_EXEC_FN_LIB_H_
#define XQTP_EXEC_FN_LIB_H_

#include <vector>

#include "common/status.h"
#include "core/ast.h"
#include "xdm/item.h"

namespace xqtp::exec {

/// Applies a Core function to evaluated arguments. Arity has been checked
/// at normalization time.
[[nodiscard]]
Result<xdm::Sequence> ApplyCoreFn(core::CoreFn fn,
                                  const std::vector<xdm::Sequence>& args);

}  // namespace xqtp::exec

#endif  // XQTP_EXEC_FN_LIB_H_
