// Public facade: the full compilation pipeline of the paper's Figure 2
// (parse -> normalize -> TPNF' rewrite -> algebraic compile -> tree-pattern
// optimization) plus execution with a chosen physical algorithm.
//
// Quickstart:
//   xqtp::engine::Engine engine;
//   auto doc = engine.LoadDocument("auction", xml_text);          // Result
//   auto q = engine.Compile("$input//person[emailaddress]/name"); // Result
//   Engine::GlobalMap globals{
//       {"input", {xdm::Item(doc.value()->root())}}};
//   auto result = engine.Execute(*q, globals,
//                                xqtp::exec::PatternAlgo::kTwig); // Result
//
// Serving hot path (compiles through the sharded plan cache; repeated
// queries skip the whole pipeline — see engine/plan_cache.h):
//   auto served = engine.ExecuteQuery("$input//person/name", globals);
//   auto stats = engine.plan_cache_stats();  // hits / misses / bytes ...
#ifndef XQTP_ENGINE_ENGINE_H_
#define XQTP_ENGINE_ENGINE_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "algebra/compile.h"
#include "algebra/optimize.h"
#include "analysis/equiv_checker.h"
#include "analysis/plan_lint.h"
#include "common/status.h"
#include "common/mutex.h"
#include "core/normalize.h"
#include "core/rewrite.h"
#include "engine/plan_cache.h"
#include "exec/core_interp.h"
#include "exec/evaluator.h"
#include "xml/document.h"
#include "xml/parser.h"
#include "xquery/parser.h"

namespace xqtp::engine {

struct EngineOptions {
  /// Run the static verifiers (analysis::VerifyCore after normalization
  /// and rewriting, analysis::VerifyPlan after compilation and after each
  /// optimizer round) on every query compiled through this engine. A
  /// violation surfaces as Status::Internal tagged with the pass that
  /// produced the broken tree. On by default in Debug builds.
  bool verify_plans = analysis::kVerifyByDefault;
  /// Translation-validation oracle: when analysis.check_equivalence is
  /// set, every rewrite-rule family and optimizer round is additionally
  /// validated by executing the tree before and after the rules against
  /// the witness corpus (analysis/equiv_checker.h), and the Core ->
  /// algebra compilation step is differentially checked. A divergence
  /// surfaces as Status::Internal carrying the offending rule, the
  /// minimized witness document, and both printed forms. On by default
  /// in Debug builds, like the verifiers.
  analysis::AnalysisOptions analysis;
  /// Compiled-plan cache sizing (engine/plan_cache.h). The capacity is
  /// fixed at engine construction; SetOptions does not resize the cache
  /// (it only invalidates entries compiled under the old options).
  PlanCacheConfig plan_cache;
};

struct CompileOptions {
  /// Apply the TPNF' Core rewrites (phase 2). Off = each syntactic variant
  /// keeps its own shape.
  bool rewrite = true;
  /// Apply the algebraic tree-pattern detection (rules (a)-(f)).
  /// Off = the "old engine" of Figure 4: nested maps + navigational
  /// TreeJoin.
  bool detect_tree_patterns = true;
  /// Fold constant positional predicates into pattern steps (rule (g) —
  /// the paper's future-work extension). Off by default so plans match
  /// the paper.
  bool positional_patterns = false;
  /// Merge cascades into multi-output ("generalized") patterns (rule
  /// (d') — the paper's primary future-work item). Off by default.
  bool multi_output_patterns = false;
  /// Fine-grained rewrite switches (used by the ablation benchmark).
  core::RewriteOptions rewrite_opts;
  /// Plan-level property inference (analysis/plan_props.h): prove
  /// order/distinctness/cardinality facts over the optimized plan, use
  /// them for property-justified rewrites (OptimizeOptions::
  /// infer_properties), and stamp the surviving facts as runtime-checked
  /// claims. Off = the optimizer uses only the structural rules (a)-(g).
  bool infer_properties = true;
  /// Compile-time resource limits: when either is set, Compile installs a
  /// governor for its duration and the rewriter's / optimizer's fixpoint
  /// rounds poll it — an adversarial query cannot pin the compiler any
  /// more than the evaluator. Independent of the execution-time limits in
  /// exec::EvalOptions.
  std::optional<std::chrono::steady_clock::time_point> deadline;
  std::shared_ptr<exec::CancelToken> cancel_token;
};

/// A query compiled through every phase, with the intermediate forms
/// retained for explain output and tests.
///
/// IMMUTABLE AFTER BUILD: Engine::Compile populates every field and
/// nothing mutates one afterwards, so a `shared_ptr<const CompiledQuery>`
/// handed out by the plan cache is safe to execute from any number of
/// threads concurrently (per-run state lives in exec::EvalOptions and the
/// governor). tools/lint.py rule `compiled-query-immutable` rejects
/// writes to the internals outside the build path.
class CompiledQuery {
 public:
  const std::string& source() const { return source_; }
  const core::VarTable& vars() const { return vars_; }

  /// The normalized Core expression (the paper's Q1a-n stage).
  const core::CoreExpr& normalized() const { return *normalized_; }
  /// The Core expression after the TPNF' rewrites (the Q1-tp stage).
  const core::CoreExpr& rewritten() const { return *rewritten_; }
  /// The compiled, unoptimized algebra plan (the P1 stage).
  const algebra::Op& plan() const { return *plan_; }
  /// The final optimized plan (the P5 stage).
  const algebra::Op& optimized() const { return *optimized_; }

  /// Names of the query's free variables, to be bound at execution.
  std::vector<std::string> GlobalNames() const;

  /// Plan statistics of the optimized plan.
  algebra::PlanStats Stats() const { return algebra::ComputeStats(*optimized_); }

  /// PlanLint diagnostics over the optimized plan (analysis/plan_lint.h).
  /// Populated when the engine runs with verify_plans (debug default);
  /// findings never fail compilation.
  const std::vector<analysis::LintFinding>& lint_findings() const {
    return lint_findings_;
  }

  /// Canonical fingerprint of (query text, plan-shaping CompileOptions),
  /// stamped at compile (see Engine::Fingerprint). The plan-cache key;
  /// also printed by Explain.
  uint64_t fingerprint() const { return fingerprint_; }

  /// Estimated heap footprint of the retained forms (source text, Core
  /// trees, both plans, lint findings). The byte charge the plan cache's
  /// LRU accounting uses; approximate by design (sizeof-based traversal,
  /// like the governor's memory accounting).
  int64_t MemoryUsage() const { return memory_bytes_; }

 private:
  friend class Engine;
  std::string source_;
  core::VarTable vars_;
  core::CoreExprPtr normalized_;
  core::CoreExprPtr rewritten_;
  algebra::OpPtr plan_;
  algebra::OpPtr optimized_;
  std::vector<analysis::LintFinding> lint_findings_;
  uint64_t fingerprint_ = 0;
  int64_t memory_bytes_ = 0;
};

/// Which plan Execute runs.
enum class PlanChoice : uint8_t {
  kOptimized,     ///< the tree-pattern plan (default)
  kUnoptimized,   ///< the P1-style plan — the Figure 4 "old engine"
  kCoreInterp,    ///< direct interpretation of the rewritten Core
};

class Engine {
 public:
  Engine() = default;
  explicit Engine(const EngineOptions& options) : options_(options) {}
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Parses and registers an XML document under `name`.
  [[nodiscard]]
  Result<const xml::Document*> LoadDocument(const std::string& name,
                                            std::string_view xml_text);

  /// Registers an externally built document (e.g. from the workload
  /// generators). Takes ownership.
  const xml::Document* AddDocument(const std::string& name,
                                   std::unique_ptr<xml::Document> doc);

  /// Returns a registered document or nullptr.
  const xml::Document* FindDocument(const std::string& name) const;

  /// Compiles a query through all phases.
  [[nodiscard]]
  Result<CompiledQuery> Compile(std::string_view query,
                                const CompileOptions& opts = {});

  /// Canonical plan-cache key for (query, opts): FNV-1a over the
  /// canonicalized query text (whitespace/comment-insensitive — see
  /// common/fingerprint.h) combined with every CompileOptions field that
  /// affects plan shape (rewrite and detection switches, the fine-grained
  /// rewrite_opts, infer_properties). Compile-time limits (deadline,
  /// cancel_token) do not shape the plan and are excluded, so a query
  /// compiled with a deadline still hits the entry cached without one.
  uint64_t Fingerprint(std::string_view query,
                       const CompileOptions& opts = {}) const;

  /// Compiles through the sharded plan cache (engine/plan_cache.h): a hit
  /// returns the shared immutable plan without recompiling; concurrent
  /// misses on one fingerprint compile exactly once (single-flight), the
  /// waiters receiving the filled plan or the compile error. The static
  /// verifiers and the translation-validation oracle run at fill only —
  /// a hit is an already-verified plan. Thread-safe; when the oracle is
  /// enabled (Debug default), fills additionally serialize on an engine
  /// mutex because analysis::EquivChecker is single-threaded.
  [[nodiscard]]
  Result<std::shared_ptr<const CompiledQuery>> CompileCached(
      std::string_view query, const CompileOptions& opts = {});

  /// Global bindings by variable name; a document binds as its root node.
  using GlobalMap = std::map<std::string, xdm::Sequence>;

  /// Executes a compiled query. This legacy entry point is the sequential
  /// path (threads = 1), keeping per-algorithm ExecStats deterministic.
  [[nodiscard]]
  Result<xdm::Sequence> Execute(
      const CompiledQuery& q, const GlobalMap& globals,
      exec::PatternAlgo algo = exec::PatternAlgo::kNLJoin,
      PlanChoice plan = PlanChoice::kOptimized) const;

  /// Executes a compiled query with full evaluation options — notably
  /// EvalOptions::threads for the morsel-parallel driver (exec/parallel.h;
  /// 0 = one thread per hardware thread). Evaluation runs under a
  /// StringInterner::ExecutionFreeze: no name may be interned mid-query.
  [[nodiscard]]
  Result<xdm::Sequence> Execute(const CompiledQuery& q,
                                const GlobalMap& globals,
                                const exec::EvalOptions& opts,
                                PlanChoice plan = PlanChoice::kOptimized) const;

  /// The serving hot path: CompileCached + Execute. Repeated calls with
  /// textual variants of one query (whitespace, comments) recompile
  /// nothing after the first.
  [[nodiscard]]
  Result<xdm::Sequence> ExecuteQuery(std::string_view query,
                                     const GlobalMap& globals,
                                     const exec::EvalOptions& eval_opts = {},
                                     const CompileOptions& opts = {});

  /// One-shot convenience: compile + execute against a single document
  /// bound to every free variable of the query.
  [[nodiscard]]
  Result<xdm::Sequence> Run(std::string_view query, const xml::Document& doc,
                            exec::PatternAlgo algo = exec::PatternAlgo::kNLJoin,
                            const CompileOptions& opts = {});

  /// Point-in-time plan-cache counters (hits, misses, fills, evictions,
  /// single-flight waits, bytes, per-shard occupancy).
  PlanCacheStats plan_cache_stats() const { return plan_cache_.Snapshot(); }

  /// Drops the cached plan for (query, opts). Returns true when an entry
  /// was present. An in-flight fill is unaffected and will re-insert.
  bool ErasePlan(std::string_view query, const CompileOptions& opts = {});

  /// Drops every cached plan. Plans still referenced by running
  /// executions stay alive through their shared_ptr.
  void ClearPlanCache() { plan_cache_.Clear(); }

  /// Replaces the engine options and invalidates every cached plan (they
  /// were compiled under the old options; the cached entries are dropped
  /// lazily via a generation bump). The plan cache's byte capacity stays
  /// as constructed. Must not race with in-flight Compile calls.
  void SetOptions(const EngineOptions& options);

  /// Multi-phase explain dump (surface / core / rewritten / plan /
  /// optimized plan), for the examples and debugging.
  std::string Explain(const CompiledQuery& q) const;

  StringInterner* interner() { return &interner_; }
  const StringInterner& interner() const { return interner_; }

 private:
  /// The engine's oracle, created on first use (witness documents parse
  /// with the engine's interner, which must exist first).
  analysis::EquivChecker* equiv_checker();

  /// Compiles `query` and wraps it for the cache; runs outside any cache
  /// shard lock (callers hold compile_mu_ first when the oracle is on).
  [[nodiscard]]
  Result<PlanCache::PlanPtr> CompileForCache(const std::string& query,
                                             const CompileOptions& opts);

  EngineOptions options_;
  StringInterner interner_;
  std::map<std::string, std::unique_ptr<xml::Document>> docs_;
  std::unique_ptr<analysis::EquivChecker> equiv_;
  int32_t next_doc_id_ = 0;
  /// Serializes whole compilations when the translation-validation
  /// oracle is enabled: the EquivChecker (and its lazy creation) is
  /// explicitly not thread-safe. With the oracle off (Release serving
  /// default), cache fills for different keys compile fully in parallel.
  Mutex compile_mu_;
  /// Sized once from options_.plan_cache (declared after options_ so the
  /// default member initializer reads the configured capacity).
  PlanCache plan_cache_{options_.plan_cache};
};

}  // namespace xqtp::engine

#endif  // XQTP_ENGINE_ENGINE_H_
