#include "exec/cost_model.h"

#include <algorithm>
#include <cmath>

#include "analysis/plan_props.h"

namespace xqtp::exec {

namespace {

using pattern::PatternNode;
using pattern::PatternNodePtr;
using xml::Document;
using xml::Node;

/// Size of the per-tag stream a step would scan.
double StreamSize(const Document& doc, const PatternNode& q) {
  if (q.axis == Axis::kAttribute) {
    if (q.test.kind == NodeTestKind::kName) {
      return static_cast<double>(doc.AttributesByName(q.test.name).size());
    }
    return 0;
  }
  switch (q.test.kind) {
    case NodeTestKind::kName:
      return static_cast<double>(doc.ElementsByTag(q.test.name).size());
    case NodeTestKind::kAnyName:
      return static_cast<double>(doc.AllElements().size());
    case NodeTestKind::kText:
      return static_cast<double>(doc.TextNodes().size());
    case NodeTestKind::kAnyNode:
      return static_cast<double>(doc.AllNodes().size());
  }
  return static_cast<double>(doc.AllNodes().size());
}

/// Total stream size of every node of the sub-twig rooted at `q`
/// (the per-edge scans of the holistic twig join).
double TwigStreams(const Document& doc, const PatternNode& q) {
  double total = StreamSize(doc, q);
  for (const PatternNodePtr& p : q.predicates) total += TwigStreams(doc, *p);
  if (q.next) total += TwigStreams(doc, *q.next);
  return total;
}

/// Rounds a (possibly huge) double estimate into the saturating
/// cardinality lattice of the plan-property analysis.
analysis::CardRange AtMostCard(double n) {
  if (n >= static_cast<double>(analysis::kCardTop)) {
    return analysis::CardRange::Top();
  }
  return analysis::CardRange::AtMost(
      static_cast<int64_t>(std::ceil(std::max(0.0, n))));
}

/// Intersects a step's output interval with its test's whole stream:
/// whatever the navigation does, it cannot emit more matching nodes than
/// exist in the document.
analysis::CardRange ClampToStream(analysis::CardRange r, double stream) {
  analysis::CardRange s = AtMostCard(stream);
  if (r.hi > s.hi) r.hi = s.hi;
  if (r.lo > r.hi) r.lo = r.hi;
  return r;
}

int PredicateSteps(const PatternNode& q) {
  int n = 0;
  for (const PatternNodePtr& p : q.predicates) {
    n += 1 + PredicateSteps(*p);
  }
  if (q.next) n += PredicateSteps(*q.next);
  return n;
}

/// Expected navigational cost of matching the sub-twig from one node
/// (the nested-loop per-candidate probe).
double NlProbeCost(const DocStats& stats, const PatternNode& q,
                   double subtree) {
  double cost = 0;
  for (const PatternNodePtr& p : q.predicates) {
    // Existence probes early-exit; charge half the local scope.
    double scope = p->axis == Axis::kDescendant ||
                           p->axis == Axis::kDescendantOrSelf
                       ? subtree
                       : stats.avg_fanout;
    cost += 0.5 * scope + NlProbeCost(stats, *p, subtree / 2) * 0.5;
  }
  return cost;
}

}  // namespace

const DocStats& StatsFor(const Document& doc) { return doc.Stats(); }

double EstimateCost(const pattern::TreePattern& tp,
                    const xdm::Sequence& context, PatternAlgo algo) {
  if (tp.root == nullptr || context.empty()) return 0;
  const Node* first = nullptr;
  double share = 0;  // expected fraction of the document under the contexts
  double k = 0;
  int min_depth = 1 << 20;
  for (const xdm::Item& it : context) {
    if (!it.IsNode()) continue;
    const Node* n = it.node();
    if (first == nullptr) first = n;
    min_depth = std::min(min_depth, static_cast<int>(n->depth));
    k += 1;
  }
  if (first == nullptr) return 0;
  const Document& doc = *first->doc;
  const DocStats& stats = StatsFor(doc);
  double n_total = static_cast<double>(stats.node_count);
  // Level sizes grow ~avg_fanout per level: a context at depth d covers
  // about f^-(d-1) of the document.
  share = std::min(1.0, k * std::pow(stats.avg_fanout,
                                     -std::max(0, min_depth - 1)));
  double window = n_total * share;

  switch (algo) {
    case PatternAlgo::kNLJoin: {
      double cost = 1;
      double card = k;
      // Interval arithmetic over the step cardinalities (the same lattice
      // the plan-property analysis uses): the fan-out product gives the
      // upper bound, intersected with the step test's whole stream.
      analysis::CardRange bound = AtMostCard(k);
      double subtree = window / std::max(1.0, k);
      for (const PatternNode* q = tp.root.get(); q != nullptr;
           q = q->next.get()) {
        double stream = StreamSize(doc, *q);
        double sel = stream / std::max(1.0, n_total);
        double produced;
        double per_ctx;
        if (q->axis == Axis::kDescendant ||
            q->axis == Axis::kDescendantOrSelf) {
          cost += card * subtree;  // full traversal of each context subtree
          per_ctx = subtree;
          produced = card * subtree * sel;
        } else {
          cost += card * stats.avg_fanout;
          per_ctx = stats.avg_fanout;
          produced = card * stats.avg_fanout * sel;
        }
        bound = ClampToStream(bound.Times(AtMostCard(per_ctx)), stream);
        produced = std::min(produced, static_cast<double>(bound.hi));
        cost += produced * NlProbeCost(stats, *q, subtree / 2);
        card = std::max(1.0, produced);
        subtree /= stats.avg_fanout;
      }
      return cost;
    }
    case PatternAlgo::kStaircase: {
      double cost = 1;
      double card = k;
      analysis::CardRange bound = AtMostCard(k);
      for (const PatternNode* q = tp.root.get(); q != nullptr;
           q = q->next.get()) {
        double stream_window = StreamSize(doc, *q) * share;
        bound = ClampToStream(analysis::CardRange::Top(), stream_window);
        cost += stream_window + card * std::log2(StreamSize(doc, *q) + 2);
        // Per-candidate predicate probes: the staircase existence check
        // pays one binary search plus a subtree window scan per predicate
        // step, for every candidate — this is exactly why SCJoin degrades
        // on branchy patterns in the paper's Table 1.
        double produced =
            std::max(1.0, std::min(stream_window,
                                   static_cast<double>(bound.hi)));
        for (const PatternNodePtr& p : q->predicates) {
          double pred_steps = 1.0 + PredicateSteps(*p);
          cost += produced * pred_steps *
                  (std::log2(StreamSize(doc, *p) + 2) + 1.0);
          cost += TwigStreams(doc, *p) * share;
        }
        card = produced;
      }
      return cost;
    }
    case PatternAlgo::kTwig:
      // One windowed merge per pattern edge, plus hashing overhead.
      return 1 + 1.5 * TwigStreams(doc, *tp.root) * share;
    case PatternAlgo::kStream:
      // One scan of the context windows, with per-node work growing with
      // the number of descendant steps (instance fan-out).
      return 1 + window * (1 + 0.25 * tp.StepCount());
    case PatternAlgo::kShredded:
      // Same access pattern as the pointer-based staircase join.
      return EstimateCost(tp, context, PatternAlgo::kStaircase);
    case PatternAlgo::kTwigStack:
      // Like the merge-based twig join, one pass over every pattern
      // node's stream — but the non-root streams are unwindowed, so the
      // whole streams are charged.
      return 1 + 1.5 * TwigStreams(doc, *tp.root);
    case PatternAlgo::kCostBased:
      break;
  }
  return 1e30;
}

PatternAlgo ChooseAlgorithm(const pattern::TreePattern& tp,
                            const xdm::Sequence& context) {
  PatternAlgo best = PatternAlgo::kNLJoin;
  double best_cost = EstimateCost(tp, context, PatternAlgo::kNLJoin);
  for (PatternAlgo algo : {PatternAlgo::kStaircase, PatternAlgo::kTwig}) {
    double cost = EstimateCost(tp, context, algo);
    if (cost < best_cost) {
      best_cost = cost;
      best = algo;
    }
  }
  return best;
}

}  // namespace xqtp::exec
