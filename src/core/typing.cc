#include "core/typing.h"

namespace xqtp::core {

bool DefinitelyNotNumeric(AbstractType t) {
  switch (t) {
    case AbstractType::kBoolean:
    case AbstractType::kString:
    case AbstractType::kNodes:
      return true;
    case AbstractType::kNumeric:
    case AbstractType::kUnknown:
      return false;
  }
  return false;
}

bool DefinitelyNumeric(AbstractType t) { return t == AbstractType::kNumeric; }

namespace {

AbstractType Join(AbstractType a, AbstractType b) {
  if (a == b) return a;
  return AbstractType::kUnknown;
}

AbstractType Infer(const CoreExpr& e, const VarTable& vars, TypeEnv* env) {
  switch (e.kind) {
    case CoreKind::kVar: {
      auto it = env->find(e.var);
      if (it != env->end()) return it->second;
      if (vars.IsGlobal(e.var)) return vars.GlobalType(e.var);
      return AbstractType::kUnknown;
    }
    case CoreKind::kLiteral:
      if (e.literal.IsNumeric()) return AbstractType::kNumeric;
      if (e.literal.IsBoolean()) return AbstractType::kBoolean;
      if (e.literal.IsString()) return AbstractType::kString;
      return AbstractType::kNodes;
    case CoreKind::kSequence: {
      if (e.children.empty()) return AbstractType::kUnknown;  // empty: any
      AbstractType t = Infer(*e.children[0], vars, env);
      for (size_t i = 1; i < e.children.size(); ++i) {
        t = Join(t, Infer(*e.children[i], vars, env));
      }
      return t;
    }
    case CoreKind::kLet: {
      AbstractType bt = Infer(*e.children[0], vars, env);
      (*env)[e.var] = bt;
      return Infer(*e.children[1], vars, env);
    }
    case CoreKind::kFor: {
      AbstractType st = Infer(*e.children[0], vars, env);
      (*env)[e.var] = st;  // items of the sequence have the sequence's type
      if (e.pos_var != kNoVar) (*env)[e.pos_var] = AbstractType::kNumeric;
      if (e.where) Infer(*e.where, vars, env);
      return Infer(*e.children[1], vars, env);
    }
    case CoreKind::kIf: {
      Infer(*e.children[0], vars, env);
      return Join(Infer(*e.children[1], vars, env),
                  Infer(*e.children[2], vars, env));
    }
    case CoreKind::kStep:
    case CoreKind::kDdo:
      return AbstractType::kNodes;
    case CoreKind::kFnCall:
      for (const CoreExprPtr& c : e.children) Infer(*c, vars, env);
      switch (e.fn) {
        case CoreFn::kCount:
        case CoreFn::kNumber:
        case CoreFn::kStringLength:
        case CoreFn::kSum:
          return AbstractType::kNumeric;
        case CoreFn::kBoolean:
        case CoreFn::kNot:
        case CoreFn::kEmpty:
        case CoreFn::kExists:
        case CoreFn::kContains:
        case CoreFn::kStartsWith:
          return AbstractType::kBoolean;
        case CoreFn::kRoot:
          return AbstractType::kNodes;
        case CoreFn::kData:
        case CoreFn::kString:
        case CoreFn::kConcat:
          return AbstractType::kString;
      }
      return AbstractType::kUnknown;
    case CoreKind::kTypeswitch: {
      AbstractType it = Infer(*e.children[0], vars, env);
      (*env)[e.case_var] = AbstractType::kNumeric;
      (*env)[e.default_var] = it;
      return Join(Infer(*e.children[1], vars, env),
                  Infer(*e.children[2], vars, env));
    }
    case CoreKind::kCompare:
    case CoreKind::kAnd:
    case CoreKind::kOr:
      for (const CoreExprPtr& c : e.children) Infer(*c, vars, env);
      return AbstractType::kBoolean;
    case CoreKind::kArith:
      for (const CoreExprPtr& c : e.children) Infer(*c, vars, env);
      return AbstractType::kNumeric;
  }
  return AbstractType::kUnknown;
}

}  // namespace

AbstractType InferType(const CoreExpr& e, const VarTable& vars,
                       const TypeEnv& env) {
  TypeEnv scratch = env;
  return Infer(e, vars, &scratch);
}

}  // namespace xqtp::core
