#include "xml/parser.h"

#include <cctype>
#include <string>

#include "common/fault_injection.h"

namespace xqtp::xml {

namespace {

/// ParseElement / ParseContent recurse once per nesting level; a
/// pathological document (one element per byte, all nested) must not
/// overflow the C++ stack. 1000 levels is far beyond real XML and well
/// inside the default 8 MiB stack.
constexpr int kMaxElementDepth = 1000;

/// Cursor over the input with line tracking for error messages.
class Cursor {
 public:
  explicit Cursor(std::string_view input) : input_(input) {}

  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }
  char PeekAt(size_t off) const {
    return pos_ + off < input_.size() ? input_[pos_ + off] : '\0';
  }
  void Advance() {
    if (input_[pos_] == '\n') ++line_;
    ++pos_;
  }
  bool StartsWith(std::string_view s) const {
    return input_.substr(pos_, s.size()) == s;
  }
  void Skip(size_t n) {
    for (size_t i = 0; i < n && !AtEnd(); ++i) Advance();
  }
  /// Advances past the first occurrence of `s`; false if not found.
  bool SkipPast(std::string_view s) {
    size_t found = input_.find(s, pos_);
    if (found == std::string_view::npos) return false;
    while (pos_ < found + s.size()) Advance();
    return true;
  }
  int line() const { return line_; }

 private:
  std::string_view input_;
  size_t pos_ = 0;
  int line_ = 1;
};

bool IsNameStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}
bool IsNameChar(char c) {
  return IsNameStart(c) || std::isdigit(static_cast<unsigned char>(c)) ||
         c == '-' || c == '.';
}

class Parser {
 public:
  Parser(std::string_view input, StringInterner* interner)
      : cur_(input), builder_(interner) {}

  Result<std::unique_ptr<Document>> Run() {
    XQTP_RETURN_NOT_OK(ParseProlog());
    XQTP_RETURN_NOT_OK(ParseElement());
    SkipMisc();
    if (!cur_.AtEnd()) return Err("trailing content after root element");
    return builder_.Finish();
  }

 private:
  Status Err(const std::string& msg) {
    return Status::InvalidArgument("XML parse error at line " +
                                   std::to_string(cur_.line()) + ": " + msg);
  }

  void SkipWhitespace() {
    while (!cur_.AtEnd() &&
           std::isspace(static_cast<unsigned char>(cur_.Peek()))) {
      cur_.Advance();
    }
  }

  /// Skips whitespace, comments, and PIs between top-level constructs.
  void SkipMisc() {
    for (;;) {
      SkipWhitespace();
      if (cur_.StartsWith("<!--")) {
        cur_.SkipPast("-->");
      } else if (cur_.StartsWith("<?")) {
        cur_.SkipPast("?>");
      } else {
        return;
      }
    }
  }

  Status ParseProlog() {
    SkipMisc();
    if (cur_.StartsWith("<!DOCTYPE")) {
      if (!cur_.SkipPast(">")) return Err("unterminated DOCTYPE");
      SkipMisc();
    }
    return Status::OK();
  }

  Result<std::string> ParseName() {
    if (cur_.AtEnd() || !IsNameStart(cur_.Peek())) {
      return Err("expected a name");
    }
    std::string name;
    while (!cur_.AtEnd() && IsNameChar(cur_.Peek())) {
      name.push_back(cur_.Peek());
      cur_.Advance();
    }
    return name;
  }

  /// Decodes one entity reference positioned on '&'.
  Status AppendEntity(std::string* out) {
    // Supported: lt gt amp quot apos and numeric references.
    cur_.Advance();  // '&'
    std::string ent;
    while (!cur_.AtEnd() && cur_.Peek() != ';') {
      ent.push_back(cur_.Peek());
      cur_.Advance();
    }
    if (cur_.AtEnd()) return Err("unterminated entity reference");
    cur_.Advance();  // ';'
    if (ent == "lt") {
      out->push_back('<');
    } else if (ent == "gt") {
      out->push_back('>');
    } else if (ent == "amp") {
      out->push_back('&');
    } else if (ent == "quot") {
      out->push_back('"');
    } else if (ent == "apos") {
      out->push_back('\'');
    } else if (!ent.empty() && ent[0] == '#') {
      int code = 0;
      if (ent.size() > 1 && (ent[1] == 'x' || ent[1] == 'X')) {
        code = std::stoi(ent.substr(2), nullptr, 16);
      } else {
        code = std::stoi(ent.substr(1));
      }
      if (code < 0x80) {
        out->push_back(static_cast<char>(code));
      } else {
        // Minimal UTF-8 encoding for BMP code points.
        if (code < 0x800) {
          out->push_back(static_cast<char>(0xC0 | (code >> 6)));
        } else {
          out->push_back(static_cast<char>(0xE0 | (code >> 12)));
          out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
        }
        out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
      }
    } else {
      return Err("unknown entity &" + ent + ";");
    }
    return Status::OK();
  }

  Status ParseAttributes() {
    for (;;) {
      SkipWhitespace();
      if (cur_.AtEnd()) return Err("unterminated start tag");
      char c = cur_.Peek();
      if (c == '>' || c == '/') return Status::OK();
      XQTP_ASSIGN_OR_RETURN(std::string name, ParseName());
      SkipWhitespace();
      if (cur_.AtEnd() || cur_.Peek() != '=') return Err("expected '='");
      cur_.Advance();
      SkipWhitespace();
      if (cur_.AtEnd() || (cur_.Peek() != '"' && cur_.Peek() != '\'')) {
        return Err("expected quoted attribute value");
      }
      char quote = cur_.Peek();
      cur_.Advance();
      std::string value;
      while (!cur_.AtEnd() && cur_.Peek() != quote) {
        if (cur_.Peek() == '&') {
          XQTP_RETURN_NOT_OK(AppendEntity(&value));
        } else {
          value.push_back(cur_.Peek());
          cur_.Advance();
        }
      }
      if (cur_.AtEnd()) return Err("unterminated attribute value");
      cur_.Advance();  // closing quote
      builder_.Attribute(name, value);
    }
  }

  Status ParseContent() {
    std::string text;
    auto flush = [&] {
      if (!text.empty()) {
        builder_.Text(text);
        text.clear();
      }
    };
    for (;;) {
      if (cur_.AtEnd()) return Err("unterminated element content");
      char c = cur_.Peek();
      if (c == '<') {
        if (cur_.StartsWith("</")) {
          flush();
          return Status::OK();
        }
        if (cur_.StartsWith("<!--")) {
          flush();
          if (!cur_.SkipPast("-->")) return Err("unterminated comment");
          continue;
        }
        if (cur_.StartsWith("<![CDATA[")) {
          cur_.Skip(9);
          while (!cur_.AtEnd() && !cur_.StartsWith("]]>")) {
            text.push_back(cur_.Peek());
            cur_.Advance();
          }
          if (cur_.AtEnd()) return Err("unterminated CDATA section");
          cur_.Skip(3);
          continue;
        }
        if (cur_.StartsWith("<?")) {
          flush();
          if (!cur_.SkipPast("?>")) return Err("unterminated PI");
          continue;
        }
        flush();
        XQTP_RETURN_NOT_OK(ParseElement());
      } else if (c == '&') {
        XQTP_RETURN_NOT_OK(AppendEntity(&text));
      } else {
        text.push_back(c);
        cur_.Advance();
      }
    }
  }

  Status ParseElement() {
    XQTP_FAULT_POINT("xml.parse.element");
    if (++depth_ > kMaxElementDepth) {
      return Status::ResourceExhausted(
          "XML element nesting depth " + std::to_string(depth_) +
          " exceeds the limit of " + std::to_string(kMaxElementDepth));
    }
    if (cur_.AtEnd() || cur_.Peek() != '<') return Err("expected '<'");
    cur_.Advance();
    XQTP_ASSIGN_OR_RETURN(std::string tag, ParseName());
    builder_.StartElement(tag);
    XQTP_RETURN_NOT_OK(ParseAttributes());
    if (cur_.Peek() == '/') {
      cur_.Advance();
      if (cur_.AtEnd() || cur_.Peek() != '>') return Err("expected '/>'");
      cur_.Advance();
      builder_.EndElement();
      --depth_;
      return Status::OK();
    }
    cur_.Advance();  // '>'
    XQTP_RETURN_NOT_OK(ParseContent());
    // Positioned on "</".
    cur_.Skip(2);
    XQTP_ASSIGN_OR_RETURN(std::string close, ParseName());
    if (close != tag) {
      return Err("mismatched end tag </" + close + ">, expected </" + tag +
                 ">");
    }
    SkipWhitespace();
    if (cur_.AtEnd() || cur_.Peek() != '>') return Err("expected '>'");
    cur_.Advance();
    builder_.EndElement();
    --depth_;
    return Status::OK();
  }

  Cursor cur_;
  DocumentBuilder builder_;
  int depth_ = 0;  ///< current element nesting depth (kMaxElementDepth cap)
};

}  // namespace

Result<std::unique_ptr<Document>> Parse(std::string_view input,
                                        StringInterner* interner) {
  Parser p(input, interner);
  return p.Run();
}

}  // namespace xqtp::xml
