// Relational shredding of a document — the XPath accelerator encoding of
// Grust et al. ("Accelerating XPath evaluation in any RDBMS", TODS'04),
// which the paper's conclusion names as a target shredding model.
//
// One row per node in document order, with columnar
// (pre, post, level, kind, tag, parent) attributes; the row id IS the pre
// rank. Per-tag secondary "indexes" are sorted row-id lists. Axis steps
// evaluate as pure column-range comparisons (the relational staircase
// join), without touching the pointer-based node structure.
#ifndef XQTP_STORAGE_NODE_TABLE_H_
#define XQTP_STORAGE_NODE_TABLE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "exec/pattern_eval.h"
#include "pattern/tree_pattern.h"
#include "xml/document.h"

namespace xqtp::storage {

/// Row id = preorder rank over all nodes (including attributes).
using RowId = int32_t;

class NodeTable : public xml::DocumentExtension {
 public:
  /// Shreds `doc` into columns. O(n).
  explicit NodeTable(const xml::Document& doc);

  int64_t size() const { return static_cast<int64_t>(post_.size()); }

  int32_t post(RowId r) const { return post_[static_cast<size_t>(r)]; }
  int16_t level(RowId r) const { return level_[static_cast<size_t>(r)]; }
  xml::NodeKind kind(RowId r) const { return kind_[static_cast<size_t>(r)]; }
  Symbol tag(RowId r) const { return tag_[static_cast<size_t>(r)]; }
  /// Parent row, or -1 for the document row.
  RowId parent(RowId r) const { return parent_[static_cast<size_t>(r)]; }

  /// Original node of a row (for converting results back to XDM).
  const xml::Node* node(RowId r) const { return node_[static_cast<size_t>(r)]; }
  /// Row of a node (its pre rank).
  RowId row(const xml::Node* n) const { return n->pre; }

  /// Sorted row ids of the elements with `tag` (the per-tag index).
  const std::vector<RowId>& ElementRows(Symbol tag) const;
  /// Sorted row ids of all element rows / attribute rows with a name.
  const std::vector<RowId>& AllElementRows() const { return all_elements_; }
  const std::vector<RowId>& AttributeRows(Symbol name) const;
  const std::vector<RowId>& TextRows() const { return text_rows_; }
  const std::vector<RowId>& AllNodeRows() const { return all_nodes_; }

  /// True iff row `a` is a proper ancestor of row `d` (pure column test:
  /// a < d in pre order and d's post below a's).
  bool IsAncestor(RowId a, RowId d) const {
    return a < d && post(d) < post(a);
  }

  /// The shredding of `doc`, built on first use and cached on the
  /// document.
  static const NodeTable& For(const xml::Document& doc);

 private:
  std::vector<int32_t> post_;
  std::vector<int16_t> level_;
  std::vector<xml::NodeKind> kind_;
  std::vector<Symbol> tag_;
  std::vector<RowId> parent_;
  std::vector<const xml::Node*> node_;
  std::vector<RowId> all_elements_;
  std::vector<RowId> text_rows_;
  std::vector<RowId> all_nodes_;
  std::unordered_map<Symbol, std::vector<RowId>> tag_rows_;
  std::unordered_map<Symbol, std::vector<RowId>> attr_rows_;
  std::vector<RowId> empty_;
};

/// Evaluates a tree pattern against the shredded table (the relational
/// staircase join over the accelerator encoding). Same semantics and
/// restrictions as the pointer-based staircase join.
[[nodiscard]]
Result<std::vector<exec::BindingRow>> EvalPatternShredded(
    const pattern::TreePattern& tp, const xdm::Sequence& context);

}  // namespace xqtp::storage

#endif  // XQTP_STORAGE_NODE_TABLE_H_
