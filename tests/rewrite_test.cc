#include <gtest/gtest.h>

#include "core/normalize.h"
#include "core/printer.h"
#include "core/rewrite.h"
#include "xquery/parser.h"

namespace xqtp::core {
namespace {

class RewriteTest : public ::testing::Test {
 protected:
  std::string Rewrite(const std::string& q, RewriteOptions opts = {}) {
    auto surface = xquery::ParseQuery(q, &interner_);
    EXPECT_TRUE(surface.ok()) << surface.status().ToString();
    if (!surface.ok()) return "";
    vars_ = VarTable();
    auto core = Normalize(**surface, &vars_);
    EXPECT_TRUE(core.ok()) << core.status().ToString();
    if (!core.ok()) return "";
    opts.verify = true;  // the Core verifier runs even in Release builds
    auto rewritten = RewriteToTPNF(std::move(core).value(), &vars_, opts);
    EXPECT_TRUE(rewritten.ok()) << rewritten.status().ToString();
    if (!rewritten.ok()) return "";
    root_ = std::move(rewritten).value();
    return ToString(*root_, vars_, interner_);
  }

  StringInterner interner_;
  VarTable vars_;
  CoreExprPtr root_;
};

TEST_F(RewriteTest, Q1aReachesTheTpForm) {
  // The paper's Q1-tp.
  EXPECT_EQ(Rewrite("$d//person[emailaddress]/name"),
            "ddo(for $dot in (for $dot in (for $dot in $d return "
            "descendant::person) where child::emailaddress return $dot) "
            "return child::name)");
}

TEST_F(RewriteTest, Q1bAndQ1cReachTheSameForm) {
  Rewrite("$d//person[emailaddress]/name");
  CoreExprPtr q1a = std::move(root_);
  Rewrite("(for $x in $d//person[emailaddress] return $x)/name");
  CoreExprPtr q1b = std::move(root_);
  Rewrite(
      "let $x := for $y in $d//person where $y/emailaddress return $y "
      "return $x/name");
  CoreExprPtr q1c = std::move(root_);
  // Variable display names differ (the user wrote $x / $y), so compare up
  // to alpha-renaming.
  EXPECT_TRUE(AlphaEqual(*q1a, *q1b));
  EXPECT_TRUE(AlphaEqual(*q1a, *q1c));
}

TEST_F(RewriteTest, Q5KeepsNoOuterDdo) {
  // Q5 is NOT equivalent to Q1a: no surrounding ddo may appear.
  std::string q5 =
      Rewrite("for $x in $d//person[emailaddress] return $x/name");
  EXPECT_EQ(q5.rfind("ddo(", 0), std::string::npos) << q5;
  EXPECT_EQ(q5,
            "for $dot in (for $dot in (for $dot in $d return "
            "descendant::person) where child::emailaddress return $dot) "
            "return child::name");
}

TEST_F(RewriteTest, TypeswitchResolvedForNodePredicate) {
  std::string s = Rewrite("$d/person[emailaddress]");
  EXPECT_EQ(s.find("typeswitch"), std::string::npos) << s;
}

TEST_F(RewriteTest, TypeswitchResolvedForNumericPredicate) {
  std::string s = Rewrite("$d/person[1]");
  EXPECT_EQ(s.find("typeswitch"), std::string::npos) << s;
  // The numeric branch survives as a positional comparison.
  EXPECT_NE(s.find("$position = 1"), std::string::npos) << s;
}

TEST_F(RewriteTest, PositionalForBlocksLoopSplit) {
  // The paper's loop-split guard example.
  std::string s = Rewrite("$d//person[1]/name");
  // The positional loop must remain nested in a return (not hoisted into
  // an iterator), keeping per-context positions.
  EXPECT_NE(s.find("return for $dot at $position in child::person"),
            std::string::npos)
      << s;
}

TEST_F(RewriteTest, DeadLastBindingRemoved) {
  std::string s = Rewrite("$d/person[emailaddress]");
  EXPECT_EQ(s.find("fn:count"), std::string::npos) << s;
  EXPECT_EQ(s.find("$last"), std::string::npos) << s;
}

TEST_F(RewriteTest, LastKeptWhenUsed) {
  std::string s = Rewrite("$d/person[position() = last()]");
  EXPECT_NE(s.find("fn:count"), std::string::npos) << s;
}

TEST_F(RewriteTest, DdoRemovalCanBeDisabled) {
  RewriteOptions opts;
  opts.ddo_removal = false;
  std::string with_ddo = Rewrite("$d/person", opts);
  EXPECT_NE(with_ddo.find("ddo("), std::string::npos) << with_ddo;
  std::string without = Rewrite("$d/person");
  EXPECT_EQ(without.find("ddo("), std::string::npos) << without;
}

TEST_F(RewriteTest, LoopSplitCanBeDisabled) {
  RewriteOptions opts;
  opts.loop_split = false;
  std::string with = Rewrite("$d//person[emailaddress]/name");
  std::string without = Rewrite("$d//person[emailaddress]/name", opts);
  EXPECT_NE(with, without);
}

TEST_F(RewriteTest, PureChildPathLosesAllDdos) {
  // All-child paths are statically ordered/duplicate-free: even the outer
  // ddo disappears.
  std::string s = Rewrite("$input/site/people/person");
  EXPECT_EQ(s.find("ddo"), std::string::npos) << s;
}

TEST_F(RewriteTest, DescendantPathKeepsOuterDdoOnly) {
  std::string s = Rewrite("$d//person/name");
  EXPECT_EQ(s.rfind("ddo(", 0), 0u) << s;             // outer ddo kept
  EXPECT_EQ(s.find("ddo(", 4), std::string::npos) << s;  // no inner ddo
}

TEST_F(RewriteTest, WhereBooleanWrapperDropped) {
  std::string s = Rewrite("for $x in $d/a where $x/b return $x");
  EXPECT_EQ(s.find("where fn:boolean"), std::string::npos) << s;
  EXPECT_NE(s.find("where child::b"), std::string::npos) << s;
}

TEST_F(RewriteTest, ComparisonPredicateKeptOutsidePattern) {
  std::string s = Rewrite("$d//person[name = \"John\"]/emailaddress");
  EXPECT_NE(s.find("where (child::name = \"John\")"), std::string::npos) << s;
}

TEST_F(RewriteTest, RewritingIsIdempotent) {
  std::string once = Rewrite("$d//person[emailaddress]/name");
  // Rewriting the rewritten expression again changes nothing.
  RewriteOptions opts;
  opts.verify = true;
  auto again = RewriteToTPNF(Clone(*root_), &vars_, opts);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(ToString(**again, vars_, interner_), once);
}

}  // namespace
}  // namespace xqtp::core
