// Evaluation of algebra plans. Tuple operators execute batch-at-a-time by
// default — a pull pipeline of columnar TupleBatches (exec/tuple.h)
// streaming between pipeline-able operators — with a row-at-a-time
// TupleSeq reference path behind TupleExecMode::kRow. TupleTreePattern
// dispatches to the configured physical algorithm (NLJoin / Staircase /
// Twig).
#ifndef XQTP_EXEC_EVALUATOR_H_
#define XQTP_EXEC_EVALUATOR_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>

#include "algebra/ops.h"
#include "analysis/verify_scope.h"
#include "common/status.h"
#include "core/ast.h"
#include "exec/governor.h"
#include "exec/pattern_eval.h"
#include "exec/tuple.h"

namespace xqtp::exec {

/// Physical execution mode for tuple plans.
enum class TupleExecMode {
  /// Columnar batch pipeline (default): tuple operators stream
  /// ~EvalOptions::tuple_batch_rows-row TupleBatches (exec/tuple.h) —
  /// Select filters via selection vectors, MapToItem reads the field
  /// column directly, patterns broadcast single-tuple inputs.
  kBatch,
  /// Row-at-a-time reference path: every tuple operator materializes a
  /// full TupleSeq. Kept as the differential baseline (cross-check
  /// oracle, bench_batch) — results are bit-identical to kBatch.
  kRow,
};

struct EvalOptions {
  PatternAlgo algo = PatternAlgo::kNLJoin;
  /// Worker threads for TupleTreePattern evaluation: 0 (default) = one per
  /// hardware thread, 1 = the sequential path, N = a fixed per-query pool
  /// of N (exec/parallel.h). The pool is created lazily on the first
  /// pattern evaluation that actually morselizes. Results are identical at
  /// any thread count; only the ExecStats attribution of driver-side index
  /// scans can differ.
  int threads = 0;
  /// Minimum root fan-out (context nodes, root-step candidates, or input
  /// tuples) before a pattern evaluation is morselized.
  int parallel_min_fanout = 256;
  /// Morsel granularity: the driver targets threads * this many morsels.
  int parallel_morsels_per_thread = 4;
  /// Assert the optimizer's stamped property claims (algebra::Op::props)
  /// on every evaluated sequence: cardinality bounds, document order,
  /// distinctness. A violation surfaces as Status::Internal tagged
  /// "[plan props]" — an inference bug becomes a failing test, not a
  /// silently wrong plan. On by default in Debug/sanitizer builds.
  bool check_inferred_props = analysis::kVerifyByDefault;
  /// Monotonic wall-clock deadline. When set, governor checks compare
  /// steady_clock::now() against it and the evaluation returns
  /// kDeadlineExceeded once it expires (cooperatively — the verdict
  /// surfaces at the next operator boundary / inner-loop stride).
  std::optional<std::chrono::steady_clock::time_point> deadline;
  /// Budget (bytes) for governor-accounted materialized intermediates;
  /// 0 = unlimited. Exceeding it returns kResourceExhausted. Accounting
  /// is approximate (sizeof-based, per materialized sequence/tuple batch;
  /// see DESIGN.md "Resource governance").
  int64_t memory_budget_bytes = 0;
  /// External cancellation token, shared with whoever may cancel. A
  /// Cancel() from any thread makes the evaluation return kCancelled at
  /// the next governor check. Null = not cancellable.
  std::shared_ptr<CancelToken> cancel_token;
  /// How tuple plans execute (see TupleExecMode). Results are identical
  /// in both modes; only the ExecStats batch counters differ.
  TupleExecMode tuple_exec = TupleExecMode::kBatch;
  /// Target rows per TupleBatch in kBatch mode (minimum 1). Small values
  /// force multi-batch streams — the cross-check oracle and unit tests
  /// use them to exercise batch boundaries.
  int tuple_batch_rows = 1024;

  /// True when any governor limit is set (a QueryGovernor is installed
  /// for the evaluation only in that case — otherwise checks are free).
  bool HasGovernorLimits() const {
    return deadline.has_value() || memory_budget_bytes > 0 ||
           cancel_token != nullptr;
  }
};

/// Values for the query's global variables.
using Bindings = std::unordered_map<core::VarId, xdm::Sequence>;

/// Evaluates a compiled (item) plan against global bindings.
[[nodiscard]]
Result<xdm::Sequence> Evaluate(const algebra::Op& plan,
                               const core::VarTable& vars,
                               const Bindings& bindings,
                               const EvalOptions& opts = {});

}  // namespace xqtp::exec

#endif  // XQTP_EXEC_EVALUATOR_H_
