// Alias header: the execution work counters live in common/exec_stats.h
// (the XDM navigation layer counts into them too); exec code and users
// historically refer to them through the exec namespace.
#ifndef XQTP_EXEC_EXEC_STATS_H_
#define XQTP_EXEC_EXEC_STATS_H_

#include "common/exec_stats.h"

namespace xqtp::exec {

using xqtp::CountBatch;
using xqtp::CountCowColumnCopies;
using xqtp::CountIndexEntries;
using xqtp::CountIndexSkip;
using xqtp::CountNodesVisited;
using xqtp::CountPatternEval;
using xqtp::CountTuplesMaterialized;
using xqtp::CurrentExecStats;
using xqtp::ExecStats;
using xqtp::ScopedExecStats;

}  // namespace xqtp::exec

#endif  // XQTP_EXEC_EXEC_STATS_H_
