#!/usr/bin/env python3
"""Project lint gate: textual invariants the compilers cannot check.

Run by ci/check.sh (and as a ctest) over the library sources. Each rule
enforces a project-wide convention that complements a machine-checked
discipline:

  raw-sync          src/common/mutex.h is the ONLY file allowed to name the
                    std synchronization primitives (std::mutex, lock_guard,
                    .lock() ...). Everything else must use the annotated
                    wrappers, because a raw std lock is invisible to clang's
                    -Wthread-safety analysis: code using one would need
                    escape hatches on every guarded access, silently
                    un-proving the lock discipline.
  no-stdout         no std::cout / printf-to-stdout in src/ library code;
                    the library reports through Status and returns values,
                    never by printing (tools, tests, benches may print).
  nodiscard-status  every Status- / Result-returning function declared in a
                    src/ header spells [[nodiscard]] (on the declaration or
                    the line above). The classes are [[nodiscard]] too; the
                    spelling keeps the contract visible at the API and
                    protects against a future plain-struct error type.
  include-guard     header guards are XQTP_<DIR>_<FILE>_H_, derived from
                    the path under src/, so a moved header cannot silently
                    shadow another one's guard.
  assert-side-effect  no mutation inside assert(...): the expression
                    vanishes under NDEBUG, so an increment, assignment or
                    mutating container call there makes Release behave
                    differently from Debug.
  allow-reason      every lint:allow(<rule>) must carry a
                    `reason=<why>` — an unexplained escape hatch is
                    unreviewable.
  fault-site-registered  every fault-injection site named in src/ (via
                    XQTP_FAULT_POINT("...") or a direct fault::Poll("...")
                    in void context) must appear in the sweep registry in
                    tests/fault_injection_test.cc, so a new site cannot
                    ship without the sweep forcing a failure through it.
  tupleseq-materialization  src/exec/evaluator.cc streams TupleBatches
                    between tuple operators; naming TupleSeq there means
                    whole-sequence materialization crept back into the
                    batch pipeline. Only the row-at-a-time reference path
                    (TupleExecMode::kRow) may, and it must annotate each
                    line (same line or the line above) with
                    lint:allow(tupleseq-materialization, reason=...).
  compiled-query-immutable  CompiledQuery is immutable after Engine::Compile
                    returns — the plan cache shares one instance across
                    threads without a lock, so that immutability IS the
                    thread-safety proof. Only the build path
                    (src/engine/engine.{h,cc}) may assign its members;
                    everywhere else, assigning to them or const_cast-ing
                    a CompiledQuery is a data race waiting to happen.

A finding prints as `path:line: [rule] message` and the process exits 1.
A line may opt out with a trailing `lint:allow(<rule>, reason=<why>)`
comment — intended to be rare and reviewable. `--self-test` proves each
rule fires on a known-bad fixture and stays quiet on a known-good one
(exit 0 only if all rules behave). Stdlib only; no third-party imports.
"""

import argparse
import os
import re
import sys
import tempfile

# --------------------------------------------------------------------------
# helpers

ALLOW_RE = re.compile(r"lint:allow\(([a-z-]+)(?:,\s*reason=([^)]+))?\)")


def strip_comments_and_strings(lines):
    """Returns lines with //, /* */ comments and string literals blanked
    (lengths preserved so column/line numbers stay meaningful)."""
    out = []
    in_block = False
    for line in lines:
        buf = []
        i, n = 0, len(line)
        in_str = None
        while i < n:
            c = line[i]
            if in_block:
                if line.startswith("*/", i):
                    in_block = False
                    buf.append("  ")
                    i += 2
                else:
                    buf.append(" ")
                    i += 1
            elif in_str:
                if c == "\\" and i + 1 < n:
                    buf.append("  ")
                    i += 2
                elif c == in_str:
                    in_str = None
                    buf.append(c)
                    i += 1
                else:
                    buf.append(" ")
                    i += 1
            elif c in "\"'":
                in_str = c
                buf.append(c)
                i += 1
            elif line.startswith("//", i):
                buf.append(" " * (n - i))
                break
            elif line.startswith("/*", i):
                in_block = True
                buf.append("  ")
                i += 2
            else:
                buf.append(c)
                i += 1
        out.append("".join(buf))
    return out


def allowed(raw_line, rule):
    m = ALLOW_RE.search(raw_line)
    return m is not None and m.group(1) == rule


class Finding:
    def __init__(self, path, line, rule, message):
        self.path, self.line, self.rule, self.message = path, line, rule, message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


# --------------------------------------------------------------------------
# rule: raw-sync

RAW_SYNC_EXEMPT = os.path.join("src", "common", "mutex.h")

RAW_SYNC_TOKENS = [
    (re.compile(r"\bstd::(?:recursive_|timed_|recursive_timed_)?mutex\b"),
     "std::mutex family"),
    (re.compile(r"\bstd::shared_(?:timed_)?mutex\b"), "std::shared_mutex"),
    (re.compile(r"\bstd::condition_variable(?:_any)?\b"),
     "std::condition_variable"),
    (re.compile(r"\bstd::(?:lock_guard|unique_lock|shared_lock|scoped_lock)\b"),
     "std lock holder"),
    (re.compile(r"\bstd::(?:call_once|once_flag)\b"), "std::call_once"),
    (re.compile(r"\.\s*(?:try_)?lock(?:_shared)?\s*\("), "manual .lock() call"),
    (re.compile(r"\.\s*unlock(?:_shared)?\s*\("), "manual .unlock() call"),
]


def check_raw_sync(relpath, raw, code, findings):
    if relpath.replace(os.sep, "/") == RAW_SYNC_EXEMPT.replace(os.sep, "/"):
        return
    for lineno, line in enumerate(code, 1):
        for pat, what in RAW_SYNC_TOKENS:
            if pat.search(line) and not allowed(raw[lineno - 1], "raw-sync"):
                findings.append(Finding(
                    relpath, lineno, "raw-sync",
                    f"{what} outside src/common/mutex.h — use the annotated "
                    "wrappers (Mutex/SharedMutex/MutexLock/ReaderLock/"
                    "WriterLock/CondVar) so clang -Wthread-safety can see "
                    "the acquisition"))
                break


# --------------------------------------------------------------------------
# rule: no-stdout

NO_STDOUT_PATTERNS = [
    (re.compile(r"\bstd::cout\b"), "std::cout"),
    (re.compile(r"(?<![\w.:>])(?:std::)?printf\s*\("), "printf"),
    (re.compile(r"\bfprintf\s*\(\s*stdout\b"), "fprintf(stdout, ...)"),
    (re.compile(r"(?<![\w.:>])(?:std::)?puts\s*\("), "puts"),
]


def check_no_stdout(relpath, raw, code, findings):
    for lineno, line in enumerate(code, 1):
        for pat, what in NO_STDOUT_PATTERNS:
            if pat.search(line) and not allowed(raw[lineno - 1], "no-stdout"):
                findings.append(Finding(
                    relpath, lineno, "no-stdout",
                    f"{what} in library code — the library communicates via "
                    "Status/Result and return values, never stdout "
                    "(printing belongs in tools/, tests/, bench/)"))
                break


# --------------------------------------------------------------------------
# rule: nodiscard-status

STATUS_DECL_RE = re.compile(
    r"^\s*(?:\[\[nodiscard\]\]\s*)?(?:static\s+|virtual\s+)?"
    r"(?:Status|Result<.*?>)\s+[A-Za-z_]\w*\s*\(")


def check_nodiscard_status(relpath, raw, code, findings):
    if not relpath.endswith(".h"):
        return
    for lineno, line in enumerate(code, 1):
        if not STATUS_DECL_RE.match(line):
            continue
        if "[[nodiscard]]" in line:
            continue
        prev = code[lineno - 2].strip() if lineno >= 2 else ""
        if prev.endswith("[[nodiscard]]"):
            continue
        if allowed(raw[lineno - 1], "nodiscard-status"):
            continue
        findings.append(Finding(
            relpath, lineno, "nodiscard-status",
            "Status/Result-returning API without [[nodiscard]] — a caller "
            "silently dropping this error must not compile"))


# --------------------------------------------------------------------------
# rule: include-guard

IFNDEF_RE = re.compile(r"^\s*#ifndef\s+(\w+)")
DEFINE_RE = re.compile(r"^\s*#define\s+(\w+)")


def expected_guard(relpath):
    rel = relpath.replace(os.sep, "/")
    assert rel.startswith("src/")
    stem = rel[len("src/"):]
    return "XQTP_" + re.sub(r"[^A-Za-z0-9]", "_", stem).upper() + "_"


def check_include_guard(relpath, raw, code, findings):
    if not relpath.endswith(".h"):
        return
    want = expected_guard(relpath)
    ifndef = define = None
    ifndef_line = 1
    for lineno, line in enumerate(code, 1):
        m = IFNDEF_RE.match(line)
        if m and ifndef is None:
            ifndef, ifndef_line = m.group(1), lineno
            nxt = DEFINE_RE.match(code[lineno]) if lineno < len(code) else None
            define = nxt.group(1) if nxt else None
            break
    if ifndef is None:
        findings.append(Finding(relpath, 1, "include-guard",
                                f"missing include guard (expected {want})"))
        return
    if ifndef != want or define != want:
        if not allowed(raw[ifndef_line - 1], "include-guard"):
            findings.append(Finding(
                relpath, ifndef_line, "include-guard",
                f"guard is {ifndef!r}/{define!r}, expected {want!r} "
                "(XQTP_ + path under src/, uppercased)"))


# --------------------------------------------------------------------------
# rule: assert-side-effect

ASSERT_RE = re.compile(r"(?<![\w.])assert\s*\(")

ASSERT_MUTATION_PATTERNS = [
    (re.compile(r"\+\+|--"), "increment/decrement"),
    # A single '=' that is not part of ==, !=, <=, >=, =>, += etc.
    (re.compile(r"(?<![=!<>+\-*/%&|^])=(?![=])"), "assignment"),
    (re.compile(r"\.\s*(?:push_back|pop_back|insert|erase|clear|reset|"
                r"release|assign|swap|emplace\w*|fetch_add|fetch_sub|"
                r"store)\s*\("), "mutating call"),
]


def check_assert_side_effect(relpath, raw, code, findings):
    for lineno, line in enumerate(code, 1):
        m = ASSERT_RE.search(line)
        if m is None:
            continue
        # Collect the assert's argument text, following the expression
        # across lines until its parentheses balance (bounded scan).
        text = line[m.end():]
        depth = 1
        collected = []
        j = lineno - 1
        for _ in range(10):
            for c in text:
                if c == "(":
                    depth += 1
                elif c == ")":
                    depth -= 1
                    if depth == 0:
                        break
                collected.append(c)
            if depth == 0 or j + 1 >= len(code):
                break
            j += 1
            text = code[j]
        arg = "".join(collected)
        for pat, what in ASSERT_MUTATION_PATTERNS:
            if pat.search(arg) and not allowed(raw[lineno - 1],
                                               "assert-side-effect"):
                findings.append(Finding(
                    relpath, lineno, "assert-side-effect",
                    f"{what} inside assert(...) — the expression disappears "
                    "under NDEBUG, so Release would skip the effect"))
                break


# --------------------------------------------------------------------------
# rule: allow-reason (meta: escape hatches must explain themselves)

def check_allow_reason(relpath, raw, code, findings):
    for lineno, line in enumerate(raw, 1):
        m = ALLOW_RE.search(line)
        if m is None:
            continue
        reason = (m.group(2) or "").strip()
        if not reason:
            findings.append(Finding(
                relpath, lineno, "allow-reason",
                f"lint:allow({m.group(1)}) without a reason= — write "
                f"lint:allow({m.group(1)}, reason=<why this line is "
                "exempt>) so the escape hatch is reviewable"))


# --------------------------------------------------------------------------
# rule: fault-site-registered

FAULT_REGISTRY_FILE = os.path.join("tests", "fault_injection_test.cc")

# A fault-point use still visible after comment stripping (comments blank
# the macro name, so documentation mentions don't count)...
FAULT_POINT_CODE_RE = re.compile(
    r"(?:XQTP_FAULT_POINT|(?:::xqtp::)?fault::Poll)\s*\(")
# ... whose site argument is a string literal (read from the raw line,
# because `code` blanks string contents). The macro's own definition
# passes a bare parameter and is skipped by this second match.
FAULT_POINT_RAW_RE = re.compile(
    r'(?:XQTP_FAULT_POINT|(?:::xqtp::)?fault::Poll)\s*\(\s*"([^"]+)"')


def load_fault_registry(root):
    """All string literals in the sweep test — a superset of the site
    registry, which is exactly what membership needs to check against."""
    path = os.path.join(root, FAULT_REGISTRY_FILE)
    try:
        with open(path, encoding="utf-8") as f:
            return set(re.findall(r'"([^"\n]+)"', f.read()))
    except OSError:
        return None


def make_check_fault_site_registered(registry):
    def check(relpath, raw, code, findings):
        for lineno, line in enumerate(code, 1):
            if not FAULT_POINT_CODE_RE.search(line):
                continue
            m = FAULT_POINT_RAW_RE.search(raw[lineno - 1])
            if m is None:
                continue  # macro definition / non-literal site argument
            site = m.group(1)
            if registry is not None and site in registry:
                continue
            if allowed(raw[lineno - 1], "fault-site-registered"):
                continue
            where = (f"{FAULT_REGISTRY_FILE} is missing"
                     if registry is None else
                     f"not in {FAULT_REGISTRY_FILE}")
            findings.append(Finding(
                relpath, lineno, "fault-site-registered",
                f'fault site "{site}": {where} — every site must appear '
                "in the sweep test's kRegistry so an injected failure is "
                "forced through it"))
    return check


# --------------------------------------------------------------------------
# rule: tupleseq-materialization

TUPLESEQ_FILE = os.path.join("src", "exec", "evaluator.cc")
TUPLESEQ_RE = re.compile(r"\bTupleSeq\b")


def check_tupleseq_materialization(relpath, raw, code, findings):
    if relpath.replace(os.sep, "/") != TUPLESEQ_FILE.replace(os.sep, "/"):
        return
    for lineno, line in enumerate(code, 1):
        if not TUPLESEQ_RE.search(line):
            continue
        # The row reference path annotates long declarations on the line
        # above; accept the allow on either line.
        if allowed(raw[lineno - 1], "tupleseq-materialization"):
            continue
        if lineno >= 2 and allowed(raw[lineno - 2],
                                   "tupleseq-materialization"):
            continue
        findings.append(Finding(
            relpath, lineno, "tupleseq-materialization",
            "TupleSeq materialization in the evaluator — tuple plans "
            "stream TupleBatches (exec/tuple.h); whole-sequence "
            "materialization belongs only to the TupleExecMode::kRow "
            "reference path, annotated with "
            "lint:allow(tupleseq-materialization, reason=...)"))


# --------------------------------------------------------------------------
# rule: compiled-query-immutable

# The build path: CompiledQuery's class definition (default member
# initializers) and Engine::Compile's stamping of the members.
COMPILED_QUERY_EXEMPT = {
    os.path.join("src", "engine", "engine.h"),
    os.path.join("src", "engine", "engine.cc"),
}

# CompiledQuery's private members (src/engine/engine.h). `plan_` is
# omitted: the name is too generic to key a textual rule on, and a plan_
# mutation outside the build path would come with one of these anyway.
COMPILED_QUERY_MEMBER_WRITE_RE = re.compile(
    r"\b(?:source_|normalized_|rewritten_|optimized_|lint_findings_|"
    r"fingerprint_|memory_bytes_)\s*(?:=(?!=)|\.\s*(?:push_back|clear|"
    r"reset|assign|swap|emplace\w*)\s*\()")
CONST_CAST_COMPILED_QUERY_RE = re.compile(
    r"const_cast\s*<[^>]*\bCompiledQuery\b")


def check_compiled_query_immutable(relpath, raw, code, findings):
    rel = relpath.replace(os.sep, "/")
    exempt = {p.replace(os.sep, "/") for p in COMPILED_QUERY_EXEMPT}
    for lineno, line in enumerate(code, 1):
        if rel not in exempt and COMPILED_QUERY_MEMBER_WRITE_RE.search(line):
            if not allowed(raw[lineno - 1], "compiled-query-immutable"):
                findings.append(Finding(
                    relpath, lineno, "compiled-query-immutable",
                    "write to a CompiledQuery member outside the build path "
                    "(src/engine/engine.{h,cc}) — compiled queries are "
                    "shared across threads by the plan cache; their "
                    "immutability after Compile() IS the thread-safety "
                    "argument"))
                continue
        if CONST_CAST_COMPILED_QUERY_RE.search(line):
            if not allowed(raw[lineno - 1], "compiled-query-immutable"):
                findings.append(Finding(
                    relpath, lineno, "compiled-query-immutable",
                    "const_cast of a CompiledQuery — the cache hands out "
                    "shared const plans; casting the const away breaks the "
                    "no-lock sharing contract"))


RULES = [check_raw_sync, check_no_stdout, check_nodiscard_status,
         check_include_guard, check_assert_side_effect, check_allow_reason,
         check_tupleseq_materialization, check_compiled_query_immutable]


# --------------------------------------------------------------------------
# driver

def lint_tree(root):
    findings = []
    rules = RULES + [make_check_fault_site_registered(
        load_fault_registry(root))]
    src = os.path.join(root, "src")
    for dirpath, _, files in os.walk(src):
        for name in sorted(files):
            if not name.endswith((".h", ".cc")):
                continue
            path = os.path.join(dirpath, name)
            relpath = os.path.relpath(path, root)
            with open(path, encoding="utf-8") as f:
                raw = f.read().splitlines()
            code = strip_comments_and_strings(raw)
            for rule in rules:
                rule(relpath, raw, code, findings)
    return findings


# --------------------------------------------------------------------------
# self-test: each rule must fire on a seeded violation and stay quiet on a
# clean snippet. Fixtures are written into a temp tree shaped like src/.

SELF_TEST_FIXTURES = [
    # (relative path, contents, set of rules expected to fire)
    ("src/common/mutex.h",
     "#ifndef XQTP_COMMON_MUTEX_H_\n#define XQTP_COMMON_MUTEX_H_\n"
     "#include <mutex>\nstd::mutex exempt_here;\nvoid F() { m.lock(); }\n"
     "#endif  // XQTP_COMMON_MUTEX_H_\n",
     set()),  # the one exempt file: raw sync allowed
    ("src/bad/raw_sync.cc",
     "#include <mutex>\nstd::mutex mu;\n"
     "void F() { std::lock_guard<std::mutex> l(mu); }\n",
     {"raw-sync"}),
    ("src/bad/manual_lock.cc",
     "void F() { mu.lock(); mu.unlock(); }\n",
     {"raw-sync"}),
    ("src/bad/stdout.cc",
     "#include <iostream>\nvoid F() { std::cout << 1; }\n"
     "void G() { printf(\"x\"); }\n",
     {"no-stdout"}),
    ("src/bad/discard.h",
     "#ifndef XQTP_BAD_DISCARD_H_\n#define XQTP_BAD_DISCARD_H_\n"
     "Status Frob(int x);\n"
     "Result<int> Twiddle();\n"
     "#endif  // XQTP_BAD_DISCARD_H_\n",
     {"nodiscard-status"}),
    ("src/bad/guard.h",
     "#ifndef WRONG_GUARD_H\n#define WRONG_GUARD_H\n#endif\n",
     {"include-guard"}),
    ("src/bad/assert_mutate.cc",
     "#include <cassert>\n"
     "void F(int x) { assert(x++ > 0); }\n"
     "void G(int n) { assert(n = 1); }\n"
     "void H() { assert(v.empty() || (v.clear(), true)); }\n",
     {"assert-side-effect"}),
    ("src/bad/assert_multiline.cc",
     "#include <cassert>\n"
     "void F(int a, int b) {\n"
     "  assert(a == b &&\n"
     "         ++a > 0);\n"
     "}\n",
     {"assert-side-effect"}),
    ("src/bad/allow_bare.cc",
     "void F() { mu.lock(); }  // lint:allow(raw-sync)\n",
     {"allow-reason"}),  # the allow suppresses raw-sync but must explain
    ("src/good/clean.h",
     "#ifndef XQTP_GOOD_CLEAN_H_\n#define XQTP_GOOD_CLEAN_H_\n"
     "// std::mutex in a comment is fine; \"std::cout\" in a string too.\n"
     "const char* kMsg = \"std::cout\";\n"
     "[[nodiscard]] Status Frob(int x);\n"
     "[[nodiscard]]\n"
     "Result<int> Twiddle(int very_long_parameter_name,\n"
     "                    int another_parameter);\n"
     "int snprintf_ok(char* b, int n);  // name contains printf, no call\n"
     "#endif  // XQTP_GOOD_CLEAN_H_\n",
     set()),
    ("src/good/assert_pure.cc",
     "#include <cassert>\n"
     "void F(int x) { assert(x == 1 && \"message ++ = ok in string\"); }\n"
     "void G(int a, int b) { assert(a <= b || a >= 0 || a != b); }\n"
     "void H() { assert(size() > 1); }\n",
     set()),
    ("src/good/allow.cc",
     "void F() { weak.lock(); }"
     "  // lint:allow(raw-sync, reason=non-std weak_ptr-style lock API)\n",
     set()),
    # fault-site-registered: the fixture registry below knows one site.
    ("tests/fault_injection_test.cc",
     "// fixture sweep registry\n"
     "constexpr SiteConfig kRegistry[] = {\n"
     "    {\"exec.registered.site\", exec::PatternAlgo::kNLJoin, 1},\n"
     "};\n",
     set()),  # outside src/: never linted itself
    ("src/bad/fault_unregistered.cc",
     "#include \"common/fault_injection.h\"\n"
     "Status F() {\n"
     "  XQTP_FAULT_POINT(\"exec.unregistered.site\");\n"
     "  return Status::OK();\n"
     "}\n",
     {"fault-site-registered"}),
    ("src/good/fault_registered.cc",
     "#include \"common/fault_injection.h\"\n"
     "// A comment naming XQTP_FAULT_POINT(\"exec.unregistered.site\") is\n"
     "// fine: only code counts.\n"
     "Status F() {\n"
     "  XQTP_FAULT_POINT(\"exec.registered.site\");\n"
     "  return fault::Poll(\"exec.registered.site\");\n"
     "}\n",
     set()),
    # tupleseq-materialization: scoped to the batch evaluator; allows are
    # accepted on the offending line or the line above it.
    ("src/exec/evaluator.cc",
     "#include \"exec/tuple.h\"\n"
     "// Naming TupleSeq in a comment is fine: only code counts.\n"
     "exec::TupleSeq Materialize();\n"
     "void RowPath() {\n"
     "  TupleSeq rows;  "
     "// lint:allow(tupleseq-materialization, reason=kRow reference path)\n"
     "  // lint:allow(tupleseq-materialization, reason=kRow reference path)\n"
     "  TupleSeq more;\n"
     "}\n",
     {"tupleseq-materialization"}),  # line 3 fires; the allowed lines don't
    ("src/exec/not_evaluator.cc",
     "#include \"exec/tuple.h\"\n"
     "TupleSeq fine_outside_the_evaluator;\n",
     set()),
    # compiled-query-immutable: writes outside the build path fire; the
    # build path itself and read-only access stay quiet.
    ("src/bad/cache_mutation.cc",
     "#include \"engine/engine.h\"\n"
     "void Patch(engine::CompiledQuery* q) {\n"
     "  q->fingerprint_ = 0;\n"
     "  q->lint_findings_.clear();\n"
     "}\n"
     "void Cast(const engine::CompiledQuery& q) {\n"
     "  auto* w = const_cast<engine::CompiledQuery*>(&q);\n"
     "}\n",
     {"compiled-query-immutable"}),
    ("src/engine/engine.cc",
     "#include \"engine/engine.h\"\n"
     "// The build path: stamping members here is the rule's one hole.\n"
     "void Stamp(engine::CompiledQuery* q) {\n"
     "  q->fingerprint_ = 1;\n"
     "  q->memory_bytes_ = 2;\n"
     "}\n",
     set()),
    ("src/good/cache_reader.cc",
     "#include \"engine/engine.h\"\n"
     "// Reads and comparisons are fine; fingerprint_ == x is not a write.\n"
     "bool Same(const engine::CompiledQuery& q, uint64_t fingerprint_) {\n"
     "  return q.fingerprint() == fingerprint_;\n"
     "}\n",
     set()),
]


def self_test():
    with tempfile.TemporaryDirectory(prefix="xqtp-lint-") as tmp:
        for relpath, contents, _ in SELF_TEST_FIXTURES:
            path = os.path.join(tmp, relpath)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w", encoding="utf-8") as f:
                f.write(contents)
        findings = lint_tree(tmp)
        by_file = {}
        for f in findings:
            by_file.setdefault(f.path.replace(os.sep, "/"), set()).add(f.rule)
        failures = []
        for relpath, _, expect in SELF_TEST_FIXTURES:
            got = by_file.get(relpath, set())
            missing = expect - got
            extra = got - expect
            if missing:
                failures.append(f"{relpath}: rule(s) {sorted(missing)} did "
                                "NOT fire on a seeded violation")
            if extra:
                failures.append(f"{relpath}: unexpected rule(s) "
                                f"{sorted(extra)} fired on clean code")
        if failures:
            print("lint.py --self-test FAILED:")
            for f in failures:
                print(f"  {f}")
            for f in findings:
                print(f"  (finding: {f})")
            return 1
        rules_proven = sorted({r for _, _, exp in SELF_TEST_FIXTURES
                               for r in exp})
        print(f"lint.py --self-test OK: rules {rules_proven} each fired on "
              "a seeded violation and stayed quiet on clean fixtures")
        return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))),
        help="repository root (default: parent of tools/)")
    ap.add_argument("--self-test", action="store_true",
                    help="verify each rule fires on known-bad fixtures")
    args = ap.parse_args()
    if args.self_test:
        return self_test()
    findings = lint_tree(args.root)
    for f in findings:
        print(f)
    if findings:
        print(f"lint.py: {len(findings)} finding(s) in "
              f"{len({f.path for f in findings})} file(s)", file=sys.stderr)
        return 1
    print("lint.py: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
