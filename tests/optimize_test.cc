#include <gtest/gtest.h>

#include "algebra/compile.h"
#include "algebra/optimize.h"
#include "algebra/printer.h"
#include "core/normalize.h"
#include "core/rewrite.h"
#include "xquery/parser.h"

namespace xqtp::algebra {
namespace {

class OptimizeTest : public ::testing::Test {
 protected:
  std::string Optimized(const std::string& q, bool detect = true) {
    auto surface = xquery::ParseQuery(q, &interner_);
    EXPECT_TRUE(surface.ok()) << surface.status().ToString();
    vars_ = core::VarTable();
    auto c = core::Normalize(**surface, &vars_);
    EXPECT_TRUE(c.ok()) << c.status().ToString();
    core::RewriteOptions ropts;
    ropts.verify = true;  // the Core verifier runs even in Release builds
    auto r = core::RewriteToTPNF(std::move(c).value(), &vars_, ropts);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    auto plan = Compile(**r, vars_, &interner_);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    plan_ = std::move(plan).value();
    OptimizeOptions opts;
    opts.detect_tree_patterns = detect;
    opts.verify = true;  // the plan verifier runs even in Release builds
    opts.vars = &vars_;
    Status st = Optimize(&plan_, &interner_, opts);
    EXPECT_TRUE(st.ok()) << st.ToString();
    return ToString(*plan_, vars_, interner_);
  }

  StringInterner interner_;
  core::VarTable vars_;
  OpPtr plan_;
};

TEST_F(OptimizeTest, Q1aReachesP5) {
  // The paper's plan P5: a single TupleTreePattern, no ddo, no TreeJoin.
  EXPECT_EQ(Optimized("$d//person[emailaddress]/name"),
            "MapToItem{IN#out}"
            "(TupleTreePattern[IN#dot/descendant::person"
            "[child::emailaddress]/child::name{out}]"
            "(MapFromItem{[dot : IN]}($d)))");
}

TEST_F(OptimizeTest, Q2KeepsValueSelectBetweenPatterns) {
  std::string p = Optimized("$d//person[name = \"John\"]/emailaddress");
  PlanStats stats = ComputeStats(*plan_);
  EXPECT_EQ(stats.tree_pattern_ops, 3);  // person, name probe, emailaddress
  EXPECT_NE(p.find("Select{MapToItem{IN#out}(TupleTreePattern"
                   "[IN#dot/child::name{out}](IN))=\"John\"}"),
            std::string::npos)
      << p;
  EXPECT_EQ(stats.tree_join_ops, 0);
}

TEST_F(OptimizeTest, Q5StaysTwoCascadedPatterns) {
  // Q5 must NOT merge into one pattern (order semantics differ).
  std::string p = Optimized("for $x in $d//person[emailaddress] return $x/name");
  PlanStats stats = ComputeStats(*plan_);
  EXPECT_EQ(stats.tree_pattern_ops, 2);
  EXPECT_EQ(p.find("descendant::person[child::emailaddress]/child::name"),
            std::string::npos)
      << p;
}

TEST_F(OptimizeTest, ChildOnlyIterationMergesWithoutDdo) {
  // All-child FLWOR: cascade order equals document order, so the merge is
  // allowed even without a surrounding ddo.
  std::string p =
      Optimized("for $x in $input/site/people return $x/person/name");
  PlanStats stats = ComputeStats(*plan_);
  EXPECT_EQ(stats.tree_pattern_ops, 1) << p;
  EXPECT_EQ(stats.max_pattern_steps, 4);
}

TEST_F(OptimizeTest, DetectionCanBeDisabled) {
  std::string p = Optimized("$d//person[emailaddress]/name", false);
  PlanStats stats = ComputeStats(*plan_);
  EXPECT_EQ(stats.tree_pattern_ops, 0);
  EXPECT_EQ(stats.tree_join_ops, 3);
}

TEST_F(OptimizeTest, PositionalQueryKeepsForEachAroundPatterns) {
  std::string p = Optimized("$d//person[1]/name");
  EXPECT_NE(p.find("ForEach"), std::string::npos) << p;
  PlanStats stats = ComputeStats(*plan_);
  EXPECT_GE(stats.tree_pattern_ops, 2);
}

TEST_F(OptimizeTest, BranchyPredicatesBecomePatternBranches) {
  // QE1 from the paper's Figure 5.
  std::string p = Optimized(
      "$input/desc::t01[child::t02[child::t03[child::t04]]]");
  EXPECT_EQ(p,
            "MapToItem{IN#dot}"
            "(TupleTreePattern[IN#dot/descendant::t01{dot}"
            "[child::t02[child::t03[child::t04]]]]"
            "(MapFromItem{[dot : IN]}($input)))");
}

TEST_F(OptimizeTest, QE3DoublePredicateBranch) {
  std::string p = Optimized(
      "$input/desc::t01[child::t02[child::t03]/child::t04[child::t03]]");
  PlanStats stats = ComputeStats(*plan_);
  EXPECT_EQ(stats.tree_pattern_ops, 1) << p;
  EXPECT_EQ(stats.max_pattern_steps, 5);
}

TEST_F(OptimizeTest, AllQEQueriesBecomeSinglePatterns) {
  const char* queries[] = {
      "$input/desc::t01[child::t02[child::t03[child::t04]]]",
      "$input/desc::t01[desc::t02[desc::t03[desc::t04]]]",
      "$input/desc::t01[child::t02[child::t03]/child::t04[child::t03]]",
      "$input/desc::t01[desc::t02[desc::t03]/desc::t04[desc::t03]]",
  };
  for (const char* q : queries) {
    Optimized(q);
    PlanStats stats = ComputeStats(*plan_);
    EXPECT_EQ(stats.tree_pattern_ops, 1) << q;
    EXPECT_EQ(stats.tree_join_ops, 0) << q;
  }
}

TEST_F(OptimizeTest, FieldNamesAreCanonical) {
  // Two different syntactic routes to one query end with identical plans,
  // including field names.
  std::string a = Optimized("$d/site/people");
  std::string b = Optimized("for $x in $d/site return $x/people");
  EXPECT_EQ(a, b);
}

TEST_F(OptimizeTest, OptimizeIsIdempotent) {
  std::string once = Optimized("$d//person[emailaddress]/name");
  OpPtr copy = Clone(*plan_);
  OptimizeOptions opts;
  opts.verify = true;
  opts.vars = &vars_;
  EXPECT_TRUE(Optimize(&copy, &interner_, opts).ok());
  EXPECT_EQ(ToString(*copy, vars_, interner_), once);
}

}  // namespace
}  // namespace xqtp::algebra
