#include "analysis/verify_scope.h"

#include <algorithm>
#include <atomic>
#include <vector>

namespace xqtp::analysis {

namespace {

// Thread-local so concurrent engines (concurrency_test) attribute rules
// independently.
thread_local std::vector<const char*> g_scope_stack;
thread_local std::vector<const char*> g_fired;

std::atomic<int64_t> g_activations{0};

}  // namespace

VerifyScope::VerifyScope(const char* rule) : rule_(rule) {
  g_scope_stack.push_back(rule_);
  g_activations.fetch_add(1, std::memory_order_relaxed);
}

int64_t VerifyScope::ActivationCountForTesting() {
  return g_activations.load(std::memory_order_relaxed);
}

VerifyScope::~VerifyScope() { g_scope_stack.pop_back(); }

void VerifyScope::MarkFired() {
  // Rules fire many times per round; keep the trail duplicate-free.
  if (std::find(g_fired.begin(), g_fired.end(), rule_) == g_fired.end()) {
    g_fired.push_back(rule_);
  }
}

const char* VerifyScope::Current() {
  return g_scope_stack.empty() ? "" : g_scope_stack.back();
}

std::string VerifyScope::FiredTrail() {
  std::string out;
  for (const char* r : g_fired) {
    if (!out.empty()) out += ", ";
    out += r;
  }
  return out;
}

void VerifyScope::ClearFiredTrail() { g_fired.clear(); }

Status VerifyScope::Tag(Status s) {
  if (s.ok()) return s;
  std::string msg = s.message();
  if (!g_scope_stack.empty()) {
    msg += " [in ";
    msg += g_scope_stack.back();
    msg += "]";
  }
  std::string trail = FiredTrail();
  if (!trail.empty()) {
    msg += " [after: " + trail + "]";
  }
  return Status(s.code(), std::move(msg));
}

}  // namespace xqtp::analysis
