// Morsel-parallel driver for TupleTreePattern evaluation (see parallel.h
// for the architecture). Correctness rests on two facts:
//
//  1. every sequential algorithm returns the operator's Section 4.1
//     result: DISTINCT binding rows in root-to-leaf lexical order
//     (RowLexLess). A morsel's result is therefore a sorted run, and an
//     order-preserving merge + dedup of the runs reproduces the
//     sequential output bit for bit;
//  2. the union over context nodes (or over root-step candidates, for
//     the self-rooted rewrite) of the pattern's matches equals the
//     matches over the whole context — pattern evaluation is per-context
//     independent, so any partition of the context is sound.
#include "exec/parallel.h"

#include <algorithm>
#include <atomic>
#include <iterator>
#include <optional>
#include <utility>

#include "common/fault_injection.h"
#include "common/interner.h"
#include "exec/exec_stats.h"
#include "storage/node_table.h"
#include "xdm/sequence_ops.h"
#include "xml/document.h"

namespace xqtp::exec {

namespace {
/// See ParallelEvaluationCountForTesting().
std::atomic<int64_t> g_parallel_evals{0};
}  // namespace

int64_t ParallelEvaluationCountForTesting() {
  return g_parallel_evals.load(std::memory_order_relaxed);
}

int ClampParallelThreads(size_t units, int threads, int min_fanout) {
  if (threads < 2) return threads;
  size_t per_unit = units / static_cast<size_t>(std::max(1, min_fanout));
  if (per_unit >= static_cast<size_t>(threads)) return threads;
  return std::max(2, static_cast<int>(per_unit));
}

int ThreadPool::ResolveThreads(int threads) {
  if (threads == 0) {
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
  }
  return threads < 1 ? 1 : threads;
}

ThreadPool::ThreadPool(int threads) {
  int n = ResolveThreads(threads);
  workers_.reserve(static_cast<size_t>(n - 1));
  for (int i = 1; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    stop_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::WorkerLoop() {
  uint64_t seen = 0;
  for (;;) {
    const std::function<void(int)>* fn = nullptr;
    {
      MutexLock lock(&mu_);
      // Explicit wait loop (not a predicate lambda): the guarded reads of
      // stop_/fn_/generation_ stay in this annotated scope, where the
      // thread-safety analysis can see mu_ is held.
      while (!stop_ && (fn_ == nullptr || generation_ == seen)) {
        work_cv_.Wait(mu_);
      }
      if (stop_) return;
      seen = generation_;
      fn = fn_;
    }
    for (;;) {
      int i;
      {
        MutexLock lock(&mu_);
        if (fn_ != fn || generation_ != seen || next_ >= count_) break;
        i = next_++;
      }
      (*fn)(i);
      MutexLock lock(&mu_);
      if (++done_ == count_) done_cv_.NotifyAll();
    }
  }
}

void ThreadPool::Run(int count, const std::function<void(int)>& fn) {
  if (count <= 0) return;
  if (workers_.empty()) {
    for (int i = 0; i < count; ++i) fn(i);
    return;
  }
  MutexLock run_lock(&run_mu_);
  {
    MutexLock lock(&mu_);
    fn_ = &fn;
    count_ = count;
    next_ = 0;
    done_ = 0;
    ++generation_;
  }
  work_cv_.NotifyAll();
  // The calling thread claims morsels alongside the workers.
  for (;;) {
    int i;
    {
      MutexLock lock(&mu_);
      if (next_ >= count_) break;
      i = next_++;
    }
    fn(i);
    MutexLock lock(&mu_);
    if (++done_ == count_) done_cv_.NotifyAll();
  }
  MutexLock lock(&mu_);
  while (done_ != count_) done_cv_.Wait(mu_);
  fn_ = nullptr;
}

namespace {

using pattern::PatternNode;
using pattern::PatternNodePtr;
using pattern::TreePattern;
using xml::Document;
using xml::Node;

/// Document-ordered stream of the nodes matching `test` on an element-ish
/// axis (the same per-tag indexes the Staircase/Twig joins consume).
const std::vector<const Node*>& StreamFor(const Document& doc,
                                          const NodeTest& test) {
  switch (test.kind) {
    case NodeTestKind::kName:
      return doc.ElementsByTag(test.name);
    case NodeTestKind::kAnyName:
      return doc.AllElements();
    case NodeTestKind::kText:
      return doc.TextNodes();
    case NodeTestKind::kAnyNode:
      return doc.AllNodes();
  }
  return doc.AllNodes();
}

void SortDedup(std::vector<const Node*>* v) {
  std::sort(v->begin(), v->end(), xml::DocOrderLess);
  v->erase(std::unique(v->begin(), v->end()), v->end());
}

/// Staircase pruning: contexts covered by an earlier context's subtree
/// contribute no new descendants. Input must be sorted.
void PruneCovered(std::vector<const Node*>* ctx) {
  std::vector<const Node*> kept;
  kept.reserve(ctx->size());
  for (const Node* n : *ctx) {
    if (!kept.empty() && (kept.back() == n || kept.back()->IsAncestorOf(*n))) {
      continue;
    }
    kept.push_back(n);
  }
  *ctx = std::move(kept);
}

/// Expands the root step's candidate set directly from the per-tag index
/// (the staircase region scan), instead of letting every worker rediscover
/// it navigationally. Returns the document-ordered duplicate-free matches
/// of `root` over `ctx`; the caller has verified a downward axis, no
/// positional constraint, and a single document.
std::vector<const Node*> ExpandRootCandidates(const PatternNode& root,
                                              std::vector<const Node*> ctx) {
  std::vector<const Node*> out;
  if (ctx.empty()) return out;
  SortDedup(&ctx);
  const Document& doc = *ctx.front()->doc;
  const std::vector<const Node*>& stream = StreamFor(doc, root.test);
  switch (root.axis) {
    case Axis::kDescendant:
    case Axis::kDescendantOrSelf: {
      PruneCovered(&ctx);
      size_t pos = 0;
      for (const Node* c : ctx) {
        if (root.axis == Axis::kDescendantOrSelf &&
            xdm::MatchesTest(c, root.axis, root.test)) {
          out.push_back(c);
        }
        CountIndexSkip();
        auto it = std::upper_bound(
            stream.begin() + static_cast<ptrdiff_t>(pos), stream.end(),
            c->pre, [](int32_t pre, const Node* n) { return pre < n->pre; });
        pos = static_cast<size_t>(it - stream.begin());
        while (pos < stream.size() && stream[pos]->post < c->post) {
          out.push_back(stream[pos]);
          ++pos;
          CountIndexEntries(1);
        }
      }
      break;  // disjoint regions: already sorted and duplicate-free
    }
    case Axis::kChild: {
      for (const Node* c : ctx) {
        CountIndexSkip();
        auto it = std::upper_bound(
            stream.begin(), stream.end(), c->pre,
            [](int32_t pre, const Node* n) { return pre < n->pre; });
        for (; it != stream.end() && (*it)->post < c->post; ++it) {
          CountIndexEntries(1);
          if ((*it)->parent == c) out.push_back(*it);
        }
      }
      SortDedup(&out);
      break;
    }
    default:
      break;  // unreachable: gated by the caller
  }
  return out;
}

struct MorselRange {
  size_t begin;
  size_t end;
};

/// Cuts `units` work units into contiguous morsels: about
/// threads * morsels_per_thread of them, never smaller than
/// min_fanout / 4 units (finer morsels would be all coordination).
std::vector<MorselRange> PlanMorsels(size_t units, const ParallelContext& par) {
  int target = std::max(1, par.threads * par.morsels_per_thread);
  size_t min_units =
      std::max<size_t>(1, static_cast<size_t>(par.min_fanout) / 4);
  size_t size = std::max(min_units,
                         (units + static_cast<size_t>(target) - 1) /
                             static_cast<size_t>(target));
  std::vector<MorselRange> morsels;
  morsels.reserve(units / size + 1);
  for (size_t lo = 0; lo < units; lo += size) {
    morsels.push_back({lo, std::min(units, lo + size)});
  }
  return morsels;
}

/// Order-preserving merge of per-morsel sorted runs, then one dedup pass.
/// Uses the same RowLexLess the sequential FinalizeRows sorts by, which is
/// what makes the merged output bit-identical to the sequential one.
std::vector<BindingRow> MergeSortedRuns(std::vector<std::vector<BindingRow>> runs) {
  std::vector<BindingRow> acc;
  for (std::vector<BindingRow>& run : runs) {
    if (run.empty()) continue;
    if (acc.empty()) {
      acc = std::move(run);
      continue;
    }
    std::vector<BindingRow> merged;
    merged.reserve(acc.size() + run.size());
    std::merge(std::make_move_iterator(acc.begin()),
               std::make_move_iterator(acc.end()),
               std::make_move_iterator(run.begin()),
               std::make_move_iterator(run.end()), std::back_inserter(merged),
               RowLexLess);
    acc = std::move(merged);
  }
  acc.erase(std::unique(acc.begin(), acc.end()), acc.end());
  return acc;
}

void PrewarmSteps(const Document& doc, const PatternNode& p) {
  if (p.axis == Axis::kAttribute) {
    if (p.test.kind == NodeTestKind::kName) doc.AttributesByName(p.test.name);
  } else {
    StreamFor(doc, p.test);
  }
  for (const PatternNodePtr& pred : p.predicates) PrewarmSteps(doc, *pred);
  if (p.next != nullptr) PrewarmSteps(doc, *p.next);
}

/// Merges the per-morsel worker counters into the calling scope (if any):
/// the driver reports exactly the work its morsels did.
void MergeWorkerStats(const std::vector<ExecStats>& slots) {
  if (ExecStats* s = CurrentExecStats()) {
    for (const ExecStats& w : slots) s->Add(w);
  }
}

}  // namespace

void PrewarmPatternIndexes(const xml::Document& doc,
                           const pattern::TreePattern& tp, PatternAlgo algo) {
  if (tp.root == nullptr) return;
  PrewarmSteps(doc, *tp.root);
  // The cost model reads the lazily-computed document statistics.
  doc.Stats();
  if (algo == PatternAlgo::kShredded || algo == PatternAlgo::kCostBased) {
    storage::NodeTable::For(doc);
  }
}

bool TryEvalPatternParallel(const pattern::TreePattern& tp,
                            const xdm::Sequence& context, PatternAlgo algo,
                            const ParallelContext& par,
                            Result<std::vector<BindingRow>>* out) {
  if (par.threads < 2 || !par.pool || tp.root == nullptr) return false;
  // kCostBased must be resolved by the caller (one algorithm across all
  // morsels); an unresolved choice is not morselizable.
  if (algo == PatternAlgo::kCostBased) return false;
  for (const xdm::Item& it : context) {
    // Non-node contexts carry TypeError semantics the sequential
    // algorithms own; keep them on the sequential path.
    if (!it.IsNode()) return false;
  }

  std::vector<const Node*> units;
  TreePattern self_tp;
  const TreePattern* eval_tp = &tp;

  if (context.size() >= static_cast<size_t>(par.min_fanout)) {
    // Strategy 1: the context itself is wide — contiguous ranges of it
    // become morsels and each runs the unmodified pattern.
    units.reserve(context.size());
    for (const xdm::Item& it : context) units.push_back(it.node());
  } else {
    // Strategy 2: root fan-out. Expand the root step's candidates from
    // the index, rewrite the pattern self-rooted, morselize candidates.
    const PatternNode& root = *tp.root;
    if (root.position != 0) return false;
    if (root.axis != Axis::kChild && root.axis != Axis::kDescendant &&
        root.axis != Axis::kDescendantOrSelf) {
      return false;
    }
    if (context.empty()) return false;
    const Document* doc = context.front().node()->doc;
    std::vector<const Node*> ctx;
    ctx.reserve(context.size());
    for (const xdm::Item& it : context) {
      if (it.node()->doc != doc) return false;  // index scans are per-doc
      ctx.push_back(it.node());
    }
    std::vector<const Node*> candidates =
        ExpandRootCandidates(root, std::move(ctx));
    if (candidates.size() < static_cast<size_t>(par.min_fanout)) return false;
    self_tp = tp.Clone();
    self_tp.root->axis = Axis::kSelf;  // candidates already match the test
    eval_tp = &self_tp;
    units = std::move(candidates);
  }

  // Clamp the fan-out to what the units can feed before sizing morsels
  // or the pool: a lazily-created pool is born at the clamped width, so
  // small-fan-out queries never pay for workers they cannot keep busy.
  ParallelContext eff = par;
  eff.threads = ClampParallelThreads(units.size(), par.threads, par.min_fanout);
  std::vector<MorselRange> morsels = PlanMorsels(units.size(), eff);
  if (morsels.size() < 2) return false;
  ThreadPool* pool = par.pool(eff.threads);
  if (pool == nullptr) return false;

  // Pre-warm every document the morsels touch, so workers only ever hit
  // the built (shared-lock) path of the lazy getters.
  std::vector<const Document*> docs;
  for (const Node* n : units) {
    if (std::find(docs.begin(), docs.end(), n->doc) == docs.end()) {
      docs.push_back(n->doc);
      PrewarmPatternIndexes(*n->doc, *eval_tp, algo);
    }
  }

  struct Part {
    Result<std::vector<BindingRow>> rows = std::vector<BindingRow>{};
  };
  std::vector<Part> parts(morsels.size());
  std::vector<ExecStats> stats_slots(morsels.size());
  g_parallel_evals.fetch_add(1, std::memory_order_relaxed);
  pool->Run(static_cast<int>(morsels.size()), [&](int m) {
    ScopedExecStats scope;  // per-morsel collection slot
    // Each worker morsel re-installs the query's governor: cancellation
    // is observed between morsels (the entry poll) and on the inner-loop
    // strides of the sequential algorithm it runs.
    ScopedGovernor governed(par.governor);
    // The "no interning mid-query" assert is per-thread (so plan-cache
    // fills may intern concurrently on other serving threads); each
    // worker re-establishes the freeze for its morsel's duration.
    std::optional<StringInterner::ExecutionFreeze> freeze;
    if (!docs.empty()) freeze.emplace(*docs.front()->interner());
    Part& part = parts[static_cast<size_t>(m)];
    Status entry = GovernorPoll();
#if XQTP_FAULT_INJECTION
    if (entry.ok()) entry = fault::Poll("exec.parallel.morsel");
#endif
    if (!entry.ok()) {
      // A tripped governor's verdict is sticky, so every skipped morsel
      // reports the same status: the pool drains cleanly without doing
      // the remaining work and no partial result leaks out.
      part.rows = std::move(entry);
      stats_slots[static_cast<size_t>(m)] = scope.stats();
      return;
    }
    const MorselRange& mr = morsels[static_cast<size_t>(m)];
    xdm::Sequence ctx;
    ctx.reserve(mr.end - mr.begin);
    for (size_t i = mr.begin; i < mr.end; ++i) {
      ctx.push_back(xdm::Item(units[i]));
    }
    part.rows = EvalPatternSequential(*eval_tp, ctx, algo);
    stats_slots[static_cast<size_t>(m)] = scope.stats();
  });
  MergeWorkerStats(stats_slots);

  // Error determinism: the lowest morsel's error is the one the
  // sequential evaluation would have hit first.
  for (Part& p : parts) {
    if (!p.rows.ok()) {
      *out = p.rows.status();
      return true;
    }
  }
  std::vector<std::vector<BindingRow>> runs;
  runs.reserve(parts.size());
  for (Part& p : parts) runs.push_back(std::move(p.rows).value());
  *out = MergeSortedRuns(std::move(runs));
  return true;
}

PatternBatchBuilder::PatternBatchBuilder(const TupleBatch& in)
    : in_(in), broadcast_(in.rows() == 1) {
  if (!broadcast_) {
    cols_.reserve(in.column_count());
    for (size_t c = 0; c < in.column_count(); ++c) {
      cols_.push_back(
          Col{in.columns()[c].column->field, static_cast<int>(c), {}});
    }
  }
}

PatternBatchBuilder::Col* PatternBatchBuilder::FindCol(Symbol field) {
  for (Col& c : cols_) {
    if (c.field == field) return &c;
  }
  return nullptr;
}

void PatternBatchBuilder::EnsureBindingColumn(Symbol field, size_t row) {
  if (FindCol(field) != nullptr) return;
  Col col;
  col.field = field;
  col.src = -1;
  if (broadcast_) {
    // A binding that overwrites an input field forces that column off the
    // shared path: materialize it (the copy-on-write "write"), keeping
    // the input value as the per-row default exactly like Tuple::Set.
    for (size_t c = 0; c < in_.column_count(); ++c) {
      if (in_.columns()[c].column->field == field) {
        col.src = static_cast<int>(c);
        break;
      }
    }
  }
  col.values.assign(rows_, col.src >= 0
                               ? in_.Value(in_.columns()[col.src], row)
                               : xdm::Sequence{});
  cols_.push_back(std::move(col));
}

void PatternBatchBuilder::Add(size_t row, const BindingRow& brow) {
  for (const auto& [sym, node] : brow.fields) EnsureBindingColumn(sym, row);
  for (Col& c : cols_) {
    if (c.src >= 0) {
      c.values.push_back(in_.Value(in_.columns()[c.src], row));
    } else {
      c.values.emplace_back();
    }
  }
  for (const auto& [sym, node] : brow.fields) {
    FindCol(sym)->values.back() = xdm::Sequence{xdm::Item(node)};
  }
  ++rows_;
}

TupleBatch PatternBatchBuilder::Finish() {
  TupleBatch out(rows_);
  if (broadcast_) {
    for (size_t c = 0; c < in_.column_count(); ++c) {
      const TupleBatch::BoundColumn& bc = in_.columns()[c];
      if (FindCol(bc.column->field) != nullptr) continue;  // overwritten
      if (bc.column->values.size() == 1) {
        // The input column has exactly one physical value — share it.
        out.AddBroadcastColumn(bc.column);
      } else {
        // Single logical row selected out of a wider column: one copy of
        // one value, still broadcast to every output row.
        TupleColumn one;
        one.field = bc.column->field;
        one.values.push_back(in_.Value(bc, 0));
        out.AddBroadcastColumn(MakeColumn(std::move(one)));
      }
    }
  }
  for (Col& c : cols_) {
    TupleColumn col;
    col.field = c.field;
    col.values = std::move(c.values);
    out.AddOwnedColumn(std::move(col));
  }
  CountTuplesMaterialized(static_cast<int64_t>(rows_));
  return out;
}

Result<TupleBatch> EvalPatternTuplesParallel(const pattern::TreePattern& tp,
                                             const TupleBatch& in,
                                             PatternAlgo algo,
                                             const ParallelContext& par) {
  // Pre-warm every document reachable from the input rows' context field
  // before fanning out. One Find per batch, not one Get per row.
  const TupleBatch::BoundColumn* ctx_col = in.Find(tp.input_field);
  std::vector<const Document*> docs;
  if (ctx_col != nullptr) {
    for (size_t i = 0; i < in.rows(); ++i) {
      for (const xdm::Item& it : in.Value(*ctx_col, i)) {
        if (!it.IsNode()) continue;
        if (std::find(docs.begin(), docs.end(), it.node()->doc) ==
            docs.end()) {
          docs.push_back(it.node()->doc);
          PrewarmPatternIndexes(*it.node()->doc, tp, algo);
        }
      }
    }
  }

  ParallelContext eff = par;
  eff.threads = ClampParallelThreads(in.rows(), par.threads, par.min_fanout);
  std::vector<MorselRange> morsels = PlanMorsels(in.rows(), eff);
  ThreadPool* pool = par.pool ? par.pool(eff.threads) : nullptr;
  struct Part {
    Result<TupleBatch> batch = TupleBatch{};
  };
  std::vector<Part> parts(morsels.size());
  std::vector<ExecStats> stats_slots(morsels.size());
  auto run_morsel = [&](int m) {
    ScopedExecStats scope;
    ScopedGovernor governed(par.governor);
    std::optional<StringInterner::ExecutionFreeze> freeze;
    if (!docs.empty()) freeze.emplace(*docs.front()->interner());
    const MorselRange& mr = morsels[static_cast<size_t>(m)];
    // Workers only READ the shared input batch (immutable columns) and
    // write into their own builder — no synchronization beyond the pool's.
    PatternBatchBuilder builder(in);
    Status err = GovernorPoll();  // observe cancellation between morsels
#if XQTP_FAULT_INJECTION
    if (err.ok()) err = fault::Poll("exec.parallel.morsel");
#endif
    if (err.ok() && ctx_col == nullptr) {
      err = Status::Internal(
          "TupleTreePattern input tuple lacks the context field");
    }
    for (size_t i = mr.begin; i < mr.end && err.ok(); ++i) {
      // par == nullptr: tuple-level workers must not nest into the pool
      // (ThreadPool::Run is non-reentrant). EvalPattern still counts one
      // pattern evaluation per row, exactly like the sequential loop.
      Result<std::vector<BindingRow>> rows =
          EvalPattern(tp, in.Value(*ctx_col, i), algo, nullptr);
      if (!rows.ok()) {
        err = rows.status();
        break;
      }
      for (const BindingRow& row : *rows) builder.Add(i, row);
    }
    parts[static_cast<size_t>(m)].batch =
        err.ok() ? Result<TupleBatch>(builder.Finish())
                 : Result<TupleBatch>(std::move(err));
    stats_slots[static_cast<size_t>(m)] = scope.stats();
  };
  if (pool != nullptr && morsels.size() >= 2) {
    g_parallel_evals.fetch_add(1, std::memory_order_relaxed);
    pool->Run(static_cast<int>(morsels.size()), run_morsel);
  } else {
    for (size_t m = 0; m < morsels.size(); ++m) {
      run_morsel(static_cast<int>(m));
    }
  }
  MergeWorkerStats(stats_slots);

  for (Part& p : parts) {
    if (!p.batch.ok()) return p.batch.status();
  }
  // Concatenate in input-row order. Each morsel's columns are uniquely
  // owned, so Append moves the sequences; empty morsel batches (no
  // matches in the range) are skipped inside Append.
  TupleBatch out;
  for (Part& p : parts) out.Append(std::move(p.batch).value());
  return out;
}

}  // namespace xqtp::exec
