// Figure 6 of the paper: XMark path queries in which child steps are
// replaced by descendant steps without changing the result, per
// algorithm. Expected shape: SC and TJ handle the descendant forms
// gracefully (often better than the long child chains), NL does not win.
#include "bench_common.h"

namespace xqtp::bench {
namespace {

struct XmarkQuery {
  const char* name;
  const char* child_form;
  const char* desc_form;
};

constexpr XmarkQuery kQueries[] = {
    {"XM-name", "$input/site/people/person/name", "$input//person//name"},
    {"XM-increase",
     "$input/site/open_auctions/open_auction/bidder/increase",
     "$input//open_auction//increase"},
    {"XM-price", "$input/site/closed_auctions/closed_auction/price",
     "$input//closed_auction//price"},
    {"XM-location", "$input/site/regions/*/item/location",
     "$input//item//location"},
    {"XM-interest",
     "$input/site/people/person[emailaddress]/profile/interest",
     "$input//person[emailaddress]//interest"},
};

const xml::Document& Doc() { return XmarkDoc("xmark_fig6", 0.2); }

void Register() {
  for (const XmarkQuery& q : kQueries) {
    for (bool descendant : {false, true}) {
      for (exec::PatternAlgo algo :
           {exec::PatternAlgo::kNLJoin, exec::PatternAlgo::kTwig,
            exec::PatternAlgo::kStaircase}) {
        std::string name = std::string("Fig6/") + q.name +
                           (descendant ? "/descendant/" : "/child/") +
                           AlgoTag(algo);
        std::string query = descendant ? q.desc_form : q.child_form;
        benchmark::RegisterBenchmark(
            name.c_str(),
            [query, algo](benchmark::State& state) {
              RunQueryBenchmark(state, query, Doc(), algo);
            })
            ->Unit(benchmark::kMillisecond);
      }
    }
  }
}

}  // namespace
}  // namespace xqtp::bench

int main(int argc, char** argv) {
  xqtp::bench::Register();
  return xqtp::bench::BenchMain(argc, argv);
}
