#include "xml/index.h"

#include <algorithm>

namespace xqtp::xml {

TagStream::TagStream(const Document& doc, Symbol tag)
    : nodes_(tag == kInvalidSymbol ? &doc.AllElements()
                                   : &doc.ElementsByTag(tag)) {}

void TagStream::SkipToPreAfter(int32_t pre) {
  auto it = std::upper_bound(
      nodes_->begin() + static_cast<ptrdiff_t>(pos_), nodes_->end(), pre,
      [](int32_t value, const Node* n) { return value < n->pre; });
  pos_ = static_cast<size_t>(it - nodes_->begin());
}

}  // namespace xqtp::xml
