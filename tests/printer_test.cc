// Golden tests for the Core and algebra printers — the notations the
// paper uses (and that the plan-equality experiments depend on).
#include <gtest/gtest.h>

#include "algebra/compile.h"
#include "algebra/optimize.h"
#include "algebra/printer.h"
#include "core/normalize.h"
#include "core/printer.h"
#include "core/rewrite.h"
#include "engine/engine.h"
#include "xquery/parser.h"

namespace xqtp {
namespace {

class PrinterTest : public ::testing::Test {
 protected:
  void Compile(const std::string& q) {
    auto surface = xquery::ParseQuery(q, &interner_);
    ASSERT_TRUE(surface.ok()) << surface.status().ToString();
    vars_ = core::VarTable();
    auto c = core::Normalize(**surface, &vars_);
    ASSERT_TRUE(c.ok()) << c.status().ToString();
    normalized_ = core::Clone(**c);
    core::RewriteOptions ropts;
    ropts.verify = true;  // the Core verifier runs even in Release builds
    auto r = core::RewriteToTPNF(std::move(c).value(), &vars_, ropts);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    rewritten_ = std::move(r).value();
  }

  StringInterner interner_;
  core::VarTable vars_;
  core::CoreExprPtr normalized_;
  core::CoreExprPtr rewritten_;
};

TEST_F(PrinterTest, CorePrinterMatchesPaperStyle) {
  Compile("$d//person[emailaddress]/name");
  std::string s = core::ToString(*rewritten_, vars_, interner_);
  EXPECT_EQ(s,
            "ddo(for $dot in (for $dot in (for $dot in $d return "
            "descendant::person) where child::emailaddress return $dot) "
            "return child::name)");
}

TEST_F(PrinterTest, VerboseModeShowsUniqueVariables) {
  Compile("$d/a/b");
  core::PrintOptions opts;
  opts.verbose = true;
  std::string s = core::ToString(*rewritten_, vars_, interner_, opts);
  // Unique ids visible and step contexts explicit.
  EXPECT_NE(s.find("$dot_"), std::string::npos) << s;
  EXPECT_NE(s.find("/child::a"), std::string::npos) << s;
}

TEST_F(PrinterTest, TypeswitchPrinting) {
  Compile("$d/a[1]");
  std::string s = core::ToString(*normalized_, vars_, interner_);
  EXPECT_NE(s.find("typeswitch (1) case $v as numeric() return "
                   "$position = $v default $v return fn:boolean($v)"),
            std::string::npos)
      << s;
}

TEST_F(PrinterTest, PrettyPlanIsIndented) {
  engine::Engine e;
  auto cq = e.Compile("$d//person[emailaddress]/name");
  ASSERT_TRUE(cq.ok());
  std::string pretty =
      algebra::ToPrettyString(cq->optimized(), cq->vars(), *e.interner());
  // Multi-line with two-space indentation.
  EXPECT_NE(pretty.find("(\n  TupleTreePattern"), std::string::npos)
      << pretty;
  // Flat rendering of the same plan has no newlines.
  std::string flat =
      algebra::ToString(cq->optimized(), cq->vars(), *e.interner());
  EXPECT_EQ(flat.find('\n'), std::string::npos);
}

TEST_F(PrinterTest, OperatorNames) {
  engine::Engine e;
  engine::CompileOptions opts;
  opts.detect_tree_patterns = false;
  auto cq = e.Compile("$d//person[1]", opts);
  ASSERT_TRUE(cq.ok());
  std::string s =
      algebra::ToString(cq->optimized(), cq->vars(), *e.interner());
  EXPECT_NE(s.find("fs:ddo("), std::string::npos) << s;
  EXPECT_NE(s.find("TreeJoin[descendant-or-self::node()]"),
            std::string::npos)
      << s;
  EXPECT_NE(s.find("ForEach[$dot at $position]"), std::string::npos) << s;
}

TEST_F(PrinterTest, ArithAndComparisonRendering) {
  Compile("1 + 2 * 3 = 7");
  std::string s = core::ToString(*rewritten_, vars_, interner_);
  EXPECT_EQ(s, "(1 + (2 * 3)) = 7");
}

TEST_F(PrinterTest, PatternGrammarRendering) {
  engine::Engine e;
  engine::CompileOptions opts;
  opts.positional_patterns = true;
  auto cq = e.Compile("$d//t01[1][t02]/t03", opts);
  ASSERT_TRUE(cq.ok());
  std::string s =
      algebra::ToString(cq->optimized(), cq->vars(), *e.interner());
  // position renders inline, predicate branch after the output field.
  EXPECT_NE(s.find("child::t01[1]"), std::string::npos) << s;
  EXPECT_NE(s.find("[child::t02]"), std::string::npos) << s;
}

}  // namespace
}  // namespace xqtp
