// The tuple algebra of Re/Siméon/Fernández (ICDE'06) extended with the
// paper's TupleTreePattern operator.
//
// Two plan "sorts" coexist, as in the paper:
//  - item plans produce XDM sequences (TreeJoin, ddo, function calls, ...);
//  - tuple plans produce tuple sequences (MapFromItem, Select,
//    TupleTreePattern, ...).
// MapToItem / MapFromItem convert between them. Dependent sub-plans
// (written {...} in the paper) are evaluated once per input tuple or item,
// with IN denoting the current tuple (kFieldAccess / kInputTuple) or the
// current item (kInputItem).
//
// Out-of-fragment Core expressions (general FLWOR over non-linear scopes,
// positional loops, typeswitch) compile into scoped operators (kForEach /
// kLetIn / kScopedVar ...) — the "intermediate maps" the paper leaves in
// place around detected patterns.
#ifndef XQTP_ALGEBRA_OPS_H_
#define XQTP_ALGEBRA_OPS_H_

#include <memory>
#include <vector>

#include "core/ast.h"
#include "pattern/tree_pattern.h"
#include "xdm/axis.h"
#include "xdm/item.h"

namespace xqtp::algebra {

enum class OpKind : uint8_t {
  // ---- tuple plans ----
  kMapFromItem,      ///< MapFromItem{[field : dep]}(inputs[0]) — one tuple
                     ///< per item of the item-plan input
  kSelect,           ///< Select{dep}(inputs[0]) — EBV filter over tuples
  kTupleTreePattern, ///< TupleTreePattern[tp](inputs[0])
  kInputTuple,       ///< IN as a tuple plan (the current tuple, once)

  // ---- item plans ----
  kMapToItem,        ///< MapToItem{dep}(inputs[0]) — concat dep over tuples
  kTreeJoin,         ///< TreeJoin[axis::test](inputs[0]) — navigational step
  kDdo,              ///< fs:distinct-doc-order(inputs[0])
  kConst,            ///< literal
  kGlobalVar,        ///< a query global ($d, $input)
  kInputItem,        ///< IN as an item plan (the current item)
  kFieldAccess,      ///< IN#field of the current tuple
  kFnCall,           ///< fn:boolean / fn:count / ...
  kCompare,
  kArith,
  kAnd,
  kOr,
  kSequence,         ///< concatenation of inputs
  kIf,               ///< if (inputs[0]) then inputs[1] else inputs[2]

  // ---- scoped item plans (outside the tuple fragment) ----
  kForEach,          ///< for var (at pos_var) in inputs[0]
                     ///< (where dep2)? return dep
  kLetIn,            ///< let var := inputs[0] return dep
  kScopedVar,        ///< reference to a kForEach / kLetIn variable
  kTypeswitch,       ///< typeswitch(inputs[0]) case numeric() as var
                     ///< return dep default pos_var return dep2
};

/// True for operators producing tuple sequences.
bool IsTuplePlan(OpKind kind);

struct Op;
using OpPtr = std::unique_ptr<Op>;

/// Facts the optimizer's property inference proved about an item plan's
/// output, stamped onto the plan so debug/sanitizer evaluators can assert
/// them at runtime (exec::EvalOptions::check_inferred_props). Plain data on
/// purpose: ops.h must not depend on src/analysis. A claim is only stamped
/// when the analyzer proved the output is nodes-only (ordered/dup_free) or
/// derived a non-trivial interval, so the checker treats any violation —
/// including a non-node item under an order claim — as an inference bug.
struct PropsClaims {
  bool ordered = false;    ///< output sequence is in document order
  bool dup_free = false;   ///< output sequence has no duplicate nodes
  int64_t card_lo = 0;     ///< inferred minimum output length
  int64_t card_hi = -1;    ///< inferred maximum output length (-1 = ⊤)

  bool Any() const {
    return ordered || dup_free || card_lo > 0 || card_hi >= 0;
  }
};

/// One algebra operator. Active fields depend on `kind`.
struct Op {
  OpKind kind;

  /// Independent input sub-plans (evaluated in the parent's context).
  std::vector<OpPtr> inputs;
  /// Dependent sub-plans (evaluated per input tuple/item).
  OpPtr dep;
  OpPtr dep2;

  Symbol field = kInvalidSymbol;      ///< kMapFromItem / kFieldAccess
  pattern::TreePattern tp;            ///< kTupleTreePattern
  Axis axis = Axis::kChild;           ///< kTreeJoin
  NodeTest test;                      ///< kTreeJoin
  xdm::Item literal;                  ///< kConst
  core::VarId var = core::kNoVar;     ///< kGlobalVar / kForEach / kLetIn /
                                      ///< kScopedVar / kTypeswitch case var
  core::VarId pos_var = core::kNoVar; ///< kForEach positional var /
                                      ///< kTypeswitch default var
  core::CoreFn fn = core::CoreFn::kBoolean;     ///< kFnCall
  xdm::CompareOp cmp_op = xdm::CompareOp::kEq;  ///< kCompare
  xdm::ArithOp arith_op = xdm::ArithOp::kAdd;   ///< kArith

  /// Core ODF facts for the expression this operator was compiled from
  /// (core::PackOdfCache bits), stamped by algebra::Compile. Seeds the
  /// plan-property analyzer (analysis/plan_props.*) with order knowledge
  /// the tuple algebra cannot re-derive locally. Zero = no information.
  uint8_t odf_seed = 0;

  /// Runtime-checkable facts proved by the property analyzer; stamped by
  /// the optimizer after the final verification checkpoint.
  PropsClaims props;

  explicit Op(OpKind k) : kind(k) {}
};

OpPtr MakeOp(OpKind k);
OpPtr Clone(const Op& op);

/// Structural statistics used by tests and the ablation bench.
struct PlanStats {
  int tree_pattern_ops = 0;   ///< number of TupleTreePattern operators
  int tree_join_ops = 0;      ///< number of navigational TreeJoin operators
  int map_ops = 0;            ///< MapToItem + MapFromItem
  int scoped_ops = 0;         ///< ForEach / LetIn
  int max_pattern_steps = 0;  ///< steps in the largest detected pattern
  int ddo_ops = 0;
};

PlanStats ComputeStats(const Op& plan);

}  // namespace xqtp::algebra

#endif  // XQTP_ALGEBRA_OPS_H_
