# Empty compiler generated dependencies file for bench_selective.
# This may be replaced when dependencies are built.
