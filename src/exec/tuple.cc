#include "exec/tuple.h"

namespace xqtp::exec {

void Tuple::Set(Symbol field, xdm::Sequence value) {
  for (auto& [f, v] : fields_) {
    if (f == field) {
      v = std::move(value);
      return;
    }
  }
  fields_.emplace_back(field, std::move(value));
}

const xdm::Sequence* Tuple::Get(Symbol field) const {
  for (const auto& [f, v] : fields_) {
    if (f == field) return &v;
  }
  return nullptr;
}

}  // namespace xqtp::exec
