file(REMOVE_RECURSE
  "CMakeFiles/xmark_analytics.dir/xmark_analytics.cpp.o"
  "CMakeFiles/xmark_analytics.dir/xmark_analytics.cpp.o.d"
  "xmark_analytics"
  "xmark_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmark_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
