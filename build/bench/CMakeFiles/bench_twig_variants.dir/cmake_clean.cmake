file(REMOVE_RECURSE
  "CMakeFiles/bench_twig_variants.dir/bench_twig_variants.cc.o"
  "CMakeFiles/bench_twig_variants.dir/bench_twig_variants.cc.o.d"
  "bench_twig_variants"
  "bench_twig_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_twig_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
