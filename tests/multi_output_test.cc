// Tests for the multi-variable ("generalized") tree-pattern extension —
// the paper's primary future-work item. Rule (d') merges cascades into a
// single multi-output pattern whose Section 4.1 lexical-order semantics
// reproduce the cascade exactly, including the cases where single-output
// merging is forbidden (query Q5).
#include <gtest/gtest.h>

#include "algebra/printer.h"
#include "engine/engine.h"
#include "workload/member_gen.h"

namespace xqtp {
namespace {

class MultiOutputTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto doc = engine_.LoadDocument(
        "d",
        "<doc><person><emailaddress/>"
        "<person><emailaddress/><name>inner</name></person>"
        "<name>outer</name></person>"
        "<person><name>plain</name></person></doc>");
    ASSERT_TRUE(doc.ok()) << doc.status().ToString();
    doc_ = doc.value();
    opts_.multi_output_patterns = true;
  }

  std::vector<std::string> Eval(const std::string& q,
                                const engine::CompileOptions& o) {
    auto cq = engine_.Compile(q, o);
    EXPECT_TRUE(cq.ok()) << q << ": " << cq.status().ToString();
    engine::Engine::GlobalMap globals{{"d", {xdm::Item(doc_->root())}}};
    auto res = engine_.Execute(*cq, globals, exec::PatternAlgo::kNLJoin);
    EXPECT_TRUE(res.ok()) << q << ": " << res.status().ToString();
    std::vector<std::string> out;
    if (res.ok()) {
      for (const xdm::Item& it : *res) out.push_back(it.StringValue());
    }
    return out;
  }

  engine::Engine engine_;
  const xml::Document* doc_;
  engine::CompileOptions opts_;
};

TEST_F(MultiOutputTest, Q5MergesIntoOneGeneralizedPattern) {
  const std::string q5 =
      "for $x in $d//person[emailaddress] return $x/name";
  auto cq = engine_.Compile(q5, opts_);
  ASSERT_TRUE(cq.ok());
  EXPECT_EQ(cq->Stats().tree_pattern_ops, 1);
  std::string p = algebra::ToString(cq->optimized(), cq->vars(),
                                    *engine_.interner());
  // The intermediate person binding stays annotated.
  EXPECT_NE(p.find("descendant::person{dot}[child::emailaddress]/"
                   "child::name{out}"),
            std::string::npos)
      << p;
}

TEST_F(MultiOutputTest, Q5OrderSemanticsPreserved) {
  const std::string q5 =
      "for $x in $d//person[emailaddress] return $x/name";
  // Person-major order (outer person first), NOT document order of the
  // name nodes.
  std::vector<std::string> merged = Eval(q5, opts_);
  std::vector<std::string> cascade = Eval(q5, engine::CompileOptions{});
  EXPECT_EQ(merged, cascade);
  EXPECT_EQ(merged, (std::vector<std::string>{"outer", "inner"}));
  // Q1a still gives document order under the extension.
  std::vector<std::string> q1a = Eval("$d//person[emailaddress]/name", opts_);
  EXPECT_EQ(q1a, (std::vector<std::string>{"inner", "outer"}));
}

TEST_F(MultiOutputTest, EveryAlgorithmAgreesViaFallback) {
  const std::string q5 =
      "for $x in $d//person[emailaddress] return $x/name";
  auto cq = engine_.Compile(q5, opts_);
  ASSERT_TRUE(cq.ok());
  engine::Engine::GlobalMap globals{{"d", {xdm::Item(doc_->root())}}};
  auto ref = engine_.Execute(*cq, globals, exec::PatternAlgo::kNLJoin);
  ASSERT_TRUE(ref.ok());
  for (auto algo : {exec::PatternAlgo::kStaircase, exec::PatternAlgo::kTwig,
                    exec::PatternAlgo::kStream, exec::PatternAlgo::kTwigStack,
                    exec::PatternAlgo::kShredded}) {
    auto res = engine_.Execute(*cq, globals, algo);
    ASSERT_TRUE(res.ok()) << exec::PatternAlgoName(algo);
    ASSERT_EQ(res->size(), ref->size()) << exec::PatternAlgoName(algo);
    for (size_t i = 0; i < res->size(); ++i) {
      EXPECT_TRUE((*res)[i] == (*ref)[i]) << exec::PatternAlgoName(algo);
    }
  }
}

TEST_F(MultiOutputTest, ThreeStageCascadesMergeToo) {
  const std::string q =
      "for $x in $d//person[emailaddress] return "
      "for $y in $x/person return $y/name";
  auto cq = engine_.Compile(q, opts_);
  ASSERT_TRUE(cq.ok());
  EXPECT_EQ(cq->Stats().tree_pattern_ops, 1);
  EXPECT_EQ(Eval(q, opts_), Eval(q, engine::CompileOptions{}));
  EXPECT_EQ(Eval(q, opts_), (std::vector<std::string>{"inner"}));
}

TEST_F(MultiOutputTest, RandomizedEquivalenceOnMember) {
  engine::Engine e2;
  workload::MemberParams mp;
  mp.node_count = 4000;
  mp.max_depth = 6;
  mp.num_tags = 6;
  const xml::Document* d =
      e2.AddDocument("m", workload::GenerateMember(mp, e2.interner()));
  engine::CompileOptions ext;
  ext.multi_output_patterns = true;
  const char* queries[] = {
      "for $x in $input//t01 return $x/t02",
      "for $x in $input//t01[t02] return $x//t03",
      "for $x in $input//t01 return for $y in $x//t02 return $y/t03",
      "for $x in $input//t04 return $x/t05/t06",
  };
  for (const char* q : queries) {
    auto cq_ref = e2.Compile(q);
    auto cq_ext = e2.Compile(q, ext);
    ASSERT_TRUE(cq_ref.ok() && cq_ext.ok()) << q;
    engine::Engine::GlobalMap globals{{"input", {xdm::Item(d->root())}}};
    auto ref = e2.Execute(*cq_ref, globals, exec::PatternAlgo::kStaircase);
    auto got = e2.Execute(*cq_ext, globals, exec::PatternAlgo::kNLJoin);
    ASSERT_TRUE(ref.ok() && got.ok()) << q;
    ASSERT_EQ(ref->size(), got->size()) << q;
    for (size_t i = 0; i < ref->size(); ++i) {
      EXPECT_TRUE((*ref)[i] == (*got)[i]) << q << " item " << i;
    }
  }
}

TEST_F(MultiOutputTest, DefaultModeUnchanged) {
  auto cq = engine_.Compile(
      "for $x in $d//person[emailaddress] return $x/name");
  ASSERT_TRUE(cq.ok());
  EXPECT_EQ(cq->Stats().tree_pattern_ops, 2);  // the paper's Q5 treatment
}

}  // namespace
}  // namespace xqtp
