// Tests for the positional tree-pattern extension (the paper's first
// future-work item): with positional_patterns on, constant positional
// predicates fold into pattern steps (rule (g) + pipeline re-rooting),
// producing single-TupleTreePattern plans for queries like Q3 — with
// unchanged semantics across every algorithm.
#include <gtest/gtest.h>

#include "algebra/printer.h"
#include "engine/engine.h"
#include "workload/member_gen.h"

namespace xqtp {
namespace {

class PositionalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto doc = engine_.LoadDocument(
        "d",
        "<doc>"
        "<person><emailaddress/><name>Ann</name></person>"
        "<person><name>Bob</name></person>"
        "<person><emailaddress/><name>Cid</name></person>"
        "<nest><person><name>Dee</name></person></nest>"
        "</doc>");
    ASSERT_TRUE(doc.ok()) << doc.status().ToString();
    doc_ = doc.value();
    opts_.positional_patterns = true;
  }

  /// Results with the extension, cross-checked against every algorithm
  /// and against the paper-mode plan.
  std::vector<std::string> Eval(const std::string& q) {
    auto ext = engine_.Compile(q, opts_);
    EXPECT_TRUE(ext.ok()) << q << ": " << ext.status().ToString();
    auto ref_cq = engine_.Compile(q);  // paper-mode
    EXPECT_TRUE(ref_cq.ok());
    engine::Engine::GlobalMap globals{{"d", {xdm::Item(doc_->root())}}};
    auto ref = engine_.Execute(*ref_cq, globals, exec::PatternAlgo::kNLJoin);
    EXPECT_TRUE(ref.ok()) << ref.status().ToString();
    std::vector<std::string> expected;
    for (const xdm::Item& it : *ref) expected.push_back(it.StringValue());
    for (auto algo : {exec::PatternAlgo::kNLJoin, exec::PatternAlgo::kStaircase,
                      exec::PatternAlgo::kTwig, exec::PatternAlgo::kStream,
                      exec::PatternAlgo::kTwigStack,
                      exec::PatternAlgo::kShredded}) {
      auto res = engine_.Execute(*ext, globals, algo);
      EXPECT_TRUE(res.ok()) << q << ": " << res.status().ToString();
      if (!res.ok()) continue;
      std::vector<std::string> values;
      for (const xdm::Item& it : *res) values.push_back(it.StringValue());
      EXPECT_EQ(values, expected)
          << q << " [" << exec::PatternAlgoName(algo) << "]";
    }
    return expected;
  }

  int PatternOps(const std::string& q) {
    auto cq = engine_.Compile(q, opts_);
    EXPECT_TRUE(cq.ok()) << q;
    return cq.ok() ? cq->Stats().tree_pattern_ops : -1;
  }

  std::string Plan(const std::string& q) {
    auto cq = engine_.Compile(q, opts_);
    EXPECT_TRUE(cq.ok()) << q;
    return cq.ok() ? algebra::ToString(cq->optimized(), cq->vars(),
                                       *engine_.interner())
                   : "";
  }

  engine::Engine engine_;
  const xml::Document* doc_;
  engine::CompileOptions opts_;
};

TEST_F(PositionalTest, Q3BecomesASinglePattern) {
  std::string p = Plan("$d//person[1]/name");
  EXPECT_EQ(p,
            "MapToItem{IN#out}"
            "(TupleTreePattern[IN#dot/descendant-or-self::node()/"
            "child::person[1]/child::name{out}]"
            "(MapFromItem{[dot : IN]}($d)))");
  EXPECT_EQ(PatternOps("$d//person[1]/name"), 1);
  EXPECT_EQ(Eval("$d//person[1]/name"),
            (std::vector<std::string>{"Ann", "Dee"}));
}

TEST_F(PositionalTest, PositionCountsPerParentBinding) {
  // //person[1] is the first person *per parent*, not globally: the
  // nested <nest> contributes its own first person (Dee).
  EXPECT_EQ(Eval("$d//person[2]/name"), (std::vector<std::string>{"Bob"}));
  EXPECT_EQ(Eval("$d/doc/person[3]/name"),
            (std::vector<std::string>{"Cid"}));
  EXPECT_TRUE(Eval("$d/doc/person[4]/name").empty());
}

TEST_F(PositionalTest, DeepPositionalChainsMerge) {
  // The Section 5.3 query shape collapses into one pattern.
  EXPECT_EQ(PatternOps("$d/doc/person[1]/name[1]"), 1);
  std::string p = Plan("$d/doc/person[1]/name[1]");
  EXPECT_NE(p.find("child::person[1]/child::name[1]"), std::string::npos)
      << p;
  EXPECT_EQ(Eval("$d/doc/person[1]/name[1]"),
            (std::vector<std::string>{"Ann"}));
}

TEST_F(PositionalTest, PositionBeforeValuePredicates) {
  // [emailaddress][2] filters first, then indexes: NOT expressible as a
  // positional step (position counts raw matches) — the loop must stay.
  auto cq = engine_.Compile("$d//person[emailaddress][2]/name", opts_);
  ASSERT_TRUE(cq.ok());
  EXPECT_EQ(Eval("$d//person[emailaddress][2]/name"),
            (std::vector<std::string>{"Cid"}));
  // And the reverse order indexes first, then filters.
  EXPECT_EQ(Eval("$d//person[2][emailaddress]/name"),
            (std::vector<std::string>{}));
}

TEST_F(PositionalTest, PositionLastStaysOutside) {
  // position() = last() is not a constant position: no folding.
  auto cq = engine_.Compile("$d/doc/person[position() = last()]/name", opts_);
  ASSERT_TRUE(cq.ok());
  EXPECT_EQ(Eval("$d/doc/person[position() = last()]/name"),
            (std::vector<std::string>{"Cid"}));
}

TEST_F(PositionalTest, DefaultModeKeepsPaperPlans) {
  // Without the flag, Q3 keeps the maps of the paper.
  auto cq = engine_.Compile("$d//person[1]/name");
  ASSERT_TRUE(cq.ok());
  std::string p = algebra::ToString(cq->optimized(), cq->vars(),
                                    *engine_.interner());
  EXPECT_NE(p.find("ForEach"), std::string::npos) << p;
}

TEST_F(PositionalTest, RandomizedAgreementOnMember) {
  engine::Engine e2;
  workload::MemberParams mp;
  mp.node_count = 4000;
  mp.max_depth = 6;
  mp.num_tags = 6;
  const xml::Document* d =
      e2.AddDocument("m", workload::GenerateMember(mp, e2.interner()));
  engine::CompileOptions ext;
  ext.positional_patterns = true;
  const char* queries[] = {
      "$input//t01[1]", "$input//t02[2]/t03[1]", "$input/t01[1]//t04[3]",
      "$input//t05[1][t06]", "$input//t01[2]//t02[1]",
  };
  for (const char* q : queries) {
    auto cq_ref = e2.Compile(q);
    auto cq_ext = e2.Compile(q, ext);
    ASSERT_TRUE(cq_ref.ok() && cq_ext.ok()) << q;
    engine::Engine::GlobalMap globals{{"input", {xdm::Item(d->root())}}};
    auto ref = e2.Execute(*cq_ref, globals, exec::PatternAlgo::kNLJoin);
    ASSERT_TRUE(ref.ok()) << q;
    for (auto algo : {exec::PatternAlgo::kNLJoin, exec::PatternAlgo::kStaircase,
                      exec::PatternAlgo::kTwig, exec::PatternAlgo::kStream,
                      exec::PatternAlgo::kTwigStack,
                      exec::PatternAlgo::kShredded}) {
      auto res = e2.Execute(*cq_ext, globals, algo);
      ASSERT_TRUE(res.ok()) << q;
      ASSERT_EQ(res->size(), ref->size())
          << q << " [" << exec::PatternAlgoName(algo) << "]";
      for (size_t i = 0; i < res->size(); ++i) {
        EXPECT_TRUE((*res)[i] == (*ref)[i]) << q << " item " << i;
      }
    }
  }
}

}  // namespace
}  // namespace xqtp
