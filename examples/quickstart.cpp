// Quickstart: load a document, compile a query through the full pipeline,
// inspect the phases, and execute with each tree-pattern algorithm.
//
//   $ ./build/examples/quickstart
#include <cstdio>

#include "engine/engine.h"

int main() {
  xqtp::engine::Engine engine;

  // 1. Load a document.
  auto doc = engine.LoadDocument("people",
                                 "<site><people>"
                                 "<person><name>Ann</name>"
                                 "<emailaddress>ann@example.com</emailaddress>"
                                 "</person>"
                                 "<person><name>Bob</name></person>"
                                 "<person><name>Cid</name>"
                                 "<emailaddress>cid@example.com</emailaddress>"
                                 "</person>"
                                 "</people></site>");
  if (!doc.ok()) {
    std::fprintf(stderr, "load: %s\n", doc.status().ToString().c_str());
    return 1;
  }

  // 2. Compile the paper's running example (query Q1a).
  auto query = engine.Compile("$d//person[emailaddress]/name");
  if (!query.ok()) {
    std::fprintf(stderr, "compile: %s\n", query.status().ToString().c_str());
    return 1;
  }

  // 3. Inspect every compilation phase (normalization, TPNF' rewriting,
  //    algebra, tree-pattern detection).
  std::printf("%s\n", engine.Explain(*query).c_str());

  // 4. Execute with each physical tree-pattern algorithm.
  xqtp::engine::Engine::GlobalMap globals{
      {"d", {xqtp::xdm::Item(doc.value()->root())}}};
  for (auto algo : {xqtp::exec::PatternAlgo::kNLJoin,
                    xqtp::exec::PatternAlgo::kStaircase,
                    xqtp::exec::PatternAlgo::kTwig}) {
    auto result = engine.Execute(*query, globals, algo);
    if (!result.ok()) {
      std::fprintf(stderr, "execute: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("%-8s ->", xqtp::exec::PatternAlgoName(algo));
    for (const xqtp::xdm::Item& item : *result) {
      std::printf(" %s", item.StringValue().c_str());
    }
    std::printf("\n");
  }
  return 0;
}
