// MemBeR-style synthetic document generator: uniform random trees with a
// configurable node budget, depth bound and tag alphabet — the documents
// of the paper's Table 1 (depth 4, 100 uniformly distributed tags, 2.1 to
// 11 MB) and Section 5.3 (50,000 nodes, depth 15, single tag t1).
#ifndef XQTP_WORKLOAD_MEMBER_GEN_H_
#define XQTP_WORKLOAD_MEMBER_GEN_H_

#include <memory>

#include "xml/document.h"

namespace xqtp::workload {

struct MemberParams {
  /// Total number of element nodes.
  int node_count = 10000;
  /// Number of element levels (the root element is level 1); the
  /// generated tree always reaches this depth.
  int max_depth = 4;
  /// Tags t01..tNN, chosen uniformly.
  int num_tags = 100;
  /// Number of planted twig instances (chains t01/t02/t03/t04 plus the
  /// QE3 branch shape) so the paper's QE queries have matches on an
  /// otherwise uniform document. 0 disables planting.
  int plant_twigs = 0;
  uint64_t seed = 42;
};

/// Approximate serialized size in bytes of a document with `node_count`
/// elements (used to translate the paper's megabyte sizes into node
/// budgets).
size_t ApproxSerializedBytes(int node_count);

/// Node budget for a target serialized size in bytes.
int NodeCountForBytes(size_t bytes);

std::unique_ptr<xml::Document> GenerateMember(const MemberParams& params,
                                              StringInterner* interner);

}  // namespace xqtp::workload

#endif  // XQTP_WORKLOAD_MEMBER_GEN_H_
