// Rule-level unit tests for the algebraic optimizer: each of the paper's
// Figure 3 rewrites is exercised in isolation on a hand-built plan.
#include <gtest/gtest.h>

#include "algebra/optimize.h"
#include "algebra/printer.h"
#include "core/ast.h"

namespace xqtp::algebra {
namespace {

class OptimizeRulesTest : public ::testing::Test {
 protected:
  Symbol Sym(const char* s) { return interner_.Intern(s); }

  OpPtr GlobalVar(const char* name) {
    OpPtr op = MakeOp(OpKind::kGlobalVar);
    op->var = vars_.Global(name);
    return op;
  }
  OpPtr FieldAccess(const char* f) {
    OpPtr op = MakeOp(OpKind::kFieldAccess);
    op->field = Sym(f);
    return op;
  }
  OpPtr TreeJoin(Axis axis, const char* tag, OpPtr input) {
    OpPtr op = MakeOp(OpKind::kTreeJoin);
    op->axis = axis;
    op->test = NodeTest::Name(Sym(tag));
    op->inputs.push_back(std::move(input));
    return op;
  }
  OpPtr MapFromItem(const char* field, OpPtr input) {
    OpPtr op = MakeOp(OpKind::kMapFromItem);
    op->field = Sym(field);
    op->dep = MakeOp(OpKind::kInputItem);
    op->inputs.push_back(std::move(input));
    return op;
  }
  OpPtr MapToItem(OpPtr dep, OpPtr input) {
    OpPtr op = MakeOp(OpKind::kMapToItem);
    op->dep = std::move(dep);
    op->inputs.push_back(std::move(input));
    return op;
  }
  OpPtr Ddo(OpPtr input) {
    OpPtr op = MakeOp(OpKind::kDdo);
    op->inputs.push_back(std::move(input));
    return op;
  }
  OpPtr BoolFn(OpPtr input) {
    OpPtr op = MakeOp(OpKind::kFnCall);
    op->fn = core::CoreFn::kBoolean;
    op->inputs.push_back(std::move(input));
    return op;
  }
  OpPtr Select(OpPtr pred, OpPtr input) {
    OpPtr op = MakeOp(OpKind::kSelect);
    op->dep = std::move(pred);
    op->inputs.push_back(std::move(input));
    return op;
  }

  std::string Optimized(OpPtr plan) {
    OptimizeOptions opts;
    opts.verify = true;  // the plan verifier runs even in Release builds
    opts.vars = &vars_;
    Status st = Optimize(&plan, &interner_, opts);
    EXPECT_TRUE(st.ok()) << st.ToString();
    return ToString(*plan, vars_, interner_);
  }

  StringInterner interner_;
  core::VarTable vars_;
};

TEST_F(OptimizeRulesTest, RuleBMapToItemOverTreeJoin) {
  // MapToItem{TreeJoin[child::a](IN#dot)}(MapFromItem{[dot : IN]}($d))
  OpPtr plan = MapToItem(TreeJoin(Axis::kChild, "a", FieldAccess("dot")),
                         MapFromItem("dot", GlobalVar("d")));
  EXPECT_EQ(Optimized(std::move(plan)),
            "MapToItem{IN#out}"
            "(TupleTreePattern[IN#dot/child::a{out}]"
            "(MapFromItem{[dot : IN]}($d)))");
}

TEST_F(OptimizeRulesTest, RuleAInsidePredicate) {
  // Select{fn:boolean(TreeJoin[child::b](IN#dot))}(...) -> rule (a) then
  // rule (e) folds the predicate into the pattern.
  OpPtr inner = MapToItem(TreeJoin(Axis::kDescendant, "a", FieldAccess("dot")),
                          MapFromItem("dot", GlobalVar("d")));
  // Build Select over the would-be TTP: compose Select after the pattern
  // forms, by optimizing a full P1-style plan instead.
  OpPtr select =
      Select(BoolFn(TreeJoin(Axis::kChild, "b", FieldAccess("dot"))),
             MapFromItem("dot", std::move(inner)));
  OpPtr plan = Ddo(MapToItem(FieldAccess("dot"), std::move(select)));
  std::string s = Optimized(std::move(plan));
  EXPECT_NE(s.find("descendant::a{dot}[child::b]"), std::string::npos) << s;
  EXPECT_EQ(s.find("Select"), std::string::npos) << s;
  EXPECT_EQ(s.find("TreeJoin"), std::string::npos) << s;
}

TEST_F(OptimizeRulesTest, RuleDMergesAdjacentPatterns) {
  // ddo(MapToItem{TJ[child::b]}(MapFromItem(MapToItem{TJ[desc::a]}(...))))
  OpPtr lower = MapToItem(TreeJoin(Axis::kDescendant, "a", FieldAccess("dot")),
                          MapFromItem("dot", GlobalVar("d")));
  OpPtr upper = MapToItem(TreeJoin(Axis::kChild, "b", FieldAccess("dot")),
                          MapFromItem("dot", std::move(lower)));
  std::string s = Optimized(Ddo(std::move(upper)));
  EXPECT_EQ(s,
            "MapToItem{IN#out}"
            "(TupleTreePattern[IN#dot/descendant::a/child::b{out}]"
            "(MapFromItem{[dot : IN]}($d)))");
}

TEST_F(OptimizeRulesTest, RuleDGuardBlocksWithoutDdo) {
  // The same plan WITHOUT the surrounding ddo must keep two patterns
  // (descendant bindings are related; merging would change the order).
  OpPtr lower = MapToItem(TreeJoin(Axis::kDescendant, "a", FieldAccess("dot")),
                          MapFromItem("dot", GlobalVar("d")));
  OpPtr upper = MapToItem(TreeJoin(Axis::kChild, "b", FieldAccess("dot")),
                          MapFromItem("dot", std::move(lower)));
  std::string s = Optimized(std::move(upper));
  EXPECT_EQ(s.find("descendant::a/child::b"), std::string::npos) << s;
  // Two stacked patterns instead.
  EXPECT_NE(s.find("TupleTreePattern[IN#dot/child::b"), std::string::npos)
      << s;
  EXPECT_NE(s.find("TupleTreePattern[IN#dot/descendant::a{dot}]"),
            std::string::npos)
      << s;
}

TEST_F(OptimizeRulesTest, RuleDMergesChildChainsWithoutDdo) {
  // Child-only chains merge even without ddo (unrelated bindings).
  OpPtr lower = MapToItem(TreeJoin(Axis::kChild, "a", FieldAccess("dot")),
                          MapFromItem("dot", GlobalVar("d")));
  OpPtr upper = MapToItem(TreeJoin(Axis::kChild, "b", FieldAccess("dot")),
                          MapFromItem("dot", std::move(lower)));
  std::string s = Optimized(std::move(upper));
  EXPECT_NE(s.find("child::a/child::b{out}"), std::string::npos) << s;
}

TEST_F(OptimizeRulesTest, RuleFDropsDdoOnSingletonInput) {
  OpPtr plan = Ddo(MapToItem(TreeJoin(Axis::kDescendant, "a",
                                      FieldAccess("dot")),
                             MapFromItem("dot", GlobalVar("d"))));
  std::string s = Optimized(std::move(plan));
  EXPECT_EQ(s.rfind("fs:ddo", 0), std::string::npos) << s;
}

TEST_F(OptimizeRulesTest, DetectionOffLeavesPlanAlone) {
  OpPtr plan = MapToItem(TreeJoin(Axis::kChild, "a", FieldAccess("dot")),
                         MapFromItem("dot", GlobalVar("d")));
  std::string before = ToString(*plan, vars_, interner_);
  OptimizeOptions opts;
  opts.detect_tree_patterns = false;
  ASSERT_TRUE(Optimize(&plan, &interner_, opts).ok());
  EXPECT_EQ(ToString(*plan, vars_, interner_), before);
}

TEST_F(OptimizeRulesTest, NonPatternAxisIsNotLifted) {
  // parent:: steps never become patterns.
  OpPtr plan = MapToItem(TreeJoin(Axis::kParent, "a", FieldAccess("dot")),
                         MapFromItem("dot", GlobalVar("d")));
  std::string s = Optimized(std::move(plan));
  EXPECT_NE(s.find("TreeJoin[parent::a]"), std::string::npos) << s;
  EXPECT_EQ(s.find("TupleTreePattern"), std::string::npos) << s;
}

}  // namespace
}  // namespace xqtp::algebra
