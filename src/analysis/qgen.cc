#include "analysis/qgen.h"

#include "analysis/witness.h"

namespace xqtp::analysis {

QueryGen::QueryGen(uint64_t seed, const QGenOptions& opts)
    : opts_(opts), state_(seed ^ 0x5851f42d4c957f2dULL) {}

// splitmix64 — keeps Next() byte-deterministic across standard libraries.
uint64_t QueryGen::NextRand() {
  uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

int QueryGen::Range(int lo, int hi) {
  return lo + static_cast<int>(NextRand() % static_cast<uint64_t>(hi - lo + 1));
}

bool QueryGen::Chance(int percent) { return Range(1, 100) <= percent; }

std::string QueryGen::Tag() {
  const std::vector<std::string>& tags = WitnessCorpus::TagAlphabet();
  return tags[Range(0, static_cast<int>(tags.size()) - 1)];
}

std::string QueryGen::GenPredicate(int pred_depth) {
  // Existence-path predicates dominate: they are the shape the pattern
  // rules (e) fold into predicate branches.
  int roll = Range(1, 100);
  if (roll <= 45 || pred_depth <= 0) {
    std::string p = Tag();
    if (pred_depth > 0 && Chance(40)) {
      p += (Chance(50) ? "/" : "//") + Tag();
      if (pred_depth > 1 && Chance(30)) p += "[" + GenPredicate(0) + "]";
    }
    return p;
  }
  if (roll <= 55) return "@id";
  if (opts_.positional && roll <= 70) {
    return Chance(50) ? std::to_string(Range(1, 3))
                      : "position() = " + std::to_string(Range(1, 3));
  }
  if (opts_.value_preds && roll <= 90) {
    // Value comparison against the corpus's text/attribute values.
    std::string lhs = Chance(30) ? "@id" : Tag();
    const char* ops[] = {"=", "!=", "<", "<=", ">", ">="};
    std::string op = ops[Range(0, 5)];
    if (Chance(60)) {
      const char* vals[] = {"\"1\"", "\"2\"", "\"3\"", "\"x\"", "\"y\""};
      // Order comparisons on non-numeric strings are type errors in the
      // fragment; keep < <= > >= numeric-looking.
      int max_val = op == "=" || op == "!=" ? 4 : 2;
      return lhs + " " + op + " " + vals[Range(0, max_val)];
    }
    return lhs + " " + op + " " + std::to_string(Range(1, 3));
  }
  return Tag() + "[" + Tag() + "]";  // nested existence
}

std::string QueryGen::GenStep(int pred_depth) {
  std::string step = (Chance(65) ? "/" : "//") + Tag();
  if (Chance(35)) step += "[" + GenPredicate(pred_depth) + "]";
  if (Chance(8)) step += "[" + GenPredicate(pred_depth > 0 ? pred_depth - 1 : 0) + "]";
  return step;
}

std::string QueryGen::GenRelPath(int steps, int pred_depth) {
  std::string p;
  for (int i = 0; i < steps; ++i) p += GenStep(pred_depth);
  return p;
}

std::string QueryGen::GenPath() {
  std::string q = "$input";
  // Half the paths enter through the corpus root element /r, half jump
  // straight in with a descendant step.
  if (Chance(50)) q += "/r";
  int steps = Range(1, opts_.max_steps);
  q += GenRelPath(steps, opts_.max_pred_depth);
  if (Chance(10)) {
    // Final attribute step.
    q += "/@id";
  }
  return q;
}

std::string QueryGen::GenQuery() {
  int roll = Range(1, 100);
  if (roll <= 50 || !opts_.flwor) return GenPath();

  if (roll <= 80) {
    // FLWOR over a path prefix, the paper's Section 5.1 variant shape.
    std::string v = "v" + std::to_string(++var_counter_);
    bool has_pos = opts_.positional && Chance(15);
    std::string pv = "p" + std::to_string(var_counter_);
    std::string out = "for $" + v;
    if (has_pos) out += " at $" + pv;
    out += " in " + GenPath();
    if (Chance(40)) {
      std::string cond;
      int c = Range(1, 100);
      if (has_pos && c <= 30) {
        cond = "$" + pv + " <= " + std::to_string(Range(1, 3));
      } else if (c <= 60) {
        cond = "exists($" + v + GenRelPath(1, 1) + ")";
      } else if (opts_.value_preds && c <= 85) {
        cond = "$" + v + "/" + Tag() + " = \"" + std::to_string(Range(1, 3)) +
               "\"";
      } else {
        cond = "count($" + v + GenRelPath(1, 0) + ") >= " +
               std::to_string(Range(1, 2));
      }
      out += " where " + cond;
    }
    out += " return $" + v;
    if (Chance(60)) out += GenRelPath(Range(1, 2), 1);
    return out;
  }
  if (roll <= 88) {
    // let-bound path consumed by a loop or an aggregate.
    std::string v = "v" + std::to_string(++var_counter_);
    std::string out = "let $" + v + " := " + GenPath() + " return ";
    if (Chance(50)) {
      std::string w = "v" + std::to_string(++var_counter_);
      out += "for $" + w + " in $" + v + " return $" + w +
             GenRelPath(Range(0, 2), 1);
    } else {
      out += (Chance(50) ? "count($" : "exists($") + v + ")";
    }
    return out;
  }
  if (roll <= 94 && opts_.value_preds) {
    // Aggregate / existence call at the top.
    const char* fns[] = {"count", "exists", "empty", "boolean"};
    return std::string(fns[Range(0, 3)]) + "(" + GenPath() + ")";
  }
  // Conditional between two paths.
  return "if (exists(" + GenPath() + ")) then " + GenPath() + " else " +
         GenPath();
}

std::string QueryGen::Next() { return GenQuery(); }

}  // namespace xqtp::analysis
