#include "analysis/plan_props.h"

#include <algorithm>
#include <optional>

#include "core/odf.h"

namespace xqtp::analysis {

namespace {

using algebra::Op;
using algebra::OpKind;

int64_t SatAdd(int64_t a, int64_t b) {
  if (a == kCardTop || b == kCardTop) return kCardTop;
  if (a > kCardTop - b) return kCardTop;
  return a + b;
}

int64_t SatMul(int64_t a, int64_t b) {
  if (a == 0 || b == 0) return 0;
  if (a == kCardTop || b == kCardTop) return kCardTop;
  if (a > kCardTop / b) return kCardTop;
  return a * b;
}

}  // namespace

CardRange CardRange::Plus(const CardRange& o) const {
  return {SatAdd(lo, o.lo), SatAdd(hi, o.hi)};
}

CardRange CardRange::Times(const CardRange& o) const {
  return {SatMul(lo, o.lo), SatMul(hi, o.hi)};
}

CardRange CardRange::Union(const CardRange& o) const {
  return {std::min(lo, o.lo), std::max(hi, o.hi)};
}

const FieldProps* TupleProps::Field(Symbol s) const {
  auto it = fields.find(s);
  return it == fields.end() ? nullptr : &it->second;
}

bool TupleProps::IsKeyField(Symbol s) const {
  const FieldProps* f = Field(s);
  return f != nullptr && f->value.card.hi <= 1 && f->value.card.lo >= 1 &&
         f->seq_dup_free;
}

const OpProps* PlanProps::Lookup(const Op* op) const {
  auto it = by_op.find(op);
  return it == by_op.end() ? nullptr : &it->second;
}

const ItemProps* PlanProps::Item(const Op* op) const {
  const OpProps* p = Lookup(op);
  return (p != nullptr && !p->is_tuple) ? &p->item : nullptr;
}

const TupleProps* PlanProps::Tuple(const Op* op) const {
  const OpProps* p = Lookup(op);
  return (p != nullptr && p->is_tuple) ? &p->tuple : nullptr;
}

bool ProvenDdoRedundant(const ItemProps& p) {
  return p.ordered && p.dup_free && (p.nodes_only || p.card.hi <= 1);
}

bool ClaimsImplyDdoIdentity(const algebra::PropsClaims& claims) {
  // StampClaims only emits ordered/dup_free when the checkability gate
  // (nodes_only || card.hi <= 1) held, so the two bits together already
  // carry the all-node-or-short evidence ProvenDdoRedundant requires.
  return claims.ordered && claims.dup_free;
}

namespace {

/// True when every main-path step uses child / attribute / self — all
/// bindings of the final step then sit at a fixed depth below their
/// context node, so distinct bindings are never ancestor-related.
bool MainPathChildLike(const pattern::TreePattern& tp) {
  for (const pattern::PatternNode* n = tp.root.get(); n != nullptr;
       n = n->next.get()) {
    if (n->axis != Axis::kChild && n->axis != Axis::kAttribute &&
        n->axis != Axis::kSelf) {
      return false;
    }
  }
  return true;
}

/// Main-path annotated outputs, root to leaf, with the axis run strictly
/// after the previous annotated step: `gap_child_like` is true when every
/// step after the previous annotated one (exclusive) through this one
/// (inclusive) is child / attribute / self — the binding then sits at a
/// fixed distance below the previous one, i.e. is a *function* of it.
struct AnnotatedStep {
  Symbol output;
  bool gap_child_like;
};

std::vector<AnnotatedStep> AnnotatedMainPath(const pattern::TreePattern& tp) {
  std::vector<AnnotatedStep> out;
  bool gap_ok = true;
  for (const pattern::PatternNode* n = tp.root.get(); n != nullptr;
       n = n->next.get()) {
    bool step_child_like = n->axis == Axis::kChild ||
                           n->axis == Axis::kAttribute ||
                           n->axis == Axis::kSelf;
    gap_ok = gap_ok && step_child_like;
    if (n->output != kInvalidSymbol) {
      out.push_back({n->output, gap_ok});
      gap_ok = true;
    }
  }
  return out;
}

/// Per-evaluation view of a tuple stream: inside a dependent plan the
/// evaluator binds one tuple at a time, so stream-level concatenation
/// facts collapse to the single tuple's value facts.
TupleProps PerTupleView(const TupleProps& t) {
  TupleProps one = t;
  one.card = CardRange::Exactly(1);
  for (auto& [sym, f] : one.fields) {
    f.seq_ordered = f.value.ordered;
    f.seq_dup_free = f.value.dup_free;
    f.seq_unrelated = f.value.unrelated;
  }
  return one;
}

/// Facts about a single element drawn from a sequence with facts `s`.
ItemProps ElementOf(const ItemProps& s) {
  ItemProps e = ItemProps::SingletonAtomic();
  e.nodes_only = s.nodes_only;
  return e;
}

ItemProps Hull(const ItemProps& a, const ItemProps& b) {
  ItemProps h;
  h.ordered = a.ordered && b.ordered;
  h.dup_free = a.dup_free && b.dup_free;
  h.unrelated = a.unrelated && b.unrelated;
  h.nodes_only = a.nodes_only && b.nodes_only;
  h.card = a.card.Union(b.card);
  return h;
}

/// Sequences of at most one item are trivially ordered, duplicate-free
/// and unrelated.
void NormalizeItem(ItemProps* p) {
  if (p->card.hi <= 1) {
    p->ordered = p->dup_free = p->unrelated = true;
  }
}

void NormalizeTuple(TupleProps* t) {
  if (t->card.hi <= 1) {
    for (auto& [sym, f] : t->fields) {
      f.seq_ordered = f.seq_ordered || f.value.ordered;
      f.seq_dup_free = f.seq_dup_free || f.value.dup_free;
      f.seq_unrelated = f.seq_unrelated || f.value.unrelated;
    }
  }
}

/// Evaluation context mirroring the evaluator's (tuple, item) arguments.
struct Ctx {
  const TupleProps* ambient = nullptr;   ///< current tuple (IN#f / IN)
  const ItemProps* cur_item = nullptr;   ///< current item (MapFromItem dep)
};

class Inferrer {
 public:
  explicit Inferrer(PlanProps* out) : out_(out) {}

  ItemProps InferItem(const Op& op, const Ctx& ctx) {
    ItemProps p = InferItemInner(op, ctx);
    // Core ODF facts survive compilation: algebra::Compile stamps the
    // source expression's derived bits on the operator compiled for it.
    if (core::OdfCacheOrdered(op.odf_seed)) p.ordered = true;
    if (core::OdfCacheDupFree(op.odf_seed)) p.dup_free = true;
    NormalizeItem(&p);
    OpProps rec;
    rec.is_tuple = false;
    rec.item = p;
    out_->by_op[&op] = rec;
    return p;
  }

  TupleProps InferTuple(const Op& op, const Ctx& ctx) {
    TupleProps t = InferTupleInner(op, ctx);
    NormalizeTuple(&t);
    OpProps rec;
    rec.is_tuple = true;
    rec.tuple = t;
    out_->by_op[&op] = rec;
    return t;
  }

 private:
  /// RAII save/restore of one scoped-variable slot.
  class ScopedBind {
   public:
    ScopedBind(Inferrer* inf, core::VarId var, ItemProps props)
        : inf_(inf), var_(var) {
      if (var_ == core::kNoVar) return;
      auto it = inf_->scoped_.find(var_);
      if (it != inf_->scoped_.end()) saved_ = it->second;
      inf_->scoped_[var_] = props;
    }
    ~ScopedBind() {
      if (var_ == core::kNoVar) return;
      if (saved_.has_value()) {
        inf_->scoped_[var_] = *saved_;
      } else {
        inf_->scoped_.erase(var_);
      }
    }

   private:
    Inferrer* inf_;
    core::VarId var_;
    std::optional<ItemProps> saved_;
  };

  ItemProps InferItemInner(const Op& op, const Ctx& ctx) {
    switch (op.kind) {
      case OpKind::kConst: {
        ItemProps p = ItemProps::SingletonAtomic();
        p.nodes_only = op.literal.IsNode();
        return p;
      }
      case OpKind::kGlobalVar: {
        // Engine binding contract (core/odf.cc makes the same assumption):
        // globals are bound to document nodes, at most one of them. The
        // lower bound stays 0 — the public Execute accepts (and tests
        // exercise) empty bindings, and every order fact is trivially true
        // at cardinality <= 1.
        ItemProps p = ItemProps::SingletonNode();
        p.card = CardRange::AtMost(1);
        return p;
      }
      case OpKind::kScopedVar: {
        auto it = scoped_.find(op.var);
        return it == scoped_.end() ? ItemProps::Unknown() : it->second;
      }
      case OpKind::kInputItem: {
        if (ctx.cur_item != nullptr) return *ctx.cur_item;
        ItemProps p = ItemProps::SingletonAtomic();
        p.nodes_only = false;  // unknown element sort
        return p;
      }
      case OpKind::kFieldAccess: {
        if (ctx.ambient != nullptr) {
          if (const FieldProps* f = ctx.ambient->Field(op.field)) {
            return f->value;
          }
          if (ctx.ambient->fields_complete) {
            ItemProps p;
            p.nodes_only = true;  // vacuously: the sequence is empty
            p.card = CardRange::Exactly(0);
            return p;
          }
        }
        return ItemProps::Unknown();
      }
      case OpKind::kTreeJoin:
        return InferTreeJoin(op, ctx);
      case OpKind::kDdo: {
        ItemProps in = InferItem(*op.inputs[0], ctx);
        // Success outcomes: all-node input -> sorted and deduplicated;
        // all-atomic input -> returned unchanged. (Mixed input is a type
        // error, which produces no value to describe.)
        ItemProps p;
        p.nodes_only = in.nodes_only;
        p.ordered = in.nodes_only || in.ordered;
        p.dup_free = in.nodes_only || in.dup_free;
        p.unrelated = in.unrelated;  // a subset of the input's nodes
        p.card = {in.card.lo > 0 ? 1 : 0, in.card.hi};
        return p;
      }
      case OpKind::kMapToItem:
        return InferMapToItem(op, ctx);
      case OpKind::kFnCall:
        return InferFnCall(op, ctx);
      case OpKind::kCompare:
      case OpKind::kAnd:
      case OpKind::kOr: {
        for (const algebra::OpPtr& in : op.inputs) InferItem(*in, ctx);
        return ItemProps::SingletonAtomic();
      }
      case OpKind::kArith: {
        for (const algebra::OpPtr& in : op.inputs) InferItem(*in, ctx);
        ItemProps p = ItemProps::SingletonAtomic();
        p.card = CardRange::AtMost(1);  // empty operands propagate
        return p;
      }
      case OpKind::kSequence: {
        ItemProps p;
        p.nodes_only = true;
        p.card = CardRange::Exactly(0);
        for (const algebra::OpPtr& in : op.inputs) {
          ItemProps part = InferItem(*in, ctx);
          p.nodes_only = p.nodes_only && part.nodes_only;
          p.card = p.card.Plus(part.card);
        }
        // Concatenation order is syntactic; no order facts survive
        // (NormalizeItem restores them for statically-short sequences).
        p.ordered = p.dup_free = p.unrelated = false;
        return p;
      }
      case OpKind::kIf: {
        InferItem(*op.inputs[0], ctx);
        ItemProps t = InferItem(*op.inputs[1], ctx);
        ItemProps e = InferItem(*op.inputs[2], ctx);
        return Hull(t, e);
      }
      case OpKind::kForEach: {
        ItemProps s = InferItem(*op.inputs[0], ctx);
        ScopedBind bind_var(this, op.var, ElementOf(s));
        ScopedBind bind_pos(this, op.pos_var, ItemProps::SingletonAtomic());
        if (op.dep2) InferItem(*op.dep2, ctx);
        ItemProps d = InferItem(*op.dep, ctx);
        ItemProps p;
        p.nodes_only = d.nodes_only;
        p.card = s.card.Times(d.card);
        if (op.dep2) p.card.lo = 0;
        if (s.card.hi <= 1) {
          // At most one iteration: the loop returns one body result (or
          // nothing) — the body's facts carry over.
          p.ordered = d.ordered;
          p.dup_free = d.dup_free;
          p.unrelated = d.unrelated;
        }
        return p;
      }
      case OpKind::kLetIn: {
        ItemProps b = InferItem(*op.inputs[0], ctx);
        ScopedBind bind_var(this, op.var, b);
        return InferItem(*op.dep, ctx);
      }
      case OpKind::kTypeswitch: {
        ItemProps in = InferItem(*op.inputs[0], ctx);
        ItemProps d1;
        {
          // Numeric branch: the input was a singleton numeric item.
          ScopedBind bind_case(this, op.var, ItemProps::SingletonAtomic());
          d1 = InferItem(*op.dep, ctx);
        }
        ItemProps d2;
        {
          ScopedBind bind_default(this, op.pos_var, in);
          d2 = InferItem(*op.dep2, ctx);
        }
        return Hull(d1, d2);
      }
      case OpKind::kMapFromItem:
      case OpKind::kSelect:
      case OpKind::kTupleTreePattern:
      case OpKind::kInputTuple:
        // Sort error — the plan verifier rejects these; stay at top.
        return ItemProps::Unknown();
    }
    return ItemProps::Unknown();
  }

  ItemProps InferTreeJoin(const Op& op, const Ctx& ctx) {
    ItemProps in = InferItem(*op.inputs[0], ctx);
    // A step over an ordered, duplicate-free, *unrelated* context visits
    // disjoint subtrees in increasing document order (Hidders et al.):
    // downward axes then emit globally ordered, duplicate-free results.
    bool chain = in.ordered && in.dup_free && in.unrelated;
    ItemProps p;
    p.nodes_only = true;
    p.card = CardRange::Top();
    switch (op.axis) {
      case Axis::kSelf:
        p.ordered = in.ordered;
        p.dup_free = in.dup_free;
        p.unrelated = in.unrelated;
        p.card = {0, in.card.hi};
        break;
      case Axis::kChild:
      case Axis::kAttribute:
        // Fixed-depth results: unrelatedness is preserved too.
        p.ordered = p.dup_free = p.unrelated = chain;
        break;
      case Axis::kDescendant:
      case Axis::kDescendantOrSelf:
        p.ordered = p.dup_free = chain;
        p.unrelated = false;  // a subtree's nodes are ancestor-related
        break;
      case Axis::kParent:
        p.card = {0, in.card.hi};
        break;
      default:
        // ancestor / sibling axes: no order facts derived.
        break;
    }
    if (in.card.Empty()) p.card = CardRange::Exactly(0);
    return p;
  }

  ItemProps InferMapToItem(const Op& op, const Ctx& ctx) {
    TupleProps tin = InferTuple(*op.inputs[0], ctx);
    TupleProps per = PerTupleView(tin);
    Ctx dctx;
    dctx.ambient = &per;
    ItemProps d = InferItem(*op.dep, dctx);
    ItemProps p;
    p.nodes_only = d.nodes_only;
    p.card = tin.card.Times(d.card);
    if (tin.fields_complete && op.dep->kind == OpKind::kFieldAccess &&
        tin.Field(op.dep->field) == nullptr) {
      p.card = CardRange::Exactly(0);  // absent field: empty per tuple
    }
    if (tin.card.hi <= 1) {
      // At most one tuple: the concatenation is one dependent result.
      p.ordered = d.ordered;
      p.dup_free = d.dup_free;
      p.unrelated = d.unrelated;
    } else if (op.dep->kind == OpKind::kFieldAccess) {
      // The concatenation of IN#f across the stream is exactly what the
      // field's seq_* facts describe.
      if (const FieldProps* f = tin.Field(op.dep->field)) {
        p.ordered = f->seq_ordered;
        p.dup_free = f->seq_dup_free;
        p.unrelated = f->seq_unrelated;
      }
    }
    return p;
  }

  ItemProps InferFnCall(const Op& op, const Ctx& ctx) {
    std::vector<ItemProps> args;
    args.reserve(op.inputs.size());
    for (const algebra::OpPtr& in : op.inputs) {
      args.push_back(InferItem(*in, ctx));
    }
    switch (op.fn) {
      case core::CoreFn::kBoolean:
      case core::CoreFn::kCount:
      case core::CoreFn::kNot:
      case core::CoreFn::kEmpty:
      case core::CoreFn::kExists:
      case core::CoreFn::kString:
      case core::CoreFn::kNumber:
      case core::CoreFn::kStringLength:
      case core::CoreFn::kConcat:
      case core::CoreFn::kContains:
      case core::CoreFn::kStartsWith:
      case core::CoreFn::kSum:
        return ItemProps::SingletonAtomic();
      case core::CoreFn::kRoot: {
        ItemProps p = ItemProps::SingletonNode();
        p.card = CardRange::AtMost(1);
        return p;
      }
      case core::CoreFn::kData: {
        ItemProps p;
        p.card = args.empty() ? CardRange::Top() : args[0].card;
        return p;
      }
    }
    return ItemProps::Unknown();
  }

  TupleProps InferTupleInner(const Op& op, const Ctx& ctx) {
    switch (op.kind) {
      case OpKind::kInputTuple: {
        if (ctx.ambient != nullptr) return PerTupleView(*ctx.ambient);
        // Standalone: one opaque ambient tuple.
        TupleProps t;
        t.card = CardRange::Exactly(1);
        t.fields_complete = false;
        return t;
      }
      case OpKind::kMapFromItem: {
        ItemProps items = InferItem(*op.inputs[0], ctx);
        ItemProps elem = ElementOf(items);
        Ctx dctx = ctx;  // the dependent keeps the *outer* ambient tuple
        dctx.cur_item = &elem;
        ItemProps value = InferItem(*op.dep, dctx);
        TupleProps t;
        t.card = items.card;
        t.fields_complete = true;
        FieldProps f;
        f.value = value;
        if (op.dep->kind == OpKind::kInputItem) {
          // One tuple per item, the field bound to the item itself: the
          // concatenation across tuples reassembles the input sequence.
          f.seq_ordered = items.ordered;
          f.seq_dup_free = items.dup_free;
          f.seq_unrelated = items.unrelated;
        }
        t.fields[op.field] = f;
        return t;
      }
      case OpKind::kSelect: {
        TupleProps in = InferTuple(*op.inputs[0], ctx);
        TupleProps per = PerTupleView(in);
        Ctx dctx;
        dctx.ambient = &per;
        InferItem(*op.dep, dctx);  // record facts under the predicate
        TupleProps t = in;
        // A subsequence of the stream: per-field concatenations lose
        // members but keep order / distinctness / unrelatedness; FDs and
        // keys survive.
        t.card.lo = 0;
        return t;
      }
      case OpKind::kTupleTreePattern:
        return InferTreePattern(op, ctx);
      default: {
        // Sort error (item plan in tuple position): stay at top.
        TupleProps t;
        return t;
      }
    }
  }

  TupleProps InferTreePattern(const Op& op, const Ctx& ctx) {
    TupleProps in = InferTuple(*op.inputs[0], ctx);
    const pattern::TreePattern& tp = op.tp;
    std::vector<Symbol> outs = tp.OutputFields();

    TupleProps t;
    t.fields_complete = in.fields_complete;
    t.card = in.card.Empty() ? CardRange::Exactly(0) : CardRange::Top();

    // Input fields are replicated once per binding row: per-tuple values
    // unchanged, concatenations keep order and unrelatedness but not
    // distinctness (unless at most one row can match, unknowable here).
    for (const auto& [sym, f] : in.fields) {
      FieldProps pf = f;
      pf.seq_dup_free = false;
      t.fields[sym] = pf;
    }
    // FDs among replicated fields still hold row-wise; an FD involving a
    // field the pattern re-defines dies with it.
    for (const auto& fd : in.fds) {
      bool overwritten = false;
      for (Symbol o : outs) {
        if (o == fd.first || o == fd.second) overwritten = true;
      }
      if (!overwritten) t.fds.push_back(fd);
    }

    const FieldProps* cf = in.Field(tp.input_field);
    bool child_like = MainPathChildLike(tp);
    // Cross-tuple: context values that are globally ordered, duplicate-
    // free and unrelated span disjoint, increasing subtree intervals, and
    // every pattern axis stays inside its context's subtree.
    bool ctx_chain = cf != nullptr && cf->seq_ordered && cf->seq_dup_free &&
                     cf->seq_unrelated;
    bool ctx_unrel = cf != nullptr &&
                     (in.card.hi <= 1 ? cf->value.unrelated
                                      : cf->seq_unrelated);

    if (outs.size() == 1 && tp.SingleOutputAtExtractionPoint()) {
      FieldProps of;
      of.value = ItemProps::SingletonNode();
      // Single-output rows are sorted and deduplicated per input tuple
      // (exec::FinalizeRows); with at most one input tuple, or provably
      // chained contexts, the whole stream is ordered and dup-free.
      of.seq_ordered = of.seq_dup_free = in.card.hi <= 1 || ctx_chain;
      of.seq_unrelated = child_like && ctx_unrel;
      t.fields[outs[0]] = of;
    } else {
      for (Symbol o : outs) {
        FieldProps of;
        of.value = ItemProps::SingletonNode();
        t.fields[o] = of;
      }
    }

    // FDs along the main path: an annotated step at a fixed child-like
    // distance above the next annotated one is a function of it (the
    // ancestor at that distance).
    std::vector<AnnotatedStep> steps = AnnotatedMainPath(tp);
    for (size_t i = 1; i < steps.size(); ++i) {
      if (steps[i].gap_child_like) {
        t.fds.emplace_back(steps[i - 1].output, steps[i].output);
      }
    }
    return t;
  }

  std::unordered_map<core::VarId, ItemProps> scoped_;
  PlanProps* out_;
};

void StampClaims(Op* op, const PlanProps& props) {
  for (algebra::OpPtr& in : op->inputs) StampClaims(in.get(), props);
  if (op->dep) StampClaims(op->dep.get(), props);
  if (op->dep2) StampClaims(op->dep2.get(), props);
  op->props = algebra::PropsClaims{};
  const ItemProps* p = props.Item(op);
  if (p == nullptr) return;
  algebra::PropsClaims c;
  // Order claims are decidable by the evaluator's probe only over
  // all-node (or at-most-one-item) sequences.
  bool checkable = p->nodes_only || p->card.hi <= 1;
  c.ordered = p->ordered && checkable;
  c.dup_free = p->dup_free && checkable;
  c.card_lo = p->card.lo;
  c.card_hi = p->card.hi == kCardTop ? -1 : p->card.hi;
  op->props = c;
}

}  // namespace

PlanProps InferPlanProps(const Op& plan, const PlanPropsOptions& opts) {
  (void)opts;
  PlanProps props;
  Inferrer inf(&props);
  Ctx ctx;
  if (algebra::IsTuplePlan(plan.kind)) {
    inf.InferTuple(plan, ctx);
  } else {
    inf.InferItem(plan, ctx);
  }
  return props;
}

void AnnotatePlanProps(Op* plan, const PlanPropsOptions& opts) {
  PlanProps props = InferPlanProps(*plan, opts);
  StampClaims(plan, props);
}

void ClearPlanProps(Op* plan) {
  plan->props = algebra::PropsClaims{};
  for (algebra::OpPtr& in : plan->inputs) ClearPlanProps(in.get());
  if (plan->dep) ClearPlanProps(plan->dep.get());
  if (plan->dep2) ClearPlanProps(plan->dep2.get());
}

}  // namespace xqtp::analysis
