#!/usr/bin/env bash
# CI gate: builds the library twice and runs the full test suite under
# each configuration.
#
#  1. Release — the tier-1 configuration (ROADMAP.md): the paper's
#     benchmark numbers come from this build, so it must stay green and
#     warning-clean.
#  2. Debug + ASan/UBSan — analysis::kVerifyByDefault is on without
#     NDEBUG, so every test additionally runs the Core and plan verifiers
#     AND the translation-validation oracle (witness-corpus differential
#     execution of every rewrite checkpoint) with the sanitizers watching
#     the checkers themselves.
#  3. Release + TSan — the morsel-parallel driver's threading tests
#     (parallel_eval_test, concurrency_test), the columnar-batch CoW
#     aliasing tests (tuple_batch_test) and the plan-cache
#     concurrency suite (plan_cache_test: the single-flight stampede and
#     hit/miss/erase/clear hammer) under ThreadSanitizer:
#     per-query thread pools, the shared-mutex lazy-index path, and two
#     parallel queries running concurrently. The leg also forces
#     -DXQTP_FAULT_INJECTION=ON (fault points are otherwise compiled out
#     under NDEBUG) and runs the robustness tests (governor_test,
#     fault_injection_test), so cancellation races and mid-morsel
#     injected failures are raced under TSan; the Debug/ASan leg above
#     covers the same tests for leak- and UB-freedom via their
#     "robustness" ctest label.
#
# Between the build/test legs:
#  - the project lint gate (tools/lint.py): raw sync primitives outside
#    common/mutex.h, stdout printing in library code, Status APIs without
#    [[nodiscard]], include-guard naming — plus its --self-test, which
#    proves each rule still fires on a seeded violation;
#  - a clang-tidy pass (.clang-tidy profile, warnings-as-errors) over
#    src/, skipped with a notice when clang-tidy is not installed;
#  - a clang -Werror=thread-safety leg compiling the full library, so the
#    capability annotations (common/thread_annotations.h) are PROVEN, not
#    just present; skipped with a loud notice when clang++ is missing
#    (gcc cannot check them) — never silently;
#  - a bounded Release run of tools/equiv_fuzz (fixed seed) whose summary
#    line is part of the gate's output — the deep seed-matrix sweep under
#    sanitizers lives in ci/fuzz.sh;
#  - a bounded smoke run of bench_parallel, bench_plan_props,
#    bench_governor, bench_compile, bench_plan_cache and bench_batch whose
#    perf-trajectory records (--json) are merged by tools/bench_smoke.py
#    into BENCH_smoke.json at the repo root, with a WARN-ONLY per-record
#    timing delta against the committed baseline printed to the log.
#
# The debug-sanitize test phase is split by ctest label:
# `-L "analysis|plan_cache"` (verifiers, property inference, translation
# validation, plus the plan-cache serving path) runs first and fails fast
# — when an optimizer change breaks a proof the analysis tests name the
# broken invariant directly, and a broken serving path stops the build
# before the exec tests obscure it with wrong query results. A per-leg
# wall-clock summary is printed at the end of the gate.
#
# Every leg owns its build directory (build-ci-release, build-ci-tsa,
# build-ci-sanitize, build-ci-tsan; ci/fuzz.sh uses build-ci-fuzz) so one
# leg's CMake cache (compiler, sanitizers, flags) can never poison
# another's.
#
# Usage: ci/check.sh [jobs]   (defaults to all cores)
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

# Per-leg wall-clock bookkeeping: leg_done <name> records the time since
# the previous leg boundary; the summary prints before the final verdict.
LEG_SUMMARY=()
LEG_T0=$SECONDS
leg_done() {
  LEG_SUMMARY+=("$(printf '%-16s %5ds' "$1" "$((SECONDS - LEG_T0))")")
  LEG_T0=$SECONDS
}

echo "==== [lint] tools/lint.py self-test + gate ===="
python3 tools/lint.py --self-test
python3 tools/lint.py
leg_done lint

run_config() {
  local name="$1" dir="$2" test_mode="$3"
  shift 3
  echo "==== [$name] configure ===="
  cmake -B "$dir" -S . "$@" > /dev/null
  echo "==== [$name] build ===="
  local log
  log="$(mktemp)"
  # -Wall -Wextra are always on; fail the gate on any diagnostic.
  if ! cmake --build "$dir" -j "$JOBS" 2>&1 | tee "$log"; then
    rm -f "$log"
    echo "==== [$name] BUILD FAILED ===="
    exit 1
  fi
  if grep -E "warning:|error:" "$log"; then
    rm -f "$log"
    echo "==== [$name] FAILED: compiler diagnostics above ===="
    exit 1
  fi
  rm -f "$log"
  if [[ "$test_mode" == "labeled" ]]; then
    # Analysis + plan-cache tests first, fail-fast: a broken optimizer
    # proof shows up here by invariant name (not as a wrong result
    # downstream), and a broken plan-cache serving path stops the build
    # before everything routed through CompileCached fails confusingly.
    echo "==== [$name] test (-L 'analysis|plan_cache', fail fast) ===="
    ctest --test-dir "$dir" --output-on-failure -j "$JOBS" \
      -L "analysis|plan_cache"
    echo "==== [$name] test (remainder) ===="
    ctest --test-dir "$dir" --output-on-failure -j "$JOBS" \
      -LE "analysis|plan_cache"
  else
    echo "==== [$name] test ===="
    ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
  fi
  leg_done "$name"
}

run_config release build-ci-release full \
  -DCMAKE_BUILD_TYPE=Release -DXQTP_WERROR=ON \
  -DCMAKE_EXPORT_COMPILE_COMMANDS=ON

echo "==== [clang-tidy] static analysis ===="
if command -v clang-tidy > /dev/null 2>&1; then
  # shellcheck disable=SC2046
  clang-tidy -p build-ci-release --quiet \
    $(find src -name '*.cc' | sort)
  echo "==== [clang-tidy] clean ===="
else
  echo "==== [clang-tidy] SKIPPED: clang-tidy not installed ===="
fi
leg_done clang-tidy

echo "==== [thread-safety] clang -Werror=thread-safety ===="
CLANGXX=""
for c in clang++ clang++-21 clang++-20 clang++-19 clang++-18 clang++-17 \
         clang++-16 clang++-15 clang++-14; do
  if command -v "$c" > /dev/null 2>&1; then
    CLANGXX="$c"
    break
  fi
done
if [[ -n "$CLANGXX" ]]; then
  # Own build tree: a different compiler must never touch another leg's
  # CMake cache. -Wthread-safety comes from CMakeLists.txt (clang-only);
  # the explicit -Werror=thread-safety here keeps the leg meaningful even
  # without XQTP_WERROR.
  cmake -B build-ci-tsa -S . -DCMAKE_BUILD_TYPE=Release \
    -DCMAKE_CXX_COMPILER="$CLANGXX" -DXQTP_WERROR=ON \
    -DCMAKE_CXX_FLAGS="-Werror=thread-safety" > /dev/null
  cmake --build build-ci-tsa -j "$JOBS" --target xqtp
  echo "==== [thread-safety] library clean under $CLANGXX ===="
  # Negative leg: each seeded lock-discipline misuse must FAIL to compile
  # (and the positive control must pass), proving the annotations bite.
  python3 tests/thread_safety_negative.py --src src
else
  echo "==== [thread-safety] SKIPPED: no clang++ on PATH ===="
  echo "====   gcc cannot check the capability annotations; install"
  echo "====   clang to prove lock discipline (-Werror=thread-safety)."
fi
leg_done thread-safety

echo "==== [equiv-fuzz] bounded differential sweep (Release) ===="
build-ci-release/tools/equiv_fuzz --iters 500 --seed 1 \
  --artifacts fuzz-artifacts --quiet
leg_done equiv-fuzz

echo "==== [bench-smoke] perf trajectory -> BENCH_smoke.json ===="
# Several binaries, one merged trajectory file: tools/bench_smoke.py sorts
# records by (bench, query, algo, threads, variant) for stable diffs and
# prints the warn-only timing delta against the committed baseline.
SMOKE_TMP="$(mktemp -d)"
trap 'rm -rf "$SMOKE_TMP"' EXIT
build-ci-release/bench/bench_parallel \
  --benchmark_min_time=0.05 --json="$SMOKE_TMP/parallel.json"
build-ci-release/bench/bench_plan_props \
  --benchmark_min_time=0.05 --json="$SMOKE_TMP/plan_props.json"
build-ci-release/bench/bench_governor \
  --benchmark_min_time=0.05 --json="$SMOKE_TMP/governor.json"
build-ci-release/bench/bench_compile \
  --benchmark_min_time=0.05 --json="$SMOKE_TMP/compile.json"
build-ci-release/bench/bench_plan_cache \
  --benchmark_min_time=0.05 --json="$SMOKE_TMP/plan_cache.json"
build-ci-release/bench/bench_batch \
  --benchmark_min_time=0.05 --json="$SMOKE_TMP/batch.json"
if git show HEAD:BENCH_smoke.json > "$SMOKE_TMP/baseline.json" 2>/dev/null
then
  BASELINE=(--baseline "$SMOKE_TMP/baseline.json")
else
  BASELINE=()
fi
python3 tools/bench_smoke.py --out BENCH_smoke.json "${BASELINE[@]}" \
  "$SMOKE_TMP/parallel.json" "$SMOKE_TMP/plan_props.json" \
  "$SMOKE_TMP/governor.json" "$SMOKE_TMP/compile.json" \
  "$SMOKE_TMP/plan_cache.json" "$SMOKE_TMP/batch.json"
python3 -c "import json; json.load(open('BENCH_smoke.json'))" \
  && echo "BENCH_smoke.json: valid JSON"
leg_done bench-smoke

run_config debug-sanitize build-ci-sanitize labeled \
  -DCMAKE_BUILD_TYPE=Debug -DXQTP_WERROR=ON \
  "-DXQTP_SANITIZE=address;undefined"

# TSan leg: Release (the pool actually spins) with only the threading
# and robustness tests — TSan and ASan cannot be combined, so this is its
# own tree. XQTP_FAULT_INJECTION=ON compiles the fault points into the
# Release library so the injection sweep races under TSan too.
echo "==== [tsan] configure ===="
cmake -B build-ci-tsan -S . -DCMAKE_BUILD_TYPE=Release \
  -DXQTP_WERROR=ON -DXQTP_SANITIZE=thread \
  -DXQTP_FAULT_INJECTION=ON > /dev/null
echo "==== [tsan] build ===="
cmake --build build-ci-tsan -j "$JOBS" \
  --target tuple_batch_test parallel_eval_test concurrency_test \
  governor_test fault_injection_test plan_cache_test
echo "==== [tsan] test ===="
ctest --test-dir build-ci-tsan --output-on-failure \
  -R '^(tuple_batch_test|parallel_eval_test|concurrency_test|governor_test|fault_injection_test|plan_cache_test)$'
leg_done tsan

echo "==== leg wall-clock summary ===="
for line in "${LEG_SUMMARY[@]}"; do
  echo "  $line"
done

echo "==== all checks passed ===="
