// Morsel-parallel driver scaling: low-selectivity XMark patterns per
// thread count. threads=1 is the plain sequential path; threads>=2 routes
// through exec/parallel.h, whose root fan-out expands the first step's
// candidates straight from the per-tag index instead of navigating the
// whole tree — so the driver wins even before it wins from parallelism,
// and scales further with cores. Run with --json=<path> to drop the perf
// trajectory records (ci/check.sh does this for BENCH_smoke.json).
//
// Thread counts here are *requested* counts; the driver clamps the
// effective width to the available morsel supply (exec::
// ClampParallelThreads), so on this 0.5-factor document t=4 and t=8 run
// at the clamped width instead of paying pool-spawn cost for threads
// that would starve — the t>=4 rows must not regress above the t=2 row
// (tests/parallel_eval_test.cc pins the clamp arithmetic).
#include "bench_common.h"

namespace xqtp::bench {
namespace {

struct ParallelQuery {
  const char* name;
  const char* query;
};

// Low-selectivity patterns: matches are a small slice of the document, so
// the index-driven fan-out skips most of the tree the sequential NLJoin
// has to walk.
constexpr ParallelQuery kQueries[] = {
    {"XM-location", "$input//location"},
    {"XM-item-location", "$input//item//location"},
    {"XM-interest", "$input//person[emailaddress]//interest"},
};

const xml::Document& Doc() { return XmarkDoc("xmark_parallel", 0.5); }

void Register() {
  for (const ParallelQuery& q : kQueries) {
    for (exec::PatternAlgo algo :
         {exec::PatternAlgo::kNLJoin, exec::PatternAlgo::kStaircase}) {
      for (int threads : {1, 2, 4, 8}) {
        std::string name = std::string("Parallel/") + q.name + "/t" +
                           std::to_string(threads) + "/" + AlgoTag(algo);
        std::string query = q.query;
        benchmark::RegisterBenchmark(
            name.c_str(),
            [query, algo, threads](benchmark::State& state) {
              exec::EvalOptions opts;
              opts.algo = algo;
              opts.threads = threads;
              RunQueryBenchmark(state, query, Doc(), opts);
            })
            ->Unit(benchmark::kMillisecond);
      }
    }
  }
}

}  // namespace
}  // namespace xqtp::bench

int main(int argc, char** argv) {
  xqtp::bench::Register();
  return xqtp::bench::BenchMain(argc, argv);
}
