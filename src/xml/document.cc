#include "xml/document.h"

#include <algorithm>
#include <cassert>

namespace xqtp::xml {

const std::vector<const Node*>& Document::ElementsByTag(Symbol tag) const {
  // Built entries never move (unordered_map references are stable) and
  // never mutate, so the common case is a shared-lock lookup; only the
  // first request for a tag takes the exclusive lock to build.
  {
    ReaderLock lock(&lazy_mu_);
    auto it = tag_index_.find(tag);
    if (it != tag_index_.end()) return it->second;
  }
  WriterLock lock(&lazy_mu_);
  auto it = tag_index_.find(tag);  // re-check: a racing builder may have won
  if (it != tag_index_.end()) return it->second;
  std::vector<const Node*>& vec = tag_index_[tag];
  for (const Node* n : AllElementsLocked()) {
    if (n->name == tag) vec.push_back(n);
  }
  return vec;
}

const std::vector<const Node*>& Document::AllElements() const {
  // Callers inside this translation unit already hold the lock via their
  // own entry points; take it recursively-safely by building through a
  // private unlocked helper instead.
  {
    ReaderLock lock(&lazy_mu_);
    if (all_elements_built_) return all_elements_;
  }
  WriterLock lock(&lazy_mu_);
  return AllElementsLocked();
}

const std::vector<const Node*>& Document::AllElementsLocked() const {
  if (!all_elements_built_) {
    // The arena is filled in construction order, which is not necessarily
    // document order for attributes, so sort by pre once.
    for (const Node& n : arena_) {
      if (n.kind == NodeKind::kElement) all_elements_.push_back(&n);
    }
    std::sort(all_elements_.begin(), all_elements_.end(),
              [](const Node* a, const Node* b) { return a->pre < b->pre; });
    all_elements_built_ = true;
  }
  return all_elements_;
}

const std::vector<const Node*>& Document::TextNodes() const {
  {
    ReaderLock lock(&lazy_mu_);
    if (text_nodes_built_) return text_nodes_;
  }
  WriterLock lock(&lazy_mu_);
  if (!text_nodes_built_) {
    for (const Node& n : arena_) {
      if (n.kind == NodeKind::kText) text_nodes_.push_back(&n);
    }
    std::sort(text_nodes_.begin(), text_nodes_.end(),
              [](const Node* a, const Node* b) { return a->pre < b->pre; });
    text_nodes_built_ = true;
  }
  return text_nodes_;
}

const std::vector<const Node*>& Document::AllNodes() const {
  {
    ReaderLock lock(&lazy_mu_);
    if (all_nodes_built_) return all_nodes_;
  }
  WriterLock lock(&lazy_mu_);
  if (!all_nodes_built_) {
    for (const Node& n : arena_) {
      if (n.kind != NodeKind::kAttribute) all_nodes_.push_back(&n);
    }
    std::sort(all_nodes_.begin(), all_nodes_.end(),
              [](const Node* a, const Node* b) { return a->pre < b->pre; });
    all_nodes_built_ = true;
  }
  return all_nodes_;
}

const DocumentStats& Document::Stats() const {
  {
    ReaderLock lock(&lazy_mu_);
    if (stats_built_) return stats_;
  }
  // Warm the dependencies before taking the lock (they lock themselves).
  const size_t all_nodes = AllNodes().size();
  AllElements();
  WriterLock lock(&lazy_mu_);
  if (!stats_built_) {
    stats_.node_count = static_cast<int64_t>(all_nodes);
    int64_t internal = 0;
    int64_t children = 0;
    for (const Node* n : AllElementsLocked()) {
      int64_t c_count = 0;
      for (const Node* c = n->first_child; c != nullptr;
           c = c->next_sibling) {
        ++c_count;
      }
      if (c_count > 0) {
        ++internal;
        children += c_count;
      }
      stats_.max_depth = std::max(stats_.max_depth, n->depth);
    }
    // Average fan-out of the nodes that branch — this drives how fast a
    // context's subtree share shrinks with depth.
    if (internal > 0) {
      stats_.avg_fanout = std::max(1.1, static_cast<double>(children) /
                                            static_cast<double>(internal));
    }
    stats_built_ = true;
  }
  return stats_;
}

const std::vector<const Node*>& Document::AttributesByName(Symbol name) const {
  {
    ReaderLock lock(&lazy_mu_);
    auto it = attr_index_.find(name);
    if (it != attr_index_.end()) return it->second;
  }
  WriterLock lock(&lazy_mu_);
  auto it = attr_index_.find(name);
  if (it != attr_index_.end()) return it->second;
  std::vector<const Node*>& vec = attr_index_[name];
  for (const Node& n : arena_) {
    if (n.kind == NodeKind::kAttribute && n.name == name) {
      vec.push_back(&n);
    }
  }
  std::sort(vec.begin(), vec.end(),
            [](const Node* a, const Node* b) { return a->pre < b->pre; });
  return vec;
}

const DocumentExtension* Document::GetOrBuildExtension(
    DocumentExtension* (*factory)(const Document&)) const {
  // Build outside the lock (the factory reads lazily-built structures
  // that take the lock themselves), then publish under the lock.
  {
    ReaderLock lock(&lazy_mu_);
    if (extension_ != nullptr) return extension_.get();
  }
  std::unique_ptr<DocumentExtension> built(factory(*this));
  WriterLock lock(&lazy_mu_);
  if (extension_ == nullptr) extension_ = std::move(built);
  return extension_.get();
}

DocumentBuilder::DocumentBuilder(StringInterner* interner)
    : doc_(std::make_unique<Document>(interner)) {
  Node* root = doc_->NewNode();
  root->kind = NodeKind::kDocument;
  root->doc = doc_.get();
  doc_->root_ = root;
  stack_.push_back(root);
}

void DocumentBuilder::AppendChild(Node* child) {
  Node* parent = stack_.back();
  child->parent = parent;
  child->doc = doc_.get();
  if (parent->last_child == nullptr) {
    parent->first_child = parent->last_child = child;
  } else {
    parent->last_child->next_sibling = child;
    child->prev_sibling = parent->last_child;
    parent->last_child = child;
  }
}

void DocumentBuilder::StartElement(std::string_view tag) {
  Node* n = doc_->NewNode();
  n->kind = NodeKind::kElement;
  n->name = doc_->interner()->Intern(tag);
  AppendChild(n);
  stack_.push_back(n);
}

void DocumentBuilder::Attribute(std::string_view name, std::string_view value) {
  assert(stack_.size() > 1 && "Attribute outside an element");
  Node* owner = stack_.back();
  Node* n = doc_->NewNode();
  n->kind = NodeKind::kAttribute;
  n->name = doc_->interner()->Intern(name);
  n->text = std::string(value);
  n->parent = owner;
  n->doc = doc_.get();
  owner->attributes.push_back(n);
}

void DocumentBuilder::Text(std::string_view text) {
  Node* n = doc_->NewNode();
  n->kind = NodeKind::kText;
  n->text = std::string(text);
  AppendChild(n);
}

void DocumentBuilder::EndElement() {
  assert(stack_.size() > 1 && "EndElement without matching StartElement");
  stack_.pop_back();
}

namespace {

// Iterative pre/post numbering; recursion would overflow on deep documents.
void AssignNumbers(Node* root) {
  int32_t pre = 0;
  int32_t post = 0;
  struct Frame {
    Node* node;
    bool entered;
  };
  std::vector<Frame> stack;
  stack.push_back({root, false});
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (!f.entered) {
      f.entered = true;
      Node* n = f.node;
      n->pre = pre++;
      n->depth = n->parent == nullptr ? 0 : n->parent->depth + 1;
      // Attributes sit between the element and its first child in
      // document order.
      for (Node* a : n->attributes) {
        a->pre = pre++;
        // Attributes are leaves: give them their postorder rank right away,
        // before any child of the element, so the region containment test
        // never classifies an attribute as an ancestor.
        a->post = post++;
        a->depth = n->depth + 1;
      }
      // Push children in reverse so the leftmost is processed first.
      std::vector<Node*> kids;
      for (Node* c = n->first_child; c != nullptr; c = c->next_sibling) {
        kids.push_back(c);
      }
      for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
        stack.push_back({*it, false});
      }
    } else {
      f.node->post = post++;
      stack.pop_back();
    }
  }
}

}  // namespace

std::unique_ptr<Document> DocumentBuilder::Finish() {
  assert(stack_.size() == 1 && "unbalanced builder");
  AssignNumbers(doc_->root_);
  return std::move(doc_);
}

}  // namespace xqtp::xml
