// Generalized (multi-output) tree-pattern benchmark — the paper's primary
// future-work item, quantified: merging a Q5-style cascade into one
// multi-output pattern removes the intermediate tuple materialization but
// forces binding enumeration (nested-loop evaluation), while the cascade
// can run each stage with an index algorithm. Neither dominates: the
// trade-off is the reason the paper kept single-output patterns.
#include "bench_common.h"

namespace xqtp::bench {
namespace {

struct Workload {
  const char* name;
  const char* query;
};

constexpr Workload kWorkloads[] = {
    {"q5-narrow",
     "for $x in $input//t01[t02] return $x/t03"},
    {"q5-wide", "for $x in $input//t01 return $x/t02"},
    {"three-stage",
     "for $x in $input//t01 return for $y in $x/t02 return $y/t03"},
};

const xml::Document& Doc() {
  return MemberDoc("member_gtp", 200000, 5, 100, 100);
}

void Register() {
  for (const Workload& w : kWorkloads) {
    for (bool merged : {false, true}) {
      exec::PatternAlgo algo =
          merged ? exec::PatternAlgo::kNLJoin : exec::PatternAlgo::kStaircase;
      std::string name = std::string("GTP/") + w.name +
                         (merged ? "/merged-NL" : "/cascade-SC");
      std::string query = w.query;
      benchmark::RegisterBenchmark(
          name.c_str(),
          [query, algo, merged](benchmark::State& state) {
            engine::CompileOptions copts;
            copts.multi_output_patterns = merged;
            RunQueryBenchmark(state, query, Doc(), algo,
                              engine::PlanChoice::kOptimized, copts);
          })
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace xqtp::bench

int main(int argc, char** argv) {
  xqtp::bench::Register();
  return xqtp::bench::BenchMain(argc, argv);
}
