// Cost-model benchmark (extension of the paper's conclusion): compares
// every fixed algorithm against the cost-based per-operator choice across
// the archetype workloads of Section 5. A good cost model should track
// the per-archetype winner, never the per-archetype loser.
#include "bench_common.h"

namespace xqtp::bench {
namespace {

struct Archetype {
  const char* name;
  const char* query;
  bool deep_doc;
};

constexpr Archetype kArchetypes[] = {
    {"rooted-chain", "$input/desc::t01[child::t02[child::t03[child::t04]]]",
     false},
    {"branchy-desc",
     "$input/desc::t01[desc::t02[desc::t03]/desc::t04[desc::t03]]", false},
    {"positional", "$input/desc::t01/child::t02[1]/child::t03[child::t04]",
     false},
    {"selective-chain",
     "$input/t1[1]/t1[1]/t1[1]/t1[1]/t1[1]/t1[1]/t1[1]/t1[1]/t1[1]/t1[1]",
     true},
};

const xml::Document& DocFor(const Archetype& a) {
  if (a.deep_doc) {
    return MemberDoc("member_deep_cb", 50000, 15, 1);
  }
  return MemberDoc("member_wide_cb", 150000, 5, 100, 75);
}

void Register() {
  for (const Archetype& a : kArchetypes) {
    for (exec::PatternAlgo algo :
         {exec::PatternAlgo::kNLJoin, exec::PatternAlgo::kStaircase,
          exec::PatternAlgo::kTwig, exec::PatternAlgo::kStream,
          exec::PatternAlgo::kCostBased}) {
      std::string name =
          std::string("CostModel/") + a.name + "/" + AlgoTag(algo);
      std::string query = a.query;
      const Archetype* ap = &a;
      benchmark::RegisterBenchmark(
          name.c_str(),
          [query, algo, ap](benchmark::State& state) {
            RunQueryBenchmark(state, query, DocFor(*ap), algo);
          })
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace xqtp::bench

int main(int argc, char** argv) {
  xqtp::bench::Register();
  return xqtp::bench::BenchMain(argc, argv);
}
