// Robustness and property tests for the XML layer: malformed inputs
// produce errors (never crashes), and parse/serialize round-trips are
// stable over generated documents.
#include <gtest/gtest.h>

#include <random>

#include "workload/member_gen.h"
#include "workload/xmark_gen.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xqtp::xml {
namespace {

TEST(XmlRobustness, MalformedInputsAreErrors) {
  const char* inputs[] = {
      "",
      "<",
      "<>",
      "<a",
      "<a/",
      "<a></b>",
      "<a><b></a>",
      "<a attr></a>",
      "<a attr=></a>",
      "<a attr=\"x></a>",
      "<a>&unknown;</a>",
      "<a>&unterminated",
      "<a><!-- unterminated</a>",
      "<a><![CDATA[never closed</a>",
      "text outside",
      "<a/><b/>",
      "<a/>trailing",
      "<1tag/>",
  };
  for (const char* in : inputs) {
    StringInterner interner;
    auto res = Parse(in, &interner);
    EXPECT_FALSE(res.ok()) << "accepted: " << in;
    EXPECT_EQ(res.status().code(), StatusCode::kInvalidArgument) << in;
  }
}

TEST(XmlRobustness, TruncationsOfValidDocumentNeverCrash) {
  const std::string doc =
      "<site><people><person id=\"p1\"><name>Ann &amp; Bob</name>"
      "<emailaddress>a@x</emailaddress></person></people>"
      "<!-- c --><regions><africa><item/></africa></regions></site>";
  for (size_t len = 0; len <= doc.size(); ++len) {
    StringInterner interner;
    auto res = Parse(doc.substr(0, len), &interner);
    if (len == doc.size()) {
      EXPECT_TRUE(res.ok());
    }
    // Shorter prefixes may or may not parse (they don't), but must not
    // crash; reaching this line is the assertion.
  }
}

TEST(XmlRobustness, MutationsNeverCrash) {
  const std::string doc =
      "<a x=\"1\"><b>text &lt;here&gt;</b><c><d/></c></a>";
  std::mt19937 rng(7);
  for (int trial = 0; trial < 500; ++trial) {
    std::string mutated = doc;
    int edits = 1 + static_cast<int>(rng() % 3);
    for (int e = 0; e < edits; ++e) {
      size_t pos = rng() % mutated.size();
      switch (rng() % 3) {
        case 0:
          mutated[pos] = static_cast<char>('!' + rng() % 90);
          break;
        case 1:
          mutated.erase(pos, 1);
          break;
        case 2:
          mutated.insert(pos, 1, static_cast<char>('!' + rng() % 90));
          break;
      }
      if (mutated.empty()) mutated = "<a/>";
    }
    StringInterner interner;
    auto res = Parse(mutated, &interner);
    (void)res;  // ok or error — just no crash / UB
  }
}

TEST(XmlRoundTrip, SerializeParseSerializeIsStable) {
  StringInterner interner;
  workload::XmarkParams p;
  p.factor = 0.01;
  auto doc = workload::GenerateXmark(p, &interner);
  std::string once = Serialize(doc->root());

  StringInterner interner2;
  auto reparsed = Parse(once, &interner2);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  std::string twice = Serialize(reparsed.value()->root());
  EXPECT_EQ(once, twice);
  EXPECT_EQ(doc->node_count(), reparsed.value()->node_count());
}

TEST(XmlRoundTrip, MemberDocumentsRoundTrip) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    StringInterner interner;
    workload::MemberParams p;
    p.node_count = 2000;
    p.max_depth = 8;
    p.num_tags = 12;
    p.seed = seed;
    auto doc = workload::GenerateMember(p, &interner);
    std::string text = Serialize(doc->root());
    StringInterner interner2;
    auto reparsed = Parse(text, &interner2);
    ASSERT_TRUE(reparsed.ok());
    EXPECT_EQ(Serialize(reparsed.value()->root()), text);
  }
}

TEST(XmlRoundTrip, EscapingSurvives) {
  StringInterner interner;
  auto res = Parse(
      "<a x=\"&lt;&amp;&quot;&gt;\">body &lt;tag&gt; &amp; more</a>",
      &interner);
  ASSERT_TRUE(res.ok());
  const Node* a = res.value()->root()->first_child;
  EXPECT_EQ(a->attributes[0]->text, "<&\">");
  EXPECT_EQ(a->StringValue(), "body <tag> & more");
  // Round-trip.
  std::string text = Serialize(res.value()->root());
  StringInterner interner2;
  auto again = Parse(text, &interner2);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value()->root()->first_child->StringValue(),
            "body <tag> & more");
}

}  // namespace
}  // namespace xqtp::xml
