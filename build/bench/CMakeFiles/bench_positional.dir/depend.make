# Empty dependencies file for bench_positional.
# This may be replaced when dependencies are built.
