// The paper's second compilation phase: rewriting normalized Core
// expressions into TPNF' so that syntactically different but equivalent
// queries reach the algebraic compiler in one canonical form.
//
// Rule families (Section 3 of the paper), each independently switchable so
// the ablation benchmark can measure their contribution:
//  - Type rewritings: eliminate / bypass the typeswitch produced by
//    predicate normalization, using static types.
//  - FLWOR rewritings: dead-let elimination, single-use variable inlining,
//    unused positional-variable removal.
//  - Document order rewritings: remove ddo calls whose input is provably
//    ordered and duplicate-free, or whose context is insensitive to order
//    and duplicates (an enclosing ddo re-establishes both).
//  - Loop split: re-nests for-loops to hoist iteration out of predicate
//    evaluation; blocked when a positional variable is in use.
#ifndef XQTP_CORE_REWRITE_H_
#define XQTP_CORE_REWRITE_H_

#include "analysis/verify_scope.h"
#include "common/status.h"
#include "core/ast.h"

namespace xqtp::core {

struct RewriteOptions {
  bool typeswitch_rules = true;
  bool flwor_rules = true;
  bool ddo_removal = true;
  bool loop_split = true;
  /// Fixpoint bound; the rule system terminates far earlier in practice.
  int max_rounds = 64;
  /// Run analysis::VerifyCore after every rule family that changed the
  /// tree, and annotate + re-verify ODF properties at the end, so a rule
  /// that breaks scoping or caches an unsound annotation is pinpointed.
  /// On by default in Debug builds.
  bool verify = analysis::kVerifyByDefault;
};

/// Rewrites `e` to TPNF'. Always terminates (bounded rounds); each round
/// applies every enabled rule family once, bottom-up.
Result<CoreExprPtr> RewriteToTPNF(CoreExprPtr e, VarTable* vars,
                                  const RewriteOptions& opts = {});

}  // namespace xqtp::core

#endif  // XQTP_CORE_REWRITE_H_
