// The syntactic-variant generator of Section 5.1: produces semantically
// equivalent FLWOR rewritings of the path
//   $input/site/people/person[emailaddress]/profile/interest
// by replacing / operators with for clauses and (optionally) the predicate
// with a where clause.
#ifndef XQTP_WORKLOAD_VARIANTS_H_
#define XQTP_WORKLOAD_VARIANTS_H_

#include <string>
#include <vector>

namespace xqtp::workload {

/// Generates up to `count` distinct equivalent variants of the Figure 4
/// path expression. The first variant is the plain path itself.
std::vector<std::string> GeneratePathVariants(int count = 20);

}  // namespace xqtp::workload

#endif  // XQTP_WORKLOAD_VARIANTS_H_
