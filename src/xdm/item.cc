#include "xdm/item.h"

#include <cmath>
#include <cstdio>

namespace xqtp::xdm {

namespace {

std::string FormatDouble(double d) {
  // Integral doubles print without a decimal point, like XQuery's
  // xs:decimal rendering of whole numbers.
  if (std::isfinite(d) && d == std::floor(d) && std::abs(d) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", d);
    return buf;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", d);
  return buf;
}

}  // namespace

std::string Item::StringValue() const {
  if (IsNode()) return node()->StringValue();
  if (IsInteger()) return std::to_string(integer());
  if (IsDouble()) return FormatDouble(dbl());
  if (IsBoolean()) return boolean() ? "true" : "false";
  return str();
}

}  // namespace xqtp::xdm
